// Package ptmc is a full-system reproduction of "Enabling Transparent
// Memory-Compression for Commodity Memory Systems" (Young, Kariyappa,
// Qureshi — HPCA 2019): Practical and Transparent Memory Compression.
//
// The library simulates, cycle by cycle, an 8-core out-of-order system with
// a three-level cache hierarchy and a DDR4 memory system, and implements
// the paper's memory-controller design — inline-metadata markers, a Line
// Location Predictor, a Line Inversion Table, and Dynamic set-sampled
// cost/benefit gating — alongside every baseline the paper compares
// against. Memory contents are real bytes: compressed groups, markers,
// inverted lines, and Invalid-Line tombstones are materialized and decoded
// on every access, so data integrity is continuously checked rather than
// assumed.
//
// Quick start:
//
//	cfg := ptmc.DefaultConfig()
//	cfg.Workload = "lbm06"
//	cfg.Scheme = ptmc.SchemeDynamicPTMC
//	result, err := ptmc.Run(cfg)
//
// To compare against the uncompressed baseline (the paper's normalization):
//
//	rs, err := ptmc.Compare(cfg, ptmc.SchemeUncompressed, ptmc.SchemeDynamicPTMC)
//	speedup := rs[ptmc.SchemeDynamicPTMC].WeightedSpeedupOver(rs[ptmc.SchemeUncompressed])
//
// See cmd/ptmcsim for a CLI, cmd/paperbench for the harness that
// regenerates every table and figure of the paper, and examples/ for
// runnable walkthroughs.
package ptmc

import (
	"context"
	"io"

	"ptmc/internal/compress"
	"ptmc/internal/fault"
	"ptmc/internal/obs"
	"ptmc/internal/sim"
	"ptmc/internal/workload"
)

// Config describes one simulation; see DefaultConfig for Table I defaults.
type Config = sim.Config

// Result holds the measured statistics of one run.
type Result = sim.Result

// Workload describes a synthetic benchmark; the built-in table is listed by
// Workloads().
type Workload = workload.Workload

// ValueMix is a workload's distribution of data-value shapes (determines
// measured compressibility).
type ValueMix = workload.ValueMix

// ValueKind selects a data-value synthesizer for workload pages.
type ValueKind = workload.ValueKind

// Value kinds, from most to least compressible.
const (
	KindZero     = workload.KindZero
	KindSmallInt = workload.KindSmallInt
	KindDelta8   = workload.KindDelta8
	KindPointer  = workload.KindPointer
	KindFP       = workload.KindFP
	KindRandom   = workload.KindRandom
)

// Compressor is a per-line compression algorithm (FPC, BDI, or the
// FPC+BDI hybrid the paper evaluates).
type Compressor = compress.Algorithm

// Scheme names accepted in Config.Scheme.
const (
	SchemeUncompressed = sim.SchemeUncompressed // baseline memory system
	SchemeNextLine     = sim.SchemeNextLine     // next-line prefetch (Table VI)
	SchemeIdeal        = sim.SchemeIdeal        // oracle TMC, zero overhead
	SchemeTableTMC     = sim.SchemeTableTMC     // metadata-table TMC (prior art)
	SchemeMemZip       = sim.SchemeMemZip       // variable-burst TMC (MemZip, §VII)
	SchemePTMC         = sim.SchemePTMC         // static PTMC (always compress)
	SchemeDynamicPTMC  = sim.SchemeDynamicPTMC  // the paper's full design
)

// DefaultConfig returns the paper's Table I system configuration with a
// laptop-scale simulation horizon.
func DefaultConfig() Config { return sim.Default() }

// Run simulates one workload under one scheme.
func Run(cfg Config) (*Result, error) { return sim.Run(cfg) }

// RunContext is Run with cancellation: a done context aborts the simulation
// at its next cycle checkpoint.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	return sim.RunContext(ctx, cfg)
}

// Compare runs the same workload and seed under several schemes,
// concurrently up to GOMAXPROCS. Results are identical to a serial run.
func Compare(cfg Config, schemes ...string) (map[string]*Result, error) {
	return sim.Compare(cfg, schemes...)
}

// CompareParallel is Compare with an explicit worker bound (<= 0 selects
// GOMAXPROCS) and context cancellation.
func CompareParallel(ctx context.Context, parallel int, cfg Config, schemes ...string) (map[string]*Result, error) {
	return sim.CompareParallel(ctx, parallel, cfg, schemes...)
}

// Schemes lists every memory-controller scheme name.
func Schemes() []string { return sim.Schemes() }

// Workloads lists every built-in workload and mix name.
func Workloads() []string { return workload.Names() }

// LookupWorkload returns a built-in workload description by name.
func LookupWorkload(name string) (*Workload, error) { return workload.Lookup(name) }

// Fault-injection campaign API (robustness validation; see cmd/faultprobe).
type (
	// FaultConfig parameterizes a fault-injection campaign.
	FaultConfig = sim.FaultConfig
	// FaultReport is a campaign's adjudicated outcome.
	FaultReport = sim.FaultReport
	// FaultTrial records one injection and its outcome.
	FaultTrial = sim.FaultTrial
	// FaultOutcome classifies a trial (detected / harmless / silent).
	FaultOutcome = sim.FaultOutcome
	// FaultKind selects an injectable fault ("marker-flip", ...).
	FaultKind = fault.Kind
	// NoHurtReport is the adversarial no-hurt experiment's outcome.
	NoHurtReport = sim.NoHurtReport
)

// FaultKinds lists every injectable fault kind.
func FaultKinds() []FaultKind { return fault.Kinds() }

// ParseFaultKind resolves a fault-kind name ("marker-flip", ...).
func ParseFaultKind(name string) (FaultKind, error) { return fault.ParseKind(name) }

// RunFaultCampaign interleaves random traffic with injected faults against
// a live PTMC controller and adjudicates every trial as detected, harmless,
// or silent (the outcome that must never occur).
func RunFaultCampaign(ctx context.Context, cfg FaultConfig) (*FaultReport, error) {
	return sim.RunFaultCampaign(ctx, cfg)
}

// RunNoHurt runs the adversarial workload under the uncompressed baseline,
// static PTMC, and Dynamic-PTMC, reporting whether the dynamic design
// disabled compression and held the no-hurt bandwidth bound.
func RunNoHurt(ctx context.Context, cfg Config) (*NoHurtReport, error) {
	return sim.RunNoHurt(ctx, cfg)
}

// AdversarialWorkload returns the compression-hostile workload RunNoHurt
// uses by default.
func AdversarialWorkload() *Workload { return sim.AdversarialWorkload() }

// Observability API (internal/obs): enable with Config.MetricsInterval /
// Config.Trace (or FaultConfig.Metrics / FaultConfig.Trace) and consume the
// output from Result.Metrics / Result.TraceEvents.
type (
	// MetricsDump is the exported snapshot time series of a run: the list
	// of registered stat series plus one row of values per snapshot window.
	MetricsDump = obs.MetricsDump
	// TraceEvent is one recorded controller event (DRAM read/write, fill,
	// eviction, re-key, scrub, policy flip).
	TraceEvent = obs.Event
	// TraceKind classifies a TraceEvent.
	TraceKind = obs.Kind
)

// TraceKinds lists every event kind a tracer can record.
func TraceKinds() []TraceKind { return obs.Kinds() }

// WriteChromeTrace writes events in Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto (cycles are mapped to microseconds).
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// WriteTraceJSONL writes events as compact JSON Lines, one event per line.
func WriteTraceJSONL(w io.Writer, events []TraceEvent) error {
	return obs.WriteJSONL(w, events)
}

// TraceCountByKind tallies events per kind (smoke checks, quick summaries).
func TraceCountByKind(events []TraceEvent) map[TraceKind]int {
	return obs.CountByKind(events)
}

// StartPprof serves net/http/pprof on addr (e.g. "localhost:6060") in a
// background goroutine and returns the bound address.
func StartPprof(addr string) (string, error) { return obs.StartPprof(addr) }

// NewHybridCompressor returns the FPC+BDI hybrid line compressor, usable
// standalone for compressibility studies (see examples/membw-explorer).
func NewHybridCompressor() Compressor { return compress.Hybrid{} }

// NewFPCCompressor returns the Frequent-Pattern Compression algorithm.
func NewFPCCompressor() Compressor { return compress.FPC{} }

// NewBDICompressor returns the Base-Delta-Immediate algorithm.
func NewBDICompressor() Compressor { return compress.BDI{} }
