package ptmc_test

import (
	"fmt"

	"ptmc"
)

// ExampleRun simulates one workload under the paper's full design and
// prints whether data integrity held.
func ExampleRun() {
	cfg := ptmc.DefaultConfig()
	cfg.Workload = "leela17"
	cfg.Scheme = ptmc.SchemeDynamicPTMC
	cfg.Cores = 2
	cfg.L3Bytes = 1 << 20
	cfg.WarmupInstr = 5_000
	cfg.MeasureInstr = 20_000

	result, err := ptmc.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("integrity errors:", result.Mem.IntegrityErrs)
	// Output: integrity errors: 0
}

// ExampleCompare shows the paper's normalization: weighted speedup of a
// scheme over the uncompressed baseline on the same workload and seed.
func ExampleCompare() {
	cfg := ptmc.DefaultConfig()
	cfg.Workload = "exchange217"
	cfg.Cores = 2
	cfg.L3Bytes = 1 << 20
	cfg.WarmupInstr = 5_000
	cfg.MeasureInstr = 20_000

	results, err := ptmc.Compare(cfg, ptmc.SchemeUncompressed, ptmc.SchemeDynamicPTMC)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	speedup := results[ptmc.SchemeDynamicPTMC].WeightedSpeedupOver(results[ptmc.SchemeUncompressed])
	fmt.Println("speedup is positive:", speedup > 0)
	// Output: speedup is positive: true
}

// ExampleCompressor compresses one 64-byte line with the paper's hybrid
// FPC+BDI algorithm.
func ExampleCompressor() {
	line := make([]byte, 64) // a zero line: maximally compressible
	hybrid := ptmc.NewHybridCompressor()
	enc := hybrid.Compress(line)
	fmt.Println("encoded bytes:", len(enc))

	dec, _, err := hybrid.Decompress(enc)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("round trip ok:", string(dec) == string(line))
	// Output:
	// encoded bytes: 1
	// round trip ok: true
}
