#!/bin/sh
# Load/recovery smoke for cmd/ptmcd: 200 tiny real-simulation jobs across
# both interactive and batch priorities, a SIGKILL mid-flight, a restart —
# and then zero lost jobs, zero duplicate simulations, every artifact
# served. This is the shell-level counterpart of the in-process
# TestLoadKillRestart (internal/server/load_test.go), run against the real
# binary, real WAL segments, and a real kill -9.
set -e
cd "$(dirname "$0")/.."

jobs="${1:-200}"
work="$(mktemp -d)"
daemon_pid=""
cleanup() {
	[ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/ptmcd" ./cmd/ptmcd

# boot_daemon DATA_DIR WORKERS -> sets $daemon_pid and $base (URL). Tiny
# WAL segments so the load exercises rotation + compaction, not just
# appends.
boot_daemon() {
	rm -f "$work/addr"
	"$work/ptmcd" -addr 127.0.0.1:0 -addr-file "$work/addr" -data "$1" \
		-workers "$2" -queue $((jobs + 16)) -wal-segment 4096 \
		>> "$work/daemon.log" 2>&1 &
	daemon_pid=$!
	i=0
	while [ ! -f "$work/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "smoke_load: daemon never wrote its address file" >&2
			cat "$work/daemon.log" >&2
			exit 1
		fi
		sleep 0.1
	done
	base="http://$(cat "$work/addr")"
}

# One worker in the first life: the backlog builds behind it, so the
# kill -9 below reliably lands with work queued and in flight.
boot_daemon "$work/data" 1

# Submit the full batch: unique seeds (unique jobs), alternating priority
# classes. Every ack lands in the ledger the restart is judged against.
: > "$work/ids"
n=0
while [ "$n" -lt "$jobs" ]; do
	n=$((n + 1))
	prio=batch
	[ $((n % 2)) -eq 0 ] && prio=interactive
	spec="{\"workload\":\"lbm06\",\"schemes\":[\"ptmc\"],\"cores\":2,\"warmup_instr\":2000,\"measure_instr\":20000,\"seed\":$n,\"priority\":\"$prio\"}"
	"$work/ptmcd" submit -server "$base" -spec "$spec" >> "$work/ids"
done
if [ "$(wc -l < "$work/ids")" -ne "$jobs" ]; then
	echo "smoke_load: only $(wc -l < "$work/ids")/$jobs submissions acked" >&2
	exit 1
fi

# kill -9 mid-flight: no drain, no checkpoint, WAL abandoned as it lies.
# The jobs are tiny, so no sleep — the submit loop itself took long enough
# that a healthy slice is settled and the rest is queued.
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

# Artifacts settled before the kill (trace files don't count).
pre=0
for f in "$work/data/results/"*.json; do
	[ -e "$f" ] || continue
	case "$f" in *".trace.json") continue ;; esac
	pre=$((pre + 1))
done
if [ "$pre" -ge "$jobs" ]; then
	echo "smoke_load: all $jobs jobs settled before the kill landed (not mid-flight)" >&2
	exit 1
fi
echo "smoke_load: killed with $pre/$jobs artifacts settled"

# Restart over the same store: every acked job must settle done — a wait
# that times out or reports failure is a lost job.
boot_daemon "$work/data" 4
while IFS= read -r id; do
	"$work/ptmcd" wait -server "$base" -id "$id" -timeout 2m -poll 20ms > /dev/null
done < "$work/ids"

# Zero duplicate simulations: the restart re-ran exactly the jobs with no
# artifact (replayed), and adopted the rest from disk. Jobs whose artifact
# survived but whose WAL "done" record didn't show up as recovered, never
# as re-runs.
metrics="$("$work/ptmcd" metrics -server "$base")"
sims="$(echo "$metrics" | awk '$1 == "ptmcd.sims_run" {print $2}')"
recovered="$(echo "$metrics" | awk '$1 == "ptmcd.jobs_recovered" {print $2}')"
replayed="$(echo "$metrics" | awk '$1 == "ptmcd.jobs_replayed" {print $2}')"
want=$((jobs - pre))
if [ "$sims" != "$want" ] || [ "$replayed" != "$want" ]; then
	echo "smoke_load: restart ran $sims sims / replayed $replayed with $pre/$jobs settled pre-kill (want $want — duplicate or lost work)" >&2
	exit 1
fi
if [ "$recovered" -gt "$pre" ]; then
	echo "smoke_load: recovered($recovered) exceeds pre-kill artifacts($pre)" >&2
	exit 1
fi

# Every artifact must be on disk and served.
post=0
for f in "$work/data/results/"*.json; do
	[ -e "$f" ] || continue
	case "$f" in *".trace.json") continue ;; esac
	post=$((post + 1))
done
if [ "$post" -ne "$jobs" ]; then
	echo "smoke_load: $post/$jobs artifacts after restart" >&2
	exit 1
fi
id="$(head -n 1 "$work/ids")"
"$work/ptmcd" result -server "$base" -id "$id" > /dev/null

# The restarted daemon must still drain to exit 0.
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
	echo "smoke_load: daemon exited non-zero on SIGTERM drain" >&2
	cat "$work/daemon.log" >&2
	exit 1
fi
daemon_pid=""
echo "smoke_load: $jobs jobs, kill -9 at $pre settled, 0 lost, 0 duplicate sims"
