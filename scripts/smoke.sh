#!/bin/sh
# Paperbench smoke: the quick report must be byte-identical to the
# committed reference whatever the worker count. Regenerates with the
# default -parallel (GOMAXPROCS) and diffs against paperbench_quick.txt;
# pass a worker count as $1 to pin it (e.g. ./scripts/smoke.sh 1).
set -e
cd "$(dirname "$0")/.."
parallel="${1:-0}"

# Lint gate first: cheapest stage, fails fastest. staticcheck when the
# host has it, the gofmt formatting gate otherwise (see Makefile).
make -s lint
echo "smoke: lint clean"
out="$(mktemp)"
trap 'rm -f "$out"' EXIT
if [ "$parallel" -gt 0 ] 2>/dev/null; then
	go run ./cmd/paperbench -quiet -parallel "$parallel" > "$out"
else
	go run ./cmd/paperbench -quiet > "$out"
fi
# The trailing "complete in <wallclock>" line is timing, not report.
grep -v '^paperbench complete in ' "$out" > "$out.trim"
grep -v '^paperbench complete in ' paperbench_quick.txt > "$out.ref"
if ! diff -u "$out.ref" "$out.trim"; then
	rm -f "$out.trim" "$out.ref"
	echo "smoke: report drifted from paperbench_quick.txt" >&2
	exit 1
fi
rm -f "$out.trim" "$out.ref"
echo "smoke: report matches paperbench_quick.txt"

# Short fault-injection campaign: every injected fault must be detected
# or harmless — faultprobe exits non-zero on any silent corruption.
go run ./cmd/faultprobe -trials 100 -seed 1
echo "smoke: fault campaign clean"

# Observability smoke: an instrumented quickstart run must produce a
# parseable Chrome trace with every always-present event kind and a
# structurally valid metrics snapshot series (obscheck validates both).
go run ./cmd/ptmcsim -workload lbm06 -scheme dynamic-ptmc \
	-insts 60000 -warmup 60000 \
	-metrics "$out.metrics" -trace "$out.trace" > /dev/null
go run ./cmd/obscheck -trace "$out.trace" -metrics "$out.metrics"
rm -f "$out.metrics" "$out.trace"
echo "smoke: observability artifacts valid"

# Determinism stage: the epoch engine must stay byte-identical to the
# serial loop for every scheme, and under the race detector so any
# cross-shard ordering leak in the first-touch init fan-out is caught, not
# just its numeric consequences.
go test -race -run 'TestShardDeterminism' ./internal/sim/ > /dev/null
echo "smoke: all-scheme shard determinism clean under -race"

# Event-engine determinism stage: the discrete-event engine must stay
# byte-identical to the serial per-cycle loop for every scheme, alone and
# composed with sharding (event on/off x shards 0/2/4/8, run twice), under
# the race detector so the epoch fan-out it composes with stays clean.
go test -race -run 'TestEventDeterminism' ./internal/sim/ > /dev/null
echo "smoke: all-scheme event-engine determinism clean under -race"

# Bench stage: the committed benchmark-trajectory artifacts must parse,
# carry every required series (wall/ at >=2 shard counts, speedup/,
# micro/), and advance the PR trajectory in order (ordered by recorded PR,
# so the glob picks up every future artifact automatically). This validates
# schema presence only — a slower number is a conversation, a missing
# series is a regression.
go run ./cmd/benchtrend -check 'BENCH_*.json'
echo "smoke: benchmark trajectory artifacts valid"

# Chaos stage: the durable job queue's full campaign — 200 randomized
# crash / torn-write / cancellation trials, each adjudicated
# recovered/degraded with zero LOST jobs, under the race detector.
go test -race -count=1 -run 'TestChaosCampaign' ./internal/server/ > /dev/null
echo "smoke: chaos campaign clean (200 trials, zero lost)"

# Daemon crash-recovery stage: boot ptmcd, run a reference job to
# completion, then on a fresh store submit the same job, SIGKILL the
# daemon mid-simulation, restart over the same store, and require the
# replayed job to finish with a byte-identical result artifact. A sweep
# leg repeats the exercise for a 3x3 matrix: kill -9 mid-sweep, restart,
# byte-identical aggregate with zero re-simulated points. All daemons are
# stopped with SIGTERM and must drain cleanly (exit 0).
./scripts/smoke_ptmcd.sh
echo "smoke: daemon crash recovery byte-identical, drains exit 0"

# Daemon load stage: 200 mixed-priority jobs against the real binary with
# tiny WAL segments, kill -9 mid-flight, restart — zero lost jobs, zero
# duplicate simulations (sims_run arithmetic), every artifact served.
./scripts/smoke_load.sh
echo "smoke: daemon load campaign clean (0 lost, 0 duplicate sims)"
