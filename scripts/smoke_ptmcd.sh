#!/bin/sh
# Crash-recovery smoke for cmd/ptmcd: the acceptance script for the
# daemon's durability contract.
#
#   1. Reference leg: boot a daemon, submit a job, let it complete, save
#      the result artifact, SIGTERM the daemon — it must exit 0 after a
#      clean drain.
#   2. Crash leg: fresh store, same job, SIGKILL the daemon mid-simulation
#      (kill -9: no drain, no checkpoint), restart over the same store.
#      The WAL replays the accepted job, the deterministic simulator
#      re-runs it, and the served artifact must be byte-identical to the
#      reference. The restarted daemon must also drain to exit 0.
set -e
cd "$(dirname "$0")/.."

work="$(mktemp -d)"
daemon_pid=""
cleanup() {
	[ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/ptmcd" ./cmd/ptmcd

# Sized so the measured window takes a few seconds on one core: long
# enough that the SIGKILL below reliably lands mid-run.
spec='{"workload":"lbm06","schemes":["dynamic-ptmc"],"cores":2,"warmup_instr":500000,"measure_instr":6000000}'

# boot_daemon DATA_DIR -> sets $daemon_pid and $base (URL)
boot_daemon() {
	rm -f "$work/addr"
	"$work/ptmcd" -addr 127.0.0.1:0 -addr-file "$work/addr" -data "$1" \
		-workers 1 >> "$work/daemon.log" 2>&1 &
	daemon_pid=$!
	i=0
	while [ ! -f "$work/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "smoke_ptmcd: daemon never wrote its address file" >&2
			cat "$work/daemon.log" >&2
			exit 1
		fi
		sleep 0.1
	done
	base="http://$(cat "$work/addr")"
}

# sigterm_daemon: drain must be clean and the exit status 0.
sigterm_daemon() {
	kill -TERM "$daemon_pid"
	if ! wait "$daemon_pid"; then
		echo "smoke_ptmcd: daemon exited non-zero on SIGTERM drain" >&2
		cat "$work/daemon.log" >&2
		exit 1
	fi
	daemon_pid=""
}

# --- Reference leg -----------------------------------------------------
boot_daemon "$work/ref-data"
id="$("$work/ptmcd" submit -server "$base" -spec "$spec")"
"$work/ptmcd" wait -server "$base" -id "$id" -timeout 5m > /dev/null
"$work/ptmcd" result -server "$base" -id "$id" > "$work/ref.json"
sigterm_daemon

# --- Crash leg ---------------------------------------------------------
boot_daemon "$work/crash-data"
id2="$("$work/ptmcd" submit -server "$base" -spec "$spec")"
if [ "$id2" != "$id" ]; then
	echo "smoke_ptmcd: same spec produced different job ids ($id vs $id2)" >&2
	exit 1
fi
# Let the simulation get well into its run, then kill -9: no drain, no
# checkpoint, the WAL abandoned exactly as it lies.
sleep 1.5
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

# Restart over the crashed store: the accepted job replays and completes.
boot_daemon "$work/crash-data"
"$work/ptmcd" wait -server "$base" -id "$id" -timeout 5m > /dev/null
"$work/ptmcd" result -server "$base" -id "$id" > "$work/replayed.json"
sigterm_daemon

if ! cmp -s "$work/ref.json" "$work/replayed.json"; then
	echo "smoke_ptmcd: replayed result differs from the reference artifact" >&2
	diff "$work/ref.json" "$work/replayed.json" >&2 || true
	exit 1
fi
echo "smoke_ptmcd: job $id recovered after kill -9 with a byte-identical artifact"
