#!/bin/sh
# Crash-recovery smoke for cmd/ptmcd: the acceptance script for the
# daemon's durability contract.
#
#   1. Reference leg: boot a daemon, submit a job, let it complete, save
#      the result artifact, SIGTERM the daemon — it must exit 0 after a
#      clean drain.
#   2. Crash leg: fresh store, same job, SIGKILL the daemon mid-simulation
#      (kill -9: no drain, no checkpoint), restart over the same store.
#      The WAL replays the accepted job, the deterministic simulator
#      re-runs it, and the served artifact must be byte-identical to the
#      reference. The restarted daemon must also drain to exit 0.
#   3. Sweep-resume leg: a 3-scheme x 3-seed sweep run clean for a
#      reference aggregate, then re-run on a fresh store with a SIGKILL
#      mid-matrix. The restarted daemon must finish the sweep with a
#      byte-identical aggregate, and its sims_run metric must equal
#      exactly the points that had no artifact at kill time — zero
#      re-simulated points.
set -e
cd "$(dirname "$0")/.."

work="$(mktemp -d)"
daemon_pid=""
cleanup() {
	[ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/ptmcd" ./cmd/ptmcd

# Sized so the measured window takes a few seconds on one core: long
# enough that the SIGKILL below reliably lands mid-run.
spec='{"workload":"lbm06","schemes":["dynamic-ptmc"],"cores":2,"warmup_instr":500000,"measure_instr":6000000}'

# boot_daemon DATA_DIR -> sets $daemon_pid and $base (URL)
boot_daemon() {
	rm -f "$work/addr"
	"$work/ptmcd" -addr 127.0.0.1:0 -addr-file "$work/addr" -data "$1" \
		-workers 1 >> "$work/daemon.log" 2>&1 &
	daemon_pid=$!
	i=0
	while [ ! -f "$work/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "smoke_ptmcd: daemon never wrote its address file" >&2
			cat "$work/daemon.log" >&2
			exit 1
		fi
		sleep 0.1
	done
	base="http://$(cat "$work/addr")"
}

# sigterm_daemon: drain must be clean and the exit status 0.
sigterm_daemon() {
	kill -TERM "$daemon_pid"
	if ! wait "$daemon_pid"; then
		echo "smoke_ptmcd: daemon exited non-zero on SIGTERM drain" >&2
		cat "$work/daemon.log" >&2
		exit 1
	fi
	daemon_pid=""
}

# --- Reference leg -----------------------------------------------------
boot_daemon "$work/ref-data"
id="$("$work/ptmcd" submit -server "$base" -spec "$spec")"
"$work/ptmcd" wait -server "$base" -id "$id" -timeout 5m > /dev/null
"$work/ptmcd" result -server "$base" -id "$id" > "$work/ref.json"
sigterm_daemon

# --- Crash leg ---------------------------------------------------------
boot_daemon "$work/crash-data"
id2="$("$work/ptmcd" submit -server "$base" -spec "$spec")"
if [ "$id2" != "$id" ]; then
	echo "smoke_ptmcd: same spec produced different job ids ($id vs $id2)" >&2
	exit 1
fi
# Let the simulation get well into its run, then kill -9: no drain, no
# checkpoint, the WAL abandoned exactly as it lies.
sleep 1.5
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

# Restart over the crashed store: the accepted job replays and completes.
boot_daemon "$work/crash-data"
"$work/ptmcd" wait -server "$base" -id "$id" -timeout 5m > /dev/null
"$work/ptmcd" result -server "$base" -id "$id" > "$work/replayed.json"
sigterm_daemon

if ! cmp -s "$work/ref.json" "$work/replayed.json"; then
	echo "smoke_ptmcd: replayed result differs from the reference artifact" >&2
	diff "$work/ref.json" "$work/replayed.json" >&2 || true
	exit 1
fi
echo "smoke_ptmcd: job $id recovered after kill -9 with a byte-identical artifact"

# --- Sweep-resume leg --------------------------------------------------
# 9 points sized so the matrix takes several seconds on one worker: the
# SIGKILL below reliably lands with some points settled and some not.
sweep='{"workloads":["lbm06"],"schemes":["uncompressed","ptmc","dynamic-ptmc"],"seeds":[1,2,3],"cores":2,"warmup_instr":100000,"measure_instr":1200000}'
points=9

# Reference aggregate from an uninterrupted run in its own store.
boot_daemon "$work/sweep-ref-data"
sid="$("$work/ptmcd" submit -sweep -server "$base" -spec "$sweep")"
"$work/ptmcd" wait -sweep -server "$base" -id "$sid" -timeout 5m > /dev/null
"$work/ptmcd" result -sweep -server "$base" -id "$sid" > "$work/sweep-ref.json"
sigterm_daemon

# Crash run: same sweep, fresh store, kill -9 mid-matrix.
boot_daemon "$work/sweep-data"
sid2="$("$work/ptmcd" submit -sweep -server "$base" -spec "$sweep")"
if [ "$sid2" != "$sid" ]; then
	echo "smoke_ptmcd: same sweep spec produced different ids ($sid vs $sid2)" >&2
	exit 1
fi
sleep 2.5
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

# Points already settled at kill time: one result artifact per child job
# (the aggregate and trace files don't count).
pre=0
for f in "$work/sweep-data/results/"*.json; do
	[ -e "$f" ] || continue
	case "$f" in
	*".trace.json" | */"$sid.json") continue ;;
	esac
	pre=$((pre + 1))
done

# Restart: the sweep must finish, byte-identical, re-simulating only the
# points that had no artifact.
boot_daemon "$work/sweep-data"
"$work/ptmcd" wait -sweep -server "$base" -id "$sid" -timeout 5m > /dev/null
"$work/ptmcd" result -sweep -server "$base" -id "$sid" > "$work/sweep-resumed.json"
sims="$("$work/ptmcd" metrics -server "$base" | awk '$1 == "ptmcd.sims_run" {print $2}')"
sigterm_daemon

if ! cmp -s "$work/sweep-ref.json" "$work/sweep-resumed.json"; then
	echo "smoke_ptmcd: resumed sweep aggregate differs from the reference" >&2
	diff "$work/sweep-ref.json" "$work/sweep-resumed.json" >&2 || true
	exit 1
fi
want=$((points - pre))
if [ "$sims" != "$want" ]; then
	echo "smoke_ptmcd: restart ran $sims sims for $points-point sweep with $pre settled pre-kill (want $want — duplicate or lost work)" >&2
	exit 1
fi
echo "smoke_ptmcd: sweep $sid resumed after kill -9 ($pre/$points points reused, $sims re-simulated, aggregate byte-identical)"
