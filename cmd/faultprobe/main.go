// Command faultprobe attacks a live PTMC controller with seeded fault
// injection and adjudicates every trial: each injected fault must be
// detected (a degradation counter moves, or image verification returns a
// typed error) or harmless (the image still verifies, with nothing latent
// after an LLC flush). A silent corruption — the outcome the design must
// make impossible — fails the probe with a non-zero exit.
//
// Usage:
//
//	faultprobe -trials 1000 -seed 1
//	faultprobe -kinds marker-flip,tombstone -v
//	faultprobe -dynamic            # attack Dynamic-PTMC's gated controller
//	faultprobe -nohurt             # adversarial no-hurt experiment instead
//	faultprobe -metrics m.json -trace t.trace -pprof localhost:6060
//
// The campaign is deterministic in (-seed, -trials, -ops, -lines): a
// failing seed is a reproducer.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ptmc"
)

func main() {
	var (
		trials  = flag.Int("trials", 1000, "fault injections to run")
		seed    = flag.Int64("seed", 1, "campaign seed (replays exactly)")
		ops     = flag.Int("ops", 256, "traffic operations around each injection")
		lines   = flag.Int("lines", 2048, "footprint in 64-byte lines")
		llcKB   = flag.Int("llckb", 64, "campaign LLC size in KB")
		kinds   = flag.String("kinds", "", "comma-separated fault kinds (default: all)")
		dynamic = flag.Bool("dynamic", false, "attack Dynamic-PTMC instead of static PTMC")
		nohurt  = flag.Bool("nohurt", false, "run the adversarial no-hurt experiment instead of injection")
		timeout = flag.Duration("timeout", 0, "overall deadline (0 = none)")
		verbose = flag.Bool("v", false, "print every trial")
		list    = flag.Bool("list", false, "list fault kinds, then exit")

		metricsOut = flag.String("metrics", "", "write per-trial detection-counter windows to this JSON file")
		traceOut   = flag.String("trace", "", "write controller events to this Chrome trace-event JSON file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := ptmc.StartPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultprobe:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", addr)
	}

	if *list {
		names := make([]string, 0, len(ptmc.FaultKinds()))
		for _, k := range ptmc.FaultKinds() {
			names = append(names, k.String())
		}
		fmt.Println("fault kinds:", strings.Join(names, " "))
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *nohurt {
		runNoHurt(ctx)
		return
	}

	cfg := ptmc.FaultConfig{
		Trials:      *trials,
		OpsPerTrial: *ops,
		Lines:       *lines,
		LLCBytes:    *llcKB << 10,
		Seed:        *seed,
		Dynamic:     *dynamic,
		Trace:       *traceOut != "",
		Metrics:     *metricsOut != "",
	}
	for _, name := range strings.Split(*kinds, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		k, err := ptmc.ParseFaultKind(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultprobe:", err)
			os.Exit(2)
		}
		cfg.Kinds = append(cfg.Kinds, k)
	}

	start := time.Now()
	rep, err := ptmc.RunFaultCampaign(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultprobe:", err)
		os.Exit(1)
	}
	if *verbose {
		for _, t := range rep.Trials {
			fmt.Printf("trial %4d  %-24s %-16s %s\n",
				t.Trial, t.Injection, t.Outcome, t.Detector)
		}
	}
	fmt.Printf("faultprobe: %d trials (seed %d) in %v\n",
		len(rep.Trials), cfg.Seed, time.Since(start).Round(time.Millisecond))
	fmt.Print(rep.Summary())
	fmt.Printf("degradations: undecodable=%d fallback=%d litSpills=%d integrityErrs=%d rekeys=%d\n",
		rep.Stats.UndecodableUnits, rep.Stats.FallbackReads, rep.Stats.LITSpills,
		rep.Stats.IntegrityErrs, rep.Stats.ReKeys)
	fmt.Printf("final image verification: %d lines OK\n", rep.Verified)
	if *metricsOut != "" {
		writeFile(*metricsOut, "metrics", rep.Metrics.WriteJSON)
	}
	if *traceOut != "" {
		writeFile(*traceOut, "trace", func(w io.Writer) error {
			return ptmc.WriteChromeTrace(w, rep.TraceEvents)
		})
		fmt.Printf("trace: %d events (%d dropped) -> %s\n",
			len(rep.TraceEvents), rep.TraceDropped, *traceOut)
	}
	if rep.Silent != 0 {
		fmt.Fprintf(os.Stderr, "faultprobe: %d SILENT corruptions — soundness bug\n", rep.Silent)
		os.Exit(1)
	}
	fmt.Println("no silent corruptions")
}

func runNoHurt(ctx context.Context) {
	cfg := ptmc.DefaultConfig()
	cfg.Cores = 2
	cfg.L3Bytes = 256 << 10
	cfg.L3Assoc = 8
	cfg.SampleFrac = 0.05
	cfg.WarmupInstr = 120_000
	cfg.MeasureInstr = 120_000
	rep, err := ptmc.RunNoHurt(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultprobe:", err)
		os.Exit(1)
	}
	fmt.Println(rep)
	if rep.StaticBW > 1.0 && !rep.CompressionDisabled {
		fmt.Fprintln(os.Stderr, "faultprobe: attack hurt static PTMC but Dynamic-PTMC never disabled compression")
		os.Exit(1)
	}
	fmt.Println("no-hurt guarantee held")
}

// writeFile writes one observability artifact, exiting on failure so a
// requested -metrics/-trace file is never silently missing or truncated.
func writeFile(path, what string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultprobe: write %s: %v\n", what, err)
		os.Exit(1)
	}
}
