// Command benchtrend measures the simulator's performance trajectory and
// writes it as a stable, append-friendly JSON artifact (BENCH_PR<n>.json
// per PR, all under the same schema; the committed files form the
// trajectory).
//
// The end-to-end measurement is one 8-core simulation per workload ×
// scheme, repeated at several -shards values (1 = the serial reference
// loop, 2/4/8 = the epoch engine) and — with -event — once more per shard
// count on the discrete-event engine (sim.Config.EventDriven). Every
// repeat must produce a byte-identical report — both engines are
// performance knobs, not model changes — and benchtrend fails loudly if
// one does not. Wall time and user-CPU time are recorded per run (user
// CPU is the honest number on noisy shared hosts); core micro-benchmarks
// (group compression, marker classification, lazy store reads) ride along
// with ns/op and allocs/op.
//
// -workload takes a comma-separated list. Besides the named workloads and
// mixes, the special name "lowmlp" builds benchtrend's own low-MLP
// microworkload plus a matching machine shape (one core, an 8-entry ROB):
// the tiny window blocks on a single outstanding DRAM miss, so the core
// spends ~90% of its cycles provably idle — the event engine's best case
// and exactly the shape the per-cycle serial loop handles worst. It lives
// here, not in the global workload table, so the paperbench -full
// population is unchanged.
//
// Validate existing artifacts without running anything:
//
//	benchtrend -check BENCH_PR6.json,BENCH_PR7.json
//	benchtrend -check 'BENCH_*.json'
//
// Each -check element is a literal path or a glob (a pattern matching
// nothing is an error). Every file is checked for schema and series
// presence (missing series fail; value regressions do not — trend analysis
// is a human's job), and a multi-file check additionally asserts the files
// form a coherent trajectory: one schema, strictly increasing PR numbers,
// ordered by recorded PR rather than filename.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"ptmc"
	"ptmc/internal/compress"
	"ptmc/internal/core"
	cpusim "ptmc/internal/cpu"
	"ptmc/internal/mem"
)

// Schema is the artifact version tag. Future PRs append new series (or new
// files) but never rename or repurpose existing fields under this tag.
const Schema = "ptmc-bench/v1"

type artifact struct {
	Schema    string   `json:"schema"`
	Generated string   `json:"generated"`
	PR        int      `json:"pr"`
	Host      host     `json:"host"`
	Config    runCfg   `json:"config"`
	Identical bool     `json:"identical_reports"`
	Series    []series `json:"series"`
	// Speedup is the headline number: serial wall time over best-shard
	// wall time for the primary (last-listed) scheme.
	Speedup float64 `json:"speedup"`
}

type host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Go         string `json:"go"`
}

type runCfg struct {
	Workload string `json:"workload"`
	Schemes  string `json:"schemes"`
	Cores    int    `json:"cores"`
	Warmup   int64  `json:"warmup"`
	Measure  int64  `json:"measure"`
	Seed     int64  `json:"seed"`
	Shards   string `json:"shards"`
	// Event records whether each shard point was also measured on the
	// discrete-event engine ("shards=N+event" points in the wall/cpu
	// series, plus a "serial/best-event" speedup point).
	Event bool `json:"event,omitempty"`
}

type series struct {
	Name   string  `json:"name"`
	Unit   string  `json:"unit"`
	Points []point `json:"points"`
}

type point struct {
	Label string  `json:"label"`
	Value float64 `json:"value"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_PR10.json", "artifact path to write")
		check    = flag.String("check", "", "validate these comma-separated artifacts and exit (no runs)")
		workload = flag.String("workload", "mix1,lowmlp",
			"comma-separated workloads/mixes to measure end-to-end (lowmlp = built-in low-MLP microworkload)")
		schemes = flag.String("schemes", "uncompressed,ptmc,dynamic-ptmc",
			"comma-separated schemes; the last is the headline-speedup scheme")
		shards  = flag.String("shards", "1,4", "comma-separated shard counts")
		event   = flag.Bool("event", true, "repeat every point on the discrete-event engine")
		cores   = flag.Int("cores", 8, "cores")
		warmup  = flag.Int64("warmup", 700_000, "warmup instructions per core")
		measure = flag.Int64("insts", 2_000_000, "measured instructions per core")
		seed    = flag.Int64("seed", 1, "run seed")
		pr      = flag.Int("pr", 10, "PR number recorded in the artifact")
		noMicro = flag.Bool("nomicro", false, "skip the micro-benchmark series")
	)
	flag.Parse()

	if *check != "" {
		paths, err := expandCheckPaths(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtrend: -check: %v\n", err)
			os.Exit(1)
		}
		if err := checkTrajectory(paths); err != nil {
			fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
			os.Exit(1)
		}
		return
	}

	shardList, err := parseInts(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend: -shards:", err)
		os.Exit(1)
	}
	schemeList := strings.Split(*schemes, ",")
	workloadList := strings.Split(*workload, ",")

	art := &artifact{
		Schema:    Schema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		PR:        *pr,
		Host: host{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Go:         runtime.Version(),
		},
		Config: runCfg{
			Workload: *workload, Schemes: *schemes, Cores: *cores,
			Warmup: *warmup, Measure: *measure, Seed: *seed, Shards: *shards,
			Event: *event,
		},
		Identical: true,
	}

	for _, wl := range workloadList {
		for _, scheme := range schemeList {
			wallS := series{Name: "wall/" + wl + "/" + scheme, Unit: "s"}
			cpuS := series{Name: "cpu/" + wl + "/" + scheme, Unit: "s"}
			var ref *ptmc.Result
			var serialWall, bestSharded, bestEvent float64
			eventModes := []bool{false}
			if *event {
				eventModes = append(eventModes, true)
			}
			for _, ev := range eventModes {
				for _, sh := range shardList {
					cfg := ptmc.DefaultConfig()
					cfg.Workload = wl
					cfg.Scheme = scheme
					cfg.Cores = *cores
					if wl == "lowmlp" {
						// One pointer-chasing core with a tiny instruction
						// window: ROB 8 means a single outstanding miss
						// blocks the whole window (MLP pinned to ~1), so
						// nearly every cycle is provably eventless. The
						// serial-vs-event comparison stays apples-to-apples:
						// every engine runs this exact configuration.
						cfg.Custom = lowMLPWorkload()
						cfg.Core = cpusim.Config{ROB: 8, FetchWidth: 8, RetireWidth: 8}
						cfg.Cores = 1
					}
					cfg.WarmupInstr = *warmup
					cfg.MeasureInstr = *measure
					cfg.Seed = *seed
					if sh > 1 {
						cfg.Shards = sh
					}
					cfg.EventDriven = ev
					u0 := userCPU()
					t0 := time.Now()
					res, err := ptmc.Run(cfg)
					if err != nil {
						fmt.Fprintf(os.Stderr, "benchtrend: %s/%s shards=%d event=%t: %v\n",
							wl, scheme, sh, ev, err)
						os.Exit(1)
					}
					w := time.Since(t0).Seconds()
					u := userCPU() - u0
					label := "shards=" + strconv.Itoa(sh)
					if ev {
						label += "+event"
					}
					wallS.Points = append(wallS.Points, point{label, round(w)})
					cpuS.Points = append(cpuS.Points, point{label, round(u)})
					fmt.Printf("%-28s %-15s wall=%6.2fs cpu=%6.2fs  %s\n",
						wl+"/"+scheme, label, w, u, res.String())
					switch {
					case ref == nil:
						// shards=1, serial loop: the reference run.
						ref, serialWall, bestSharded = res, w, w
					case !reflect.DeepEqual(ref, res):
						art.Identical = false
						fmt.Fprintf(os.Stderr,
							"benchtrend: %s/%s shards=%d event=%t report DIVERGES from serial:\n  %s\nvs\n  %s\n",
							wl, scheme, sh, ev, res, ref)
					}
					if ev {
						if bestEvent == 0 || w < bestEvent {
							bestEvent = w
						}
					} else if w < bestSharded {
						bestSharded = w
					}
				}
			}
			art.Series = append(art.Series, wallS, cpuS)
			var speedups []point
			if len(shardList) > 1 && bestSharded > 0 {
				speedups = append(speedups, point{"serial/best-sharded", round(serialWall / bestSharded)})
			}
			if *event && bestEvent > 0 {
				speedups = append(speedups, point{"serial/best-event", round(serialWall / bestEvent)})
			}
			if len(speedups) > 0 {
				art.Series = append(art.Series, series{
					Name: "speedup/" + wl + "/" + scheme, Unit: "x", Points: speedups,
				})
				// Headline: the last listed workload/scheme's best engine
				// configuration against the serial reference loop.
				best := bestSharded
				if bestEvent > 0 && bestEvent < best {
					best = bestEvent
				}
				art.Speedup = round(serialWall / best)
			}
		}
	}

	if !*noMicro {
		art.Series = append(art.Series, microSeries()...)
	}

	if !art.Identical {
		fmt.Fprintln(os.Stderr, "benchtrend: NOT writing artifact: reports diverged across shard counts")
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (headline speedup %.2fx, reports identical at shards %s)\n",
		*out, art.Speedup, *shards)
}

// lowMLPWorkload is the event engine's showcase shape, paired with the
// narrow-window core override in main: memory instructions are frequent
// (MemFrac 0.40) but the 8-entry ROB fills in one fetch cycle and then
// blocks on the oldest outstanding miss, so misses are serialized — MLP is
// pinned to ~1 regardless of the memory fraction. The footprint dwarfs the
// LLC and accesses are pointer-style with no spatial locality, so nearly
// every load is a full DRAM round trip: the single core spends ~90% of its
// cycles stalled, which the serial loop still pays a per-cycle sweep for
// and the event engine skips in one jump. Defined here rather than in the
// global workload table so the paperbench -full workload population (and
// every committed reference report) is untouched.
func lowMLPWorkload() *ptmc.Workload {
	return &ptmc.Workload{
		Name:           "lowmlp",
		Suite:          "micro",
		FootprintBytes: 32 << 20,
		MemFrac:        0.40,
		WriteFrac:      0,
		SeqProb:        0,
		SeqRun:         2,
		HotFrac:        0,
		HotProb:        0,
		Mix: ptmc.ValueMix{
			{Kind: ptmc.KindZero, Weight: 70},
			{Kind: ptmc.KindSmallInt, Weight: 20},
			{Kind: ptmc.KindPointer, Weight: 10},
		},
	}
}

// microSeries runs the core micro-benchmarks through testing.Benchmark and
// reports ns/op and allocs/op. These pin the primitives the end-to-end
// numbers are built from: the group compression codec, marker
// classification (every fill classifies), and the sparse store's lazy read
// path (every first-touch synthesizes).
func microSeries() []series {
	nsop := series{Name: "micro/ns-op", Unit: "ns/op"}
	allocs := series{Name: "micro/allocs-op", Unit: "allocs/op"}
	add := func(label string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		nsop.Points = append(nsop.Points, point{label, round(float64(r.NsPerOp()))})
		allocs.Points = append(allocs.Points, point{label, float64(r.AllocsPerOp())})
		fmt.Printf("micro/%-18s %10d ns/op %6d allocs/op\n", label, r.NsPerOp(), r.AllocsPerOp())
	}

	lines := benchLines()
	refs := make([][]byte, 4)
	for i := range refs {
		refs[i] = lines[i][:]
	}
	alg := compress.Hybrid{}
	add("compress-group-4", func(b *testing.B) {
		buf := make([]byte, 0, 4*mem.LineSize)
		for i := 0; i < b.N; i++ {
			if _, ok := compress.AppendCompressGroup(alg, buf[:0], refs, core.CompressedBudget); !ok {
				panic("benchtrend: reference group must fit the 4:1 budget")
			}
		}
	})
	blob, ok := compress.CompressGroup(alg, refs, core.CompressedBudget)
	if !ok {
		panic("benchtrend: reference group must compress")
	}
	add("decompress-group-4", func(b *testing.B) {
		dst := make([][]byte, 4)
		var bufs [4][mem.LineSize]byte
		for i := range dst {
			dst[i] = bufs[i][:]
		}
		for i := 0; i < b.N; i++ {
			if err := compress.DecompressGroupInto(alg, dst, blob, 4); err != nil {
				panic(err)
			}
		}
	})

	g := core.NewMarkerGen(1)
	add("classify-line", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Classify(mem.LineAddr(i&1023), lines[i&3][:])
		}
	})

	add("store-lazy-read", func(b *testing.B) {
		s := mem.NewStore()
		s.SetLazyFill(func(a mem.LineAddr, buf []byte) {
			binary.LittleEndian.PutUint64(buf, uint64(a))
		})
		var scratch [mem.LineSize]byte
		for pn := 0; pn < 16; pn++ {
			s.MarkLazy(mem.LineAddr(pn * mem.SlabLines))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.ReadNoAlloc(mem.LineAddr(i%(16*mem.SlabLines)), scratch[:])
		}
	})
	return []series{nsop, allocs}
}

// benchLines builds four well-compressing 64-byte lines (a sparse repeating
// tag, the same shape the controller's compressible-workload tests use) that
// together fit the 4:1 group budget.
func benchLines() [4][mem.LineSize]byte {
	var out [4][mem.LineSize]byte
	for l := range out {
		for i := 0; i < mem.LineSize; i += 4 {
			out[l][i] = byte(0x11 * (l + 1))
		}
	}
	return out
}

func userCPU() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Utime.Sec) + float64(ru.Utime.Usec)/1e6
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("shard count must be >= 1, got %d", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// expandCheckPaths turns -check's comma-separated list into concrete file
// paths. Each element may be a literal path or a glob ("BENCH_*.json") —
// globs with zero matches are an error (a typo'd pattern silently checking
// nothing would defeat the gate), and duplicates collapse.
func expandCheckPaths(arg string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	for _, elem := range strings.Split(arg, ",") {
		elem = strings.TrimSpace(elem)
		if elem == "" {
			continue
		}
		matches := []string{elem}
		if strings.ContainsAny(elem, "*?[") {
			var err error
			matches, err = filepath.Glob(elem)
			if err != nil {
				return nil, fmt.Errorf("bad pattern %q: %w", elem, err)
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("pattern %q matched no files", elem)
			}
		}
		for _, m := range matches {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no artifacts to check")
	}
	return out, nil
}

// checkTrajectory validates each artifact and, across files, asserts they
// form a coherent trajectory: one schema and strictly increasing PR
// numbers. Files are ordered by their recorded PR, not by name — glob
// expansion is lexical, and BENCH_PR10.json must sort after BENCH_PR9.json.
// A single path degenerates to a plain artifact check.
func checkTrajectory(paths []string) error {
	type checked struct {
		path string
		art  *artifact
	}
	arts := make([]checked, 0, len(paths))
	for _, path := range paths {
		art, err := checkArtifact(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		arts = append(arts, checked{path, art})
	}
	sort.Slice(arts, func(i, j int) bool { return arts[i].art.PR < arts[j].art.PR })
	lastPR := 0
	lastPath := ""
	for _, c := range arts {
		if c.art.PR <= lastPR {
			return fmt.Errorf("%s: PR %d does not advance the trajectory (%s is also PR %d)",
				c.path, c.art.PR, lastPath, lastPR)
		}
		lastPR, lastPath = c.art.PR, c.path
		fmt.Printf("%s: valid %s artifact (PR %d)\n", c.path, Schema, c.art.PR)
	}
	return nil
}

// checkArtifact validates schema and series presence. It fails on missing
// or malformed series — never on the values themselves.
func checkArtifact(path string) (*artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	if art.Schema != Schema {
		return nil, fmt.Errorf("schema = %q, want %q", art.Schema, Schema)
	}
	if art.Generated == "" {
		return nil, fmt.Errorf("missing generated timestamp")
	}
	if !art.Identical {
		return nil, fmt.Errorf("identical_reports is false: shard runs diverged")
	}
	if len(art.Series) == 0 {
		return nil, fmt.Errorf("no series")
	}
	var haveWall, haveSpeedup, haveMicro bool
	for _, s := range art.Series {
		if s.Name == "" || s.Unit == "" {
			return nil, fmt.Errorf("series with empty name or unit")
		}
		if len(s.Points) == 0 {
			return nil, fmt.Errorf("series %q has no points", s.Name)
		}
		for _, p := range s.Points {
			if p.Label == "" {
				return nil, fmt.Errorf("series %q has an unlabeled point", s.Name)
			}
			if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) || p.Value < 0 {
				return nil, fmt.Errorf("series %q point %q has value %v", s.Name, p.Label, p.Value)
			}
		}
		switch {
		case strings.HasPrefix(s.Name, "wall/"):
			if len(s.Points) < 2 {
				return nil, fmt.Errorf("series %q needs >= 2 shard points, has %d", s.Name, len(s.Points))
			}
			haveWall = true
		case strings.HasPrefix(s.Name, "speedup/"):
			haveSpeedup = true
		case strings.HasPrefix(s.Name, "micro/"):
			haveMicro = true
		}
	}
	if !haveWall {
		return nil, fmt.Errorf("missing wall/ series")
	}
	if !haveSpeedup {
		return nil, fmt.Errorf("missing speedup/ series")
	}
	if !haveMicro {
		return nil, fmt.Errorf("missing micro/ series")
	}
	return &art, nil
}

func round(v float64) float64 { return math.Round(v*1000) / 1000 }
