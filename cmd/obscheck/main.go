// Command obscheck validates the observability artifacts the other
// commands emit — the -trace Chrome trace-event file and the -metrics
// snapshot-series JSON — without trusting the writer: it re-parses both
// with encoding/json and checks the structural invariants consumers rely
// on. scripts/smoke.sh uses it to keep the trace and metrics formats
// honest in CI (`make trace-smoke`).
//
// Usage:
//
//	obscheck -trace out.trace                     # default required kinds
//	obscheck -trace out.trace -require fill,evict
//	obscheck -metrics out.json
//	obscheck -trace out.trace -metrics out.json
//
// Checks:
//
//   - trace: the file is a JSON array of trace events; every event has a
//     known kind name and a valid phase; each kind named by -require
//     (default dram-read,dram-write,fill,evict — the kinds any real run
//     must produce) appears at least once.
//   - metrics: the file parses as {"series":[...],"windows":[...]}; every
//     window carries exactly one value and one delta per declared series;
//     window cycles are strictly increasing; counter deltas are consistent
//     with the cumulative values they were derived from.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		tracePath   = flag.String("trace", "", "Chrome trace-event JSON file to validate")
		metricsPath = flag.String("metrics", "", "metrics snapshot-series JSON file to validate")
		require     = flag.String("require", "dram-read,dram-write,fill,evict",
			"comma-separated event kinds that must appear in the trace at least once")
	)
	flag.Parse()

	if *tracePath == "" && *metricsPath == "" {
		fmt.Fprintln(os.Stderr, "obscheck: nothing to check (pass -trace and/or -metrics)")
		os.Exit(2)
	}
	ok := true
	if *tracePath != "" {
		ok = checkTrace(*tracePath, *require) && ok
	}
	if *metricsPath != "" {
		ok = checkMetrics(*metricsPath) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

func fail(format string, args ...any) bool {
	fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
	return false
}

// knownKinds mirrors internal/obs kind names; obscheck deliberately
// re-declares them so a renamed kind breaks the smoke check instead of
// silently tracking the rename.
var knownKinds = map[string]bool{
	"dram-read": true, "dram-write": true, "fill": true, "evict": true,
	"rekey": true, "scrub": true, "policy-flip": true, "job": true,
}

func checkTrace(path, require string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return fail("%v", err)
	}
	var events []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		TS   *int64 `json:"ts"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		return fail("trace %s: not a JSON event array: %v", path, err)
	}
	counts := map[string]int{}
	for i, e := range events {
		switch {
		case !knownKinds[e.Name]:
			return fail("trace %s: event %d has unknown kind %q", path, i, e.Name)
		case e.Ph != "X" && e.Ph != "i":
			return fail("trace %s: event %d (%s) has phase %q, want X or i", path, i, e.Name, e.Ph)
		case e.TS == nil:
			return fail("trace %s: event %d (%s) has no timestamp", path, i, e.Name)
		}
		counts[e.Name]++
	}
	for _, kind := range strings.Split(require, ",") {
		if kind = strings.TrimSpace(kind); kind == "" {
			continue
		}
		if !knownKinds[kind] {
			return fail("-require names unknown kind %q", kind)
		}
		if counts[kind] == 0 {
			return fail("trace %s: no %q events (%d events total)", path, kind, len(events))
		}
	}
	var parts []string
	for kind, n := range counts {
		parts = append(parts, fmt.Sprintf("%s=%d", kind, n))
	}
	fmt.Printf("obscheck: trace %s OK: %d events (%s)\n",
		path, len(events), strings.Join(parts, " "))
	return true
}

func checkMetrics(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return fail("%v", err)
	}
	var dump struct {
		Series []struct {
			Name   string `json:"name"`
			Labels string `json:"labels"`
			Kind   string `json:"kind"`
		} `json:"series"`
		Windows []struct {
			Cycle  *int64   `json:"cycle"`
			Values []uint64 `json:"values"`
			Deltas []uint64 `json:"deltas"`
		} `json:"windows"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		return fail("metrics %s: %v", path, err)
	}
	if len(dump.Series) == 0 || len(dump.Windows) == 0 {
		return fail("metrics %s: empty dump (%d series, %d windows)",
			path, len(dump.Series), len(dump.Windows))
	}
	for i, s := range dump.Series {
		if s.Name == "" {
			return fail("metrics %s: series %d has no name", path, i)
		}
		if s.Kind != "counter" && s.Kind != "gauge" {
			return fail("metrics %s: series %s has kind %q, want counter or gauge",
				path, s.Name, s.Kind)
		}
	}
	prevCycle := int64(-1)
	var prev []uint64
	for i, w := range dump.Windows {
		switch {
		case w.Cycle == nil:
			return fail("metrics %s: window %d has no cycle", path, i)
		case *w.Cycle <= prevCycle:
			return fail("metrics %s: window %d cycle %d not after %d", path, i, *w.Cycle, prevCycle)
		case len(w.Values) != len(dump.Series):
			return fail("metrics %s: window %d has %d values for %d series",
				path, i, len(w.Values), len(dump.Series))
		case len(w.Deltas) != len(dump.Series):
			return fail("metrics %s: window %d has %d deltas for %d series",
				path, i, len(w.Deltas), len(dump.Series))
		}
		for j, s := range dump.Series {
			want := w.Values[j]
			if s.Kind == "counter" && prev != nil {
				want = 0 // a counter that regressed serializes as delta 0
				if w.Values[j] >= prev[j] {
					want = w.Values[j] - prev[j]
				}
			}
			if w.Deltas[j] != want {
				return fail("metrics %s: window %d series %s: delta %d, want %d",
					path, i, s.Name, w.Deltas[j], want)
			}
		}
		prevCycle, prev = *w.Cycle, w.Values
	}
	fmt.Printf("obscheck: metrics %s OK: %d series x %d windows (cycles %d..%d)\n",
		path, len(dump.Series), len(dump.Windows),
		*dump.Windows[0].Cycle, prevCycle)
	return true
}
