// Command sweep runs parameter-sensitivity studies around the paper's
// design points: channel count, LLC size, LLP size, metadata-cache size for
// the table-based baseline, and ganged-eviction geometry (group size via
// scheme choice). Each sweep reports Dynamic-PTMC's (or the named scheme's)
// weighted speedup over the uncompressed baseline at every point.
//
// Usage:
//
//	sweep -kind channels -workload lbm06
//	sweep -kind llc      -workload mcf06 -scheme ptmc
//	sweep -kind llp      -workload lbm06
//	sweep -kind mcache   -workload pr-twitter
package main

import (
	"flag"
	"fmt"
	"os"

	"ptmc"
)

func main() {
	var (
		kind         = flag.String("kind", "channels", "sweep: channels | llc | llp | mcache | decomp | seeds")
		workloadName = flag.String("workload", "lbm06", "workload name")
		scheme       = flag.String("scheme", ptmc.SchemeDynamicPTMC, "scheme under test")
		insts        = flag.Int64("insts", 400_000, "measured instructions per core")
		warmup       = flag.Int64("warmup", 200_000, "warmup instructions per core")
		cores        = flag.Int("cores", 8, "cores")
		seed         = flag.Int64("seed", 1, "base seed")
	)
	flag.Parse()

	base := ptmc.DefaultConfig()
	base.Workload = *workloadName
	base.MeasureInstr = *insts
	base.WarmupInstr = *warmup
	base.Cores = *cores
	base.Seed = *seed

	runPoint := func(label string, mutate func(*ptmc.Config)) {
		cfg := base
		mutate(&cfg)
		rs, err := ptmc.Compare(cfg, ptmc.SchemeUncompressed, *scheme)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		r := rs[*scheme]
		b := rs[ptmc.SchemeUncompressed]
		fmt.Printf("%-12s speedup=%.3f ipc=%.3f bw=%.3f llp=%.1f%% mpki=%.1f\n",
			label, r.WeightedSpeedupOver(b), r.IPC(), r.BandwidthOver(b),
			100*r.LLPAccuracy, r.MPKI)
	}

	fmt.Printf("sweep %s on %s (%s vs uncompressed)\n", *kind, *workloadName, *scheme)
	switch *kind {
	case "channels":
		for _, ch := range []int{1, 2, 4} {
			ch := ch
			runPoint(fmt.Sprintf("channels=%d", ch), func(c *ptmc.Config) { c.DRAM.Channels = ch })
		}
	case "llc":
		for _, mb := range []int{2, 4, 8, 16} {
			mb := mb
			runPoint(fmt.Sprintf("llc=%dMB", mb), func(c *ptmc.Config) { c.L3Bytes = mb << 20 })
		}
	case "llp":
		for _, n := range []int{64, 128, 256, 512, 1024, 4096} {
			n := n
			runPoint(fmt.Sprintf("llp=%d", n), func(c *ptmc.Config) { c.LLPEntries = n })
		}
	case "mcache":
		*scheme = ptmc.SchemeTableTMC // metadata cache only exists there
		for _, kb := range []int{8, 16, 32, 64, 128} {
			kb := kb
			runPoint(fmt.Sprintf("mcache=%dKB", kb), func(c *ptmc.Config) {
				c.MCacheBytes = kb << 10
			})
		}
	case "decomp":
		for _, lat := range []int64{2, 5, 10, 20, 40} {
			lat := lat
			runPoint(fmt.Sprintf("decomp=%d", lat), func(c *ptmc.Config) { c.DecompCycles = lat })
		}
	case "seeds":
		for s := int64(1); s <= 5; s++ {
			s := s
			runPoint(fmt.Sprintf("seed=%d", s), func(c *ptmc.Config) { c.Seed = s })
		}
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown kind %q\n", *kind)
		os.Exit(1)
	}
}
