// Command sweep runs parameter-sensitivity studies around the paper's
// design points: channel count, LLC size, LLP size, metadata-cache size for
// the table-based baseline, and ganged-eviction geometry (group size via
// scheme choice). Each sweep reports Dynamic-PTMC's (or the named scheme's)
// weighted speedup over the uncompressed baseline at every point.
//
// Points run concurrently up to -parallel workers; output prints in sweep
// order once every point has settled, so the report is identical at any
// worker count. A failing point does not abort the sweep: every point
// runs, completed rows print, the failures are listed afterwards, and only
// then does the process exit non-zero.
//
// -timeout bounds each point's wall-clock time: a point that exceeds its
// deadline is cancelled (the simulation aborts at its next cycle
// checkpoint), reported in the end-of-run summary as timed out, and the
// rest of the sweep continues.
//
// Usage:
//
//	sweep -kind channels -workload lbm06
//	sweep -kind llc      -workload mcf06 -scheme ptmc
//	sweep -kind llp      -workload lbm06
//	sweep -kind mcache   -workload pr-twitter
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"ptmc"
	"ptmc/internal/exec"
)

type point struct {
	label  string
	mutate func(*ptmc.Config)
}

func main() {
	var (
		kind         = flag.String("kind", "channels", "sweep: channels | llc | llp | mcache | decomp | seeds")
		workloadName = flag.String("workload", "lbm06", "workload name")
		scheme       = flag.String("scheme", ptmc.SchemeDynamicPTMC, "scheme under test")
		insts        = flag.Int64("insts", 400_000, "measured instructions per core")
		warmup       = flag.Int64("warmup", 200_000, "warmup instructions per core")
		cores        = flag.Int("cores", 8, "cores")
		seed         = flag.Int64("seed", 1, "base seed")
		shards       = flag.Int("shards", 0, "epoch-engine shards (0/1 = serial reference loop)")
		event        = flag.Bool("event", false, "run every point on the discrete-event engine (results identical)")
		parallel     = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"max concurrent simulations (output is identical at any value)")
		timeout = flag.Duration("timeout", 0,
			"per-point deadline (0 = none); timed-out points are reported, the sweep continues")

		metricsOut = flag.String("metrics", "",
			"write each point's metrics snapshot series to <name>-<label>.json")
		metricsIval = flag.Int64("metrics-interval", 10_000, "snapshot window in CPU cycles (with -metrics)")
		traceOut    = flag.String("trace", "",
			"write each point's controller events to <name>-<label>.trace (Chrome trace-event JSON)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := ptmc.StartPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", addr)
	}

	base := ptmc.DefaultConfig()
	base.Workload = *workloadName
	base.MeasureInstr = *insts
	base.WarmupInstr = *warmup
	base.Cores = *cores
	base.Seed = *seed
	base.Shards = *shards
	base.EventDriven = *event

	var points []point
	switch *kind {
	case "channels":
		for _, ch := range []int{1, 2, 4} {
			ch := ch
			points = append(points, point{fmt.Sprintf("channels=%d", ch),
				func(c *ptmc.Config) { c.DRAM.Channels = ch }})
		}
	case "llc":
		for _, mb := range []int{2, 4, 8, 16} {
			mb := mb
			points = append(points, point{fmt.Sprintf("llc=%dMB", mb),
				func(c *ptmc.Config) { c.L3Bytes = mb << 20 }})
		}
	case "llp":
		for _, n := range []int{64, 128, 256, 512, 1024, 4096} {
			n := n
			points = append(points, point{fmt.Sprintf("llp=%d", n),
				func(c *ptmc.Config) { c.LLPEntries = n }})
		}
	case "mcache":
		*scheme = ptmc.SchemeTableTMC // metadata cache only exists there
		for _, kb := range []int{8, 16, 32, 64, 128} {
			kb := kb
			points = append(points, point{fmt.Sprintf("mcache=%dKB", kb),
				func(c *ptmc.Config) { c.MCacheBytes = kb << 10 }})
		}
	case "decomp":
		for _, lat := range []int64{2, 5, 10, 20, 40} {
			lat := lat
			points = append(points, point{fmt.Sprintf("decomp=%d", lat),
				func(c *ptmc.Config) { c.DecompCycles = lat }})
		}
	case "seeds":
		for s := int64(1); s <= 5; s++ {
			s := s
			points = append(points, point{fmt.Sprintf("seed=%d", s),
				func(c *ptmc.Config) { c.Seed = s }})
		}
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown kind %q\n", *kind)
		os.Exit(1)
	}

	fmt.Printf("sweep %s on %s (%s vs uncompressed)\n", *kind, *workloadName, *scheme)

	// Every point runs to completion even if another fails: the two schemes
	// of one point share the point's pool slot (CompareParallel at 1) so
	// distinct points, not scheme pairs, are the unit of fan-out.
	pool := exec.NewPool(*parallel)
	rows := make([]string, len(points))
	errs := make([]error, len(points))
	var wg sync.WaitGroup
	for i, p := range points {
		wg.Add(1)
		go func(i int, p point) {
			defer wg.Done()
			if err := pool.Run(context.Background(), func() error {
				ctx := context.Background()
				if *timeout > 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, *timeout)
					defer cancel()
				}
				cfg := base
				p.mutate(&cfg)
				if *metricsOut != "" {
					cfg.MetricsInterval = *metricsIval
				}
				cfg.Trace = *traceOut != ""
				rs, err := ptmc.CompareParallel(ctx, 1, cfg,
					ptmc.SchemeUncompressed, *scheme)
				if err != nil {
					return err
				}
				r := rs[*scheme]
				b := rs[ptmc.SchemeUncompressed]
				if *metricsOut != "" {
					if err := writeFile(pointPath(*metricsOut, p.label), r.Metrics.WriteJSON); err != nil {
						return err
					}
				}
				if *traceOut != "" {
					err := writeFile(pointPath(*traceOut, p.label), func(w io.Writer) error {
						return ptmc.WriteChromeTrace(w, r.TraceEvents)
					})
					if err != nil {
						return err
					}
				}
				rows[i] = fmt.Sprintf("%-12s speedup=%.3f ipc=%.3f bw=%.3f llp=%.1f%% mpki=%.1f",
					p.label, r.WeightedSpeedupOver(b), r.IPC(), r.BandwidthOver(b),
					100*r.LLPAccuracy, r.MPKI)
				return nil
			}); err != nil {
				errs[i] = fmt.Errorf("%s: %w", p.label, err)
			}
		}(i, p)
	}
	wg.Wait()

	failed, timedOut := false, 0
	for i := range points {
		if errs[i] == nil {
			fmt.Println(rows[i])
		}
	}
	for i := range points {
		if errs[i] != nil {
			failed = true
			if errors.Is(errs[i], context.DeadlineExceeded) {
				timedOut++
				fmt.Fprintf(os.Stderr, "sweep: %v (timed out after %v)\n", errs[i], *timeout)
			} else {
				fmt.Fprintln(os.Stderr, "sweep:", errs[i])
			}
		}
	}
	if timedOut > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d of %d points timed out (-timeout %v)\n",
			timedOut, len(points), *timeout)
	}
	if failed {
		os.Exit(1)
	}
}

// pointPath derives a per-point output file from the flag value by
// inserting the point label before the extension.
func pointPath(base, label string) string {
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "-" + label + ext
}

// writeFile writes one observability artifact for a sweep point.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}
