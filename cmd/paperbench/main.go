// Command paperbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for paper-vs-measured results).
//
// Usage:
//
//	paperbench                 # representative workloads, quick horizon
//	paperbench -full           # all 64 workloads, long horizon (slow)
//	paperbench -only fig15     # one experiment (t1,t2,...,t6,fig4..fig18,ablate)
//	paperbench -insts 2000000  # raise the measured horizon
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"ptmc"
	"ptmc/internal/paper"
)

func main() {
	var (
		full     = flag.Bool("full", false, "run the full 64-workload population (slow)")
		only     = flag.String("only", "", "comma-separated experiments (default: all)")
		insts    = flag.Int64("insts", 0, "override measured instructions per core")
		warmup   = flag.Int64("warmup", 0, "override warmup instructions per core")
		cores    = flag.Int("cores", 0, "override core count")
		seed     = flag.Int64("seed", 1, "run seed")
		shards   = flag.Int("shards", 0, "epoch-engine shards per simulation (0/1 = serial reference loop)")
		event    = flag.Bool("event", false, "run every simulation on the discrete-event engine (reports identical)")
		quiet    = flag.Bool("quiet", false, "suppress per-run progress lines")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"max concurrent simulations (output is identical at any value)")

		metricsOut = flag.String("metrics", "",
			"run an instrumented reference simulation (-obs-workload, dynamic-ptmc) and write its snapshot series here")
		metricsIval = flag.Int64("metrics-interval", 10_000, "snapshot window in CPU cycles (with -metrics)")
		traceOut    = flag.String("trace", "",
			"write the reference simulation's controller events here (Chrome trace-event JSON)")
		obsWorkload = flag.String("obs-workload", "lbm06", "workload for the -metrics/-trace reference run")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		poolStats   = flag.Bool("poolstats", false, "print worker-pool queue-wait/run-time histograms at exit")
	)
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := ptmc.StartPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", addr)
	}

	opts := paper.Quick()
	if *full {
		opts = paper.Full()
	}
	if *insts > 0 {
		opts.Measure = *insts
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *cores > 0 {
		opts.Cores = *cores
	}
	opts.Seed = *seed
	opts.Silent = *quiet
	opts.Shards = *shards
	opts.EventDriven = *event

	r := paper.NewParallelRunner(opts, os.Stdout, *parallel)

	type experiment struct {
		name string
		run  func() error
	}
	experiments := []experiment{
		{"t1", func() error { r.TableI(); return nil }},
		{"t2", r.TableII},
		{"fig4", r.Figure4},
		{"fig5", r.Figure5},
		{"fig6", r.Figure6},
		{"fig9", r.Figure9},
		{"fig12", r.Figure12},
		{"fig14", r.Figure14},
		{"fig15", r.Figure15},
		{"t3", func() error { r.TableIII(); return nil }},
		{"fig17", r.Figure17},
		{"fig18", r.Figure18},
		{"t4", r.TableIV},
		{"t5", r.TableV},
		{"t6", r.TableVI},
		{"related", r.RelatedWork},
		{"ablate", func() error {
			if err := r.LLPAblation([]int{64, 256, 512, 2048}); err != nil {
				return err
			}
			r.MarkerWidthNote(16)
			return nil
		}},
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}

	start := time.Now()
	for _, e := range experiments {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
	}

	// The experiment tables aggregate across dozens of runs, so the
	// observability artifacts come from one dedicated reference run at the
	// harness horizon rather than from every table cell.
	if *metricsOut != "" || *traceOut != "" {
		cfg := ptmc.DefaultConfig()
		cfg.Workload = *obsWorkload
		cfg.Scheme = ptmc.SchemeDynamicPTMC
		cfg.Cores = opts.Cores
		cfg.WarmupInstr = opts.Warmup
		cfg.MeasureInstr = opts.Measure
		cfg.Seed = opts.Seed
		cfg.Shards = opts.Shards
		if *metricsOut != "" {
			cfg.MetricsInterval = *metricsIval
		}
		cfg.Trace = *traceOut != ""
		res, err := ptmc.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: reference run: %v\n", err)
			os.Exit(1)
		}
		if *metricsOut != "" {
			writeFile(*metricsOut, res.Metrics.WriteJSON)
		}
		if *traceOut != "" {
			writeFile(*traceOut, func(w io.Writer) error {
				return ptmc.WriteChromeTrace(w, res.TraceEvents)
			})
			fmt.Printf("trace: %d events (%d dropped) -> %s\n",
				len(res.TraceEvents), res.TraceDropped, *traceOut)
		}
	}

	if *poolStats {
		fmt.Println(r.Pool().QueueWait())
		fmt.Println(r.Pool().RunTime())
	}
	fmt.Printf("\npaperbench complete in %v\n", time.Since(start).Round(time.Second))
}

// writeFile writes one observability artifact, exiting on failure so a
// requested -metrics/-trace file is never silently missing or truncated.
func writeFile(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: write %s: %v\n", path, err)
		os.Exit(1)
	}
}
