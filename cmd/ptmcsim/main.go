// Command ptmcsim runs one workload under one memory-controller scheme and
// prints the measured statistics.
//
// Usage:
//
//	ptmcsim -workload lbm06 -scheme dynamic-ptmc [-baseline] [-insts N] ...
//
// With -baseline, the uncompressed baseline runs too and the weighted
// speedup is reported. -list prints the available workloads and schemes.
//
// With -inject N, ptmcsim instead runs an N-trial fault-injection campaign
// against the controller (seeded by -seed) and fails if any injected fault
// goes undetected without being harmless; cmd/faultprobe exposes the full
// campaign surface.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"ptmc"
)

func main() {
	var (
		workloadName = flag.String("workload", "lbm06", "workload or mix name (-list to enumerate)")
		scheme       = flag.String("scheme", ptmc.SchemeDynamicPTMC, "memory-controller scheme")
		baseline     = flag.Bool("baseline", false, "also run the uncompressed baseline and report speedup")
		insts        = flag.Int64("insts", 400_000, "measured instructions per core")
		warmup       = flag.Int64("warmup", 700_000, "warmup instructions per core")
		cores        = flag.Int("cores", 8, "number of cores (rate mode)")
		channels     = flag.Int("channels", 2, "DRAM channels")
		l3MB         = flag.Int("l3mb", 8, "LLC size in MB")
		seed         = flag.Int64("seed", 1, "deterministic run seed")
		list         = flag.Bool("list", false, "list workloads and schemes, then exit")
		inject       = flag.Int("inject", 0, "run an N-trial fault-injection campaign instead of a simulation")
		parallel     = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"max concurrent scheme simulations")
	)
	flag.Parse()

	if *list {
		fmt.Println("schemes: ", strings.Join(ptmc.Schemes(), " "))
		fmt.Println("workloads:")
		for _, w := range ptmc.Workloads() {
			fmt.Println("  " + w)
		}
		return
	}

	if *inject > 0 {
		rep, err := ptmc.RunFaultCampaign(context.Background(), ptmc.FaultConfig{
			Trials:  *inject,
			Seed:    *seed,
			Dynamic: *scheme == ptmc.SchemeDynamicPTMC,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ptmcsim:", err)
			os.Exit(1)
		}
		fmt.Printf("fault campaign: %d trials, seed %d\n", len(rep.Trials), *seed)
		fmt.Print(rep.Summary())
		if rep.Silent != 0 {
			fmt.Fprintf(os.Stderr, "ptmcsim: %d SILENT corruptions\n", rep.Silent)
			os.Exit(1)
		}
		fmt.Println("no silent corruptions")
		return
	}

	cfg := ptmc.DefaultConfig()
	cfg.Workload = *workloadName
	cfg.Scheme = *scheme
	cfg.MeasureInstr = *insts
	cfg.WarmupInstr = *warmup
	cfg.Cores = *cores
	cfg.DRAM.Channels = *channels
	cfg.L3Bytes = *l3MB << 20
	cfg.Seed = *seed

	schemes := []string{*scheme}
	if *baseline && *scheme != ptmc.SchemeUncompressed {
		schemes = append(schemes, ptmc.SchemeUncompressed)
	}
	results, err := ptmc.CompareParallel(context.Background(), *parallel, cfg, schemes...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptmcsim:", err)
		os.Exit(1)
	}

	r := results[*scheme]
	fmt.Println(r)
	fmt.Printf("cycles=%d instructions=%d\n", r.Cycles, r.Instructions)
	fmt.Printf("bandwidth: demandR=%d mispredictR=%d metadataR=%d prefetchR=%d\n",
		r.Mem.DemandReads, r.Mem.MispredictReads, r.Mem.MetadataReads, r.Mem.PrefetchReads)
	fmt.Printf("           dirtyW=%d cleanCompW=%d invalidateW=%d metadataW=%d\n",
		r.Mem.DirtyWrites, r.Mem.CleanCompIntoW, r.Mem.Invalidates, r.Mem.MetadataWrites)
	fmt.Printf("compression: 4:1=%d 2:1=%d singles=%d freeInstalls=%d usefulFree=%d coalesced=%d\n",
		r.Mem.Groups4, r.Mem.Groups2, r.Mem.SinglesWrit, r.Mem.FreeInstalls,
		r.Mem.UsefulFreePf, r.Mem.CoalescedReads)
	fmt.Printf("robustness: inversions=%d rekeys=%d integrityErrs=%d\n",
		r.Mem.Inversions, r.Mem.ReKeys, r.Mem.IntegrityErrs)
	fmt.Printf("energy: %.3f J (%.2f W), EDP %.4g Js\n",
		r.Energy.TotalJ, r.Energy.AvgWatts, r.Energy.EDP)

	if base, ok := results[ptmc.SchemeUncompressed]; ok && *scheme != ptmc.SchemeUncompressed {
		fmt.Printf("weighted speedup over uncompressed: %.3f\n", r.WeightedSpeedupOver(base))
		fmt.Printf("bandwidth vs uncompressed: %.3f\n", r.BandwidthOver(base))
	}
}
