// Command ptmcsim runs one workload under one memory-controller scheme and
// prints the measured statistics.
//
// Usage:
//
//	ptmcsim -workload lbm06 -scheme dynamic-ptmc [-baseline] [-insts N] ...
//
// With -baseline, the uncompressed baseline runs too and the weighted
// speedup is reported. -list prints the available workloads and schemes.
//
// With -inject N, ptmcsim instead runs an N-trial fault-injection campaign
// against the controller (seeded by -seed) and fails if any injected fault
// goes undetected without being harmless; cmd/faultprobe exposes the full
// campaign surface.
//
// Observability (see EXPERIMENTS.md "Observability"): -metrics out.json
// writes the per-window stats snapshot time series, -trace out.trace writes
// a Chrome trace-event file of controller events (load in chrome://tracing
// or Perfetto), and -pprof addr serves net/http/pprof while the run
// executes. All three also work in -inject mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"ptmc"
)

func main() {
	var (
		workloadName = flag.String("workload", "lbm06", "workload or mix name (-list to enumerate)")
		scheme       = flag.String("scheme", ptmc.SchemeDynamicPTMC, "memory-controller scheme")
		baseline     = flag.Bool("baseline", false, "also run the uncompressed baseline and report speedup")
		insts        = flag.Int64("insts", 400_000, "measured instructions per core")
		warmup       = flag.Int64("warmup", 700_000, "warmup instructions per core")
		cores        = flag.Int("cores", 8, "number of cores (rate mode)")
		channels     = flag.Int("channels", 2, "DRAM channels")
		l3MB         = flag.Int("l3mb", 8, "LLC size in MB")
		seed         = flag.Int64("seed", 1, "deterministic run seed")
		shards       = flag.Int("shards", 0, "epoch-engine shards (0/1 = serial reference loop)")
		event        = flag.Bool("event", false, "run on the discrete-event engine (results identical, idle cycles free)")
		list         = flag.Bool("list", false, "list workloads and schemes, then exit")
		inject       = flag.Int("inject", 0, "run an N-trial fault-injection campaign instead of a simulation")
		parallel     = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"max concurrent scheme simulations")
		metricsOut  = flag.String("metrics", "", "write the metrics snapshot time series to this JSON file")
		metricsIval = flag.Int64("metrics-interval", 10_000, "snapshot window in CPU cycles (with -metrics)")
		traceOut    = flag.String("trace", "", "write controller events to this Chrome trace-event JSON file")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := ptmc.StartPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ptmcsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", addr)
	}

	if *list {
		fmt.Println("schemes: ", strings.Join(ptmc.Schemes(), " "))
		fmt.Println("workloads:")
		for _, w := range ptmc.Workloads() {
			fmt.Println("  " + w)
		}
		return
	}

	if *inject > 0 {
		rep, err := ptmc.RunFaultCampaign(context.Background(), ptmc.FaultConfig{
			Trials:  *inject,
			Seed:    *seed,
			Dynamic: *scheme == ptmc.SchemeDynamicPTMC,
			Trace:   *traceOut != "",
			Metrics: *metricsOut != "",
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ptmcsim:", err)
			os.Exit(1)
		}
		fmt.Printf("fault campaign: %d trials, seed %d\n", len(rep.Trials), *seed)
		fmt.Print(rep.Summary())
		if *metricsOut != "" {
			writeFile(*metricsOut, "metrics", rep.Metrics.WriteJSON)
		}
		if *traceOut != "" {
			writeFile(*traceOut, "trace", func(w io.Writer) error {
				return ptmc.WriteChromeTrace(w, rep.TraceEvents)
			})
			fmt.Printf("trace: %d events (%d dropped) -> %s\n",
				len(rep.TraceEvents), rep.TraceDropped, *traceOut)
		}
		if rep.Silent != 0 {
			fmt.Fprintf(os.Stderr, "ptmcsim: %d SILENT corruptions\n", rep.Silent)
			os.Exit(1)
		}
		fmt.Println("no silent corruptions")
		return
	}

	cfg := ptmc.DefaultConfig()
	cfg.Workload = *workloadName
	cfg.Scheme = *scheme
	cfg.MeasureInstr = *insts
	cfg.WarmupInstr = *warmup
	cfg.Cores = *cores
	cfg.DRAM.Channels = *channels
	cfg.L3Bytes = *l3MB << 20
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.EventDriven = *event
	if *metricsOut != "" {
		cfg.MetricsInterval = *metricsIval
	}
	cfg.Trace = *traceOut != ""

	schemes := []string{*scheme}
	if *baseline && *scheme != ptmc.SchemeUncompressed {
		schemes = append(schemes, ptmc.SchemeUncompressed)
	}
	results, err := ptmc.CompareParallel(context.Background(), *parallel, cfg, schemes...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptmcsim:", err)
		os.Exit(1)
	}

	r := results[*scheme]
	if *metricsOut != "" {
		writeFile(*metricsOut, "metrics", r.Metrics.WriteJSON)
	}
	if *traceOut != "" {
		writeFile(*traceOut, "trace", func(w io.Writer) error {
			return ptmc.WriteChromeTrace(w, r.TraceEvents)
		})
		fmt.Printf("trace: %d events (%d dropped) -> %s\n",
			len(r.TraceEvents), r.TraceDropped, *traceOut)
	}
	fmt.Println(r)
	fmt.Printf("cycles=%d instructions=%d\n", r.Cycles, r.Instructions)
	fmt.Printf("bandwidth: demandR=%d mispredictR=%d metadataR=%d prefetchR=%d\n",
		r.Mem.DemandReads, r.Mem.MispredictReads, r.Mem.MetadataReads, r.Mem.PrefetchReads)
	fmt.Printf("           dirtyW=%d cleanCompW=%d invalidateW=%d metadataW=%d\n",
		r.Mem.DirtyWrites, r.Mem.CleanCompIntoW, r.Mem.Invalidates, r.Mem.MetadataWrites)
	fmt.Printf("compression: 4:1=%d 2:1=%d singles=%d freeInstalls=%d usefulFree=%d coalesced=%d\n",
		r.Mem.Groups4, r.Mem.Groups2, r.Mem.SinglesWrit, r.Mem.FreeInstalls,
		r.Mem.UsefulFreePf, r.Mem.CoalescedReads)
	fmt.Printf("robustness: inversions=%d rekeys=%d integrityErrs=%d\n",
		r.Mem.Inversions, r.Mem.ReKeys, r.Mem.IntegrityErrs)
	fmt.Printf("energy: %.3f J (%.2f W), EDP %.4g Js\n",
		r.Energy.TotalJ, r.Energy.AvgWatts, r.Energy.EDP)

	if base, ok := results[ptmc.SchemeUncompressed]; ok && *scheme != ptmc.SchemeUncompressed {
		fmt.Printf("weighted speedup over uncompressed: %.3f\n", r.WeightedSpeedupOver(base))
		fmt.Printf("bandwidth vs uncompressed: %.3f\n", r.BandwidthOver(base))
	}
}

// writeFile writes one observability artifact, exiting on failure so a
// requested -metrics/-trace file is never silently missing or truncated.
func writeFile(path, what string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptmcsim: write %s: %v\n", what, err)
		os.Exit(1)
	}
}
