// Command tracetool records and replays access traces (the trace-driven
// workflow of USIMM, which the paper's evaluation is built on).
//
//	tracetool record -workload lbm06 -ops 2000000 -out lbm06.trc
//	tracetool info   -in lbm06.trc
//	tracetool replay -in lbm06.trc -scheme dynamic-ptmc -baseline
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"ptmc"
	"ptmc/internal/trace"
	"ptmc/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracetool {record|info|replay} [flags]")
	os.Exit(2)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("workload", "lbm06", "workload to record")
	ops := fs.Int("ops", 1_000_000, "memory operations to record")
	out := fs.String("out", "trace.trc", "output file")
	seed := fs.Int64("seed", 1, "generator seed")
	fs.Parse(args)

	wl, err := workload.Lookup(*name)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, wl.Mix, *seed)
	if err != nil {
		return err
	}
	cap := trace.NewCapture(wl.NewStream(*seed), w)
	for i := 0; i < *ops; i++ {
		cap.Next()
	}
	if err := cap.Err(); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d ops of %s to %s\n", w.Events(), *name, *out)
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "trace.trc", "trace file")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var events, writes, instr uint64
	lines := map[uint64]bool{}
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		events++
		instr += uint64(e.Gap) + 1
		if e.Write {
			writes++
		}
		lines[e.VAddr>>6] = true
	}
	fmt.Printf("events:        %d\n", events)
	fmt.Printf("instructions:  %d (gaps included)\n", instr)
	fmt.Printf("write ratio:   %.1f%%\n", 100*float64(writes)/float64(events))
	fmt.Printf("distinct lines %d (%.1f MB touched)\n", len(lines), float64(len(lines))*64/(1<<20))
	fmt.Printf("value mix:     %d kinds, seed %d\n", len(r.Header.Mix), r.Header.Seed)
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "trace.trc", "trace file")
	scheme := fs.String("scheme", ptmc.SchemeDynamicPTMC, "scheme")
	baseline := fs.Bool("baseline", false, "also run uncompressed and report speedup")
	cores := fs.Int("cores", 8, "cores (each replays the trace with its own offset seed)")
	insts := fs.Int64("insts", 400_000, "measured instructions per core")
	warmup := fs.Int64("warmup", 400_000, "warmup instructions per core")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent scheme simulations")
	fs.Parse(args)

	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}

	cfg := ptmc.DefaultConfig()
	cfg.Workload = "trace:" + *in
	cfg.Cores = *cores
	cfg.MeasureInstr = *insts
	cfg.WarmupInstr = *warmup
	cfg.Sources = func(core int, seed int64) (workload.Source, error) {
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		rep, err := trace.NewReplay(r)
		if err != nil {
			return nil, err
		}
		// Stagger cores through the recording so rate mode does not run
		// in lockstep.
		for i := 0; i < core*rep.Len()/max(*cores, 1); i++ {
			rep.Next()
		}
		return rep, nil
	}

	schemes := []string{*scheme}
	if *baseline && *scheme != ptmc.SchemeUncompressed {
		schemes = append(schemes, ptmc.SchemeUncompressed)
	}
	rs, err := ptmc.CompareParallel(context.Background(), *parallel, cfg, schemes...)
	if err != nil {
		return err
	}
	r := rs[*scheme]
	fmt.Println(r)
	if base, ok := rs[ptmc.SchemeUncompressed]; ok && *scheme != ptmc.SchemeUncompressed {
		fmt.Printf("weighted speedup over uncompressed: %.3f\n", r.WeightedSpeedupOver(base))
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
