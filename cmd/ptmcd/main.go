// Command ptmcd is the simulation-as-a-service daemon: a crash-safe HTTP
// server that accepts experiment jobs (workload + scheme matrix + config),
// runs them on the shared worker pool, and survives kill -9 without losing
// accepted work (see internal/server and DESIGN.md "Crash-safe service").
//
// Serve (the default):
//
//	ptmcd -addr 127.0.0.1:8080 -data /var/lib/ptmcd
//
// On SIGTERM/SIGINT the daemon drains gracefully: stops accepting (503),
// cancels in-flight simulations at their next epoch barrier, checkpoints
// the durable queue, and exits 0. Jobs interrupted mid-run replay on the
// next boot and complete with byte-identical results.
//
// Client subcommands (for scripts; plain HTTP/JSON underneath):
//
//	ptmcd submit -server http://HOST -spec '{"workload":"lbm06",...}'
//	ptmcd status -server http://HOST -id JOBID
//	ptmcd wait   -server http://HOST -id JOBID [-timeout 10m]
//	ptmcd result -server http://HOST -id JOBID
//	ptmcd trace  -server http://HOST -id JOBID
//
// submit prints the job id on stdout; wait blocks until the job is
// terminal and exits non-zero if it failed; result streams the persisted
// result artifact to stdout; trace streams the Chrome-trace artifact of a
// job submitted with "trace": true.
//
// Every verb but trace also works on sweeps with -sweep: submit posts the
// spec to /sweeps, and status/wait/result address /sweeps/{id}.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ptmc/internal/obs"
	"ptmc/internal/server"
)

func main() {
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		if err := client(os.Args[1], os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "ptmcd:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ptmcd:", err)
		os.Exit(1)
	}
}

func serve(args []string) error {
	fs := flag.NewFlagSet("ptmcd", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile = fs.String("addr-file", "", "write the bound address to this file (for scripts with -addr :0)")
		dir      = fs.String("data", "ptmcd-data", "durable job-store directory (WAL + results)")
		workers  = fs.Int("workers", 1, "concurrent jobs")
		parallel = fs.Int("parallel", 0, "scheme-simulation pool size (0 = GOMAXPROCS)")
		queue    = fs.Int("queue", 64, "max queued jobs before 503")
		quota    = fs.Int("tenant-quota", 0, "max queued+running jobs per tenant (0 = unlimited)")
		timeout  = fs.Duration("job-timeout", 0, "default per-scheme deadline (0 = none)")
		retries  = fs.Int("retries", 1, "attempts per scheme for retryable failures")
		backoff  = fs.Duration("backoff", 100*time.Millisecond, "base jittered retry backoff")
		segBytes = fs.Int64("wal-segment", 0, "WAL segment rotation threshold in bytes (0 = default 4MiB)")
		drainT   = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
		pprof    = fs.String("pprof", "", "serve net/http/pprof on this address")
	)
	fs.Parse(args)

	if *pprof != "" {
		paddr, err := obs.StartPprof(*pprof)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", paddr)
	}

	srv, err := server.New(server.Config{
		Dir:          *dir,
		Workers:      *workers,
		Parallel:     *parallel,
		QueueCap:     *queue,
		TenantQuota:  *quota,
		JobTimeout:   *timeout,
		Retries:      *retries,
		Backoff:      *backoff,
		SegmentBytes: *segBytes,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Atomic write: scripts poll for this file and must never read a
		// half-written address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			return err
		}
	}
	fmt.Printf("ptmcd: listening on %s (data %s, %d workers)\n", bound, *dir, *workers)

	hs := &http.Server{Handler: srv.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Printf("ptmcd: %v: draining (stop accepting, cancel in-flight, checkpoint queue)\n", s)
	case err := <-httpDone:
		return fmt.Errorf("http server: %w", err)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	sdctx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	_ = hs.Shutdown(sdctx)
	fmt.Println("ptmcd: drained cleanly")
	return nil
}

// client implements the thin HTTP subcommands.
func client(cmd string, args []string) error {
	fs := flag.NewFlagSet("ptmcd "+cmd, flag.ExitOnError)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8080", "daemon base URL")
		id        = fs.String("id", "", "job (or sweep, with -sweep) id")
		spec      = fs.String("spec", "", "job spec JSON (submit; - reads stdin)")
		sweepMode = fs.Bool("sweep", false, "operate on a sweep: submit posts to /sweeps, status/wait/result use /sweeps/{id}")
		timeout   = fs.Duration("timeout", 15*time.Minute, "wait deadline")
		poll      = fs.Duration("poll", 200*time.Millisecond, "wait poll interval")
	)
	fs.Parse(args)
	base := strings.TrimRight(*serverURL, "/")
	// Jobs and sweeps share the submit/status/wait/result verbs; only the
	// resource path differs.
	resource := base + "/jobs"
	if *sweepMode {
		resource = base + "/sweeps"
	}

	switch cmd {
	case "submit":
		body := *spec
		if body == "-" || body == "" {
			b, err := io.ReadAll(os.Stdin)
			if err != nil {
				return err
			}
			body = string(b)
		}
		resp, err := http.Post(resource, "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(data)))
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			return fmt.Errorf("submit: bad response: %w", err)
		}
		fmt.Println(st.ID)
		return nil

	case "status":
		if *id == "" {
			return errors.New("status: -id is required")
		}
		return fetch(resource+"/"+*id, os.Stdout)

	case "result":
		if *id == "" {
			return errors.New("result: -id is required")
		}
		return fetch(resource+"/"+*id+"/result", os.Stdout)

	case "trace":
		if *id == "" {
			return errors.New("trace: -id is required")
		}
		if *sweepMode {
			return errors.New("trace: sweeps have no trace artifact (trace individual child jobs)")
		}
		return fetch(base+"/jobs/"+*id+"/trace", os.Stdout)

	case "metrics":
		return fetch(base+"/metrics", os.Stdout)

	case "wait":
		if *id == "" {
			return errors.New("wait: -id is required")
		}
		what := "job"
		if *sweepMode {
			what = "sweep"
		}
		deadline := time.Now().Add(*timeout)
		for {
			st, err := status(resource, *id)
			if err == nil {
				switch st.State {
				case "done":
					fmt.Println("done")
					return nil
				case "failed":
					return fmt.Errorf("%s failed (%s): %s", what, st.FailKind, st.Error)
				}
			}
			// Transient fetch errors (daemon restarting mid-wait) retry
			// until the deadline: crash recovery is the point.
			if time.Now().After(deadline) {
				if err != nil {
					return fmt.Errorf("wait: %w", err)
				}
				return fmt.Errorf("wait: timed out (%s)", *id)
			}
			time.Sleep(*poll)
		}

	default:
		return fmt.Errorf("unknown subcommand %q (want submit|status|wait|result|trace|metrics)", cmd)
	}
}

// waitStatus is the subset of job/sweep status that wait needs; both
// resources serve it under the same field names.
type waitStatus struct {
	State    string `json:"state"`
	FailKind string `json:"fail_kind"`
	Error    string `json:"error"`
}

func status(resource, id string) (*waitStatus, error) {
	resp, err := http.Get(resource + "/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status: %s", resp.Status)
	}
	var st waitStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func fetch(url string, w io.Writer) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	_, err = io.Copy(w, resp.Body)
	return err
}
