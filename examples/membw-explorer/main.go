// Membw-explorer: two studies a memory-system architect would run with
// this library.
//
//  1. Crossover study: sweep a synthetic workload's data compressibility
//     (fraction of incompressible pages) and watch where Dynamic-PTMC's
//     benefit crosses from speedup to neutral — the cost/benefit boundary
//     the paper's Figure 15 straddles.
//
//  2. Compression shapes: how FPC, BDI, and the hybrid handle common value
//     shapes, and which pairs fit PTMC's 60-byte budget.
//
// (The §IV-C attack-resilience scenario — engineered marker collisions, LIT
// overflow, re-keying — needs access to the marker keys and is exercised in
// internal/memctrl's adversarial tests instead.)
//
//	go run ./examples/membw-explorer
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"ptmc"
)

func main() {
	crossoverStudy()
	compressibilityTable()
}

// crossoverStudy sweeps the incompressible fraction of a streaming
// workload's pages.
func crossoverStudy() {
	fmt.Println("== crossover: speedup vs fraction of incompressible data ==")
	fmt.Printf("%12s %10s %12s %12s\n", "random-pages", "speedup", "freeFills", "extra-writes")
	for _, randWeight := range []int{0, 25, 50, 75, 100} {
		w := ptmc.Workload{
			Name: fmt.Sprintf("sweep-r%d", randWeight), Suite: "custom",
			FootprintBytes: 24 << 20,
			MemFrac:        0.32, WriteFrac: 0.25,
			SeqProb: 0.85, SeqRun: 48,
			HotFrac: 0.02, HotProb: 0.2,
			SweepBytes: 1 << 20,
			Mix: ptmc.ValueMix{
				{Kind: ptmc.KindZero, Weight: 30 * (100 - randWeight) / 100},
				{Kind: ptmc.KindSmallInt, Weight: 70 * (100 - randWeight) / 100},
				{Kind: ptmc.KindRandom, Weight: randWeight},
			},
		}
		// Drop zero-weight entries (the mix validator requires weights).
		mix := w.Mix[:0]
		for _, e := range w.Mix {
			if e.Weight > 0 {
				mix = append(mix, e)
			}
		}
		w.Mix = mix

		cfg := ptmc.DefaultConfig()
		cfg.Custom = &w
		cfg.Workload = w.Name
		cfg.Cores = 2
		cfg.L3Bytes = 1 << 20
		cfg.WarmupInstr = 150_000
		cfg.MeasureInstr = 250_000
		rs, err := ptmc.Compare(cfg, ptmc.SchemeUncompressed, ptmc.SchemeDynamicPTMC)
		if err != nil {
			log.Fatal(err)
		}
		dyn := rs[ptmc.SchemeDynamicPTMC]
		fmt.Printf("%11d%% %10.3f %12d %12d\n", randWeight,
			dyn.WeightedSpeedupOver(rs[ptmc.SchemeUncompressed]),
			dyn.Mem.FreeInstalls, dyn.Mem.CleanCompIntoW+dyn.Mem.Invalidates)
	}
	fmt.Println()
}

// compressibilityTable uses the compressors directly: how well do common
// value shapes compress, and do 2 lines fit in PTMC's 60-byte budget?
func compressibilityTable() {
	fmt.Println("== per-line compression of common value shapes ==")
	fmt.Printf("%-18s %6s %6s %8s %10s\n", "shape", "fpc", "bdi", "hybrid", "pair<=60B")
	fpc, bdi, hyb := ptmc.NewFPCCompressor(), ptmc.NewBDICompressor(), ptmc.NewHybridCompressor()
	for _, shape := range []struct {
		name string
		gen  func(i int) []byte
	}{
		{"zeros", func(int) []byte { return make([]byte, 64) }},
		{"small-int32", func(i int) []byte { return ints32(i, 100) }},
		{"pointer-array", func(i int) []byte { return pointers(i) }},
		{"fp-doubles", func(i int) []byte { return doubles(i) }},
		{"random", func(i int) []byte { return random(i) }},
	} {
		l0, l1 := shape.gen(0), shape.gen(1)
		pair := len(hyb.Compress(l0)) + len(hyb.Compress(l1))
		fit := "no"
		if pair <= 60 {
			fit = "yes"
		}
		fmt.Printf("%-18s %5dB %5dB %7dB %10s\n", shape.name,
			len(fpc.Compress(l0)), len(bdi.Compress(l0)), len(hyb.Compress(l0)), fit)
	}
}

func ints32(seed, bound int) []byte {
	l := make([]byte, 64)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(l[i*4:], uint32((seed*31+i*7)%bound))
	}
	return l
}

func pointers(seed int) []byte {
	l := make([]byte, 64)
	base := uint64(0x7F30_0000_0000) + uint64(seed)<<20
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(l[i*8:], base+uint64(i*64))
	}
	return l
}

func doubles(seed int) []byte {
	l := make([]byte, 64)
	h := uint64(seed)*0x9E3779B97F4A7C15 + 12345
	for i := 0; i < 8; i++ {
		h ^= h >> 13
		h *= 0xFF51AFD7ED558CCD
		binary.LittleEndian.PutUint64(l[i*8:], 0x3FF0_0000_0000_0000|h&0xF_FFFF_FFFF_FFFF)
	}
	return l
}

func random(seed int) []byte {
	l := make([]byte, 64)
	h := uint64(seed) + 99
	for i := 0; i < 8; i++ {
		h = h*6364136223846793005 + 1442695040888963407
		binary.LittleEndian.PutUint64(l[i*8:], h)
	}
	return l
}
