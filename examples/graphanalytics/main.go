// Graph analytics: the paper's robustness story. GAP-style graph workloads
// have poor reuse and spatial locality, so the maintenance bandwidth of
// compression (clean compressed writebacks, Marker-IL invalidates,
// mispredict re-reads) never pays for itself. Static PTMC slows down;
// Dynamic-PTMC's sampled cost/benefit counter notices and disables
// compression, restoring baseline performance (§V, Figure 15).
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"
	"log"

	"ptmc"
)

func main() {
	cfg := ptmc.DefaultConfig()
	cfg.Workload = "pr-twitter" // PageRank on a twitter-scale synthetic graph
	cfg.Cores = 8               // Table I configuration (takes a couple of minutes)
	cfg.WarmupInstr = 250_000
	cfg.MeasureInstr = 300_000

	fmt.Println("simulating", cfg.Workload, "under three schemes ...")
	results, err := ptmc.Compare(cfg,
		ptmc.SchemeUncompressed, ptmc.SchemePTMC, ptmc.SchemeDynamicPTMC)
	if err != nil {
		log.Fatal(err)
	}
	base := results[ptmc.SchemeUncompressed]

	fmt.Printf("\n%-14s %8s %9s %10s %12s %11s\n",
		"scheme", "speedup", "IPC", "extra-wr", "invalidates", "mispredicts")
	for _, name := range []string{ptmc.SchemeUncompressed, ptmc.SchemePTMC, ptmc.SchemeDynamicPTMC} {
		r := results[name]
		fmt.Printf("%-14s %8.3f %9.3f %10d %12d %11d\n",
			name, r.WeightedSpeedupOver(base), r.IPC(),
			r.Mem.CleanCompIntoW, r.Mem.Invalidates, r.Mem.MispredictReads)
	}

	static := results[ptmc.SchemePTMC].WeightedSpeedupOver(base)
	dynamic := results[ptmc.SchemeDynamicPTMC].WeightedSpeedupOver(base)
	fmt.Println()
	switch {
	case dynamic >= 0.99 && dynamic > static:
		fmt.Println("Dynamic-PTMC held the no-hurt guarantee where static PTMC paid")
		fmt.Println("compression maintenance bandwidth it could not recover.")
	case dynamic >= 0.99:
		fmt.Println("Dynamic-PTMC held the no-hurt guarantee.")
	default:
		fmt.Printf("unexpected: Dynamic-PTMC at %.3f of baseline\n", dynamic)
	}
}
