// Quickstart: run one memory-intensive workload under Dynamic-PTMC and the
// uncompressed baseline, and report the paper's headline metrics — weighted
// speedup, DRAM traffic, and where the bandwidth went.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ptmc"
)

func main() {
	cfg := ptmc.DefaultConfig()
	cfg.Workload = "lbm06"     // streaming, compressible (Table II regime)
	cfg.Cores = 4              // keep the example snappy
	cfg.WarmupInstr = 200_000  // let sweeps compress memory first
	cfg.MeasureInstr = 400_000 // measured window per core
	cfg.L3Bytes = 4 << 20      // scale LLC with the core count

	fmt.Println("simulating", cfg.Workload, "on", cfg.Cores, "cores ...")
	results, err := ptmc.Compare(cfg, ptmc.SchemeUncompressed, ptmc.SchemeDynamicPTMC)
	if err != nil {
		log.Fatal(err)
	}
	base := results[ptmc.SchemeUncompressed]
	dyn := results[ptmc.SchemeDynamicPTMC]

	fmt.Printf("\n%-22s %12s %12s\n", "", "baseline", "dynamic-ptmc")
	fmt.Printf("%-22s %12.3f %12.3f\n", "IPC", base.IPC(), dyn.IPC())
	fmt.Printf("%-22s %12d %12d\n", "DRAM reads", base.DRAM.Reads, dyn.DRAM.Reads)
	fmt.Printf("%-22s %12d %12d\n", "DRAM writes", base.DRAM.Writes, dyn.DRAM.Writes)
	fmt.Printf("%-22s %12s %12.1f%%\n", "L3 hit rate", pct(base.L3.HitRate()), 100*dyn.L3.HitRate())
	fmt.Printf("%-22s %12s %12d\n", "free line fills", "-", dyn.Mem.FreeInstalls)
	fmt.Printf("%-22s %12s %12.1f%%\n", "LLP accuracy", "-", 100*dyn.LLPAccuracy)

	fmt.Printf("\nweighted speedup: %.3f\n", dyn.WeightedSpeedupOver(base))
	fmt.Printf("bandwidth vs baseline: %.3f\n", dyn.BandwidthOver(base))
	if dyn.Mem.IntegrityErrs != 0 {
		log.Fatalf("integrity errors: %d", dyn.Mem.IntegrityErrs)
	}
	fmt.Println("data integrity: every fill decoded to the architectural value")
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
