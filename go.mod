module ptmc

go 1.22
