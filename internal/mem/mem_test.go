package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUntouchedReadsZero(t *testing.T) {
	s := NewStore()
	got := s.Read(12345)
	if !bytes.Equal(got, make([]byte, LineSize)) {
		t.Error("untouched line should read as zeros")
	}
	if s.Touched(12345) {
		t.Error("read must not mark a line touched")
	}
}

func TestWriteRead(t *testing.T) {
	s := NewStore()
	line := make([]byte, LineSize)
	for i := range line {
		line[i] = byte(i)
	}
	s.Write(7, line)
	if !bytes.Equal(s.Read(7), line) {
		t.Error("read-after-write mismatch")
	}
	if !s.Touched(7) {
		t.Error("written line should be touched")
	}
	// Neighboring line in the same page reads zero.
	if !bytes.Equal(s.Read(8), make([]byte, LineSize)) {
		t.Error("neighbor line should still be zero")
	}
}

func TestWritePartial(t *testing.T) {
	s := NewStore()
	line := bytes.Repeat([]byte{0xAA}, LineSize)
	s.Write(3, line)
	s.WritePartial(3, 60, []byte{1, 2, 3, 4})
	got := s.Read(3)
	want := append(bytes.Repeat([]byte{0xAA}, 60), 1, 2, 3, 4)
	if !bytes.Equal(got, want) {
		t.Errorf("partial write: got %x", got[56:])
	}
}

func TestWritePartialUntouched(t *testing.T) {
	s := NewStore()
	s.WritePartial(100, 0, []byte{9})
	got := s.Read(100)
	if got[0] != 9 || got[1] != 0 {
		t.Error("partial write to untouched line should land on zeros")
	}
}

func TestBadSizesPanic(t *testing.T) {
	s := NewStore()
	mustPanic(t, func() { s.Write(0, []byte{1}) })
	mustPanic(t, func() { s.WritePartial(0, 62, []byte{1, 2, 3}) })
	mustPanic(t, func() { s.WritePartial(0, -1, []byte{1}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// TestQuickLastWriteWins: the store behaves like a map from line address to
// the last 64-byte value written.
func TestQuickLastWriteWins(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		model := map[LineAddr][]byte{}
		for i := 0; i < int(n); i++ {
			a := LineAddr(rng.Intn(300))
			line := make([]byte, LineSize)
			rng.Read(line)
			s.Write(a, line)
			model[a] = line
		}
		for a, want := range model {
			if !bytes.Equal(s.Read(a), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTouchedLinesAndFootprint(t *testing.T) {
	s := NewStore()
	line := make([]byte, LineSize)
	line[0] = 1
	s.Write(0, line)    // page 0
	s.Write(64, line)   // page 1
	s.Write(4096, line) // page 64
	if got := s.FootprintBytes(); got != 3*64*LineSize {
		t.Errorf("footprint = %d, want %d", got, 3*64*LineSize)
	}
	lines := s.TouchedLines()
	if len(lines) != 3*64 {
		t.Errorf("touched lines = %d, want %d", len(lines), 3*64)
	}
	seen := map[LineAddr]bool{}
	for _, a := range lines {
		seen[a] = true
	}
	for _, a := range []LineAddr{0, 64, 4096} {
		if !seen[a] {
			t.Errorf("line %d missing from TouchedLines", a)
		}
	}
}

func TestReadAliasIsStable(t *testing.T) {
	s := NewStore()
	line := bytes.Repeat([]byte{0x55}, LineSize)
	s.Write(9, line)
	r1 := s.Read(9)
	s.Write(10, line) // same page, different line
	if !bytes.Equal(r1, line) {
		t.Error("previously returned slice changed by unrelated write")
	}
}
