// Package mem provides the sparse physical-memory backing stores of the
// simulator. Two stores exist per system:
//
//   - the DRAM image: the bytes actually resident in memory, including
//     compressed groups, inline markers, inverted lines, and Invalid-Line
//     markers left behind by relocation;
//   - the architectural store: the last value written to every line, i.e.
//     the values a correct machine must observe.
//
// Keeping both lets the test suite assert, at any instant, that decoding
// the DRAM image reproduces the architectural contents — the paper's
// correctness argument for inline metadata, made executable.
package mem

import "sort"

// LineSize is the number of bytes per cache line / memory burst.
const LineSize = 64

// LineAddr is a physical line address: the physical byte address >> 6.
type LineAddr uint64

// linesPerPage is the number of 64-byte lines in a 4 KB allocation page of
// the sparse store (an allocation unit, unrelated to the OS page size used
// by internal/vm, which happens to match).
const linesPerPage = 64

// page holds the contents of 64 consecutive lines, plus the per-line
// validity mask used by lazily-filled stores: bit i set means lines[i]
// holds real bytes. Stores without a fill callback ignore the mask.
type page struct {
	mask  uint64
	lines [linesPerPage][LineSize]byte
}

// Store is a sparse 64-byte-line-granular memory. Untouched lines read as
// zero. The zero value is ready to use after NewStore; Store is not
// goroutine-safe (the simulator is single-threaded by design — determinism
// is a tested invariant).
type Store struct {
	pages map[uint64]*page

	// chunk is the bump allocator pages are carved from: allocating pages
	// in 64-page chunks amortizes the heap's per-object cost (span setup,
	// heap-bitmap init) across a whole chunk, which matters because a
	// simulation run allocates hundreds of thousands of pages. Pages are
	// never freed individually, so carving from a chunk wastes nothing.
	chunk []page

	// fill, when set, synthesizes the contents of one not-yet-valid line
	// of a lazily-initialized page on first use (see MarkLazy). It must
	// write exactly LineSize bytes.
	fill func(a LineAddr, buf []byte)
}

// lazyPage is the sentinel a lazily-initialized page points at until first
// use. It is shared, never written (the Read/Write paths swap in a real
// page before returning any line of it), and lets MarkLazy cost one map
// insert instead of a 4 KB allocation.
var lazyPage = new(page)

// NewStore returns an empty sparse store.
func NewStore() *Store {
	return &Store{pages: make(map[uint64]*page)}
}

var zeroLine [LineSize]byte

// alloc carves one page from the current chunk.
func (s *Store) alloc() *page {
	if len(s.chunk) == 0 {
		s.chunk = make([]page, 64)
	}
	p := &s.chunk[0]
	s.chunk = s.chunk[1:]
	return p
}

// allocAt replaces the lazy sentinel (or nothing) at page pn with a real,
// zeroed, all-lines-invalid page. No synthesis happens here: lines are
// filled one at a time as they are actually read (memoized in the page) or
// overwritten by stores.
func (s *Store) allocAt(pn uint64) *page {
	p := s.alloc()
	s.pages[pn] = p
	return p
}

// Read returns the contents of line a. The returned slice aliases internal
// storage for touched lines and must not be modified; use Write to mutate.
func (s *Store) Read(a LineAddr) []byte {
	pn := uint64(a) / linesPerPage
	p, ok := s.pages[pn]
	if !ok {
		return zeroLine[:]
	}
	if p == lazyPage {
		p = s.allocAt(pn)
	}
	i := uint64(a) % linesPerPage
	if s.fill != nil && p.mask&(1<<i) == 0 {
		s.fill(a, p.lines[i][:])
		p.mask |= 1 << i
	}
	return p.lines[i][:]
}

// ReadNoAlloc is Read for integrity checks and eviction planning: for a
// line of a still-sentinel lazy page it synthesizes the value into scratch
// (which must be LineSize bytes) instead of allocating the page, so pages
// that are only ever *inspected* — filled, compressed, relocated, but never
// stored to — never pay for 4 KB of backing storage. The returned slice is
// scratch in that case and valid until scratch is reused; otherwise it
// aliases internal storage exactly like Read.
func (s *Store) ReadNoAlloc(a LineAddr, scratch []byte) []byte {
	pn := uint64(a) / linesPerPage
	p, ok := s.pages[pn]
	if !ok {
		return zeroLine[:]
	}
	if p == lazyPage {
		if s.fill == nil {
			return zeroLine[:]
		}
		s.fill(a, scratch)
		return scratch
	}
	i := uint64(a) % linesPerPage
	if s.fill != nil && p.mask&(1<<i) == 0 {
		s.fill(a, p.lines[i][:])
		p.mask |= 1 << i
	}
	return p.lines[i][:]
}

// pageFor returns (allocating as needed) the page holding line a.
func (s *Store) pageFor(a LineAddr) *page {
	pn := uint64(a) / linesPerPage
	p, ok := s.pages[pn]
	if !ok || p == lazyPage {
		p = s.allocAt(pn)
	}
	return p
}

// Write replaces the contents of line a with data (which must be 64 bytes).
func (s *Store) Write(a LineAddr, data []byte) {
	if len(data) != LineSize {
		panic("mem: Write needs a 64-byte line")
	}
	p := s.pageFor(a)
	i := uint64(a) % linesPerPage
	copy(p.lines[i][:], data)
	p.mask |= 1 << i
}

// WritePartial overwrites size bytes at byte offset off within line a.
func (s *Store) WritePartial(a LineAddr, off int, data []byte) {
	if off < 0 || off+len(data) > LineSize {
		panic("mem: WritePartial out of range")
	}
	p := s.pageFor(a)
	i := uint64(a) % linesPerPage
	if s.fill != nil && p.mask&(1<<i) == 0 {
		// The untouched rest of the line must hold its synthesized value
		// before part of it is overwritten.
		s.fill(a, p.lines[i][:])
		p.mask |= 1 << i
	}
	copy(p.lines[i][off:], data)
	p.mask |= 1 << i
}

// Touched reports whether line a has ever been written.
func (s *Store) Touched(a LineAddr) bool {
	_, ok := s.pages[uint64(a)/linesPerPage]
	return ok
}

// TouchedLines returns every line address in pages that have been written,
// in ascending address order. The sort matters: whole-memory operations
// (LIT-overflow re-encoding, image-soundness property checks, fault-campaign
// candidate selection) must be deterministic so a run replays from its seed.
func (s *Store) TouchedLines() []LineAddr {
	pns := make([]uint64, 0, len(s.pages))
	for pn := range s.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	out := make([]LineAddr, 0, len(pns)*linesPerPage)
	for _, pn := range pns {
		for i := uint64(0); i < linesPerPage; i++ {
			out = append(out, LineAddr(pn*linesPerPage+i))
		}
	}
	return out
}

// FootprintBytes returns the number of bytes of touched memory.
func (s *Store) FootprintBytes() uint64 {
	return uint64(len(s.pages)) * linesPerPage * LineSize
}

// SlabLines is the number of lines a Slab spans (one allocation page).
const SlabLines = linesPerPage

// Slab is direct storage access to the allocation page holding line base:
// Line(i) returns the writable backing array of line base+i. It exists for
// the epoch engine's parallel page initialization, which fills a page's
// lines from several shard workers at once.
//
// Concurrency contract: distinct lines of a Slab may be written
// concurrently (they are disjoint fixed-size arrays in one allocation; no
// map access, no slice-header mutation), but Slab creation itself touches
// the page map and must happen on the coordinating goroutine, before
// workers start and strictly between epochs — never while another goroutine
// reads the Store.
type Slab struct {
	p *page
}

// Slab returns (allocating if needed) the slab containing line base, which
// must be slab-aligned. Slab access bypasses the per-line validity mask, so
// it is incompatible with lazy filling: a store with a fill callback would
// re-synthesize over slab-written lines on the next Read.
func (s *Store) Slab(base LineAddr) Slab {
	if uint64(base)%linesPerPage != 0 {
		panic("mem: Slab base must be page-aligned")
	}
	if s.fill != nil {
		panic("mem: Slab access on a lazily-filled store")
	}
	return Slab{p: s.pageFor(base)}
}

// SetLazyFill installs the synthesis callback lazily-initialized pages are
// materialized with, one line at a time: the callback receives a line
// address within a page registered by MarkLazy and must write that line's
// initial contents (LineSize bytes) into buf. It runs on the goroutine that
// owns the Store, at the first Read of a line that has neither been written
// nor read before.
func (s *Store) SetLazyFill(fill func(a LineAddr, buf []byte)) { s.fill = fill }

// MarkLazy registers the (previously untouched) page at base — which must
// be slab-aligned — as initialized-on-demand: it is Touched and counts
// toward FootprintBytes immediately, but its 4 KB of storage is allocated
// only when something reads or writes it, and each line is synthesized only
// when something reads it before writing it. The epoch engine uses this for
// first-touch page initialization of the architectural store, whose
// contents are a pure function of each line's identity until the first
// store to that line; lines that are initialized but never read back never
// pay for synthesis at all. Requires SetLazyFill.
func (s *Store) MarkLazy(base LineAddr) {
	if uint64(base)%linesPerPage != 0 {
		panic("mem: MarkLazy base must be page-aligned")
	}
	if s.fill == nil {
		panic("mem: MarkLazy without SetLazyFill")
	}
	s.pages[uint64(base)/linesPerPage] = lazyPage
}

// Line returns the writable 64-byte backing slice of line i within the slab.
func (sl Slab) Line(i int) []byte { return sl.p.lines[i][:] }

// ShardOf maps a line address to its owning shard under the channel
// interleave: groups of four lines (256 bytes) rotate across shards exactly
// as dram.decode rotates them across channels, so shard-partitioned work
// (page init, deferred verify) touches disjoint channel state. shards must
// be a power of two.
func ShardOf(a LineAddr, shards int) int {
	return int((uint64(a) >> 2) & uint64(shards-1))
}
