// Package mem provides the sparse physical-memory backing stores of the
// simulator. Two stores exist per system:
//
//   - the DRAM image: the bytes actually resident in memory, including
//     compressed groups, inline markers, inverted lines, and Invalid-Line
//     markers left behind by relocation;
//   - the architectural store: the last value written to every line, i.e.
//     the values a correct machine must observe.
//
// Keeping both lets the test suite assert, at any instant, that decoding
// the DRAM image reproduces the architectural contents — the paper's
// correctness argument for inline metadata, made executable.
package mem

import "sort"

// LineSize is the number of bytes per cache line / memory burst.
const LineSize = 64

// LineAddr is a physical line address: the physical byte address >> 6.
type LineAddr uint64

// linesPerPage is the number of 64-byte lines in a 4 KB allocation page of
// the sparse store (an allocation unit, unrelated to the OS page size used
// by internal/vm, which happens to match).
const linesPerPage = 64

// page holds the contents of 64 consecutive lines.
type page [linesPerPage][LineSize]byte

// Store is a sparse 64-byte-line-granular memory. Untouched lines read as
// zero. The zero value is ready to use after NewStore; Store is not
// goroutine-safe (the simulator is single-threaded by design — determinism
// is a tested invariant).
type Store struct {
	pages map[uint64]*page
}

// NewStore returns an empty sparse store.
func NewStore() *Store {
	return &Store{pages: make(map[uint64]*page)}
}

var zeroLine [LineSize]byte

// Read returns the contents of line a. The returned slice aliases internal
// storage for touched lines and must not be modified; use Write to mutate.
func (s *Store) Read(a LineAddr) []byte {
	p, ok := s.pages[uint64(a)/linesPerPage]
	if !ok {
		return zeroLine[:]
	}
	return p[uint64(a)%linesPerPage][:]
}

// Write replaces the contents of line a with data (which must be 64 bytes).
func (s *Store) Write(a LineAddr, data []byte) {
	if len(data) != LineSize {
		panic("mem: Write needs a 64-byte line")
	}
	pn := uint64(a) / linesPerPage
	p, ok := s.pages[pn]
	if !ok {
		p = new(page)
		s.pages[pn] = p
	}
	copy(p[uint64(a)%linesPerPage][:], data)
}

// WritePartial overwrites size bytes at byte offset off within line a.
func (s *Store) WritePartial(a LineAddr, off int, data []byte) {
	if off < 0 || off+len(data) > LineSize {
		panic("mem: WritePartial out of range")
	}
	pn := uint64(a) / linesPerPage
	p, ok := s.pages[pn]
	if !ok {
		p = new(page)
		s.pages[pn] = p
	}
	copy(p[uint64(a)%linesPerPage][off:], data)
}

// Touched reports whether line a has ever been written.
func (s *Store) Touched(a LineAddr) bool {
	_, ok := s.pages[uint64(a)/linesPerPage]
	return ok
}

// TouchedLines returns every line address in pages that have been written,
// in ascending address order. The sort matters: whole-memory operations
// (LIT-overflow re-encoding, image-soundness property checks, fault-campaign
// candidate selection) must be deterministic so a run replays from its seed.
func (s *Store) TouchedLines() []LineAddr {
	pns := make([]uint64, 0, len(s.pages))
	for pn := range s.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	out := make([]LineAddr, 0, len(pns)*linesPerPage)
	for _, pn := range pns {
		for i := uint64(0); i < linesPerPage; i++ {
			out = append(out, LineAddr(pn*linesPerPage+i))
		}
	}
	return out
}

// FootprintBytes returns the number of bytes of touched memory.
func (s *Store) FootprintBytes() uint64 {
	return uint64(len(s.pages)) * linesPerPage * LineSize
}
