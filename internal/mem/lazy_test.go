package mem

import (
	"bytes"
	"testing"
)

// countingFill synthesizes a recognizable per-line pattern and counts
// invocations per address.
type countingFill struct {
	calls map[LineAddr]int
}

func newCountingFill() *countingFill { return &countingFill{calls: map[LineAddr]int{}} }

func (c *countingFill) fill(a LineAddr, buf []byte) {
	c.calls[a]++
	for i := range buf {
		buf[i] = byte(uint64(a) + uint64(i)*3 + 1)
	}
}

func (c *countingFill) want(a LineAddr) []byte {
	out := make([]byte, LineSize)
	for i := range out {
		out[i] = byte(uint64(a) + uint64(i)*3 + 1)
	}
	return out
}

func TestLazyReadSynthesizesAndMemoizes(t *testing.T) {
	s := NewStore()
	cf := newCountingFill()
	s.SetLazyFill(cf.fill)
	s.MarkLazy(0)

	if !s.Touched(3) {
		t.Error("lazy page must count as touched immediately")
	}
	a := LineAddr(5)
	if got := s.Read(a); !bytes.Equal(got, cf.want(a)) {
		t.Fatalf("lazy read = %x, want synthesized value", got[:8])
	}
	s.Read(a)
	s.Read(a)
	if cf.calls[a] != 1 {
		t.Errorf("fill ran %d times for one line, want 1 (memoized)", cf.calls[a])
	}
	// A different line of the now-materialized page still synthesizes.
	b := LineAddr(9)
	if got := s.Read(b); !bytes.Equal(got, cf.want(b)) {
		t.Fatalf("second lazy read wrong")
	}
	if cf.calls[b] != 1 {
		t.Errorf("fill for second line ran %d times, want 1", cf.calls[b])
	}
}

func TestLazyWriteBeforeReadSkipsSynthesis(t *testing.T) {
	s := NewStore()
	cf := newCountingFill()
	s.SetLazyFill(cf.fill)
	s.MarkLazy(0)

	val := make([]byte, LineSize)
	for i := range val {
		val[i] = 0xEE
	}
	s.Write(2, val)
	if got := s.Read(2); !bytes.Equal(got, val) {
		t.Fatal("written line must read back the written value")
	}
	if cf.calls[2] != 0 {
		t.Errorf("fill ran %d times for a written-first line, want 0", cf.calls[2])
	}
}

func TestLazyWritePartialSynthesizesRest(t *testing.T) {
	s := NewStore()
	cf := newCountingFill()
	s.SetLazyFill(cf.fill)
	s.MarkLazy(0)

	s.WritePartial(7, 4, []byte{1, 2, 3, 4})
	want := cf.want(7)
	copy(want[4:], []byte{1, 2, 3, 4})
	if got := s.Read(7); !bytes.Equal(got, want) {
		t.Fatal("partial write must land on the synthesized base value")
	}
	if cf.calls[7] != 1 {
		t.Errorf("fill ran %d times, want exactly 1 (before the partial)", cf.calls[7])
	}
}

func TestReadNoAllocKeepsSentinel(t *testing.T) {
	s := NewStore()
	cf := newCountingFill()
	s.SetLazyFill(cf.fill)
	s.MarkLazy(0)

	var scratch [LineSize]byte
	a := LineAddr(11)
	got := s.ReadNoAlloc(a, scratch[:])
	if !bytes.Equal(got, cf.want(a)) {
		t.Fatal("ReadNoAlloc must synthesize the lazy value")
	}
	if &got[0] != &scratch[0] {
		t.Error("sentinel-page ReadNoAlloc must return the caller's scratch")
	}
	// The page must still be the shared sentinel: a later ReadNoAlloc
	// synthesizes again instead of reading materialized storage.
	s.ReadNoAlloc(a, scratch[:])
	if cf.calls[a] != 2 {
		t.Errorf("fill ran %d times across two sentinel reads, want 2", cf.calls[a])
	}
	// And it must not allocate: that is its contract (integrity checks and
	// eviction gathers inspect pages that may never be stored to).
	if n := testing.AllocsPerRun(100, func() {
		s.ReadNoAlloc(a, scratch[:])
	}); n != 0 {
		t.Errorf("sentinel ReadNoAlloc allocates %.1f/op, want 0", n)
	}

	// After a write materializes the page, ReadNoAlloc reads (and
	// memoizes) real storage like Read.
	s.Write(a+1, make([]byte, LineSize))
	got = s.ReadNoAlloc(a, scratch[:])
	if &got[0] == &scratch[0] {
		t.Error("materialized-page ReadNoAlloc must alias internal storage")
	}
	before := cf.calls[a]
	s.ReadNoAlloc(a, scratch[:])
	if cf.calls[a] != before {
		t.Error("materialized-page ReadNoAlloc must memoize")
	}
}

func TestLazyGuards(t *testing.T) {
	s := NewStore()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("MarkLazy without SetLazyFill", func() { s.MarkLazy(0) })
	s.SetLazyFill(func(a LineAddr, buf []byte) {})
	mustPanic("unaligned MarkLazy", func() { s.MarkLazy(3) })
	mustPanic("Slab on lazily-filled store", func() { s.Slab(0) })
}
