package metadata

import (
	"testing"

	"ptmc/internal/cache"
	"ptmc/internal/mem"
)

const base = mem.LineAddr(1 << 30)

func newTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := New(base, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestMetaLinePacking(t *testing.T) {
	tbl := newTable(t)
	if tbl.MetaLineOf(0) != base || tbl.MetaLineOf(255) != base {
		t.Error("first 256 lines share metadata line 0")
	}
	if tbl.MetaLineOf(256) != base+1 {
		t.Error("line 256 starts metadata line 1")
	}
}

func TestColdMissThenHit(t *testing.T) {
	tbl := newTable(t)
	level, tr := tbl.Lookup(100)
	if level != cache.Uncompressed {
		t.Error("cold CSI should read uncompressed")
	}
	if !tr.NeedRead || tr.ReadAddr != tbl.MetaLineOf(100) {
		t.Error("cold lookup must cost a DRAM metadata read")
	}
	// Adjacent line: same metadata line, now cached.
	_, tr = tbl.Lookup(101)
	if tr.NeedRead {
		t.Error("second lookup should hit the metadata cache")
	}
	if tbl.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", tbl.HitRate())
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	tbl := newTable(t)
	tbl.Update(40, cache.Comp4)
	level, _ := tbl.Lookup(40)
	if level != cache.Comp4 {
		t.Errorf("level = %v, want 4:1", level)
	}
	tbl.Update(40, cache.Uncompressed)
	if tbl.Peek(40) != cache.Uncompressed {
		t.Error("reset to uncompressed failed")
	}
}

func TestDirtyMetadataWriteback(t *testing.T) {
	tbl := newTable(t)
	// 32 KB / 64 B = 512 entries, 8-way, 64 sets. Updating lines that map
	// to the same metadata set eventually evicts dirty metadata.
	// Metadata lines are base+k for data lines 256k; same mcache set
	// every 64 metadata lines => stride 64*256 data lines.
	sawWB := false
	for k := 0; k < 10; k++ {
		tr := tbl.Update(mem.LineAddr(k*64*256), cache.Comp2)
		if tr.NeedWrite {
			sawWB = true
			if tr.WriteAddr < base {
				t.Error("metadata writeback outside reserved region")
			}
		}
	}
	if !sawWB {
		t.Error("expected a dirty metadata eviction after overfilling one set")
	}
	if tbl.Writes == 0 {
		t.Error("metadata writes should be counted")
	}
}

func TestCleanEvictionsCostNoWrite(t *testing.T) {
	tbl := newTable(t)
	for k := 0; k < 20; k++ {
		_, tr := tbl.Lookup(mem.LineAddr(k * 64 * 256))
		if tr.NeedWrite {
			t.Error("clean metadata evictions must not write DRAM")
		}
	}
}

func TestBadCacheSize(t *testing.T) {
	if _, err := New(base, 100); err == nil {
		t.Error("non-power-of-two metadata cache should be rejected")
	}
}

func TestEmptyHitRate(t *testing.T) {
	tbl := newTable(t)
	if tbl.HitRate() != 0 {
		t.Error("empty table hit rate should be 0")
	}
}
