// Package metadata implements the conventional table-based Compression
// Status Information (CSI) machinery that prior TMC designs rely on
// (paper §II-C): a per-line 2-bit CSI table resident in a reserved region
// of physical memory, cached on chip in a dedicated metadata cache. Every
// CSI access that misses the cache costs a DRAM read, and dirty metadata
// evictions cost DRAM writes — the bandwidth bloat Figure 4 quantifies and
// PTMC's inline markers eliminate.
package metadata

import (
	"ptmc/internal/cache"
	"ptmc/internal/mem"
)

// LinesPerMetaLine: 2 bits of CSI per data line packs 256 data lines' CSI
// into one 64-byte metadata line — the spatial batching that gives the
// metadata cache its locality.
const LinesPerMetaLine = 256

// Traffic describes the DRAM accesses a metadata operation requires.
type Traffic struct {
	ReadAddr  mem.LineAddr // metadata line to fetch
	NeedRead  bool
	WriteAddr mem.LineAddr // dirty metadata victim to write back
	NeedWrite bool
}

// Table is the CSI table plus its on-chip metadata cache.
type Table struct {
	base   mem.LineAddr // first line of the reserved metadata region
	csi    map[mem.LineAddr]cache.Level
	mcache *cache.Cache

	Lookups uint64
	Hits    uint64
	Misses  uint64
	Writes  uint64 // dirty metadata lines written back to DRAM
}

// New builds a table whose backing storage starts at base (inside the VM's
// reserved region) with a metadata cache of cacheBytes (the paper's
// baseline uses 32 KB).
func New(base mem.LineAddr, cacheBytes int) (*Table, error) {
	mc, err := cache.New(cache.Config{SizeBytes: cacheBytes, Assoc: 8})
	if err != nil {
		return nil, err
	}
	return &Table{
		base:   base,
		csi:    make(map[mem.LineAddr]cache.Level),
		mcache: mc,
	}, nil
}

// MetaLineOf returns the metadata line holding addr's CSI.
func (t *Table) MetaLineOf(addr mem.LineAddr) mem.LineAddr {
	return t.base + addr/LinesPerMetaLine
}

// touch brings addr's metadata line into the metadata cache, reporting the
// DRAM traffic required; dirty is true when the caller will modify CSI.
func (t *Table) touch(addr mem.LineAddr, dirty bool) Traffic {
	t.Lookups++
	ml := t.MetaLineOf(addr)
	if e, hit := t.mcache.Lookup(ml); hit {
		t.Hits++
		e.Dirty = e.Dirty || dirty
		return Traffic{}
	}
	t.Misses++
	var tr Traffic
	tr.ReadAddr, tr.NeedRead = ml, true
	victim, _ := t.mcache.Install(ml, cache.Entry{Dirty: dirty})
	if victim.Valid && victim.Dirty {
		t.Writes++
		tr.WriteAddr, tr.NeedWrite = victim.Tag, true
	}
	return tr
}

// Touch models one metadata-cache access to addr's CSI line without
// reading or changing a stored level, returning the DRAM traffic it costs;
// dirty marks the cached metadata line modified. Schemes whose per-line
// metadata payload does not fit the 2-bit CSI encoding (MemZip's 1-8 beat
// burst lengths) use it to charge table traffic while keeping the actual
// value in a dedicated store.
func (t *Table) Touch(addr mem.LineAddr, dirty bool) Traffic {
	return t.touch(addr, dirty)
}

// Lookup returns addr's current compression level and the DRAM traffic the
// metadata access costs.
func (t *Table) Lookup(addr mem.LineAddr) (cache.Level, Traffic) {
	tr := t.touch(addr, false)
	return t.csi[addr], tr
}

// Update sets addr's compression level, dirtying the cached metadata line.
func (t *Table) Update(addr mem.LineAddr, level cache.Level) Traffic {
	tr := t.touch(addr, true)
	if level == cache.Uncompressed {
		delete(t.csi, addr)
	} else {
		t.csi[addr] = level
	}
	return tr
}

// Peek reads the CSI without modeling any cache or DRAM activity
// (verification only).
func (t *Table) Peek(addr mem.LineAddr) cache.Level { return t.csi[addr] }

// HitRate returns the metadata-cache hit rate (Figure 9's baseline curve).
func (t *Table) HitRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Hits) / float64(t.Lookups)
}
