package core

import (
	"ptmc/internal/cache"
	"ptmc/internal/mem"
)

// GroupLines is the maximum compression group: up to 4 adjacent lines
// co-located in one 64-byte location (§II-B address mapping).
const GroupLines = 4

// GroupBase returns the address of the first line in a's 4-line group —
// where a 4:1 compressed quad lives.
func GroupBase(a mem.LineAddr) mem.LineAddr { return a &^ 3 }

// PairBase returns the address of the first line in a's 2-line pair —
// where a 2:1 compressed pair lives.
func PairBase(a mem.LineAddr) mem.LineAddr { return a &^ 1 }

// GroupIndex returns a's position (0-3) within its group.
func GroupIndex(a mem.LineAddr) int { return int(a & 3) }

// HomeFor returns where a line resides if stored at the given compression
// level: its own address when uncompressed, the pair base at 2:1, the
// group base at 4:1.
func HomeFor(a mem.LineAddr, level cache.Level) mem.LineAddr {
	switch level {
	case cache.Comp4:
		return GroupBase(a)
	case cache.Comp2:
		return PairBase(a)
	default:
		return a
	}
}

// MembersAt returns the line addresses stored together at location home for
// the given level, in address order (the order their encodings concatenate
// in the 60-byte payload).
func MembersAt(home mem.LineAddr, level cache.Level) []mem.LineAddr {
	switch level {
	case cache.Comp4:
		b := GroupBase(home)
		return []mem.LineAddr{b, b + 1, b + 2, b + 3}
	case cache.Comp2:
		b := PairBase(home)
		return []mem.LineAddr{b, b + 1}
	default:
		return []mem.LineAddr{home}
	}
}

// Covers reports whether a line stored at level `level` at location `home`
// includes address a.
func Covers(home mem.LineAddr, level cache.Level, a mem.LineAddr) bool {
	for _, m := range MembersAt(home, level) {
		if m == a {
			return true
		}
	}
	return false
}

// NeedsPrediction reports whether locating line a requires the LLP: the
// group-base line resides at the same address regardless of compression, so
// only non-base lines are predicted (§IV-A: "there is no need for location
// prediction while accessing line A").
func NeedsPrediction(a mem.LineAddr) bool { return GroupIndex(a) != 0 }

// CandidateHomes lists the possible locations of line a from most- to
// least-compressed, excluding duplicates. On an LLP miss the controller
// probes the remaining candidates in a deterministic order.
func CandidateHomes(a mem.LineAddr) []mem.LineAddr {
	homes := []mem.LineAddr{GroupBase(a)}
	if pb := PairBase(a); pb != homes[0] {
		homes = append(homes, pb)
	}
	if a != homes[0] && a != PairBase(a) {
		homes = append(homes, a)
	}
	return homes
}
