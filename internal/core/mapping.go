package core

import (
	"ptmc/internal/cache"
	"ptmc/internal/mem"
)

// GroupLines is the maximum compression group: up to 4 adjacent lines
// co-located in one 64-byte location (§II-B address mapping).
const GroupLines = 4

// GroupBase returns the address of the first line in a's 4-line group —
// where a 4:1 compressed quad lives.
func GroupBase(a mem.LineAddr) mem.LineAddr { return a &^ 3 }

// PairBase returns the address of the first line in a's 2-line pair —
// where a 2:1 compressed pair lives.
func PairBase(a mem.LineAddr) mem.LineAddr { return a &^ 1 }

// GroupIndex returns a's position (0-3) within its group.
func GroupIndex(a mem.LineAddr) int { return int(a & 3) }

// HomeFor returns where a line resides if stored at the given compression
// level: its own address when uncompressed, the pair base at 2:1, the
// group base at 4:1.
func HomeFor(a mem.LineAddr, level cache.Level) mem.LineAddr {
	switch level {
	case cache.Comp4:
		return GroupBase(a)
	case cache.Comp2:
		return PairBase(a)
	default:
		return a
	}
}

// MembersSpan is the allocation-free form of MembersAt: the members of a
// unit are always consecutive line addresses, so the set is fully described
// by its first address and length. Hot paths iterate the span directly
// instead of materializing a slice per lookup.
func MembersSpan(home mem.LineAddr, level cache.Level) (first mem.LineAddr, n int) {
	switch level {
	case cache.Comp4:
		return GroupBase(home), 4
	case cache.Comp2:
		return PairBase(home), 2
	default:
		return home, 1
	}
}

// MembersAt returns the line addresses stored together at location home for
// the given level, in address order (the order their encodings concatenate
// in the 60-byte payload). It allocates; hot paths use MembersSpan.
func MembersAt(home mem.LineAddr, level cache.Level) []mem.LineAddr {
	first, n := MembersSpan(home, level)
	out := make([]mem.LineAddr, n)
	for i := range out {
		out[i] = first + mem.LineAddr(i)
	}
	return out
}

// Covers reports whether a line stored at level `level` at location `home`
// includes address a.
func Covers(home mem.LineAddr, level cache.Level, a mem.LineAddr) bool {
	first, n := MembersSpan(home, level)
	return a >= first && a < first+mem.LineAddr(n)
}

// NeedsPrediction reports whether locating line a requires the LLP: the
// group-base line resides at the same address regardless of compression, so
// only non-base lines are predicted (§IV-A: "there is no need for location
// prediction while accessing line A").
func NeedsPrediction(a mem.LineAddr) bool { return GroupIndex(a) != 0 }

// AppendCandidateHomes appends the possible locations of line a, from most-
// to least-compressed and excluding duplicates, to dst and returns it. With
// a caller-provided fixed-capacity buffer (at most 3 candidates exist) the
// probe loop performs no allocation.
func AppendCandidateHomes(dst []mem.LineAddr, a mem.LineAddr) []mem.LineAddr {
	gb := GroupBase(a)
	dst = append(dst, gb)
	if pb := PairBase(a); pb != gb {
		dst = append(dst, pb)
	}
	if a != gb && a != PairBase(a) {
		dst = append(dst, a)
	}
	return dst
}

// CandidateHomes lists the possible locations of line a from most- to
// least-compressed, excluding duplicates. On an LLP miss the controller
// probes the remaining candidates in a deterministic order.
func CandidateHomes(a mem.LineAddr) []mem.LineAddr {
	return AppendCandidateHomes(make([]mem.LineAddr, 0, 3), a)
}
