package core

import "ptmc/internal/mem"

// LITMode selects how marker collisions beyond the on-chip table are
// handled (paper §IV-C "Efficiently Handling LIT Overflows").
type LITMode int

const (
	// LITReKey (Option-2): on overflow, regenerate marker keys and
	// re-encode memory. The on-chip table alone tracks inverted lines.
	LITReKey LITMode = iota
	// LITMemoryMapped (Option-1): a one-bit-per-line table in reserved
	// memory backs the on-chip entries; overflows spill to memory at the
	// cost of an extra access per collision-affected line.
	LITMemoryMapped
)

// LITEntries is the paper's on-chip capacity: 16 entries × (valid + 30-bit
// line address) = 64 bytes for a 16 GB memory.
const LITEntries = 16

// LIT is the Line Inversion Table: the set of lines currently stored in
// inverted form because their uncompressed data collided with a marker.
type LIT struct {
	mode    LITMode
	entries [LITEntries]struct {
		valid bool
		addr  mem.LineAddr
	}
	spill map[mem.LineAddr]bool // memory-mapped backing (Option-1)

	// Stats
	Inserts    uint64
	Removes    uint64
	Overflows  uint64
	SpillReads uint64 // extra memory accesses in memory-mapped mode
	MaxLive    int
}

// NewLIT builds a LIT in the given overflow mode.
func NewLIT(mode LITMode) *LIT {
	l := &LIT{mode: mode}
	if mode == LITMemoryMapped {
		l.spill = make(map[mem.LineAddr]bool)
	}
	return l
}

// Mode returns the overflow mode.
func (l *LIT) Mode() LITMode { return l.mode }

// Contains reports whether addr is stored inverted. A lookup that misses
// the on-chip entries and falls through to a memory-backed table (always
// present in memory-mapped mode; created on demand by ForceInsert in
// re-key mode) costs a memory access, which the caller observes via the
// second return (extraAccess).
func (l *LIT) Contains(addr mem.LineAddr) (inverted, extraAccess bool) {
	for i := range l.entries {
		if l.entries[i].valid && l.entries[i].addr == addr {
			return true, false
		}
	}
	if l.spill != nil {
		l.SpillReads++
		return l.spill[addr], true
	}
	return false, false
}

// Insert records that addr is now stored inverted. It returns overflowed =
// true when the on-chip table is full: in LITReKey mode the caller must
// re-key and re-encode memory (which empties the LIT); in memory-mapped
// mode the entry spills to memory and operation continues.
func (l *LIT) Insert(addr mem.LineAddr) (overflowed bool) {
	l.Inserts++
	for i := range l.entries {
		if l.entries[i].valid && l.entries[i].addr == addr {
			return false // already tracked
		}
	}
	for i := range l.entries {
		if !l.entries[i].valid {
			l.entries[i].valid = true
			l.entries[i].addr = addr
			if n := l.Live(); n > l.MaxLive {
				l.MaxLive = n
			}
			return false
		}
	}
	l.Overflows++
	if l.mode == LITMemoryMapped {
		l.spill[addr] = true
		return false
	}
	return true
}

// ForceInsert records addr unconditionally: on-chip when a slot is free,
// otherwise spilled to the memory-backed table — materialized on demand
// even in LITReKey mode. This is the controller's last-resort degraded
// path for collisions that survive re-keying (fault injection, a broken
// marker hash): tracking the inversion in memory keeps every later read
// sound at the cost of an extra access per spill-table lookup.
func (l *LIT) ForceInsert(addr mem.LineAddr) {
	if !l.Insert(addr) {
		return // tracked on-chip (or spilled by memory-mapped Insert)
	}
	if l.spill == nil {
		l.spill = make(map[mem.LineAddr]bool)
	}
	l.spill[addr] = true
}

// Remove clears tracking for addr (its stored form is no longer inverted).
func (l *LIT) Remove(addr mem.LineAddr) {
	for i := range l.entries {
		if l.entries[i].valid && l.entries[i].addr == addr {
			l.entries[i].valid = false
			l.Removes++
			return
		}
	}
	if l.spill != nil && l.spill[addr] {
		delete(l.spill, addr)
		l.Removes++
	}
}

// Clear empties the table (after a re-key re-encodes memory).
func (l *LIT) Clear() {
	for i := range l.entries {
		l.entries[i].valid = false
	}
	if l.spill != nil {
		l.spill = make(map[mem.LineAddr]bool)
	}
}

// Live returns the number of tracked inverted lines.
func (l *LIT) Live() int {
	n := 0
	for i := range l.entries {
		if l.entries[i].valid {
			n++
		}
	}
	return n + len(l.spill)
}

// Addresses returns every tracked address (testing and re-encode sweeps).
func (l *LIT) Addresses() []mem.LineAddr {
	var out []mem.LineAddr
	for i := range l.entries {
		if l.entries[i].valid {
			out = append(out, l.entries[i].addr)
		}
	}
	for a := range l.spill {
		out = append(out, a)
	}
	return out
}

// StorageBytes returns the on-chip cost: 16 × (1 valid bit + 30-bit line
// address) rounded to the paper's 64 bytes.
func (l *LIT) StorageBytes() int { return 64 }
