package core

// Dynamic-PTMC (§V): 1% of LLC sets always compress ("sampled" sets) and
// feed a 12-bit saturating utility counter — incremented on the bandwidth
// benefit of compression (a useful free prefetch), decremented on each cost
// (compressed writeback of a clean line, invalidate, LLP-mispredict
// re-access). The counter's MSB gates compression for the other 99% of
// sets. Per-core counters extend the scheme so one compression-hostile
// core cannot disable compression for everyone.

// CounterBits is the width of the utility counter (12 bits, Table III).
const CounterBits = 12

const (
	counterMax = 1<<CounterBits - 1
	counterMSB = 1 << (CounterBits - 1)

	// Hysteresis thresholds around the MSB boundary: compression turns
	// off only after the counter falls a quarter-range below the midpoint
	// and back on only after it climbs a quarter-range above. Without the
	// band, workloads near break-even flap on/off and pay the group
	// re-setup (invalidate + rewrite) cost on every transition.
	counterLo = counterMSB - counterMSB/2
	counterHi = counterMSB + counterMSB/2
)

// UtilityCounter is one saturating cost/benefit counter with hysteresis.
type UtilityCounter struct {
	v       int
	enabled bool

	Benefits uint64
	Costs    uint64
}

// counterStart is the initial value: enabled (MSB set) with a small cushion
// above the threshold, so compression must prove harmful over a sustained
// run of net cost events before it is disabled — one unlucky event at the
// boundary must not flip the policy, but a genuinely hostile workload
// disables quickly even at laptop-scale horizons.
const counterStart = counterMSB + 64

// NewUtilityCounter starts enabled with a cushion above the MSB threshold.
func NewUtilityCounter() *UtilityCounter {
	return &UtilityCounter{v: counterStart, enabled: true}
}

// Benefit records a bandwidth win (useful free prefetch on a sampled set).
func (c *UtilityCounter) Benefit() { c.BenefitN(1) }

// BenefitN records n benefit steps (saturating).
func (c *UtilityCounter) BenefitN(n int) {
	c.Benefits++
	c.v += n
	if c.v > counterMax {
		c.v = counterMax
	}
	if c.v > counterHi {
		c.enabled = true
	}
}

// Cost records a bandwidth loss (extra writeback, invalidate, mispredict).
func (c *UtilityCounter) Cost() { c.CostN(1) }

// CostN records n cost steps (saturating).
func (c *UtilityCounter) CostN(n int) {
	c.Costs++
	c.v -= n
	if c.v < 0 {
		c.v = 0
	}
	if c.v < counterLo {
		c.enabled = false
	}
}

// Enabled reports whether compression should be applied to non-sampled
// sets (the MSB decision of the paper, widened by the hysteresis band).
func (c *UtilityCounter) Enabled() bool { return c.enabled }

// Value returns the raw counter (diagnostics).
func (c *UtilityCounter) Value() int { return c.v }

// Dynamic is the full Dynamic-PTMC policy engine.
type Dynamic struct {
	perCore  bool
	counters []*UtilityCounter // one, or one per core
	numSets  int
	sampleHi int // sets with index < sampleHi are sampled (1% of sets)

	// GainBenefit/GainCost are the counter steps per event. The paper's
	// unit steps assume a billion-instruction horizon; at the laptop-scale
	// horizons this repo simulates, larger steps make the counter traverse
	// the same fraction of its range per unit of workload behavior. The
	// benefit step is weighted above the cost step because a benefit event
	// is an eliminated latency-critical read while a cost event is an
	// added write that drains opportunistically. Set both to 1 for the
	// paper's literal counter.
	GainBenefit int
	GainCost    int
}

// NewDynamic builds the policy for an LLC with numSets sets. sampleFrac is
// the fraction of sampled sets (the paper uses 0.01); at least one set is
// always sampled. If perCore is true, one counter per core is kept and
// decisions are per requesting core (§V-A).
func NewDynamic(numSets, cores int, sampleFrac float64, perCore bool) *Dynamic {
	n := 1
	if perCore {
		n = cores
	}
	d := &Dynamic{
		perCore:  perCore,
		counters: make([]*UtilityCounter, n),
		numSets:  numSets,
	}
	for i := range d.counters {
		d.counters[i] = NewUtilityCounter()
	}
	d.sampleHi = int(float64(numSets) * sampleFrac)
	if d.sampleHi < 1 {
		d.sampleHi = 1
	}
	d.GainBenefit, d.GainCost = 32, 8
	return d
}

// Sampled reports whether an LLC set is a sampled (always-compress) set.
func (d *Dynamic) Sampled(setIndex int) bool { return setIndex < d.sampleHi }

// SampledSets returns the number of sampled sets.
func (d *Dynamic) SampledSets() int { return d.sampleHi }

func (d *Dynamic) counter(core int) *UtilityCounter {
	if d.perCore {
		return d.counters[core]
	}
	return d.counters[0]
}

// Benefit records a benefit event attributed to core (sampled sets only).
func (d *Dynamic) Benefit(core int) { d.counter(core).BenefitN(d.GainBenefit) }

// Cost records a cost event attributed to core (sampled sets only).
func (d *Dynamic) Cost(core int) { d.counter(core).CostN(d.GainCost) }

// ShouldCompress decides whether a non-sampled-set eviction by core should
// be compressed. Sampled sets always compress regardless.
func (d *Dynamic) ShouldCompress(core, setIndex int) bool {
	if d.Sampled(setIndex) {
		return true
	}
	return d.counter(core).Enabled()
}

// Counters exposes the counters for stats reporting.
func (d *Dynamic) Counters() []*UtilityCounter { return d.counters }

// StorageBytes returns the counter storage cost (12 bits per counter,
// rounded up; Table III lists 12 bytes for the 8-core per-core design).
func (d *Dynamic) StorageBytes() int {
	return (len(d.counters)*CounterBits + 7) / 8
}
