package core

import "ptmc/internal/vm"

// Dynamic-PTMC (§V): 1% of LLC sets always compress ("sampled" sets) and
// feed a 12-bit saturating utility counter — incremented on the bandwidth
// benefit of compression (a useful free prefetch), decremented on each cost
// (compressed writeback of a clean line, invalidate, LLP-mispredict
// re-access). The counter's MSB gates compression for the other 99% of
// sets. Per-core counters extend the scheme so one compression-hostile
// core cannot disable compression for everyone.

// CounterBits is the width of the utility counter (12 bits, Table III).
const CounterBits = 12

const (
	counterMax = 1<<CounterBits - 1
	counterMSB = 1 << (CounterBits - 1)

	// Hysteresis thresholds around the MSB boundary: compression turns
	// off only after the counter falls a quarter-range below the midpoint
	// and back on only after it climbs a quarter-range above. Without the
	// band, workloads near break-even flap on/off and pay the group
	// re-setup (invalidate + rewrite) cost on every transition.
	counterLo = counterMSB - counterMSB/2
	counterHi = counterMSB + counterMSB/2
)

// UtilityCounter is one saturating cost/benefit counter with hysteresis.
type UtilityCounter struct {
	v       int
	enabled bool

	Benefits uint64
	Costs    uint64
}

// counterStart is the initial value: enabled (MSB set) with a small cushion
// above the threshold, so compression must prove harmful over a sustained
// run of net cost events before it is disabled — one unlucky event at the
// boundary must not flip the policy, but a genuinely hostile workload
// disables quickly even at laptop-scale horizons.
const counterStart = counterMSB + 64

// NewUtilityCounter starts enabled with a cushion above the MSB threshold.
func NewUtilityCounter() *UtilityCounter {
	return &UtilityCounter{v: counterStart, enabled: true}
}

// Benefit records a bandwidth win (useful free prefetch on a sampled set).
func (c *UtilityCounter) Benefit() { c.BenefitN(1) }

// BenefitN records n benefit steps (saturating).
func (c *UtilityCounter) BenefitN(n int) {
	c.Benefits++
	c.v += n
	if c.v > counterMax {
		c.v = counterMax
	}
	if c.v > counterHi {
		c.enabled = true
	}
}

// Cost records a bandwidth loss (extra writeback, invalidate, mispredict).
func (c *UtilityCounter) Cost() { c.CostN(1) }

// CostN records n cost steps (saturating).
func (c *UtilityCounter) CostN(n int) {
	c.Costs++
	c.v -= n
	if c.v < 0 {
		c.v = 0
	}
	if c.v < counterLo {
		c.enabled = false
	}
}

// Enabled reports whether compression should be applied to non-sampled
// sets (the MSB decision of the paper, widened by the hysteresis band).
func (c *UtilityCounter) Enabled() bool { return c.enabled }

// Value returns the raw counter (diagnostics).
func (c *UtilityCounter) Value() int { return c.v }

// Dynamic is the full Dynamic-PTMC policy engine.
type Dynamic struct {
	perCore  bool
	counters []*UtilityCounter // one, or one per core
	numSets  int

	// Sampling is page-granular and strided: the sampled always-compress
	// regions are whole page-aligned runs of sets (one run = the PageLines
	// consecutive sets a 4 KB page's lines map to), placed at evenly
	// strided, mid-stride offsets across the index space.
	//
	// Page granularity is forced by the LLP, which predicts per *page*:
	// if only a few groups of a page were sampled, the moment global
	// compression is disabled those groups become compressed islands
	// inside an otherwise-uncompressed page, the page's shared LLP entry
	// trains to "uncompressed", and every sampled-set access mispredicts —
	// costs without the coalescing benefits the sample exists to measure.
	// That corrupted signal pins the counter low and the policy can never
	// re-enable (the disabled state becomes absorbing). Sampling whole
	// pages keeps each sampled page's LLP entry self-consistent whatever
	// the global policy, so the cost/benefit sample stays representative.
	//
	// The mid-stride placement (instead of a contiguous low-index block)
	// keeps the sample from correlating with low physical addresses,
	// where first-touch allocation concentrates small hot structures;
	// it is still fully deterministic from the config. Spaces too small
	// for multiple page runs (unit-test LLCs) fall back to group-granular
	// runs so that sampled and unsampled sets both exist.
	sampleRuns int // number of sampled set runs
	runSets    int // sets per run (PageLines, or GroupLines fallback)
	runStride  int // distance between sampled runs, in runs
	runOffset  int // first sampled run (mid-stride)

	// flip observes enabled-state transitions of the utility counters
	// (observability: Dynamic-PTMC policy flapping). Nil when unused.
	flip func(core int, enabled bool)

	// GainBenefit/GainCost are the counter steps per event. The paper's
	// unit steps assume a billion-instruction horizon; at the laptop-scale
	// horizons this repo simulates, larger steps make the counter traverse
	// the same fraction of its range per unit of workload behavior. The
	// benefit step is weighted above the cost step because a benefit event
	// is an eliminated latency-critical read while a cost event is an
	// added write that drains opportunistically. Set both to 1 for the
	// paper's literal counter.
	GainBenefit int
	GainCost    int
}

// NewDynamic builds the policy for an LLC with numSets sets. sampleFrac is
// the fraction of sampled sets (the paper uses 0.01); at least one set is
// always sampled. If perCore is true, one counter per core is kept and
// decisions are per requesting core (§V-A).
func NewDynamic(numSets, cores int, sampleFrac float64, perCore bool) *Dynamic {
	n := 1
	if perCore {
		n = cores
	}
	d := &Dynamic{
		perCore:  perCore,
		counters: make([]*UtilityCounter, n),
		numSets:  numSets,
	}
	for i := range d.counters {
		d.counters[i] = NewUtilityCounter()
	}
	// One sampled run spans a whole page's sets (see the field comment);
	// group-granular runs only when the space cannot hold several page
	// runs, so tiny configurations still have unsampled sets to steer.
	d.runSets = vm.PageLines
	if numSets < 4*d.runSets {
		d.runSets = GroupLines
	}
	if d.runSets > numSets {
		d.runSets = numSets
	}
	numRuns := numSets / d.runSets
	if numRuns < 1 {
		numRuns = 1
	}
	// Round the run count up: the run quantum is coarse (64 sets), and
	// rounding down would leave a single run that cannot span the index
	// space. Erring high also errs toward observing more cost events,
	// which is the conservative direction for the no-hurt guarantee.
	d.sampleRuns = (int(float64(numSets)*sampleFrac) + d.runSets - 1) / d.runSets
	if d.sampleRuns < 1 {
		d.sampleRuns = 1
	}
	if d.sampleRuns > numRuns {
		d.sampleRuns = numRuns
	}
	d.runStride = numRuns / d.sampleRuns
	if d.runStride < 1 {
		d.runStride = 1
	}
	d.runOffset = d.runStride / 2
	d.GainBenefit, d.GainCost = 32, 8
	return d
}

// Sampled reports whether an LLC set is a sampled (always-compress) set.
// Sampling is decided per page-aligned run — every set of a sampled run is
// sampled, so a sampled page is sampled in full — and sampled runs sit at
// mid-stride offsets spread evenly across the index space.
func (d *Dynamic) Sampled(setIndex int) bool {
	r := setIndex / d.runSets
	return r%d.runStride == d.runOffset && r/d.runStride < d.sampleRuns
}

// SampledSets returns the number of sampled set indexes.
func (d *Dynamic) SampledSets() int {
	n := d.sampleRuns * d.runSets
	if n > d.numSets {
		n = d.numSets
	}
	return n
}

func (d *Dynamic) counter(core int) *UtilityCounter {
	if d.perCore {
		return d.counters[core]
	}
	return d.counters[0]
}

// SetFlipHook registers fn to be called whenever a utility counter's
// enabled state transitions (tracing the policy's enable/disable flips).
// Pass nil to detach.
func (d *Dynamic) SetFlipHook(fn func(core int, enabled bool)) { d.flip = fn }

// Benefit records a benefit event attributed to core (sampled sets only).
func (d *Dynamic) Benefit(core int) {
	c := d.counter(core)
	was := c.enabled
	c.BenefitN(d.GainBenefit)
	if c.enabled != was && d.flip != nil {
		d.flip(core, c.enabled)
	}
}

// Cost records a cost event attributed to core (sampled sets only).
func (d *Dynamic) Cost(core int) {
	c := d.counter(core)
	was := c.enabled
	c.CostN(d.GainCost)
	if c.enabled != was && d.flip != nil {
		d.flip(core, c.enabled)
	}
}

// ShouldCompress decides whether a non-sampled-set eviction by core should
// be compressed. Sampled sets always compress regardless.
func (d *Dynamic) ShouldCompress(core, setIndex int) bool {
	if d.Sampled(setIndex) {
		return true
	}
	return d.counter(core).Enabled()
}

// Counters exposes the counters for stats reporting.
func (d *Dynamic) Counters() []*UtilityCounter { return d.counters }

// StorageBytes returns the counter storage cost (12 bits per counter,
// rounded up; Table III lists 12 bytes for the 8-core per-core design).
func (d *Dynamic) StorageBytes() int {
	return (len(d.counters)*CounterBits + 7) / 8
}
