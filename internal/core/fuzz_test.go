package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ptmc/internal/mem"
)

// FuzzMarkerClassify fuzzes the marker-classification core against the
// properties the whole PTMC design leans on:
//
//  1. classification is unambiguous — at most one marker predicate matches
//     any line, and Classify returns exactly that interpretation;
//  2. Invert is an involution;
//  3. data flagged by CollidesWithMarkers classifies, once inverted (its
//     stored form), as a LIT-consulting class — the inversion protocol
//     never loses a line;
//  4. data that does not collide is never mistaken for a compressed unit
//     or a tombstone — plain writes stay plainly readable;
//  5. SealCompressed round-trips through Classify for both unit sizes.
//
// The seed corpus includes engineered marker collisions (the adversarial
// case from §IV-C) and the all-zeros line.
func FuzzMarkerClassify(f *testing.F) {
	g := NewMarkerGen(1)
	withTail := func(word uint32) []byte {
		line := make([]byte, mem.LineSize)
		binary.LittleEndian.PutUint32(line[CompressedBudget:], word)
		return line
	}
	f.Add(int64(1), uint64(0), withTail(g.Marker2(0)))  // 2:1 collision
	f.Add(int64(1), uint64(0), withTail(g.Marker4(0)))  // 4:1 collision
	f.Add(int64(1), uint64(0), withTail(^g.Marker2(0))) // complement pattern
	il := g.MarkerIL(5)
	f.Add(int64(1), uint64(5), il[:])                        // tombstone collision
	f.Add(int64(7), uint64(123), make([]byte, mem.LineSize)) // all zeros

	f.Fuzz(func(t *testing.T, seed int64, addr uint64, raw []byte) {
		if len(raw) < mem.LineSize {
			return
		}
		data := raw[:mem.LineSize]
		g := NewMarkerGen(seed)
		a := mem.LineAddr(addr)

		assertUnambiguous(t, g, a, data)

		// Invert round-trips.
		if !bytes.Equal(Invert(Invert(data)), data) {
			t.Fatal("Invert is not an involution")
		}

		if g.CollidesWithMarkers(a, data) {
			// The stored (inverted) form must classify as a LIT-consulting
			// pattern, or the write path would lose this line.
			if c := g.Classify(a, Invert(data)); !c.NeedsLIT() {
				t.Fatalf("colliding line's inverted form classifies as %d, not a LIT class", c)
			}
		} else {
			// Non-colliding plain data must never look like a unit or a
			// tombstone.
			switch c := g.Classify(a, data); c {
			case ClassComp2, ClassComp4, ClassInvalid:
				t.Fatalf("non-colliding line classifies as %d", c)
			}
		}

		// Sealed units classify back to their own level.
		blob := data[:CompressedBudget]
		s2 := g.SealCompressed(a, blob, false)
		if c := g.Classify(a, s2[:]); c != ClassComp2 {
			t.Fatalf("sealed 2:1 unit classifies as %d", c)
		}
		s4 := g.SealCompressed(a, blob, true)
		if c := g.Classify(a, s4[:]); c != ClassComp4 {
			t.Fatalf("sealed 4:1 unit classifies as %d", c)
		}

		// The properties survive a re-key (fresh generation, same line).
		g.ReKey()
		assertUnambiguous(t, g, a, data)
	})
}

// assertUnambiguous checks that at most one marker predicate matches data
// and that Classify agrees with the matching predicate.
func assertUnambiguous(t *testing.T, g *MarkerGen, a mem.LineAddr, data []byte) {
	t.Helper()
	tail := binary.LittleEndian.Uint32(data[CompressedBudget:])
	m2, m4 := g.Marker2(a), g.Marker4(a)
	preds := []struct {
		hit   bool
		class Class
	}{
		{tail == m2, ClassComp2},
		{tail == m4, ClassComp4},
		{tail == ^m2, ClassInvComp2},
		{tail == ^m4, ClassInvComp4},
		{isMarkerIL(g, a, data, false), ClassInvalid},
		{isMarkerIL(g, a, data, true), ClassInvIL},
	}
	matches := 0
	want := ClassUncompressed
	for _, p := range preds {
		if p.hit {
			matches++
			want = p.class
		}
	}
	if matches > 1 {
		t.Fatalf("ambiguous classification: %d marker predicates match", matches)
	}
	if got := g.Classify(a, data); got != want {
		t.Fatalf("Classify = %d, predicates say %d", got, want)
	}
}
