package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"ptmc/internal/mem"
)

func TestMarkersAreDeterministicAndPerLine(t *testing.T) {
	g := NewMarkerGen(42)
	if g.Marker2(5) != g.Marker2(5) || g.Marker4(5) != g.Marker4(5) {
		t.Error("markers must be deterministic")
	}
	diff := 0
	for a := mem.LineAddr(0); a < 100; a++ {
		if g.Marker2(a) != g.Marker2(a+1) {
			diff++
		}
	}
	if diff < 95 {
		t.Errorf("per-line markers should almost always differ (got %d/100)", diff)
	}
}

func TestMarkerDistinctnessInvariants(t *testing.T) {
	g := NewMarkerGen(7)
	for a := mem.LineAddr(0); a < 10_000; a++ {
		m2, m4 := g.Marker2(a), g.Marker4(a)
		if m2 == m4 || m2 == ^m4 {
			t.Fatalf("line %d: m2/m4 degenerate: %08x %08x", a, m2, m4)
		}
		il := g.MarkerIL(a)
		tail := binary.LittleEndian.Uint32(il[CompressedBudget:])
		if tail == m2 || tail == m4 || tail == ^m2 || tail == ^m4 {
			t.Fatalf("line %d: Marker-IL tail collides with markers", a)
		}
	}
}

func TestReKeyChangesMarkers(t *testing.T) {
	g := NewMarkerGen(1)
	m2, m4, il := g.Marker2(9), g.Marker4(9), g.MarkerIL(9)
	g.ReKey()
	if g.Generation() != 1 {
		t.Errorf("generation = %d, want 1", g.Generation())
	}
	il2 := g.MarkerIL(9)
	if g.Marker2(9) == m2 && g.Marker4(9) == m4 && bytes.Equal(il[:], il2[:]) {
		t.Error("re-key should change per-line markers")
	}
}

func TestClassifyCompressed(t *testing.T) {
	g := NewMarkerGen(3)
	a := mem.LineAddr(40)
	sealed2 := g.SealCompressed(a, []byte{1, 2, 3}, false)
	if got := g.Classify(a, sealed2[:]); got != ClassComp2 {
		t.Errorf("2:1 sealed line classified %v", got)
	}
	sealed4 := g.SealCompressed(a, bytes.Repeat([]byte{9}, 60), true)
	if got := g.Classify(a, sealed4[:]); got != ClassComp4 {
		t.Errorf("4:1 sealed line classified %v", got)
	}
	// Sealed for address a, read as address a+1: per-line markers make
	// stale cross-address confusion essentially impossible.
	if got := g.Classify(a+1, sealed2[:]); got == ClassComp2 {
		t.Error("per-line marker matched at the wrong address")
	}
}

func TestSealRejectsOversizedBlob(t *testing.T) {
	g := NewMarkerGen(3)
	defer func() {
		if recover() == nil {
			t.Error("blob > 60 bytes must panic")
		}
	}()
	g.SealCompressed(0, make([]byte, 61), false)
}

func TestClassifyInvalid(t *testing.T) {
	g := NewMarkerGen(4)
	a := mem.LineAddr(77)
	il := g.MarkerIL(a)
	if got := g.Classify(a, il[:]); got != ClassInvalid {
		t.Errorf("Marker-IL classified %v", got)
	}
	// Another address's Marker-IL is just data here.
	other := g.MarkerIL(a + 1)
	if got := g.Classify(a, other[:]); got != ClassUncompressed {
		t.Errorf("foreign Marker-IL classified %v", got)
	}
}

func TestClassifyOrdinaryData(t *testing.T) {
	g := NewMarkerGen(5)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50_000; i++ {
		a := mem.LineAddr(rng.Intn(1 << 20))
		line := make([]byte, mem.LineSize)
		rng.Read(line)
		if g.CollidesWithMarkers(a, line) {
			continue // astronomically rare; skip
		}
		c := g.Classify(a, line)
		if c != ClassUncompressed && !c.NeedsLIT() {
			t.Fatalf("random non-colliding line classified %v", c)
		}
		if c.NeedsLIT() {
			// Possible but ~2^-32 each; with 50k trials this should
			// essentially never fire. Accept, since LIT-miss resolves it.
			t.Logf("trial %d: complement coincidence (%v)", i, c)
		}
	}
}

// TestCollisionInversionRoundTrip is the §IV-C scenario: a CPU line whose
// tail equals its own marker must be stored inverted and classified as a
// LIT-consulting complement on read.
func TestCollisionInversionRoundTrip(t *testing.T) {
	g := NewMarkerGen(6)
	a := mem.LineAddr(123)

	for _, four := range []bool{false, true} {
		line := make([]byte, mem.LineSize)
		for i := range line {
			line[i] = byte(i * 3)
		}
		m := g.Marker2(a)
		want := ClassInvComp2
		if four {
			m = g.Marker4(a)
			want = ClassInvComp4
		}
		binary.LittleEndian.PutUint32(line[CompressedBudget:], m)
		if !g.CollidesWithMarkers(a, line) {
			t.Fatal("engineered collision not detected")
		}
		stored := Invert(line)
		if got := g.Classify(a, stored); got != want {
			t.Errorf("inverted collision classified %v, want %v", got, want)
		}
		if !bytes.Equal(Invert(stored), line) {
			t.Error("double inversion must restore the original")
		}
	}

	// CPU data equal to the line's own Marker-IL: also inverted+tracked.
	il := g.MarkerIL(a)
	if !g.CollidesWithMarkers(a, il[:]) {
		t.Fatal("Marker-IL-valued data must collide")
	}
	stored := Invert(il[:])
	if got := g.Classify(a, stored); got != ClassInvIL {
		t.Errorf("inverted IL-collision classified %v, want ClassInvIL", got)
	}
}

// TestQuickClassifySound: for arbitrary data, Classify and
// CollidesWithMarkers agree — any line that would be stored as-is (no
// collision) classifies as uncompressed or a LIT-consulting complement,
// never as compressed or invalid.
func TestQuickClassifySound(t *testing.T) {
	g := NewMarkerGen(8)
	f := func(addr uint32, data [mem.LineSize]byte) bool {
		a := mem.LineAddr(addr)
		c := g.Classify(a, data[:])
		collides := g.CollidesWithMarkers(a, data[:])
		if collides {
			return c == ClassComp2 || c == ClassComp4 || c == ClassInvalid
		}
		return c == ClassUncompressed || c.NeedsLIT()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestInvertLength(t *testing.T) {
	in := []byte{0x00, 0xFF, 0xA5}
	out := Invert(in)
	want := []byte{0xFF, 0x00, 0x5A}
	if !bytes.Equal(out, want) {
		t.Errorf("Invert = %x, want %x", out, want)
	}
}
