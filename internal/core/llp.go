package core

import (
	"ptmc/internal/cache"
	"ptmc/internal/mem"
	"ptmc/internal/vm"
)

// LLPEntries is the paper's Last Compressibility Table size: 512 entries of
// 2 bits = 128 bytes.
const LLPEntries = 512

// LLP is the Line Location Predictor (§IV-B): it predicts a line's
// compression status — and therefore its location — from the last status
// seen for the same (hashed) page, exploiting the observation that lines
// within a page tend to have similar compressibility.
type LLP struct {
	lct []cache.Level

	Predictions uint64
	Correct     uint64
}

// NewLLP builds a predictor with n entries (use LLPEntries for the paper's
// configuration; cmd/sweep ablates this).
func NewLLP(n int) *LLP {
	if n <= 0 || n&(n-1) != 0 {
		panic("core: LLP entries must be a positive power of two")
	}
	return &LLP{lct: make([]cache.Level, n)}
}

// index hashes the page address into the LCT.
func (p *LLP) index(a mem.LineAddr) int {
	page := uint64(a) >> (vm.PageShift - 6)
	return int(mix(page) & uint64(len(p.lct)-1))
}

// Predict returns the predicted compression level for a line. New entries
// predict Uncompressed, matching PTMC's install-uncompressed policy.
func (p *LLP) Predict(a mem.LineAddr) cache.Level {
	return p.lct[p.index(a)]
}

// Record notes the actual level discovered for a line (via the inline
// marker). When counted is true this was a genuine location prediction;
// correct reports whether the predicted *location* was right (a level
// mismatch that maps to the same location — e.g. 2:1 vs uncompressed for a
// pair-base line — still found the line in one access). Accuracy statistics
// feed Figure 9.
func (p *LLP) Record(a mem.LineAddr, actual cache.Level, counted, correct bool) {
	if counted {
		p.Predictions++
		if correct {
			p.Correct++
		}
	}
	p.lct[p.index(a)] = actual
}

// Accuracy returns the fraction of counted predictions that were correct.
func (p *LLP) Accuracy() float64 {
	if p.Predictions == 0 {
		return 0
	}
	return float64(p.Correct) / float64(p.Predictions)
}

// StorageBytes returns the on-chip cost (2 bits per entry).
func (p *LLP) StorageBytes() int { return len(p.lct) * 2 / 8 }
