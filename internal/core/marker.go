// Package core implements the mechanisms that constitute PTMC's
// contribution (paper §IV-§V): inline-metadata markers with per-line
// attack-resilient values, the Line Inversion Table that handles marker
// collisions, the Invalid-Line marker that guards stale copies, the Line
// Location Predictor, the TMC address mapping, and the Dynamic-PTMC
// cost/benefit machinery.
package core

import (
	"encoding/binary"

	"ptmc/internal/mem"
)

// MarkerBytes is the width of the inline marker. A 4-byte marker leaves
// 60 bytes for compressed data and makes coincidental collisions ~1 in 4
// billion per line (§IV-C; the paper recommends 5 bytes only for systems
// with hundreds of gigabytes).
const MarkerBytes = 4

// CompressedBudget is the space available to compressed data in a 64-byte
// location once the marker is reserved.
const CompressedBudget = mem.LineSize - MarkerBytes

// Class is the interpretation of a line fetched from memory, determined
// entirely by scanning the line against the per-line markers — the inline
// metadata that replaces the metadata table.
type Class uint8

// Line classifications.
const (
	ClassUncompressed Class = iota // ordinary data
	ClassComp2                     // holds a 2:1 compressed pair
	ClassComp4                     // holds a 4:1 compressed quad
	ClassInvalid                   // Marker-IL: stale relocated line
	ClassInvComp2                  // complement of 2:1 marker: consult LIT
	ClassInvComp4                  // complement of 4:1 marker: consult LIT
	ClassInvIL                     // complement of Marker-IL: consult LIT
)

// NeedsLIT reports whether this classification requires a Line Inversion
// Table lookup to decide if the stored line is an inverted original.
func (c Class) NeedsLIT() bool {
	return c == ClassInvComp2 || c == ClassInvComp4 || c == ClassInvIL
}

// MarkerGen derives the per-line marker values from secret keys. Keys are
// regenerated (ReKey) on LIT overflow, which changes every per-line marker
// — the paper's defense against denial-of-service via engineered
// collisions.
type MarkerGen struct {
	key   uint64
	keyIL uint64
	gen   int // generation counter, bumped by ReKey
}

// NewMarkerGen seeds the generator. In hardware the seed comes from a
// per-machine random source at boot; in the simulator it is the run seed.
func NewMarkerGen(seed int64) *MarkerGen {
	g := &MarkerGen{}
	g.key = mix(uint64(seed) ^ 0xA5A5_5A5A_DEAD_BEEF)
	g.keyIL = mix(uint64(seed) + 0x0123_4567_89AB_CDEF)
	return g
}

// mix is a SplitMix64/SipHash-style 64-bit finalizer. The paper calls for a
// cryptographically secure keyed hash (DES); the only properties the design
// uses are per-line unpredictability without the key and cheap
// regeneration, which this keyed mix provides for simulation purposes.
func mix(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xFF51AFD7ED558CCD
	v ^= v >> 33
	v *= 0xC4CEB9FE1A85EC53
	v ^= v >> 33
	return v
}

// Generation returns how many times ReKey has run.
func (g *MarkerGen) Generation() int { return g.gen }

// ReKey regenerates the secret keys, changing all per-line markers.
func (g *MarkerGen) ReKey() {
	g.gen++
	g.key = mix(g.key ^ 0x9E3779B97F4A7C15)
	g.keyIL = mix(g.keyIL + 0x2545F4914F6CDD1D)
}

// markers returns the per-line 2:1 and 4:1 marker words, guaranteed
// pairwise distinct and not complements of one another (so classification
// is unambiguous).
func (g *MarkerGen) markers(a mem.LineAddr) (m2, m4 uint32) {
	h := mix(uint64(a)*0x9E3779B97F4A7C15 ^ g.key)
	m2 = uint32(h)
	m4 = uint32(h >> 32)
	for m4 == m2 || m4 == ^m2 {
		m4++ // degenerate draw: perturb deterministically
	}
	return m2, m4
}

// Marker2 returns the per-line 2:1 compression marker.
func (g *MarkerGen) Marker2(a mem.LineAddr) uint32 {
	m2, _ := g.markers(a)
	return m2
}

// Marker4 returns the per-line 4:1 compression marker.
func (g *MarkerGen) Marker4(a mem.LineAddr) uint32 {
	_, m4 := g.markers(a)
	return m4
}

// MarkerIL returns the per-line 64-byte Invalid-Line marker. Its last four
// bytes are patched to avoid the line's compression markers and their
// complements, so classification order cannot confuse an invalid line with
// a compressed or inverted one.
func (g *MarkerGen) MarkerIL(a mem.LineAddr) [mem.LineSize]byte {
	var line [mem.LineSize]byte
	h := mix(uint64(a) ^ g.keyIL)
	for i := 0; i < mem.LineSize; i += 8 {
		h = mix(h + 0x9E3779B97F4A7C15)
		binary.LittleEndian.PutUint64(line[i:], h)
	}
	m2, m4 := g.markers(a)
	tail := binary.LittleEndian.Uint32(line[CompressedBudget:])
	for tail == m2 || tail == m4 || tail == ^m2 || tail == ^m4 {
		tail++
	}
	binary.LittleEndian.PutUint32(line[CompressedBudget:], tail)
	return line
}

// Classify scans a fetched line against the per-line markers: the single
// operation that replaces a metadata-table lookup. ClassInvComp* results
// mean "uncompressed, but consult the LIT to learn whether the stored line
// is an inverted original".
func (g *MarkerGen) Classify(a mem.LineAddr, data []byte) Class {
	tail := binary.LittleEndian.Uint32(data[CompressedBudget:])
	m2, m4 := g.markers(a)
	// The cases below are mutually exclusive by construction: m2 != m4,
	// m4 != ^m2 (enforced in markers), x != ^x for any word, and the
	// Marker-IL tail is patched away from all four values.
	switch tail {
	case m2:
		return ClassComp2
	case m4:
		return ClassComp4
	case ^m2:
		return ClassInvComp2
	case ^m4:
		return ClassInvComp4
	}
	if isMarkerIL(g, a, data, false) {
		return ClassInvalid
	}
	if isMarkerIL(g, a, data, true) {
		return ClassInvIL
	}
	return ClassUncompressed
}

// isMarkerIL tests data against the Invalid-Line marker (or, when inverted
// is true, its complement — the stored form of a CPU line that happened to
// equal Marker-IL and was therefore inverted and LIT-tracked). It
// regenerates the marker incrementally and bails on the first mismatching
// word: this runs on every line classification and every first-touch
// collision check, and a real data line almost always diverges in word 0,
// so the common case costs two mixes instead of a full 64-byte synthesis.
// Equivalent, word for word, to comparing against MarkerIL(a).
func isMarkerIL(g *MarkerGen, a mem.LineAddr, data []byte, inverted bool) bool {
	inv := uint64(0)
	if inverted {
		inv = ^uint64(0)
	}
	h := mix(uint64(a) ^ g.keyIL)
	for i := 0; i < CompressedBudget-4; i += 8 {
		h = mix(h + 0x9E3779B97F4A7C15)
		if binary.LittleEndian.Uint64(data[i:]) != h^inv {
			return false
		}
	}
	h = mix(h + 0x9E3779B97F4A7C15)
	if binary.LittleEndian.Uint32(data[CompressedBudget-4:]) != uint32(h)^uint32(inv) {
		return false
	}
	// The final four bytes are MarkerIL's patched tail.
	m2, m4 := g.markers(a)
	tail := uint32(h >> 32)
	for tail == m2 || tail == m4 || tail == ^m2 || tail == ^m4 {
		tail++
	}
	return binary.LittleEndian.Uint32(data[CompressedBudget:]) == tail^uint32(inv)
}

// CollidesWithMarkers reports whether an uncompressed line about to be
// written to address a would be misclassified on a later read (it matches a
// compression marker in its tail, or equals the line's Marker-IL). Such
// lines must be stored inverted and tracked in the LIT.
func (g *MarkerGen) CollidesWithMarkers(a mem.LineAddr, data []byte) bool {
	tail := binary.LittleEndian.Uint32(data[CompressedBudget:])
	m2, m4 := g.markers(a)
	if tail == m2 || tail == m4 {
		return true
	}
	return isMarkerIL(g, a, data, false)
}

// Invert returns the bitwise complement of a line.
func Invert(data []byte) []byte {
	out := make([]byte, len(data))
	for i, b := range data {
		out[i] = ^b
	}
	return out
}

// SealCompressed builds the 64-byte memory image of a compressed location:
// blob (≤ 60 bytes of concatenated compressed lines) padded with zeros,
// with the appropriate per-line marker in the last four bytes.
func (g *MarkerGen) SealCompressed(a mem.LineAddr, blob []byte, four bool) [mem.LineSize]byte {
	if len(blob) > CompressedBudget {
		panic("core: compressed blob exceeds 60-byte budget")
	}
	var line [mem.LineSize]byte
	copy(line[:], blob)
	m := g.Marker2(a)
	if four {
		m = g.Marker4(a)
	}
	binary.LittleEndian.PutUint32(line[CompressedBudget:], m)
	return line
}
