package core

import (
	"testing"

	"ptmc/internal/cache"
	"ptmc/internal/mem"
	"ptmc/internal/vm"
)

func TestLITInsertContainsRemove(t *testing.T) {
	l := NewLIT(LITReKey)
	if inv, _ := l.Contains(5); inv {
		t.Error("empty LIT should not contain anything")
	}
	if over := l.Insert(5); over {
		t.Error("first insert should not overflow")
	}
	if inv, extra := l.Contains(5); !inv || extra {
		t.Error("inserted address should be found on-chip")
	}
	l.Insert(5) // duplicate is a no-op
	if l.Live() != 1 {
		t.Errorf("live = %d, want 1", l.Live())
	}
	l.Remove(5)
	if inv, _ := l.Contains(5); inv {
		t.Error("removed address should be gone")
	}
	l.Remove(5) // removing absent entry is safe
}

func TestLITOverflowReKeyMode(t *testing.T) {
	l := NewLIT(LITReKey)
	for i := 0; i < LITEntries; i++ {
		if l.Insert(mem.LineAddr(i)) {
			t.Fatalf("insert %d overflowed early", i)
		}
	}
	if !l.Insert(mem.LineAddr(LITEntries)) {
		t.Error("17th insert must signal overflow")
	}
	if l.Overflows != 1 {
		t.Errorf("overflows = %d, want 1", l.Overflows)
	}
	l.Clear()
	if l.Live() != 0 {
		t.Error("clear should empty the table")
	}
}

func TestLITMemoryMappedSpill(t *testing.T) {
	l := NewLIT(LITMemoryMapped)
	for i := 0; i <= LITEntries; i++ {
		if l.Insert(mem.LineAddr(i)) {
			t.Error("memory-mapped mode must absorb overflow")
		}
	}
	if l.Live() != LITEntries+1 {
		t.Errorf("live = %d, want %d", l.Live(), LITEntries+1)
	}
	// The spilled entry costs an extra access to find.
	inv, extra := l.Contains(mem.LineAddr(LITEntries))
	if !inv || !extra {
		t.Error("spilled entry should be found with an extra memory access")
	}
	if l.SpillReads == 0 {
		t.Error("spill reads should be counted")
	}
	l.Remove(mem.LineAddr(LITEntries))
	if inv, _ := l.Contains(mem.LineAddr(LITEntries)); inv {
		t.Error("spilled entry should be removable")
	}
	if len(l.Addresses()) != LITEntries {
		t.Errorf("addresses = %d, want %d", len(l.Addresses()), LITEntries)
	}
}

func TestLITStorageMatchesTableIII(t *testing.T) {
	if NewLIT(LITReKey).StorageBytes() != 64 {
		t.Error("LIT storage should be 64 bytes (Table III)")
	}
}

func TestLLPPredictsLastLevelPerPage(t *testing.T) {
	p := NewLLP(LLPEntries)
	a := mem.LineAddr(64 * 10) // some page
	if p.Predict(a) != cache.Uncompressed {
		t.Error("cold prediction should be Uncompressed")
	}
	p.Record(a, cache.Comp4, true, false)
	// Same page, different line: page-granular prediction.
	if p.Predict(a+5) != cache.Comp4 {
		t.Error("prediction should follow last level seen for the page")
	}
	if p.Accuracy() != 0 {
		t.Errorf("accuracy = %v after one wrong prediction", p.Accuracy())
	}
	p.Record(a+5, cache.Comp4, true, true)
	if p.Accuracy() != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", p.Accuracy())
	}
}

func TestLLPUncountedRecord(t *testing.T) {
	p := NewLLP(64)
	p.Record(0, cache.Comp2, false, false)
	if p.Predictions != 0 {
		t.Error("uncounted record must not affect accuracy stats")
	}
	if p.Predict(0) != cache.Comp2 {
		t.Error("uncounted record must still train the table")
	}
	if p.Accuracy() != 0 {
		t.Error("accuracy with no predictions should be 0")
	}
}

func TestLLPStorageMatchesTableIII(t *testing.T) {
	if NewLLP(LLPEntries).StorageBytes() != 128 {
		t.Error("512-entry LLP should cost 128 bytes (Table III)")
	}
}

func TestLLPBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two LLP should panic")
		}
	}()
	NewLLP(100)
}

func TestMappingGeometry(t *testing.T) {
	cases := []struct {
		a          mem.LineAddr
		group      mem.LineAddr
		pair       mem.LineAddr
		idx        int
		needsPred  bool
		candidates int
	}{
		{100, 100, 100, 0, false, 1},
		{101, 100, 100, 1, true, 2},
		{102, 100, 102, 2, true, 2},
		{103, 100, 102, 3, true, 3},
	}
	for _, tc := range cases {
		if GroupBase(tc.a) != tc.group || PairBase(tc.a) != tc.pair || GroupIndex(tc.a) != tc.idx {
			t.Errorf("addr %d: geometry mismatch", tc.a)
		}
		if NeedsPrediction(tc.a) != tc.needsPred {
			t.Errorf("addr %d: NeedsPrediction = %v", tc.a, !tc.needsPred)
		}
		if got := len(CandidateHomes(tc.a)); got != tc.candidates {
			t.Errorf("addr %d: %d candidate homes, want %d", tc.a, got, tc.candidates)
		}
	}
}

func TestHomeForAndMembers(t *testing.T) {
	a := mem.LineAddr(103)
	if HomeFor(a, cache.Comp4) != 100 || HomeFor(a, cache.Comp2) != 102 || HomeFor(a, cache.Uncompressed) != 103 {
		t.Error("HomeFor mismatch")
	}
	if got := MembersAt(100, cache.Comp4); len(got) != 4 || got[3] != 103 {
		t.Errorf("MembersAt 4:1 = %v", got)
	}
	if got := MembersAt(102, cache.Comp2); len(got) != 2 || got[1] != 103 {
		t.Errorf("MembersAt 2:1 = %v", got)
	}
	if got := MembersAt(103, cache.Uncompressed); len(got) != 1 {
		t.Errorf("MembersAt uncompressed = %v", got)
	}
	if !Covers(100, cache.Comp4, 103) || Covers(100, cache.Comp2, 103) {
		t.Error("Covers mismatch")
	}
}

func TestCandidateHomesOrder(t *testing.T) {
	// Most-compressed first, then pair, then own location.
	got := CandidateHomes(103)
	want := []mem.LineAddr{100, 102, 103}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

func TestUtilityCounterSaturation(t *testing.T) {
	c := NewUtilityCounter()
	if !c.Enabled() {
		t.Error("counter should start enabled (MSB set)")
	}
	for i := 0; i < counterMax+100; i++ {
		c.Cost()
	}
	if c.Value() != 0 {
		t.Errorf("value = %d, want saturated 0", c.Value())
	}
	if c.Enabled() {
		t.Error("fully costed counter should disable compression")
	}
	for i := 0; i < counterMax+100; i++ {
		c.Benefit()
	}
	if c.Value() != counterMax {
		t.Errorf("value = %d, want saturated %d", c.Value(), counterMax)
	}
	if !c.Enabled() {
		t.Error("fully benefited counter should enable compression")
	}
	if c.Benefits == 0 || c.Costs == 0 {
		t.Error("event counts should accumulate")
	}
}

func TestDynamicSampling(t *testing.T) {
	d := NewDynamic(8192, 8, 0.01, false)
	// Sampling is quantized to whole page runs (64 sets), rounded up, so
	// "1%" of 8192 sets lands on two 64-set runs.
	if got := d.SampledSets(); got < 64 || got > 160 {
		t.Errorf("sampled sets = %d, want ~1-2%% of 8192 in page runs", got)
	}
	sampledSet, unsampledSet := -1, -1
	for s := 0; s < 8192; s++ {
		if d.Sampled(s) {
			if sampledSet < 0 {
				sampledSet = s
			}
		} else if unsampledSet < 0 {
			unsampledSet = s
		}
	}
	if sampledSet < 0 || unsampledSet < 0 {
		t.Fatalf("need both sampled and unsampled sets (got %d, %d)", sampledSet, unsampledSet)
	}
	// Sampled sets compress regardless of the counter.
	for i := 0; i < counterMax; i++ {
		d.Cost(3)
	}
	if !d.ShouldCompress(3, sampledSet) {
		t.Error("sampled set must always compress")
	}
	if d.ShouldCompress(3, unsampledSet) {
		t.Error("non-sampled set should follow the (disabled) counter")
	}
}

// TestDynamicSamplingSpansRange: the sample must be spread across the
// set-index space — away from the low-index region where first-touch
// allocation concentrates hot structures — page-granular (a sampled page
// is sampled in full, because the LLP predicts per page), and
// deterministic from the config.
func TestDynamicSamplingSpansRange(t *testing.T) {
	const numSets = 8192
	d := NewDynamic(numSets, 8, 0.01, false)
	var sampled []int
	for s := 0; s < numSets; s++ {
		if d.Sampled(s) {
			sampled = append(sampled, s)
		}
	}
	if len(sampled) != d.SampledSets() {
		t.Fatalf("enumerated %d sampled sets, SampledSets() = %d",
			len(sampled), d.SampledSets())
	}
	lo, hi := sampled[0], sampled[len(sampled)-1]
	if lo < vm.PageLines {
		t.Errorf("lowest sampled set = %d; sample overlaps the first-touch low-address page run", lo)
	}
	if hi < numSets*3/4 {
		t.Errorf("highest sampled set = %d; sample does not span the index range (numSets=%d)",
			hi, numSets)
	}
	// Page-granular: every set of a sampled page-aligned run is sampled,
	// so a sampled page's LLP entry stays self-consistent whatever the
	// global policy (a partially sampled page would mispredict its own
	// sampled lines whenever compression is globally disabled).
	for _, s := range sampled {
		base := s / vm.PageLines * vm.PageLines
		for j := 0; j < vm.PageLines; j++ {
			if !d.Sampled(base + j) {
				t.Fatalf("set %d sampled but set %d of the same page run is not", s, base+j)
			}
		}
	}
	// Deterministic: an identically configured policy samples the same sets.
	d2 := NewDynamic(numSets, 8, 0.01, false)
	for s := 0; s < numSets; s++ {
		if d.Sampled(s) != d2.Sampled(s) {
			t.Fatalf("sampling not deterministic at set %d", s)
		}
	}
}

func TestDynamicAtLeastOneSampledSet(t *testing.T) {
	d := NewDynamic(16, 1, 0.01, false)
	if d.SampledSets() != GroupLines {
		t.Errorf("sampled sets = %d, want one full group (%d)", d.SampledSets(), GroupLines)
	}
	var n int
	for s := 0; s < 16; s++ {
		if d.Sampled(s) {
			n++
		}
	}
	if n != GroupLines {
		t.Errorf("enumerated %d sampled sets, want one full group (%d)", n, GroupLines)
	}
}

func TestDynamicFlipHook(t *testing.T) {
	d := NewDynamic(8192, 8, 0.01, false)
	type flip struct {
		core    int
		enabled bool
	}
	var flips []flip
	d.SetFlipHook(func(core int, enabled bool) {
		flips = append(flips, flip{core, enabled})
	})
	for i := 0; i < counterMax; i++ {
		d.Cost(2)
	}
	for i := 0; i < counterMax; i++ {
		d.Benefit(5)
	}
	if len(flips) != 2 {
		t.Fatalf("flips = %+v, want exactly one disable and one enable", flips)
	}
	if flips[0].enabled || flips[0].core != 2 {
		t.Errorf("first flip = %+v, want disable by core 2", flips[0])
	}
	if !flips[1].enabled || flips[1].core != 5 {
		t.Errorf("second flip = %+v, want enable by core 5", flips[1])
	}
}

func TestDynamicPerCoreIsolation(t *testing.T) {
	d := NewDynamic(8192, 8, 0.01, true)
	for i := 0; i < counterMax; i++ {
		d.Cost(0) // core 0 is compression-hostile
	}
	if d.ShouldCompress(0, 5000) {
		t.Error("core 0 should have compression disabled")
	}
	if !d.ShouldCompress(1, 5000) {
		t.Error("core 1 must be unaffected by core 0's costs")
	}
	if len(d.Counters()) != 8 {
		t.Errorf("counters = %d, want 8", len(d.Counters()))
	}
}

func TestDynamicStorage(t *testing.T) {
	if got := NewDynamic(8192, 8, 0.01, true).StorageBytes(); got != 12 {
		t.Errorf("per-core dynamic storage = %d bytes, want 12 (Table III)", got)
	}
	if got := NewDynamic(8192, 8, 0.01, false).StorageBytes(); got != 2 {
		t.Errorf("global dynamic storage = %d bytes, want 2", got)
	}
}

// TestTableIIITotalStorage reproduces Table III: total PTMC structures
// under 300 bytes.
func TestTableIIITotalStorage(t *testing.T) {
	marker2 := 4
	marker4 := 4
	markerIL := 64
	lit := NewLIT(LITReKey).StorageBytes()
	llp := NewLLP(LLPEntries).StorageBytes()
	dyn := NewDynamic(8192, 8, 0.01, true).StorageBytes()
	total := marker2 + marker4 + markerIL + lit + llp + dyn
	if total != 276 {
		t.Errorf("total storage = %d bytes, want 276 (Table III)", total)
	}
	if total >= 300 {
		t.Errorf("total storage = %d, paper claims < 300 bytes", total)
	}
}
