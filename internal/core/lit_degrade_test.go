package core

import (
	"testing"

	"ptmc/internal/mem"
)

// TestLITForceInsertSpillsInReKeyMode pins the last-resort degraded path:
// even in re-key mode (no memory-backed table by default), ForceInsert must
// materialize a spill table rather than lose track of an inverted line.
func TestLITForceInsertSpillsInReKeyMode(t *testing.T) {
	l := NewLIT(LITReKey)
	for a := mem.LineAddr(0); a < LITEntries; a++ {
		if l.Insert(a) {
			t.Fatalf("insert %d overflowed below capacity", a)
		}
	}
	over := mem.LineAddr(100)
	if !l.Insert(over) {
		t.Fatal("17th insert did not report overflow in re-key mode")
	}
	if inverted, _ := l.Contains(over); inverted {
		t.Fatal("overflowed insert should not be tracked")
	}

	l.ForceInsert(over)
	inverted, extra := l.Contains(over)
	if !inverted {
		t.Fatal("ForceInsert did not track the entry")
	}
	if !extra {
		t.Error("spilled lookup should cost an extra memory access")
	}
	if got := l.Live(); got != LITEntries+1 {
		t.Errorf("Live = %d, want %d", got, LITEntries+1)
	}
	if got := len(l.Addresses()); got != LITEntries+1 {
		t.Errorf("Addresses lists %d entries, want %d", got, LITEntries+1)
	}

	// On-chip entries must still hit without the extra access.
	if inverted, extra := l.Contains(3); !inverted || extra {
		t.Errorf("on-chip lookup: inverted=%v extra=%v, want true/false", inverted, extra)
	}

	l.Remove(over)
	if inverted, _ := l.Contains(over); inverted {
		t.Error("Remove left the spilled entry behind")
	}

	l.ForceInsert(over)
	l.Clear()
	if got := l.Live(); got != 0 {
		t.Errorf("Live after Clear = %d, want 0", got)
	}
}

// TestLITForceInsertPrefersOnChip: with a free slot, ForceInsert lands
// on-chip and no spill table is created.
func TestLITForceInsertPrefersOnChip(t *testing.T) {
	l := NewLIT(LITReKey)
	l.ForceInsert(5)
	if inverted, extra := l.Contains(5); !inverted || extra {
		t.Errorf("inverted=%v extra=%v, want true/false (on-chip)", inverted, extra)
	}
}
