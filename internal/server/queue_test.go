package server

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func qjob(id, tenant, priority string) *job {
	return newJob(id, JobSpec{Workload: "lbm06", Schemes: []string{"ptmc"},
		Tenant: tenant, Priority: priority})
}

// drainQueue pops everything currently ready without blocking.
func drainQueue(q *Queue) []*job {
	var out []*job
	for {
		q.mu.Lock()
		j := q.popLocked()
		if j != nil {
			q.queued--
		}
		q.mu.Unlock()
		if j == nil {
			return out
		}
		out = append(out, j)
	}
}

func TestQueuePriorityOrder(t *testing.T) {
	q := NewQueue(16, 0)
	// Enqueue lowest class first so FIFO alone would invert priority.
	for i := 0; i < 2; i++ {
		q.EnqueueReplayed(qjob(fmt.Sprintf("s%d", i), "t", PrioritySweepChild))
	}
	for i := 0; i < 2; i++ {
		q.EnqueueReplayed(qjob(fmt.Sprintf("b%d", i), "t", PriorityBatch))
	}
	for i := 0; i < 2; i++ {
		q.EnqueueReplayed(qjob(fmt.Sprintf("i%d", i), "t", PriorityInteractive))
	}
	var got []string
	for _, j := range drainQueue(q) {
		got = append(got, j.id)
	}
	// Strict priority with FIFO within class — except the agingEvery-th
	// dequeue (index 3 here), which serves the globally oldest (s0).
	want := []string{"i0", "i1", "b0", "s0", "b1", "s1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dequeue order %v, want %v", got, want)
	}
}

func TestQueueAgingPreventsStarvation(t *testing.T) {
	q := NewQueue(1024, 0)
	q.EnqueueReplayed(qjob("victim", "t", PrioritySweepChild))
	// A steady interactive stream: feed one new interactive job per
	// dequeue. Without aging the sweep child would never be served.
	served := -1
	for i := 0; i < 4*agingEvery; i++ {
		q.EnqueueReplayed(qjob(fmt.Sprintf("i%d", i), "t", PriorityInteractive))
		q.mu.Lock()
		j := q.popLocked()
		q.queued--
		q.mu.Unlock()
		if j.id == "victim" {
			served = i
			break
		}
	}
	if served < 0 {
		t.Fatalf("sweep-child job starved through %d dequeues under interactive load", 4*agingEvery)
	}
}

func TestQueueReplayedKeepsClass(t *testing.T) {
	q := NewQueue(16, 0)
	// A replayed job's class comes from its persisted spec, not from how it
	// entered the queue.
	q.EnqueueReplayed(qjob("batch", "t", PriorityBatch))
	q.EnqueueReplayed(qjob("inter", "t", PriorityInteractive))
	jobs := drainQueue(q)
	if jobs[0].id != "inter" {
		t.Fatalf("replayed interactive job not served first: got %s", jobs[0].id)
	}
}

func TestQueueDequeueBlocksAndWakes(t *testing.T) {
	q := NewQueue(4, 0)
	got := make(chan *job, 1)
	go func() {
		j, ok := q.Dequeue(func() bool { return false })
		if !ok {
			t.Error("Dequeue returned !ok without stop")
		}
		got <- j
	}()
	time.Sleep(5 * time.Millisecond) // let it block
	if err := q.Reserve("t"); err != nil {
		t.Fatal(err)
	}
	q.Commit(qjob("j1", "t", PriorityBatch))
	select {
	case j := <-got:
		if j.id != "j1" {
			t.Fatalf("dequeued %s", j.id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Dequeue never woke for a committed job")
	}

	// Stop predicate: a blocked Dequeue exits on Wake once stop is true.
	var stopped atomic.Bool
	exited := make(chan bool, 1)
	go func() {
		_, ok := q.Dequeue(func() bool { return stopped.Load() })
		exited <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	stopped.Store(true)
	q.Wake()
	select {
	case ok := <-exited:
		if ok {
			t.Fatal("Dequeue returned ok=true after stop")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Dequeue never observed stop after Wake")
	}
}

// TestQueueAccountingInvariants hammers the full admission protocol from
// many goroutines under -race: Reserve/Abort, Reserve/Commit/Dequeue/
// Release, and cap-bypassing EnqueueReplayed/Dequeue/Release. Invariants:
// counts never go negative, Depth never exceeds capacity + replayed
// in-flight, Commit never blocks, and the books balance exactly when the
// dust settles.
func TestQueueAccountingInvariants(t *testing.T) {
	const (
		goroutines = 8
		iterations = 300
		capacity   = 16
		perTenant  = 6
	)
	q := NewQueue(capacity, perTenant)
	tenants := []string{"a", "b", "c"}

	var handedOut atomic.Int64 // dequeued jobs awaiting Release
	var wg sync.WaitGroup
	stopWorkers := make(chan struct{})
	var workerWG sync.WaitGroup
	// Consumers: dequeue and release, like the server's workers.
	for w := 0; w < 3; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			stop := func() bool {
				select {
				case <-stopWorkers:
					return true
				default:
					return false
				}
			}
			for {
				j, ok := q.Dequeue(stop)
				if !ok {
					return
				}
				handedOut.Add(1)
				q.Release(j.spec.Tenant)
				handedOut.Add(-1)
			}
		}()
	}
	// Producers: mixed admission paths.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iterations; i++ {
				tenant := tenants[rng.Intn(len(tenants))]
				prio := []string{PriorityInteractive, PriorityBatch, PrioritySweepChild}[rng.Intn(3)]
				id := fmt.Sprintf("g%d-i%d", g, i)
				switch rng.Intn(4) {
				case 0: // reserve then abort (failed durable accept)
					if q.Reserve(tenant) == nil {
						q.Abort(tenant)
					}
				case 1, 2: // reserve then commit (normal admission)
					if q.Reserve(tenant) == nil {
						done := make(chan struct{})
						go func() { // Commit must never block
							q.Commit(qjob(id, tenant, prio))
							close(done)
						}()
						select {
						case <-done:
						case <-time.After(5 * time.Second):
							t.Error("Commit blocked")
							return
						}
					}
				case 3: // replayed admission bypasses the caps
					q.EnqueueReplayed(qjob(id, tenant, prio))
				}
				if d := q.Depth(); d < 0 {
					t.Errorf("Depth went negative: %d", d)
					return
				}
				for _, n := range q.Tenants() {
					if n < 0 {
						t.Errorf("tenant count negative: %d", n)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// Drain what's left, then stop the consumers.
	deadline := time.Now().Add(10 * time.Second)
	for q.Depth() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained: depth %d", q.Depth())
		}
		time.Sleep(time.Millisecond)
	}
	close(stopWorkers)
	q.Wake()
	workerWG.Wait()

	if d := q.Depth(); d != 0 {
		t.Fatalf("final depth %d, want 0", d)
	}
	if n := handedOut.Load(); n != 0 {
		t.Fatalf("%d jobs handed out and never released", n)
	}
	// Every committed/replayed job was released: counts empty.
	if tens := q.Tenants(); len(tens) != 0 {
		t.Fatalf("leaked tenant counts: %v", tens)
	}
}

// TestQueueReplayedHeadroom: replayed jobs may exceed capacity (durable
// work is not rejectable) but still count toward Depth and tenant load so
// new Reserves see the truth.
func TestQueueReplayedHeadroom(t *testing.T) {
	q := NewQueue(2, 0)
	for i := 0; i < 5; i++ {
		q.EnqueueReplayed(qjob(fmt.Sprintf("r%d", i), "t", PriorityBatch))
	}
	if d := q.Depth(); d != 5 {
		t.Fatalf("depth %d, want 5 (replayed jobs bypass the cap)", d)
	}
	// New admissions are rejected: the replayed load occupies the queue.
	if err := q.Reserve("x"); err == nil {
		t.Fatal("Reserve succeeded over a full (replayed) queue")
	}
}
