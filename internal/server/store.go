package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The on-disk job store is a segmented write-ahead log plus an atomic
// result directory:
//
//	<dir>/wal-NNNNNN.log     length+CRC framed, fsync'd append-only segments
//	<dir>/results/<key>.json whole-file results, written tmp+rename+fsync
//	<dir>/results/<key>.trace.json per-job Chrome-trace artifacts (best effort)
//
// Each WAL record is [len uint32][crc32 uint32][payload JSON], little
// endian. Appends are fsync'd before the caller is told the operation
// succeeded — Accept returning nil IS the daemon's 202, so a kill -9 at
// any later instant cannot lose the job. Because segments are
// append-only, a torn write can exist only at the tail of the newest
// segment: replay stops at the first frame whose length or checksum does
// not hold, truncates there, and the store is exactly the prefix of
// operations that were fully written. Results are never written in
// place; a result file either does not exist or is complete.
//
// Segment rotation: when the active segment passes SegmentBytes the
// store seals it and appends to a fresh one. A sealed segment whose every
// referenced job/sweep is terminal is compacted live: one summary record
// per id (accept + done, current state) is appended to the active
// segment and fsync'd, then the sealed file is deleted. Replay is
// idempotent — a duplicate accept keeps the first spec, a duplicate done
// re-applies the same terminal state — so a crash anywhere inside
// compaction (before the summary, between summary and delete, after the
// delete) replays to the same state. Long-lived deployments therefore
// keep O(live jobs) log bytes instead of growing one file forever;
// Checkpoint (graceful drain) is now just a full compaction.
//
// Crash-recovery state machine (replayed in segment + WAL order):
//
//	accept(id)        -> job pending
//	sweep(id)         -> sweep pending (children are ordinary jobs)
//	done(id, ok)      -> job/sweep done (result file must exist; if the
//	                     artifact vanished the entry degrades to pending
//	                     and is simply re-run — simulations are
//	                     deterministic, so the re-run is byte-identical)
//	done(id, failed)  -> failed (typed kind + message preserved)
//
// A job that was running at the moment of the crash has an accept record
// and no done record, so replay re-enqueues it.

// ErrStoreDead is returned by every operation after an injected crash:
// the chaos harness uses it to guarantee a "dead" store stops mutating
// disk at exactly the injected point, like the process it stands in for.
var ErrStoreDead = errors.New("server: job store is dead (injected crash)")

// CrashPoint names the instants the chaos harness may kill the store at.
type CrashPoint string

const (
	CrashBeforeAppend  CrashPoint = "before-append"  // record never written
	CrashAfterWrite    CrashPoint = "after-write"    // written, not synced: tail may tear
	CrashAfterSync     CrashPoint = "after-sync"     // durable, caller never told
	CrashAfterResult   CrashPoint = "after-result"   // result durable, done record absent
	CrashDuringCompact CrashPoint = "during-compact" // summary durable, sealed segment not yet deleted
)

// maxRecord bounds one WAL payload; anything larger during replay is
// treated as a torn/corrupt tail.
const maxRecord = 1 << 20

// DefaultSegmentBytes is the rotation threshold when the caller does not
// choose one.
const DefaultSegmentBytes = 4 << 20

// walRecord is the JSON payload of one frame.
type walRecord struct {
	Op       string     `json:"op"` // accept | sweep | done
	ID       string     `json:"id"`
	Spec     *JobSpec   `json:"spec,omitempty"`
	Sweep    *SweepSpec `json:"sweep,omitempty"`
	Status   string     `json:"status,omitempty"` // ok | failed
	FailKind string     `json:"fail_kind,omitempty"`
	Error    string     `json:"error,omitempty"`
}

// StoredJob is one job's durable state after replay.
type StoredJob struct {
	ID       string
	Spec     JobSpec
	State    string // StateAccepted | StateDone | StateFailed
	FailKind string
	Error    string
}

// StoredSweep is one sweep's durable state after replay. Children are
// not persisted with the sweep — they are ordinary jobs, recomputed
// deterministically from the spec on replay.
type StoredSweep struct {
	ID       string
	Spec     SweepSpec
	State    string
	FailKind string
	Error    string
}

// segment is one WAL file plus the set of job/sweep ids it references
// (the compaction unit).
type segment struct {
	index int
	path  string
	ids   map[string]bool
}

// Store is the durable job store. All methods are safe for concurrent
// use; every mutation is fsync'd before it reports success.
type Store struct {
	dir      string
	segBytes int64

	mu         sync.Mutex
	wal        *os.File   // active segment handle
	cur        *segment   // active segment bookkeeping
	walSize    int64      // bytes in the active segment
	sealed     []*segment // older segments, oldest first
	jobs       map[string]*StoredJob
	order      []string
	sweeps     map[string]*StoredSweep
	sweepOrder []string
	dead       bool
	compacting bool

	// Truncated reports how many torn/untrustworthy tail bytes replay
	// discarded — observability for the recovery path, asserted on by the
	// chaos tests.
	Truncated int64
	// Replayed counts the records recovered from the existing WAL.
	Replayed int
	// Compacted counts sealed segments removed by live compaction (and
	// checkpoint) over this store's lifetime.
	Compacted int

	// crash is the chaos hook (nil in production): consulted at each
	// CrashPoint; a non-nil return kills the store there.
	crash func(CrashPoint) error
	// fault is the transient-failure hook (nil in production): a non-nil
	// return fails the operation without killing the store — the disk
	// hiccup the in-process settlement retry path recovers from.
	fault func(op string) error
}

// OpenStore opens (creating if needed) the job store in dir with the
// default segment size and replays the WAL, truncating a torn tail.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreSegmented(dir, DefaultSegmentBytes)
}

// OpenStoreSegmented opens the store with an explicit rotation threshold
// (tests use tiny segments to force rollover and live compaction).
func OpenStoreSegmented(dir string, segBytes int64) (*Store, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(filepath.Join(dir, "results"), 0o755); err != nil {
		return nil, fmt.Errorf("server: store: %w", err)
	}
	s := &Store{
		dir: dir, segBytes: segBytes,
		jobs:   make(map[string]*StoredJob),
		sweeps: make(map[string]*StoredSweep),
	}
	if err := s.openSegments(); err != nil {
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		s.wal.Close()
		return nil, err
	}
	return s, nil
}

// segPath names segment i.
func (s *Store) segPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%06d.log", i))
}

// openSegments discovers, replays, and repairs the segment chain, leaving
// s.wal positioned for appends on the newest segment.
func (s *Store) openSegments() error {
	// Migrate a pre-rotation store: its single wal.log becomes segment 1.
	legacy := filepath.Join(s.dir, "wal.log")
	if _, err := os.Stat(legacy); err == nil {
		if _, err := os.Stat(s.segPath(1)); errors.Is(err, os.ErrNotExist) {
			if err := os.Rename(legacy, s.segPath(1)); err != nil {
				return fmt.Errorf("server: store: migrate wal.log: %w", err)
			}
		}
	}
	paths, err := filepath.Glob(filepath.Join(s.dir, "wal-*.log"))
	if err != nil {
		return fmt.Errorf("server: store: %w", err)
	}
	var segs []*segment
	for _, p := range paths {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(p), "wal-%06d.log", &idx); err != nil {
			continue // not ours
		}
		segs = append(segs, &segment{index: idx, path: p, ids: map[string]bool{}})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	if len(segs) == 0 {
		segs = []*segment{{index: 1, path: s.segPath(1), ids: map[string]bool{}}}
	}

	// Replay in order. An invalid frame in the NEWEST segment is the torn
	// tail a synced append-only log can legitimately suffer: truncate and
	// continue appending there. An invalid frame in an older segment means
	// everything after it is untrustworthy (same policy as the single-log
	// store): truncate that segment, discard all later segments, and make
	// the truncated one the active segment again.
	active := len(segs) - 1
	var activeValid int64
	for i, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("server: store: %w", err)
		}
		valid := s.replay(data, seg.ids)
		if valid < int64(len(data)) || err != nil {
			s.Truncated += int64(len(data)) - valid
			for _, later := range segs[i+1:] {
				if st, serr := os.Stat(later.path); serr == nil {
					s.Truncated += st.Size()
				}
				os.Remove(later.path)
			}
			active, activeValid = i, valid
			break
		}
		if i == active {
			activeValid = valid
		}
	}
	s.sealed = append(s.sealed, segs[:active]...)
	s.cur = segs[active]
	f, err := os.OpenFile(s.cur.path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("server: store: %w", err)
	}
	if err := f.Truncate(activeValid); err != nil {
		f.Close()
		return fmt.Errorf("server: store: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(activeValid, 0); err != nil {
		f.Close()
		return fmt.Errorf("server: store: %w", err)
	}
	s.wal = f
	s.walSize = activeValid
	return nil
}

// replay applies every fully-written record in data, adds touched ids to
// ids, and returns the byte offset of the last valid frame's end
// (everything past it is torn).
func (s *Store) replay(data []byte, ids map[string]bool) int64 {
	off := 0
	for {
		if len(data)-off < 8 {
			return int64(off)
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > maxRecord || len(data)-off-8 < int(n) {
			return int64(off)
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return int64(off)
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return int64(off)
		}
		s.apply(rec)
		if ids != nil {
			ids[rec.ID] = true
		}
		s.Replayed++
		off += 8 + int(n)
	}
}

// apply folds one record into the in-memory state (replay rules above).
func (s *Store) apply(rec walRecord) {
	switch rec.Op {
	case "accept":
		if rec.Spec == nil {
			return
		}
		if _, ok := s.jobs[rec.ID]; ok {
			return // idempotent: duplicate accepts collapse
		}
		s.jobs[rec.ID] = &StoredJob{ID: rec.ID, Spec: *rec.Spec, State: StateAccepted}
		s.order = append(s.order, rec.ID)
	case "sweep":
		if rec.Sweep == nil {
			return
		}
		if _, ok := s.sweeps[rec.ID]; ok {
			return
		}
		s.sweeps[rec.ID] = &StoredSweep{ID: rec.ID, Spec: *rec.Sweep, State: StateAccepted}
		s.sweepOrder = append(s.sweepOrder, rec.ID)
	case "done":
		if j, ok := s.jobs[rec.ID]; ok {
			if rec.Status == "ok" {
				if s.hasResultFile(rec.ID) {
					j.State = StateDone
				}
				// No artifact: leave pending, the job re-runs deterministically.
			} else {
				j.State, j.FailKind, j.Error = StateFailed, rec.FailKind, rec.Error
			}
			return
		}
		if sw, ok := s.sweeps[rec.ID]; ok {
			if rec.Status == "ok" {
				if s.hasResultFile(rec.ID) {
					sw.State = StateDone
				}
			} else {
				sw.State, sw.FailKind, sw.Error = StateFailed, rec.FailKind, rec.Error
			}
		}
	}
}

// Jobs returns every stored job in WAL (acceptance) order.
func (s *Store) Jobs() []*StoredJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*StoredJob, 0, len(s.order))
	for _, id := range s.order {
		j := *s.jobs[id]
		out = append(out, &j)
	}
	return out
}

// Sweeps returns every stored sweep in WAL (acceptance) order.
func (s *Store) Sweeps() []*StoredSweep {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*StoredSweep, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		sw := *s.sweeps[id]
		out = append(out, &sw)
	}
	return out
}

// Segments reports how many WAL segments exist (sealed + active) —
// observability for the rotation path.
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sealed) + 1
}

// CompactedSegments reports how many sealed segments live compaction (and
// checkpoint) removed over this store's lifetime.
func (s *Store) CompactedSegments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Compacted
}

// frame encodes one record as [len][crc][payload].
func frame(rec walRecord) []byte {
	payload := canonicalJSON(rec)
	buf := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// appendAll frames, writes, and fsyncs a batch of records as one write +
// one sync while holding s.mu, then rotates the active segment if it
// passed the size threshold. Batching is what makes a wide sweep fan-out
// one durability round-trip instead of one per child.
func (s *Store) appendAll(recs []walRecord) error {
	if s.dead || s.wal == nil {
		return ErrStoreDead
	}
	if s.fault != nil {
		if err := s.fault("append"); err != nil {
			return err
		}
	}
	if err := s.at(CrashBeforeAppend); err != nil {
		return err
	}
	var buf []byte
	for _, rec := range recs {
		buf = append(buf, frame(rec)...)
	}
	if _, err := s.wal.Write(buf); err != nil {
		return fmt.Errorf("server: wal append: %w", err)
	}
	if err := s.at(CrashAfterWrite); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("server: wal sync: %w", err)
	}
	if err := s.at(CrashAfterSync); err != nil {
		return err
	}
	s.walSize += int64(len(buf))
	for _, rec := range recs {
		s.cur.ids[rec.ID] = true
	}
	if s.walSize >= s.segBytes && !s.compacting {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) append(rec walRecord) error { return s.appendAll([]walRecord{rec}) }

// rotateLocked seals the active segment and opens the next one.
func (s *Store) rotateLocked() error {
	next := &segment{index: s.cur.index + 1, ids: map[string]bool{}}
	next.path = s.segPath(next.index)
	f, err := os.OpenFile(next.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("server: wal rotate: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.wal.Close()
	s.sealed = append(s.sealed, s.cur)
	s.cur, s.wal, s.walSize = next, f, 0
	return nil
}

// terminalLocked reports whether id refers to a terminal (or unknown —
// nothing to lose) job or sweep, and returns its summary records.
func (s *Store) terminalLocked(id string) (recs []walRecord, terminal bool) {
	if j, ok := s.jobs[id]; ok {
		switch j.State {
		case StateDone:
			spec := j.Spec
			return []walRecord{
				{Op: "accept", ID: id, Spec: &spec},
				{Op: "done", ID: id, Status: "ok"},
			}, true
		case StateFailed:
			spec := j.Spec
			return []walRecord{
				{Op: "accept", ID: id, Spec: &spec},
				{Op: "done", ID: id, Status: "failed", FailKind: j.FailKind, Error: j.Error},
			}, true
		}
		return nil, false
	}
	if sw, ok := s.sweeps[id]; ok {
		switch sw.State {
		case StateDone:
			spec := sw.Spec
			return []walRecord{
				{Op: "sweep", ID: id, Sweep: &spec},
				{Op: "done", ID: id, Status: "ok"},
			}, true
		case StateFailed:
			spec := sw.Spec
			return []walRecord{
				{Op: "sweep", ID: id, Sweep: &spec},
				{Op: "done", ID: id, Status: "failed", FailKind: sw.FailKind, Error: sw.Error},
			}, true
		}
		return nil, false
	}
	return nil, true // unknown id: no state to preserve
}

// maybeCompactLocked removes sealed segments whose every referenced id is
// terminal. Each victim's live state is first re-persisted as summary
// records in the active segment (one fsync per victim), then the sealed
// file is unlinked. Idempotent replay makes every crash window safe:
// summary-without-delete replays duplicates (collapsed), delete-without-
// summary cannot happen (the summary is synced first).
func (s *Store) maybeCompactLocked() error {
	if s.compacting || s.dead {
		return nil
	}
	s.compacting = true
	defer func() { s.compacting = false }()
	for i := 0; i < len(s.sealed); {
		seg := s.sealed[i]
		var summary []walRecord
		settled := true
		ids := make([]string, 0, len(seg.ids))
		for id := range seg.ids {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			recs, term := s.terminalLocked(id)
			if !term {
				settled = false
				break
			}
			summary = append(summary, recs...)
		}
		if !settled {
			i++
			continue
		}
		if len(summary) > 0 {
			if err := s.appendAll(summary); err != nil {
				return err
			}
		}
		if err := s.at(CrashDuringCompact); err != nil {
			return err
		}
		if err := os.Remove(seg.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("server: wal compact: %w", err)
		}
		if err := syncDir(s.dir); err != nil {
			return err
		}
		s.sealed = append(s.sealed[:i], s.sealed[i+1:]...)
		s.Compacted++
	}
	return nil
}

// at consults the crash hook; on injection the store dies in place.
func (s *Store) at(p CrashPoint) error {
	if s.crash == nil {
		return nil
	}
	if err := s.crash(p); err != nil {
		s.dead = true
		return err
	}
	return nil
}

// Accept durably records the job. When Accept returns nil the job is
// guaranteed to survive any crash; the HTTP layer acknowledges only then.
// Accepting an already-stored id is a no-op (idempotent resubmission).
func (s *Store) Accept(id string, spec JobSpec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrStoreDead
	}
	if _, ok := s.jobs[id]; ok {
		return nil
	}
	if err := s.append(walRecord{Op: "accept", ID: id, Spec: &spec}); err != nil {
		return err
	}
	s.jobs[id] = &StoredJob{ID: id, Spec: spec, State: StateAccepted}
	s.order = append(s.order, id)
	return nil
}

// AcceptSweep durably records a sweep and every child job it fans out to
// in ONE batched append (one fsync): when it returns nil the whole fan-out
// survives any crash. Children whose ids already exist are skipped —
// dedupe on content keys is what makes a resumed or overlapping sweep
// free. The sweep record is written last so a torn batch replays as plain
// orphan jobs (harmless, deterministic) rather than a sweep with missing
// children; recovery re-accepts missing children either way.
func (s *Store) AcceptSweep(id string, spec SweepSpec, childIDs []string, childSpecs []JobSpec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrStoreDead
	}
	if _, ok := s.sweeps[id]; ok {
		return nil
	}
	var recs []walRecord
	for i, cid := range childIDs {
		if _, ok := s.jobs[cid]; ok {
			continue
		}
		cs := childSpecs[i]
		recs = append(recs, walRecord{Op: "accept", ID: cid, Spec: &cs})
	}
	recs = append(recs, walRecord{Op: "sweep", ID: id, Sweep: &spec})
	if err := s.appendAll(recs); err != nil {
		return err
	}
	for i, cid := range childIDs {
		if _, ok := s.jobs[cid]; ok {
			continue
		}
		s.jobs[cid] = &StoredJob{ID: cid, Spec: childSpecs[i], State: StateAccepted}
		s.order = append(s.order, cid)
	}
	s.sweeps[id] = &StoredSweep{ID: id, Spec: spec, State: StateAccepted}
	s.sweepOrder = append(s.sweepOrder, id)
	return nil
}

// CompleteOK durably marks the job (or sweep) done. The result artifact
// must have been saved first (SaveResult); the ordering is what makes
// "done" imply "result readable" across any crash. Settlement is also the
// live-compaction trigger: a terminal record is what lets a sealed
// segment become fully settled.
func (s *Store) CompleteOK(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, jok := s.jobs[id]
	sw, sok := s.sweeps[id]
	if !jok && !sok {
		return fmt.Errorf("server: complete: unknown job %s", id)
	}
	if err := s.append(walRecord{Op: "done", ID: id, Status: "ok"}); err != nil {
		return err
	}
	if jok {
		j.State = StateDone
	} else {
		sw.State = StateDone
	}
	return s.maybeCompactLocked()
}

// CompleteFailed durably records a typed failure for a job or sweep.
func (s *Store) CompleteFailed(id, failKind, msg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, jok := s.jobs[id]
	sw, sok := s.sweeps[id]
	if !jok && !sok {
		return fmt.Errorf("server: complete: unknown job %s", id)
	}
	rec := walRecord{Op: "done", ID: id, Status: "failed", FailKind: failKind, Error: msg}
	if err := s.append(rec); err != nil {
		return err
	}
	if jok {
		j.State, j.FailKind, j.Error = StateFailed, failKind, msg
	} else {
		sw.State, sw.FailKind, sw.Error = StateFailed, failKind, msg
	}
	return s.maybeCompactLocked()
}

func (s *Store) resultPath(id string) string {
	return filepath.Join(s.dir, "results", id+".json")
}

func (s *Store) tracePath(id string) string {
	return filepath.Join(s.dir, "results", id+".trace.json")
}

func (s *Store) hasResultFile(id string) bool {
	_, err := os.Stat(s.resultPath(id))
	return err == nil
}

// writeFileAtomic lands data at path via temp file + fsync + rename +
// directory fsync: a crash at any instant leaves either no file or the
// complete file.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("server: write %s: %w", filepath.Base(path), err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("server: write %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("server: write %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: write %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("server: write %s: %w", filepath.Base(path), err)
	}
	return syncDir(dir)
}

// SaveResult atomically persists the job's (or sweep's) result artifact.
func (s *Store) SaveResult(id string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrStoreDead
	}
	if s.fault != nil {
		if err := s.fault("result"); err != nil {
			return err
		}
	}
	if err := writeFileAtomic(s.resultPath(id), data); err != nil {
		return err
	}
	return s.at(CrashAfterResult)
}

// SaveTrace atomically persists the job's Chrome-trace artifact. Traces
// are best-effort observability, not part of the durability contract: a
// job is complete with or without one.
func (s *Store) SaveTrace(id string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrStoreDead
	}
	return writeFileAtomic(s.tracePath(id), data)
}

// Result reads the persisted result artifact.
func (s *Store) Result(id string) ([]byte, error) {
	return os.ReadFile(s.resultPath(id))
}

// Trace reads the persisted Chrome-trace artifact.
func (s *Store) Trace(id string) ([]byte, error) {
	return os.ReadFile(s.tracePath(id))
}

// HasResult reports whether the job's result artifact is on disk.
func (s *Store) HasResult(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hasResultFile(id)
}

// Checkpoint compacts the whole WAL to one summary per job/sweep in a
// fresh segment, removing every older segment. Atomic: the new segment is
// written tmp+rename before the old ones are deleted, and replay collapses
// any crash-window duplicates. Called on graceful drain so a restart
// replays a minimal queue.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrStoreDead
	}
	var buf []byte
	add := func(rec walRecord) { buf = append(buf, frame(rec)...) }
	for _, id := range s.order {
		j := s.jobs[id]
		spec := j.Spec
		add(walRecord{Op: "accept", ID: id, Spec: &spec})
		switch j.State {
		case StateDone:
			add(walRecord{Op: "done", ID: id, Status: "ok"})
		case StateFailed:
			add(walRecord{Op: "done", ID: id, Status: "failed",
				FailKind: j.FailKind, Error: j.Error})
		}
	}
	for _, id := range s.sweepOrder {
		sw := s.sweeps[id]
		spec := sw.Spec
		add(walRecord{Op: "sweep", ID: id, Sweep: &spec})
		switch sw.State {
		case StateDone:
			add(walRecord{Op: "done", ID: id, Status: "ok"})
		case StateFailed:
			add(walRecord{Op: "done", ID: id, Status: "failed",
				FailKind: sw.FailKind, Error: sw.Error})
		}
	}
	nextIdx := s.cur.index + 1
	nextPath := s.segPath(nextIdx)
	if err := writeFileAtomic(nextPath, buf); err != nil {
		return err
	}
	// The compacted segment is durable; retire everything older.
	old := append(append([]*segment(nil), s.sealed...), s.cur)
	s.wal.Close()
	for _, seg := range old {
		if err := os.Remove(seg.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("server: checkpoint: %w", err)
		}
		s.Compacted++
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(nextPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: checkpoint: reopen: %w", err)
	}
	s.sealed = nil
	s.cur = &segment{index: nextIdx, path: nextPath, ids: map[string]bool{}}
	s.wal, s.walSize = f, int64(len(buf))
	return nil
}

// Close releases the WAL handle (no flush needed: every append synced).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		err := s.wal.Close()
		s.wal = nil
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a just-created/renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("server: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("server: sync dir %s: %w", dir, err)
	}
	return nil
}
