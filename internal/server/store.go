package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// The on-disk job store is a write-ahead log plus an atomic result
// directory:
//
//	<dir>/wal.log            length+CRC framed, fsync'd append-only records
//	<dir>/results/<key>.json whole-file results, written tmp+rename+fsync
//
// Each WAL record is [len uint32][crc32 uint32][payload JSON], little
// endian. Appends are fsync'd before the caller is told the operation
// succeeded — Accept returning nil IS the daemon's 202, so a kill -9 at
// any later instant cannot lose the job. Because the log is append-only,
// a torn write can exist only at the tail: replay stops at the first
// frame whose length or checksum does not hold, truncates the file there,
// and the store is exactly the prefix of operations that were fully
// written. Results are never written in place; a result file either does
// not exist or is complete.
//
// Crash-recovery state machine (replayed in WAL order):
//
//	accept(id)        -> job pending
//	done(id, ok)      -> job done   (result file must exist; if the
//	                     artifact vanished the job degrades to pending
//	                     and is simply re-run — simulations are
//	                     deterministic, so the re-run is byte-identical)
//	done(id, failed)  -> job failed (typed kind + message preserved)
//
// A job that was running at the moment of the crash has an accept record
// and no done record, so replay re-enqueues it. Checkpoint compacts the
// log to one accept (+ one done) per job, called on graceful drain.

// ErrStoreDead is returned by every operation after an injected crash:
// the chaos harness uses it to guarantee a "dead" store stops mutating
// disk at exactly the injected point, like the process it stands in for.
var ErrStoreDead = errors.New("server: job store is dead (injected crash)")

// CrashPoint names the instants the chaos harness may kill the store at.
type CrashPoint string

const (
	CrashBeforeAppend CrashPoint = "before-append" // record never written
	CrashAfterWrite   CrashPoint = "after-write"   // written, not synced: tail may tear
	CrashAfterSync    CrashPoint = "after-sync"    // durable, caller never told
	CrashAfterResult  CrashPoint = "after-result"  // result durable, done record absent
)

// maxRecord bounds one WAL payload; anything larger during replay is
// treated as a torn/corrupt tail.
const maxRecord = 1 << 20

// walRecord is the JSON payload of one frame.
type walRecord struct {
	Op       string   `json:"op"` // accept | done
	ID       string   `json:"id"`
	Spec     *JobSpec `json:"spec,omitempty"`
	Status   string   `json:"status,omitempty"` // ok | failed
	FailKind string   `json:"fail_kind,omitempty"`
	Error    string   `json:"error,omitempty"`
}

// StoredJob is one job's durable state after replay.
type StoredJob struct {
	ID       string
	Spec     JobSpec
	State    string // StateAccepted | StateDone | StateFailed
	FailKind string
	Error    string
}

// Store is the durable job store. All methods are safe for concurrent
// use; every mutation is fsync'd before it reports success.
type Store struct {
	dir string

	mu    sync.Mutex
	wal   *os.File
	jobs  map[string]*StoredJob
	order []string
	dead  bool

	// Truncated reports how many torn tail bytes replay discarded —
	// observability for the recovery path, asserted on by the chaos tests.
	Truncated int64
	// Replayed counts the records recovered from the existing WAL.
	Replayed int

	// crash is the chaos hook (nil in production): consulted at each
	// CrashPoint; a non-nil return kills the store there.
	crash func(CrashPoint) error
}

// OpenStore opens (creating if needed) the job store in dir and replays
// the WAL, truncating a torn tail.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "results"), 0o755); err != nil {
		return nil, fmt.Errorf("server: store: %w", err)
	}
	s := &Store{dir: dir, jobs: make(map[string]*StoredJob)}
	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("server: store: %w", err)
	}
	valid := s.replay(data)
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: store: %w", err)
	}
	if valid < int64(len(data)) {
		s.Truncated = int64(len(data)) - valid
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("server: store: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("server: store: %w", err)
	}
	s.wal = f
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// replay applies every fully-written record in data and returns the byte
// offset of the last valid frame's end (everything past it is torn).
func (s *Store) replay(data []byte) int64 {
	off := 0
	for {
		if len(data)-off < 8 {
			return int64(off)
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > maxRecord || len(data)-off-8 < int(n) {
			return int64(off)
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return int64(off)
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return int64(off)
		}
		s.apply(rec)
		s.Replayed++
		off += 8 + int(n)
	}
}

// apply folds one record into the in-memory state (replay rules above).
func (s *Store) apply(rec walRecord) {
	switch rec.Op {
	case "accept":
		if rec.Spec == nil {
			return
		}
		if _, ok := s.jobs[rec.ID]; ok {
			return // idempotent: duplicate accepts collapse
		}
		s.jobs[rec.ID] = &StoredJob{ID: rec.ID, Spec: *rec.Spec, State: StateAccepted}
		s.order = append(s.order, rec.ID)
	case "done":
		j, ok := s.jobs[rec.ID]
		if !ok {
			return
		}
		if rec.Status == "ok" {
			if s.hasResultFile(rec.ID) {
				j.State = StateDone
			}
			// No artifact: leave pending, the job re-runs deterministically.
		} else {
			j.State, j.FailKind, j.Error = StateFailed, rec.FailKind, rec.Error
		}
	}
}

// Jobs returns every stored job in WAL (acceptance) order.
func (s *Store) Jobs() []*StoredJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*StoredJob, 0, len(s.order))
	for _, id := range s.order {
		j := *s.jobs[id]
		out = append(out, &j)
	}
	return out
}

// append frames, writes, and fsyncs one record while holding s.mu.
func (s *Store) append(rec walRecord) error {
	if s.dead {
		return ErrStoreDead
	}
	if err := s.at(CrashBeforeAppend); err != nil {
		return err
	}
	payload := canonicalJSON(rec)
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, err := s.wal.Write(frame); err != nil {
		return fmt.Errorf("server: wal append: %w", err)
	}
	if err := s.at(CrashAfterWrite); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("server: wal sync: %w", err)
	}
	return s.at(CrashAfterSync)
}

// at consults the crash hook; on injection the store dies in place.
func (s *Store) at(p CrashPoint) error {
	if s.crash == nil {
		return nil
	}
	if err := s.crash(p); err != nil {
		s.dead = true
		return err
	}
	return nil
}

// Accept durably records the job. When Accept returns nil the job is
// guaranteed to survive any crash; the HTTP layer acknowledges only then.
// Accepting an already-stored id is a no-op (idempotent resubmission).
func (s *Store) Accept(id string, spec JobSpec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrStoreDead
	}
	if _, ok := s.jobs[id]; ok {
		return nil
	}
	if err := s.append(walRecord{Op: "accept", ID: id, Spec: &spec}); err != nil {
		return err
	}
	s.jobs[id] = &StoredJob{ID: id, Spec: spec, State: StateAccepted}
	s.order = append(s.order, id)
	return nil
}

// CompleteOK durably marks the job done. The result artifact must have
// been saved first (SaveResult); the ordering is what makes "done" imply
// "result readable" across any crash.
func (s *Store) CompleteOK(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("server: complete: unknown job %s", id)
	}
	if err := s.append(walRecord{Op: "done", ID: id, Status: "ok"}); err != nil {
		return err
	}
	j.State = StateDone
	return nil
}

// CompleteFailed durably records a typed failure.
func (s *Store) CompleteFailed(id, failKind, msg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("server: complete: unknown job %s", id)
	}
	rec := walRecord{Op: "done", ID: id, Status: "failed", FailKind: failKind, Error: msg}
	if err := s.append(rec); err != nil {
		return err
	}
	j.State, j.FailKind, j.Error = StateFailed, failKind, msg
	return nil
}

func (s *Store) resultPath(id string) string {
	return filepath.Join(s.dir, "results", id+".json")
}

func (s *Store) hasResultFile(id string) bool {
	_, err := os.Stat(s.resultPath(id))
	return err == nil
}

// SaveResult atomically persists the job's result artifact: write to a
// temp file, fsync it, rename into place, fsync the directory. A crash at
// any instant leaves either no file or the complete file — never a torn
// result.
func (s *Store) SaveResult(id string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrStoreDead
	}
	dir := filepath.Join(s.dir, "results")
	tmp, err := os.CreateTemp(dir, ".tmp-"+id+"-*")
	if err != nil {
		return fmt.Errorf("server: save result: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("server: save result: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("server: save result: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: save result: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.resultPath(id)); err != nil {
		return fmt.Errorf("server: save result: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	return s.at(CrashAfterResult)
}

// Result reads the persisted result artifact.
func (s *Store) Result(id string) ([]byte, error) {
	return os.ReadFile(s.resultPath(id))
}

// HasResult reports whether the job's result artifact is on disk.
func (s *Store) HasResult(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hasResultFile(id)
}

// Checkpoint compacts the WAL to one accept record (plus one done record
// for terminal jobs) per job, atomically (tmp+rename): a crash during
// checkpoint leaves the previous log intact. Called on graceful drain so
// a restart replays a minimal queue.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrStoreDead
	}
	var buf []byte
	frame := func(rec walRecord) {
		payload := canonicalJSON(rec)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	for _, id := range s.order {
		j := s.jobs[id]
		spec := j.Spec
		frame(walRecord{Op: "accept", ID: id, Spec: &spec})
		switch j.State {
		case StateDone:
			frame(walRecord{Op: "done", ID: id, Status: "ok"})
		case StateFailed:
			frame(walRecord{Op: "done", ID: id, Status: "failed",
				FailKind: j.FailKind, Error: j.Error})
		}
	}
	tmp, err := os.CreateTemp(s.dir, ".wal-*")
	if err != nil {
		return fmt.Errorf("server: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("server: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("server: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: checkpoint: %w", err)
	}
	walPath := filepath.Join(s.dir, "wal.log")
	if err := os.Rename(tmp.Name(), walPath); err != nil {
		return fmt.Errorf("server: checkpoint: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// Re-point the append handle at the compacted log.
	s.wal.Close()
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: checkpoint: reopen: %w", err)
	}
	s.wal = f
	return nil
}

// Close releases the WAL handle (no flush needed: every append synced).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		err := s.wal.Close()
		s.wal = nil
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a just-created/renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("server: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("server: sync dir %s: %w", dir, err)
	}
	return nil
}
