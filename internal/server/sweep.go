package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"ptmc/internal/sim"
)

// maxSweepPoints bounds a sweep's fan-out: a matrix wider than this is a
// client error, not a way to enqueue unbounded work under one request.
const maxSweepPoints = 400

// SweepSpec is the wire form of a parameter sweep: a workload × scheme ×
// seed matrix plus the shared knobs. The daemon fans it into one
// content-keyed child job per point (single-scheme, sweep-child priority)
// and aggregates the child artifacts into one sweep artifact. Children
// are derived deterministically from the normalized spec — they are never
// persisted with the sweep, so replay recomputes exactly the same
// fan-out, and points shared with earlier jobs or other sweeps dedupe on
// their keys.
type SweepSpec struct {
	Workloads []string `json:"workloads"`
	Schemes   []string `json:"schemes"`
	Seeds     []int64  `json:"seeds,omitempty"` // default: the paper seed
	Cores     int      `json:"cores,omitempty"`
	Warmup    int64    `json:"warmup_instr,omitempty"`
	Measure   int64    `json:"measure_instr,omitempty"`
	Shards    int      `json:"shards,omitempty"`
	// EventDriven runs every child on the discrete-event engine (see
	// JobSpec.EventDriven).
	EventDriven bool `json:"event_driven,omitempty"`
	// TimeoutSec bounds each child point's simulation (0 = server default).
	TimeoutSec int `json:"timeout_sec,omitempty"`
	// Tenant attributes every child for quota accounting ("" = "default").
	Tenant string `json:"tenant,omitempty"`
}

// Normalize fills defaults and validates the matrix, including running
// every child spec through JobSpec.Normalize so a sweep is rejected at
// submit time for exactly the reasons any of its points would be.
func (s *SweepSpec) Normalize() error {
	if len(s.Workloads) == 0 {
		return badRequest("workloads is required")
	}
	if len(s.Schemes) == 0 {
		s.Schemes = []string{sim.SchemeDynamicPTMC}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{sim.Default().Seed}
	}
	seenW := map[string]bool{}
	for _, w := range s.Workloads {
		if seenW[w] {
			return badRequest(fmt.Sprintf("duplicate workload %q", w))
		}
		seenW[w] = true
	}
	seenSd := map[int64]bool{}
	for _, sd := range s.Seeds {
		if seenSd[sd] {
			return badRequest(fmt.Sprintf("duplicate seed %d", sd))
		}
		seenSd[sd] = true
	}
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	n := len(s.Workloads) * len(s.Schemes) * len(s.Seeds)
	if n > maxSweepPoints {
		return badRequest(fmt.Sprintf("sweep has %d points (max %d)", n, maxSweepPoints))
	}
	// Child validation covers scheme names, knob ranges, and workload
	// resolution; it also normalizes the shared knobs in place via the
	// first child (all children share them).
	_, specs := s.children()
	for i := range specs {
		if err := specs[i].Normalize(); err != nil {
			return err
		}
	}
	first := specs[0]
	s.Cores, s.Warmup, s.Measure, s.Shards = first.Cores, first.Warmup, first.Measure, first.Shards
	return nil
}

// children derives the deterministic fan-out: workloads outermost, then
// schemes, then seeds. Each point is a single-scheme job at sweep-child
// priority; its id is the ordinary content key, which is what makes
// resumed (or overlapping) sweeps dedupe for free.
func (s *SweepSpec) children() (ids []string, specs []JobSpec) {
	for _, w := range s.Workloads {
		for _, sc := range s.Schemes {
			for _, sd := range s.Seeds {
				spec := JobSpec{
					Workload:    w,
					Schemes:     []string{sc},
					Cores:       s.Cores,
					Warmup:      s.Warmup,
					Measure:     s.Measure,
					Seed:        sd,
					Shards:      s.Shards,
					EventDriven: s.EventDriven,
					TimeoutSec:  s.TimeoutSec,
					Tenant:      s.Tenant,
					Priority:    PrioritySweepChild,
				}
				ids = append(ids, spec.Key())
				specs = append(specs, spec)
			}
		}
	}
	return ids, specs
}

// Key is the sweep's content-derived identity (same idempotency contract
// as JobSpec.Key: identical sweeps share one record and one artifact).
func (s *SweepSpec) Key() string {
	h := sha256.Sum256(canonicalJSON(s))
	return "s" + hex.EncodeToString(h[:8])
}

// SweepPoint is one matrix point in the aggregate artifact: its identity,
// terminal state, and (when done) the child's full result artifact.
type SweepPoint struct {
	Workload string          `json:"workload"`
	Scheme   string          `json:"scheme"`
	Seed     int64           `json:"seed"`
	JobID    string          `json:"job_id"`
	State    string          `json:"state"`
	FailKind string          `json:"fail_kind,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// SweepArtifact is the persisted (and served) aggregate: the normalized
// spec plus every point in deterministic matrix order. Built exclusively
// from on-disk child artifacts (canonicalJSON all the way down), so a
// resumed sweep's aggregate is byte-identical to an uninterrupted run's.
type SweepArtifact struct {
	ID     string       `json:"id"`
	Spec   SweepSpec    `json:"spec"`
	Points []SweepPoint `json:"points"`
}

// SweepStatus is the client-visible state of one sweep.
type SweepStatus struct {
	ID         string   `json:"id"`
	State      string   `json:"state"`
	Tenant     string   `json:"tenant,omitempty"`
	Workloads  []string `json:"workloads"`
	Schemes    []string `json:"schemes"`
	Points     int      `json:"points"`
	PointsDone int      `json:"points_done"` // terminal children (done or failed)
	FailKind   string   `json:"fail_kind,omitempty"`
	Error      string   `json:"error,omitempty"`
}

// sweep is the in-memory record the server tracks per sweep key. Child
// jobs are ordinary jobs in s.jobs; the sweep holds their ids in matrix
// order. A sweep settles "done" even when points failed — per-point
// failures are recorded in the artifact (degrade gracefully, never
// silently) — and "failed" only when the aggregate itself cannot settle.
type sweep struct {
	id       string
	spec     SweepSpec
	children []string

	mu       sync.Mutex
	state    string
	failKind string
	errMsg   string
	done     chan struct{} // closed on done/failed
}

func newSweep(id string, spec SweepSpec, children []string) *sweep {
	return &sweep{id: id, spec: spec, children: children,
		state: StateAccepted, done: make(chan struct{})}
}

// finish moves the sweep to a terminal state exactly once.
func (sw *sweep) finish(state, failKind, errMsg string) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.state == StateDone || sw.state == StateFailed {
		return
	}
	sw.state, sw.failKind, sw.errMsg = state, failKind, errMsg
	close(sw.done)
}

// status snapshots the client-visible state; pointsDone is supplied by
// the server (it owns the child jobs).
func (sw *sweep) status(pointsDone int) SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return SweepStatus{
		ID:         sw.id,
		State:      sw.state,
		Tenant:     sw.spec.Tenant,
		Workloads:  append([]string(nil), sw.spec.Workloads...),
		Schemes:    append([]string(nil), sw.spec.Schemes...),
		Points:     len(sw.children),
		PointsDone: pointsDone,
		FailKind:   sw.failKind,
		Error:      sw.errMsg,
	}
}
