package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Tiny segments force rollover every few records so the tests exercise
// the rotation + live-compaction machinery that production only reaches
// after megabytes of churn.
const tinySeg = 256

func walFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestStoreRotationBoundsSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStoreSegmented(dir, tinySeg)
	if err != nil {
		t.Fatal(err)
	}
	// Churn: every job settles immediately, so every sealed segment is
	// fully settled and live compaction should keep the chain short no
	// matter how many jobs flow through.
	const jobs = 40
	for i := 0; i < jobs; i++ {
		id := fmt.Sprintf("j%03d", i)
		if err := st.Accept(id, testSpec("lbm06")); err != nil {
			t.Fatal(err)
		}
		if err := st.SaveResult(id, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		if err := st.CompleteOK(id); err != nil {
			t.Fatal(err)
		}
	}
	if n := st.CompactedSegments(); n == 0 {
		t.Fatal("no sealed segment was ever compacted under settle-everything churn")
	}
	// The summary records themselves are subject to rotation, so the chain
	// stays bounded rather than merely "smaller than one file per job".
	if n := st.Segments(); n > 4 {
		t.Fatalf("segment chain grew to %d, want <= 4 (compaction not keeping up)", n)
	}
	st.Close()

	re, err := OpenStoreSegmented(dir, tinySeg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Jobs()
	if len(got) != jobs {
		t.Fatalf("replayed %d jobs, want %d", len(got), jobs)
	}
	for _, j := range got {
		if j.State != StateDone {
			t.Fatalf("%s: state %s after compacted replay, want done", j.ID, j.State)
		}
	}
}

func TestStoreUnsettledSegmentSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStoreSegmented(dir, tinySeg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// A job that never settles pins its segment: everything it references
	// must survive however much later churn compacts around it.
	if err := st.Accept("pinned", testSpec("lbm06")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("churn%03d", i)
		if err := st.Accept(id, testSpec("mcf06")); err != nil {
			t.Fatal(err)
		}
		if err := st.SaveResult(id, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		if err := st.CompleteOK(id); err != nil {
			t.Fatal(err)
		}
	}
	if st.CompactedSegments() == 0 {
		t.Fatal("settled churn segments were never compacted")
	}
	// The pinned job's segment (the oldest) must still be on disk.
	if _, err := os.Stat(filepath.Join(dir, "wal-000001.log")); err != nil {
		t.Fatalf("segment holding an unsettled job was deleted: %v", err)
	}
	st.Close()
	re, err := OpenStoreSegmented(dir, tinySeg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, j := range re.Jobs() {
		want := StateDone
		if j.ID == "pinned" {
			want = StateAccepted
		}
		if j.State != want {
			t.Fatalf("%s: state %s, want %s", j.ID, j.State, want)
		}
	}
}

func TestStoreCrashDuringCompactionLosesNothing(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStoreSegmented(dir, tinySeg)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("crash")
	st.crash = func(p CrashPoint) error {
		if p == CrashDuringCompact {
			return boom
		}
		return nil
	}
	// Drive until a compaction actually fires. The crash lands in the
	// worst window: the summary records are durable in the active segment
	// but the sealed segment they duplicate was NOT deleted.
	var crashed bool
	var ids []string
	for i := 0; i < 40 && !crashed; i++ {
		id := fmt.Sprintf("j%03d", i)
		ids = append(ids, id)
		if err := st.Accept(id, testSpec("lbm06")); err != nil {
			t.Fatal(err)
		}
		if err := st.SaveResult(id, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		if err := st.CompleteOK(id); errors.Is(err, boom) {
			crashed = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !crashed {
		t.Fatal("compaction never triggered with tiny segments")
	}
	// Dead store, like the process it models.
	if err := st.Accept("late", testSpec("mcf06")); !errors.Is(err, ErrStoreDead) {
		t.Fatalf("post-crash Accept err = %v, want ErrStoreDead", err)
	}
	st.Close()

	// Replay sees the sealed segment AND its summary duplicates; idempotent
	// apply collapses them to exactly the pre-crash state.
	re, err := OpenStoreSegmented(dir, tinySeg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := map[string]string{}
	for _, j := range re.Jobs() {
		got[j.ID] = j.State
	}
	for _, id := range ids {
		if got[id] != StateDone {
			t.Fatalf("%s: state %q after crash-during-compact replay, want done", id, got[id])
		}
	}
	if len(got) != len(ids) {
		t.Fatalf("replayed %d jobs, want %d", len(got), len(ids))
	}
}

func TestStoreLegacyWALMigrates(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Accept("j1", testSpec("lbm06")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Rewind history: a pre-rotation daemon left a single wal.log.
	if err := os.Rename(filepath.Join(dir, "wal-000001.log"),
		filepath.Join(dir, "wal.log")); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if jobs := re.Jobs(); len(jobs) != 1 || jobs[0].ID != "j1" {
		t.Fatalf("legacy replay got %d jobs", len(jobs))
	}
	if _, err := os.Stat(filepath.Join(dir, "wal.log")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("legacy wal.log still present after migration")
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-000001.log")); err != nil {
		t.Fatalf("migrated segment missing: %v", err)
	}
}

func TestStoreCorruptSealedSegmentDiscardsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStoreSegmented(dir, tinySeg)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing settles, so nothing compacts: the chain grows one segment at
	// a time and every record stays where it was written.
	for i := 0; i < 12; i++ {
		if err := st.Accept(fmt.Sprintf("j%03d", i), testSpec("lbm06")); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	files := walFiles(t, dir)
	if len(files) < 3 {
		t.Fatalf("need >= 3 segments for this test, got %d", len(files))
	}

	// Flip a payload byte in the SECOND segment: everything after the
	// corruption — the rest of that segment and all later segments — is
	// untrustworthy and must be discarded, not replayed around.
	second := filepath.Join(dir, "wal-000002.log")
	data, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 0xFF
	if err := os.WriteFile(second, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStoreSegmented(dir, tinySeg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Truncated == 0 {
		t.Fatal("Truncated = 0, want the discarded bytes counted")
	}
	// Only segment 1's records (plus none of the corrupt segment's) survive.
	first, err := os.ReadFile(filepath.Join(dir, "wal-000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	probe := &Store{jobs: map[string]*StoredJob{}, sweeps: map[string]*StoredSweep{}}
	probe.replay(first, nil)
	if len(re.Jobs()) != len(probe.jobs) {
		t.Fatalf("replayed %d jobs, want exactly segment 1's %d", len(re.Jobs()), len(probe.jobs))
	}
	for _, p := range walFiles(t, dir) {
		var idx int
		fmt.Sscanf(filepath.Base(p), "wal-%06d.log", &idx)
		if idx > 2 {
			t.Fatalf("segment %s survived a mid-chain corruption before it", p)
		}
	}
	// The repaired store accepts appends and replays them on the next boot.
	if err := re.Accept("fresh", testSpec("mcf06")); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := OpenStoreSegmented(dir, tinySeg)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	found := false
	for _, j := range re2.Jobs() {
		if j.ID == "fresh" {
			found = true
		}
	}
	if !found {
		t.Fatal("append after mid-chain repair lost")
	}
}
