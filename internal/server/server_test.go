package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ptmc/internal/exec"
	"ptmc/internal/sim"
)

// fakeResult builds a small deterministic result so service tests don't
// pay for real simulations (chaos and integration tests run real ones).
func fakeResult(cfg sim.Config) *sim.Result {
	return &sim.Result{
		Workload:     cfg.Workload,
		Scheme:       cfg.Scheme,
		Cores:        cfg.Cores,
		Instructions: cfg.MeasureInstr * int64(cfg.Cores),
		Cycles:       cfg.MeasureInstr + cfg.Seed,
		PerCoreIPC:   []float64{1.0, 2.0},
	}
}

// newTestServer boots a server over a temp store with a stubbed
// simulator. mutate tweaks the config; stub replaces runSim (nil keeps
// the instant fake).
func newTestServer(t *testing.T, mutate func(*Config), stub func(ctx context.Context, cfg sim.Config) (*sim.Result, error)) (*Server, *httptest.Server) {
	t.Helper()
	if stub == nil {
		stub = func(ctx context.Context, c sim.Config) (*sim.Result, error) {
			return fakeResult(c), nil
		}
	}
	cfg := Config{Dir: t.TempDir(), Workers: 2, Parallel: 2, QueueCap: 8, RunSim: stub}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, hs
}

func submit(t *testing.T, hs *httptest.Server, spec string) (int, JobStatus) {
	t.Helper()
	resp, err := http.Post(hs.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return resp.StatusCode, st
}

func waitState(t *testing.T, hs *httptest.Server, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(hs.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State == want {
			return st
		}
		if st.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed (%s: %s) while waiting for %s", id, st.FailKind, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

const tinySpec = `{"workload":"lbm06","schemes":["uncompressed","ptmc"],"cores":2,"warmup_instr":100,"measure_instr":200}`

func TestSubmitRunResult(t *testing.T) {
	_, hs := newTestServer(t, nil, nil)
	code, st := submit(t, hs, tinySpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if st.ID == "" || st.State != StateAccepted {
		t.Fatalf("bad status: %+v", st)
	}
	fin := waitState(t, hs, st.ID, StateDone)
	if fin.SchemesDone != 2 {
		t.Fatalf("schemes_done = %d, want 2", fin.SchemesDone)
	}

	resp, err := http.Get(hs.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var art ResultArtifact
	if err := json.NewDecoder(resp.Body).Decode(&art); err != nil {
		t.Fatal(err)
	}
	if len(art.Results) != 2 || art.Results[0].Scheme != "uncompressed" ||
		art.Results[1].Scheme != "ptmc" {
		t.Fatalf("artifact schemes wrong: %+v", art.Results)
	}
	if art.Results[0].Result.Workload != "lbm06" {
		t.Fatalf("result payload wrong: %+v", art.Results[0].Result)
	}

	// Idempotent resubmission: same spec, same job, 200 not 202.
	code2, st2 := submit(t, hs, tinySpec)
	if code2 != http.StatusOK || st2.ID != st.ID {
		t.Fatalf("resubmit = %d id %s, want 200 id %s", code2, st2.ID, st.ID)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, hs := newTestServer(t, nil, nil)
	for _, bad := range []string{
		`{`,
		`{"schemes":["ptmc"]}`,
		`{"workload":"nope-not-a-workload"}`,
		`{"workload":"lbm06","schemes":["bogus"]}`,
		`{"workload":"lbm06","schemes":["ptmc","ptmc"]}`,
		`{"workload":"lbm06","shards":3}`,
	} {
		code, _ := submit(t, hs, bad)
		if code != http.StatusBadRequest {
			t.Errorf("submit(%s) = %d, want 400", bad, code)
		}
	}
}

func TestQueueFullAndTenantQuota(t *testing.T) {
	release := make(chan struct{})
	var started atomic.Int32
	stub := func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		started.Add(1)
		select {
		case <-release:
			return fakeResult(c), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	_, hs := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueCap = 1
		c.TenantQuota = 2
	}, stub)
	defer close(release)

	mk := func(tenant string, seed int) string {
		return fmt.Sprintf(`{"workload":"lbm06","schemes":["ptmc"],"cores":2,"warmup_instr":100,"measure_instr":200,"seed":%d,"tenant":%q}`, seed, tenant)
	}
	// First job occupies the single worker...
	code, _ := submit(t, hs, mk("a", 1))
	if code != http.StatusAccepted {
		t.Fatalf("job1 = %d", code)
	}
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// ...second fills the queue slot...
	if code, _ := submit(t, hs, mk("b", 2)); code != http.StatusAccepted {
		t.Fatalf("job2 = %d, want 202", code)
	}
	// ...third bounces with a typed 503 queue_full.
	resp, err := http.Post(hs.URL+"/jobs", "application/json", strings.NewReader(mk("c", 3)))
	if err != nil {
		t.Fatal(err)
	}
	var ae APIError
	json.NewDecoder(resp.Body).Decode(&ae)
	resp.Body.Close()
	if resp.StatusCode != 503 || ae.Reason != "queue_full" {
		t.Fatalf("job3 = %d %q, want 503 queue_full", resp.StatusCode, ae.Reason)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	// Tenant quota: tenant a already has 1 in flight (quota 2) — a second
	// job for a would exceed the queue, so test quota on its own server.
	_, hs2 := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueCap = 8
		c.TenantQuota = 2
	}, stub)
	for i := 0; i < 2; i++ {
		if code, _ := submit(t, hs2, mk("q", 10+i)); code != http.StatusAccepted {
			t.Fatalf("quota job %d rejected", i)
		}
	}
	resp2, _ := http.Post(hs2.URL+"/jobs", "application/json", strings.NewReader(mk("q", 12)))
	var ae2 APIError
	json.NewDecoder(resp2.Body).Decode(&ae2)
	resp2.Body.Close()
	if resp2.StatusCode != 429 || ae2.Reason != "quota" {
		t.Fatalf("quota breach = %d %q, want 429 quota", resp2.StatusCode, ae2.Reason)
	}
	// A different tenant is unaffected by q's quota.
	if code, _ := submit(t, hs2, mk("other", 13)); code != http.StatusAccepted {
		t.Fatalf("other tenant = %d, want 202", code)
	}
}

func TestTypedFailuresPersist(t *testing.T) {
	boom := errors.New("sim exploded")
	stub := func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		if c.Scheme == "ptmc" {
			return nil, boom
		}
		if c.Scheme == "memzip" {
			panic("controller bug")
		}
		return fakeResult(c), nil
	}
	s, hs := newTestServer(t, nil, stub)

	_, st := submit(t, hs, `{"workload":"lbm06","schemes":["uncompressed","ptmc"],"cores":2,"warmup_instr":100,"measure_instr":200}`)
	fin := waitState(t, hs, st.ID, StateFailed)
	if fin.FailKind != FailKindSim || !strings.Contains(fin.Error, "sim exploded") {
		t.Fatalf("fail kind %q err %q, want sim", fin.FailKind, fin.Error)
	}
	// Result endpoint reports the typed failure as 409.
	resp, _ := http.Get(hs.URL + "/jobs/" + st.ID + "/result")
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of failed job = %d, want 409", resp.StatusCode)
	}

	// Panic isolation: the panicking job fails typed; the daemon survives
	// and keeps serving other jobs.
	_, st2 := submit(t, hs, `{"workload":"lbm06","schemes":["memzip"],"cores":2,"warmup_instr":100,"measure_instr":200}`)
	fin2 := waitState(t, hs, st2.ID, StateFailed)
	if fin2.FailKind != FailKindPanic {
		t.Fatalf("fail kind %q, want panic", fin2.FailKind)
	}
	_, st3 := submit(t, hs, `{"workload":"lbm06","schemes":["uncompressed"],"cores":2,"warmup_instr":100,"measure_instr":200,"seed":9}`)
	waitState(t, hs, st3.ID, StateDone)

	// Both failures are durable: a restart over the same dir replays them
	// as failed, not as pending work.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(s.cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	states := map[string]string{}
	for _, j := range re.Jobs() {
		states[j.ID] = j.State
	}
	if states[st.ID] != StateFailed || states[st2.ID] != StateFailed || states[st3.ID] != StateDone {
		t.Fatalf("replayed states wrong: %v", states)
	}
}

func TestRetryWithBackoffOnRetryable(t *testing.T) {
	var calls atomic.Int32
	stub := func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		if calls.Add(1) < 3 {
			return nil, exec.Retryable(errors.New("transient flake"))
		}
		return fakeResult(c), nil
	}
	s, hs := newTestServer(t, func(c *Config) {
		c.Retries = 3
		c.Backoff = time.Millisecond
	}, stub)
	_, st := submit(t, hs, tinySpec)
	waitState(t, hs, st.ID, StateDone)
	if calls.Load() < 3 {
		t.Fatalf("stub called %d times, want >= 3 (retries)", calls.Load())
	}
	if s.m.retried.Load() == 0 {
		t.Error("retry metric never moved")
	}
}

func TestEventsSSEReplayAndLive(t *testing.T) {
	release := make(chan struct{})
	stub := func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		<-release
		return fakeResult(c), nil
	}
	_, hs := newTestServer(t, nil, stub)
	_, st := submit(t, hs, tinySpec)

	// Connect while running: must see the backlog (accepted, queued, ...)
	// and then live events through to done.
	req, _ := http.NewRequest("GET", hs.URL+"/jobs/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}
	go close(release)
	kinds := readSSEKinds(t, resp.Body)
	wantPrefix := []string{"accepted", "queued", "started"}
	for i, k := range wantPrefix {
		if i >= len(kinds) || kinds[i] != k {
			t.Fatalf("event stream %v, want prefix %v", kinds, wantPrefix)
		}
	}
	if kinds[len(kinds)-1] != "done" {
		t.Fatalf("stream ended with %q, want done", kinds[len(kinds)-1])
	}

	// Reconnect after completion: the full backlog replays (survives the
	// first client's disconnect), and Last-Event-ID resumes mid-stream.
	resp2, err := http.Get(hs.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	kinds2 := readSSEKinds(t, resp2.Body)
	if len(kinds2) != len(kinds) {
		t.Fatalf("replay saw %d events, live saw %d", len(kinds2), len(kinds))
	}
	req3, _ := http.NewRequest("GET", hs.URL+"/jobs/"+st.ID+"/events", nil)
	req3.Header.Set("Last-Event-ID", "2")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	kinds3 := readSSEKinds(t, resp3.Body)
	if len(kinds3) != len(kinds)-2 || kinds3[0] != "started" {
		t.Fatalf("Last-Event-ID resume saw %v", kinds3)
	}
}

// readSSEKinds consumes an event stream until EOF, returning event kinds.
func readSSEKinds(t *testing.T, r interface{ Read([]byte) (int, error) }) []string {
	t.Helper()
	var kinds []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "event: ") {
			kinds = append(kinds, strings.TrimPrefix(line, "event: "))
		}
	}
	return kinds
}

func TestHealthReadyMetricsAndDrain(t *testing.T) {
	release := make(chan struct{})
	stub := func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		select {
		case <-release:
			return fakeResult(c), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s, hs := newTestServer(t, func(c *Config) { c.Workers = 1 }, stub)

	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(hs.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s = %d", ep, resp.StatusCode)
		}
	}
	_, st := submit(t, hs, tinySpec)
	waitState(t, hs, st.ID, StateRunning)

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	for _, want := range []string{"ptmcd.jobs_accepted 1", "ptmcd.jobs_inflight 1", "ptmcd.draining 0"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// Drain with a job mid-run: it is cancelled (not failed), stays
	// accepted in the WAL, and the daemon stops accepting.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == 503 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 during drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, _ := submit(t, hs, `{"workload":"mcf06","schemes":["ptmc"],"cores":2,"warmup_instr":100,"measure_instr":200}`); code != 503 {
		t.Fatalf("submit during drain = %d, want 503", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The interrupted job replays on the next boot and completes.
	s2, err := New(Config{Dir: s.cfg.Dir, Workers: 1,
		RunSim: func(ctx context.Context, c sim.Config) (*sim.Result, error) {
			return fakeResult(c), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	fin := waitState(t, hs2, st.ID, StateDone)
	if !fin.Replayed {
		t.Error("job not marked replayed after restart")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
