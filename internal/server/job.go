// Package server is the simulation-as-a-service layer: a crash-safe job
// daemon (cmd/ptmcd) that accepts experiment jobs over HTTP/JSON, runs
// them on the internal/exec pool via the ctx-aware sim.RunContext, and is
// engineered for failure first — the same philosophy the paper applies to
// PTMC itself (never lose data, degrade gracefully, keep the expensive
// machinery off the critical path).
//
// The durability contract mirrors the memory controller's: a job is
// acknowledged (HTTP 202) only after its accept record is fsync'd into the
// write-ahead job store, so a kill -9 at any instant loses no accepted
// work. On restart the daemon replays the WAL, completes jobs whose result
// artifact already landed, and re-enqueues the rest; because simulations
// are deterministic, a replayed job produces a byte-identical result. The
// chaos campaign in chaos_test.go adjudicates randomized crash, torn-write,
// and cancellation trials against this contract with a zero-LOST bar.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"ptmc/internal/sim"
	"ptmc/internal/workload"
)

// JobSpec is the wire form of one experiment job: a workload, a scheme
// matrix, and the config knobs a remote caller may vary. Zero fields take
// the paper's defaults (sim.Default). The normalized spec — not the raw
// request bytes — is what gets keyed, stored, and replayed, so two
// requests that mean the same experiment share one job.
type JobSpec struct {
	Workload string   `json:"workload"`
	Schemes  []string `json:"schemes"`
	Cores    int      `json:"cores,omitempty"`
	Warmup   int64    `json:"warmup_instr,omitempty"`
	Measure  int64    `json:"measure_instr,omitempty"`
	Seed     int64    `json:"seed,omitempty"`
	Shards   int      `json:"shards,omitempty"`
	// EventDriven runs each scheme's simulation on the discrete-event
	// engine (sim.Config.EventDriven). Purely a performance knob — results
	// are byte-identical to the serial loop — but part of the job key so
	// an engine-mode comparison can be expressed as two distinct jobs.
	EventDriven bool `json:"event_driven,omitempty"`
	// TimeoutSec bounds each scheme's simulation (0 = server default).
	TimeoutSec int `json:"timeout_sec,omitempty"`
	// Tenant attributes the job for quota accounting ("" = "default").
	Tenant string `json:"tenant,omitempty"`
	// Priority picks the scheduling class: interactive > batch >
	// sweep-child ("" = batch). Scheduling metadata only — it does not
	// participate in the job key, so resubmitting an experiment at a
	// different priority joins the existing job rather than re-running it.
	// Persisted with the spec, so a replayed job keeps its class.
	Priority string `json:"priority,omitempty"`
	// Trace records simulation events (internal/obs) during each scheme
	// run; the per-job Chrome trace served at /jobs/{id}/trace then carries
	// the cycle-stamped simulator events alongside the per-scheme job
	// spans. Part of the job key: a traced run is a different artifact.
	Trace bool `json:"trace,omitempty"`
}

// Normalize fills defaults in place and validates the spec against the
// simulator's own rules, returning a typed *APIError on rejection.
func (s *JobSpec) Normalize() error {
	if s.Workload == "" {
		return badRequest("workload is required")
	}
	if len(s.Schemes) == 0 {
		s.Schemes = []string{sim.SchemeDynamicPTMC}
	}
	seen := map[string]bool{}
	for _, sc := range s.Schemes {
		if seen[sc] {
			return badRequest(fmt.Sprintf("duplicate scheme %q", sc))
		}
		seen[sc] = true
	}
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Priority == "" {
		s.Priority = PriorityBatch
	}
	switch s.Priority {
	case PriorityInteractive, PriorityBatch, PrioritySweepChild:
	default:
		return badRequest(fmt.Sprintf("unknown priority %q (want %s|%s|%s)",
			s.Priority, PriorityInteractive, PriorityBatch, PrioritySweepChild))
	}
	if s.TimeoutSec < 0 {
		return badRequest("timeout_sec must be >= 0")
	}
	def := sim.Default()
	if s.Cores == 0 {
		s.Cores = def.Cores
	}
	if s.Warmup == 0 {
		s.Warmup = def.WarmupInstr
	}
	if s.Measure == 0 {
		s.Measure = def.MeasureInstr
	}
	if s.Seed == 0 {
		s.Seed = def.Seed
	}
	// Validate once per scheme with the simulator's own rules, so the
	// daemon rejects at accept time what the worker would reject at run
	// time (a rejected request costs no WAL write).
	for _, scheme := range s.Schemes {
		cfg := s.Config(scheme)
		if err := cfg.Validate(); err != nil {
			return badRequest(err.Error())
		}
	}
	// The mix/workload name must resolve now: an unknown workload must be
	// a 400 at submit, not a failed job an hour later.
	if _, err := workload.Lookup(s.Workload); err != nil {
		if _, merr := workload.LookupMix(s.Workload); merr != nil {
			return badRequest(fmt.Sprintf("unknown workload or mix %q", s.Workload))
		}
	}
	return nil
}

// Config maps the normalized spec to one scheme's simulator config.
func (s *JobSpec) Config(scheme string) sim.Config {
	cfg := sim.Default()
	cfg.Workload = s.Workload
	cfg.Scheme = scheme
	cfg.Cores = s.Cores
	cfg.WarmupInstr = s.Warmup
	cfg.MeasureInstr = s.Measure
	cfg.Seed = s.Seed
	cfg.Shards = s.Shards
	cfg.EventDriven = s.EventDriven
	cfg.Trace = s.Trace
	return cfg
}

// Key is the job's content-derived identity: workload and scheme matrix
// plus a short hash of every other knob, in the same spirit (and the same
// "|"-joined shape) as the paper runner's singleflight cache key
// (workload|scheme|variant). Identical specs — across requests, tenants,
// and daemon restarts — share one key, one WAL entry, and one persistent
// result; that is what makes repeated sweeps across restarts free.
// Priority deliberately does not participate (scheduling metadata); Trace
// does (a traced run is a different artifact).
func (s *JobSpec) Key() string {
	variant := fmt.Sprintf("c%d|w%d|m%d|s%d|sh%d|ev%t|t%d|tr%t",
		s.Cores, s.Warmup, s.Measure, s.Seed, s.Shards, s.EventDriven, s.TimeoutSec, s.Trace)
	h := sha256.Sum256([]byte(s.Workload + "|" + strings.Join(s.Schemes, ",") + "|" + variant))
	return "j" + hex.EncodeToString(h[:8])
}

// SchemeKey is the per-scheme singleflight key used to deduplicate the
// actual simulations across concurrently-running jobs (two jobs sharing a
// (workload, scheme, variant) point run it once). Tenant and scheme-matrix
// membership deliberately do not participate.
func (s *JobSpec) SchemeKey(scheme string) string {
	return fmt.Sprintf("%s|%s|c%d|w%d|m%d|s%d|sh%d|ev%t|tr%t",
		s.Workload, scheme, s.Cores, s.Warmup, s.Measure, s.Seed, s.Shards, s.EventDriven, s.Trace)
}

// Job states. The daemon's crash-recovery state machine (DESIGN.md) allows
// exactly these transitions:
//
//	accepted -> running -> done | failed
//	accepted -> failed            (validation raced, drain cancellation)
//	running  -> accepted          (crash or drain: replay re-enqueues;
//	                               or a store write failed mid-settlement:
//	                               the quota unit is released and the job
//	                               re-enqueues in-process with backoff)
const (
	StateAccepted = "accepted" // WAL accept record fsync'd; queued or re-queued
	StateRunning  = "running"  // a worker holds it (not persisted: crash => accepted)
	StateDone     = "done"     // result artifact on disk + WAL done record
	StateFailed   = "failed"   // WAL done record with a typed error
)

// Typed failure kinds persisted with a failed job. Every failure a client
// can observe carries one of these — "degraded, never silent".
const (
	FailKindPanic    = "panic"    // exec.PanicError: isolated, never retried
	FailKindTimeout  = "timeout"  // per-job deadline exceeded
	FailKindCanceled = "canceled" // drain or client cancellation
	FailKindSim      = "sim"      // simulator returned an error
)

// JobStatus is the client-visible state of one job.
type JobStatus struct {
	ID       string   `json:"id"`
	State    string   `json:"state"`
	Tenant   string   `json:"tenant,omitempty"`
	Workload string   `json:"workload"`
	Schemes  []string `json:"schemes"`
	Priority string   `json:"priority,omitempty"`
	// SchemesDone counts completed matrix points (progress).
	SchemesDone int    `json:"schemes_done"`
	FailKind    string `json:"fail_kind,omitempty"`
	Error       string `json:"error,omitempty"`
	// Replayed marks a job re-enqueued from the WAL after a restart.
	Replayed bool `json:"replayed,omitempty"`
}

// Event is one progress notification on a job's stream: kept in the job's
// backlog (so SSE clients that disconnect and return replay from any
// point) and fanned out to live subscribers.
type Event struct {
	Seq  int    `json:"seq"`
	Kind string `json:"kind"` // accepted|queued|started|scheme|retry|replayed|requeued|canceled|done|failed
	Msg  string `json:"msg,omitempty"`
}

// job is the in-memory record the server tracks per key.
type job struct {
	id   string
	spec JobSpec

	mu          sync.Mutex
	state       string
	schemesDone int
	failKind    string
	errMsg      string
	replayed    bool
	requeues    int // in-process settlement retries (backoff exponent)
	events      []Event
	subs        map[chan Event]struct{} // live SSE subscribers
	done        chan struct{}           // closed on done/failed
}

func newJob(id string, spec JobSpec) *job {
	j := &job{id: id, spec: spec, state: StateAccepted,
		subs: make(map[chan Event]struct{}), done: make(chan struct{})}
	return j
}

// emit appends one event to the backlog and notifies live subscribers.
// Slow subscribers are skipped, never blocked on: the backlog is the
// source of truth and a reconnect (or the gap-heal in handleEvents)
// replays it.
func (j *job) emit(kind, msg string) {
	j.mu.Lock()
	j.emitLocked(kind, msg)
	j.mu.Unlock()
}

func (j *job) emitLocked(kind, msg string) {
	ev := Event{Seq: len(j.events) + 1, Kind: kind, Msg: msg}
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// finish moves the job to a terminal state exactly once. The terminal
// event is appended to the backlog in the same critical section that
// closes j.done: an SSE handler waking on <-j.done is therefore
// guaranteed to find the done/failed event in backlogAfter, however the
// wakeup races the emit. (Emitting after the close — the old order — let
// a handler read the backlog in the window between close and append and
// end the stream without ever delivering the terminal event.)
func (j *job) finish(state, failKind, errMsg string) {
	j.mu.Lock()
	if j.state == StateDone || j.state == StateFailed {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.failKind = failKind
	j.errMsg = errMsg
	if state == StateDone {
		j.emitLocked("done", "")
	} else {
		j.emitLocked("failed", failKind+": "+errMsg)
	}
	close(j.done)
	j.mu.Unlock()
}

// subscribe registers a live event channel and returns the backlog events
// after seq (exclusive) for replay.
func (j *job) subscribe(afterSeq int, ch chan Event) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.subs[ch] = struct{}{}
	if afterSeq >= len(j.events) {
		return nil
	}
	backlog := make([]Event, len(j.events)-afterSeq)
	copy(backlog, j.events[afterSeq:])
	return backlog
}

// backlogAfter copies the events recorded after seq (exclusive).
func (j *job) backlogAfter(seq int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq >= len(j.events) {
		return nil
	}
	backlog := make([]Event, len(j.events)-seq)
	copy(backlog, j.events[seq:])
	return backlog
}

func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// status snapshots the client-visible state.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:          j.id,
		State:       j.state,
		Tenant:      j.spec.Tenant,
		Workload:    j.spec.Workload,
		Schemes:     append([]string(nil), j.spec.Schemes...),
		Priority:    j.spec.Priority,
		SchemesDone: j.schemesDone,
		FailKind:    j.failKind,
		Error:       j.errMsg,
		Replayed:    j.replayed,
	}
}

// APIError is the typed rejection the HTTP layer renders: a status code
// plus a stable machine-readable reason. Queue pressure and quota
// exhaustion are APIErrors (429/503), not generic failures — a client can
// tell "try later" from "never".
type APIError struct {
	Code   int    `json:"-"`
	Reason string `json:"reason"` // stable token: bad_request|queue_full|quota|draining|...
	Msg    string `json:"error"`
}

func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Reason, e.Msg) }

func badRequest(msg string) *APIError {
	return &APIError{Code: 400, Reason: "bad_request", Msg: msg}
}

// canonicalJSON marshals v with deterministic field order (struct order);
// the persisted artifacts rely on this for byte-identical replay.
func canonicalJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Specs and results are plain data; marshal cannot fail for them.
		panic(fmt.Sprintf("server: canonicalJSON: %v", err))
	}
	return b
}
