package server

// Chaos campaign for the durable job queue. Each trial boots a daemon over
// one on-disk store with tiny WAL segments (so rotation and live
// compaction run constantly), submits jobs and the occasional sweep, then
// kills it rudely: an injected store crash at a random WAL point
// (before-append / after-write / after-sync / after-result / mid-compact),
// a mid-run drain (SIGTERM), or an abrupt stop (kill -9), optionally
// followed by garbage appended to the newest segment's tail (a torn
// in-progress record — the only tear a fsync'd append-only log can suffer).
// A final clean boot replays the store and every job AND sweep
// ACKNOWLEDGED during the trial is adjudicated:
//
//	recovered — done, result artifact served
//	degraded  — failed with a typed kind (panic/timeout/canceled/sim)
//	LOST      — anything else: unknown to the restarted daemon, or never
//	            reaching a terminal state
//
// The bar is zero LOST across the whole campaign. The driver asserts
// >= 200 trials (ISSUE acceptance).

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ptmc/internal/exec"
	"ptmc/internal/sim"
)

const chaosTrials = 200

// chaosBehavior fixes what the fake simulator does for one scheme key, so
// a job re-run after a crash meets the same simulator it met before
// (determinism is what makes replay safe).
type chaosBehavior int

const (
	behaveOK      chaosBehavior = iota
	behaveSlowOK                // waits a few ms (or ctx) before succeeding
	behaveFailSim               // deterministic simulator error -> typed "sim"
	behaveFlaky                 // retryable failure first, then succeeds
)

// chaosSim is the per-trial fake simulator: behavior assigned per
// (workload, scheme, seed) point on first sight and sticky thereafter.
type chaosSim struct {
	mu       sync.Mutex
	rng      *rand.Rand // guarded by mu; only used to assign behaviors
	behave   map[string]chaosBehavior
	attempts map[string]int
}

func newChaosSim(seed int64) *chaosSim {
	return &chaosSim{rng: rand.New(rand.NewSource(seed)),
		behave: map[string]chaosBehavior{}, attempts: map[string]int{}}
}

func (c *chaosSim) run(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
	key := fmt.Sprintf("%s|%s|%d", cfg.Workload, cfg.Scheme, cfg.Seed)
	c.mu.Lock()
	b, ok := c.behave[key]
	if !ok {
		b = chaosBehavior(c.rng.Intn(4))
		c.behave[key] = b
	}
	c.attempts[key]++
	n := c.attempts[key]
	c.mu.Unlock()

	switch b {
	case behaveSlowOK:
		select {
		case <-time.After(time.Duration(1+n%5) * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	case behaveFailSim:
		return nil, fmt.Errorf("chaos: deterministic sim failure for %s", key)
	case behaveFlaky:
		if n%2 == 1 {
			return nil, exec.Retryable(fmt.Errorf("chaos: flake %d for %s", n, key))
		}
	}
	return fakeResult(cfg), nil
}

// chaosTrial is one full crash/recover cycle over a single store dir.
type chaosTrial struct {
	t    *testing.T
	rng  *rand.Rand
	dir  string
	sims *chaosSim
	// acked maps job id -> true for every submission the daemon
	// acknowledged (HTTP 202 or 200). These are the jobs it must never lose.
	acked map[string]bool
	// ackedSweeps holds every acknowledged sweep id: a restarted daemon
	// must finish each one and serve its aggregate artifact.
	ackedSweeps map[string]bool
}

// chaosSegBytes keeps segments tiny so every trial exercises rotation and
// live compaction, not just the append path.
const chaosSegBytes = 512

func (c *chaosTrial) boot(armCrash bool) (*Server, *httptest.Server) {
	store, err := OpenStoreSegmented(c.dir, chaosSegBytes)
	if err != nil {
		c.t.Fatalf("open store over %s: %v", c.dir, err)
	}
	if armCrash {
		// Arm a one-shot crash: after a random number of WAL touches, die
		// at a random point. The store wedges (ErrStoreDead) exactly as if
		// the process were gone. Armed before newFromStore so no worker
		// goroutine races the hook installation.
		points := []CrashPoint{CrashBeforeAppend, CrashAfterWrite,
			CrashAfterSync, CrashAfterResult, CrashDuringCompact}
		at := points[c.rng.Intn(len(points))]
		fuse := c.rng.Intn(5)
		var mu sync.Mutex
		store.crash = func(p CrashPoint) error {
			mu.Lock()
			defer mu.Unlock()
			if p != at {
				return nil
			}
			if fuse > 0 {
				fuse--
				return nil
			}
			return errors.New("chaos: injected crash")
		}
	}
	s, err := newFromStore(Config{
		Dir:      c.dir,
		Workers:  1 + c.rng.Intn(2),
		Parallel: 2,
		QueueCap: 16,
		Retries:  2,
		Backoff:  time.Millisecond,
		RunSim:   c.sims.run,
	}, store)
	if err != nil {
		c.t.Fatalf("boot over %s: %v", c.dir, err)
	}
	return s, httptest.NewServer(s.Handler())
}

// submitSome fires 1-3 random job specs, recording which were acked.
// Roughly every third call it also rides a small sweep along, drawn from
// the same workload/seed pools so chaosSim behaviors stay sticky across
// plain jobs, sweep children, and re-runs after a crash.
func (c *chaosTrial) submitSome(hs *httptest.Server) {
	workloads := []string{"lbm06", "mcf06"}
	schemeSets := [][]string{
		{sim.SchemeUncompressed},
		{sim.SchemePTMC},
		{sim.SchemeUncompressed, sim.SchemePTMC},
	}
	if c.rng.Intn(3) == 0 {
		c.submitSweep(hs, workloads)
	}
	for n := 1 + c.rng.Intn(3); n > 0; n-- {
		spec := JobSpec{
			Workload: workloads[c.rng.Intn(len(workloads))],
			Schemes:  schemeSets[c.rng.Intn(len(schemeSets))],
			Cores:    2, Warmup: 100, Measure: 200,
			Seed:   int64(1 + c.rng.Intn(6)),
			Tenant: "chaos",
		}
		body, _ := json.Marshal(spec)
		resp, err := http.Post(hs.URL+"/jobs", "application/json",
			strings.NewReader(string(body)))
		if err != nil {
			continue // daemon mid-death: not acked, no obligation
		}
		var st JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
			if st.ID == "" {
				c.t.Fatalf("ack (%d) without job id", resp.StatusCode)
			}
			c.acked[st.ID] = true
		}
	}
}

// submitSweep posts one small sweep (1 workload x 1-2 schemes x 1-2 seeds)
// and records its id if acked; the restarted daemon owes it an aggregate.
func (c *chaosTrial) submitSweep(hs *httptest.Server, workloads []string) {
	schemes := []string{sim.SchemeUncompressed}
	if c.rng.Intn(2) == 0 {
		schemes = append(schemes, sim.SchemePTMC)
	}
	seeds := []int64{int64(1 + c.rng.Intn(6))}
	if c.rng.Intn(2) == 0 && seeds[0] < 6 {
		seeds = append(seeds, seeds[0]+1)
	}
	spec := SweepSpec{
		Workloads: []string{workloads[c.rng.Intn(len(workloads))]},
		Schemes:   schemes, Seeds: seeds,
		Cores: 2, Warmup: 100, Measure: 200,
		Tenant: "chaos",
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(hs.URL+"/sweeps", "application/json",
		strings.NewReader(string(body)))
	if err != nil {
		return // daemon mid-death: not acked, no obligation
	}
	var st SweepStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if st.ID == "" {
			c.t.Fatalf("sweep ack (%d) without id", resp.StatusCode)
		}
		c.ackedSweeps[st.ID] = true
	}
}

// stop kills the daemon with trial-chosen rudeness.
func (c *chaosTrial) stop(s *Server, hs *httptest.Server) {
	hs.Close()
	switch c.rng.Intn(3) {
	case 0:
		// kill -9: no checkpoint, no store close ceremony. Stop the worker
		// goroutines (the "process" must end inside one test binary) and
		// abandon the WAL exactly as it lies.
		s.queue.SetDraining(true)
		s.cancelRuns()
		s.workers.Wait()
		s.store.Close()
	default:
		// SIGTERM drain (possibly over a dead store — Drain tolerates it).
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil && !errors.Is(err, ErrStoreDead) {
			// A drain error over a wedged store is expected chaos; a hung
			// drain is a real bug.
			if errors.Is(err, context.DeadlineExceeded) {
				c.t.Fatalf("drain hung: %v", err)
			}
		}
	}
}

// tearTail appends garbage to the newest WAL segment — a torn in-progress
// record. Synced (acked) records all precede it, so this is exactly the
// tear a real kill -9 can produce. Only the highest-index segment is a
// legal target: sealed segments are never appended to.
func (c *chaosTrial) tearTail() {
	segs, _ := filepath.Glob(filepath.Join(c.dir, "wal-*.log"))
	if len(segs) == 0 {
		return // no WAL yet: nothing to tear
	}
	sort.Strings(segs) // zero-padded indices: lexicographic == numeric
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	if c.rng.Intn(2) == 0 {
		// Random garbage bytes.
		junk := make([]byte, 1+c.rng.Intn(40))
		c.rng.Read(junk)
		f.Write(junk)
	} else {
		// A plausible frame header whose payload never finished writing.
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(100+c.rng.Intn(500)))
		binary.LittleEndian.PutUint32(hdr[4:], c.rng.Uint32())
		f.Write(hdr[:])
		partial := make([]byte, c.rng.Intn(20))
		c.rng.Read(partial)
		f.Write(partial)
	}
}

// adjudicate boots clean, waits for every acked job to settle, and
// classifies it. Returns (recovered, degraded); anything else fails the
// trial immediately as LOST.
func (c *chaosTrial) adjudicate() (recovered, degraded int) {
	s, hs := c.boot(false)
	defer func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			c.t.Fatalf("final drain: %v", err)
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for id := range c.acked {
		for {
			resp, err := http.Get(hs.URL + "/jobs/" + id)
			if err != nil {
				c.t.Fatalf("status %s: %v", id, err)
			}
			var st JobStatus
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				c.t.Fatalf("LOST: acked job %s unknown after restart (%d)", id, resp.StatusCode)
			}
			switch st.State {
			case StateDone:
				// Recovered jobs must actually serve their artifact.
				r2, err := http.Get(hs.URL + "/jobs/" + id + "/result")
				if err != nil || r2.StatusCode != http.StatusOK {
					c.t.Fatalf("LOST: done job %s has no artifact (err=%v)", id, err)
				}
				var art ResultArtifact
				if err := json.NewDecoder(r2.Body).Decode(&art); err != nil ||
					len(art.Results) == 0 {
					c.t.Fatalf("LOST: job %s artifact unreadable: %v", id, err)
				}
				r2.Body.Close()
				recovered++
			case StateFailed:
				switch st.FailKind {
				case FailKindPanic, FailKindTimeout, FailKindCanceled, FailKindSim:
					degraded++
				default:
					c.t.Fatalf("LOST: job %s failed without a typed kind (%q)", id, st.FailKind)
				}
			default:
				if time.Now().After(deadline) {
					c.t.Fatalf("LOST: job %s stuck in %q after restart", id, st.State)
				}
				time.Sleep(2 * time.Millisecond)
				continue
			}
			break
		}
	}

	// Every acked sweep must finish and serve a well-formed aggregate whose
	// points are each done-with-result or failed with a typed kind.
	for id := range c.ackedSweeps {
		for {
			resp, err := http.Get(hs.URL + "/sweeps/" + id)
			if err != nil {
				c.t.Fatalf("sweep status %s: %v", id, err)
			}
			var st SweepStatus
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				c.t.Fatalf("LOST: acked sweep %s unknown after restart (%d)", id, resp.StatusCode)
			}
			if st.State != StateDone {
				if st.State == StateFailed {
					c.t.Fatalf("LOST: sweep %s failed outright (%s: %s)", id, st.FailKind, st.Error)
				}
				if time.Now().After(deadline) {
					c.t.Fatalf("LOST: sweep %s stuck in %q after restart", id, st.State)
				}
				time.Sleep(2 * time.Millisecond)
				continue
			}
			r2, err := http.Get(hs.URL + "/sweeps/" + id + "/result")
			if err != nil || r2.StatusCode != http.StatusOK {
				c.t.Fatalf("LOST: done sweep %s has no aggregate (err=%v)", id, err)
			}
			var art SweepArtifact
			if err := json.NewDecoder(r2.Body).Decode(&art); err != nil || len(art.Points) == 0 {
				c.t.Fatalf("LOST: sweep %s aggregate unreadable: %v", id, err)
			}
			r2.Body.Close()
			for _, p := range art.Points {
				switch p.State {
				case StateDone:
					if len(p.Result) == 0 {
						c.t.Fatalf("LOST: sweep %s point %s/%s/%d done without result",
							id, p.Workload, p.Scheme, p.Seed)
					}
					recovered++
				case StateFailed:
					switch p.FailKind {
					case FailKindPanic, FailKindTimeout, FailKindCanceled, FailKindSim:
						degraded++
					default:
						c.t.Fatalf("LOST: sweep %s point %s/%s/%d failed without a typed kind (%q)",
							id, p.Workload, p.Scheme, p.Seed, p.FailKind)
					}
				default:
					c.t.Fatalf("LOST: sweep %s settled with point %s/%s/%d in %q",
						id, p.Workload, p.Scheme, p.Seed, p.State)
				}
			}
			break
		}
	}
	return recovered, degraded
}

func TestChaosCampaign(t *testing.T) {
	trials := chaosTrials
	if testing.Short() {
		trials = 25
	}
	var recovered, degraded int
	for i := 0; i < trials; i++ {
		i := i
		ok := t.Run(fmt.Sprintf("trial%03d", i), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xC4A05 + int64(i)))
			trial := &chaosTrial{
				t: t, rng: rng, dir: t.TempDir(),
				sims:        newChaosSim(int64(i)),
				acked:       map[string]bool{},
				ackedSweeps: map[string]bool{},
			}
			// 1-2 rude lifecycles before the clean boot.
			for phase := 0; phase <= rng.Intn(2); phase++ {
				s, hs := trial.boot(rng.Intn(2) == 0)
				trial.submitSome(hs)
				// Let some work start (and maybe hit the armed crash).
				time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)
				trial.submitSome(hs)
				trial.stop(s, hs)
				if rng.Intn(2) == 0 {
					trial.tearTail()
				}
			}
			r, d := trial.adjudicate()
			recovered += r
			degraded += d
		})
		if !ok {
			t.Fatalf("chaos campaign aborted at trial %d (LOST or stuck job)", i)
		}
	}
	t.Logf("chaos campaign: %d trials, %d jobs recovered, %d degraded (typed failure), 0 lost",
		trials, recovered, degraded)
	if recovered == 0 {
		t.Fatal("campaign exercised nothing: zero recovered jobs")
	}
}
