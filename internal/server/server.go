package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ptmc/internal/exec"
	"ptmc/internal/obs"
	"ptmc/internal/sim"
)

// Config configures a daemon instance. The zero value of an optional
// field selects the documented default.
type Config struct {
	Dir          string        // job-store directory (required)
	Workers      int           // concurrent jobs (default 1; each job runs its schemes via the exec pool)
	Parallel     int           // exec pool size for scheme simulations (default GOMAXPROCS)
	QueueCap     int           // max jobs waiting for a worker (default 64)
	TenantQuota  int           // max queued+running jobs per tenant (0 = unlimited)
	JobTimeout   time.Duration // default per-scheme deadline (0 = none; spec may override)
	Retries      int           // attempts per scheme for retryable failures (default 1)
	Backoff      time.Duration // base jittered backoff between retries (default 100ms)
	SegmentBytes int64         // WAL segment rotation threshold (default DefaultSegmentBytes)
	// RunSim is the simulation entry point (nil = sim.RunContext). Tests
	// substitute fakes and fault injectors; it must be set here — not
	// after New — because recovery may hand replayed jobs to workers
	// before New returns.
	RunSim func(ctx context.Context, cfg sim.Config) (*sim.Result, error)
}

// ResultArtifact is the persisted (and served) outcome of one job: the
// normalized spec plus one result per scheme, in matrix order. It is
// marshalled with canonicalJSON, so a replayed job's artifact is
// byte-identical to the original run's — simulations are deterministic.
type ResultArtifact struct {
	ID      string         `json:"id"`
	Spec    JobSpec        `json:"spec"`
	Results []SchemeResult `json:"results"`
}

// SchemeResult pairs one scheme with its measured result.
type SchemeResult struct {
	Scheme string      `json:"scheme"`
	Result *sim.Result `json:"result"`
}

// Server is the simulation service: durable intake, bounded priority
// queue, pooled execution, sweep fan-out, SSE progress, and
// failure-first shutdown.
type Server struct {
	cfg   Config
	store *Store
	queue *Queue
	pool  *exec.Pool
	// flights deduplicates identical (workload, scheme, variant) points
	// across concurrently-running jobs — the in-memory singleflight layer
	// above the on-disk result cache.
	flights *exec.Cache[*sim.Result]

	mu         sync.Mutex
	jobs       map[string]*job
	order      []string
	sweeps     map[string]*sweep
	sweepOrder []string

	baseCtx    context.Context // cancelled on drain: running sims stop at their next barrier
	cancelRuns context.CancelFunc
	workers    sync.WaitGroup
	draining   atomic.Bool

	reg *obs.Registry
	m   metrics

	// runSim is the simulation entry (sim.RunContext); tests substitute
	// it to inject transient failures, panics, and slow runs.
	runSim func(ctx context.Context, cfg sim.Config) (*sim.Result, error)
}

// metrics are the daemon's own series, all atomics so /metrics scrapes
// race-free against the serving hot path (obs.Registry's documented
// contract for concurrent scraping).
type metrics struct {
	accepted     atomic.Uint64 // jobs durably accepted
	dedup        atomic.Uint64 // submissions answered by an existing job
	rejected     atomic.Uint64 // typed 429/503 rejections
	completed    atomic.Uint64 // jobs finished ok
	failed       atomic.Uint64 // jobs finished with a typed failure
	replayed     atomic.Uint64 // jobs re-enqueued from the WAL at boot
	recovered    atomic.Uint64 // jobs completed at boot from an existing artifact (no re-run)
	retried      atomic.Uint64 // per-scheme retry attempts
	cacheHits    atomic.Uint64 // jobs served from the persistent result cache
	inflight     atomic.Uint64 // jobs a worker currently holds
	simsRun      atomic.Uint64 // actual simulator invocations (the duplicate-work proof metric)
	storeRetries atomic.Uint64 // settlements re-tried in-process after a transient store failure
	sweeps       atomic.Uint64 // sweeps durably accepted
	sweepsDone   atomic.Uint64 // sweeps aggregated and settled
}

// New opens the store, replays the WAL (re-enqueueing interrupted work),
// and starts the worker loops. The returned server is ready to serve.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, errors.New("server: Config.Dir is required")
	}
	store, err := OpenStoreSegmented(cfg.Dir, cfg.SegmentBytes)
	if err != nil {
		return nil, err
	}
	return newFromStore(cfg, store)
}

// newFromStore finishes construction over an already-open store. Split
// from New so tests can arm fault-injection hooks on the store before any
// worker goroutine can observe it.
func newFromStore(cfg Config, store *Store) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 64
	}
	if cfg.Retries < 1 {
		cfg.Retries = 1
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	pool := exec.NewPool(cfg.Parallel)
	s := &Server{
		cfg:        cfg,
		store:      store,
		queue:      NewQueue(cfg.QueueCap, cfg.TenantQuota),
		pool:       pool,
		flights:    exec.NewCache[*sim.Result](pool),
		jobs:       make(map[string]*job),
		sweeps:     make(map[string]*sweep),
		baseCtx:    ctx,
		cancelRuns: cancel,
		reg:        obs.NewRegistry(),
		runSim:     cfg.RunSim,
	}
	if s.runSim == nil {
		s.runSim = sim.RunContext
	}
	// Workers block in Queue.Dequeue on a condvar; make cancellation wake
	// them so drain never waits on an idle worker.
	context.AfterFunc(ctx, s.queue.Wake)
	s.registerMetrics()

	// Recovery: every stored job becomes an in-memory record; interrupted
	// ones re-enter the queue (their persisted spec keeps their priority
	// class). A pending job whose result artifact already landed (crash
	// between SaveResult and the done record) completes without re-running
	// — the artifact is whole by construction.
	for _, sj := range store.Jobs() {
		j := newJob(sj.ID, sj.Spec)
		s.jobs[sj.ID] = j
		s.order = append(s.order, sj.ID)
		switch sj.State {
		case StateDone:
			j.state = StateDone
			close(j.done)
		case StateFailed:
			j.state = StateFailed
			j.failKind, j.errMsg = sj.FailKind, sj.Error
			close(j.done)
		case StateAccepted:
			j.replayed = true
			if store.HasResult(sj.ID) {
				if err := store.CompleteOK(sj.ID); err == nil {
					j.state = StateDone
					close(j.done)
					j.emit("done", "recovered: artifact found on replay")
					s.m.recovered.Add(1)
					continue
				}
			}
			j.emit("replayed", "re-enqueued after restart")
			s.m.replayed.Add(1)
			s.queue.EnqueueReplayed(j)
		}
	}
	// Sweep recovery (after jobs: children are ordinary jobs and most were
	// just handled above). An unfinished sweep gets its coordinator back;
	// any child missing from the store (torn fan-out batch) is re-accepted
	// — the fan-out is a deterministic function of the sweep spec.
	for _, ss := range store.Sweeps() {
		ids, specs := ss.Spec.children()
		sw := newSweep(ss.ID, ss.Spec, ids)
		s.sweeps[ss.ID] = sw
		s.sweepOrder = append(s.sweepOrder, ss.ID)
		switch ss.State {
		case StateDone:
			sw.state = StateDone
			close(sw.done)
		case StateFailed:
			sw.state, sw.failKind, sw.errMsg = StateFailed, ss.FailKind, ss.Error
			close(sw.done)
		case StateAccepted:
			if store.HasResult(ss.ID) {
				if err := store.CompleteOK(ss.ID); err == nil {
					sw.state = StateDone
					close(sw.done)
					s.m.recovered.Add(1)
					continue
				}
			}
			for i, cid := range ids {
				if _, ok := s.jobs[cid]; ok {
					continue
				}
				if err := store.Accept(cid, specs[i]); err != nil {
					continue // store wedged; the sweep settles on a later boot
				}
				cj := newJob(cid, specs[i])
				cj.replayed = true
				s.jobs[cid] = cj
				s.order = append(s.order, cid)
				cj.emit("replayed", "sweep child re-accepted after restart")
				s.m.replayed.Add(1)
				s.queue.EnqueueReplayed(cj)
			}
			s.workers.Add(1)
			go s.sweepCoordinator(sw)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

func (s *Server) registerMetrics() {
	c := func(name string, read func() uint64) { s.reg.Counter(name, nil, read) }
	g := func(name string, read func() uint64) { s.reg.Gauge(name, nil, read) }
	c("ptmcd.jobs_accepted", s.m.accepted.Load)
	c("ptmcd.jobs_deduplicated", s.m.dedup.Load)
	c("ptmcd.jobs_rejected", s.m.rejected.Load)
	c("ptmcd.jobs_completed", s.m.completed.Load)
	c("ptmcd.jobs_failed", s.m.failed.Load)
	c("ptmcd.jobs_replayed", s.m.replayed.Load)
	c("ptmcd.jobs_recovered", s.m.recovered.Load)
	c("ptmcd.scheme_retries", s.m.retried.Load)
	c("ptmcd.result_cache_hits", s.m.cacheHits.Load)
	c("ptmcd.sims_run", s.m.simsRun.Load)
	c("ptmcd.store_retries", s.m.storeRetries.Load)
	c("ptmcd.sweeps_accepted", s.m.sweeps.Load)
	c("ptmcd.sweeps_completed", s.m.sweepsDone.Load)
	g("ptmcd.jobs_inflight", s.m.inflight.Load)
	g("ptmcd.queue_depth", func() uint64 { return uint64(s.queue.Depth()) })
	g("ptmcd.draining", func() uint64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	c("ptmcd.wal_replayed_records", func() uint64 { return uint64(s.store.Replayed) })
	c("ptmcd.wal_truncated_bytes", func() uint64 { return uint64(s.store.Truncated) })
	g("ptmcd.wal_segments", func() uint64 { return uint64(s.store.Segments()) })
	c("ptmcd.wal_compacted_segments", func() uint64 { return uint64(s.store.CompactedSegments()) })
}

// worker pulls jobs in priority order until drain.
func (s *Server) worker() {
	defer s.workers.Done()
	stop := func() bool { return s.baseCtx.Err() != nil }
	for {
		j, ok := s.queue.Dequeue(stop)
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job's scheme matrix and settles its durable state.
func (s *Server) runJob(j *job) {
	s.m.inflight.Add(1)
	defer s.m.inflight.Add(^uint64(0))

	// Served from the persistent result cache: repeated sweeps across
	// restarts are free. (The original run's trace artifact, if any, is
	// already on disk too.)
	if s.store.HasResult(j.id) {
		s.m.cacheHits.Add(1)
		if err := s.store.CompleteOK(j.id); err != nil {
			s.leaveForReplay(j, err)
			return
		}
		s.m.completed.Add(1)
		s.queue.Release(j.spec.Tenant)
		j.finish(StateDone, "", "")
		return
	}

	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
	j.emit("started", "")

	timeout := s.cfg.JobTimeout
	if j.spec.TimeoutSec > 0 {
		timeout = time.Duration(j.spec.TimeoutSec) * time.Second
	}
	// Per-job tracer: one KindJob span per scheme (wall µs, tid = matrix
	// index), plus the simulator's own cycle-stamped events when the spec
	// asked for them. Persisted best-effort after settlement.
	start := time.Now()
	tracer := obs.NewTracer(1 << 16)
	var simEvents []obs.Event
	art := ResultArtifact{ID: j.id, Spec: j.spec}
	for i, scheme := range j.spec.Schemes {
		scheme := scheme
		tries := 0
		t0 := time.Now()
		res, _, err := s.flights.DoJob(s.baseCtx, j.spec.SchemeKey(scheme),
			exec.JobOptions{Timeout: timeout, Attempts: s.cfg.Retries, Backoff: s.cfg.Backoff},
			func(ctx context.Context) (*sim.Result, error) {
				if tries++; tries > 1 {
					s.m.retried.Add(1)
					j.emit("retry", fmt.Sprintf("%s attempt %d", scheme, tries))
				}
				s.m.simsRun.Add(1)
				return s.runSim(ctx, j.spec.Config(scheme))
			})
		if err != nil {
			s.settleFailure(j, scheme, err)
			return
		}
		tracer.Emit(obs.KindJob, t0.Sub(start).Microseconds(),
			time.Since(t0).Microseconds()+1, i, 0, int64(tries))
		if j.spec.Trace && res != nil {
			simEvents = append(simEvents, res.TraceEvents...)
		}
		art.Results = append(art.Results, SchemeResult{Scheme: scheme, Result: res})
		j.mu.Lock()
		j.schemesDone++
		n := j.schemesDone
		j.mu.Unlock()
		j.emit("scheme", fmt.Sprintf("%s done (%d/%d)", scheme, n, len(j.spec.Schemes)))
	}

	// Durability order: artifact first, then the done record. A crash
	// between the two replays as "pending with artifact" and completes
	// without re-running.
	if err := s.store.SaveResult(j.id, canonicalJSON(art)); err != nil {
		s.leaveForReplay(j, err)
		return
	}
	if err := s.store.CompleteOK(j.id); err != nil {
		s.leaveForReplay(j, err)
		return
	}
	s.saveTrace(j.id, append(tracer.Events(), simEvents...))
	s.m.completed.Add(1)
	s.queue.Release(j.spec.Tenant)
	j.finish(StateDone, "", "")
}

// saveTrace persists the job's Chrome-trace artifact. Best effort: traces
// are observability, not part of the durability contract.
func (s *Server) saveTrace(id string, events []obs.Event) {
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, events); err != nil {
		return
	}
	_ = s.store.SaveTrace(id, buf.Bytes())
}

// settleFailure classifies a scheme failure and persists the typed
// outcome — except drain cancellation, which is not a job failure: the
// job stays accepted in the WAL and the next boot replays it.
func (s *Server) settleFailure(j *job, scheme string, err error) {
	if s.baseCtx.Err() != nil {
		// Drain (or shutdown) cancelled the run at its next epoch barrier.
		j.emit("canceled", fmt.Sprintf("%s interrupted by drain; job will replay", scheme))
		return
	}
	kind := FailKindSim
	var pe *exec.PanicError
	switch {
	case errors.As(err, &pe):
		kind = FailKindPanic
	case errors.Is(err, context.DeadlineExceeded):
		kind = FailKindTimeout
	case errors.Is(err, context.Canceled):
		kind = FailKindCanceled
	}
	msg := fmt.Sprintf("%s: %v", scheme, err)
	if werr := s.store.CompleteFailed(j.id, kind, msg); werr != nil {
		s.leaveForReplay(j, werr)
		return
	}
	s.m.failed.Add(1)
	s.queue.Release(j.spec.Tenant)
	j.finish(StateFailed, kind, msg)
}

// leaveForReplay handles a store write failing mid-settlement. Two cases:
//
// Dead store or drain: the injected-crash/shutdown path. The job keeps
// its durable accepted state and the NEXT BOOT replays it — nothing is
// acknowledged that is not on disk.
//
// Transient failure (live store, live server): the job must not become a
// zombie. It moves back to accepted (the state machine's running →
// accepted retry edge), the tenant's quota unit is released so the
// tenant is not throttled by a job nobody is running, and a backoff
// goroutine re-enqueues it for in-process retry — EnqueueReplayed
// re-claims the quota unit, so accounting stays balanced. If drain wins
// the race the job is simply left accepted for the next boot.
func (s *Server) leaveForReplay(j *job, err error) {
	if s.baseCtx.Err() != nil || errors.Is(err, ErrStoreDead) {
		j.emit("canceled", fmt.Sprintf("store unavailable (%v); job will replay", err))
		return
	}
	j.mu.Lock()
	j.state = StateAccepted
	j.schemesDone = 0
	j.requeues++
	n := j.requeues
	j.mu.Unlock()
	s.queue.Release(j.spec.Tenant)
	s.m.storeRetries.Add(1)
	j.emit("requeued", fmt.Sprintf("store write failed (%v); retrying in-process", err))
	backoff := s.cfg.Backoff
	for i := 1; i < n && backoff < 5*time.Second; i++ {
		backoff *= 2
	}
	if backoff > 5*time.Second {
		backoff = 5 * time.Second
	}
	s.workers.Add(1)
	go func() {
		defer s.workers.Done()
		select {
		case <-time.After(backoff):
			s.queue.EnqueueReplayed(j)
		case <-s.baseCtx.Done():
			// Drain: the job stays accepted in the WAL; next boot replays it.
		}
	}()
}

// sweepCoordinator waits for every child to settle, then aggregates the
// child artifacts (read back from disk, so a resumed sweep aggregates
// byte-identically) into the sweep artifact and settles the sweep. Child
// failures become per-point failures in the artifact; the sweep itself
// still settles done — degraded, never silent. A transient store failure
// retries with backoff; drain leaves the sweep accepted for the next
// boot.
func (s *Server) sweepCoordinator(sw *sweep) {
	defer s.workers.Done()
	for _, cid := range sw.children {
		j := s.lookup(cid)
		if j == nil {
			continue // recorded as a failed point at aggregation
		}
		select {
		case <-j.done:
		case <-s.baseCtx.Done():
			return // drain: sweep stays accepted; the next boot resumes it
		}
	}
	data := canonicalJSON(s.buildSweepArtifact(sw))
	backoff := s.cfg.Backoff
	for {
		if s.baseCtx.Err() != nil {
			return
		}
		err := s.store.SaveResult(sw.id, data)
		if err == nil {
			err = s.store.CompleteOK(sw.id)
		}
		if err == nil {
			break
		}
		if errors.Is(err, ErrStoreDead) {
			return
		}
		s.m.storeRetries.Add(1)
		select {
		case <-time.After(backoff):
		case <-s.baseCtx.Done():
			return
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
	s.m.sweepsDone.Add(1)
	sw.finish(StateDone, "", "")
}

// buildSweepArtifact assembles the aggregate in deterministic matrix
// order from the children's terminal states and on-disk artifacts.
func (s *Server) buildSweepArtifact(sw *sweep) SweepArtifact {
	art := SweepArtifact{ID: sw.id, Spec: sw.spec}
	idx := 0
	for _, w := range sw.spec.Workloads {
		for _, sc := range sw.spec.Schemes {
			for _, sd := range sw.spec.Seeds {
				cid := sw.children[idx]
				idx++
				p := SweepPoint{Workload: w, Scheme: sc, Seed: sd, JobID: cid}
				j := s.lookup(cid)
				if j == nil {
					p.State, p.FailKind, p.Error = StateFailed, "internal", "child job missing"
				} else {
					st := j.status()
					p.State, p.FailKind, p.Error = st.State, st.FailKind, st.Error
					if st.State == StateDone {
						if data, err := s.store.Result(cid); err == nil {
							p.Result = json.RawMessage(data)
						} else {
							p.State, p.FailKind, p.Error = StateFailed, "artifact", err.Error()
						}
					}
				}
				art.Points = append(art.Points, p)
			}
		}
	}
	return art
}

// Drain is the graceful-shutdown path: stop accepting (readyz and POST
// /jobs flip to 503), cancel in-flight runs — sim.RunContext returns at
// its next epoch barrier / cycle checkpoint — wait for the workers (and
// sweep coordinators and requeue timers), checkpoint the queue, and close
// the store. Interrupted jobs stay accepted in the WAL; the next boot
// replays them. Returns nil on a clean drain; ctx bounds how long to wait
// for workers.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.SetDraining(true)
	s.cancelRuns()
	done := make(chan struct{})
	go func() { s.workers.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("server: drain: workers still running: %w", ctx.Err())
	}
	if err := s.store.Checkpoint(); err != nil && !errors.Is(err, ErrStoreDead) {
		return err
	}
	return s.store.Close()
}

// Store exposes the job store (tests, recovery assertions).
func (s *Server) Store() *Store { return s.store }

// Registry exposes the daemon's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) lookupSweep(id string) *sweep {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweeps[id]
}

// sweepStatus snapshots a sweep including its children's progress.
func (s *Server) sweepStatus(sw *sweep) SweepStatus {
	s.mu.Lock()
	pointsDone := 0
	for _, cid := range sw.children {
		if j := s.jobs[cid]; j != nil {
			if st := j.status(); st.State == StateDone || st.State == StateFailed {
				pointsDone++
			}
		}
	}
	s.mu.Unlock()
	return sw.status(pointsDone)
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /sweeps", s.handleSweepList)
	mux.HandleFunc("GET /sweeps/{id}", s.handleSweepStatus)
	mux.HandleFunc("GET /sweeps/{id}/result", s.handleSweepResult)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(canonicalJSON(v))
	w.Write([]byte("\n"))
}

func (s *Server) reject(w http.ResponseWriter, err error) {
	var ae *APIError
	if !errors.As(err, &ae) {
		ae = &APIError{Code: 500, Reason: "internal", Msg: err.Error()}
	}
	if ae.Code == 429 || ae.Code == 503 {
		s.m.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, ae.Code, ae)
}

// handleSubmit is the accept path. Order matters: validate (free), check
// admission (no side effects), durably accept (fsync — this IS the ack),
// then enqueue. A crash after the WAL append and before the response
// costs the client a retry of an idempotent submit, never a lost job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		s.reject(w, badRequest("invalid JSON: "+err.Error()))
		return
	}
	if err := spec.Normalize(); err != nil {
		s.reject(w, err)
		return
	}
	id := spec.Key()

	// Idempotent resubmission: same spec, same job.
	if j := s.lookup(id); j != nil {
		s.m.dedup.Add(1)
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	if s.draining.Load() {
		s.reject(w, &APIError{Code: 503, Reason: "draining",
			Msg: "server is draining; resubmit after restart"})
		return
	}
	if err := s.queue.Reserve(spec.Tenant); err != nil {
		s.reject(w, err)
		return
	}
	if err := s.store.Accept(id, spec); err != nil {
		s.queue.Abort(spec.Tenant)
		s.reject(w, &APIError{Code: 503, Reason: "store",
			Msg: "durable accept failed: " + err.Error()})
		return
	}
	j := newJob(id, spec)
	s.mu.Lock()
	if prior, ok := s.jobs[id]; ok {
		// Two concurrent submits of the same spec raced past lookup; the
		// store accepted idempotently. Share the first job.
		s.mu.Unlock()
		s.queue.Abort(spec.Tenant)
		s.m.dedup.Add(1)
		writeJSON(w, http.StatusOK, prior.status())
		return
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.m.accepted.Add(1)
	j.emit("accepted", "")
	s.queue.Commit(j)
	j.emit("queued", "")
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleSweepSubmit accepts a sweep: one durable batched WAL append
// covers the sweep record and every child job the matrix fans out to
// (existing child keys dedupe — that is the whole resume story), then the
// children enter the queue at sweep-child priority and a coordinator
// goroutine waits to aggregate. Children bypass the admission cap — the
// sweep record is their durable admission — but still count toward the
// tenant's quota so interactive submissions see the true load.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		s.reject(w, badRequest("invalid JSON: "+err.Error()))
		return
	}
	if err := spec.Normalize(); err != nil {
		s.reject(w, err)
		return
	}
	id := spec.Key()
	if sw := s.lookupSweep(id); sw != nil {
		s.m.dedup.Add(1)
		writeJSON(w, http.StatusOK, s.sweepStatus(sw))
		return
	}
	if s.draining.Load() {
		s.reject(w, &APIError{Code: 503, Reason: "draining",
			Msg: "server is draining; resubmit after restart"})
		return
	}
	ids, specs := spec.children()
	if err := s.store.AcceptSweep(id, spec, ids, specs); err != nil {
		s.reject(w, &APIError{Code: 503, Reason: "store",
			Msg: "durable accept failed: " + err.Error()})
		return
	}
	sw := newSweep(id, spec, ids)
	s.mu.Lock()
	if prior, ok := s.sweeps[id]; ok {
		s.mu.Unlock()
		s.m.dedup.Add(1)
		writeJSON(w, http.StatusOK, s.sweepStatus(prior))
		return
	}
	s.sweeps[id] = sw
	s.sweepOrder = append(s.sweepOrder, id)
	var fresh []*job
	for i, cid := range ids {
		if _, ok := s.jobs[cid]; ok {
			continue // point already known (prior job or overlapping sweep)
		}
		cj := newJob(cid, specs[i])
		s.jobs[cid] = cj
		s.order = append(s.order, cid)
		fresh = append(fresh, cj)
	}
	s.mu.Unlock()
	for _, cj := range fresh {
		cj.emit("accepted", "sweep "+id)
		s.queue.EnqueueReplayed(cj)
		cj.emit("queued", "")
	}
	s.m.sweeps.Add(1)
	s.workers.Add(1)
	go s.sweepCoordinator(sw)
	writeJSON(w, http.StatusAccepted, s.sweepStatus(sw))
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sws := make([]*sweep, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		sws = append(sws, s.sweeps[id])
	}
	s.mu.Unlock()
	out := make([]SweepStatus, 0, len(sws))
	for _, sw := range sws {
		out = append(out, s.sweepStatus(sw))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	sw := s.lookupSweep(r.PathValue("id"))
	if sw == nil {
		writeJSON(w, http.StatusNotFound, &APIError{Reason: "unknown_sweep", Msg: "no such sweep"})
		return
	}
	writeJSON(w, http.StatusOK, s.sweepStatus(sw))
}

func (s *Server) handleSweepResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sw := s.lookupSweep(id)
	if sw == nil {
		writeJSON(w, http.StatusNotFound, &APIError{Reason: "unknown_sweep", Msg: "no such sweep"})
		return
	}
	st := s.sweepStatus(sw)
	switch st.State {
	case StateFailed:
		writeJSON(w, http.StatusConflict, &APIError{Reason: "sweep_failed",
			Msg: st.FailKind + ": " + st.Error})
	case StateDone:
		data, err := s.store.Result(id)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError,
				&APIError{Reason: "artifact", Msg: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	default:
		writeJSON(w, http.StatusNotFound, &APIError{Reason: "not_finished",
			Msg: fmt.Sprintf("sweep is %s (%d/%d points)", st.State, st.PointsDone, st.Points)})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, &APIError{Reason: "unknown_job", Msg: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookup(id)
	if j == nil {
		writeJSON(w, http.StatusNotFound, &APIError{Reason: "unknown_job", Msg: "no such job"})
		return
	}
	st := j.status()
	switch st.State {
	case StateFailed:
		writeJSON(w, http.StatusConflict, &APIError{Reason: "job_failed",
			Msg: st.FailKind + ": " + st.Error})
		return
	case StateDone:
		data, err := s.store.Result(id)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError,
				&APIError{Reason: "artifact", Msg: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		return
	default:
		writeJSON(w, http.StatusNotFound, &APIError{Reason: "not_finished",
			Msg: "job is " + st.State})
	}
}

// handleTrace serves the job's Chrome-trace artifact (open in
// chrome://tracing or Perfetto). A job served from the persistent result
// cache in a later life keeps the trace its original run saved; a job
// that never ran in this store (or whose trace write failed) has none.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j := s.lookup(id); j == nil {
		writeJSON(w, http.StatusNotFound, &APIError{Reason: "unknown_job", Msg: "no such job"})
		return
	}
	data, err := s.store.Trace(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, &APIError{Reason: "no_trace",
			Msg: "no trace artifact for this job (not finished, or trace write was skipped)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable,
			&APIError{Reason: "draining", Msg: "draining"})
		return
	}
	io.WriteString(w, "ready\n")
}

// handleMetrics serves the daemon registry (atomic-backed, so scrapes are
// race-free against the serving path) plus the exec pool's histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.reg.WriteText(w); err != nil {
		return
	}
	fmt.Fprintf(w, "# pool queue-wait %s\n", s.pool.QueueWait())
	fmt.Fprintf(w, "# pool run-time %s\n", s.pool.RunTime())
}

// handleEvents streams a job's progress as Server-Sent Events. The
// backlog is replayed from Last-Event-ID (or from the start), so a client
// that disconnects — or connects long after the job finished — sees every
// event exactly once. The stream closes itself once the job is terminal
// and fully delivered; the job is unaffected by client lifetime.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, &APIError{Reason: "unknown_job", Msg: "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented,
			&APIError{Reason: "no_flush", Msg: "streaming unsupported"})
		return
	}
	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			after = n
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch := make(chan Event, 16)
	backlog := j.subscribe(after, ch)
	defer j.unsubscribe(ch)
	last := after
	send := func(ev Event) bool {
		if ev.Seq <= last {
			return true
		}
		last = ev.Seq
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n",
			ev.Seq, ev.Kind, canonicalJSON(ev)); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, ev := range backlog {
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			// Gap heal: emit skips slow subscribers, so a missed event shows
			// up as a sequence jump. The backlog is the source of truth —
			// refill from it (it already contains ev: events are appended to
			// the backlog before the channel notify, under the same lock).
			if ev.Seq > last+1 {
				for _, b := range j.backlogAfter(last) {
					if !send(b) {
						return
					}
				}
				continue
			}
			if !send(ev) {
				return
			}
		case <-j.done:
			// Terminal: deliver whatever the live channel missed (slow
			// subscriber skips land in the backlog) and finish.
			for _, ev := range j.backlogAfter(last) {
				if !send(ev) {
					return
				}
			}
			return
		}
	}
}
