package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ptmc/internal/sim"
)

// TestLoadKillRestart is the end-to-end load proof from the issue: ~2000
// concurrent jobs across all three priority classes (interactive, batch,
// and a sweep's children), a mid-flight SIGKILL-equivalent, a restart —
// and then every acknowledged job must settle done with zero duplicate
// simulations and bounded memory.
func TestLoadKillRestart(t *testing.T) {
	jobs := 2000
	if testing.Short() {
		jobs = 300
	}
	workloads := []string{"lbm06", "mcf06", "libquantum06", "milc06"}
	schemes := []string{"uncompressed", "ptmc", "dynamic-ptmc"}

	var baseline runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&baseline)

	// Life 1: every sim costs a little wall time so the kill lands with
	// plenty of work still queued and some in flight.
	slowStub := func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		time.Sleep(200 * time.Microsecond)
		return fakeResult(c), nil
	}
	dir := t.TempDir()
	s1, err := New(Config{Dir: dir, Workers: 8, Parallel: 8,
		QueueCap: jobs + 64, RunSim: slowStub})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptestServerNoCleanup(s1)

	// Submit from many goroutines, alternating priority classes and
	// tenants; every 202/200 id goes into the acked ledger the restart is
	// judged against.
	var mu sync.Mutex
	acked := map[string]bool{}
	var wg sync.WaitGroup
	const submitters = 8
	perG := jobs / submitters
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n := g*perG + i
				prio := PriorityBatch
				if n%2 == 0 {
					prio = PriorityInteractive
				}
				spec := fmt.Sprintf(`{"workload":%q,"schemes":[%q],"cores":2,"warmup_instr":100,"measure_instr":200,"seed":%d,"tenant":"t%d","priority":%q}`,
					workloads[n%len(workloads)], schemes[n%len(schemes)], n+1, n%4, prio)
				resp, err := http.Post(hs1.URL+"/jobs", "application/json", strings.NewReader(spec))
				if err != nil {
					t.Error(err)
					return
				}
				var st JobStatus
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
					t.Errorf("submit %d = %d", n, resp.StatusCode)
					return
				}
				mu.Lock()
				acked[st.ID] = true
				mu.Unlock()
			}
		}(g)
	}
	// The third class: one 20-point sweep riding along at sweep-child
	// priority (distinct seed range so no accidental key overlap).
	sweepBody := `{"workloads":["lbm06"],"schemes":["ptmc","uncompressed"],"seeds":[9001,9002,9003,9004,9005,9006,9007,9008,9009,9010],"cores":2,"warmup_instr":100,"measure_instr":200}`
	code, swSt := submitSweep(t, hs1, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit = %d", code)
	}
	wg.Wait()

	// Kill once a healthy slice of the work has settled but plenty is
	// still queued or running.
	deadline := time.Now().Add(30 * time.Second)
	for s1.m.completed.Load() < uint64(jobs/4) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d jobs settled before kill", s1.m.completed.Load())
		}
		time.Sleep(time.Millisecond)
	}
	kill9(s1, hs1)

	preDone := map[string]bool{}
	files, err := filepath.Glob(filepath.Join(dir, "results", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".json")
		if !strings.HasSuffix(name, ".trace") && name != swSt.ID {
			preDone[name] = true
		}
	}
	t.Logf("killed with %d/%d artifacts settled", len(preDone), jobs+20)

	// Life 2: instant sims, invocation ledger for the duplicate-work check.
	var imu sync.Mutex
	var invoked []sim.Config
	s2, err := New(Config{Dir: dir, Workers: 8, Parallel: 8,
		QueueCap: jobs + 64,
		RunSim: func(ctx context.Context, c sim.Config) (*sim.Result, error) {
			imu.Lock()
			invoked = append(invoked, c)
			imu.Unlock()
			return fakeResult(c), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptestServerNoCleanup(s2)
	defer kill9(s2, hs2)

	// Zero lost: every acknowledged job settles done (one list call per
	// poll, not 2000 status calls).
	deadline = time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(hs2.URL + "/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var all []JobStatus
		json.NewDecoder(resp.Body).Decode(&all)
		resp.Body.Close()
		states := map[string]string{}
		for _, st := range all {
			states[st.ID] = st.State
		}
		pending := 0
		for id := range acked {
			switch states[id] {
			case StateDone:
			case StateFailed:
				t.Fatalf("job %s failed after restart", id)
			case "":
				t.Fatalf("acked job %s LOST across restart", id)
			default:
				pending++
			}
		}
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d acked jobs still unsettled after restart", pending)
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitSweep(t, hs2, swSt.ID)

	// Zero duplicate simulations: nothing with a pre-restart artifact ran
	// again.
	imu.Lock()
	for _, c := range invoked {
		key := (&JobSpec{
			Workload: c.Workload, Schemes: []string{c.Scheme},
			Cores: c.Cores, Warmup: c.WarmupInstr, Measure: c.MeasureInstr,
			Seed: c.Seed, Shards: c.Shards, Tenant: "default", Trace: c.Trace,
		}).Key()
		if preDone[key] {
			t.Errorf("point %s/%s/%d re-simulated despite a surviving artifact",
				c.Workload, c.Scheme, c.Seed)
		}
	}
	reran := len(invoked)
	imu.Unlock()
	if total := len(preDone) + reran; total < jobs {
		t.Errorf("life1 artifacts (%d) + life2 sims (%d) < %d jobs: something double-counted or lost", len(preDone), reran, jobs)
	}

	// Bounded memory: the whole campaign (two servers, ~2k jobs, 2k
	// artifacts) must not balloon the heap.
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if grew := int64(after.HeapAlloc) - int64(baseline.HeapAlloc); grew > 512<<20 {
		t.Fatalf("heap grew %d MiB across the load campaign", grew>>20)
	}
}

// httptestServerNoCleanup wraps a server whose shutdown the test drives
// explicitly (kill9) rather than via t.Cleanup.
func httptestServerNoCleanup(s *Server) *httptest.Server {
	return httptest.NewServer(s.Handler())
}
