package server

import (
	"fmt"
	"sync"
)

// Queue is the bounded admission queue between the HTTP layer and the
// worker loops. Admission is two-phase so the durable accept sits between
// them: Reserve checks backpressure and per-tenant quota (typed 429/503
// rejections, no side effects on disk), the caller then writes the WAL
// accept record, and Commit hands the job to a worker. A failed WAL write
// releases the reservation with Abort. The channel is the queue; its
// capacity is fixed at construction, and Reserve's count check under the
// mutex guarantees Commit never blocks.
type Queue struct {
	mu        sync.Mutex
	capacity  int
	perTenant int            // 0 = unlimited
	counts    map[string]int // reserved+queued+running jobs per tenant
	queued    int            // reservations not yet released by a worker pickup
	draining  bool
	ch        chan *job
}

// NewQueue builds a queue holding at most capacity jobs with at most
// perTenant jobs (queued or running) per tenant; extra is additional
// channel headroom for WAL-replayed jobs, which bypass admission — they
// were durably accepted before the restart and must not be rejectable.
func NewQueue(capacity, perTenant, extra int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{
		capacity:  capacity,
		perTenant: perTenant,
		counts:    make(map[string]int),
		ch:        make(chan *job, capacity+extra),
	}
}

// Reserve claims a queue slot and a tenant quota unit, or returns a typed
// *APIError: 503 draining, 503 queue_full, 429 quota.
func (q *Queue) Reserve(tenant string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return &APIError{Code: 503, Reason: "draining",
			Msg: "server is draining; resubmit after restart"}
	}
	if q.queued >= q.capacity {
		return &APIError{Code: 503, Reason: "queue_full",
			Msg: fmt.Sprintf("queue at capacity (%d); retry later", q.capacity)}
	}
	if q.perTenant > 0 && q.counts[tenant] >= q.perTenant {
		return &APIError{Code: 429, Reason: "quota",
			Msg: fmt.Sprintf("tenant %q at quota (%d in flight)", tenant, q.perTenant)}
	}
	q.queued++
	q.counts[tenant]++
	return nil
}

// Commit enqueues a reserved job. The reservation guarantees space.
func (q *Queue) Commit(j *job) { q.ch <- j }

// Abort releases a reservation whose durable accept failed.
func (q *Queue) Abort(tenant string) {
	q.mu.Lock()
	q.queued--
	q.decTenant(tenant)
	q.mu.Unlock()
}

// EnqueueReplayed admits a WAL-replayed job outside the admission caps
// (it was already acknowledged in a previous life; rejection is not an
// option). Quota accounting still tracks it so new submissions see the
// true tenant load.
func (q *Queue) EnqueueReplayed(j *job) {
	q.mu.Lock()
	q.queued++
	q.counts[j.spec.Tenant]++
	q.mu.Unlock()
	q.ch <- j
}

// Dequeued marks a job picked up by a worker: its queue slot frees for
// new admissions (the tenant quota unit stays held until Release).
func (q *Queue) Dequeued() {
	q.mu.Lock()
	q.queued--
	q.mu.Unlock()
}

// Release returns the tenant's quota unit when a job reaches a terminal
// state (or is abandoned at drain).
func (q *Queue) Release(tenant string) {
	q.mu.Lock()
	q.decTenant(tenant)
	q.mu.Unlock()
}

func (q *Queue) decTenant(tenant string) {
	if q.counts[tenant]--; q.counts[tenant] <= 0 {
		delete(q.counts, tenant)
	}
}

// Chan is the worker intake.
func (q *Queue) Chan() <-chan *job { return q.ch }

// Depth reports jobs queued and not yet picked up.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// SetDraining flips rejection of new work on (drain) — queued jobs stay
// queued; the WAL keeps them for the next boot.
func (q *Queue) SetDraining(v bool) {
	q.mu.Lock()
	q.draining = v
	q.mu.Unlock()
}

// Tenants snapshots current per-tenant load (observability endpoint).
func (q *Queue) Tenants() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.counts))
	for k, v := range q.counts {
		out[k] = v
	}
	return out
}
