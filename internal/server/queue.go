package server

import (
	"fmt"
	"sync"
)

// Scheduling classes, highest priority first. The queue serves classes
// strictly in this order (FIFO within a class) except for the aging rule
// below, which keeps the lowest class starvation-free under a steady
// interactive load.
const (
	classInteractive = iota
	classBatch
	classSweepChild
	numClasses
)

// Priority names accepted in JobSpec.Priority.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
	PrioritySweepChild  = "sweep-child"
)

// classOf maps a normalized priority name to its class. Unknown names map
// to batch — Normalize rejects them before they can reach the queue, so
// this is belt-and-braces for replayed pre-priority WAL specs ("").
func classOf(priority string) int {
	switch priority {
	case PriorityInteractive:
		return classInteractive
	case PrioritySweepChild:
		return classSweepChild
	default:
		return classBatch
	}
}

// agingEvery is the anti-starvation cadence: every agingEvery-th dequeue
// serves the globally oldest waiting job regardless of class. Any job is
// eventually the global oldest, so no class can be starved by a steady
// stream of higher-priority arrivals; between aging ticks strict priority
// order applies.
const agingEvery = 4

// queueItem is one waiting job plus its global arrival sequence (the
// aging key and the within-class FIFO order).
type queueItem struct {
	j   *job
	seq uint64
}

// Queue is the bounded admission queue between the HTTP layer and the
// worker loops: a three-class priority queue (interactive > batch >
// sweep-child, FIFO within a class, aging every agingEvery dequeues)
// behind the same two-phase admission protocol as before. Reserve checks
// backpressure and per-tenant quota (typed 429/503 rejections, no side
// effects on disk), the caller then writes the WAL accept record, and
// Commit hands the job to a worker; a failed WAL write releases the
// reservation with Abort. Commit is a slice append under the mutex and
// never blocks — Reserve's count check is what bounds the queue, and
// EnqueueReplayed (durably-accepted work that must not be rejectable)
// simply bypasses that check.
type Queue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	capacity  int
	perTenant int            // 0 = unlimited
	counts    map[string]int // reserved+queued+running jobs per tenant
	queued    int            // reservations not yet handed to a worker
	draining  bool
	ready     [numClasses][]queueItem
	seq       uint64 // next arrival sequence
	dequeues  uint64 // served so far (drives the aging cadence)
}

// NewQueue builds a queue holding at most capacity admission-controlled
// jobs with at most perTenant jobs (queued or running) per tenant.
// WAL-replayed jobs and sweep children enter via EnqueueReplayed and are
// not counted against capacity.
func NewQueue(capacity, perTenant int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{
		capacity:  capacity,
		perTenant: perTenant,
		counts:    make(map[string]int),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Reserve claims a queue slot and a tenant quota unit, or returns a typed
// *APIError: 503 draining, 503 queue_full, 429 quota.
func (q *Queue) Reserve(tenant string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return &APIError{Code: 503, Reason: "draining",
			Msg: "server is draining; resubmit after restart"}
	}
	if q.queued >= q.capacity {
		return &APIError{Code: 503, Reason: "queue_full",
			Msg: fmt.Sprintf("queue at capacity (%d); retry later", q.capacity)}
	}
	if q.perTenant > 0 && q.counts[tenant] >= q.perTenant {
		return &APIError{Code: 429, Reason: "quota",
			Msg: fmt.Sprintf("tenant %q at quota (%d in flight)", tenant, q.perTenant)}
	}
	q.queued++
	q.counts[tenant]++
	return nil
}

// Commit enqueues a reserved job in its spec's class. Never blocks.
func (q *Queue) Commit(j *job) {
	q.mu.Lock()
	q.pushLocked(j)
	q.mu.Unlock()
	q.cond.Signal()
}

// Abort releases a reservation whose durable accept failed.
func (q *Queue) Abort(tenant string) {
	q.mu.Lock()
	q.queued--
	q.decTenant(tenant)
	q.mu.Unlock()
}

// EnqueueReplayed admits a job outside the admission caps: WAL-replayed
// jobs (already acknowledged in a previous life), sweep children (fanned
// out under one durable sweep record), and store-failure re-enqueues.
// Rejection is not an option for any of them. Quota accounting still
// tracks the job so new submissions see the true tenant load.
func (q *Queue) EnqueueReplayed(j *job) {
	q.mu.Lock()
	q.queued++
	q.counts[j.spec.Tenant]++
	q.pushLocked(j)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *Queue) pushLocked(j *job) {
	c := classOf(j.spec.Priority)
	q.ready[c] = append(q.ready[c], queueItem{j: j, seq: q.seq})
	q.seq++
}

// Dequeue blocks until a job is ready (returning it with ok=true) or
// until stop returns true (ok=false). Stop is polled on every wakeup;
// pair it with Wake (e.g. context.AfterFunc(ctx, q.Wake)) so cancellation
// interrupts the wait promptly. The handed-out job's queue slot frees for
// new admissions (the tenant quota unit stays held until Release).
func (q *Queue) Dequeue(stop func() bool) (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if stop() {
			return nil, false
		}
		if j := q.popLocked(); j != nil {
			q.queued--
			return j, true
		}
		q.cond.Wait()
	}
}

// popLocked picks the next job: strict class priority, FIFO within the
// class — except every agingEvery-th dequeue, which serves the globally
// oldest waiting job so the sweep-child class cannot starve.
func (q *Queue) popLocked() *job {
	pick := -1
	if q.dequeues%agingEvery == agingEvery-1 {
		var oldest uint64
		for c := 0; c < numClasses; c++ {
			if len(q.ready[c]) > 0 && (pick < 0 || q.ready[c][0].seq < oldest) {
				pick, oldest = c, q.ready[c][0].seq
			}
		}
	} else {
		for c := 0; c < numClasses; c++ {
			if len(q.ready[c]) > 0 {
				pick = c
				break
			}
		}
	}
	if pick < 0 {
		return nil
	}
	it := q.ready[pick][0]
	q.ready[pick] = q.ready[pick][1:]
	q.dequeues++
	return it.j
}

// Wake broadcasts to blocked Dequeue callers so they re-check their stop
// condition (drain/shutdown).
func (q *Queue) Wake() {
	q.mu.Lock()
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Release returns the tenant's quota unit when a job reaches a terminal
// state (or is abandoned at drain).
func (q *Queue) Release(tenant string) {
	q.mu.Lock()
	q.decTenant(tenant)
	q.mu.Unlock()
}

func (q *Queue) decTenant(tenant string) {
	if q.counts[tenant]--; q.counts[tenant] <= 0 {
		delete(q.counts, tenant)
	}
}

// Depth reports jobs queued and not yet picked up (reservations included).
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// SetDraining flips rejection of new work on (drain) — queued jobs stay
// queued; the WAL keeps them for the next boot.
func (q *Queue) SetDraining(v bool) {
	q.mu.Lock()
	q.draining = v
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Tenants snapshots current per-tenant load (observability endpoint).
func (q *Queue) Tenants() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.counts))
	for k, v := range q.counts {
		out[k] = v
	}
	return out
}
