package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ptmc/internal/sim"
)

func submitSweep(t *testing.T, hs *httptest.Server, spec string) (int, SweepStatus) {
	t.Helper()
	resp, err := http.Post(hs.URL+"/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st SweepStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return resp.StatusCode, st
}

func waitSweep(t *testing.T, hs *httptest.Server, id string) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(hs.URL + "/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st SweepStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State == StateDone {
			return st
		}
		if st.State == StateFailed {
			t.Fatalf("sweep %s failed: %s: %s", id, st.FailKind, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s never finished", id)
	return SweepStatus{}
}

func sweepArtifactBytes(t *testing.T, hs *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(hs.URL + "/sweeps/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep result = %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSweepSpecNormalizeDefaultsAndBounds(t *testing.T) {
	sp := SweepSpec{Workloads: []string{"lbm06"}}
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	if len(sp.Schemes) != 1 || sp.Schemes[0] != sim.SchemeDynamicPTMC {
		t.Fatalf("default schemes = %v", sp.Schemes)
	}
	if len(sp.Seeds) != 1 || sp.Seeds[0] != sim.Default().Seed {
		t.Fatalf("default seeds = %v", sp.Seeds)
	}
	if sp.Tenant != "default" || sp.Cores == 0 || sp.Warmup == 0 || sp.Measure == 0 {
		t.Fatalf("shared knobs not normalized: %+v", sp)
	}

	bad := []SweepSpec{
		{},
		{Workloads: []string{"lbm06", "lbm06"}},
		{Workloads: []string{"lbm06"}, Seeds: []int64{3, 3}},
		{Workloads: []string{"no-such-workload"}},
		{Workloads: []string{"lbm06"}, Schemes: []string{"no-such-scheme"}},
	}
	for i, sp := range bad {
		if err := sp.Normalize(); err == nil {
			t.Errorf("bad spec %d normalized without error", i)
		}
	}

	// The matrix bound rejects unbounded fan-out under one request.
	wide := SweepSpec{Workloads: []string{"lbm06", "mcf06"},
		Schemes: []string{"ptmc", "uncompressed"}}
	for i := int64(1); i <= maxSweepPoints/4+1; i++ {
		wide.Seeds = append(wide.Seeds, i)
	}
	if err := wide.Normalize(); err == nil {
		t.Fatal("over-wide sweep normalized without error")
	}
}

func TestSweepChildrenDeterministicMatrixOrder(t *testing.T) {
	sp := SweepSpec{
		Workloads: []string{"lbm06", "mcf06"},
		Schemes:   []string{"uncompressed", "ptmc"},
		Seeds:     []int64{1, 2},
		Cores:     2, Warmup: 100, Measure: 200,
	}
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	ids, specs := sp.children()
	if len(ids) != 8 {
		t.Fatalf("fan-out %d points, want 8", len(ids))
	}
	k := 0
	for _, w := range sp.Workloads {
		for _, sc := range sp.Schemes {
			for _, sd := range sp.Seeds {
				got := specs[k]
				if got.Workload != w || len(got.Schemes) != 1 || got.Schemes[0] != sc || got.Seed != sd {
					t.Fatalf("child %d = %+v, want %s/%s/%d", k, got, w, sc, sd)
				}
				if got.Priority != PrioritySweepChild {
					t.Fatalf("child %d priority %q, want sweep-child", k, got.Priority)
				}
				if ids[k] != got.Key() {
					t.Fatalf("child %d id mismatch", k)
				}
				k++
			}
		}
	}
	// Same spec, same fan-out — the resume contract in miniature.
	ids2, _ := sp.children()
	if fmt.Sprint(ids) != fmt.Sprint(ids2) {
		t.Fatal("children not deterministic")
	}
}

func TestSweepEndToEnd(t *testing.T) {
	s, hs := newTestServer(t, nil, nil)
	body := `{"workloads":["lbm06","mcf06"],"schemes":["uncompressed","ptmc"],"seeds":[1,2],"cores":2,"warmup_instr":100,"measure_instr":200}`
	code, st := submitSweep(t, hs, body)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit = %d, want 202", code)
	}
	if st.Points != 8 {
		t.Fatalf("points = %d, want 8", st.Points)
	}
	waitSweep(t, hs, st.ID)

	var art SweepArtifact
	if err := json.Unmarshal(sweepArtifactBytes(t, hs, st.ID), &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Points) != 8 {
		t.Fatalf("artifact has %d points, want 8", len(art.Points))
	}
	for i, p := range art.Points {
		if p.State != StateDone || len(p.Result) == 0 {
			t.Fatalf("point %d (%s/%s/%d): state %s, result %d bytes",
				i, p.Workload, p.Scheme, p.Seed, p.State, len(p.Result))
		}
		// Each point's payload is the child's ordinary result artifact.
		var child ResultArtifact
		if err := json.Unmarshal(p.Result, &child); err != nil {
			t.Fatalf("point %d result: %v", i, err)
		}
		if child.ID != p.JobID {
			t.Fatalf("point %d: artifact id %s != job id %s", i, child.ID, p.JobID)
		}
	}

	// Idempotent resubmission: same matrix, same sweep, no new work.
	before := s.m.simsRun.Load()
	code2, st2 := submitSweep(t, hs, body)
	if code2 != http.StatusOK || st2.ID != st.ID {
		t.Fatalf("resubmit = %d id %s, want 200 with id %s", code2, st2.ID, st.ID)
	}
	if got := s.m.simsRun.Load(); got != before {
		t.Fatalf("resubmitted sweep ran %d extra sims", got-before)
	}
	// And the children are listed as ordinary jobs.
	resp, err := http.Get(hs.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs []JobStatus
	json.NewDecoder(resp.Body).Decode(&jobs)
	if len(jobs) != 8 {
		t.Fatalf("listed %d jobs, want the 8 children", len(jobs))
	}
}

// TestSweepAdoptsExistingJob: a sweep point whose content key matches an
// already-finished job reuses it — the point costs zero simulations.
func TestSweepAdoptsExistingJob(t *testing.T) {
	s, hs := newTestServer(t, nil, nil)
	code, jst := submit(t, hs, `{"workload":"lbm06","schemes":["ptmc"],"cores":2,"warmup_instr":100,"measure_instr":200,"seed":7}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitState(t, hs, jst.ID, StateDone)

	before := s.m.simsRun.Load()
	_, st := submitSweep(t, hs, `{"workloads":["lbm06"],"schemes":["ptmc"],"seeds":[7],"cores":2,"warmup_instr":100,"measure_instr":200}`)
	waitSweep(t, hs, st.ID)
	var art SweepArtifact
	json.Unmarshal(sweepArtifactBytes(t, hs, st.ID), &art)
	if len(art.Points) != 1 || art.Points[0].JobID != jst.ID {
		t.Fatalf("sweep point job %s, want adopted %s", art.Points[0].JobID, jst.ID)
	}
	if got := s.m.simsRun.Load(); got != before {
		t.Fatalf("adopted point re-ran %d sims", got-before)
	}
}

// bootServer starts a daemon over dir and kill9 tears it down the way a
// SIGKILL would: in-flight runs cancelled mid-simulation, nothing
// checkpointed, store dropped — only what the WAL already holds survives.
func bootServer(t *testing.T, dir string, stub func(ctx context.Context, c sim.Config) (*sim.Result, error)) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Dir: dir, Workers: 2, Parallel: 2, QueueCap: 64, RunSim: stub})
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

func kill9(s *Server, hs *httptest.Server) {
	hs.Close()
	s.queue.SetDraining(true)
	s.cancelRuns()
	s.workers.Wait()
	s.store.Close()
}

// TestSweepResumesAfterKillWithoutRerunning is the sweep-resume proof the
// durability contract promises: a 1×3×3 sweep is killed mid-flight after
// three points landed; the restarted daemon finishes the sweep, runs ONLY
// the missing points (zero duplicate simulations, asserted two ways), and
// the aggregate artifact is byte-identical to an uninterrupted run's.
func TestSweepResumesAfterKillWithoutRerunning(t *testing.T) {
	const body = `{"workloads":["lbm06"],"schemes":["uncompressed","ptmc","dynamic-ptmc"],"seeds":[1,2,3],"cores":2,"warmup_instr":100,"measure_instr":200}`
	const points = 9

	// Reference: the same sweep, never interrupted.
	refS, refHS := bootServer(t, t.TempDir(), func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		return fakeResult(c), nil
	})
	_, refSt := submitSweep(t, refHS, body)
	waitSweep(t, refHS, refSt.ID)
	want := sweepArtifactBytes(t, refHS, refSt.ID)
	kill9(refS, refHS)

	// Life 1: the first three points complete instantly, the rest block
	// until the kill cancels them.
	dir := t.TempDir()
	tokens := make(chan struct{}, 3)
	for i := 0; i < 3; i++ {
		tokens <- struct{}{}
	}
	s1, hs1 := bootServer(t, dir, func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		select {
		case <-tokens:
			return fakeResult(c), nil
		default:
		}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	_, st := submitSweep(t, hs1, body)
	if st.Points != points {
		t.Fatalf("points = %d, want %d", st.Points, points)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s1.m.completed.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d points settled before kill", s1.m.completed.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	kill9(s1, hs1)

	// What landed before the kill is exactly what life 2 must NOT re-run.
	preDone := map[string]bool{}
	files, err := filepath.Glob(filepath.Join(dir, "results", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".json")
		if !strings.HasSuffix(name, ".trace") && name != st.ID {
			preDone[name] = true
		}
	}
	if len(preDone) < 3 {
		t.Fatalf("%d artifacts on disk after kill, want >= 3", len(preDone))
	}

	// Life 2: every invocation is recorded; artifact-backed points must
	// never reach the simulator again.
	var mu sync.Mutex
	var invoked []sim.Config
	s2, hs2 := bootServer(t, dir, func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		mu.Lock()
		invoked = append(invoked, c)
		mu.Unlock()
		return fakeResult(c), nil
	})
	defer kill9(s2, hs2)
	waitSweep(t, hs2, st.ID)
	got := sweepArtifactBytes(t, hs2, st.ID)

	if !bytes.Equal(got, want) {
		t.Fatalf("resumed aggregate differs from uninterrupted run:\n got %d bytes: %.200s\nwant %d bytes: %.200s",
			len(got), got, len(want), want)
	}
	if n := int(s2.m.simsRun.Load()); n != points-len(preDone) {
		t.Fatalf("life 2 ran %d sims, want exactly the %d missing points",
			n, points-len(preDone))
	}
	mu.Lock()
	defer mu.Unlock()
	for _, c := range invoked {
		key := (&JobSpec{
			Workload: c.Workload, Schemes: []string{c.Scheme},
			Cores: c.Cores, Warmup: c.WarmupInstr, Measure: c.MeasureInstr,
			Seed: c.Seed, Shards: c.Shards, Tenant: "default",
			Priority: PrioritySweepChild, Trace: c.Trace,
		}).Key()
		if preDone[key] {
			t.Errorf("point %s/%s/%d re-simulated despite its artifact surviving the kill",
				c.Workload, c.Scheme, c.Seed)
		}
	}
}
