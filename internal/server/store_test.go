package server

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testSpec(workload string) JobSpec {
	s := JobSpec{Workload: workload, Schemes: []string{"uncompressed"},
		Cores: 2, Warmup: 1000, Measure: 2000, Seed: 1, Tenant: "t"}
	return s
}

func TestStoreAcceptSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec("lbm06")
	if err := st.Accept("j1", spec); err != nil {
		t.Fatal(err)
	}
	if err := st.Accept("j1", spec); err != nil {
		t.Fatal("re-accept must be idempotent:", err)
	}
	if err := st.CompleteFailed("j1", FailKindTimeout, "too slow"); err != nil {
		t.Fatal(err)
	}
	if err := st.Accept("j2", testSpec("mcf06")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	jobs := re.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	if jobs[0].ID != "j1" || jobs[0].State != StateFailed ||
		jobs[0].FailKind != FailKindTimeout || jobs[0].Error != "too slow" {
		t.Fatalf("j1 replayed wrong: %+v", jobs[0])
	}
	if jobs[1].ID != "j2" || jobs[1].State != StateAccepted {
		t.Fatalf("j2 replayed wrong: %+v", jobs[1])
	}
	if jobs[1].Spec.Workload != "mcf06" {
		t.Fatalf("spec lost: %+v", jobs[1].Spec)
	}
}

func TestStoreDoneRequiresArtifact(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenStore(dir)
	if err := st.Accept("j1", testSpec("lbm06")); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveResult("j1", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.CompleteOK("j1"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Sabotage: delete the artifact under the done record. Replay must
	// degrade the job to pending (re-run) instead of serving a ghost.
	os.Remove(filepath.Join(dir, "results", "j1.json"))
	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Jobs()[0].State; got != StateAccepted {
		t.Fatalf("state = %s, want accepted (artifact missing)", got)
	}
}

func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenStore(dir)
	st.Accept("j1", testSpec("lbm06"))
	st.Accept("j2", testSpec("mcf06"))
	st.Close()

	wal := filepath.Join(dir, "wal-000001.log")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail: keep the first record whole, chop the second mid-way.
	if err := os.WriteFile(wal, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	jobs := re.Jobs()
	if len(jobs) != 1 || jobs[0].ID != "j1" {
		t.Fatalf("after torn tail: %d jobs, want only j1", len(jobs))
	}
	// The whole torn record is discarded, not just the missing bytes.
	if re.Truncated == 0 {
		t.Fatal("Truncated = 0, want the torn record's remaining bytes")
	}
	// The truncated log must accept new appends cleanly.
	if err := re.Accept("j3", testSpec("lbm06")); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, _ := OpenStore(dir)
	defer re2.Close()
	if n := len(re2.Jobs()); n != 2 {
		t.Fatalf("after repair+append: %d jobs, want 2", n)
	}
}

func TestStoreCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenStore(dir)
	st.Accept("j1", testSpec("lbm06"))
	end1, _ := os.Stat(filepath.Join(dir, "wal-000001.log"))
	st.Accept("j2", testSpec("mcf06"))
	st.Close()

	// Flip one payload byte inside the second record: its CRC fails, and
	// replay keeps only the prefix (a mid-log corruption means everything
	// after it is untrustworthy).
	wal := filepath.Join(dir, "wal-000001.log")
	data, _ := os.ReadFile(wal)
	data[end1.Size()+20] ^= 0xFF
	os.WriteFile(wal, data, 0o644)

	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if jobs := re.Jobs(); len(jobs) != 1 || jobs[0].ID != "j1" {
		t.Fatalf("after corrupt record: got %d jobs", len(jobs))
	}
}

func TestStoreCheckpointCompacts(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenStore(dir)
	st.Accept("j1", testSpec("lbm06"))
	st.SaveResult("j1", []byte(`{}`))
	st.CompleteOK("j1")
	st.Accept("j2", testSpec("mcf06"))
	st.CompleteFailed("j2", FailKindSim, "boom")
	st.Accept("j3", testSpec("lbm06"))
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint appends must land in the compacted log.
	if err := st.Accept("j4", testSpec("mcf06")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	jobs := re.Jobs()
	if len(jobs) != 4 {
		t.Fatalf("replayed %d jobs, want 4", len(jobs))
	}
	want := map[string]string{"j1": StateDone, "j2": StateFailed,
		"j3": StateAccepted, "j4": StateAccepted}
	for _, j := range jobs {
		if j.State != want[j.ID] {
			t.Errorf("%s: state %s, want %s", j.ID, j.State, want[j.ID])
		}
	}
}

func TestStoreInjectedCrashKillsStore(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenStore(dir)
	boom := errors.New("crash")
	st.crash = func(p CrashPoint) error {
		if p == CrashAfterWrite {
			return boom
		}
		return nil
	}
	if err := st.Accept("j1", testSpec("lbm06")); !errors.Is(err, boom) {
		t.Fatalf("Accept err = %v, want injected crash", err)
	}
	// Dead store: everything fails, nothing mutates disk.
	if err := st.Accept("j2", testSpec("mcf06")); !errors.Is(err, ErrStoreDead) {
		t.Fatalf("post-crash Accept err = %v, want ErrStoreDead", err)
	}
	if err := st.Checkpoint(); !errors.Is(err, ErrStoreDead) {
		t.Fatalf("post-crash Checkpoint err = %v, want ErrStoreDead", err)
	}
}
