package server

// Regression tests for the settlement/SSE races fixed in this change.
// Each of these fails against the pre-fix code:
//
//   - TestFinishTerminalEventVisibleOnDone: finish() used to close j.done
//     BEFORE emitting the terminal event, so a waiter waking on <-j.done
//     could read the backlog without the done/failed event in it.
//   - TestEventsSSEGapHeals: emit() skips slow subscribers, and the
//     receive loop used to deliver whatever arrived next — a skipped
//     event's seq was below `last` forever, a permanent mid-stream gap.
//   - TestTransientStoreFaultRequeuesInProcess: a store write failing
//     mid-settlement used to leave the job "running" forever with the
//     tenant's quota unit held (zombie job + quota leak).

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptmc/internal/sim"
)

// newHTTPServer wraps an already-built server (e.g. one with fault hooks
// armed pre-boot) in an httptest server with drain-on-cleanup.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return hs
}

// TestFinishTerminalEventVisibleOnDone pins the fixed invariant: by the
// time j.done is observably closed, the terminal event has already been
// delivered (backlog appended, subscriber channels offered). The old
// ordering — close(j.done), unlock, THEN emit — broke it: a subscriber
// waking on <-j.done could find no done/failed event and end its SSE
// stream without ever reporting the outcome.
//
// The schedule is forced, not raced. A blocker goroutine is queued on
// j.mu behind finish long enough (>1ms) to flip the mutex into starvation
// mode, whose unlock hands ownership directly to the longest waiter. With
// the buggy ordering, finish's unlock (after close, before emit) hands
// j.mu to the blocker; the blocker then holds it until the waiter — woken
// by the close — has checked its subscriber channel, which the stalled
// emit has not reached yet. With the fixed ordering the event is in the
// channel before the close, whatever the schedule, so the test is
// deterministic-pass after the fix and detects the bug when any iteration
// wins the hand-off.
func TestFinishTerminalEventVisibleOnDone(t *testing.T) {
	const iters = 100
	var missing atomic.Int64
	for i := 0; i < iters; i++ {
		j := newJob("j", JobSpec{Workload: "lbm06", Schemes: []string{"ptmc"}})
		ch := make(chan Event, 16)
		j.subscribe(0, ch)

		gate := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(4)
		j.mu.Lock() // park starver, finisher, blocker on the mutex, in order
		go func() { // starver: wakes to a re-taken lock, sets starvation mode
			defer wg.Done()
			j.mu.Lock()
			_ = j.state
			j.mu.Unlock()
		}()
		time.Sleep(2 * time.Millisecond)
		go func() { // finisher
			defer wg.Done()
			j.finish(StateDone, "", "")
		}()
		time.Sleep(2 * time.Millisecond)
		go func() { // blocker: receives j.mu by hand-off at finish's unlock
			defer wg.Done()
			j.mu.Lock()
			<-gate
			j.mu.Unlock()
		}()
		go func() { // waiter: the SSE handler's wake-on-done path
			defer wg.Done()
			<-j.done
			select {
			case ev := <-ch:
				if ev.Kind != "done" {
					missing.Add(1)
				}
			default:
				missing.Add(1) // woke on done, no terminal event delivered
			}
			close(gate)
		}()
		time.Sleep(2 * time.Millisecond)
		// Wake the starver but re-take the lock before it runs: it finds
		// the mutex held after waiting >1ms and flips it to starvation
		// (direct hand-off) mode, queued ahead of finisher and blocker.
		j.mu.Unlock()
		j.mu.Lock()
		time.Sleep(2 * time.Millisecond)
		j.mu.Unlock() // hand-off chain: starver -> finisher -> blocker
		wg.Wait()
		j.unsubscribe(ch)
	}
	if n := missing.Load(); n > 0 {
		t.Fatalf("%d/%d iterations woke on j.done before the terminal event was delivered", n, iters)
	}
}

func TestEventsSSEGapHeals(t *testing.T) {
	release := make(chan struct{})
	stub := func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		select {
		case <-release:
			return fakeResult(c), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s, hs := newTestServer(t, nil, stub)
	_, st := submit(t, hs, tinySpec)
	waitState(t, hs, st.ID, StateRunning)
	j := s.lookup(st.ID)

	// Connect a live SSE client, then burst far more events than its
	// subscriber channel (cap 16) can hold: emit drops what doesn't fit,
	// so the client's live feed has holes it can only close by refilling
	// from the backlog when it sees the sequence jump.
	req, _ := http.NewRequest("GET", hs.URL+"/jobs/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Wait until the handler is subscribed so the burst races it for real.
	deadline := time.Now().Add(5 * time.Second)
	for {
		j.mu.Lock()
		n := len(j.subs)
		j.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SSE handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	const burst = 1000
	for i := 0; i < burst; i++ {
		j.emit("scheme", fmt.Sprintf("burst %d", i))
	}
	close(release)
	waitState(t, hs, st.ID, StateDone)

	// The stream must deliver every sequence number exactly once, in
	// order, no holes — however many live events were dropped.
	var seqs []int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "id: ") {
			n, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
			seqs = append(seqs, n)
		}
	}
	if len(seqs) < burst {
		t.Fatalf("stream delivered %d events, want >= %d", len(seqs), burst)
	}
	for i, n := range seqs {
		if n != i+1 {
			t.Fatalf("gap in delivered stream at index %d: got seq %d, want %d "+
				"(skipped live events were never healed from the backlog)", i, n, i+1)
		}
	}
}

func TestTransientStoreFaultRequeuesInProcess(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Fault injection: the first two result-artifact writes fail with a
	// transient error (disk hiccup), the third succeeds. Unlike the crash
	// hook this does NOT wedge the store — exactly the case the in-process
	// retry path exists for.
	var mu sync.Mutex
	faults := 2
	store.fault = func(op string) error {
		if op != "result" {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		if faults > 0 {
			faults--
			return errors.New("transient disk hiccup")
		}
		return nil
	}
	s, err := newFromStore(Config{
		Dir: dir, Workers: 1, Parallel: 1, QueueCap: 8,
		TenantQuota: 1, // one in-flight job per tenant: a leak would 429 the follow-up
		Backoff:     time.Millisecond,
		RunSim: func(ctx context.Context, c sim.Config) (*sim.Result, error) {
			return fakeResult(c), nil
		},
	}, store)
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer(t, s)

	_, st := submit(t, hs, `{"workload":"lbm06","schemes":["ptmc"],"cores":2,"warmup_instr":100,"measure_instr":200,"tenant":"leaky"}`)
	// Pre-fix: the job wedges in "running" forever and this times out.
	waitState(t, hs, st.ID, StateDone)

	if got := s.m.storeRetries.Load(); got < 2 {
		t.Errorf("store_retries = %d, want >= 2", got)
	}
	// The requeued edge is visible on the event stream.
	j := s.lookup(st.ID)
	var requeued int
	for _, ev := range j.backlogAfter(0) {
		if ev.Kind == "requeued" {
			requeued++
		}
	}
	if requeued != 2 {
		t.Errorf("saw %d requeued events, want 2", requeued)
	}
	// Quota not leaked: the same tenant (quota 1) can run another job now.
	code, st2 := submit(t, hs, `{"workload":"mcf06","schemes":["ptmc"],"cores":2,"warmup_instr":100,"measure_instr":200,"tenant":"leaky"}`)
	if code != http.StatusAccepted {
		t.Fatalf("follow-up submit for tenant = %d, want 202 (quota unit leaked?)", code)
	}
	waitState(t, hs, st2.ID, StateDone)
}
