// Package energy provides the event-based power/energy model behind
// Figure 18. Absolute joules are rough (public DDR4 datasheet ballparks);
// the figure's claims are relative — energy tracks DRAM request counts,
// power tracks energy over runtime, EDP multiplies in the speedup — and
// those relations hold by construction.
package energy

import "ptmc/internal/dram"

// Params are the per-event energies and static powers.
type Params struct {
	ActNJ        float64 // energy per row activation (incl. precharge)
	BurstNJ      float64 // energy per 64-byte read/write burst (incl. IO)
	BackgroundWC float64 // DRAM background watts per channel
	CPUWatts     float64 // rest-of-system power (cores + caches)
}

// DefaultParams returns DDR4-class ballparks.
func DefaultParams() Params {
	return Params{ActNJ: 3.0, BurstNJ: 5.0, BackgroundWC: 0.75, CPUWatts: 40}
}

// Breakdown is the computed energy/power/EDP of one run.
type Breakdown struct {
	TimeS      float64
	DRAMJoules float64
	CPUJoules  float64
	TotalJ     float64
	AvgWatts   float64
	EDP        float64 // energy × delay
}

// Compute evaluates the model for a run of `cycles` CPU cycles at freqGHz.
func Compute(p Params, d dram.Stats, channels int, cycles int64, freqGHz float64) Breakdown {
	t := float64(cycles) / (freqGHz * 1e9)
	dramJ := float64(d.Activates)*p.ActNJ*1e-9 +
		float64(d.Reads+d.Writes)*p.BurstNJ*1e-9 +
		p.BackgroundWC*float64(channels)*t
	cpuJ := p.CPUWatts * t
	total := dramJ + cpuJ
	b := Breakdown{TimeS: t, DRAMJoules: dramJ, CPUJoules: cpuJ, TotalJ: total, EDP: total * t}
	if t > 0 {
		b.AvgWatts = total / t
	}
	return b
}
