package energy

import (
	"testing"

	"ptmc/internal/dram"
)

func TestEnergyScalesWithTraffic(t *testing.T) {
	p := DefaultParams()
	light := dram.Stats{Reads: 1000, Writes: 500, Activates: 300}
	heavy := dram.Stats{Reads: 10_000, Writes: 5_000, Activates: 3_000}
	b1 := Compute(p, light, 2, 1_000_000, 3.2)
	b2 := Compute(p, heavy, 2, 1_000_000, 3.2)
	if b2.DRAMJoules <= b1.DRAMJoules {
		t.Error("more traffic must cost more DRAM energy")
	}
	if b1.CPUJoules != b2.CPUJoules {
		t.Error("CPU energy depends on time only")
	}
}

func TestEDPMultipliesDelay(t *testing.T) {
	p := DefaultParams()
	st := dram.Stats{Reads: 1000, Writes: 1000, Activates: 500}
	fast := Compute(p, st, 2, 1_000_000, 3.2)
	slow := Compute(p, st, 2, 2_000_000, 3.2)
	if slow.EDP <= fast.EDP {
		t.Error("longer runtime must worsen EDP")
	}
	if slow.TimeS != 2*fast.TimeS {
		t.Errorf("time = %v, want double %v", slow.TimeS, fast.TimeS)
	}
}

func TestBreakdownConsistency(t *testing.T) {
	p := DefaultParams()
	b := Compute(p, dram.Stats{Reads: 100, Writes: 100, Activates: 50}, 2, 3_200_000, 3.2)
	if b.TimeS != 0.001 {
		t.Errorf("time = %v, want 1 ms", b.TimeS)
	}
	if b.TotalJ != b.DRAMJoules+b.CPUJoules {
		t.Error("total != sum of parts")
	}
	if b.AvgWatts <= 0 {
		t.Error("power must be positive")
	}
	var zero Breakdown
	if zero.AvgWatts != 0 {
		t.Error("zero breakdown should have zero power")
	}
}

func TestZeroCyclesSafe(t *testing.T) {
	b := Compute(DefaultParams(), dram.Stats{}, 2, 0, 3.2)
	if b.AvgWatts != 0 || b.TotalJ != 0 {
		t.Errorf("zero-cycle run should cost nothing: %+v", b)
	}
}
