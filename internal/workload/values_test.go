package workload

import (
	"bytes"
	"testing"

	"ptmc/internal/compress"
)

func synth(kind ValueKind, vline uint64, version uint32) []byte {
	buf := make([]byte, 64)
	synthLine(kind, vline, version, 0xFEED, buf)
	return buf
}

func TestSynthDeterministic(t *testing.T) {
	for k := ValueKind(0); k < numKinds; k++ {
		a, b := synth(k, 42, 0), synth(k, 42, 0)
		if !bytes.Equal(a, b) {
			t.Errorf("kind %d not deterministic", k)
		}
		c := synth(k, 43, 0)
		if k != KindZero && bytes.Equal(a, c) {
			t.Errorf("kind %d: different lines identical", k)
		}
		d := synth(k, 42, 1)
		if k == KindRandom || k == KindZero || k == KindSmallInt {
			if bytes.Equal(a, d) {
				t.Errorf("kind %d: version bump did not change line", k)
			}
		}
	}
}

func TestKindCompressibilityOrdering(t *testing.T) {
	alg := compress.Hybrid{}
	avgSize := func(k ValueKind) float64 {
		total := 0
		for i := uint64(0); i < 200; i++ {
			total += len(alg.Compress(synth(k, i, 0)))
		}
		return float64(total) / 200
	}
	zero := avgSize(KindZero)
	small := avgSize(KindSmallInt)
	delta := avgSize(KindDelta8)
	random := avgSize(KindRandom)
	if !(zero < small && small < random && delta < random) {
		t.Errorf("compressibility ordering broken: zero=%.1f small=%.1f delta=%.1f random=%.1f",
			zero, small, delta, random)
	}
	if zero > 8 {
		t.Errorf("zero-kind lines average %.1f bytes, want tiny", zero)
	}
	if random < 60 {
		t.Errorf("random-kind lines average %.1f bytes, want incompressible", random)
	}
}

func TestKindStablePerPage(t *testing.T) {
	mix := ValueMix{{KindZero, 1}, {KindRandom, 1}}
	// All lines of a page share a kind; kinds vary across pages.
	seen := map[ValueKind]bool{}
	for page := uint64(0); page < 64; page++ {
		k := mix.kindFor(page, 7)
		seen[k] = true
		if k2 := mix.kindFor(page, 7); k2 != k {
			t.Fatal("kindFor not deterministic")
		}
	}
	if len(seen) != 2 {
		t.Errorf("64 pages hit %d kinds, want both", len(seen))
	}
}

func TestMixWeightsRespected(t *testing.T) {
	mix := ValueMix{{KindZero, 90}, {KindRandom, 10}}
	zeros := 0
	const pages = 5000
	for page := uint64(0); page < pages; page++ {
		if mix.kindFor(page, 3) == KindZero {
			zeros++
		}
	}
	frac := float64(zeros) / pages
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("zero fraction = %.3f, want ~0.90", frac)
	}
}

func TestPointerKindSharesHighBits(t *testing.T) {
	line := synth(KindPointer, 100, 0)
	var first uint64
	for i := 0; i < 8; i++ {
		var v uint64
		for b := 7; b >= 0; b-- {
			v = v<<8 | uint64(line[i*8+b])
		}
		if i == 0 {
			first = v >> 24
			continue
		}
		if v>>24 != first {
			t.Errorf("pointer %d has different high bits", i)
		}
	}
}
