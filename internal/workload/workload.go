// Package workload provides the synthetic workload generators that stand in
// for the paper's SPEC2006/SPEC2017 PinPoints slices and GAP graph-analytics
// runs (see DESIGN.md §5 for the substitution argument). A Workload is a
// small set of first-order knobs — footprint, memory-instruction fraction,
// write fraction, spatial-run statistics, hot-set reuse, and a value-kind
// mix — from which MPKI, compressibility, and prefetch usefulness all
// *emerge* in simulation rather than being asserted.
package workload

import (
	"fmt"
	"math/rand"

	"ptmc/internal/vm"
)

// Op is one instruction-stream event: Gap non-memory instructions followed
// by one memory access.
type Op struct {
	Gap   int    // non-memory instructions preceding the access
	VAddr uint64 // virtual byte address
	Write bool
}

// Source feeds a simulated core: an instruction/access stream plus the
// data-value synthesis callbacks the memory system needs. Stream (the
// synthetic generators) and trace replayers (internal/trace) implement it.
type Source interface {
	// Next produces the next instruction-stream event.
	Next() Op
	// FillLine synthesizes the initial contents of virtual line vline.
	FillLine(vline uint64, buf []byte)
	// MutateLine advances the line's value on a store and writes the new
	// contents into buf.
	MutateLine(vline uint64, buf []byte)
}

// Workload is an immutable description of one benchmark's behavior.
type Workload struct {
	Name  string
	Suite string // "spec06", "spec17", "gap", "mix"

	FootprintBytes uint64  // virtual region size
	MemFrac        float64 // fraction of instructions that touch memory
	WriteFrac      float64 // fraction of memory ops that are stores
	SeqProb        float64 // probability a new burst is sequential
	SeqRun         int     // mean lines per sequential run
	HotFrac        float64 // fraction of footprint forming the hot set
	HotProb        float64 // probability a random access hits the hot set
	// SweepBytes is the size of the region sequential bursts iterate over
	// before the region drifts onward (0 = the whole footprint). Streaming
	// scientific codes sweep the same arrays repeatedly; this is what lets
	// a later access find data a previous eviction compressed.
	SweepBytes uint64
	Mix        ValueMix
}

// Validate reports parameter errors.
func (w *Workload) Validate() error {
	switch {
	case w.FootprintBytes < 1<<vm.PageShift:
		return fmt.Errorf("workload %s: footprint below one page", w.Name)
	case w.MemFrac <= 0 || w.MemFrac > 1:
		return fmt.Errorf("workload %s: MemFrac out of (0,1]", w.Name)
	case w.WriteFrac < 0 || w.WriteFrac > 1:
		return fmt.Errorf("workload %s: WriteFrac out of [0,1]", w.Name)
	case w.SeqProb < 0 || w.SeqProb > 1:
		return fmt.Errorf("workload %s: SeqProb out of [0,1]", w.Name)
	case w.SeqRun < 1:
		return fmt.Errorf("workload %s: SeqRun must be >= 1", w.Name)
	case w.HotFrac < 0 || w.HotFrac > 1 || w.HotProb < 0 || w.HotProb > 1:
		return fmt.Errorf("workload %s: hot-set parameters out of range", w.Name)
	case len(w.Mix) == 0:
		return fmt.Errorf("workload %s: empty value mix", w.Name)
	}
	return nil
}

// Stream is a per-core running instance of a Workload. Streams are
// deterministic in (workload, seed).
type Stream struct {
	w        *Workload
	rng      *rand.Rand
	seed     uint64
	versions map[uint64]uint32 // vline -> mutation count

	lines      uint64 // footprint in lines
	hotLines   uint64
	sweepLines uint64 // sequential-burst region size
	sweepBase  uint64 // current region origin (drifts forward)
	seqCur     uint64 // sequential cursor within the sweep region

	cur       uint64 // next line of the active sequential run
	runLeft   int
	stride    uint64
	dwellLeft int     // further accesses to the current line (intra-line reuse)
	qSeq      float64 // per-burst probability achieving SeqProb per access
}

// dwellMean is the average number of accesses a workload makes to a line
// while it is current (a 64-byte line holds 8-16 program values).
const dwellMean = 4

// NewStream instantiates the workload with a seed. Each core gets its own
// stream (rate mode: same workload, different seed).
func (w *Workload) NewStream(seed int64) *Stream {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	s := &Stream{
		w:        w,
		rng:      rand.New(rand.NewSource(seed)),
		seed:     mix64(uint64(seed) ^ 0xC0FFEE),
		versions: make(map[uint64]uint32),
		lines:    w.FootprintBytes / 64,
	}
	s.hotLines = uint64(float64(s.lines) * w.HotFrac)
	if s.hotLines < 64 {
		s.hotLines = 64
	}
	if s.hotLines > s.lines {
		s.hotLines = s.lines
	}
	// SeqProb is the fraction of *accesses* that belong to sequential
	// runs. A run of mean length R delivers R accesses per burst, so the
	// per-burst probability must be deflated accordingly:
	// q = f / (f + R(1-f)).
	f, r := w.SeqProb, float64(w.SeqRun)
	if f > 0 {
		s.qSeq = f / (f + r*(1-f))
	}
	s.sweepLines = s.lines
	if w.SweepBytes > 0 && w.SweepBytes/64 < s.lines {
		s.sweepLines = w.SweepBytes / 64
	}
	return s
}

// Workload returns the stream's description.
func (s *Stream) Workload() *Workload { return s.w }

// Next produces the next instruction-stream event.
func (s *Stream) Next() Op {
	// Geometric gap with mean (1-MemFrac)/MemFrac non-memory instructions
	// per memory instruction.
	gap := 0
	for s.rng.Float64() > s.w.MemFrac {
		gap++
		if gap >= 1000 {
			break
		}
	}

	if s.dwellLeft > 0 {
		s.dwellLeft--
	} else {
		if s.runLeft == 0 {
			s.newBurst()
		} else {
			s.cur += s.stride
		}
		s.runLeft--
		// Geometric dwell with mean dwellMean accesses per line.
		for s.rng.Float64() > 1.0/dwellMean && s.dwellLeft < 4*dwellMean {
			s.dwellLeft++
		}
	}
	line := s.cur % s.lines

	return Op{
		Gap:   gap,
		VAddr: line*64 + uint64(s.rng.Intn(8))*8,
		Write: s.rng.Float64() < s.w.WriteFrac,
	}
}

// newBurst picks the next access burst: a sequential run with probability
// SeqProb, otherwise a short dwell at a random line — drawn from the hot
// set with probability HotProb (temporal reuse), else uniformly (cold).
func (s *Stream) newBurst() {
	if s.rng.Float64() < s.qSeq {
		// Geometric run length with mean SeqRun.
		n := 1
		for s.rng.Float64() > 1.0/float64(s.w.SeqRun) && n < 16*s.w.SeqRun {
			n++
		}
		s.runLeft = n
		s.stride = 1
		// Sequential bursts iterate the sweep region cyclically (the
		// array-sweep behavior of streaming codes): the cursor continues
		// where the last burst stopped and wraps within the region; each
		// wrap drifts the region forward so the full footprint is covered
		// over time.
		if s.seqCur < s.sweepBase || s.seqCur-s.sweepBase+uint64(n) > s.sweepLines {
			if s.seqCur >= s.sweepBase { // completed a pass: drift onward
				s.sweepBase = (s.sweepBase + s.sweepLines/16 + 1) % s.lines
			}
			s.seqCur = s.sweepBase
		}
		s.cur = s.seqCur
		s.seqCur += uint64(n)
		return
	}
	s.runLeft = 1
	s.stride = 0
	pool := s.lines
	if s.rng.Float64() < s.w.HotProb {
		pool = s.hotLines // temporal reuse: revisit the hot set
	}
	s.cur = uint64(s.rng.Int63()) % pool
}

// FillLine synthesizes the current architectural contents of virtual line
// vline (vaddr>>6) into buf. Used on first touch.
func (s *Stream) FillLine(vline uint64, buf []byte) {
	kind := s.w.Mix.kindFor(vline>>(vm.PageShift-6), s.seed)
	synthLine(kind, vline, s.versions[vline], s.seed, buf)
}

// MutateLine advances the line's value (a store hit) and writes the new
// contents into buf. The value kind — hence compressibility — is stable.
func (s *Stream) MutateLine(vline uint64, buf []byte) {
	s.versions[vline]++
	s.FillLine(vline, buf)
}

// FillLineInit is FillLine specialized to first touch, where the mutation
// count is provably zero: page initialization runs before any store can
// reach the page (a store must translate first, and translation is what
// triggers initialization). Skipping the version-map lookup matters because
// initialization touches every line of every allocated page exactly once.
func (s *Stream) FillLineInit(vline uint64, buf []byte) {
	kind := s.w.Mix.kindFor(vline>>(vm.PageShift-6), s.seed)
	synthLine(kind, vline, 0, s.seed, buf)
}
