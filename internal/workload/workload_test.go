package workload

import (
	"bytes"
	"testing"

	"ptmc/internal/compress"
)

func TestTableValidates(t *testing.T) {
	for _, w := range All() {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestLookup(t *testing.T) {
	w, err := Lookup("mcf06")
	if err != nil || w.Name != "mcf06" {
		t.Fatalf("Lookup(mcf06) = %v, %v", w, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestMixesReferToRealWorkloads(t *testing.T) {
	for _, m := range Mixes() {
		if len(m.Parts) != 8 {
			t.Errorf("%s: %d parts, want 8", m.Name, len(m.Parts))
		}
		for _, p := range m.Parts {
			if _, err := Lookup(p); err != nil {
				t.Errorf("%s: %v", m.Name, err)
			}
		}
	}
	if _, err := LookupMix("mix1"); err != nil {
		t.Error(err)
	}
	if _, err := LookupMix("mix99"); err == nil {
		t.Error("unknown mix should error")
	}
}

func TestSixtyFourWorkloadsForFigure17(t *testing.T) {
	// Paper §VI-B: 64 workloads total across suites and mixes.
	if got := len(All()) + len(Mixes()); got != 64 {
		t.Errorf("total workloads = %d, want 64", got)
	}
}

func TestSuiteSplits(t *testing.T) {
	if n := len(Suite("gap")); n != 16 {
		t.Errorf("gap suite = %d, want 16", n)
	}
	if n := len(HighMPKI()); n != 21 {
		t.Errorf("high-MPKI SPEC set = %d workloads", n)
	}
	for _, w := range HighMPKI() {
		if w.Suite == "gap" {
			t.Errorf("%s: gap workload in SPEC high-MPKI set", w.Name)
		}
	}
	if len(Names()) != 64 {
		t.Errorf("Names() = %d entries", len(Names()))
	}
}

func TestStreamDeterminism(t *testing.T) {
	w, _ := Lookup("mcf06")
	s1, s2 := w.NewStream(5), w.NewStream(5)
	for i := 0; i < 1000; i++ {
		if s1.Next() != s2.Next() {
			t.Fatal("same seed must give identical streams")
		}
	}
	s3 := w.NewStream(6)
	same := 0
	for i := 0; i < 1000; i++ {
		if s1.Next() == s3.Next() {
			same++
		}
	}
	if same > 100 {
		t.Errorf("different seeds produced %d/1000 identical ops", same)
	}
}

func TestStreamStaysInFootprint(t *testing.T) {
	for _, name := range []string{"libquantum06", "mcf06", "pr-twitter", "leela17"} {
		w, _ := Lookup(name)
		s := w.NewStream(1)
		for i := 0; i < 20_000; i++ {
			op := s.Next()
			if op.VAddr >= w.FootprintBytes {
				t.Fatalf("%s: vaddr %#x outside footprint %#x", name, op.VAddr, w.FootprintBytes)
			}
			if op.Gap < 0 || op.Gap > 1000 {
				t.Fatalf("%s: gap %d out of range", name, op.Gap)
			}
		}
	}
}

func TestWriteFractionRoughlyHonored(t *testing.T) {
	w, _ := Lookup("lbm06") // WriteFrac 0.45
	s := w.NewStream(2)
	writes := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if s.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.40 || frac > 0.50 {
		t.Errorf("write fraction = %.3f, want ~0.45", frac)
	}
}

func TestSequentialWorkloadHasRuns(t *testing.T) {
	// Sequentiality is measured at line granularity: dwell accesses to the
	// same line are not transitions.
	seqFrac := func(name string) float64 {
		w, _ := Lookup(name)
		s := w.NewStream(3)
		prev := uint64(0)
		seq, trans := 0, 0
		for i := 0; i < 60_000; i++ {
			line := s.Next().VAddr >> 6
			if line == prev {
				continue
			}
			trans++
			if line == prev+1 {
				seq++
			}
			prev = line
		}
		return float64(seq) / float64(trans)
	}
	if frac := seqFrac("libquantum06"); frac < 0.5 {
		t.Errorf("sequential fraction = %.2f, want > 0.5 for a streaming workload", frac)
	}
	if frac := seqFrac("pr-twitter"); frac > 0.4 {
		t.Errorf("graph sequential fraction = %.2f, want low", frac)
	}
}

func TestFillLineDeterministicUntilMutated(t *testing.T) {
	w, _ := Lookup("lbm06")
	s := w.NewStream(4)
	a, b := make([]byte, 64), make([]byte, 64)
	s.FillLine(100, a)
	s.FillLine(100, b)
	if !bytes.Equal(a, b) {
		t.Error("FillLine must be deterministic")
	}
	s.MutateLine(100, b)
	if bytes.Equal(a, b) {
		t.Error("MutateLine must change the contents")
	}
	c := make([]byte, 64)
	s.FillLine(100, c)
	if !bytes.Equal(b, c) {
		t.Error("FillLine must reflect the mutation")
	}
}

// TestValueMixCompressibilityOrdering: the measured pair-compressibility
// (Figure 6's metric: two adjacent lines fitting 60 bytes) must track the
// declared mixes — very compressible > graph > incompressible.
func TestValueMixCompressibilityOrdering(t *testing.T) {
	alg := compress.Hybrid{}
	pairRate := func(name string) float64 {
		w, _ := Lookup(name)
		s := w.NewStream(9)
		fit := 0
		const pairs = 2000
		l0, l1 := make([]byte, 64), make([]byte, 64)
		for i := 0; i < pairs; i++ {
			vline := uint64(i * 2)
			s.FillLine(vline, l0)
			s.FillLine(vline+1, l1)
			if _, ok := compress.CompressGroup(alg, [][]byte{l0, l1}, 60); ok {
				fit++
			}
		}
		return float64(fit) / pairs
	}
	lq := pairRate("libquantum06")
	gr := pairRate("pr-twitter")
	xz := pairRate("xz17")
	if !(lq > gr && gr > xz) {
		t.Errorf("pair-compressibility ordering broken: libquantum=%.2f graph=%.2f xz=%.2f", lq, gr, xz)
	}
	if lq < 0.5 {
		t.Errorf("libquantum pair rate = %.2f, want high", lq)
	}
	if xz > 0.25 {
		t.Errorf("xz pair rate = %.2f, want low", xz)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Workload{
		{Name: "a", FootprintBytes: 100, MemFrac: 0.3, SeqRun: 1, Mix: veryCompressible},
		{Name: "b", FootprintBytes: 1 << 20, MemFrac: 0, SeqRun: 1, Mix: veryCompressible},
		{Name: "c", FootprintBytes: 1 << 20, MemFrac: 0.3, WriteFrac: 1.5, SeqRun: 1, Mix: veryCompressible},
		{Name: "d", FootprintBytes: 1 << 20, MemFrac: 0.3, SeqRun: 0, Mix: veryCompressible},
		{Name: "e", FootprintBytes: 1 << 20, MemFrac: 0.3, SeqRun: 1, SeqProb: -1, Mix: veryCompressible},
		{Name: "f", FootprintBytes: 1 << 20, MemFrac: 0.3, SeqRun: 1, HotProb: 2, Mix: veryCompressible},
		{Name: "g", FootprintBytes: 1 << 20, MemFrac: 0.3, SeqRun: 1},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("workload %s should fail validation", w.Name)
		}
	}
}

func TestHotSetReuse(t *testing.T) {
	// A cache-resident workload re-touches a small set of lines.
	w, _ := Lookup("leela17")
	s := w.NewStream(8)
	seen := map[uint64]int{}
	for i := 0; i < 30_000; i++ {
		seen[s.Next().VAddr>>6]++
	}
	// Strong reuse: distinct lines far fewer than accesses.
	if len(seen) > 15_000 {
		t.Errorf("cache-resident workload touched %d distinct lines in 30k accesses", len(seen))
	}
}
