package workload

import (
	"fmt"
	"sort"
)

// The named workload table. Names follow the paper's convention: a "06" or
// "17" suffix marks the SPEC generation when a benchmark appears in both.
// Parameters are calibrated to land each workload in its Table II regime
// (L3 MPKI band, footprint) and its Figure 6 compressibility band; the
// simulator *measures* both (BenchmarkTableII, BenchmarkFigure6), it never
// assumes them.
//
// Mix shorthands used below:
//
//	veryCompressible: zero/small-int dominated (libquantum-like)
//	arrayCompressible: 64-bit base+delta arrays (streaming scientific)
//	pointerHeavy: pointer graphs with some cold random data (mcf-like)
//	fpMixed: doubles, half truncated-mantissa (lbm/milc-like)
//	graphValues: vertex-id arrays + property arrays + cold random
//	incompressible: random-dominated
var (
	veryCompressible  = ValueMix{{KindZero, 35}, {KindSmallInt, 45}, {KindDelta8, 10}, {KindRandom, 10}}
	arrayCompressible = ValueMix{{KindDelta8, 45}, {KindSmallInt, 20}, {KindZero, 10}, {KindFP, 15}, {KindRandom, 10}}
	pointerHeavy      = ValueMix{{KindPointer, 40}, {KindSmallInt, 25}, {KindZero, 10}, {KindRandom, 25}}
	fpMixed           = ValueMix{{KindFP, 40}, {KindDelta8, 25}, {KindSmallInt, 15}, {KindRandom, 20}}
	graphValues       = ValueMix{{KindSmallInt, 40}, {KindZero, 15}, {KindPointer, 10}, {KindRandom, 35}}
	incompressible    = ValueMix{{KindRandom, 70}, {KindFP, 20}, {KindPointer, 10}}
)

const mb = 1 << 20

// spec-style parameter bundles.
func streaming(name, suite string, fpMB int, mix ValueMix, writeFrac float64) Workload {
	return Workload{
		Name: name, Suite: suite,
		FootprintBytes: uint64(fpMB) * mb,
		MemFrac:        0.32, WriteFrac: writeFrac,
		SeqProb: 0.85, SeqRun: 48,
		HotFrac: 0.02, HotProb: 0.25,
		SweepBytes: mb, // iterate 1 MB array blocks, drifting onward (reuse distance scaled to the simulation horizon; see DESIGN.md §5)
		Mix:        mix,
	}
}

func irregular(name, suite string, fpMB int, mix ValueMix, writeFrac, hotProb float64) Workload {
	return Workload{
		Name: name, Suite: suite,
		FootprintBytes: uint64(fpMB) * mb,
		MemFrac:        0.40, WriteFrac: writeFrac,
		SeqProb: 0.20, SeqRun: 6,
		HotFrac: 0.04, HotProb: hotProb,
		Mix: mix,
	}
}

func cacheResident(name, suite string, fpMB int, mix ValueMix) Workload {
	return Workload{
		Name: name, Suite: suite,
		FootprintBytes: uint64(fpMB) * mb,
		MemFrac:        0.30, WriteFrac: 0.3,
		SeqProb: 0.5, SeqRun: 16,
		HotFrac: 0.08, HotProb: 0.95,
		SweepBytes: mb / 2, // small loops over resident structures
		Mix:        mix,
	}
}

func graph(name string, fpMB int, writeFrac float64) Workload {
	return Workload{
		Name: name, Suite: "gap",
		FootprintBytes: uint64(fpMB) * mb,
		MemFrac:        0.45, WriteFrac: writeFrac,
		SeqProb: 0.12, SeqRun: 8,
		HotFrac: 0.01, HotProb: 0.30,
		Mix: graphValues,
	}
}

// table lists every single-program workload (mixes are separate).
var table = []Workload{
	// --- SPEC2006, memory-intensive (Table II regime) ---
	streaming("libquantum06", "spec06", 96, veryCompressible, 0.20),
	streaming("lbm06", "spec06", 384, arrayCompressible, 0.45),
	streaming("milc06", "spec06", 512, fpMixed, 0.35),
	streaming("GemsFDTD06", "spec06", 640, arrayCompressible, 0.40),
	streaming("leslie3d06", "spec06", 128, fpMixed, 0.35),
	irregular("mcf06", "spec06", 1536, pointerHeavy, 0.25, 0.55),
	irregular("omnetpp06", "spec06", 160, pointerHeavy, 0.35, 0.70),
	streaming("soplex06", "spec06", 256, arrayCompressible, 0.25),
	streaming("bwaves06", "spec06", 768, fpMixed, 0.30),
	streaming("zeusmp06", "spec06", 512, arrayCompressible, 0.35),
	streaming("sphinx306", "spec06", 48, veryCompressible, 0.15),
	irregular("xalancbmk06", "spec06", 192, pointerHeavy, 0.30, 0.80),
	streaming("wrf06", "spec06", 672, fpMixed, 0.35),
	// --- SPEC2006, cache-resident / low-MPKI ---
	cacheResident("perlbench06", "spec06", 24, pointerHeavy),
	cacheResident("bzip206", "spec06", 32, veryCompressible),
	cacheResident("gcc06", "spec06", 28, pointerHeavy),
	cacheResident("gobmk06", "spec06", 12, veryCompressible),
	cacheResident("hmmer06", "spec06", 8, arrayCompressible),
	cacheResident("sjeng06", "spec06", 10, incompressible),
	cacheResident("h264ref06", "spec06", 16, fpMixed),
	cacheResident("astar06", "spec06", 20, pointerHeavy),
	// --- SPEC2017, memory-intensive ---
	streaming("lbm17", "spec17", 416, arrayCompressible, 0.45),
	irregular("mcf17", "spec17", 1024, pointerHeavy, 0.25, 0.55),
	streaming("cam417", "spec17", 896, fpMixed, 0.35),
	streaming("fotonik3d17", "spec17", 640, arrayCompressible, 0.35),
	streaming("roms17", "spec17", 736, fpMixed, 0.35),
	streaming("bwaves17", "spec17", 768, arrayCompressible, 0.30),
	irregular("xz17", "spec17", 256, incompressible, 0.35, 0.50),
	irregular("omnetpp17", "spec17", 192, pointerHeavy, 0.35, 0.70),
	// --- SPEC2017, cache-resident / low-MPKI ---
	cacheResident("perlbench17", "spec17", 24, pointerHeavy),
	cacheResident("gcc17", "spec17", 32, pointerHeavy),
	cacheResident("deepsjeng17", "spec17", 12, incompressible),
	cacheResident("leela17", "spec17", 8, veryCompressible),
	cacheResident("exchange217", "spec17", 4, veryCompressible),
	cacheResident("x26417", "spec17", 24, fpMixed),
	cacheResident("imagick17", "spec17", 20, arrayCompressible),
	cacheResident("nab17", "spec17", 16, fpMixed),
	cacheResident("povray17", "spec17", 8, fpMixed),
	cacheResident("blender17", "spec17", 28, fpMixed),
	cacheResident("cactuBSSN17", "spec17", 24, arrayCompressible),
	cacheResident("namd17", "spec17", 16, fpMixed),
	cacheResident("parest17", "spec17", 20, arrayCompressible),
	// --- GAP graph analytics: kernels x {twitter, web, sk-2005, road} ---
	graph("bfs-twitter", 1024, 0.20),
	graph("pr-twitter", 1280, 0.35),
	graph("cc-twitter", 1024, 0.30),
	graph("sssp-twitter", 1152, 0.30),
	graph("bfs-web", 768, 0.20),
	graph("pr-web", 896, 0.35),
	graph("cc-web", 768, 0.30),
	graph("sssp-web", 832, 0.30),
	graph("bfs-sk", 1408, 0.20),
	graph("pr-sk", 1536, 0.35),
	graph("cc-sk", 1408, 0.30),
	graph("sssp-sk", 1472, 0.30),
	graph("bfs-road", 256, 0.20),
	graph("pr-road", 320, 0.35),
	graph("cc-road", 256, 0.30),
	graph("sssp-road", 288, 0.30),
}

// Mix is a multiprogrammed workload: one named workload per core.
type Mix struct {
	Name  string
	Parts []string // length == core count (8)
}

// mixes pair memory-intensive SPEC workloads, as the paper's six random
// SPEC mixes do.
var mixes = []Mix{
	{"mix1", []string{"mcf06", "lbm06", "libquantum06", "milc06", "mcf06", "lbm06", "libquantum06", "milc06"}},
	{"mix2", []string{"soplex06", "GemsFDTD06", "omnetpp06", "bwaves06", "soplex06", "GemsFDTD06", "omnetpp06", "bwaves06"}},
	{"mix3", []string{"lbm17", "mcf17", "fotonik3d17", "roms17", "lbm17", "mcf17", "fotonik3d17", "roms17"}},
	{"mix4", []string{"libquantum06", "xz17", "leslie3d06", "cam417", "libquantum06", "xz17", "leslie3d06", "cam417"}},
	{"mix5", []string{"mcf06", "bwaves17", "sphinx306", "omnetpp17", "mcf06", "bwaves17", "sphinx306", "omnetpp17"}},
	{"mix6", []string{"zeusmp06", "xalancbmk06", "lbm17", "soplex06", "zeusmp06", "xalancbmk06", "lbm17", "soplex06"}},
}

var byName = func() map[string]*Workload {
	m := make(map[string]*Workload, len(table))
	for i := range table {
		m[table[i].Name] = &table[i]
	}
	return m
}()

// Lookup returns a named workload.
func Lookup(name string) (*Workload, error) {
	w, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown name %q", name)
	}
	return w, nil
}

// All returns every single-program workload, in table order.
func All() []*Workload {
	out := make([]*Workload, len(table))
	for i := range table {
		out[i] = &table[i]
	}
	return out
}

// Suite returns the workloads of one suite.
func Suite(name string) []*Workload {
	var out []*Workload
	for i := range table {
		if table[i].Suite == name {
			out = append(out, &table[i])
		}
	}
	return out
}

// HighMPKI returns the paper's detailed-evaluation set: the
// memory-intensive SPEC workloads (streaming/irregular, not
// cache-resident). Determined by parameterization, verified by measurement
// in BenchmarkTableII.
func HighMPKI() []*Workload {
	var out []*Workload
	for i := range table {
		w := &table[i]
		if w.Suite == "gap" {
			continue
		}
		if w.HotProb < 0.9 { // cacheResident bundles use HotProb 0.95
			out = append(out, w)
		}
	}
	return out
}

// Graph returns the GAP-like workloads.
func Graph() []*Workload { return Suite("gap") }

// Mixes returns the multiprogrammed mixes.
func Mixes() []Mix {
	out := make([]Mix, len(mixes))
	copy(out, mixes)
	return out
}

// LookupMix returns a named mix.
func LookupMix(name string) (Mix, error) {
	for _, m := range mixes {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}

// Names returns every workload and mix name, sorted (CLI help).
func Names() []string {
	var out []string
	for i := range table {
		out = append(out, table[i].Name)
	}
	for _, m := range mixes {
		out = append(out, m.Name)
	}
	sort.Strings(out)
	return out
}
