package workload

import "encoding/binary"

// ValueKind selects the data-value synthesizer for a page. Kinds map to the
// patterns FPC/BDI were designed around, so the *measured* compressibility
// of a workload (Figure 6) follows from its declared mix, not from an
// assumed compression ratio.
type ValueKind int

// Value kinds, roughly from most to least compressible.
const (
	KindZero     ValueKind = iota // zero-dominated lines (calloc'd state)
	KindSmallInt                  // 32-bit integers of small magnitude
	KindDelta8                    // 64-bit array of base+small-delta values
	KindPointer                   // 48-bit pointers sharing high bits
	KindFP                        // doubles; half the lines have truncated mantissas
	KindRandom                    // incompressible
	numKinds
)

// ValueMix is a weighted distribution of value kinds; pages draw their kind
// from it by address hash, so a page's compressibility is stable over time.
type ValueMix []struct {
	Kind   ValueKind
	Weight int
}

func (m ValueMix) total() int {
	t := 0
	for _, e := range m {
		t += e.Weight
	}
	return t
}

// kindFor picks the kind of a virtual page deterministically.
func (m ValueMix) kindFor(vpage, seed uint64) ValueKind {
	r := int(mix64(vpage^seed*0x94D049BB133111EB) % uint64(m.total()))
	for _, e := range m {
		r -= e.Weight
		if r < 0 {
			return e.Kind
		}
	}
	return m[len(m)-1].Kind
}

// mix64 is a SplitMix64 finalizer used for all deterministic synthesis.
func mix64(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xBF58476D1CE4E5B9
	v ^= v >> 27
	v *= 0x94D049BB133111EB
	v ^= v >> 31
	return v
}

// synthLine writes the contents of virtual line vline at mutation version
// into buf (64 bytes). Deterministic in (kind, vline, version, seed).
func synthLine(kind ValueKind, vline uint64, version uint32, seed uint64, buf []byte) {
	h := mix64(vline*0x9E3779B97F4A7C15 ^ seed ^ uint64(version)<<48)
	switch kind {
	case KindZero:
		for i := range buf {
			buf[i] = 0
		}
		// A couple of live small counters so the page isn't trivially
		// static; stays highly compressible.
		binary.LittleEndian.PutUint32(buf[0:], uint32(version)%64)
		binary.LittleEndian.PutUint32(buf[4:], uint32(h%16))
	case KindSmallInt:
		for i := 0; i < 16; i++ {
			h = mix64(h + uint64(i))
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(h%251)-125)
		}
	case KindDelta8:
		base := mix64(vline>>3^seed) | 1<<40 // large shared base per line
		for i := 0; i < 8; i++ {
			h = mix64(h + uint64(i))
			binary.LittleEndian.PutUint64(buf[i*8:], base+uint64(h%120)+uint64(version))
		}
	case KindPointer:
		region := uint64(0x7F00_0000_0000) | (mix64(vline>>6^seed)&0xFFFF)<<24
		for i := 0; i < 8; i++ {
			h = mix64(h + uint64(i))
			binary.LittleEndian.PutUint64(buf[i*8:], region|h&0xFF_FFF8)
		}
	case KindFP:
		trunc := mix64(vline^seed)&1 == 0 // half the lines: truncated mantissa
		for i := 0; i < 8; i++ {
			h = mix64(h + uint64(i))
			v := 0x3FF0_0000_0000_0000 | h&0x000F_FFFF_FFFF_FFFF
			if trunc {
				v &^= 0x0000_000F_FFFF_FFFF // low mantissa zeroed
			}
			binary.LittleEndian.PutUint64(buf[i*8:], v)
		}
	default: // KindRandom
		for i := 0; i < 8; i++ {
			h = mix64(h + uint64(i))
			binary.LittleEndian.PutUint64(buf[i*8:], h)
		}
	}
}
