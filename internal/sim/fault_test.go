package sim

import (
	"context"
	"testing"

	"ptmc/internal/fault"
)

// TestFaultCampaignNoSilent is the tentpole property: across a mixed
// campaign every injected fault is detected or harmless — never silent.
func TestFaultCampaignNoSilent(t *testing.T) {
	rep, err := RunFaultCampaign(context.Background(), FaultConfig{
		Trials: 60, OpsPerTrial: 128, Lines: 1024, LLCBytes: 32 << 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Silent != 0 {
		t.Fatalf("silent corruptions: %d\n%s", rep.Silent, rep.Summary())
	}
	if got := len(rep.Trials); got == 0 {
		t.Fatal("campaign ran zero trials")
	}
	if rep.DetectedCounter+rep.DetectedVerify == 0 {
		t.Fatalf("campaign never detected anything — detectors are dead\n%s", rep.Summary())
	}
	if rep.Verified == 0 {
		t.Fatal("final verification pass covered zero lines")
	}
}

// TestFaultCampaignEveryKind runs a focused campaign per fault kind so a
// detector regression is attributed to the kind that slipped through.
func TestFaultCampaignEveryKind(t *testing.T) {
	for _, k := range fault.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			rep, err := RunFaultCampaign(context.Background(), FaultConfig{
				Trials: 12, OpsPerTrial: 96, Lines: 512, LLCBytes: 16 << 10,
				Seed: 3, Kinds: []fault.Kind{k},
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Silent != 0 {
				t.Fatalf("silent corruptions for %v: %d\n%s", k, rep.Silent, rep.Summary())
			}
		})
	}
}

// TestFaultCampaignDeterminism: same seed, same campaign — trial for trial.
func TestFaultCampaignDeterminism(t *testing.T) {
	run := func() *FaultReport {
		rep, err := RunFaultCampaign(context.Background(), FaultConfig{
			Trials: 20, OpsPerTrial: 96, Lines: 512, LLCBytes: 16 << 10, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i] != b.Trials[i] {
			t.Fatalf("trial %d differs: %+v vs %+v", i, a.Trials[i], b.Trials[i])
		}
	}
}

// TestFaultCampaignDynamic: the campaign holds against Dynamic-PTMC too
// (gating must not open a detection hole).
func TestFaultCampaignDynamic(t *testing.T) {
	rep, err := RunFaultCampaign(context.Background(), FaultConfig{
		Trials: 30, OpsPerTrial: 128, Lines: 1024, LLCBytes: 32 << 10,
		Seed: 5, Dynamic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Silent != 0 {
		t.Fatalf("silent corruptions under dynamic: %d\n%s", rep.Silent, rep.Summary())
	}
}

// TestFaultCampaignCancel: a cancelled context stops the campaign with a
// partial report instead of running to completion.
func TestFaultCampaignCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunFaultCampaign(ctx, FaultConfig{Trials: 50})
	if err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
	if len(rep.Trials) != 0 {
		t.Fatalf("cancelled-before-start campaign ran %d trials", len(rep.Trials))
	}
}

// TestNoHurtAdversarial is the paper's no-hurt claim under attack: on a
// workload engineered so compression only costs bandwidth, Dynamic-PTMC
// must end up no worse than static PTMC and recognizably disable
// compression.
func TestNoHurtAdversarial(t *testing.T) {
	cfg := Default()
	cfg.Cores = 2
	cfg.L3Bytes = 256 << 10
	cfg.L3Assoc = 8
	cfg.SampleFrac = 0.05
	cfg.WarmupInstr = 120_000
	cfg.MeasureInstr = 120_000
	rep, err := RunNoHurt(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.StaticBW <= 1.0 {
		t.Skipf("workload did not hurt static PTMC (bw=%.3f); attack has no teeth here", rep.StaticBW)
	}
	if !rep.CompressionDisabled {
		t.Errorf("dynamic-PTMC never disabled compression under attack (static bw=%.3fx, dynamic bw=%.3fx)",
			rep.StaticBW, rep.DynamicBW)
	}
	if rep.DynamicBW > rep.StaticBW+0.01 {
		t.Errorf("dynamic-PTMC hurt more than static under attack: %.3fx vs %.3fx",
			rep.DynamicBW, rep.StaticBW)
	}
	// The hard no-hurt bound: within 8% of the uncompressed baseline.
	if rep.DynamicBW > 1.08 {
		t.Errorf("dynamic-PTMC bandwidth %.3fx exceeds the no-hurt bound 1.08x", rep.DynamicBW)
	}
}
