package sim

import (
	"context"
	"fmt"
	"strings"

	"ptmc/internal/cache"
	"ptmc/internal/dram"
	"ptmc/internal/energy"
	"ptmc/internal/exec"
	"ptmc/internal/memctrl"
	"ptmc/internal/obs"
	"ptmc/internal/stats"
)

// Result holds the measured-window outcome of one run.
type Result struct {
	Workload string
	Scheme   string
	Cores    int

	Instructions int64 // total retired across cores (measured window)
	Cycles       int64 // slowest core's finish cycle
	PerCoreIPC   []float64

	L3   cache.Stats
	Mem  memctrl.Stats
	DRAM dram.Stats

	MPKI           float64
	FootprintBytes uint64
	Energy         energy.Breakdown

	LLPAccuracy float64
	HasLLP      bool

	MCacheHitRate float64
	HasMCache     bool

	// Observability output (nil/empty unless enabled in Config). Metrics
	// is the snapshot time series (Config.MetricsInterval); TraceEvents is
	// the recorded event stream (Config.Trace). Both are pure data, so a
	// Result is identical whether the run executed serially or under
	// CompareParallel.
	Metrics      *obs.MetricsDump
	TraceEvents  []obs.Event
	TraceDropped uint64
}

// IPC returns the aggregate instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// WeightedSpeedupOver computes the paper's aggregate metric against a
// baseline run of the same workload.
func (r *Result) WeightedSpeedupOver(base *Result) float64 {
	return stats.WeightedSpeedup(r.PerCoreIPC, base.PerCoreIPC)
}

// BandwidthOver returns this run's total DRAM bursts normalized to a
// baseline run (Figures 4 and 14 are stacks of per-category versions).
func (r *Result) BandwidthOver(base *Result) float64 {
	return stats.Ratio(float64(r.Mem.Total()), float64(base.Mem.Total()))
}

// String summarizes the run.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-13s IPC=%.3f MPKI=%.1f L3hit=%.1f%%",
		r.Workload, r.Scheme, r.IPC(), r.MPKI, 100*r.L3.HitRate())
	fmt.Fprintf(&b, " dramR=%d dramW=%d", r.DRAM.Reads, r.DRAM.Writes)
	if r.HasLLP {
		fmt.Fprintf(&b, " llp=%.1f%%", 100*r.LLPAccuracy)
	}
	if r.HasMCache {
		fmt.Fprintf(&b, " mcache=%.1f%%", 100*r.MCacheHitRate)
	}
	if r.Mem.IntegrityErrs > 0 {
		fmt.Fprintf(&b, " INTEGRITY-ERRORS=%d", r.Mem.IntegrityErrs)
	}
	if d := r.Mem.Degradations(); d > 0 {
		fmt.Fprintf(&b, " DEGRADED=%d", d)
	}
	return b.String()
}

// Run is the one-call entry: build a simulator from cfg and run it.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: a done context aborts the simulation
// at its next cycle checkpoint (per-point timeouts in cmd/sweep, campaign
// drivers).
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.RunContext(ctx)
}

// Compare runs the same workload/seed under several schemes, returning
// results keyed by scheme name. Schemes run concurrently up to GOMAXPROCS;
// each simulation is fully independent (own stores, own seeded streams), so
// the per-scheme results are identical to a serial run.
func Compare(cfg Config, schemes ...string) (map[string]*Result, error) {
	return CompareParallel(context.Background(), 0, cfg, schemes...)
}

// CompareParallel is Compare with an explicit worker bound (<= 0 selects
// runtime.GOMAXPROCS(0)) and cancellation: the first failure cancels
// schemes still waiting for a worker, and the earliest-listed failure is
// the one returned, regardless of completion order.
func CompareParallel(ctx context.Context, parallel int, cfg Config, schemes ...string) (map[string]*Result, error) {
	results := make([]*Result, len(schemes))
	pool := exec.NewPool(parallel)
	err := pool.ForEach(ctx, len(schemes), func(ctx context.Context, i int) error {
		c := cfg
		c.Scheme = schemes[i]
		r, err := RunContext(ctx, c)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", cfg.Workload, schemes[i], err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Result, len(schemes))
	for i, scheme := range schemes {
		out[scheme] = results[i]
	}
	return out, nil
}
