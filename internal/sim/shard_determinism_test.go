package sim

import (
	"reflect"
	"testing"
)

// shardVariants are the shard counts the determinism suite compares: the
// serial reference loop (0), the smallest engine (2), and every wider
// configuration the benchmark trajectory ships (4, 8).
var shardVariants = []int{0, 2, 4, 8}

// TestShardDeterminismResults is the engine's core invariant: the epoch
// engine is purely a performance knob. For every scheme — all seven have
// engine-side fast paths since the comparator schemes (table-tmc, memzip,
// ideal) gained ShardIniter support — the complete Result — cycles,
// per-core IPC, every cache/controller/DRAM counter, energy, and the obs
// metrics time series — must be identical at any shard count to the serial
// reference loop's.
func TestShardDeterminismResults(t *testing.T) {
	for _, scheme := range Schemes() {
		var results []*Result
		for _, shards := range shardVariants {
			cfg := Default()
			cfg.Workload = "lbm06"
			cfg.Scheme = scheme
			cfg.WarmupInstr = 20_000
			cfg.MeasureInstr = 20_000
			cfg.MetricsInterval = 50_000
			cfg.Shards = shards
			r, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", scheme, shards, err)
			}
			results = append(results, r)
		}
		for i := 1; i < len(results); i++ {
			if !reflect.DeepEqual(results[0], results[i]) {
				t.Errorf("%s: result diverges at shards=%d vs serial", scheme, shardVariants[i])
				if results[0].String() != results[i].String() {
					t.Errorf("  report:\n  %s\n  vs\n  %s", results[0].String(), results[i].String())
				}
				if !reflect.DeepEqual(results[0].DRAM, results[i].DRAM) {
					t.Errorf("  DRAM stats: %+v\n  vs %+v", results[0].DRAM, results[i].DRAM)
				}
				if !reflect.DeepEqual(results[0].Mem, results[i].Mem) {
					t.Errorf("  Mem stats: %+v\n  vs %+v", results[0].Mem, results[i].Mem)
				}
				if !reflect.DeepEqual(results[0].Metrics, results[i].Metrics) {
					t.Errorf("  obs metrics snapshots diverge")
				}
			}
		}
	}
}

// TestEventDeterminismMatrix is the discrete-event engine's acceptance
// test, in mgpusim's pattern: the same seed run twice must reach the
// identical end cycle and a reflect.DeepEqual Result, and every variant
// must match the serial reference loop byte-for-byte. The matrix covers
// all seven schemes × event engine on/off × shards 0/2/4/8, so the three
// run loops (serial, epoch, event) and their compositions are pinned
// against each other. The run-twice leg is deliberate: DeepEqual against
// the serial reference catches cross-mode divergence, while run-twice
// catches nondeterminism that happens to diverge identically in both
// modes (map iteration, uninitialized state).
func TestEventDeterminismMatrix(t *testing.T) {
	for _, scheme := range Schemes() {
		var ref *Result
		for _, event := range []bool{false, true} {
			for _, shards := range shardVariants {
				run := func() *Result {
					cfg := Default()
					cfg.Workload = "lbm06"
					cfg.Scheme = scheme
					cfg.WarmupInstr = 10_000
					cfg.MeasureInstr = 10_000
					cfg.MetricsInterval = 25_000
					cfg.Shards = shards
					cfg.EventDriven = event
					r, err := Run(cfg)
					if err != nil {
						t.Fatalf("%s event=%t shards=%d: %v", scheme, event, shards, err)
					}
					return r
				}
				r1 := run()
				r2 := run()
				if r1.Cycles != r2.Cycles {
					t.Errorf("%s event=%t shards=%d: end cycle differs across identical runs: %d vs %d",
						scheme, event, shards, r1.Cycles, r2.Cycles)
				}
				if !reflect.DeepEqual(r1, r2) {
					t.Errorf("%s event=%t shards=%d: result differs across identical runs",
						scheme, event, shards)
				}
				if ref == nil {
					ref = r1 // event=false, shards=0: the serial reference
					continue
				}
				if r1.Cycles != ref.Cycles {
					t.Errorf("%s event=%t shards=%d: end cycle %d diverges from serial %d",
						scheme, event, shards, r1.Cycles, ref.Cycles)
				}
				if !reflect.DeepEqual(ref, r1) {
					t.Errorf("%s event=%t shards=%d: result diverges from serial reference",
						scheme, event, shards)
					if ref.String() != r1.String() {
						t.Errorf("  report:\n  %s\n  vs\n  %s", ref.String(), r1.String())
					}
					if !reflect.DeepEqual(ref.DRAM, r1.DRAM) {
						t.Errorf("  DRAM stats: %+v\n  vs %+v", ref.DRAM, r1.DRAM)
					}
					if !reflect.DeepEqual(ref.Mem, r1.Mem) {
						t.Errorf("  Mem stats: %+v\n  vs %+v", ref.Mem, r1.Mem)
					}
					if !reflect.DeepEqual(ref.Metrics, r1.Metrics) {
						t.Errorf("  obs metrics snapshots diverge")
					}
				}
			}
		}
	}
}

// TestShardDeterminismMix covers the multiprogrammed case the benchmark
// trajectory is measured on: a heterogeneous mix keeps every core's stream
// distinct, so any ordering leak between shards (page-init collisions,
// verify drains, idle-channel accounting) would surface here.
func TestShardDeterminismMix(t *testing.T) {
	var results []*Result
	for _, shards := range shardVariants {
		cfg := Default()
		cfg.Workload = "mix1"
		cfg.Scheme = SchemeDynamicPTMC
		cfg.WarmupInstr = 15_000
		cfg.MeasureInstr = 15_000
		cfg.Shards = shards
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		results = append(results, r)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("mix1 result diverges at shards=%d vs serial:\n%s\nvs\n%s",
				shardVariants[i], results[0].String(), results[i].String())
		}
	}
}
