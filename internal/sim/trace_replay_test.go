package sim

import (
	"bytes"
	"testing"

	"ptmc/internal/trace"
	"ptmc/internal/workload"
)

// TestTraceReplayThroughSimulator records a workload's access stream, then
// replays it through the full simulator: the replay must be deterministic
// and integrity-clean under PTMC.
func TestTraceReplayThroughSimulator(t *testing.T) {
	wl, err := workload.Lookup("libquantum06")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, wl.Mix, 5)
	if err != nil {
		t.Fatal(err)
	}
	cap := trace.NewCapture(wl.NewStream(5), w)
	for i := 0; i < 60_000; i++ {
		cap.Next()
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	run := func() *Result {
		cfg := Default()
		cfg.Workload = "trace-test"
		cfg.Scheme = SchemePTMC
		cfg.Cores = 2
		cfg.L3Bytes = 1 << 20
		cfg.WarmupInstr = 20_000
		cfg.MeasureInstr = 50_000
		cfg.Sources = func(core int, seed int64) (workload.Source, error) {
			r, err := trace.NewReader(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			rep, err := trace.NewReplay(r)
			if err != nil {
				return nil, err
			}
			for i := 0; i < core*rep.Len()/2; i++ {
				rep.Next() // stagger cores
			}
			return rep, nil
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	r1, r2 := run(), run()
	if r1.Mem.IntegrityErrs != 0 {
		t.Fatalf("integrity errors: %d", r1.Mem.IntegrityErrs)
	}
	if r1.Cycles != r2.Cycles || r1.DRAM.Reads != r2.DRAM.Reads {
		t.Error("trace replay must be deterministic")
	}
	if r1.DRAM.Reads == 0 {
		t.Error("replay produced no memory traffic")
	}
}
