package sim

// Epoch-barrier cancellation: the daemon's graceful drain (internal/server)
// relies on a cancelled context stopping a live simulation at its next
// checkpoint — every 4096 cycles in the serial loop, every epoch in the
// shard engine — with the controller's compressed image left consistent
// and no goroutine left behind. These tests pin that contract at the
// simulator layer for the serial path (Shards 0) and the epoch engine
// (Shards 2 and 8).

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"ptmc/internal/mem"
	"ptmc/internal/memctrl"
)

// waitGoroutinesSettle polls until the goroutine count returns to (near)
// the baseline, failing if shard workers outlive the cancelled run.
func waitGoroutinesSettle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the scheduler
		n := runtime.NumGoroutine()
		if n <= baseline+1 { // +1: runtime housekeeping may lag
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines never settled: %d now vs %d baseline", n, baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCancellationAtEpochBarriers(t *testing.T) {
	for _, shards := range []int{0, 2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			baseline := runtime.NumGoroutine()

			cfg := quickCfg("lbm06", SchemeDynamicPTMC)
			cfg.WarmupInstr = 0
			// Far more work than can finish before the cancel lands: the
			// run must die at a barrier, not at the finish line.
			cfg.MeasureInstr = 50_000_000
			cfg.Shards = shards
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, rerr := s.RunContext(ctx)
				done <- rerr
			}()
			time.Sleep(10 * time.Millisecond) // let the run get mid-flight
			cancel()

			select {
			case rerr := <-done:
				if !errors.Is(rerr, context.Canceled) {
					t.Fatalf("RunContext returned %v, want context.Canceled", rerr)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("RunContext did not return within 5s of cancellation")
			}

			// No leaked shard workers: the engine's fanout goroutines must
			// be gone, not parked mid-epoch.
			waitGoroutinesSettle(t, baseline)

			// No store corruption: the controller's compressed image still
			// verifies end to end. Lines resident in the (inclusive) LLC are
			// allowed to be stale in memory — the standard verifier oracle.
			p, ok := s.Controller().(*memctrl.PTMC)
			if !ok {
				t.Fatalf("controller is %T, want *memctrl.PTMC", s.Controller())
			}
			inLLC := func(a mem.LineAddr) bool {
				_, in := s.l3.Probe(a)
				return in
			}
			if _, verr := p.VerifyImage(inLLC); verr != nil {
				t.Fatalf("image corrupt after mid-run cancellation: %v", verr)
			}
		})
	}
}

// TestCancellationDuringWarmup checks the warmup leg propagates ctx errors
// through its wrap (the daemon classifies on errors.Is, not string match).
func TestCancellationDuringWarmup(t *testing.T) {
	cfg := quickCfg("mcf06", SchemeUncompressed)
	cfg.WarmupInstr = 50_000_000
	cfg.MeasureInstr = 1000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, rerr := s.RunContext(ctx)
		done <- rerr
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case rerr := <-done:
		if !errors.Is(rerr, context.Canceled) {
			t.Fatalf("warmup cancellation returned %v, want context.Canceled", rerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("warmup cancellation never returned")
	}
}

// TestCancellationAlreadyDone: a pre-cancelled context aborts before any
// cycle executes, for both loop implementations.
func TestCancellationAlreadyDone(t *testing.T) {
	for _, shards := range []int{0, 2} {
		cfg := quickCfg("lbm06", SchemePTMC)
		cfg.Shards = shards
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d: pre-cancelled run returned %v", shards, err)
		}
	}
}
