package sim

import (
	"context"
	"fmt"
	"strings"

	"ptmc/internal/cache"
	"ptmc/internal/dram"
	"ptmc/internal/fault"
	"ptmc/internal/mem"
	"ptmc/internal/memctrl"
	"ptmc/internal/obs"
	"ptmc/internal/workload"
)

// This file is the fault-campaign driver: it attacks a live PTMC controller
// with the injectors from internal/fault and checks the robustness claim the
// rest of the repo assumes — every injected fault is either *detected* (a
// degradation counter moves, or VerifyImage names the corruption with a
// typed error) or *harmless* (the image still verifies end to end). A trial
// that is neither is a silent corruption, the one outcome that must never
// occur.

// FaultOutcome classifies one campaign trial.
type FaultOutcome int

const (
	// FaultDetectedCounter: a degradation/integrity counter moved after the
	// injection — the controller noticed at access time.
	FaultDetectedCounter FaultOutcome = iota
	// FaultDetectedVerify: counters stayed quiet but VerifyImage returned a
	// typed error naming the corruption — the scrub-time detector caught it.
	FaultDetectedVerify
	// FaultHarmless: counters quiet and the image verifies; the fault was
	// overwritten, landed on dead state, or is benign by design (LLP
	// poisoning costs bandwidth, never correctness).
	FaultHarmless
	// FaultSilent: the counters stayed quiet, VerifyImage passed, and after
	// flushing the LLC and re-reading every live line the image *still*
	// fails verification — the verifier and the read path disagree about
	// what memory holds. Zero by design; any occurrence is a soundness bug.
	FaultSilent
)

var faultOutcomeNames = [...]string{
	FaultDetectedCounter: "detected-counter",
	FaultDetectedVerify:  "detected-verify",
	FaultHarmless:        "harmless",
	FaultSilent:          "SILENT",
}

func (o FaultOutcome) String() string {
	if o < 0 || int(o) >= len(faultOutcomeNames) {
		return fmt.Sprintf("outcome(%d)", int(o))
	}
	return faultOutcomeNames[o]
}

// Detected reports whether the trial outcome counts as a detection.
func (o FaultOutcome) Detected() bool {
	return o == FaultDetectedCounter || o == FaultDetectedVerify
}

// FaultTrial records one injection and its adjudication.
type FaultTrial struct {
	Trial     int
	Injection fault.Injection
	Outcome   FaultOutcome
	Detector  string // which counter or typed error detected it ("" if harmless)
}

// FaultConfig parameterizes a campaign. The zero value selects usable
// defaults (see setDefaults).
type FaultConfig struct {
	Trials      int          // injections to run (default 100)
	OpsPerTrial int          // traffic operations around each injection (default 256)
	Lines       int          // footprint in lines (default 2048 = 128 KB)
	LLCBytes    int          // campaign LLC size (default 64 KB — smaller than the footprint so evictions happen)
	Seed        int64        // RNG seed; (Seed, Trials) replays exactly (default 1)
	Kinds       []fault.Kind // fault kinds to draw from (default: all)
	Dynamic     bool         // attack Dynamic-PTMC instead of static PTMC

	// Observability (internal/obs). Trace attaches an event tracer to the
	// controller under attack — scrubs, re-keys, evictions, and DRAM traffic
	// land in FaultReport.TraceEvents (TraceCapacity bounds the buffer; 0 =
	// obs.DefaultTraceCapacity). Metrics snapshots the campaign's detection
	// counters after every adjudicated trial, one window per trial, into
	// FaultReport.Metrics. Both default off and cost nothing when off.
	Trace         bool
	TraceCapacity int
	Metrics       bool
}

func (c *FaultConfig) setDefaults() {
	if c.Trials == 0 {
		c.Trials = 100
	}
	if c.OpsPerTrial == 0 {
		c.OpsPerTrial = 256
	}
	if c.Lines == 0 {
		c.Lines = 2048
	}
	if c.LLCBytes == 0 {
		c.LLCBytes = 64 << 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Kinds) == 0 {
		c.Kinds = fault.Kinds()
	}
}

// FaultReport is the campaign result.
type FaultReport struct {
	Config FaultConfig
	Trials []FaultTrial

	DetectedCounter int
	DetectedVerify  int
	Harmless        int
	Silent          int

	Stats    memctrl.Stats // controller counters at campaign end
	Verified int           // lines verified by the final VerifyImage pass

	// Observability output (nil/empty unless enabled in FaultConfig): one
	// metrics window per adjudicated trial, plus the controller event
	// stream recorded during the campaign.
	Metrics      *obs.MetricsDump
	TraceEvents  []obs.Event
	TraceDropped uint64
}

// Summary renders the per-kind outcome table.
func (r *FaultReport) Summary() string {
	type tally struct{ counter, verify, harmless, silent int }
	byKind := map[fault.Kind]*tally{}
	for _, t := range r.Trials {
		k := byKind[t.Injection.Kind]
		if k == nil {
			k = &tally{}
			byKind[t.Injection.Kind] = k
		}
		switch t.Outcome {
		case FaultDetectedCounter:
			k.counter++
		case FaultDetectedVerify:
			k.verify++
		case FaultHarmless:
			k.harmless++
		case FaultSilent:
			k.silent++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %9s %9s %9s %7s\n", "kind", "counter", "verify", "harmless", "SILENT")
	for _, kind := range fault.Kinds() {
		k := byKind[kind]
		if k == nil {
			continue
		}
		fmt.Fprintf(&b, "%-16s %9d %9d %9d %7d\n",
			kind, k.counter, k.verify, k.harmless, k.silent)
	}
	fmt.Fprintf(&b, "%-16s %9d %9d %9d %7d\n", "total",
		r.DetectedCounter, r.DetectedVerify, r.Harmless, r.Silent)
	return b.String()
}

// campaignLLC adapts a real cache.Cache to the controller's LLC interface
// and routes victims back into the controller — the same wiring the full
// simulator uses, minus the private levels.
type campaignLLC struct {
	c    *cache.Cache
	ctrl memctrl.Controller
	now  *int64
}

func (l *campaignLLC) Probe(a mem.LineAddr) (*cache.Entry, bool) { return l.c.Probe(a) }
func (l *campaignLLC) SetIndex(a mem.LineAddr) int               { return l.c.SetIndex(a) }
func (l *campaignLLC) NumSets() int                              { return l.c.NumSets() }
func (l *campaignLLC) Drop(a mem.LineAddr) (cache.Entry, bool)   { return l.c.Invalidate(a) }

func (l *campaignLLC) InstallFill(core int, a mem.LineAddr, e cache.Entry, now int64) {
	victim, _ := l.c.Install(a, e)
	if victim.Valid {
		l.ctrl.Evict(int(victim.Core), victim, now)
	}
}

// campaignRig drives one controller directly (no cores, no cycle loop):
// reads and write-allocates through the LLC, with bounded drains so a
// wedged controller surfaces as an error instead of a hang.
type campaignRig struct {
	img, arch *mem.Store
	llc       *campaignLLC
	ctrl      *memctrl.PTMC
	now       int64
}

func (r *campaignRig) drain() error {
	for i := 0; r.ctrl.Pending() > 0; i++ {
		r.now += 4
		r.ctrl.Tick(r.now)
		if i > 1_000_000 {
			return fmt.Errorf("fault campaign: controller did not drain (%d pending)", r.ctrl.Pending())
		}
	}
	return nil
}

func (r *campaignRig) inLLC(a mem.LineAddr) bool {
	_, ok := r.llc.c.Probe(a)
	return ok
}

// read models a demand load: first touch initializes the line, misses go
// through the controller (which detects faults via its integrity check).
func (r *campaignRig) read(a mem.LineAddr) error {
	if !r.arch.Touched(a) {
		r.arch.Write(a, make([]byte, mem.LineSize))
		r.ctrl.InitLine(a)
	}
	if r.inLLC(a) {
		return nil
	}
	done := false
	r.ctrl.Read(0, a, r.now, func(int64) { done = true })
	if err := r.drain(); err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("fault campaign: read of line %d never completed", a)
	}
	return nil
}

// write models a CPU store: write-allocate, then dirty the resident line.
func (r *campaignRig) write(a mem.LineAddr, val []byte) error {
	if !r.inLLC(a) {
		if err := r.read(a); err != nil {
			return err
		}
	}
	r.arch.Write(a, val)
	e, ok := r.llc.Probe(a)
	if !ok {
		return fmt.Errorf("fault campaign: line %d absent after write-allocate fill", a)
	}
	e.Dirty = true
	return nil
}

// traffic runs ops random operations: writes of compressible,
// incompressible, and marker-colliding data, reads, and forced evictions.
// All randomness comes from the injector's stream, so a campaign replays
// from its seed.
func (r *campaignRig) traffic(in *fault.Injector, lines, ops int) error {
	rng := in.Rand()
	for i := 0; i < ops; i++ {
		a := mem.LineAddr(rng.Intn(lines))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // store
			var val []byte
			switch v := rng.Intn(100); {
			case v < 55: // compressible: repeating word pattern
				val = make([]byte, mem.LineSize)
				tag := byte(rng.Intn(256))
				for j := 0; j < mem.LineSize; j += 4 {
					val[j] = tag
				}
			case v < 85: // incompressible
				val = make([]byte, mem.LineSize)
				rng.Read(val)
			default: // adversarial: data whose tail collides with a marker
				val = fault.CollidingLine(r.ctrl.Markers(), a, rng)
			}
			if err := r.write(a, val); err != nil {
				return err
			}
		case 5, 6, 7, 8: // load
			if err := r.read(a); err != nil {
				return err
			}
		default: // force an eviction through the controller
			if e, ok := r.llc.Drop(a); ok {
				r.ctrl.Evict(int(e.Core), e, r.now)
				if err := r.drain(); err != nil {
					return err
				}
			}
		}
	}
	return r.drain()
}

// flushAll evicts every resident line through the controller, making
// memory authoritative for the whole footprint. A fault that landed on the
// image under a clean resident line is latent — VerifyImage rightly treats
// memory as allowed-stale there — until the clean drop puts the corrupt
// image back in charge; flushing forces that moment inside the trial.
func (r *campaignRig) flushAll() error {
	for {
		var victim cache.Entry
		found := false
		r.llc.c.ForEachValid(func(e *cache.Entry) {
			if !found {
				victim, found = *e, true
			}
		})
		if !found {
			return nil
		}
		r.llc.Drop(victim.Tag)
		r.ctrl.Evict(int(victim.Core), victim, r.now)
		if err := r.drain(); err != nil {
			return err
		}
	}
}

// sweep reads every architecturally live line through the controller — an
// oracle independent of VerifyImage: any line the read path cannot serve
// correctly trips IntegrityErrs or a degradation counter.
func (r *campaignRig) sweep() error {
	batched := 0
	for _, a := range r.arch.TouchedLines() {
		if r.inLLC(a) {
			continue
		}
		r.ctrl.Read(0, a, r.now, func(int64) {})
		if batched++; batched >= 64 {
			if err := r.drain(); err != nil {
				return err
			}
			batched = 0
		}
	}
	return r.drain()
}

// detectionDelta names the first fault-only counter that moved between two
// stat snapshots. Traffic-driven counters (Inversions, ReKeys, mispredicts)
// are deliberately excluded: they move in healthy runs too, so they cannot
// adjudicate a trial.
func detectionDelta(before, after *memctrl.Stats) string {
	switch {
	case after.IntegrityErrs > before.IntegrityErrs:
		return "counter:integrity-errs"
	case after.UndecodableUnits > before.UndecodableUnits:
		return "counter:undecodable-units"
	case after.FallbackReads > before.FallbackReads:
		return "counter:fallback-reads"
	case after.LITSpills > before.LITSpills:
		return "counter:lit-spills"
	}
	return ""
}

// RunFaultCampaign interleaves random traffic with injected faults against
// a live PTMC controller and adjudicates every trial as detected, harmless,
// or silent. It returns an error only for infrastructure failures (a wedged
// controller, a repair that did not restore the invariant); silent
// corruptions are reported in the FaultReport for the caller to assert on.
func RunFaultCampaign(ctx context.Context, cfg FaultConfig) (*FaultReport, error) {
	cfg.setDefaults()

	d, err := dram.New(dram.DDR4())
	if err != nil {
		return nil, err
	}
	c, err := cache.New(cache.Config{SizeBytes: cfg.LLCBytes, Assoc: 8})
	if err != nil {
		return nil, err
	}
	llc := &campaignLLC{c: c}
	img, arch := mem.NewStore(), mem.NewStore()
	var opts []memctrl.PTMCOption
	if cfg.Dynamic {
		opts = append(opts, memctrl.WithDynamic(1, 0.05, false))
	}
	p := memctrl.NewPTMC(d, img, arch, llc, cfg.Seed, opts...)
	llc.ctrl = p

	r := &campaignRig{img: img, arch: arch, llc: llc, ctrl: p}
	llc.now = &r.now
	in := fault.NewInjector(cfg.Seed, fault.Target{
		Img: img, Markers: p.Markers(), LIT: p.LIT(), LLP: p.LLP(),
	})

	rep := &FaultReport{Config: cfg}

	var tr *obs.Tracer
	if cfg.Trace {
		tr = obs.NewTracer(cfg.TraceCapacity)
		p.SetTracer(tr)
	}
	var reg *obs.Registry
	if cfg.Metrics {
		reg = obs.NewRegistry()
		lbl := map[string]string{"campaign": "static"}
		if cfg.Dynamic {
			lbl["campaign"] = "dynamic"
		}
		st := p.Stats()
		reg.Counter("fault.trials", lbl, func() uint64 { return uint64(len(rep.Trials)) })
		reg.Counter("fault.detected_counter", lbl, func() uint64 { return uint64(rep.DetectedCounter) })
		reg.Counter("fault.detected_verify", lbl, func() uint64 { return uint64(rep.DetectedVerify) })
		reg.Counter("fault.harmless", lbl, func() uint64 { return uint64(rep.Harmless) })
		reg.Counter("fault.silent", lbl, func() uint64 { return uint64(rep.Silent) })
		reg.Counter("fault.integrity_errs", lbl, func() uint64 { return st.IntegrityErrs })
		reg.Counter("fault.undecodable_units", lbl, func() uint64 { return st.UndecodableUnits })
		reg.Counter("fault.fallback_reads", lbl, func() uint64 { return st.FallbackReads })
		reg.Counter("fault.lit_spills", lbl, func() uint64 { return st.LITSpills })
		reg.Counter("fault.rekeys", lbl, func() uint64 { return st.ReKeys })
		reg.Counter("fault.inversions", lbl, func() uint64 { return st.Inversions })
	}

	record := func(t FaultTrial) {
		rep.Trials = append(rep.Trials, t)
		switch t.Outcome {
		case FaultDetectedCounter:
			rep.DetectedCounter++
		case FaultDetectedVerify:
			rep.DetectedVerify++
		case FaultHarmless:
			rep.Harmless++
		case FaultSilent:
			rep.Silent++
		}
	}

	for trial := 0; trial < cfg.Trials; trial++ {
		if err := ctx.Err(); err != nil {
			return rep, fmt.Errorf("fault campaign: stopped after %d trials: %w", trial, err)
		}

		// Phase 1: healthy traffic builds up compressed state to attack.
		if err := r.traffic(in, cfg.Lines, cfg.OpsPerTrial); err != nil {
			return rep, err
		}
		before := *p.Stats()

		// Phase 2: inject one fault.
		kind := cfg.Kinds[in.Rand().Intn(len(cfg.Kinds))]
		inj, ok := in.Inject(kind, img.TouchedLines())
		if !ok {
			continue // nothing to attack yet (first trials of a tiny config)
		}

		// Phase 3: give the access-time detectors a chance — probe the
		// attacked group, then run more traffic and drain.
		for _, m := range faultGroup(inj.Addr) {
			if err := r.read(m); err != nil {
				return rep, err
			}
		}
		if err := r.traffic(in, cfg.Lines, cfg.OpsPerTrial/2); err != nil {
			return rep, err
		}

		// Phase 4: adjudicate.
		t := FaultTrial{Trial: trial, Injection: inj}
		if det := detectionDelta(&before, p.Stats()); det != "" {
			t.Outcome, t.Detector = FaultDetectedCounter, det
		} else if _, verr := p.VerifyImage(r.inLLC); verr != nil {
			t.Outcome, t.Detector = FaultDetectedVerify, fmt.Sprintf("verify:%v", verr)
		} else {
			// Counters quiet and the image verifies — but a fault under a
			// clean resident line is merely latent (memory is allowed to be
			// stale there). Flush the LLC so memory is authoritative again,
			// then read everything back: a late counter trip is still a
			// detection; a verification failure *now*, with nothing resident
			// to excuse, is a silent-corruption bug.
			quiet := *p.Stats()
			if err := r.flushAll(); err != nil {
				return rep, err
			}
			if err := r.sweep(); err != nil {
				return rep, err
			}
			if det := detectionDelta(&quiet, p.Stats()); det != "" {
				t.Outcome, t.Detector = FaultDetectedCounter, det+" (latent)"
			} else if _, verr := p.VerifyImage(r.inLLC); verr != nil {
				t.Outcome, t.Detector = FaultSilent, fmt.Sprintf("verify-after-flush:%v", verr)
			} else {
				t.Outcome = FaultHarmless
			}
		}
		record(t)

		// Phase 5: repair, so trials stay independent. Scrub rewrites the
		// attacked group from the architectural store (and writeRaw's LIT
		// maintenance clears any bogus entry planted there).
		p.Scrub(inj.Addr)
		if err := r.drain(); err != nil {
			return rep, err
		}
		if _, verr := p.VerifyImage(r.inLLC); verr != nil {
			return rep, fmt.Errorf("fault campaign: scrub after trial %d (%v) did not restore the image: %w",
				trial, inj, verr)
		}
		// One metrics window per adjudicated trial, stamped with the rig's
		// drain clock (monotone across trials).
		reg.Snapshot(r.now)
	}

	// Final health check: drain, verify, and record the controller state.
	if err := r.sweep(); err != nil {
		return rep, err
	}
	n, verr := p.VerifyImage(r.inLLC)
	if verr != nil {
		return rep, fmt.Errorf("fault campaign: final image verification failed: %w", verr)
	}
	rep.Verified = n
	rep.Stats = *p.Stats()
	if reg != nil {
		rep.Metrics = reg.Export()
	}
	if tr != nil {
		rep.TraceEvents = tr.Events()
		rep.TraceDropped = tr.Dropped()
	}
	return rep, nil
}

// faultGroup lists the 4-line compression group containing a — the lines
// whose reads exercise every candidate home the injected fault can corrupt.
func faultGroup(a mem.LineAddr) []mem.LineAddr {
	base := a &^ 3
	return []mem.LineAddr{base, base + 1, base + 2, base + 3}
}

// AdversarialWorkload returns the no-hurt attack workload. The recipe for
// hurting static PTMC is compressible values plus a specific access shape:
// short sequential write bursts make group members co-resident so eviction
// keeps forming compressed units (clean-compression costs), while the
// random majority of accesses dirty single lines of those units (breaking
// them: tombstone invalidates) and read lines at unpredictable locations
// (LLP mispredictions) without ever touching the freely prefetched
// neighbors. Costs with no benefits — Dynamic-PTMC must notice and disable
// compression.
func AdversarialWorkload() *workload.Workload {
	return &workload.Workload{
		Name:           "adversarial",
		Suite:          "attack",
		FootprintBytes: 2 << 20, // ~8x a 256 KB LLC: constant eviction, constant reuse
		MemFrac:        0.5,
		WriteFrac:      0.5,
		SeqProb:        0.3, // enough bursts to keep forming units...
		SeqRun:         4,
		HotFrac:        0.25, // ...and enough random reuse to keep breaking them
		HotProb:        0.5,
		Mix: workload.ValueMix{
			{Kind: workload.KindZero, Weight: 3},
			{Kind: workload.KindSmallInt, Weight: 4},
			{Kind: workload.KindDelta8, Weight: 3},
		},
	}
}

// NoHurtReport is the outcome of the adversarial no-hurt experiment.
type NoHurtReport struct {
	Baseline *Result // uncompressed
	Static   *Result // always-compress PTMC
	Dynamic  *Result // Dynamic-PTMC

	StaticBW  float64 // static DRAM bursts / baseline (the damage)
	DynamicBW float64 // dynamic DRAM bursts / baseline (must stay near 1)

	// CompressionDisabled reports whether any Dynamic-PTMC utility counter
	// ended the run in the disabled state — the attack was recognized.
	CompressionDisabled bool
}

func (r *NoHurtReport) String() string {
	return fmt.Sprintf("no-hurt: static-ptmc bw=%.3fx dynamic-ptmc bw=%.3fx (baseline=1.0) compression-disabled=%v",
		r.StaticBW, r.DynamicBW, r.CompressionDisabled)
}

// RunNoHurt runs the adversarial workload under the uncompressed baseline,
// static PTMC, and Dynamic-PTMC, and reports whether the dynamic design
// held its no-hurt guarantee: when compression only costs bandwidth, the
// sampled cost/benefit counter must disable it.
func RunNoHurt(ctx context.Context, cfg Config) (*NoHurtReport, error) {
	if cfg.Custom == nil {
		cfg.Custom = AdversarialWorkload()
		cfg.Workload = cfg.Custom.Name
	}

	rep := &NoHurtReport{}
	runOne := func(scheme string) (*Result, *Simulator, error) {
		c := cfg
		c.Scheme = scheme
		s, err := New(c)
		if err != nil {
			return nil, nil, err
		}
		res, err := s.RunContext(ctx)
		if err != nil {
			return nil, nil, fmt.Errorf("no-hurt %s: %w", scheme, err)
		}
		return res, s, nil
	}

	var err error
	if rep.Baseline, _, err = runOne(SchemeUncompressed); err != nil {
		return nil, err
	}
	if rep.Static, _, err = runOne(SchemePTMC); err != nil {
		return nil, err
	}
	dyn, s, err := runOne(SchemeDynamicPTMC)
	if err != nil {
		return nil, err
	}
	rep.Dynamic = dyn
	rep.StaticBW = rep.Static.BandwidthOver(rep.Baseline)
	rep.DynamicBW = rep.Dynamic.BandwidthOver(rep.Baseline)
	if p, ok := s.Controller().(*memctrl.PTMC); ok && p.Dynamic() != nil {
		for _, uc := range p.Dynamic().Counters() {
			if !uc.Enabled() {
				rep.CompressionDisabled = true
			}
		}
	}
	return rep, nil
}
