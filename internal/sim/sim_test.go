package sim

import (
	"testing"

	"ptmc/internal/core"
)

// quickCfg returns a configuration small enough for unit tests: 2 cores,
// modest caches, short horizon.
func quickCfg(workload, scheme string) Config {
	cfg := Default()
	cfg.Workload = workload
	cfg.Scheme = scheme
	cfg.Cores = 2
	cfg.L3Bytes = 1 << 20
	cfg.WarmupInstr = 20_000
	cfg.MeasureInstr = 60_000
	return cfg
}

func runQuick(t *testing.T, workload, scheme string) *Result {
	t.Helper()
	r, err := Run(quickCfg(workload, scheme))
	if err != nil {
		t.Fatalf("%s/%s: %v", workload, scheme, err)
	}
	return r
}

func TestConfigValidate(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err == nil {
		t.Error("empty workload should fail")
	}
	cfg.Workload = "mcf06"
	cfg.Scheme = "bogus"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown scheme should fail")
	}
	cfg = Default()
	cfg.Workload = "nope"
	if _, err := New(cfg); err == nil {
		t.Error("unknown workload should fail at New")
	}
	cfg = Default()
	cfg.Workload = "mix1"
	cfg.Cores = 2
	if _, err := New(cfg); err == nil {
		t.Error("8-part mix on 2 cores should fail")
	}
}

func TestEverySchemeRunsCleanly(t *testing.T) {
	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			r := runQuick(t, "libquantum06", scheme)
			if r.Mem.IntegrityErrs != 0 {
				t.Fatalf("integrity errors: %d", r.Mem.IntegrityErrs)
			}
			if r.IPC() <= 0 {
				t.Fatal("non-positive IPC")
			}
			if r.Instructions != int64(r.Cores)*60_000 {
				t.Fatalf("instructions = %d", r.Instructions)
			}
			if r.DRAM.Reads == 0 {
				t.Fatal("no DRAM traffic measured")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	r1 := runQuick(t, "mcf06", SchemeDynamicPTMC)
	r2 := runQuick(t, "mcf06", SchemeDynamicPTMC)
	if r1.Cycles != r2.Cycles || r1.DRAM.Reads != r2.DRAM.Reads ||
		r1.Mem.Total() != r2.Mem.Total() {
		t.Errorf("same seed, different outcomes:\n%v\n%v", r1, r2)
	}
	cfg := quickCfg("mcf06", SchemeDynamicPTMC)
	cfg.Seed = 99
	r3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cycles == r1.Cycles && r3.DRAM.Reads == r1.DRAM.Reads {
		t.Log("warning: different seed produced identical run (unlikely but possible)")
	}
}

func TestCompressibleWorkloadGainsBandwidth(t *testing.T) {
	// On a compressible streaming workload in steady state (sweeps
	// re-reading previously compressed data), PTMC must cut demand DRAM
	// reads versus uncompressed and deliver free fills.
	base, err := Run(steadyCfg(SchemeUncompressed))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Run(steadyCfg(SchemePTMC))
	if err != nil {
		t.Fatal(err)
	}
	if p.Mem.FreeInstalls == 0 {
		t.Fatal("no free installs on a compressible streaming workload")
	}
	if p.Mem.DemandReads >= base.Mem.DemandReads {
		t.Errorf("PTMC demand reads %d >= baseline %d",
			p.Mem.DemandReads, base.Mem.DemandReads)
	}
	if p.Mem.Groups2+p.Mem.Groups4 == 0 {
		t.Error("no compressed units formed")
	}
	if ws := p.WeightedSpeedupOver(base); ws <= 1.05 {
		t.Errorf("PTMC speedup = %.3f, want > 1.05 in steady state", ws)
	}
}

func TestIdealUpperBoundsPTMC(t *testing.T) {
	ideal, err := Run(steadyCfg(SchemeIdeal))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Run(steadyCfg(SchemePTMC))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(steadyCfg(SchemeUncompressed))
	if err != nil {
		t.Fatal(err)
	}
	wsIdeal := ideal.WeightedSpeedupOver(base)
	wsPTMC := p.WeightedSpeedupOver(base)
	if wsIdeal < wsPTMC*0.95 {
		t.Errorf("ideal (%.3f) should be at least PTMC (%.3f)", wsIdeal, wsPTMC)
	}
	if wsIdeal < 1.0 {
		t.Errorf("ideal TMC should not slow down a compressible workload (%.3f)", wsIdeal)
	}
}

func TestDynamicMatchesStaticWhenCompressionHelps(t *testing.T) {
	p, err := Run(steadyCfg(SchemePTMC))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run(steadyCfg(SchemeDynamicPTMC))
	if err != nil {
		t.Fatal(err)
	}
	if d.IPC() < p.IPC()*0.95 {
		t.Errorf("dynamic (%.3f IPC) should keep compression enabled and track static (%.3f IPC)",
			d.IPC(), p.IPC())
	}
}

func TestTableTMCPaysMetadataBandwidth(t *testing.T) {
	r := runQuick(t, "mcf06", SchemeTableTMC)
	if r.Mem.MetadataReads == 0 {
		t.Error("table-TMC on an irregular workload must miss the metadata cache")
	}
	if !r.HasMCache {
		t.Error("metadata hit rate not reported")
	}
	p := runQuick(t, "mcf06", SchemePTMC)
	if p.Mem.MetadataReads != 0 {
		t.Error("PTMC must not touch a metadata table")
	}
	if !p.HasLLP {
		t.Error("LLP accuracy not reported")
	}
}

func TestLLPAccuracyHigh(t *testing.T) {
	// Figure 9: LLP accuracy should be high (~98% in the paper) on SPEC.
	r := runQuick(t, "lbm06", SchemePTMC)
	if r.LLPAccuracy < 0.85 {
		t.Errorf("LLP accuracy = %.3f, want > 0.85", r.LLPAccuracy)
	}
}

func TestDynamicNoHurtOnGraph(t *testing.T) {
	// The headline robustness claim: Dynamic-PTMC must not slow down
	// compression-hostile graph workloads (paper: worst case within 1%).
	base := runQuick(t, "pr-twitter", SchemeUncompressed)
	dyn := runQuick(t, "pr-twitter", SchemeDynamicPTMC)
	ws := dyn.WeightedSpeedupOver(base)
	if ws < 0.97 {
		t.Errorf("Dynamic-PTMC slowed a graph workload to %.3f of baseline", ws)
	}
}

func TestMixRunsAllParts(t *testing.T) {
	cfg := Default()
	cfg.Workload = "mix1"
	cfg.Scheme = SchemeDynamicPTMC
	cfg.WarmupInstr = 5_000
	cfg.MeasureInstr = 20_000
	cfg.L3Bytes = 1 << 20
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerCoreIPC) != 8 {
		t.Fatalf("mix should report 8 per-core IPCs, got %d", len(r.PerCoreIPC))
	}
	if r.Mem.IntegrityErrs != 0 {
		t.Fatal("integrity errors in mix run")
	}
}

func TestCompareRunsSchemesOnSameSeed(t *testing.T) {
	cfg := quickCfg("sphinx306", "")
	rs, err := Compare(cfg, SchemeUncompressed, SchemePTMC)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[SchemeUncompressed].Workload != rs[SchemePTMC].Workload {
		t.Error("workload mismatch")
	}
}

func TestMemoryMappedLITMode(t *testing.T) {
	cfg := quickCfg("libquantum06", SchemePTMC)
	cfg.LITMode = core.LITMemoryMapped
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mem.IntegrityErrs != 0 {
		t.Error("integrity errors under memory-mapped LIT")
	}
}

func TestResultString(t *testing.T) {
	r := runQuick(t, "leela17", SchemeDynamicPTMC)
	s := r.String()
	if s == "" {
		t.Error("empty result string")
	}
}
