package sim

import (
	"fmt"

	"ptmc/internal/core"
	"ptmc/internal/cpu"
	"ptmc/internal/dram"
	"ptmc/internal/workload"
)

// Scheme names accepted by Config.Scheme.
const (
	SchemeUncompressed = "uncompressed"
	SchemeNextLine     = "nextline"
	SchemeIdeal        = "ideal"
	SchemeTableTMC     = "table-tmc"
	SchemeMemZip       = "memzip"
	SchemePTMC         = "ptmc"
	SchemeDynamicPTMC  = "dynamic-ptmc"
)

// Schemes lists every scheme name.
func Schemes() []string {
	return []string{SchemeUncompressed, SchemeNextLine, SchemeIdeal,
		SchemeTableTMC, SchemeMemZip, SchemePTMC, SchemeDynamicPTMC}
}

// Config describes one simulation (defaults reproduce Table I).
type Config struct {
	Workload string // workload or mix name
	// Custom, when non-nil, overrides Workload with an ad-hoc workload
	// description (tests, examples, sweeps).
	Custom *workload.Workload
	// Sources, when non-nil, constructs each core's instruction/access
	// source directly (trace replay; see internal/trace). Workload/Custom
	// still label the run.
	Sources func(core int, seed int64) (workload.Source, error)
	Scheme  string

	Cores      int
	CPUFreqGHz float64
	Core       cpu.Config

	L1Bytes, L2Bytes, L3Bytes int
	L1Assoc, L2Assoc, L3Assoc int
	L1Lat, L2Lat, L3Lat       int64

	MemBytes uint64
	DRAM     dram.Config

	// Scheme knobs.
	DecompCycles int64 // decompression latency (0 = paper's 5 cycles)
	MCacheBytes  int   // table-tmc/memzip metadata cache
	LLPEntries   int
	SampleFrac   float64
	PerCoreDyn   bool
	LITMode      core.LITMode

	// Shards selects the execution engine for one simulation's hot loop.
	// 0 or 1 runs the reference serial cycle loop; a power of two >= 2 runs
	// the epoch engine, which skips provably eventless cycles and spreads
	// page initialization and deferred fill verification across that many
	// shard workers (real goroutines only when GOMAXPROCS > 1; inline
	// otherwise). Every scheme takes the engine fast paths. Results are
	// byte-identical at every value — a tested invariant — so Shards is
	// purely a performance knob.
	Shards int

	// EventDriven replaces the run loop with the discrete-event engine
	// (internal/sim/event.go): cores, the memory controller, and the
	// metrics snapshotter register next-wake cycles into an event queue
	// and the scheduler jumps straight to the earliest one, so idle spans
	// on low-MLP workloads cost nothing instead of a full core sweep per
	// cycle. Composes with Shards (the epoch engine keeps the page-init
	// fan-out and deferred verification; the event queue takes over the
	// loop). Results are byte-identical to the serial reference loop at
	// every setting — a tested invariant — so this is purely a
	// performance knob. Default off: the serial loop stays the golden
	// reference.
	EventDriven bool

	// Horizon (per core, instructions).
	WarmupInstr  int64
	MeasureInstr int64

	Seed int64

	// Observability (internal/obs). MetricsInterval > 0 snapshots every
	// registered stats series each MetricsInterval CPU cycles during the
	// measured window; the time series lands in Result.Metrics. Trace
	// records controller events (DRAM requests, fills, evictions, re-keys,
	// scrubs, policy flips) into Result.TraceEvents; TraceCapacity bounds
	// the buffer (0 = obs.DefaultTraceCapacity). Both default off, which
	// keeps the simulation hot paths allocation-free.
	MetricsInterval int64
	Trace           bool
	TraceCapacity   int
}

// Default returns the paper's Table I system configuration with a
// laptop-scale measurement horizon.
func Default() Config {
	return Config{
		Scheme:       SchemeDynamicPTMC,
		Cores:        8,
		CPUFreqGHz:   3.2,
		Core:         cpu.DefaultConfig(),
		L1Bytes:      32 << 10,
		L1Assoc:      8,
		L2Bytes:      256 << 10,
		L2Assoc:      8,
		L3Bytes:      8 << 20, // 8 MB, 16-way (Table I)
		L3Assoc:      16,
		L1Lat:        4,
		L2Lat:        12,
		L3Lat:        38,
		MemBytes:     16 << 30,
		DRAM:         dram.DDR4(),
		MCacheBytes:  32 << 10,
		LLPEntries:   core.LLPEntries,
		SampleFrac:   0.01,
		PerCoreDyn:   false, // per-core counters need long horizons; see §V-A
		LITMode:      core.LITReKey,
		WarmupInstr:  700_000, // covers Dynamic-PTMC convergence (~3 sweep passes)
		MeasureInstr: 500_000,
		Seed:         1,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Workload == "" && c.Custom == nil && c.Sources == nil:
		return fmt.Errorf("sim: no workload selected")
	case c.Cores <= 0:
		return fmt.Errorf("sim: cores must be positive")
	case c.MeasureInstr <= 0:
		return fmt.Errorf("sim: MeasureInstr must be positive")
	case c.CPUFreqGHz <= 0:
		return fmt.Errorf("sim: CPU frequency must be positive")
	case c.Shards < 0 || c.Shards > 256 || (c.Shards > 1 && c.Shards&(c.Shards-1) != 0):
		return fmt.Errorf("sim: Shards must be 0, 1, or a power of two <= 256, got %d", c.Shards)
	}
	ok := false
	for _, s := range Schemes() {
		if s == c.Scheme {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("sim: unknown scheme %q", c.Scheme)
	}
	return c.DRAM.Validate()
}
