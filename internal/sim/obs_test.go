package sim

import (
	"bytes"
	"context"
	"testing"

	"ptmc/internal/obs"
)

func obsCfg(scheme string) Config {
	cfg := quickCfg("lbm06", scheme)
	cfg.MetricsInterval = 5_000
	cfg.Trace = true
	return cfg
}

// TestObservabilityCapture checks that an instrumented run actually
// produces the artifacts: a multi-window metrics series covering the
// registered stats, and at least one trace event for each kind a demand
// workload must generate. A plain run must produce neither.
func TestObservabilityCapture(t *testing.T) {
	r, err := Run(obsCfg(SchemeDynamicPTMC))
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics == nil || len(r.Metrics.Series) == 0 || len(r.Metrics.Snapshots) < 2 {
		t.Fatalf("metrics missing or too small: %+v", r.Metrics)
	}
	for i := 1; i < len(r.Metrics.Snapshots); i++ {
		if r.Metrics.Snapshots[i].Cycle <= r.Metrics.Snapshots[i-1].Cycle {
			t.Fatalf("snapshot cycles not increasing at window %d", i)
		}
	}
	// The final window's cumulative values must agree with the Result's
	// own counters (same underlying stats, snapshotted at collect time).
	last := r.Metrics.Snapshots[len(r.Metrics.Snapshots)-1]
	for i, s := range r.Metrics.Series {
		if s.Name == "mem.demand_reads" && last.Values[i] != r.Mem.DemandReads {
			t.Errorf("mem.demand_reads final window = %d, Result says %d",
				last.Values[i], r.Mem.DemandReads)
		}
	}
	counts := obs.CountByKind(r.TraceEvents)
	for _, k := range []obs.Kind{obs.KindDRAMRead, obs.KindDRAMWrite, obs.KindFill, obs.KindEvict} {
		if counts[k] == 0 {
			t.Errorf("no %s events in %d-event trace", k, len(r.TraceEvents))
		}
	}

	plain, err := Run(quickCfg("lbm06", SchemeDynamicPTMC))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != nil || plain.TraceEvents != nil {
		t.Error("uninstrumented run produced observability output")
	}
}

// TestObservabilityDeterministicUnderParallel is the contract the per-run
// registry/tracer design exists for: the metrics JSON and the trace event
// stream of a scheme must be byte-identical whether the run executed alone
// or raced other schemes inside CompareParallel.
func TestObservabilityDeterministicUnderParallel(t *testing.T) {
	cfg := obsCfg(SchemeDynamicPTMC)
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := CompareParallel(context.Background(), 3, cfg,
		SchemeUncompressed, SchemePTMC, SchemeDynamicPTMC)
	if err != nil {
		t.Fatal(err)
	}
	parallel := rs[SchemeDynamicPTMC]

	var sj, pj bytes.Buffer
	if err := serial.Metrics.WriteJSON(&sj); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Metrics.WriteJSON(&pj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), pj.Bytes()) {
		t.Error("metrics JSON differs between serial and parallel runs")
	}

	if len(serial.TraceEvents) != len(parallel.TraceEvents) {
		t.Fatalf("trace length differs: serial %d, parallel %d",
			len(serial.TraceEvents), len(parallel.TraceEvents))
	}
	for i := range serial.TraceEvents {
		if serial.TraceEvents[i] != parallel.TraceEvents[i] {
			t.Fatalf("trace diverges at event %d: %+v vs %+v",
				i, serial.TraceEvents[i], parallel.TraceEvents[i])
		}
	}
	if serial.TraceDropped != parallel.TraceDropped {
		t.Errorf("dropped counts differ: %d vs %d", serial.TraceDropped, parallel.TraceDropped)
	}
}

// TestFaultCampaignObservability checks the campaign-side integration:
// per-trial metrics windows and a trace that includes the campaign-only
// event kinds (scrubs fire every trial; evictions are constant).
func TestFaultCampaignObservability(t *testing.T) {
	rep, err := RunFaultCampaign(context.Background(), FaultConfig{
		Trials: 8, Trace: true, Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil || len(rep.Metrics.Snapshots) == 0 {
		t.Fatal("campaign produced no metrics windows")
	}
	if got := len(rep.Metrics.Snapshots); got > len(rep.Trials)+1 {
		t.Errorf("%d metrics windows for %d adjudicated trials", got, len(rep.Trials))
	}
	counts := obs.CountByKind(rep.TraceEvents)
	for _, k := range []obs.Kind{obs.KindDRAMRead, obs.KindFill, obs.KindEvict, obs.KindScrub} {
		if counts[k] == 0 {
			t.Errorf("no %s events in campaign trace", k)
		}
	}
	if counts[obs.KindScrub] != len(rep.Trials) {
		t.Errorf("scrub events = %d, want one per adjudicated trial (%d)",
			counts[obs.KindScrub], len(rep.Trials))
	}
}
