package sim

import (
	"testing"

	"ptmc/internal/mem"
	"ptmc/internal/memctrl"
)

// TestImageSoundAfterFullRun verifies the entire DRAM image against the
// architectural store after complete simulations — the paper's §IV-C
// soundness argument checked at full-system scale, with the LLC's dirty
// lines excluded as the only legitimately stale locations.
func TestImageSoundAfterFullRun(t *testing.T) {
	for _, tc := range []struct{ wl, scheme string }{
		{"libquantum06", SchemePTMC},
		{"lbm06", SchemeDynamicPTMC},
		{"bfs-road", SchemeDynamicPTMC},
		{"mix1", SchemePTMC},
	} {
		tc := tc
		t.Run(tc.wl+"/"+tc.scheme, func(t *testing.T) {
			cfg := Default()
			cfg.Workload = tc.wl
			cfg.Scheme = tc.scheme
			cfg.Cores = 8
			cfg.L3Bytes = 2 << 20
			cfg.WarmupInstr = 30_000
			cfg.MeasureInstr = 60_000
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(); err != nil {
				t.Fatal(err)
			}
			p := s.Controller().(*memctrl.PTMC)
			inLLC := func(a mem.LineAddr) bool {
				_, in := s.l3.Probe(a)
				return in
			}
			n, err := p.VerifyImage(inLLC)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Error("verifier covered no lines")
			}
			t.Logf("verified %d memory-resident lines", n)
		})
	}
}
