package sim

import (
	"testing"

	"ptmc/internal/workload"
)

// steadyWorkload is a small streaming workload whose sweep wraps several
// times within a short horizon: 2 cores x 512 KB sweeps over a 16 MB
// footprint against a 256 KB L3.
func steadyWorkload() *workload.Workload {
	return &workload.Workload{
		Name: "steady-stream", Suite: "test",
		FootprintBytes: 16 << 20,
		MemFrac:        0.35, WriteFrac: 0.25,
		SeqProb: 0.85, SeqRun: 48,
		HotFrac: 0.02, HotProb: 0.2,
		SweepBytes: 512 << 10,
		Mix: workload.ValueMix{
			{Kind: workload.KindZero, Weight: 35},
			{Kind: workload.KindSmallInt, Weight: 45},
			{Kind: workload.KindDelta8, Weight: 10},
			{Kind: workload.KindRandom, Weight: 10},
		},
	}
}

func steadyCfg(scheme string) Config {
	cfg := Default()
	cfg.Custom = steadyWorkload()
	cfg.Workload = "steady-stream"
	cfg.Scheme = scheme
	cfg.Cores = 2
	cfg.L3Bytes = 256 << 10
	cfg.WarmupInstr = 250_000
	cfg.MeasureInstr = 250_000
	return cfg
}

func TestDiagIdeal(t *testing.T) {
	for _, sch := range []string{SchemeUncompressed, SchemeIdeal, SchemePTMC, SchemeDynamicPTMC, SchemeTableTMC} {
		r, err := Run(steadyCfg(sch))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-13s cyc=%d ipc=%.3f L3hit=%.2f dR=%d dW=%d rowhit=%.2f avgRdLat=%.0f free=%d useful=%d dem=%d mis=%d meta=%d coal=%d cwr=%d inv=%d",
			sch, r.Cycles, r.IPC(), r.L3.HitRate(), r.DRAM.Reads, r.DRAM.Writes, r.DRAM.RowHitRate(), r.DRAM.AvgReadLatency(),
			r.Mem.FreeInstalls, r.Mem.UsefulFreePf, r.Mem.DemandReads, r.Mem.MispredictReads, r.Mem.MetadataReads, r.Mem.CoalescedReads, r.Mem.CleanCompIntoW, r.Mem.Invalidates)
	}
}
