package sim

// Unit tests for the discrete-event engine's moving parts: the indexed
// event queue itself (ordering, rescheduling, the zero-allocation pin for
// the steady-state scheduling path), deadline-clamped jumps (the maxCycles
// error must report the same cycle the serial loop reports), and ctx
// cancellation under cycle skipping (the poll is iteration-counted, so a
// jump-heavy run cannot alias past every checkpoint the way an
// `s.now&4095` poll could). The full byte-identity matrix lives in
// shard_determinism_test.go (TestEventDeterminismMatrix).

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestEventQueueOrdering(t *testing.T) {
	q := newEventQueue(4)
	if q.minCycle() != eventNever {
		t.Fatalf("fresh queue min = %d, want eventNever", q.minCycle())
	}
	q.schedule(2, 100)
	q.schedule(0, 50)
	q.schedule(1, 75)
	q.schedule(3, 50)
	if got := q.minCycle(); got != 50 {
		t.Fatalf("min = %d, want 50", got)
	}
	// Reschedule the minimum later: the next earliest must surface.
	q.schedule(0, 200)
	q.schedule(3, 200)
	if got := q.minCycle(); got != 75 {
		t.Fatalf("min after rescheduling = %d, want 75", got)
	}
	// Pull one earlier than everything.
	q.schedule(2, 10)
	if got := q.minCycle(); got != 10 {
		t.Fatalf("min after early reschedule = %d, want 10", got)
	}
	if got := q.at(1); got != 75 {
		t.Fatalf("at(1) = %d, want 75", got)
	}
	// Park everything again.
	for id := 0; id < 4; id++ {
		q.schedule(id, eventNever)
	}
	if q.minCycle() != eventNever {
		t.Fatalf("parked queue min = %d, want eventNever", q.minCycle())
	}
}

// TestEventQueueZeroAlloc pins the steady-state scheduling path — the
// only queue operations the run loop performs per executed cycle — to
// zero allocations, same tier as the memctrl/mem/obs hot-path guards.
func TestEventQueueZeroAlloc(t *testing.T) {
	q := newEventQueue(10)
	for i := 0; i < 10; i++ {
		q.schedule(i, int64(i+1))
	}
	cycle := int64(1)
	if n := testing.AllocsPerRun(1000, func() {
		// One executed cycle's worth of traffic: read the minimum, bump a
		// few cores forward, park one, wake it again.
		_ = q.minCycle()
		q.schedule(0, cycle+1)
		q.schedule(3, cycle+7)
		q.schedule(7, eventNever)
		q.schedule(7, cycle+2)
		cycle++
	}); n != 0 {
		t.Errorf("event queue scheduling allocates %.1f/op, want 0", n)
	}
}

// TestEventMaxCyclesConsistent: jumps are clamped at the deadline, so an
// event-driven run that exhausts its cycle budget fails with the same
// error, at the same cycle, as the serial loop.
func TestEventMaxCyclesConsistent(t *testing.T) {
	run := func(event bool) (int64, error) {
		cfg := quickCfg("lbm06", SchemeUncompressed)
		cfg.WarmupInstr = 0
		cfg.EventDriven = event
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Far too small a budget to retire anything meaningful.
		const maxCycles = 5_000
		loop := s.run
		if event {
			loop = s.runEvent
		}
		rerr := loop(context.Background(), cfg.MeasureInstr, maxCycles)
		return s.now, rerr
	}
	serialNow, serialErr := run(false)
	eventNow, eventErr := run(true)
	if serialErr == nil || eventErr == nil {
		t.Fatalf("expected both loops to exhaust the budget; serial=%v event=%v", serialErr, eventErr)
	}
	if serialErr.Error() != eventErr.Error() {
		t.Errorf("error text diverges:\n  serial: %v\n  event:  %v", serialErr, eventErr)
	}
	if serialNow != eventNow {
		t.Errorf("abort cycle diverges: serial %d vs event %d", serialNow, eventNow)
	}
}

// TestEventCancellation: the iteration-counted ctx poll interrupts an
// event-driven run promptly even though the engine skips cycles (an
// `s.now&4095 == 0` poll could be jumped over indefinitely).
func TestEventCancellation(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			cfg := quickCfg("lbm06", SchemeDynamicPTMC)
			cfg.WarmupInstr = 0
			cfg.MeasureInstr = 50_000_000 // cannot finish before the cancel
			cfg.Shards = shards
			cfg.EventDriven = true
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, rerr := s.RunContext(ctx)
				done <- rerr
			}()
			time.Sleep(10 * time.Millisecond)
			cancel()
			select {
			case rerr := <-done:
				if !errors.Is(rerr, context.Canceled) {
					t.Fatalf("RunContext returned %v, want context.Canceled", rerr)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("event-driven RunContext did not return within 5s of cancellation")
			}
		})
	}
}
