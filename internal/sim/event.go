package sim

import (
	"context"
	"fmt"

	"ptmc/internal/cpu"
)

// This file is the discrete-event execution engine behind
// Config.EventDriven (ROADMAP item 2, in the style of akita/mgpusim):
// every component — each core, the memory controller, the metrics
// snapshotter — registers the next cycle it can possibly act at into a
// small indexed event queue, and the scheduler advances s.now straight to
// the earliest registered event instead of incrementing by one.
//
// The engine's correctness argument is the same one runSharded already
// carries, restated here because the queue caches wakes across iterations
// instead of recomputing them:
//
//   - A core's wake (cpu.NextWake) can move for exactly two reasons: the
//     core's own Cycle ran (we re-register it immediately after), or an
//     outstanding fill completed and wrote its ROB. Completions are only
//     delivered during ctrl.Tick — the DRAM model fires them from its
//     per-tick channel scan, never spontaneously — so re-registering the
//     cores fillDone touched (the dirty set) right after each controller
//     tick keeps every cached wake an upper bound that is exact whenever
//     it matters. The one same-cycle write a core can see outside a tick
//     is its own access callback completing synchronously inside its own
//     Cycle (an L1/L2/L3 hit), and that is covered by the post-Cycle
//     re-registration.
//   - The controller's wake is the DRAM model's cached O(1) NextEventCycle
//     minimum (through the same Nexter hook the epoch engine uses). It can
//     move earlier when a core's access enqueues a request mid-cycle, so
//     the controller is re-registered after every executed cycle rather
//     than only after it ticks. A stale bid in the past is harmless: it
//     floors the next jump at now+1 and the engine degrades to serial
//     stepping until the next real tick refreshes the schedule — exactly
//     how runSharded behaves in the same state.
//   - The metrics snapshotter registers the next MetricsInterval boundary,
//     so no boundary is ever jumped over.
//
// Counter crediting is identical to runSharded: every skipped bus tick is
// credited through the controller's SkippedTicks (idle-channel scans plus
// per-tick retry attempts), and the controller actually ticks at every
// *executed* bus-multiple cycle — it is not reduced to a pure queue
// consumer, because the serial loop's per-tick accounting (idle-channel
// counters, retry drains) must happen at the same cycles in both modes.
// That is what keeps serial, event-driven, sharded, and sharded+event
// runs byte-identical (the tested invariant in shard_determinism_test.go).

// eventQueue is a fixed-capacity indexed binary min-heap over component
// ids keyed by their registered wake cycle. Components are dense small
// ints (cores 0..n-1, then controller, then metrics), so positions live in
// flat slices and schedule() is an in-place sift — the steady-state
// scheduling path performs zero allocations (pinned by
// TestEventQueueZeroAlloc).
type eventQueue struct {
	when []int64 // component id -> registered wake cycle
	heap []int32 // component ids, heap-ordered by (when, id)
	pos  []int32 // component id -> index in heap
}

// eventNever parks a component that has no self-scheduled event (same
// value as cpu.NeverWake, usable for non-core components too).
const eventNever = int64(cpu.NeverWake)

func newEventQueue(n int) *eventQueue {
	q := &eventQueue{
		when: make([]int64, n),
		heap: make([]int32, n),
		pos:  make([]int32, n),
	}
	for i := range q.when {
		q.when[i] = eventNever
		q.heap[i] = int32(i)
		q.pos[i] = int32(i)
	}
	return q
}

// less orders heap entries by wake cycle, component id breaking ties so
// the heap layout is a pure function of the registered schedule.
func (q *eventQueue) less(a, b int32) bool {
	wa, wb := q.when[a], q.when[b]
	return wa < wb || (wa == wb && a < b)
}

// schedule registers component id's next wake, replacing any previous
// registration. In-place: no allocation, O(log n) sift.
func (q *eventQueue) schedule(id int, cycle int64) {
	if q.when[id] == cycle {
		return
	}
	q.when[id] = cycle
	if i := q.pos[id]; !q.up(i) {
		q.down(i)
	}
}

// minCycle returns the earliest registered wake.
func (q *eventQueue) minCycle() int64 { return q.when[q.heap[0]] }

// at returns component id's registered wake (the run loop's due check).
func (q *eventQueue) at(id int) int64 { return q.when[id] }

func (q *eventQueue) swap(i, j int32) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.pos[q.heap[i]] = i
	q.pos[q.heap[j]] = j
}

func (q *eventQueue) up(i int32) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.heap[i], q.heap[parent]) {
			break
		}
		q.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (q *eventQueue) down(i int32) {
	n := int32(len(q.heap))
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(q.heap[l], q.heap[smallest]) {
			smallest = l
		}
		if r < n && q.less(q.heap[r], q.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

// eventSched is the per-simulator event-engine state: the component queue
// plus the controller hooks the scheduler drives it with. Built by New
// when cfg.EventDriven is set; orthogonal to the epoch engine (shardEngine
// keeps the page-init fan-out and verify sink when both are enabled).
type eventSched struct {
	q *eventQueue

	// nexter/skipper are the same optional controller hooks the epoch
	// engine discovers; both degrade like ctrlWake / raw DRAM crediting.
	nexter  interface{ NextEventCycle(int64) int64 }
	skipper interface{ SkippedTicks(n int64) }

	// dirty collects core ids whose ROB was written by fillDone during the
	// current controller tick; their cached wakes are recomputed right
	// after the tick. mark is the dedup bitmap, ids the drain list — both
	// preallocated, zero allocations steady-state.
	mark []bool
	ids  []int32
}

func newEventSched(s *Simulator) *eventSched {
	nc := len(s.cores)
	e := &eventSched{
		q:    newEventQueue(nc + 2),
		mark: make([]bool, nc),
		ids:  make([]int32, 0, nc),
	}
	e.nexter, _ = s.ctrl.(interface{ NextEventCycle(int64) int64 })
	e.skipper, _ = s.ctrl.(interface{ SkippedTicks(n int64) })
	return e
}

// markDirty records that coreID's ROB was written by a fill completion;
// runEvent re-registers it after the controller tick that delivered it.
func (e *eventSched) markDirty(coreID int) {
	if !e.mark[coreID] {
		e.mark[coreID] = true
		e.ids = append(e.ids, int32(coreID))
	}
}

// ctrlWake mirrors shardEngine.ctrlWake: the controller's next event
// cycle, or the next bus-tick multiple for a controller exposing no
// schedule.
func (e *eventSched) ctrlWake(s *Simulator, now int64) int64 {
	if e.nexter == nil {
		r := int64(s.cfg.DRAM.BusRatio)
		return (now/r + 1) * r
	}
	return e.nexter.NextEventCycle(now)
}

// runEvent is the discrete-event counterpart of Simulator.run: identical
// termination conditions and per-cycle work order (cores in index order,
// then the controller on bus multiples, then metrics snapshots), with
// s.now advanced directly to the queue's earliest registered event.
// Cancellation is polled on an iteration count, not on s.now — a
// cycle-skipping engine can jump over every multiple of 4096 — and jumps
// are clamped at the deadline so the maxCycles error always reports the
// same cycle the serial loop would.
func (s *Simulator) runEvent(ctx context.Context, limit, maxCycles int64) error {
	e := s.evq
	for i := range s.cores {
		s.cores[i].ResetWindow(limit)
	}
	s.windowStart = s.now
	deadline := s.now + maxCycles
	busRatio := int64(s.cfg.DRAM.BusRatio)
	d := s.ctrl.DRAM()
	nc := len(s.cores)
	ctrlID, metricsID := nc, nc+1

	// Fresh registration for this window: warmup and the measured window
	// each enter with their own core states and metrics phase.
	for i, c := range s.cores {
		e.q.schedule(i, c.NextWake(s.now))
	}
	e.q.schedule(ctrlID, e.ctrlWake(s, s.now))
	if s.reg != nil {
		e.q.schedule(metricsID, (s.now/s.cfg.MetricsInterval+1)*s.cfg.MetricsInterval)
	} else {
		e.q.schedule(metricsID, eventNever)
	}
	for i := range e.mark {
		e.mark[i] = false
	}
	e.ids = e.ids[:0]

	for iter := 0; ; iter++ {
		allDone := true
		for _, c := range s.cores {
			if !c.Done() {
				allDone = false
			}
		}
		if allDone {
			if s.eng != nil {
				s.eng.drainVerify()
			}
			return nil
		}
		if s.fatal != nil {
			return s.fatal
		}
		if s.now >= deadline {
			return fmt.Errorf("sim: exceeded %d cycles without finishing", maxCycles)
		}
		if iter&4095 == 0 && ctx.Err() != nil {
			return fmt.Errorf("sim: interrupted at cycle %d: %w", s.now, ctx.Err())
		}

		// Jump to the earliest registered event. The floor at now+1 makes a
		// stale past controller bid harmless (serial stepping until the next
		// real tick); the deadline clamp executes the deadline cycle itself
		// so the error above fires at the same cycle as the serial loop.
		wake := e.q.minCycle()
		if wake < s.now+1 {
			wake = s.now + 1
		}
		if wake > deadline {
			wake = deadline
		}
		if wake > s.now+1 {
			// Credit every bus tick inside the skipped span (s.now, wake)
			// exactly as runSharded does: through the controller when it
			// keeps per-tick bookkeeping, else straight to the DRAM idle
			// counters.
			if n := (wake-1)/busRatio - s.now/busRatio; n > 0 {
				if e.skipper != nil {
					e.skipper.SkippedTicks(n)
				} else {
					d.SkippedTicks(n)
				}
			}
		}
		s.now = wake
		for i, c := range s.cores {
			if e.q.at(i) <= s.now {
				c.Cycle(s.now)
				e.q.schedule(i, c.NextWake(s.now))
			}
		}
		if s.now%busRatio == 0 {
			s.ctrl.Tick(s.now)
			// Fill completions delivered during the tick wrote sleeping
			// cores' ROBs; re-register each one the tick touched.
			for _, id := range e.ids {
				e.mark[id] = false
				e.q.schedule(int(id), s.cores[id].NextWake(s.now))
			}
			e.ids = e.ids[:0]
			if s.eng != nil && s.eng.sink != nil && s.eng.sink.Pending() >= verifyBatchThreshold {
				s.eng.drainVerify()
			}
		}
		// The controller's schedule can move earlier on any executed cycle
		// (a core's access enqueues mid-cycle), not just on ticks.
		e.q.schedule(ctrlID, e.ctrlWake(s, s.now))
		if s.reg != nil {
			if s.now%s.cfg.MetricsInterval == 0 {
				if s.eng != nil {
					s.eng.drainVerify()
				}
				s.reg.Snapshot(s.now)
			}
			e.q.schedule(metricsID, (s.now/s.cfg.MetricsInterval+1)*s.cfg.MetricsInterval)
		}
	}
}
