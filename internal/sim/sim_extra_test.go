package sim

import (
	"strings"
	"testing"

	"ptmc/internal/workload"
)

func TestNextLineSchemeTraffic(t *testing.T) {
	r := runQuick(t, "libquantum06", SchemeNextLine)
	if r.Mem.PrefetchReads == 0 {
		t.Error("next-line prefetcher issued no prefetches")
	}
	if r.Mem.IntegrityErrs != 0 {
		t.Error("integrity errors")
	}
}

func TestOutOfMemorySurfacesAsError(t *testing.T) {
	cfg := quickCfg("mcf06", SchemeUncompressed)
	cfg.MemBytes = 1 << 22 // 4 MB of physical memory: mcf06 cannot fit
	_, err := Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "out of physical memory") {
		t.Errorf("expected OOM error, got %v", err)
	}
}

func TestWarmupResetsStats(t *testing.T) {
	// With warmup, the measured window must not include warmup traffic:
	// an identical config with zero warmup must report more total DRAM
	// traffic for the same measured instruction count... not necessarily
	// — but instructions must match the measured window exactly.
	cfg := quickCfg("leela17", SchemeUncompressed)
	cfg.WarmupInstr = 50_000
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != int64(cfg.Cores)*cfg.MeasureInstr {
		t.Errorf("instructions = %d, want %d", r.Instructions, int64(cfg.Cores)*cfg.MeasureInstr)
	}
	// Cold-start traffic (page-init fills) should be absent from a warmed
	// run's measured window relative to footprint touched.
	if r.Cycles <= 0 {
		t.Error("cycles not measured")
	}
}

func TestCustomWorkloadValidation(t *testing.T) {
	cfg := Default()
	cfg.Custom = &workload.Workload{Name: "bad"} // invalid
	cfg.Workload = "bad"
	if _, err := New(cfg); err == nil {
		t.Error("invalid custom workload should be rejected")
	}
}

func TestBandwidthOverBaseline(t *testing.T) {
	base := runQuick(t, "pr-twitter", SchemeUncompressed)
	nl := runQuick(t, "pr-twitter", SchemeNextLine)
	if bw := nl.BandwidthOver(base); bw <= 1.0 {
		t.Errorf("next-line prefetch bandwidth ratio = %.3f, want > 1 on a graph workload", bw)
	}
}

func TestLowMPKIWorkloadBarelyTouchesDRAM(t *testing.T) {
	// Cache-resident workloads (exchange2-like) must land in the low-MPKI
	// band — the Figure 17 left tail. Needs the Table I LLC (8 MB) and
	// enough warmup for the working set to become resident.
	cfg := quickCfg("exchange217", SchemeUncompressed)
	cfg.L3Bytes = 8 << 20
	cfg.WarmupInstr = 400_000
	cfg.MeasureInstr = 100_000
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MPKI > 20 {
		t.Errorf("cache-resident workload MPKI = %.1f, want low", r.MPKI)
	}
}

func TestHighMPKIWorkloadBands(t *testing.T) {
	// Memory-intensive workloads must land in Table II's MPKI band
	// (roughly 20-120 at our horizon).
	for _, wl := range []string{"lbm06", "mcf06", "pr-twitter"} {
		r := runQuick(t, wl, SchemeUncompressed)
		if r.MPKI < 15 || r.MPKI > 200 {
			t.Errorf("%s MPKI = %.1f, outside the memory-intensive band", wl, r.MPKI)
		}
	}
}

func TestPerCoreDynamicRuns(t *testing.T) {
	cfg := quickCfg("libquantum06", SchemeDynamicPTMC)
	cfg.PerCoreDyn = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mem.IntegrityErrs != 0 {
		t.Error("integrity errors under per-core dynamic")
	}
}

func TestSchemeNamesRoundTrip(t *testing.T) {
	for _, sch := range Schemes() {
		cfg := quickCfg("leela17", sch)
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", sch, err)
		}
		name := s.Controller().Name()
		if name != sch && !(sch == SchemeIdeal && name == "ideal-tmc") &&
			!(sch == SchemeNextLine && name == "nextline") {
			t.Errorf("scheme %s -> controller %s", sch, name)
		}
	}
}
