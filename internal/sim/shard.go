package sim

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ptmc/internal/cpu"
	"ptmc/internal/mem"
	"ptmc/internal/memctrl"
	"ptmc/internal/vm"
)

// verifyBatchThreshold bounds the deferred-verification backlog: once this
// many compressed fills are recorded the engine drains them at the next bus
// tick, keeping the sink's snapshot memory from growing with the run.
const verifyBatchThreshold = 2048

// shardEngine is the epoch execution engine behind Config.Shards >= 2. It
// accelerates a single simulation two ways while keeping results
// byte-identical to the serial loop (a tested invariant):
//
//   - cycle skipping: between epochs it computes, from every core's ROB
//     state (cpu.NextWake) and the memory controller's event schedule
//     (NextEventCycle), the earliest cycle at which anything can happen,
//     and jumps there — the serial loop burns a full core+controller sweep
//     on each provably eventless cycle;
//   - shard fan-out: first-touch page initialization and deferred
//     compressed-fill verification are partitioned by the DRAM channel
//     interleave key (mem.ShardOf) and run across shard workers. Workers
//     are real goroutines only when GOMAXPROCS > 1; on a single-CPU host
//     the fan-out runs inline, same semantics, no scheduling overhead.
type shardEngine struct {
	s      *Simulator
	shards int

	// initer/pageIniter/sink/nexter are the controller's optional fast-path
	// hooks; each degrades independently to the serial behavior when absent.
	initer     memctrl.ShardIniter
	pageIniter memctrl.ShardPageIniter
	sink       *memctrl.VerifySink
	nexter     interface{ NextEventCycle(int64) int64 }
	skipper    interface{ SkippedTicks(n int64) }

	parallel bool // real worker goroutines (GOMAXPROCS > 1)
	started  bool
	jobs     []chan func(shard int)
	wg       sync.WaitGroup

	counts  []memctrl.VerifyCounts // per-shard drain results
	collide [][]mem.LineAddr       // per-shard init collisions for serial fixup

	// lazyArch, when true, defers architectural-line synthesis entirely:
	// initPage registers each first-touch page with mem.Store.MarkLazy and
	// records its origin here; the store synthesizes a line — through
	// archLine — only when something actually reads it before writing it.
	// Stores allocate the page's backing without synthesizing anything,
	// and lines that are never read back (initialized, maybe dirtied,
	// never inspected) skip synthesis altogether. Requires every stream to
	// implement FillLineInit (version 0 is provable at synthesis time; see
	// archLine).
	lazyArch bool
	origins  map[mem.LineAddr]pageOrigin
}

// fillIniter is the first-touch specialization of workload.Source.FillLine
// (mutation count provably zero, version-map lookup skipped).
type fillIniter interface {
	FillLineInit(vline uint64, buf []byte)
}

// pageOrigin identifies which stream's virtual page a physical page was
// allocated for — what materializeArch needs to re-synthesize it.
type pageOrigin struct {
	core      int32
	vlineBase uint64
}

// newShardEngine wires the engine to the simulator's controller. Called
// from New when cfg.Shards >= 2.
func newShardEngine(s *Simulator, shards int) *shardEngine {
	e := &shardEngine{
		s:        s,
		shards:   shards,
		parallel: runtime.GOMAXPROCS(0) > 1,
		counts:   make([]memctrl.VerifyCounts, shards),
		collide:  make([][]mem.LineAddr, shards),
	}
	e.initer, _ = s.ctrl.(memctrl.ShardIniter)
	if pi, ok := s.ctrl.(memctrl.ShardPageIniter); ok {
		pi.SetupShardInit(shards)
		e.pageIniter = pi
	}
	e.nexter, _ = s.ctrl.(interface{ NextEventCycle(int64) int64 })
	e.skipper, _ = s.ctrl.(interface{ SkippedTicks(n int64) })
	// The deferred-verification sink exists to overlap decode work with the
	// main loop; with inline fan-out there is nothing to overlap with and
	// the snapshot copies are pure overhead, so single-CPU hosts keep the
	// serial inline check (results are byte-identical either way).
	if p, ok := s.ctrl.(*memctrl.PTMC); ok && e.parallel {
		e.sink = p.AttachVerifySink()
	}
	if e.initer != nil {
		lazy := true
		for _, src := range s.streams {
			if _, ok := src.(fillIniter); !ok {
				lazy = false // trace replay: versions aren't provably 0
				break
			}
		}
		if lazy {
			e.lazyArch = true
			e.origins = make(map[mem.LineAddr]pageOrigin)
			s.arch.SetLazyFill(e.archLine)
		}
	}
	s.ctrl.DRAM().SetEngineMode(true)
	return e
}

// archLine is the mem.Store lazy-fill callback for the architectural
// store: it synthesizes one line of a page registered by initPage. Version
// 0 is provably correct — the store synthesizes a line only when it has
// been read before being written, and a never-written line has never been
// mutated.
func (e *shardEngine) archLine(a mem.LineAddr, buf []byte) {
	base := a &^ (mem.SlabLines - 1)
	o := e.origins[base]
	e.s.streams[o.core].(fillIniter).FillLineInit(o.vlineBase+uint64(a-base), buf)
}

// startWorkers lazily spawns the shard-1..n-1 worker goroutines (the main
// goroutine always runs shard 0).
func (e *shardEngine) startWorkers() {
	if e.started {
		return
	}
	e.jobs = make([]chan func(int), e.shards-1)
	for w := 1; w < e.shards; w++ {
		ch := make(chan func(int), 1)
		e.jobs[w-1] = ch
		go func(w int, ch chan func(int)) {
			for f := range ch {
				f(w)
				e.wg.Done()
			}
		}(w, ch)
	}
	e.started = true
}

// stop terminates the worker pool; the engine restarts it on demand.
func (e *shardEngine) stop() {
	if !e.started {
		return
	}
	for _, ch := range e.jobs {
		close(ch)
	}
	e.jobs = nil
	e.started = false
}

// fanout runs f once per shard and returns when all have finished. Inline
// and sequential without parallelism; otherwise the workers take shards
// 1..n-1 while the caller's goroutine runs shard 0, and the WaitGroup
// barrier both joins them and publishes their writes.
func (e *shardEngine) fanout(f func(shard int)) {
	if !e.parallel || e.shards < 2 {
		for sh := 0; sh < e.shards; sh++ {
			f(sh)
		}
		return
	}
	e.startWorkers()
	e.wg.Add(e.shards - 1)
	for _, ch := range e.jobs {
		ch <- f
	}
	f(0)
	e.wg.Wait()
}

// initPage is the engine's first-touch page initialization: line synthesis
// and image installation fan out across shards by the channel-interleave
// key (whole 4-line groups, so each shard touches disjoint channel-aligned
// lines of the freshly created slabs). Lines are synthesized directly into
// the DRAM image (one write per line instead of synthesize-then-copy); the
// architectural page is either mirrored from it (eager) or registered for
// on-demand materialization (lazyArch). Marker collisions — lines the
// controller cannot initialize without shared state — are collected
// per-shard and re-run through the serial InitLine path in ascending
// address order, which is the order the serial loop would have handled them
// in.
func (e *shardEngine) initPage(coreID int, pageBase mem.LineAddr, vlineBase uint64) {
	imgSlab := e.s.img.Slab(pageBase)
	stream := e.s.streams[coreID]
	fill := stream.FillLine
	if f, ok := stream.(fillIniter); ok {
		fill = f.FillLineInit // skip the version lookup: first touch is version 0
	}
	var archSlab mem.Slab
	if e.lazyArch {
		e.origins[pageBase] = pageOrigin{core: int32(coreID), vlineBase: vlineBase}
		e.s.arch.MarkLazy(pageBase)
	} else {
		archSlab = e.s.arch.Slab(pageBase)
	}
	if e.pageIniter != nil {
		// Serial pre-pass: let the controller grow any map-backed per-line
		// state for this page before the workers write its slots.
		e.pageIniter.BeginPageInit(pageBase)
	}
	gmask := uint64(e.shards - 1)
	groupBase := uint64(pageBase) >> 2
	e.fanout(func(shard int) {
		for g := uint64(0); g < vm.PageLines/4; g++ {
			if (groupBase+g)&gmask != uint64(shard) {
				continue
			}
			for j := uint64(0); j < 4; j++ {
				i := int(g*4 + j)
				a := pageBase + mem.LineAddr(i)
				line := imgSlab.Line(i)
				fill(vlineBase+uint64(i), line)
				if !e.initer.InitLineReady(a, line) {
					// Colliding raw bytes stay in the image briefly; the
					// serial fixup below rewrites them before any read.
					e.collide[shard] = append(e.collide[shard], a)
				}
				if !e.lazyArch {
					copy(archSlab.Line(i), line)
				}
			}
		}
	})
	n := 0
	for _, c := range e.collide {
		n += len(c)
	}
	if n == 0 {
		return
	}
	fix := make([]mem.LineAddr, 0, n)
	for i := range e.collide {
		fix = append(fix, e.collide[i]...)
		e.collide[i] = e.collide[i][:0]
	}
	sort.Slice(fix, func(i, j int) bool { return fix[i] < fix[j] })
	for _, a := range fix {
		e.s.ctrl.InitLine(a)
	}
}

// drainVerify runs the deferred fill verification across shards and merges
// the per-shard counters (commutative sums) into the controller stats.
func (e *shardEngine) drainVerify() {
	if e.sink == nil || e.sink.Pending() == 0 {
		return
	}
	e.fanout(func(shard int) {
		e.counts[shard] = e.sink.DrainShard(shard, e.shards)
	})
	st := e.s.ctrl.Stats()
	for i := range e.counts {
		st.IntegrityErrs += e.counts[i].IntegrityErrs
		st.UndecodableUnits += e.counts[i].UndecodableUnits
	}
	e.sink.Reset()
}

// ctrlWake returns the controller's next event cycle. A controller that
// exposes no schedule (never the case for the built-in schemes, all of
// which embed memctrl's base) degrades to the next bus-tick multiple — the
// earliest cycle a controller tick can run at all — so an unknown scheme
// is ticked conservatively every bus cycle without also pinning the core
// skip logic to now+1, which would defeat cycle skipping entirely.
func (e *shardEngine) ctrlWake(now int64) int64 {
	if e.nexter == nil {
		r := int64(e.s.cfg.DRAM.BusRatio)
		return (now/r + 1) * r
	}
	return e.nexter.NextEventCycle(now)
}

// runSharded is the epoch-engine counterpart of Simulator.run: identical
// termination conditions, identical per-cycle work order (cores, then the
// controller on bus multiples, then metrics snapshots), plus whole-cycle
// skipping over spans where no core and no controller event can occur.
// Every skipped bus tick is credited to the DRAM idle accounting exactly as
// the serial loop would have counted it. The one intentional difference:
// ctx cancellation is polled every epoch rather than every 4096 cycles, so
// an abort can only fire earlier — healthy-run results are unaffected.
func (s *Simulator) runSharded(ctx context.Context, limit, maxCycles int64) error {
	for i := range s.cores {
		s.cores[i].ResetWindow(limit)
	}
	s.windowStart = s.now
	deadline := s.now + maxCycles
	busRatio := int64(s.cfg.DRAM.BusRatio)
	d := s.ctrl.DRAM()
	wakes := make([]int64, len(s.cores))
	for {
		allDone := true
		for _, c := range s.cores {
			if !c.Done() {
				allDone = false
			}
		}
		if allDone {
			s.eng.drainVerify()
			return nil
		}
		if s.fatal != nil {
			return s.fatal
		}
		if s.now >= deadline {
			return fmt.Errorf("sim: exceeded %d cycles without finishing", maxCycles)
		}
		if ctx.Err() != nil {
			return fmt.Errorf("sim: interrupted at cycle %d: %w", s.now, ctx.Err())
		}

		// Earliest cycle anything can happen: core wakes first (cheap,
		// usually now+1), then the controller schedule, clamped to the next
		// metrics boundary and the deadline so neither is skipped over. The
		// per-core wakes are kept: a core whose wake lies beyond the cycle
		// about to execute provably no-ops, so its Cycle call is skipped
		// below (completions can only move a wake at a controller tick,
		// which runs after the cores within a cycle).
		wake := int64(cpu.NeverWake)
		for i, c := range s.cores {
			w := c.NextWake(s.now)
			wakes[i] = w
			if w < wake {
				wake = w
			}
		}
		if wake > s.now+1 {
			if w := s.eng.ctrlWake(s.now); w < wake {
				wake = w
			}
		}
		if s.reg != nil {
			if nb := (s.now/s.cfg.MetricsInterval + 1) * s.cfg.MetricsInterval; nb < wake {
				wake = nb
			}
		}
		if wake > deadline {
			wake = deadline // execute the deadline cycle, then error above
		}
		if wake > s.now+1 {
			// Skip cycles (s.now, wake): no core can act, every bus tick in
			// the span would only scan sleeping channels. Credit the
			// accounting those ticks would have recorded — through the
			// controller when it keeps its own per-tick bookkeeping (retry
			// drain attempts), else straight to the DRAM idle counters.
			if n := (wake-1)/busRatio - s.now/busRatio; n > 0 {
				if s.eng.skipper != nil {
					s.eng.skipper.SkippedTicks(n)
				} else {
					d.SkippedTicks(n)
				}
			}
			s.now = wake - 1
		}
		s.now++
		for i, c := range s.cores {
			if wakes[i] <= s.now {
				c.Cycle(s.now)
			}
		}
		if s.now%busRatio == 0 {
			s.ctrl.Tick(s.now)
			if s.eng.sink != nil && s.eng.sink.Pending() >= verifyBatchThreshold {
				s.eng.drainVerify()
			}
		}
		if s.reg != nil && s.now%s.cfg.MetricsInterval == 0 {
			// Integrity counters feed exported series; drain so snapshots
			// match the serial loop's incremental accounting.
			s.eng.drainVerify()
			s.reg.Snapshot(s.now)
		}
	}
}
