// Package sim assembles the full system of Table I — 8 OoO cores, a
// three-level cache hierarchy, virtual memory, and a DDR4 memory system
// behind one of the memory-controller schemes — and runs workloads to
// produce the statistics every table and figure in the paper is built from.
package sim

import (
	"context"
	"fmt"

	"ptmc/internal/cache"
	"ptmc/internal/cpu"
	"ptmc/internal/dram"
	"ptmc/internal/energy"
	"ptmc/internal/mem"
	"ptmc/internal/memctrl"
	"ptmc/internal/obs"
	"ptmc/internal/vm"
	"ptmc/internal/workload"
)

// prefetchObserver is implemented by schemes that track useful free
// prefetches (PTMC's Dynamic benefit events).
type prefetchObserver interface {
	OnDemandHit(core int, a mem.LineAddr)
}

// waiter is one access merged into an outstanding fill (MSHR semantics).
// Store misses carry their mutation with them: the architectural write
// commits when the write-allocate fill arrives, not at issue time.
type waiter struct {
	write  bool
	coreID int
	vaddr  uint64
	done   func(int64)
}

// Simulator is one assembled system.
type Simulator struct {
	cfg     Config
	streams []workload.Source
	cores   []*cpu.Core
	l1, l2  []*cache.Cache
	l3      *cache.Cache
	vmsys   *vm.System
	arch    *mem.Store
	img     *mem.Store
	ctrl    memctrl.Controller
	obs     prefetchObserver
	mshr    map[mem.LineAddr][]waiter
	eng     *shardEngine // non-nil when cfg.Shards >= 2 (epoch engine)
	evq     *eventSched  // non-nil when cfg.EventDriven (discrete-event engine)

	now         int64
	windowStart int64
	fatal       error

	// Per-run observability. Each simulator owns its own registry and
	// tracer — per-run isolation is what keeps CompareParallel output
	// byte-identical at any -parallel level. Both are nil when disabled.
	reg    *obs.Registry
	tracer *obs.Tracer

	tlb     []tlbEntry // per-core direct-mapped TLB (fast path only)
	scratch [64]byte   // reusable line buffer for store mutation

	// Measured-window counters.
	demandAccesses uint64
	pageInits      uint64
}

// tlbEntry caches one vpage translation per core (performance only; the
// page tables in internal/vm remain authoritative).
type tlbEntry struct {
	vpage uint64
	paddr mem.LineAddr // physical line address of the page base
	valid bool
}

const tlbSize = 64 // entries per core, direct-mapped

// llcAdapter exposes the shared L3 to the controller, enforcing inclusion
// by back-invalidating private caches on every L3 removal.
type llcAdapter struct{ s *Simulator }

func (l llcAdapter) Probe(a mem.LineAddr) (*cache.Entry, bool) { return l.s.l3.Probe(a) }
func (l llcAdapter) SetIndex(a mem.LineAddr) int               { return l.s.l3.SetIndex(a) }
func (l llcAdapter) NumSets() int                              { return l.s.l3.NumSets() }

func (l llcAdapter) InstallFill(core int, a mem.LineAddr, e cache.Entry, now int64) {
	victim, _ := l.s.l3.Install(a, e)
	if victim.Valid {
		l.s.backInvalidate(victim.Tag)
		l.s.ctrl.Evict(int(victim.Core), victim, now)
	}
}

func (l llcAdapter) Drop(a mem.LineAddr) (cache.Entry, bool) {
	e, ok := l.s.l3.Invalidate(a)
	if ok {
		l.s.backInvalidate(a)
	}
	return e, ok
}

// New assembles a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg, mshr: make(map[mem.LineAddr][]waiter)}

	// Workload streams: rate mode (one workload, all cores), a mix, or
	// caller-provided sources (trace replay).
	parts := make([]*workload.Workload, cfg.Cores)
	if cfg.Sources != nil {
		for i := 0; i < cfg.Cores; i++ {
			src, err := cfg.Sources(i, cfg.Seed*1000+int64(i))
			if err != nil {
				return nil, err
			}
			s.streams = append(s.streams, src)
		}
	} else if cfg.Custom != nil {
		if err := cfg.Custom.Validate(); err != nil {
			return nil, err
		}
		for i := range parts {
			parts[i] = cfg.Custom
		}
	} else if mix, err := workload.LookupMix(cfg.Workload); err == nil {
		if len(mix.Parts) != cfg.Cores {
			return nil, fmt.Errorf("sim: mix %s has %d parts, config has %d cores",
				mix.Name, len(mix.Parts), cfg.Cores)
		}
		for i, name := range mix.Parts {
			w, err := workload.Lookup(name)
			if err != nil {
				return nil, err
			}
			parts[i] = w
		}
	} else {
		w, err := workload.Lookup(cfg.Workload)
		if err != nil {
			return nil, fmt.Errorf("sim: %q is neither a workload nor a mix", cfg.Workload)
		}
		for i := range parts {
			parts[i] = w
		}
	}
	if cfg.Sources == nil {
		for i, w := range parts {
			s.streams = append(s.streams, w.NewStream(cfg.Seed*1000+int64(i)))
		}
	}

	// Memory system. The metadata-table reservation (2 bits per line) is
	// carved out under every scheme so physical page placement — and
	// therefore DRAM behavior — is identical across scheme comparisons.
	reserved := cfg.MemBytes / 256
	vmsys, err := vm.New(cfg.MemBytes, cfg.Cores, cfg.Seed, reserved)
	if err != nil {
		return nil, err
	}
	s.vmsys = vmsys
	s.arch = mem.NewStore()
	s.img = mem.NewStore()

	d, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}

	// Caches.
	mk := func(size, assoc int) (*cache.Cache, error) {
		return cache.New(cache.Config{SizeBytes: size, Assoc: assoc})
	}
	s.l3, err = mk(cfg.L3Bytes, cfg.L3Assoc)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Cores; i++ {
		c1, err := mk(cfg.L1Bytes, cfg.L1Assoc)
		if err != nil {
			return nil, err
		}
		c2, err := mk(cfg.L2Bytes, cfg.L2Assoc)
		if err != nil {
			return nil, err
		}
		s.l1 = append(s.l1, c1)
		s.l2 = append(s.l2, c2)
	}

	// Controller.
	adapter := llcAdapter{s}
	switch cfg.Scheme {
	case SchemeUncompressed:
		s.ctrl = memctrl.NewUncompressed(d, s.img, s.arch, adapter)
	case SchemeNextLine:
		s.ctrl = memctrl.NewNextLinePrefetch(d, s.img, s.arch, adapter)
	case SchemeIdeal:
		s.ctrl = memctrl.NewIdealTMC(d, s.img, s.arch, adapter)
	case SchemeTableTMC:
		c, err := memctrl.NewTableTMC(d, s.img, s.arch, adapter,
			vmsys.ReservedBase(), cfg.MCacheBytes)
		if err != nil {
			return nil, err
		}
		s.ctrl = c
	case SchemeMemZip:
		c, err := memctrl.NewMemZip(d, s.img, s.arch, adapter,
			vmsys.ReservedBase(), cfg.MCacheBytes)
		if err != nil {
			return nil, err
		}
		s.ctrl = c
	case SchemePTMC:
		s.ctrl = memctrl.NewPTMC(d, s.img, s.arch, adapter, cfg.Seed,
			memctrl.WithLLPEntries(cfg.LLPEntries),
			memctrl.WithLITMode(cfg.LITMode))
	case SchemeDynamicPTMC:
		s.ctrl = memctrl.NewPTMC(d, s.img, s.arch, adapter, cfg.Seed,
			memctrl.WithLLPEntries(cfg.LLPEntries),
			memctrl.WithLITMode(cfg.LITMode),
			memctrl.WithDynamic(cfg.Cores, cfg.SampleFrac, cfg.PerCoreDyn))
	}
	if cfg.DecompCycles > 0 {
		if dc, ok := s.ctrl.(interface{ SetDecompressCycles(int64) }); ok {
			dc.SetDecompressCycles(cfg.DecompCycles)
		}
	}
	s.obs, _ = s.ctrl.(prefetchObserver)

	// Epoch engine (Config.Shards >= 2): cycle skipping plus sharded page
	// init and deferred verification. Shards <= 1 keeps the reference
	// serial loop untouched.
	if cfg.Shards >= 2 {
		s.eng = newShardEngine(s, cfg.Shards)
	}
	// Discrete-event engine (Config.EventDriven): replaces the run loop
	// with runEvent. Composes with the epoch engine — page-init fan-out
	// and the verify sink stay with shardEngine; only the loop changes.
	// The DRAM model needs engine mode for its O(1) wake schedule; the
	// epoch engine already enabled it when present.
	if cfg.EventDriven && s.eng == nil {
		s.ctrl.DRAM().SetEngineMode(true)
	}

	// Observability wiring. The tracer attaches to the controller (every
	// scheme embeds memctrl's base, which implements SetTracer) and, for
	// Dynamic-PTMC, to the policy's flip hook; the registry wraps the live
	// stats structs behind named series.
	if cfg.Trace {
		s.tracer = obs.NewTracer(cfg.TraceCapacity)
		if st, ok := s.ctrl.(interface{ SetTracer(*obs.Tracer) }); ok {
			st.SetTracer(s.tracer)
		}
		if p, ok := s.ctrl.(*memctrl.PTMC); ok && p.Dynamic() != nil {
			tr := s.tracer
			p.Dynamic().SetFlipHook(func(core int, enabled bool) {
				arg := int64(0)
				if enabled {
					arg = 1
				}
				tr.Emit(obs.KindPolicyFlip, s.now, 0, core, 0, arg)
			})
		}
	}
	if cfg.MetricsInterval > 0 {
		s.reg = obs.NewRegistry()
		s.registerMetrics()
	}

	// Cores.
	for i := 0; i < cfg.Cores; i++ {
		s.cores = append(s.cores, cpu.New(i, cfg.Core, s.streams[i], s.access))
	}
	s.tlb = make([]tlbEntry, cfg.Cores*tlbSize)
	if cfg.EventDriven {
		s.evq = newEventSched(s) // needs cores + controller assembled
	}
	return s, nil
}

// registerMetrics wraps the run's live stats structs behind named, labeled
// series. The closures read fields off stable pointers (resetStats zeroes
// the structs in place), so a snapshot is a loop of field loads.
func (s *Simulator) registerMetrics() {
	lbl := map[string]string{"scheme": s.cfg.Scheme, "workload": s.cfg.Workload}
	st := s.ctrl.Stats()
	counter := func(name string, read func() uint64) { s.reg.Counter(name, lbl, read) }
	gauge := func(name string, read func() uint64) { s.reg.Gauge(name, lbl, read) }

	// Memory-controller bandwidth events (Figures 4/14 stacks, Figure 16
	// cost/benefit inputs).
	counter("mem.demand_reads", func() uint64 { return st.DemandReads })
	counter("mem.mispredict_reads", func() uint64 { return st.MispredictReads })
	counter("mem.metadata_reads", func() uint64 { return st.MetadataReads })
	counter("mem.prefetch_reads", func() uint64 { return st.PrefetchReads })
	counter("mem.dirty_writes", func() uint64 { return st.DirtyWrites })
	counter("mem.clean_comp_writes", func() uint64 { return st.CleanCompIntoW })
	counter("mem.invalidates", func() uint64 { return st.Invalidates })
	counter("mem.metadata_writes", func() uint64 { return st.MetadataWrites })
	counter("mem.groups4", func() uint64 { return st.Groups4 })
	counter("mem.groups2", func() uint64 { return st.Groups2 })
	counter("mem.singles", func() uint64 { return st.SinglesWrit })
	counter("mem.free_installs", func() uint64 { return st.FreeInstalls })
	counter("mem.useful_free_pf", func() uint64 { return st.UsefulFreePf })
	counter("mem.coalesced_reads", func() uint64 { return st.CoalescedReads })
	counter("mem.fills_compressed", func() uint64 { return st.FillsCompressed })
	counter("mem.fills_uncompressed", func() uint64 { return st.FillsUncompressed })
	counter("mem.degradations", func() uint64 { return st.Degradations() })

	d := s.ctrl.DRAM()
	counter("dram.reads", func() uint64 { return d.Stats.Reads })
	counter("dram.writes", func() uint64 { return d.Stats.Writes })
	counter("dram.row_hits", func() uint64 { return d.Stats.RowHits })
	counter("dram.activates", func() uint64 { return d.Stats.Activates })
	gauge("dram.queue_depth", func() uint64 { return uint64(d.QueueDepth()) })

	l3 := s.l3
	counter("l3.hits", func() uint64 { return l3.Stats.Hits })
	counter("l3.misses", func() uint64 { return l3.Stats.Misses })
	counter("l3.evictions", func() uint64 { return l3.Stats.Evictions })

	if p, ok := s.ctrl.(*memctrl.PTMC); ok {
		llp := p.LLP()
		counter("llp.predictions", func() uint64 { return llp.Predictions })
		counter("llp.correct", func() uint64 { return llp.Correct })
		if dyn := p.Dynamic(); dyn != nil {
			for i, uc := range dyn.Counters() {
				uc := uc
				clbl := map[string]string{
					"scheme":   s.cfg.Scheme,
					"workload": s.cfg.Workload,
					"core":     fmt.Sprintf("%d", i),
				}
				s.reg.Counter("dyn.benefits", clbl, func() uint64 { return uc.Benefits })
				s.reg.Counter("dyn.costs", clbl, func() uint64 { return uc.Costs })
				s.reg.Gauge("dyn.counter", clbl, func() uint64 { return uint64(uc.Value()) })
				enabled := func() uint64 {
					if uc.Enabled() {
						return 1
					}
					return 0
				}
				s.reg.Gauge("dyn.enabled", clbl, enabled)
			}
		}
	}
	if t, ok := s.ctrl.(*memctrl.TableTMC); ok {
		m := t.Meta()
		counter("mcache.lookups", func() uint64 { return m.Lookups })
		counter("mcache.hits", func() uint64 { return m.Hits })
	}
}

// backInvalidate enforces inclusion: remove a from every private cache.
func (s *Simulator) backInvalidate(a mem.LineAddr) {
	for i := range s.l1 {
		s.l1[i].Invalidate(a)
		s.l2[i].Invalidate(a)
	}
}

// translate maps and, on first touch of a page, synthesizes its contents
// into the architectural store and the scheme's memory image.
func (s *Simulator) translate(coreID int, vaddr uint64) (mem.LineAddr, bool) {
	vpage := vaddr >> vm.PageShift
	lineInPage := (vaddr >> 6) & (vm.PageLines - 1)
	te := &s.tlb[coreID*tlbSize+int(vpage%tlbSize)]
	if te.valid && te.vpage == vpage {
		return te.paddr + mem.LineAddr(lineInPage), true
	}
	paddr, allocated, err := s.vmsys.Translate(coreID, vaddr)
	if err != nil {
		s.fatal = err
		return 0, false
	}
	te.vpage, te.paddr, te.valid = vpage, paddr-mem.LineAddr(lineInPage), true
	if allocated {
		s.pageInits++
		pageBase := paddr &^ (vm.PageLines - 1)
		vlineBase := (vaddr >> 6) &^ (vm.PageLines - 1)
		if s.eng != nil && s.eng.initer != nil {
			s.eng.initPage(coreID, pageBase, vlineBase)
		} else {
			buf := make([]byte, mem.LineSize)
			for i := uint64(0); i < vm.PageLines; i++ {
				s.streams[coreID].FillLine(vlineBase+i, buf)
				s.arch.Write(pageBase+mem.LineAddr(i), buf)
				s.ctrl.InitLine(pageBase + mem.LineAddr(i))
			}
		}
	}
	return paddr, true
}

// access is the hierarchy walk each memory instruction performs.
func (s *Simulator) access(coreID int, vaddr uint64, write bool, now int64, done func(int64)) {
	paddr, ok := s.translate(coreID, vaddr)
	if !ok {
		done(now + 1)
		return
	}
	s.demandAccesses++
	resident := false
	if _, hit := s.l3.Probe(paddr); hit {
		resident = true
	}
	if write && resident {
		// Store to a resident line commits immediately.
		s.streams[coreID].MutateLine(vaddr>>6, s.scratch[:])
		s.arch.Write(paddr, s.scratch[:])
	}

	if _, hit := s.l1[coreID].Lookup(paddr); hit {
		if write {
			s.markDirty(paddr)
		}
		done(now + s.cfg.L1Lat)
		return
	}
	if _, hit := s.l2[coreID].Lookup(paddr); hit {
		s.l1[coreID].Install(paddr, cache.Entry{Core: uint8(coreID)})
		if write {
			s.markDirty(paddr)
		}
		done(now + s.cfg.L2Lat)
		return
	}
	if e, hit := s.l3.Lookup(paddr); hit {
		if e.Prefetch {
			e.Prefetch = false
			if s.obs != nil {
				s.obs.OnDemandHit(coreID, paddr)
			}
		}
		if write {
			e.Dirty = true
		}
		s.fillPrivate(coreID, paddr)
		done(now + s.cfg.L3Lat)
		return
	}

	// L3 miss: merge into an outstanding fill or start one. Merged
	// (secondary) misses are not architectural L3 misses — MPKI counts
	// primary misses only.
	w := waiter{write: write, coreID: coreID, vaddr: vaddr, done: done}
	if _, outstanding := s.mshr[paddr]; outstanding {
		s.l3.Stats.Misses--
		s.mshr[paddr] = append(s.mshr[paddr], w)
		return
	}
	s.mshr[paddr] = []waiter{w}
	s.ctrl.Read(coreID, paddr, now, func(c int64) {
		s.fillDone(coreID, paddr, c)
	})
}

// markDirty sets the L3 dirty bit (the single source of dirtiness truth).
func (s *Simulator) markDirty(paddr mem.LineAddr) {
	if e, ok := s.l3.Probe(paddr); ok {
		e.Dirty = true
		e.Prefetch = false
	}
}

// fillPrivate mirrors a line into the requesting core's L1/L2.
func (s *Simulator) fillPrivate(coreID int, paddr mem.LineAddr) {
	s.l2[coreID].Install(paddr, cache.Entry{Core: uint8(coreID)})
	s.l1[coreID].Install(paddr, cache.Entry{Core: uint8(coreID)})
}

// fillDone completes an outstanding miss: the controller has installed the
// line into L3; wake every merged waiter.
func (s *Simulator) fillDone(coreID int, paddr mem.LineAddr, c int64) {
	waiters := s.mshr[paddr]
	delete(s.mshr, paddr)
	if e, ok := s.l3.Probe(paddr); ok {
		e.Prefetch = false
		for _, w := range waiters {
			if w.write {
				// The write-allocate fill has arrived: commit the store.
				s.streams[w.coreID].MutateLine(w.vaddr>>6, s.scratch[:])
				s.arch.Write(paddr, s.scratch[:])
				e.Dirty = true
			}
		}
	}
	s.fillPrivate(coreID, paddr)
	end := c + s.cfg.L3Lat
	for _, w := range waiters {
		w.done(end)
	}
	if s.evq != nil {
		// The event engine caches per-core wakes; every ROB this fill just
		// wrote must be re-registered after the delivering controller tick.
		for _, w := range waiters {
			s.evq.markDirty(w.coreID)
		}
	}
}

// run advances the system until every core retires `limit` instructions
// (from its current window), maxCycles elapse, or ctx is cancelled. The
// context is polled every 4096 loop iterations — cheap enough to be
// invisible, and what lets a per-point timeout (cmd/sweep -timeout,
// exec.JobOptions) actually interrupt a pathological simulation instead
// of hanging a worker forever. The poll is iteration-counted, not keyed
// on s.now & 4095: the serial loop executes every cycle so the cadence is
// the same, but keying on the clock would alias in any engine that skips
// cycles (a jump can step over every multiple of 4096), and all three run
// loops share one polling convention.
func (s *Simulator) run(ctx context.Context, limit, maxCycles int64) error {
	for i := range s.cores {
		s.cores[i].ResetWindow(limit)
	}
	s.windowStart = s.now
	deadline := s.now + maxCycles
	for iter := 0; ; iter++ {
		allDone := true
		for _, c := range s.cores {
			if !c.Done() {
				allDone = false
			}
		}
		if allDone {
			return nil
		}
		if s.fatal != nil {
			return s.fatal
		}
		if s.now >= deadline {
			return fmt.Errorf("sim: exceeded %d cycles without finishing", maxCycles)
		}
		if iter&4095 == 0 && ctx.Err() != nil {
			return fmt.Errorf("sim: interrupted at cycle %d: %w", s.now, ctx.Err())
		}
		s.now++
		for _, c := range s.cores {
			c.Cycle(s.now)
		}
		if s.now%int64(s.cfg.DRAM.BusRatio) == 0 {
			s.ctrl.Tick(s.now)
		}
		if s.reg != nil && s.now%s.cfg.MetricsInterval == 0 {
			s.reg.Snapshot(s.now)
		}
	}
}

// resetStats zeroes every measured counter (end of warmup).
func (s *Simulator) resetStats() {
	for i := range s.l1 {
		s.l1[i].Stats = cache.Stats{}
		s.l2[i].Stats = cache.Stats{}
	}
	s.l3.Stats = cache.Stats{}
	*s.ctrl.Stats() = memctrl.Stats{}
	s.ctrl.DRAM().Stats = dram.Stats{}
	s.demandAccesses = 0
	s.pageInits = 0
	s.reg.Reset()    // nil-safe: drops warmup snapshots, keeps series
	s.tracer.Reset() // nil-safe: drops warmup events
	if p, ok := s.ctrl.(*memctrl.PTMC); ok {
		p.LLP().Predictions = 0
		p.LLP().Correct = 0
	}
	if t, ok := s.ctrl.(*memctrl.TableTMC); ok {
		t.Meta().Lookups = 0
		t.Meta().Hits = 0
		t.Meta().Misses = 0
		t.Meta().Writes = 0
	}
}

// Run executes warmup then the measured window and returns the results.
func (s *Simulator) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cancellation: the simulation aborts (returning
// ctx's error) at the next 4096-cycle checkpoint after ctx is done.
func (s *Simulator) RunContext(ctx context.Context) (*Result, error) {
	const cyclesPerInstr = 400 // generous safety budget
	runFn := s.run
	switch {
	case s.evq != nil:
		// Discrete-event loop; the epoch engine, when also configured,
		// keeps contributing page-init fan-out and the verify sink.
		runFn = s.runEvent
	case s.eng != nil:
		runFn = s.runSharded
	}
	if s.eng != nil {
		defer s.eng.stop()
	}
	if s.cfg.WarmupInstr > 0 {
		if err := runFn(ctx, s.cfg.WarmupInstr, s.cfg.WarmupInstr*cyclesPerInstr+10_000_000); err != nil {
			return nil, fmt.Errorf("warmup: %w", err)
		}
	}
	s.resetStats()
	if err := runFn(ctx, s.cfg.MeasureInstr, s.cfg.MeasureInstr*cyclesPerInstr+10_000_000); err != nil {
		return nil, err
	}
	return s.collect(), nil
}

// Controller exposes the scheme under test (figure-specific probes).
func (s *Simulator) Controller() memctrl.Controller { return s.ctrl }

// collect builds the Result from the measured window.
func (s *Simulator) collect() *Result {
	r := &Result{
		Workload: s.cfg.Workload,
		Scheme:   s.cfg.Scheme,
		Cores:    s.cfg.Cores,
	}
	var maxFinish int64
	var totalInstr int64
	for _, c := range s.cores {
		fin := c.FinishedAt() - s.windowStart
		if fin <= 0 {
			fin = 1
		}
		if fin > maxFinish {
			maxFinish = fin
		}
		r.PerCoreIPC = append(r.PerCoreIPC, float64(s.cfg.MeasureInstr)/float64(fin))
		totalInstr += s.cfg.MeasureInstr
	}
	r.Instructions = totalInstr
	r.Cycles = maxFinish
	r.L3 = s.l3.Stats
	r.Mem = *s.ctrl.Stats()
	r.DRAM = s.ctrl.DRAM().Stats
	r.MPKI = float64(s.l3.Stats.Misses) / (float64(totalInstr) / 1000)
	r.FootprintBytes = s.vmsys.FootprintBytes()
	r.Energy = energy.Compute(energy.DefaultParams(), r.DRAM,
		s.cfg.DRAM.Channels, r.Cycles, s.cfg.CPUFreqGHz)

	if p, ok := s.ctrl.(*memctrl.PTMC); ok {
		r.LLPAccuracy = p.LLP().Accuracy()
		r.HasLLP = true
	}
	if t, ok := s.ctrl.(*memctrl.TableTMC); ok {
		r.MCacheHitRate = t.Meta().HitRate()
		r.HasMCache = true
	}
	if s.reg != nil {
		// Close the series with an end-of-window snapshot so the final
		// partial window's deltas are exported too.
		s.reg.Snapshot(s.now)
		r.Metrics = s.reg.Export()
	}
	if s.tracer != nil {
		r.TraceEvents = s.tracer.Events()
		r.TraceDropped = s.tracer.Dropped()
	}
	return r
}
