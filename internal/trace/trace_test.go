package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"ptmc/internal/workload"
)

func testMix() workload.ValueMix {
	return workload.ValueMix{
		{Kind: workload.KindZero, Weight: 30},
		{Kind: workload.KindSmallInt, Weight: 50},
		{Kind: workload.KindRandom, Weight: 20},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMix(), 7)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{VAddr: 0x1000, Gap: 3, Write: false},
		{VAddr: 0x1040, Gap: 0, Write: true},
		{VAddr: 0xFFFF_FFFF_0000, Gap: 65535, Write: false},
	}
	for _, e := range events {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Events() != 3 {
		t.Errorf("events = %d", w.Events())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header.Seed != 7 || len(r.Header.Mix) != 3 {
		t.Errorf("header = %+v", r.Header)
	}
	for i, want := range events {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("event %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE GARBAGE"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("got %v, want ErrBadMagic", err)
	}
}

func TestTruncatedEvent(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testMix(), 1)
	w.Append(Event{VAddr: 1})
	w.Flush()
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated event should error")
	}
}

func TestCaptureTeesOps(t *testing.T) {
	wl, _ := workload.Lookup("libquantum06")
	src := wl.NewStream(3)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, wl.Mix, 3)
	cap := NewCapture(src, w)

	var recorded []workload.Op
	for i := 0; i < 500; i++ {
		recorded = append(recorded, cap.Next())
	}
	if cap.Err() != nil {
		t.Fatal(cap.Err())
	}
	w.Flush()

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplay(r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 500 {
		t.Fatalf("replay has %d events", rep.Len())
	}
	for i, want := range recorded {
		got := rep.Next()
		if got.VAddr != want.VAddr || got.Write != want.Write || got.Gap != want.Gap {
			t.Fatalf("op %d: %+v != %+v", i, got, want)
		}
	}
	// Looping after exhaustion.
	first := rep.Next()
	if first.VAddr != recorded[0].VAddr || rep.Loops != 1 {
		t.Error("replay should loop back to the start")
	}
}

func TestCaptureValuePassthrough(t *testing.T) {
	wl, _ := workload.Lookup("lbm06")
	src := wl.NewStream(4)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, wl.Mix, 4)
	cap := NewCapture(src, w)
	a, b := make([]byte, 64), make([]byte, 64)
	cap.FillLine(7, a)
	src2 := wl.NewStream(4)
	src2.FillLine(7, b)
	if !bytes.Equal(a, b) {
		t.Error("capture must not perturb value synthesis")
	}
	cap.MutateLine(7, a)
}

func TestReplayValuesMatchMixCompressibility(t *testing.T) {
	// Replay synthesizes values from the header mix: a zero-kind page
	// must produce a zero-dominated line.
	var buf bytes.Buffer
	zeroMix := workload.ValueMix{{Kind: workload.KindZero, Weight: 1}}
	w, _ := NewWriter(&buf, zeroMix, 9)
	w.Append(Event{VAddr: 0})
	w.Flush()
	r, _ := NewReader(&buf)
	rep, err := NewReplay(r)
	if err != nil {
		t.Fatal(err)
	}
	line := make([]byte, 64)
	rep.FillLine(123, line)
	nonzero := 0
	for _, b := range line {
		if b != 0 {
			nonzero++
		}
	}
	if nonzero > 8 {
		t.Errorf("zero-mix line has %d nonzero bytes", nonzero)
	}
	// Mutation changes values deterministically.
	line2 := make([]byte, 64)
	rep.MutateLine(123, line2)
	if bytes.Equal(line, line2) {
		t.Error("mutate should change the line")
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testMix(), 1)
	w.Flush()
	r, _ := NewReader(&buf)
	if _, err := NewReplay(r); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("got %v, want ErrEmptyTrace", err)
	}
}

func TestImplausibleHeaderRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write(make([]byte, 8)) // seed
	buf.Write([]byte{0, 0})    // zero mix entries
	if _, err := NewReader(&buf); err == nil {
		t.Error("zero-entry mix should be rejected")
	}
}
