package trace

import (
	"errors"
	"io"

	"ptmc/internal/workload"
)

// Capture wraps a workload.Source and tees every op it produces into a
// trace Writer. Value synthesis passes straight through.
type Capture struct {
	src workload.Source
	w   *Writer
	err error
}

// NewCapture builds the tee. Errors from the writer are sticky and
// reported by Err (a Source has no error channel of its own).
func NewCapture(src workload.Source, w *Writer) *Capture {
	return &Capture{src: src, w: w}
}

// Next implements workload.Source.
func (c *Capture) Next() workload.Op {
	op := c.src.Next()
	gap := op.Gap
	if gap > 65535 {
		gap = 65535
	}
	if err := c.w.Append(Event{VAddr: op.VAddr, Gap: uint16(gap), Write: op.Write}); err != nil && c.err == nil {
		c.err = err
	}
	return op
}

// FillLine implements workload.Source.
func (c *Capture) FillLine(vline uint64, buf []byte) { c.src.FillLine(vline, buf) }

// MutateLine implements workload.Source.
func (c *Capture) MutateLine(vline uint64, buf []byte) { c.src.MutateLine(vline, buf) }

// Err reports the first write error, if any.
func (c *Capture) Err() error { return c.err }

// Replay replays a recorded event sequence as a workload.Source,
// re-synthesizing line values deterministically from the mix descriptor in
// the trace header. When the events are exhausted the sequence loops
// (simulation horizons may exceed the recording).
type Replay struct {
	events []Event
	next   int
	Loops  int // completed passes over the recording

	values *workload.Stream
}

// NewReplay loads all events of a trace into memory and builds the source.
// The embedded workload.Stream provides value synthesis only; its access
// generator is unused.
func NewReplay(r *Reader) (*Replay, error) {
	var events []Event
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	if len(events) == 0 {
		return nil, ErrEmptyTrace
	}
	synth := &workload.Workload{
		Name: "trace-replay", Suite: "trace",
		FootprintBytes: 1 << 20, // unused by value synthesis
		MemFrac:        0.5, SeqRun: 1,
		Mix: r.Header.Mix,
	}
	return &Replay{
		events: events,
		values: synth.NewStream(r.Header.Seed),
	}, nil
}

// ErrEmptyTrace reports a trace with a header but no events.
var ErrEmptyTrace = errors.New("trace: no events")

// Next implements workload.Source.
func (t *Replay) Next() workload.Op {
	e := t.events[t.next]
	t.next++
	if t.next == len(t.events) {
		t.next = 0
		t.Loops++
	}
	return workload.Op{VAddr: e.VAddr, Gap: int(e.Gap), Write: e.Write}
}

// FillLine implements workload.Source.
func (t *Replay) FillLine(vline uint64, buf []byte) { t.values.FillLine(vline, buf) }

// MutateLine implements workload.Source.
func (t *Replay) MutateLine(vline uint64, buf []byte) { t.values.MutateLine(vline, buf) }

// Len returns the number of recorded events.
func (t *Replay) Len() int { return len(t.events) }
