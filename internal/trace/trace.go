// Package trace records and replays instruction/access traces. USIMM — the
// simulator the paper builds on — is trace-driven; this package gives the
// reproduction the same workflow: capture the access stream of a synthetic
// workload (or convert an external trace) once, then replay it bit-exactly
// under every memory-controller scheme.
//
// The on-disk format is a little-endian binary stream:
//
//	header:  magic "PTMCTRC1" (8 bytes), mix descriptor (see below)
//	events:  repeated records of
//	         vaddr  uint64
//	         gap    uint16  (non-memory instructions before the access)
//	         flags  uint8   (bit0: write)
//
// Replay re-synthesizes data values with the same deterministic machinery
// the generators use, so compressibility is reproduced from the mix
// descriptor embedded in the header.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ptmc/internal/workload"
)

var magic = [8]byte{'P', 'T', 'M', 'C', 'T', 'R', 'C', '1'}

// ErrBadMagic reports a stream that is not a PTMC trace.
var ErrBadMagic = errors.New("trace: bad magic (not a PTMC trace)")

// Event is one recorded access.
type Event struct {
	VAddr uint64
	Gap   uint16
	Write bool
}

const flagWrite = 1

// Writer appends events to a trace stream.
type Writer struct {
	w      *bufio.Writer
	events uint64
}

// NewWriter writes a trace header describing the value mix (so replay can
// synthesize data with the source workload's compressibility) and returns
// a Writer.
func NewWriter(w io.Writer, mix workload.ValueMix, seed int64) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(seed)); err != nil {
		return nil, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(mix))); err != nil {
		return nil, err
	}
	for _, e := range mix {
		if err := binary.Write(bw, binary.LittleEndian, uint16(e.Kind)); err != nil {
			return nil, err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(e.Weight)); err != nil {
			return nil, err
		}
	}
	return &Writer{w: bw}, nil
}

// Append records one event.
func (t *Writer) Append(e Event) error {
	var buf [11]byte
	binary.LittleEndian.PutUint64(buf[0:], e.VAddr)
	binary.LittleEndian.PutUint16(buf[8:], e.Gap)
	if e.Write {
		buf[10] = flagWrite
	}
	if _, err := t.w.Write(buf[:]); err != nil {
		return err
	}
	t.events++
	return nil
}

// Events returns the number of appended events.
func (t *Writer) Events() uint64 { return t.events }

// Flush drains buffered output; call before closing the underlying file.
func (t *Writer) Flush() error { return t.w.Flush() }

// Header is the decoded trace preamble.
type Header struct {
	Seed int64
	Mix  workload.ValueMix
}

// readHeader parses and validates the preamble.
func readHeader(r *bufio.Reader) (Header, error) {
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return Header{}, fmt.Errorf("trace: short header: %w", err)
	}
	if m != magic {
		return Header{}, ErrBadMagic
	}
	var h Header
	var seed uint64
	if err := binary.Read(r, binary.LittleEndian, &seed); err != nil {
		return Header{}, err
	}
	h.Seed = int64(seed)
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return Header{}, err
	}
	if n == 0 || n > 64 {
		return Header{}, fmt.Errorf("trace: implausible mix size %d", n)
	}
	for i := 0; i < int(n); i++ {
		var kind, weight uint16
		if err := binary.Read(r, binary.LittleEndian, &kind); err != nil {
			return Header{}, err
		}
		if err := binary.Read(r, binary.LittleEndian, &weight); err != nil {
			return Header{}, err
		}
		h.Mix = append(h.Mix, struct {
			Kind   workload.ValueKind
			Weight int
		}{workload.ValueKind(kind), int(weight)})
	}
	return h, nil
}

// Reader streams events from a trace.
type Reader struct {
	r      *bufio.Reader
	Header Header
}

// NewReader validates the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	return &Reader{r: br, Header: h}, nil
}

// Next returns the next event; io.EOF after the last one.
func (t *Reader) Next() (Event, error) {
	var buf [11]byte
	if _, err := io.ReadFull(t.r, buf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Event{}, fmt.Errorf("trace: truncated event: %w", err)
		}
		return Event{}, err
	}
	return Event{
		VAddr: binary.LittleEndian.Uint64(buf[0:]),
		Gap:   binary.LittleEndian.Uint16(buf[8:]),
		Write: buf[10]&flagWrite != 0,
	}, nil
}
