package dram

import (
	"reflect"
	"testing"

	"ptmc/internal/mem"
)

// TestIdleAccountingSerialVsEngine pins the contract behind the epoch
// engine's cycle skipping: Stats.IdleChannels counts one event per idle
// channel per bus cycle in BOTH execution modes — whether the cycle was
// actually scanned (serial Tick loop, including its all-empty early exit),
// individually slept through (engine-mode Tick with a future wakeAt), or
// skipped wholesale (SkippedTicks). The same request schedule is replayed
// through both drivers and every statistic and completion must coincide.
func TestIdleAccountingSerialVsEngine(t *testing.T) {
	type enq struct {
		at    int64
		addr  mem.LineAddr
		write bool
	}
	// Addresses 0..3 land on channel 0, 4..7 on channel 1 (the channel
	// interleave rotates 4-line groups). The schedule covers: one busy
	// channel with the other idle, both busy, a long fully-idle gap, and a
	// late burst after the gap.
	schedule := []enq{
		{0, 0, false},
		{0, 1, false},
		{4, 64, false}, // same channel 0, different row
		{8, 4, false},  // channel 1
		{8, 5, true},
		{400, 2, true}, // after a long idle gap
		{400, 6, false},
	}
	const horizon = 1200

	run := func(engine bool) (Stats, []int64) {
		d, err := New(DDR4())
		if err != nil {
			t.Fatal(err)
		}
		d.SetEngineMode(engine)
		r := int64(d.Config().BusRatio)
		var completions []int64
		ei := 0
		enqueueDue := func(now int64) {
			for ei < len(schedule) && schedule[ei].at == now {
				e := schedule[ei]
				req := &Request{Addr: e.addr, Write: e.write, Beats: 4,
					OnComplete: func(c int64) { completions = append(completions, c) }}
				if !d.Enqueue(req, now) {
					t.Fatalf("enqueue rejected at %d", now)
				}
				ei++
			}
		}
		for now := int64(0); now <= horizon; {
			enqueueDue(now)
			d.Tick(now)
			next := now + r
			if !engine {
				now = next
				continue
			}
			// Engine driver: jump to the next cycle anything can happen —
			// a channel wake or a scheduled enqueue — crediting the
			// skipped bus cycles to the idle accounting, exactly as the
			// epoch engine does between epochs.
			wake := d.NextEventCycle()
			if ei < len(schedule) && schedule[ei].at < wake {
				wake = schedule[ei].at
			}
			if wake > horizon+r {
				wake = horizon + r
			}
			if wake > next {
				d.SkippedTicks((wake - next) / r)
				now = wake
			} else {
				now = next
			}
		}
		return d.Stats, completions
	}

	serialStats, serialDone := run(false)
	engineStats, engineDone := run(true)

	if serialStats.IdleChannels != engineStats.IdleChannels {
		t.Errorf("IdleChannels diverge: serial=%d engine=%d",
			serialStats.IdleChannels, engineStats.IdleChannels)
	}
	if !reflect.DeepEqual(serialStats, engineStats) {
		t.Errorf("stats diverge:\nserial: %+v\nengine: %+v", serialStats, engineStats)
	}
	if !reflect.DeepEqual(serialDone, engineDone) {
		t.Errorf("completion times diverge:\nserial: %v\nengine: %v", serialDone, engineDone)
	}
	if len(serialDone) != len(schedule) {
		t.Fatalf("completed %d of %d requests", len(serialDone), len(schedule))
	}
	// Sanity: the run has real idle time to account (the gap dominates).
	if serialStats.IdleChannels == 0 {
		t.Error("schedule produced no idle accounting at all")
	}
}

// TestFutureStampedEnqueueVisibleNextTick is the regression test for a
// wake-scheduling bug the full-scale benchmark runs exposed: the miss path
// stamps requests with future completion-latency cycles, and wakeOnEnqueue
// used to compute the channel's wake from that stamp — so a sleeping
// channel slept through bus ticks where the serial loop's per-tick scan
// (which never looks at stamps) would already have issued the request.
// Visibility is a property of the Enqueue call's program point: a request
// enqueued between ticks must wake its channel no later than the next
// executed tick, whatever cycle stamp it carries.
func TestFutureStampedEnqueueVisibleNextTick(t *testing.T) {
	d, err := New(DDR4())
	if err != nil {
		t.Fatal(err)
	}
	d.SetEngineMode(true)
	r := int64(d.Config().BusRatio)

	// Put the channel to sleep: issue one read and run ticks until it
	// completes and the channel has nothing left to do.
	var done int64
	req := &Request{Addr: 0, OnComplete: func(c int64) { done = c }}
	if !d.Enqueue(req, 0) {
		t.Fatal("enqueue rejected")
	}
	now := int64(0)
	for ; done == 0 && now < 10_000; now += r {
		d.Tick(now)
	}
	if done == 0 {
		t.Fatal("read never completed")
	}
	if w := d.NextEventCycle(); w <= now {
		t.Fatalf("channel still has work scheduled at %d; test needs it asleep", w)
	}

	// A core-driven enqueue at the current cycle carrying a far-future
	// latency stamp: the serial loop would scan it at the next executed
	// tick, so the engine's wake must be no later than that.
	stamp := now + 40*r // e.g. now + L3 latency and then some
	req2 := &Request{Addr: 64, OnComplete: func(int64) {}}
	if !d.Enqueue(req2, stamp) {
		t.Fatal("enqueue rejected")
	}
	if w, next := d.NextEventCycle(), now+r; w > next {
		t.Errorf("future-stamped enqueue woke the channel at %d, want <= %d (next tick); "+
			"the stamp (%d) must not delay visibility", w, next, stamp)
	}
}
