package dram

import (
	"testing"

	"ptmc/internal/mem"
)

// addrFor builds a line address with the given channel, bank, row and
// column under the group-granular interleaving decode.
func addrFor(cfg Config, ch, bank, row, col int) mem.LineAddr {
	chanBits := log2(uint64(cfg.Channels))
	colHighBits := log2(uint64(cfg.RowLines)) - 2
	bankBits := log2(uint64(cfg.BanksPerRank))
	rankBits := log2(uint64(cfg.RanksPerChannel))
	v := uint64(row)
	v = v << rankBits // rank 0
	v = v<<bankBits | uint64(bank)
	v = v << colHighBits // column-high 0
	v = v<<chanBits | uint64(ch)
	v = v<<2 | uint64(col&3)
	return mem.LineAddr(v)
}

func TestGroupMembersShareChannelRowBank(t *testing.T) {
	// TMC's whole premise: a 4-line group and its base must land on the
	// same channel, bank, and row, so one burst can serve them all and
	// base-located units do not skew channel load.
	cfg := DDR4()
	d := newDRAM(t, cfg)
	for g := 0; g < 4096; g++ {
		base := mem.LineAddr(g * 4)
		c0, b0, r0 := d.decode(base)
		for i := 1; i < 4; i++ {
			c, b, r := d.decode(base + mem.LineAddr(i))
			if c != c0 || b != b0 || r != r0 {
				t.Fatalf("group %d member %d maps to (%d,%d,%d), base to (%d,%d,%d)",
					g, i, c, b, r, c0, b0, r0)
			}
		}
	}
}

func TestGroupBasesSpreadAcrossChannels(t *testing.T) {
	// The regression this decode exists to prevent: group bases must not
	// concentrate on one channel.
	cfg := DDR4()
	d := newDRAM(t, cfg)
	counts := make([]int, cfg.Channels)
	for g := 0; g < 4096; g++ {
		ch, _, _ := d.decode(mem.LineAddr(g * 4))
		counts[ch]++
	}
	for ch, n := range counts {
		if n == 0 {
			t.Fatalf("channel %d receives no group bases", ch)
		}
	}
	if counts[0] == 4096 {
		t.Fatal("all group bases on channel 0 (per-line interleave bug)")
	}
}

func TestTRASEnforcedBeforePrecharge(t *testing.T) {
	cfg := DDR4()
	cfg.Channels = 1
	d := newDRAM(t, cfg)
	// Access row 0, then immediately row 1 of the same bank: the second
	// access must wait for tRAS after the first activate.
	a1 := addrFor(cfg, 0, 0, 0, 0)
	a2 := addrFor(cfg, 0, 0, 1, 0)
	var t1, t2 int64
	d.Enqueue(&Request{Addr: a1, OnComplete: func(n int64) { t1 = n }}, 0)
	d.Enqueue(&Request{Addr: a2, OnComplete: func(n int64) { t2 = n }}, 0)
	run(t, d, 100_000)
	ratio := int64(cfg.BusRatio)
	// First activate at 0; precharge >= tRAS; then tRP+tRCD+tCAS+tBurst.
	minT2 := int64(cfg.TRAS)*ratio + int64(cfg.TRP+cfg.TRCD+cfg.TCAS+cfg.TBurst)*ratio
	if t2 < minT2 {
		t.Errorf("row conflict finished at %d, violates tRAS floor %d", t2, minT2)
	}
	if t2 <= t1 {
		t.Error("conflicting access cannot finish before the first")
	}
}

func TestRowHitsPipelineAtBusRate(t *testing.T) {
	// Back-to-back hits to one open row must stream at one burst per
	// tBurst (the column-command pipelining fix).
	cfg := DDR4()
	cfg.Channels = 1
	d := newDRAM(t, cfg)
	var times []int64
	for i := 0; i < 8; i++ {
		d.Enqueue(&Request{Addr: mem.LineAddr(i), OnComplete: func(n int64) {
			times = append(times, n)
		}}, 0)
	}
	run(t, d, 100_000)
	burst := int64(cfg.TBurst * cfg.BusRatio)
	for i := 1; i < len(times); i++ {
		if gap := times[i] - times[i-1]; gap != burst {
			t.Errorf("burst %d gap = %d, want %d (pipelined row hits)", i, gap, burst)
		}
	}
}

func TestRanksProvideBankParallelism(t *testing.T) {
	cfg := DDR4()
	cfg.Channels = 1
	finish := func(ranks int) int64 {
		c := cfg
		c.RanksPerChannel = ranks
		d := newDRAM(t, c)
		var last int64
		// Conflicting rows on what is one bank with 1 rank, two with 2.
		for i := 0; i < 8; i++ {
			row := i
			bankBits := log2(uint64(c.BanksPerRank))
			rankBits := log2(uint64(c.RanksPerChannel))
			v := uint64(row)<<rankBits | uint64(i%ranks)
			v = v << bankBits
			v = v << (log2(uint64(c.RowLines)) - 2)
			v = v << log2(uint64(c.Channels))
			v = v << 2
			d.Enqueue(&Request{Addr: mem.LineAddr(v), OnComplete: func(n int64) { last = n }}, 0)
		}
		run(t, d, 1_000_000)
		return last
	}
	if two, one := finish(2), finish(1); two >= one {
		t.Errorf("2 ranks (%d) should beat 1 rank (%d) on conflicting rows", two, one)
	}
}

func TestWriteDrainRecoversReadService(t *testing.T) {
	cfg := DDR4()
	cfg.Channels = 1
	d := newDRAM(t, cfg)
	// Saturate the write queue to trigger a drain, then issue a read.
	for i := 0; i < cfg.WriteQCap; i++ {
		d.Enqueue(&Request{Addr: mem.LineAddr(i * 512), Write: true}, 0)
	}
	var readDone int64 = -1
	now := int64(0)
	for ; readDone < 0 && now < 1_000_000; now += int64(cfg.BusRatio) {
		d.Tick(now)
		if d.Stats.DrainEnters > 0 && readDone == -1 && d.QueueDepth() < cfg.WriteDrainLo {
			d.Enqueue(&Request{Addr: 0, OnComplete: func(n int64) { readDone = n }}, now)
			readDone = -2 // issued
		}
		if readDone == -2 && d.QueueDepth() == 0 {
			break
		}
	}
	if d.Stats.DrainEnters == 0 {
		t.Fatal("write drain never triggered")
	}
}

func TestBusBusyAccounting(t *testing.T) {
	cfg := DDR4()
	d := newDRAM(t, cfg)
	for i := 0; i < 16; i++ {
		d.Enqueue(&Request{Addr: mem.LineAddr(i)}, 0)
	}
	run(t, d, 100_000)
	want := uint64(16 * cfg.TBurst * cfg.BusRatio)
	if d.Stats.BusBusy != want {
		t.Errorf("bus busy = %d, want %d", d.Stats.BusBusy, want)
	}
}
