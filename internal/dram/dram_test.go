package dram

import (
	"testing"

	"ptmc/internal/mem"
)

// run ticks the model until all queues drain or maxCycles pass, returning
// the final CPU cycle.
func run(t *testing.T, d *DRAM, maxCycles int64) int64 {
	t.Helper()
	ratio := int64(d.Config().BusRatio)
	var now int64
	for now = 0; now < maxCycles; now += ratio {
		d.Tick(now)
		if d.QueueDepth() == 0 {
			return now
		}
	}
	t.Fatalf("dram did not drain within %d cycles", maxCycles)
	return now
}

func newDRAM(t *testing.T, cfg Config) *DRAM {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidate(t *testing.T) {
	bad := DDR4()
	bad.Channels = 3
	if _, err := New(bad); err == nil {
		t.Error("3 channels should be rejected")
	}
	bad = DDR4()
	bad.WriteDrainLo = bad.WriteDrainHi
	if _, err := New(bad); err == nil {
		t.Error("drain lo >= hi should be rejected")
	}
	bad = DDR4()
	bad.BusRatio = 0
	if _, err := New(bad); err == nil {
		t.Error("zero BusRatio should be rejected")
	}
}

func TestSingleReadLatency(t *testing.T) {
	d := newDRAM(t, DDR4())
	var done int64 = -1
	r := &Request{Addr: 0, OnComplete: func(now int64) { done = now }}
	if !d.Enqueue(r, 0) {
		t.Fatal("enqueue failed")
	}
	run(t, d, 10_000)
	// Idle read on a closed bank: tRCD + tCAS + tBurst = (11+11+4)*4 = 104.
	want := int64((11 + 11 + 4) * 4)
	if done != want {
		t.Errorf("read completion at %d, want %d", done, want)
	}
	if d.Stats.Reads != 1 || d.Stats.Activates != 1 {
		t.Errorf("stats = %+v", d.Stats)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	cfg := DDR4()
	cfg.Channels = 1
	rowLines := uint64(cfg.RowLines)

	// Two reads to the same row: second is a row hit.
	d := newDRAM(t, cfg)
	var t1, t2 int64
	d.Enqueue(&Request{Addr: 0, OnComplete: func(n int64) { t1 = n }}, 0)
	d.Enqueue(&Request{Addr: 1, OnComplete: func(n int64) { t2 = n }}, 0)
	run(t, d, 100_000)
	hitGap := t2 - t1
	if d.Stats.RowHits != 1 {
		t.Fatalf("expected 1 row hit, got %d", d.Stats.RowHits)
	}

	// Two reads to different rows of the same bank: second is a conflict.
	d = newDRAM(t, cfg)
	var c1, c2 int64
	d.Enqueue(&Request{Addr: 0, OnComplete: func(n int64) { c1 = n }}, 0)
	conflictAddr := mem.LineAddr(rowLines * uint64(cfg.BanksPerRank) * uint64(cfg.RanksPerChannel) * 1)
	// Same bank, different row: skip past bank/rank bits.
	conflictAddr = mem.LineAddr(rowLines << (log2(uint64(cfg.BanksPerRank)) + log2(uint64(cfg.RanksPerChannel)) + log2(rowLines)))
	_ = conflictAddr
	// Construct directly: row bit = 1, same bank/rank/col.
	rowBitShift := log2(uint64(cfg.RowLines)) + log2(uint64(cfg.BanksPerRank)) + log2(uint64(cfg.RanksPerChannel))
	addr2 := mem.LineAddr(1 << rowBitShift)
	d.Enqueue(&Request{Addr: addr2, OnComplete: func(n int64) { c2 = n }}, 0)
	run(t, d, 100_000)
	conflictGap := c2 - c1
	if d.Stats.Precharges != 1 {
		t.Fatalf("expected 1 precharge, got %d", d.Stats.Precharges)
	}
	if hitGap >= conflictGap {
		t.Errorf("row hit gap %d should beat conflict gap %d", hitGap, conflictGap)
	}
}

func TestBankParallelismBeatsSameBank(t *testing.T) {
	cfg := DDR4()
	cfg.Channels = 1
	rowBitShift := log2(uint64(cfg.RowLines)) + log2(uint64(cfg.BanksPerRank)) + log2(uint64(cfg.RanksPerChannel))

	// 8 conflicting requests to one bank.
	d := newDRAM(t, cfg)
	var lastSame int64
	for i := 0; i < 8; i++ {
		addr := mem.LineAddr(uint64(i) << rowBitShift)
		d.Enqueue(&Request{Addr: addr, OnComplete: func(n int64) { lastSame = n }}, 0)
	}
	run(t, d, 1_000_000)

	// 8 requests spread across banks.
	d = newDRAM(t, cfg)
	var lastSpread int64
	bankShift := log2(uint64(cfg.RowLines))
	for i := 0; i < 8; i++ {
		addr := mem.LineAddr(uint64(i) << bankShift)
		d.Enqueue(&Request{Addr: addr, OnComplete: func(n int64) { lastSpread = n }}, 0)
	}
	run(t, d, 1_000_000)

	if lastSpread >= lastSame {
		t.Errorf("bank-parallel finish %d should beat same-bank %d", lastSpread, lastSame)
	}
}

func TestChannelParallelism(t *testing.T) {
	// Same request stream on 1 vs 2 channels: 2 channels finish sooner.
	finish := func(channels int) int64 {
		cfg := DDR4()
		cfg.Channels = channels
		d := newDRAM(t, cfg)
		var last int64
		next, total := 0, 64
		for now := int64(0); ; now += int64(cfg.BusRatio) {
			for next < total &&
				d.Enqueue(&Request{Addr: mem.LineAddr(next), OnComplete: func(n int64) { last = n }}, now) {
				next++
			}
			d.Tick(now)
			if next == total && d.QueueDepth() == 0 {
				return last
			}
			if now > 10_000_000 {
				t.Fatal("did not drain")
			}
		}
	}
	one, two := finish(1), finish(2)
	if two >= one {
		t.Errorf("2-channel finish %d should beat 1-channel %d", two, one)
	}
}

func TestStreamBandwidthApproachesPeak(t *testing.T) {
	// Sequential stream on one channel: row hits dominate and the bus
	// should be busy most of the time once the pipeline fills.
	cfg := DDR4()
	cfg.Channels = 1
	d := newDRAM(t, cfg)
	var last int64
	n := 0
	next := 0
	for now := int64(0); now < 4_000_000; now += int64(cfg.BusRatio) {
		for d.QueueDepth() < cfg.ReadQCap && next < 2048 {
			if !d.Enqueue(&Request{Addr: mem.LineAddr(next), OnComplete: func(c int64) { last = c; n++ }}, now) {
				break
			}
			next++
		}
		d.Tick(now)
		if n == 2048 {
			break
		}
	}
	if n != 2048 {
		t.Fatalf("only %d/2048 reads completed", n)
	}
	// Peak: one 64B burst per tBurst*BusRatio = 16 CPU cycles.
	ideal := int64(2048 * cfg.TBurst * cfg.BusRatio)
	if last > ideal*13/10 {
		t.Errorf("stream took %d cycles; want within 30%% of ideal %d", last, ideal)
	}
	if rate := d.Stats.RowHitRate(); rate < 0.9 {
		t.Errorf("stream row-hit rate %.2f, want > 0.9", rate)
	}
}

func TestWriteDrainHysteresis(t *testing.T) {
	cfg := DDR4()
	cfg.Channels = 1
	d := newDRAM(t, cfg)
	for i := 0; i < cfg.WriteDrainHi; i++ {
		if !d.Enqueue(&Request{Addr: mem.LineAddr(i), Write: true}, 0) {
			t.Fatal("write enqueue failed")
		}
	}
	run(t, d, 1_000_000)
	if d.Stats.DrainEnters != 1 {
		t.Errorf("drain entries = %d, want 1", d.Stats.DrainEnters)
	}
	if d.Stats.Writes != uint64(cfg.WriteDrainHi) {
		t.Errorf("writes = %d, want %d", d.Stats.Writes, cfg.WriteDrainHi)
	}
}

func TestQueueCapBackpressure(t *testing.T) {
	cfg := DDR4()
	cfg.Channels = 1
	d := newDRAM(t, cfg)
	admitted := 0
	for i := 0; i < cfg.ReadQCap+10; i++ {
		if d.Enqueue(&Request{Addr: mem.LineAddr(i)}, 0) {
			admitted++
		}
	}
	if admitted != cfg.ReadQCap {
		t.Errorf("admitted %d, want %d", admitted, cfg.ReadQCap)
	}
	if d.Stats.RetriesFull != 10 {
		t.Errorf("rejections = %d, want 10", d.Stats.RetriesFull)
	}
}

func TestReadsPrioritizedOverWrites(t *testing.T) {
	cfg := DDR4()
	cfg.Channels = 1
	d := newDRAM(t, cfg)
	// A few writes below the drain threshold, then a read.
	for i := 0; i < 4; i++ {
		d.Enqueue(&Request{Addr: mem.LineAddr(i + 100), Write: true}, 0)
	}
	var readDone int64 = -1
	d.Enqueue(&Request{Addr: 0, OnComplete: func(n int64) { readDone = n }}, 0)
	run(t, d, 1_000_000)
	want := int64((11 + 11 + 4) * 4)
	if readDone != want {
		t.Errorf("read finished at %d, want %d (reads must bypass queued writes)", readDone, want)
	}
}

func TestDeterminism(t *testing.T) {
	trace := func() (uint64, int64) {
		cfg := DDR4()
		d := newDRAM(t, cfg)
		var last int64
		for i := 0; i < 200; i++ {
			addr := mem.LineAddr(i * 37 % 512)
			d.Enqueue(&Request{Addr: addr, Write: i%3 == 0, OnComplete: func(n int64) { last = n }}, 0)
			if i%5 == 0 {
				d.Tick(int64(i) * 4)
			}
		}
		for now := int64(800); d.QueueDepth() > 0; now += 4 {
			d.Tick(now)
		}
		return d.Stats.Reads + d.Stats.Writes*1000 + d.Stats.Activates*1_000_000, last
	}
	s1, l1 := trace()
	s2, l2 := trace()
	if s1 != s2 || l1 != l2 {
		t.Error("identical stimulus must produce identical timing")
	}
}

func TestDecodeCoversAllBanks(t *testing.T) {
	cfg := DDR4()
	d := newDRAM(t, cfg)
	seen := map[[2]int]bool{}
	for i := 0; i < cfg.Channels*cfg.RanksPerChannel*cfg.BanksPerRank*cfg.RowLines; i++ {
		ch, b, _ := d.decode(mem.LineAddr(i))
		seen[[2]int{ch, b}] = true
	}
	want := cfg.Channels * cfg.RanksPerChannel * cfg.BanksPerRank
	if len(seen) != want {
		t.Errorf("decode reached %d (channel,bank) pairs, want %d", len(seen), want)
	}
}

func TestAvgReadLatencyAccounting(t *testing.T) {
	d := newDRAM(t, DDR4())
	d.Enqueue(&Request{Addr: 0}, 0)
	run(t, d, 10_000)
	if got := d.Stats.AvgReadLatency(); got != 104 {
		t.Errorf("avg read latency = %v, want 104", got)
	}
	var empty Stats
	if empty.AvgReadLatency() != 0 || empty.RowHitRate() != 0 {
		t.Error("zero-stat helpers should return 0")
	}
}
