// Package dram models a DDR4-like main memory at the fidelity USIMM
// provides to the paper: channels with shared data buses, ranks and banks
// with open-row state, FR-FCFS scheduling, read-priority with write-drain
// watermarks, and bank timing constraints (tRCD/tRP/tCAS/tRAS, burst
// occupancy). Bandwidth contention — the quantity PTMC lives or dies by —
// emerges from data-bus occupancy per 64-byte burst.
//
// All externally visible times are CPU cycles; the DRAM command clock runs
// once every Config.BusRatio CPU cycles.
package dram

import (
	"fmt"

	"ptmc/internal/mem"
)

// Config describes the memory organization and timing. Timing fields are in
// memory-controller (bus) cycles, as datasheets quote them.
type Config struct {
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	RowLines        int // 64-byte lines per row buffer (128 => 8 KB rows)

	TRCD   int // activate -> column command
	TRP    int // precharge
	TCAS   int // column command -> first data
	TRAS   int // activate -> precharge minimum
	TBurst int // data-bus occupancy per 64B line (BL8 on a 64-bit bus = 4)

	ReadQCap     int // per-channel read queue capacity
	WriteQCap    int // per-channel write queue capacity
	WriteDrainHi int // enter write-drain at this write-queue depth
	WriteDrainLo int // leave write-drain at this depth

	BusRatio int // CPU cycles per memory-bus cycle (3.2 GHz / 0.8 GHz = 4)
}

// DDR4 returns the paper's Table I configuration: 2 channels, 2 ranks,
// 800 MHz bus (DDR 1.6 GT/s), DDR4-1600-class timings (13.75-13.75-13.75-35 ns).
func DDR4() Config {
	return Config{
		Channels:        2,
		RanksPerChannel: 2,
		BanksPerRank:    8,
		RowLines:        128,
		TRCD:            11,
		TRP:             11,
		TCAS:            11,
		TRAS:            28,
		TBurst:          4,
		ReadQCap:        32,
		WriteQCap:       32,
		WriteDrainHi:    28,
		WriteDrainLo:    12,
		BusRatio:        4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0 || c.Channels&(c.Channels-1) != 0:
		return fmt.Errorf("dram: channels must be a positive power of two, got %d", c.Channels)
	case c.RanksPerChannel <= 0, c.BanksPerRank <= 0:
		return fmt.Errorf("dram: ranks/banks must be positive")
	case c.RowLines < 4:
		return fmt.Errorf("dram: RowLines must be >= 4 (one compression group)")
	case c.BusRatio <= 0:
		return fmt.Errorf("dram: BusRatio must be positive")
	case c.WriteDrainLo >= c.WriteDrainHi:
		return fmt.Errorf("dram: WriteDrainLo must be < WriteDrainHi")
	case c.WriteDrainHi > c.WriteQCap:
		return fmt.Errorf("dram: WriteDrainHi must be <= WriteQCap")
	}
	return nil
}

// Request is one transfer. OnComplete (optional, reads normally set it)
// fires at the CPU cycle the data burst finishes. Beats is the burst length
// in 8-byte bus beats: 0 or 8 is a full 64-byte line; smaller values model
// reduced-burst transfers (MemZip-style designs on non-commodity DIMMs).
type Request struct {
	Addr       mem.LineAddr
	Write      bool
	Beats      int
	OnComplete func(now int64)

	enq        int64 // CPU cycle the request entered the queue
	completeAt int64

	// Geometry cached at Enqueue so the per-tick FR-FCFS scans load two
	// fields instead of re-deriving channel/bank/row for every queued
	// request on every bus cycle.
	bankIdx int32
	row     int64
}

// Stats counts DRAM events. Reads/Writes are bursts; RowHits counts column
// accesses that hit an open row; Activates counts row activations.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	Activates    uint64
	Precharges   uint64
	BusBusy      uint64 // CPU cycles of data-bus occupancy, summed over channels
	ReadLatency  uint64 // summed CPU cycles from enqueue to data, reads only
	ReadCount    uint64
	DrainEnters  uint64
	RetriesFull  uint64 // enqueue rejections due to full queues
	MaxReadQ     int
	MaxWriteQ    int
	IdleChannels uint64
}

type bank struct {
	openRow int64 // -1 when closed
	freeAt  int64 // CPU cycle the bank can accept a new column access
	actAt   int64 // CPU cycle of last activation (for tRAS)
}

type channel struct {
	banks     []bank
	readQ     []*Request
	writeQ    []*Request
	busFreeAt int64
	inflight  []*Request // issued reads waiting for completion callback
	draining  bool

	// wakeAt (engine mode only) is the next CPU cycle at which ticking
	// this channel can change its state: the earliest completion, the
	// earliest cycle a queued request's bank frees up, or the tick after
	// an enqueue. Between wakes the channel's queues and banks are
	// provably static, so the epoch engine skips its per-bank scans.
	wakeAt int64
}

// DRAM is the timing model. Tick must be called every memory-bus cycle
// (i.e. every BusRatio CPU cycles) with the current CPU cycle.
type DRAM struct {
	cfg   Config
	chans []*channel
	Stats Stats

	// decode shift/mask precomputed
	chanMask uint64
	chanBits uint
	colBits  uint
	bankBits uint
	rankBits uint
	tRCD     int64
	tRP      int64
	tCAS     int64
	tRAS     int64
	tBurst   int64

	// O(1) occupancy counters: Tick's empty fast path and the epoch
	// engine's idle accounting must not scan channels to learn nothing is
	// pending.
	queuedTotal   int // requests sitting in read/write queues
	inflightTotal int // issued requests awaiting completion
	emptyQChans   int // channels whose read AND write queues are empty

	// Epoch-engine state (SetEngineMode). lastTick marks the bus cycle
	// currently (or most recently) being processed and tickChanIdx the
	// channel index the tick loop is at (-1 outside Tick); together they
	// tell Enqueue whether a new request is still visible to this cycle's
	// scan or must wake its channel at the next one. nextWake caches the
	// minimum per-channel wakeAt so NextEventCycle is O(1): Tick recomputes
	// it after the channel sweep and wakeOnEnqueue lowers it directly — the
	// only two places channel wakes move.
	engine      bool
	lastTick    int64
	tickChanIdx int
	nextWake    int64

	// freeReqs pools completed Requests for AcquireRequest. Ownership: a
	// request Enqueue admits belongs to the model and is released here
	// right after its completion callback fires (immediately after issue
	// for writes nobody waits on); a rejected Enqueue leaves ownership with
	// the caller, whose retry queue holds it until a later Enqueue admits
	// it. Requests built with &Request{} work identically and simply join
	// the pool once done.
	freeReqs []*Request
}

// farFuture is the wake sentinel for "no internally scheduled event".
const farFuture = int64(1) << 62

// New builds a DRAM model from cfg.
func New(cfg Config) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &DRAM{cfg: cfg}
	for i := 0; i < cfg.Channels; i++ {
		ch := &channel{banks: make([]bank, cfg.RanksPerChannel*cfg.BanksPerRank)}
		for b := range ch.banks {
			ch.banks[b].openRow = -1
		}
		d.chans = append(d.chans, ch)
	}
	d.emptyQChans = cfg.Channels
	// One bus period before cycle 0: a request enqueued before the first
	// Tick(0) must bid that tick (lastTick + BusRatio = 0), not a later one.
	d.lastTick = -int64(cfg.BusRatio)
	d.tickChanIdx = -1
	d.chanMask = uint64(cfg.Channels - 1)
	d.chanBits = log2(uint64(cfg.Channels))
	d.colBits = log2(uint64(cfg.RowLines))
	d.bankBits = log2(uint64(cfg.BanksPerRank))
	d.rankBits = log2(uint64(cfg.RanksPerChannel))
	r := int64(cfg.BusRatio)
	d.tRCD, d.tRP, d.tCAS = int64(cfg.TRCD)*r, int64(cfg.TRP)*r, int64(cfg.TCAS)*r
	d.tRAS, d.tBurst = int64(cfg.TRAS)*r, int64(cfg.TBurst)*r
	return d, nil
}

// Config returns the configuration the model was built with.
func (d *DRAM) Config() Config { return d.cfg }

// AcquireRequest returns a zeroed Request, reusing completed ones. The
// controller issue paths acquire every request here, which makes their
// steady state allocate no request headers (the pool is bounded by the
// maximum number of simultaneously queued + inflight requests).
func (d *DRAM) AcquireRequest() *Request {
	if n := len(d.freeReqs); n > 0 {
		r := d.freeReqs[n-1]
		d.freeReqs = d.freeReqs[:n-1]
		*r = Request{}
		return r
	}
	return &Request{}
}

// release returns a finished request to the pool. Callers must be done
// with every field; the next AcquireRequest zeroes it.
func (d *DRAM) release(r *Request) {
	d.freeReqs = append(d.freeReqs, r)
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// decode splits a line address into channel, bank index (rank*banks+bank),
// and row id. Channels interleave at 256-byte granularity — one 4-line
// compression group per channel — rather than per line: TMC co-locates a
// group at its base address (low two line-address bits zero), and per-line
// interleaving would funnel every compressed-group access onto channel 0.
func (d *DRAM) decode(a mem.LineAddr) (ch int, bankIdx int, row int64) {
	v := uint64(a)
	v >>= 2 // line within compression group: same channel, row, bank
	ch = int(v & d.chanMask)
	v >>= d.chanBits
	v >>= d.colBits - 2 // remaining column bits within the row
	bank := v & (1<<d.bankBits - 1)
	v >>= d.bankBits
	rank := v & (1<<d.rankBits - 1)
	v >>= d.rankBits
	return ch, int(rank<<d.bankBits | bank), int64(v)
}

// Enqueue admits a request, returning false if the target queue is full
// (the caller must retry later). now is the current CPU cycle.
func (d *DRAM) Enqueue(r *Request, now int64) bool {
	ch, b, row := d.decode(r.Addr)
	r.bankIdx, r.row = int32(b), row
	c := d.chans[ch]
	if r.Write {
		if len(c.writeQ) >= d.cfg.WriteQCap {
			d.Stats.RetriesFull++
			return false
		}
		r.enq = now
		c.writeQ = append(c.writeQ, r)
		if len(c.writeQ) > d.Stats.MaxWriteQ {
			d.Stats.MaxWriteQ = len(c.writeQ)
		}
	} else {
		if len(c.readQ) >= d.cfg.ReadQCap {
			d.Stats.RetriesFull++
			return false
		}
		r.enq = now
		c.readQ = append(c.readQ, r)
		if len(c.readQ) > d.Stats.MaxReadQ {
			d.Stats.MaxReadQ = len(c.readQ)
		}
	}
	if len(c.readQ)+len(c.writeQ) == 1 {
		d.emptyQChans--
	}
	d.queuedTotal++
	if d.engine {
		d.wakeOnEnqueue(c, ch)
	}
	return true
}

// wakeOnEnqueue schedules the channel's next scan after an admit,
// reproducing the serial loop's visibility rules. Visibility is a property
// of the *program point* of the Enqueue call, never of the request's cycle
// stamp: the miss path stamps requests with future completion-latency
// cycles (now > the cycle actually executing), yet the serial loop's
// per-tick scan sees every queued request immediately. So: a request
// enqueued from inside the tick sweep — a completion callback issuing an
// eviction or retry — is visible to channels the in-order loop has not
// reached yet (ch > tickChanIdx) this very tick, and to earlier channels
// at the next one; a request enqueued between ticks (core-driven) is
// visible to the next executed tick, which is never later than lastTick +
// BusRatio. A bid that lands in the engine's past is harmless — the run
// loop degrades to serial per-cycle stepping until the wake is consumed —
// while a bid later than the serial scan would allow is a determinism bug
// (the channel sleeps through an issue the serial loop performs).
func (d *DRAM) wakeOnEnqueue(c *channel, ch int) {
	r := int64(d.cfg.BusRatio)
	var nt int64
	if d.tickChanIdx >= 0 && ch > d.tickChanIdx {
		nt = d.lastTick // tick loop reaches this channel later this cycle
	} else {
		nt = d.lastTick + r
	}
	if nt < c.wakeAt {
		c.wakeAt = nt
	}
	if c.wakeAt < d.nextWake {
		d.nextWake = c.wakeAt
	}
}

// QueueDepth returns total queued requests (reads+writes+inflight), for
// idle checks and the dram.queue_depth gauge.
func (d *DRAM) QueueDepth() int {
	return d.queuedTotal + d.inflightTotal
}

// SetEngineMode enables the epoch engine's wake bookkeeping: Tick then
// skips channels whose next possible state change lies in the future, and
// NextEventCycle/SkippedTicks let the caller skip whole bus cycles. The
// serial reference path keeps the straightforward scan-every-channel loop;
// observable behavior (stats, completion order, timing) is identical in
// both modes — a tested invariant.
func (d *DRAM) SetEngineMode(on bool) { d.engine = on }

// Tick advances the model by one memory-bus cycle at CPU cycle now: fires
// completions and issues at most one new request per channel.
func (d *DRAM) Tick(now int64) {
	if d.queuedTotal == 0 && d.inflightTotal == 0 {
		// Nothing queued and nothing in flight anywhere: every channel
		// scan would only find empty queues. Skip the scans; the idle
		// accounting must match what the full loop would have counted —
		// one idle event per channel per tick.
		d.Stats.IdleChannels += uint64(len(d.chans))
		return
	}
	if d.engine {
		d.lastTick = now
		for i, c := range d.chans {
			if c.wakeAt > now {
				// Asleep: queues and banks are static until wakeAt. A
				// channel with empty queues still counts idle (matching
				// the serial per-tick accounting); one merely waiting on
				// busy banks counts nothing, as in the serial scan.
				if len(c.readQ)+len(c.writeQ) == 0 {
					d.Stats.IdleChannels++
				}
				continue
			}
			d.tickChanIdx = i
			// Reset before processing so enqueue bids made during this
			// channel's own completion callbacks survive into reschedule.
			c.wakeAt = farFuture
			q, issued := d.tickChannel(c, now)
			d.reschedule(c, q, issued, now)
		}
		d.tickChanIdx = -1
		// Re-aggregate the cached minimum wake: the sweep (and any enqueue
		// bids its callbacks made) is the only place wakes can have risen.
		w := farFuture
		for _, c := range d.chans {
			if c.wakeAt < w {
				w = c.wakeAt
			}
		}
		d.nextWake = w
		return
	}
	for _, c := range d.chans {
		d.tickChannel(c, now)
	}
}

// tickChannel is one channel's slice of a bus cycle: completions, drain
// hysteresis, then at most one FR-FCFS issue. Completion callbacks may
// enqueue new requests (eviction writebacks, mispredict retries) onto any
// channel mid-loop; processing channels strictly in index order is what
// makes that interleaving deterministic, so the epoch engine reuses this
// exact routine rather than reordering it across shards. It returns the
// queue the scheduler selected (nil when both were empty) and whether a
// request issued, which is exactly what reschedule needs to bound the next
// cycle this channel can make progress.
func (d *DRAM) tickChannel(c *channel, now int64) (q *[]*Request, issued bool) {
	// Completions.
	if len(c.inflight) > 0 {
		kept := c.inflight[:0]
		for _, r := range c.inflight {
			if r.completeAt <= now {
				d.inflightTotal--
				if r.OnComplete != nil {
					r.OnComplete(now)
				}
				d.release(r)
			} else {
				kept = append(kept, r)
			}
		}
		c.inflight = kept
	}

	// Write-drain mode hysteresis.
	if !c.draining && len(c.writeQ) >= d.cfg.WriteDrainHi {
		c.draining = true
		d.Stats.DrainEnters++
	}
	if c.draining && len(c.writeQ) <= d.cfg.WriteDrainLo {
		c.draining = false
	}

	isWrite := false
	switch {
	case c.draining:
		q, isWrite = &c.writeQ, true
	case len(c.readQ) > 0:
		q = &c.readQ
	case len(c.writeQ) > 0:
		q, isWrite = &c.writeQ, true // opportunistic write when no reads
	default:
		d.Stats.IdleChannels++
		return nil, false
	}
	return q, d.issueFRFCFS(c, q, isWrite, now)
}

// issueFRFCFS picks the oldest row-hit request whose bank is free; if none,
// the oldest request with a free bank. At most one request issues per call;
// it reports whether one did.
func (d *DRAM) issueFRFCFS(c *channel, q *[]*Request, isWrite bool, now int64) bool {
	pick := -1
	for i, r := range *q {
		bk := &c.banks[r.bankIdx]
		if bk.freeAt > now {
			continue
		}
		if bk.openRow == r.row {
			pick = i
			break // oldest row hit wins
		}
		if pick < 0 {
			pick = i // oldest issuable as fallback
		}
	}
	if pick < 0 {
		return false
	}
	r := (*q)[pick]
	*q = append((*q)[:pick], (*q)[pick+1:]...)
	d.queuedTotal--
	if len(c.readQ)+len(c.writeQ) == 0 {
		d.emptyQChans++
	}
	d.issue(c, r, isWrite, now)
	return true
}

// reschedule computes the channel's next wake after its slice of a tick:
// the earliest inflight completion, plus — when work is queued — either the
// very next bus cycle (a request just issued, so the queue head may have
// changed) or the first cycle a selected-queue bank frees up (nothing was
// issuable, and the scheduler provably re-selects the same queue until its
// state changes). Enqueue bids recorded on c.wakeAt during this channel's
// own callbacks are folded in via min.
func (d *DRAM) reschedule(c *channel, q *[]*Request, issued bool, now int64) {
	w := c.wakeAt
	for _, r := range c.inflight {
		if t := d.busTickAtOrAfter(r.completeAt); t < w {
			w = t
		}
	}
	if len(c.readQ)+len(c.writeQ) > 0 {
		switch {
		case issued:
			if t := now + int64(d.cfg.BusRatio); t < w {
				w = t
			}
		case q != nil:
			// Every candidate's bank was busy; queues, drain state, and the
			// selection they imply are static until a bank frees or an
			// enqueue bids its own wake.
			for _, r := range *q {
				if t := d.busTickAtOrAfter(c.banks[r.bankIdx].freeAt); t < w {
					w = t
				}
			}
		}
	}
	c.wakeAt = w
}

// busTickAtOrAfter rounds a CPU cycle up to the next bus-cycle boundary —
// the earliest Tick that can observe an event at cycle t.
func (d *DRAM) busTickAtOrAfter(t int64) int64 {
	r := int64(d.cfg.BusRatio)
	return (t + r - 1) / r * r
}

// NextEventCycle returns the earliest CPU cycle at which ticking the model
// can change any state — the minimum channel wake — or farFuture when every
// channel is fully idle. Meaningful in engine mode only, where it is the
// cached aggregate (O(1), recomputed per tick sweep); outside engine mode
// it scans, since the wake bookkeeping is not maintained there.
func (d *DRAM) NextEventCycle() int64 {
	if d.engine {
		return d.nextWake
	}
	w := farFuture
	for _, c := range d.chans {
		if c.wakeAt < w {
			w = c.wakeAt
		}
	}
	return w
}

// SkippedTicks credits idle-channel accounting for n whole bus cycles the
// epoch engine proved eventless and skipped. Queues are static while every
// channel sleeps, so each skipped tick would have counted exactly the
// channels whose queues are empty — no more, no less.
func (d *DRAM) SkippedTicks(n int64) {
	if n > 0 {
		d.Stats.IdleChannels += uint64(n) * uint64(d.emptyQChans)
	}
}

// issue performs the lumped command sequence for one request and reserves
// bank and bus time.
func (d *DRAM) issue(c *channel, r *Request, isWrite bool, now int64) {
	bk := &c.banks[r.bankIdx]
	row := r.row
	start := now
	if bk.freeAt > start {
		start = bk.freeAt
	}
	var lat int64
	switch {
	case bk.openRow == row:
		lat = d.tCAS
		d.Stats.RowHits++
	case bk.openRow == -1:
		lat = d.tRCD + d.tCAS
		bk.actAt = start
		d.Stats.Activates++
	default:
		// Precharge may not begin before tRAS after the last activate.
		if earliest := bk.actAt + d.tRAS; earliest > start {
			start = earliest
		}
		lat = d.tRP + d.tRCD + d.tCAS
		bk.actAt = start + d.tRP
		d.Stats.Activates++
		d.Stats.Precharges++
	}
	dataStart := start + lat
	if c.busFreeAt > dataStart {
		dataStart = c.busFreeAt
	}
	// Burst occupancy scales with the beat count (DDR: 2 beats per bus
	// cycle); a full 8-beat line occupies tBurst.
	burst := d.tBurst
	if r.Beats > 0 && r.Beats < 8 {
		burst = d.tBurst * int64(r.Beats+1) / 8
		if burst < int64(d.cfg.BusRatio) {
			burst = int64(d.cfg.BusRatio) // at least one bus cycle
		}
	}
	dataEnd := dataStart + burst
	c.busFreeAt = dataEnd
	// Column commands pipeline: the bank can accept its next column access
	// one tCCD (= tBurst) after this one's column command, not after the
	// data burst completes. This is what lets back-to-back row hits stream
	// at full bus bandwidth.
	bk.freeAt = dataStart - d.tCAS + d.tBurst
	bk.openRow = row
	d.Stats.BusBusy += uint64(burst)

	if isWrite {
		d.Stats.Writes++
		if r.OnComplete != nil {
			r.completeAt = dataEnd
			c.inflight = append(c.inflight, r)
			d.inflightTotal++
		} else {
			d.release(r) // fire-and-forget write: nobody waits, nobody holds it
		}
		return
	}
	d.Stats.Reads++
	d.Stats.ReadCount++
	d.Stats.ReadLatency += uint64(dataEnd - r.enq)
	r.completeAt = dataEnd
	c.inflight = append(c.inflight, r)
	d.inflightTotal++
}

// AvgReadLatency returns the mean CPU-cycle latency of completed reads.
func (s Stats) AvgReadLatency() float64 {
	if s.ReadCount == 0 {
		return 0
	}
	return float64(s.ReadLatency) / float64(s.ReadCount)
}

// RowHitRate returns the fraction of column accesses hitting an open row.
func (s Stats) RowHitRate() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}
