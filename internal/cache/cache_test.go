package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ptmc/internal/mem"
)

func newCache(t *testing.T, size, assoc int) *Cache {
	t.Helper()
	c, err := New(Config{SizeBytes: size, Assoc: assoc})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{SizeBytes: 0, Assoc: 4},
		{SizeBytes: 4096, Assoc: 0},
		{SizeBytes: 64 * 3, Assoc: 1},       // 3 sets: not a power of two
		{SizeBytes: 64 * 10, Assoc: 4},      // lines not divisible
		{SizeBytes: -4096, Assoc: 4},        // negative
		{SizeBytes: 64 * 4 * 3, Assoc: 4},   // 3 sets
		{SizeBytes: 64 * 16 * 6, Assoc: 16}, // 6 sets
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	if _, err := New(Config{SizeBytes: 8 << 20, Assoc: 16}); err != nil {
		t.Errorf("Table I LLC config rejected: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	c := newCache(t, 64*8*4, 4)
	if _, hit := c.Lookup(42); hit {
		t.Fatal("empty cache should miss")
	}
	c.Install(42, Entry{Core: 3, Level: Comp2})
	e, hit := c.Lookup(42)
	if !hit {
		t.Fatal("expected hit after install")
	}
	if e.Core != 3 || e.Level != Comp2 {
		t.Errorf("entry fields lost: %+v", e)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct construct: 2 sets, 2 ways.
	c := newCache(t, 64*4, 2)
	// Addresses 0,2,4 map to set 0 (even line addrs).
	c.Install(0, Entry{})
	c.Install(2, Entry{})
	c.Lookup(0) // 0 is now MRU; 2 is LRU
	victim, _ := c.Install(4, Entry{})
	if !victim.Valid || victim.Tag != 2 {
		t.Errorf("victim = %+v, want tag 2", victim)
	}
	if _, hit := c.Probe(0); !hit {
		t.Error("line 0 should survive")
	}
	if _, hit := c.Probe(2); hit {
		t.Error("line 2 should be evicted")
	}
}

func TestDirtyVictimReported(t *testing.T) {
	c := newCache(t, 64*2, 2) // 1 set, 2 ways
	c.Install(0, Entry{Dirty: true})
	c.Install(1, Entry{})
	victim, _ := c.Install(2, Entry{})
	if !victim.Valid || victim.Tag != 0 || !victim.Dirty {
		t.Errorf("victim = %+v, want dirty tag 0", victim)
	}
	if c.Stats.DirtyEvicts != 1 {
		t.Errorf("dirty evicts = %d, want 1", c.Stats.DirtyEvicts)
	}
}

func TestReinstallKeepsDirty(t *testing.T) {
	c := newCache(t, 64*2, 2)
	c.Install(0, Entry{Dirty: true})
	victim, slot := c.Install(0, Entry{Level: Comp4})
	if victim.Valid {
		t.Error("re-install must not evict")
	}
	if !slot.Dirty {
		t.Error("re-install must not lose the dirty bit")
	}
	if slot.Level != Comp4 {
		t.Error("re-install should refresh the level tag")
	}
	if c.ValidCount() != 1 {
		t.Errorf("valid count = %d, want 1", c.ValidCount())
	}
}

func TestProbeDoesNotTouchLRUOrStats(t *testing.T) {
	c := newCache(t, 64*2, 2)
	c.Install(0, Entry{})
	c.Install(1, Entry{})
	before := c.Stats
	c.Probe(0) // would make 0 MRU if it updated LRU
	if c.Stats != before {
		t.Error("probe must not change stats")
	}
	victim, _ := c.Install(2, Entry{})
	if victim.Tag != 0 {
		t.Errorf("victim = %v, want 0 (probe must not refresh LRU)", victim.Tag)
	}
}

func TestInvalidate(t *testing.T) {
	c := newCache(t, 64*4, 2)
	c.Install(0, Entry{Dirty: true, Level: Comp2})
	old, ok := c.Invalidate(0)
	if !ok || !old.Dirty || old.Level != Comp2 {
		t.Errorf("invalidate returned %+v", old)
	}
	if _, ok := c.Invalidate(0); ok {
		t.Error("double invalidate should miss")
	}
	if _, hit := c.Probe(0); hit {
		t.Error("line should be gone")
	}
	// Invalidated slot is reused before evicting anyone.
	c.Install(2, Entry{})
	victim, _ := c.Install(4, Entry{})
	if victim.Valid {
		t.Error("install into invalidated slot must not evict")
	}
}

func TestPrefetchBitLifecycle(t *testing.T) {
	c := newCache(t, 64*2, 2)
	c.Install(8, Entry{Prefetch: true})
	e, hit := c.Lookup(8)
	if !hit || !e.Prefetch {
		t.Fatal("prefetched line should hit with bit set")
	}
	e.Prefetch = false // controller consumes the first demand hit
	e2, _ := c.Lookup(8)
	if e2.Prefetch {
		t.Error("prefetch bit should stay cleared")
	}
}

// TestQuickMatchesModel compares the cache against a reference model over
// random traces: containment after each op, and hit/miss agreement against
// a per-set LRU list model.
func TestQuickMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, _ := New(Config{SizeBytes: 64 * 4 * 4, Assoc: 4}) // 4 sets
		model := map[int][]mem.LineAddr{}                    // set -> LRU order, MRU last
		find := func(l []mem.LineAddr, a mem.LineAddr) int {
			for i, x := range l {
				if x == a {
					return i
				}
			}
			return -1
		}
		for op := 0; op < 500; op++ {
			a := mem.LineAddr(rng.Intn(64))
			si := c.SetIndex(a)
			l := model[si]
			switch rng.Intn(3) {
			case 0: // lookup
				_, hit := c.Lookup(a)
				mi := find(l, a)
				if hit != (mi >= 0) {
					return false
				}
				if mi >= 0 {
					l = append(append(l[:mi:mi], l[mi+1:]...), a)
				}
			case 1: // install
				victim, _ := c.Install(a, Entry{})
				mi := find(l, a)
				if mi >= 0 {
					if victim.Valid {
						return false
					}
					l = append(append(l[:mi:mi], l[mi+1:]...), a)
				} else {
					if len(l) == 4 {
						if !victim.Valid || victim.Tag != l[0] {
							return false
						}
						l = l[1:]
					} else if victim.Valid {
						return false
					}
					l = append(l, a)
				}
			case 2: // invalidate
				_, ok := c.Invalidate(a)
				mi := find(l, a)
				if ok != (mi >= 0) {
					return false
				}
				if mi >= 0 {
					l = append(l[:mi:mi], l[mi+1:]...)
				}
			}
			model[si] = l
		}
		total := 0
		for _, l := range model {
			total += len(l)
		}
		return c.ValidCount() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestForEachValidAndHitRate(t *testing.T) {
	c := newCache(t, 64*8, 2)
	c.Install(1, Entry{})
	c.Install(2, Entry{})
	n := 0
	c.ForEachValid(func(e *Entry) { n++ })
	if n != 2 {
		t.Errorf("ForEachValid visited %d, want 2", n)
	}
	c.Lookup(1)
	c.Lookup(99)
	if got := c.Stats.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
	var empty Stats
	if empty.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
}

func TestLevelString(t *testing.T) {
	if Uncompressed.String() != "none" || Comp2.String() != "2:1" ||
		Comp4.String() != "4:1" || Level(7).String() == "" {
		t.Error("Level.String broken")
	}
}
