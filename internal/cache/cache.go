// Package cache implements the set-associative writeback caches of the
// three-level hierarchy (Table I). Entries are tag-only: line data lives in
// the architectural store (internal/mem), which keeps the model fast while
// preserving everything PTMC needs — dirty bits, the 2-bit
// prior-compression-level tag (paper §IV-C "Handling Updates to Compressed
// Lines"), the prefetch bit Dynamic-PTMC samples, and per-line core IDs for
// per-core Dynamic-PTMC.
package cache

import (
	"fmt"

	"ptmc/internal/mem"
)

// Level is the compression level a line had when it was read from memory,
// stored in the 2 tag bits PTMC adds to the LLC.
type Level uint8

// Compression levels.
const (
	Uncompressed Level = iota // line resident at its own location
	Comp2                     // 2:1 — pair co-located at the pair base
	Comp4                     // 4:1 — quad co-located at the group base
)

func (l Level) String() string {
	switch l {
	case Uncompressed:
		return "none"
	case Comp2:
		return "2:1"
	case Comp4:
		return "4:1"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Entry is one cache line's bookkeeping.
type Entry struct {
	Tag      mem.LineAddr
	Valid    bool
	Dirty    bool
	Prefetch bool  // installed as a compression free-prefetch, not yet demanded
	Level    Level // compression level observed at fill time
	Core     uint8 // requesting core (per-core Dynamic-PTMC sampling)
	lru      uint64
}

// Config sizes a cache.
type Config struct {
	SizeBytes int
	Assoc     int
}

// Stats counts cache events.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	DirtyEvicts uint64
}

// HitRate returns Hits / (Hits + Misses).
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Cache is a single set-associative, true-LRU, writeback cache indexed by
// physical line address.
type Cache struct {
	entries []Entry // numSets * assoc, set-major
	assoc   int
	numSets int
	setMask uint64
	tick    uint64
	Stats   Stats
}

// New builds a cache; SizeBytes/(64*Assoc) must be a power of two.
func New(cfg Config) (*Cache, error) {
	if cfg.Assoc <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cache: size and associativity must be positive")
	}
	lines := cfg.SizeBytes / mem.LineSize
	if lines%cfg.Assoc != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible by assoc %d", lines, cfg.Assoc)
	}
	sets := lines / cfg.Assoc
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return &Cache{
		entries: make([]Entry, lines),
		assoc:   cfg.Assoc,
		numSets: sets,
		setMask: uint64(sets - 1),
	}, nil
}

// NumSets returns the number of sets (used for set sampling).
func (c *Cache) NumSets() int { return c.numSets }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// SetIndex returns the set an address maps to.
func (c *Cache) SetIndex(a mem.LineAddr) int { return int(uint64(a) & c.setMask) }

func (c *Cache) set(a mem.LineAddr) []Entry {
	i := c.SetIndex(a) * c.assoc
	return c.entries[i : i+c.assoc]
}

// Lookup finds a line, updating LRU and hit/miss stats. The returned entry
// pointer is valid until the next Install in the same set and may be
// mutated by the caller (dirty/prefetch bits).
func (c *Cache) Lookup(a mem.LineAddr) (*Entry, bool) {
	set := c.set(a)
	for i := range set {
		if set[i].Valid && set[i].Tag == a {
			c.tick++
			set[i].lru = c.tick
			c.Stats.Hits++
			return &set[i], true
		}
	}
	c.Stats.Misses++
	return nil, false
}

// Probe finds a line without perturbing LRU or stats (used by the memory
// controller to check group-neighbor residency).
func (c *Cache) Probe(a mem.LineAddr) (*Entry, bool) {
	set := c.set(a)
	for i := range set {
		if set[i].Valid && set[i].Tag == a {
			return &set[i], true
		}
	}
	return nil, false
}

// Install fills a line, evicting the LRU victim if the set is full. It
// returns the victim (Valid=false if none) and a pointer to the new entry.
// Installing an already-present line refreshes it in place.
func (c *Cache) Install(a mem.LineAddr, e Entry) (victim Entry, slot *Entry) {
	set := c.set(a)
	c.tick++
	e.Tag = a
	e.Valid = true
	e.lru = c.tick

	vic := -1
	for i := range set {
		if set[i].Valid && set[i].Tag == a {
			e.Dirty = e.Dirty || set[i].Dirty // never lose a dirty bit
			set[i] = e
			return Entry{}, &set[i]
		}
		if !set[i].Valid {
			if vic == -1 || set[vic].Valid {
				vic = i
			}
			continue
		}
		if vic == -1 || (set[vic].Valid && set[i].lru < set[vic].lru) {
			vic = i
		}
	}
	victim = set[vic]
	if victim.Valid {
		c.Stats.Evictions++
		if victim.Dirty {
			c.Stats.DirtyEvicts++
		}
	} else {
		victim = Entry{}
	}
	set[vic] = e
	return victim, &set[vic]
}

// Invalidate removes a line, returning its prior state (for ganged eviction
// the controller needs the dirty bit and compression tag).
func (c *Cache) Invalidate(a mem.LineAddr) (Entry, bool) {
	set := c.set(a)
	for i := range set {
		if set[i].Valid && set[i].Tag == a {
			old := set[i]
			set[i] = Entry{}
			return old, true
		}
	}
	return Entry{}, false
}

// ForEachValid visits every valid entry (diagnostics and whole-cache
// verification in tests).
func (c *Cache) ForEachValid(f func(e *Entry)) {
	for i := range c.entries {
		if c.entries[i].Valid {
			f(&c.entries[i])
		}
	}
}

// ValidCount returns the number of valid lines.
func (c *Cache) ValidCount() int {
	n := 0
	for i := range c.entries {
		if c.entries[i].Valid {
			n++
		}
	}
	return n
}
