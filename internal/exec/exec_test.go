package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptmc/internal/obs"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	var cur, max atomic.Int32
	err := p.ForEach(context.Background(), 32, func(ctx context.Context, i int) error {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > 3 {
		t.Errorf("observed %d concurrent jobs, pool size 3", got)
	}
}

func TestPoolDefaultSize(t *testing.T) {
	if NewPool(0).Size() < 1 {
		t.Error("default pool must have at least one worker")
	}
	if NewPool(7).Size() != 7 {
		t.Error("explicit pool size not honored")
	}
}

func TestForEachFirstErrorIsDeterministic(t *testing.T) {
	p := NewPool(8)
	// Fail several indices; whatever order they complete in, the reported
	// error must be the lowest failing index.
	for trial := 0; trial < 20; trial++ {
		err := p.ForEach(context.Background(), 16, func(ctx context.Context, i int) error {
			if i%5 == 3 { // fails at 3, 8, 13
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("trial %d: got %v, want job 3 failed", trial, err)
		}
	}
}

func TestForEachCancelsQueuedJobs(t *testing.T) {
	p := NewPool(1)
	var started atomic.Int32
	err := p.ForEach(context.Background(), 100, func(ctx context.Context, i int) error {
		started.Add(1)
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n == 100 {
		t.Error("cancellation should stop queued jobs from starting")
	}
}

func TestCacheSingleflight(t *testing.T) {
	p := NewPool(8)
	c := NewCache[int](p)
	var computed atomic.Int32
	var ranCount atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, ran, err := c.Do(context.Background(), "k", func() (int, error) {
				computed.Add(1)
				time.Sleep(2 * time.Millisecond)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
			if ran {
				ranCount.Add(1)
			}
		}()
	}
	wg.Wait()
	if computed.Load() != 1 {
		t.Errorf("computed %d times, want exactly 1", computed.Load())
	}
	if ranCount.Load() != 1 {
		t.Errorf("%d callers reported ran=true, want exactly 1", ranCount.Load())
	}
	if v, ok := c.Cached("k"); !ok || v != 42 {
		t.Errorf("Cached = %d, %v", v, ok)
	}
}

func TestCacheErrorsAreRetried(t *testing.T) {
	p := NewPool(1)
	c := NewCache[int](p)
	calls := 0
	_, _, err := c.Do(context.Background(), "k", func() (int, error) {
		calls++
		return 0, errors.New("transient")
	})
	if err == nil {
		t.Fatal("want error")
	}
	v, ran, err := c.Do(context.Background(), "k", func() (int, error) {
		calls++
		return 7, nil
	})
	if err != nil || v != 7 || !ran {
		t.Fatalf("retry: v=%d ran=%v err=%v", v, ran, err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (errors must not be cached)", calls)
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	p := NewPool(1)
	c := NewCache[int](p)
	release := make(chan struct{})
	go c.Do(context.Background(), "slow", func() (int, error) {
		<-release
		return 1, nil
	})
	// Give the leader a moment to claim the flight.
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "slow", func() (int, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("waiter error = %v, want context.Canceled", err)
	}
	close(release)
}

func TestFirstErrorPrefersRealFailures(t *testing.T) {
	boom := errors.New("boom")
	errs := []error{nil, context.Canceled, boom, nil}
	if got := FirstError(errs); !errors.Is(got, boom) {
		t.Errorf("FirstError = %v, want boom over earlier cancellation", got)
	}
	if got := FirstError([]error{nil, context.Canceled}); !errors.Is(got, context.Canceled) {
		t.Errorf("FirstError = %v, want cancellation fallback", got)
	}
	if got := FirstError([]error{nil, nil}); got != nil {
		t.Errorf("FirstError = %v, want nil", got)
	}
}

// TestForEachPanicIsIsolated panics one job inside an 8-way ForEach and
// asserts the remaining jobs run, the caller gets a PanicError, and the
// pool remains fully usable afterwards (no leaked slots).
func TestForEachPanicIsIsolated(t *testing.T) {
	p := NewPool(8)
	var completed atomic.Int32
	var started sync.WaitGroup
	started.Add(8) // barrier: every job is executing before any panics
	err := p.ForEach(context.Background(), 8, func(ctx context.Context, i int) error {
		started.Done()
		started.Wait()
		if i == 3 {
			panic("job 3 exploded")
		}
		completed.Add(1)
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "job 3 exploded" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	// The other 7 jobs were already executing (8 slots) and must finish.
	if n := completed.Load(); n != 7 {
		t.Errorf("completed = %d, want 7", n)
	}
	// Pool stays usable at full capacity: all 8 slots must be acquirable.
	if err := p.ForEach(context.Background(), 16, func(ctx context.Context, i int) error {
		return nil
	}); err != nil {
		t.Fatalf("pool unusable after panic: %v", err)
	}
	if len(p.sem) != 0 {
		t.Errorf("%d slots leaked", len(p.sem))
	}
}

// TestCacheDoPanicUnblocksWaiters panics the singleflight leader and
// asserts every waiter returns a PanicError instead of deadlocking, the
// slot is released, and a later Do retries the key.
func TestCacheDoPanicUnblocksWaiters(t *testing.T) {
	p := NewPool(1) // one slot: a leaked slot would deadlock the retry below
	c := NewCache[int](p)
	start := make(chan struct{})
	var waiterErrs atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, _, err := c.Do(context.Background(), "boom", func() (int, error) {
				time.Sleep(2 * time.Millisecond) // let waiters join the flight
				panic("leader exploded")
			})
			var pe *PanicError
			if errors.As(err, &pe) {
				waiterErrs.Add(1)
			} else {
				t.Errorf("waiter error = %v, want *PanicError", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := waiterErrs.Load(); n != 8 {
		t.Errorf("%d callers saw the PanicError, want 8", n)
	}
	// The failed flight must be forgotten and the slot released.
	v, ran, err := c.Do(context.Background(), "boom", func() (int, error) { return 9, nil })
	if err != nil || v != 9 || !ran {
		t.Fatalf("retry after panic: v=%d ran=%v err=%v", v, ran, err)
	}
	if len(p.sem) != 0 {
		t.Errorf("%d slots leaked", len(p.sem))
	}
}

func TestRunConvertsPanic(t *testing.T) {
	p := NewPool(2)
	err := p.Run(context.Background(), func() error { panic(42) })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != 42 {
		t.Fatalf("err = %v, want PanicError{42}", err)
	}
	if len(p.sem) != 0 {
		t.Error("slot leaked after panic")
	}
}

// TestRunJobTimeout verifies the per-attempt deadline reaches the job's
// context.
func TestRunJobTimeout(t *testing.T) {
	p := NewPool(1)
	err := p.RunJob(context.Background(), JobOptions{Timeout: 5 * time.Millisecond},
		func(ctx context.Context) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Second):
				return nil
			}
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestRunJobRetriesRetryable verifies bounded retry-with-backoff: a
// retryable error re-runs up to Attempts times; a terminal error does not.
func TestRunJobRetriesRetryable(t *testing.T) {
	p := NewPool(1)
	calls := 0
	err := p.RunJob(context.Background(), JobOptions{Attempts: 3, Backoff: time.Microsecond},
		func(ctx context.Context) error {
			calls++
			if calls < 3 {
				return Retryable(errors.New("transient"))
			}
			return nil
		})
	if err != nil || calls != 3 {
		t.Fatalf("calls=%d err=%v, want 3 calls and success", calls, err)
	}

	calls = 0
	boom := errors.New("terminal")
	err = p.RunJob(context.Background(), JobOptions{Attempts: 3}, func(ctx context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("calls=%d err=%v, want 1 call and terminal error", calls, err)
	}

	// Retries exhausted: the last retryable error surfaces (and unwraps).
	calls = 0
	err = p.RunJob(context.Background(), JobOptions{Attempts: 2}, func(ctx context.Context) error {
		calls++
		return Retryable(boom)
	})
	if !errors.Is(err, boom) || !IsRetryable(err) || calls != 2 {
		t.Fatalf("calls=%d err=%v, want 2 calls and wrapped terminal error", calls, err)
	}
}

func TestPoolHistogramsAndJobTrace(t *testing.T) {
	p := NewPool(2)
	tr := obs.NewTracer(64)
	p.SetTracer(tr)
	const jobs = 8
	err := p.ForEach(context.Background(), jobs, func(context.Context, int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.RunTime().Count(); got != jobs {
		t.Errorf("run-time histogram count = %d, want %d", got, jobs)
	}
	if got := p.QueueWait().Count(); got != jobs {
		t.Errorf("queue-wait histogram count = %d, want %d", got, jobs)
	}
	// Each job slept ~1ms; the run-time histogram must reflect that scale.
	if p.RunTime().Quantile(0.5) < uint64(time.Millisecond/2) {
		t.Errorf("run-time p50 %d ns implausibly small for 1ms jobs", p.RunTime().Quantile(0.5))
	}
	events := tr.Events()
	if len(events) != jobs {
		t.Fatalf("job trace has %d events, want %d", len(events), jobs)
	}
	for _, e := range events {
		if e.Kind != obs.KindJob || e.Dur <= 0 {
			t.Fatalf("bad job event: %+v", e)
		}
	}
}

// TestBackoffJitterBounds pins the jitter window: a jittered backoff is
// uniform in [d/2, d) — never zero, never the full base — so a burst of
// simultaneous retriers spreads out instead of thundering back together.
func TestBackoffJitterBounds(t *testing.T) {
	const d = 100 * time.Millisecond
	sawLow, sawHigh := false, false
	for i := 0; i < 2000; i++ {
		j := jitter(d)
		if j < d/2 || j >= d {
			t.Fatalf("jitter(%v) = %v, want in [%v, %v)", d, j, d/2, d)
		}
		if j < d*5/8 {
			sawLow = true
		}
		if j > d*7/8 {
			sawHigh = true
		}
	}
	if !sawLow || !sawHigh {
		t.Errorf("jitter not spreading across the window (low=%v high=%v)", sawLow, sawHigh)
	}
	if jitter(0) != 0 || jitter(1) != 1 {
		t.Errorf("degenerate backoffs must pass through unchanged")
	}
}

// TestBackoffCancellationPrompt is the drain guarantee: cancelling a job
// that is asleep in its retry backoff interrupts the sleep immediately —
// a draining daemon must never wait out a pending retry. The backoff here
// is far longer than the test's patience; only the ctx-aware sleep lets
// it pass.
func TestBackoffCancellationPrompt(t *testing.T) {
	p := NewPool(1)
	ctx, cancel := context.WithCancel(context.Background())
	attempts := make(chan struct{}, 4)
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		done <- p.RunJob(ctx, JobOptions{Attempts: 3, Backoff: time.Hour},
			func(ctx context.Context) error {
				attempts <- struct{}{}
				return Retryable(errors.New("transient"))
			})
	}()
	// First attempt runs, then the job parks in its one-hour backoff.
	select {
	case <-attempts:
	case <-time.After(5 * time.Second):
		t.Fatal("first attempt never ran")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the backoff")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("backoff held the job for %v after cancel", waited)
	}
	select {
	case <-attempts:
		t.Fatal("job re-attempted after cancellation")
	default:
	}
	if len(p.sem) != 0 {
		t.Error("slot leaked after cancelled backoff")
	}
}
