// Package exec is the concurrent experiment engine shared by the paper
// harness and the CLI tools. It provides three pieces:
//
//   - Pool: a bounded worker pool (default size GOMAXPROCS) that caps how
//     many simulations run at once, however many goroutines submit work;
//   - Cache: a singleflight-deduplicated, mutex-guarded memoization table,
//     so concurrent requests for the same key execute the computation
//     exactly once and everyone shares the result;
//   - Pool.ForEach: a deterministic fan-out helper that runs an indexed
//     job set over the pool and cancels the remainder on first error.
//
// The simulations themselves are embarrassingly parallel (every sim.Run
// builds its own memory image, caches, and seeded streams), so the engine
// only has to bound concurrency and deduplicate shared runs — it never
// needs to synchronize inside a simulation.
//
// The engine is panic-safe: a job that panics is converted into a
// *PanicError carrying the panic value and stack, its worker slot is
// released, and (for Cache.Do) every waiter on the flight is unblocked
// with that error. One bad configuration can fail its own job but can
// never deadlock or shrink the pool.
package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"ptmc/internal/obs"
)

// PanicError is the typed error a panicking job is converted into. The
// original panic value and the goroutine stack at the point of the panic
// are preserved for diagnosis.
type PanicError struct {
	Value any    // the value passed to panic()
	Stack []byte // debug.Stack() captured inside the recovering frame
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: job panicked: %v", e.Value)
}

// RetryableError marks an error as transient: jobs run with
// JobOptions.Attempts > 1 retry when they return one. Wrap with Retryable,
// test with IsRetryable; errors.Is/As unwrap through it.
type RetryableError struct{ Err error }

func (e *RetryableError) Error() string { return e.Err.Error() }
func (e *RetryableError) Unwrap() error { return e.Err }

// Retryable wraps err so that retry-enabled jobs re-run it. A nil err
// returns nil.
func Retryable(err error) error {
	if err == nil {
		return nil
	}
	return &RetryableError{Err: err}
}

// IsRetryable reports whether err is (or wraps) a RetryableError.
func IsRetryable(err error) bool {
	var re *RetryableError
	return errors.As(err, &re)
}

// JobOptions bounds one job's execution. The zero value means: no
// timeout, a single attempt, no backoff.
type JobOptions struct {
	// Timeout, when positive, is the per-attempt deadline: the job's
	// context is cancelled after this duration. Jobs must honor their
	// context for the deadline to take effect (sim.RunContext does).
	Timeout time.Duration
	// Attempts is the total number of tries for a job whose error is
	// retryable (IsRetryable). Values below 1 mean one attempt.
	Attempts int
	// Backoff is the base wait before the first retry; it doubles on each
	// subsequent retry. The actual sleep is jittered — a uniformly random
	// duration in [Backoff/2, Backoff) — so a burst of jobs that failed
	// together (a shared dependency hiccup, a drained resource) does not
	// retry in lockstep. The waiting job holds its pool slot (retries are
	// expected to be rare and short), but the sleep is context-aware: a
	// cancelled job abandons the backoff immediately, so a draining
	// service is never blocked behind a sleeping retry.
	Backoff time.Duration
}

// jitter maps a base backoff to the jittered sleep: uniform in
// [d/2, d). Equal-jitter keeps the expected wait at 3/4 d while spreading
// simultaneous retriers across half the window. The rand source is a
// package variable only so tests can pin it.
var jitterInt63n = rand.Int63n

func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(jitterInt63n(int64(half)))
}

// Pool bounds the number of jobs executing concurrently. The zero Pool is
// not usable; construct with NewPool.
//
// Every pool keeps two log-bucketed histograms — nanoseconds a job waited
// for a slot, and nanoseconds each attempt ran — as its scheduling health
// signal: a queue-wait p99 near the run-time p50 means the pool is the
// bottleneck, not the simulations. The histograms are atomic counters, so
// the accounting adds two clock reads per job to work that is a whole
// simulation.
type Pool struct {
	sem chan struct{}

	queueWait *obs.Histogram // ns blocked waiting for a worker slot
	runTime   *obs.Histogram // ns executing, one observation per attempt
	tr        *obs.Tracer    // optional: one KindJob span per attempt
}

// NewPool returns a pool running at most n jobs at once; n <= 0 selects
// runtime.GOMAXPROCS(0), i.e. one job per available CPU.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		sem:       make(chan struct{}, n),
		queueWait: obs.NewHistogram("pool.queue_wait_ns"),
		runTime:   obs.NewHistogram("pool.run_time_ns"),
	}
}

// Size reports the worker count.
func (p *Pool) Size() int { return cap(p.sem) }

// QueueWait exposes the slot-wait histogram (nanoseconds per job).
func (p *Pool) QueueWait() *obs.Histogram { return p.queueWait }

// RunTime exposes the execution-time histogram (nanoseconds per attempt).
func (p *Pool) RunTime() *obs.Histogram { return p.runTime }

// SetTracer attaches a tracer that receives one job span (wall-clock
// microseconds) per attempt; nil detaches.
func (p *Pool) SetTracer(t *obs.Tracer) { p.tr = t }

// acquire blocks until a worker slot frees up or ctx is cancelled.
func (p *Pool) acquire(ctx context.Context) error {
	start := time.Now()
	select {
	case p.sem <- struct{}{}:
		p.queueWait.Observe(time.Since(start).Nanoseconds())
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *Pool) release() { <-p.sem }

// safeCall invokes fn, converting a panic into a *PanicError.
func safeCall(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Run executes fn on the pool, blocking until a slot is free. It returns
// ctx's error without running fn if the context is cancelled first. A
// panic in fn is returned as a *PanicError; the slot is always released.
func (p *Pool) Run(ctx context.Context, fn func() error) error {
	if err := p.acquire(ctx); err != nil {
		return err
	}
	defer p.release()
	return p.callOnce(ctx, 0, func(context.Context) error { return fn() })
}

// RunJob executes fn on the pool under opts: a per-attempt timeout (via a
// derived context fn must honor) and bounded retry-with-backoff for
// attempts that return a retryable error (see Retryable). Panics convert
// to *PanicError and are not retried. The slot is held across retries.
func (p *Pool) RunJob(ctx context.Context, opts JobOptions, fn func(ctx context.Context) error) error {
	if err := p.acquire(ctx); err != nil {
		return err
	}
	defer p.release()
	return p.attempt(ctx, opts, fn)
}

// attempt runs fn (already holding a slot) under opts.
func (p *Pool) attempt(ctx context.Context, opts JobOptions, fn func(ctx context.Context) error) error {
	attempts := opts.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := opts.Backoff
	var err error
	for try := 0; try < attempts; try++ {
		// The first attempt always runs: a job that acquired its slot is
		// "already executing" in ForEach's contract, even if the fan-out was
		// cancelled meanwhile — that is what keeps error selection
		// deterministic. Only retries re-check the context.
		if try > 0 {
			if backoff > 0 {
				t := time.NewTimer(jitter(backoff))
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return ctx.Err()
				}
				backoff *= 2
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		err = p.callOnce(ctx, opts.Timeout, fn)
		if err == nil || !IsRetryable(err) {
			return err
		}
	}
	return err
}

// callOnce runs one attempt with its own deadline, panic conversion, and
// run-time accounting.
func (p *Pool) callOnce(ctx context.Context, timeout time.Duration, fn func(ctx context.Context) error) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	err := safeCall(func() error { return fn(ctx) })
	d := time.Since(start)
	p.runTime.Observe(d.Nanoseconds())
	if p.tr != nil {
		dur := d.Microseconds()
		if dur < 1 {
			dur = 1 // a zero-duration span renders as an instant mark
		}
		p.tr.Emit(obs.KindJob, start.UnixMicro(), dur, 0, 0, 0)
	}
	return err
}

// ForEach runs fn(ctx, i) for every i in [0, n) on the pool. The first
// failure cancels the context handed to the remaining jobs (jobs already
// executing run to completion — simulations are not interruptible — but
// queued jobs abort before starting). The returned error is deterministic
// regardless of completion order: the lowest-index real failure, falling
// back to the lowest-index cancellation. A panicking job fails with a
// *PanicError; the other jobs and the pool are unaffected.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	return p.ForEachJob(ctx, n, JobOptions{}, fn)
}

// ForEachJob is ForEach with per-job options (timeout and retry; see
// JobOptions and RunJob).
func (p *Pool) ForEachJob(ctx context.Context, n int, opts JobOptions, fn func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if err := p.acquire(ctx); err != nil {
			errs[i] = err
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer p.release()
			if err := p.attempt(ctx, opts, func(ctx context.Context) error {
				return fn(ctx, i)
			}); err != nil {
				errs[i] = err
				cancel()
			}
		}(i)
	}
	wg.Wait()
	return FirstError(errs)
}

// FirstError returns the lowest-index non-cancellation error in errs,
// falling back to the lowest-index cancellation, or nil. It is the
// deterministic error-selection rule used throughout the engine: whatever
// order parallel jobs finish in, the reported error is the one the serial
// loop would have hit first.
func FirstError(errs []error) error {
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if fallback == nil {
			fallback = err
		}
	}
	return fallback
}

// flight is one in-progress or completed computation.
type flight[V any] struct {
	done chan struct{} // closed when val/err are final
	val  V
	err  error
}

// Cache memoizes computations by string key. Concurrent Do calls for the
// same key collapse into a single execution (singleflight): one caller
// becomes the leader and runs the function on the pool; the rest block
// until the leader finishes and then share its result. Successful results
// are cached forever; failures are forgotten so a later call may retry.
type Cache[V any] struct {
	pool *Pool
	mu   sync.Mutex
	m    map[string]*flight[V]
}

// NewCache returns an empty cache executing its computations on pool.
func NewCache[V any](pool *Pool) *Cache[V] {
	return &Cache[V]{pool: pool, m: make(map[string]*flight[V])}
}

// Cached returns the stored value for key without computing anything.
func (c *Cache[V]) Cached(key string) (V, bool) {
	c.mu.Lock()
	f, ok := c.m[key]
	c.mu.Unlock()
	if !ok {
		return *new(V), false
	}
	select {
	case <-f.done:
		if f.err != nil {
			return *new(V), false
		}
		return f.val, true
	default:
		return *new(V), false
	}
}

// Do returns the value for key, computing it with fn at most once across
// all concurrent callers. ran reports whether this call executed fn (false
// for cache hits and for waiters that joined an in-flight computation).
// The leader holds a pool slot while fn runs; waiters hold none, so a
// thousand goroutines asking for the same key cost one worker. If fn
// panics, the leader and every waiter receive a *PanicError, the flight is
// forgotten (a later Do retries), and the pool slot is released.
func (c *Cache[V]) Do(ctx context.Context, key string, fn func() (V, error)) (v V, ran bool, err error) {
	c.mu.Lock()
	if f, ok := c.m[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, false, f.err
		case <-ctx.Done():
			return *new(V), false, ctx.Err()
		}
	}
	f := &flight[V]{done: make(chan struct{})}
	c.m[key] = f
	c.mu.Unlock()

	if err := c.pool.acquire(ctx); err != nil {
		f.err = err
		c.forget(key)
		close(f.done)
		return *new(V), false, err
	}
	// The deferred closure is the flight's single point of settlement: it
	// converts a panic in fn, releases the slot, forgets failed flights,
	// and closes done exactly once — in that order — so waiters can never
	// be left blocked and the pool can never leak a slot, whatever fn did.
	func() {
		defer func() {
			if v := recover(); v != nil {
				f.err = &PanicError{Value: v, Stack: debug.Stack()}
			}
			c.pool.release()
			if f.err != nil {
				c.forget(key)
			}
			close(f.done)
		}()
		defer func(start time.Time) {
			c.pool.runTime.Observe(time.Since(start).Nanoseconds())
		}(time.Now())
		f.val, f.err = fn()
	}()
	return f.val, true, f.err
}

// DoJob is Do with per-attempt options: the leader executes fn on the
// pool under opts — per-attempt timeout via a derived context fn must
// honor, and bounded jittered retry for attempts returning a retryable
// error (see Retryable) — while waiters share the final outcome. Panics
// convert to *PanicError for the leader and every waiter and are not
// retried. Like Do, failed flights are forgotten so a later call may try
// again.
func (c *Cache[V]) DoJob(ctx context.Context, key string, opts JobOptions, fn func(ctx context.Context) (V, error)) (v V, ran bool, err error) {
	c.mu.Lock()
	if f, ok := c.m[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, false, f.err
		case <-ctx.Done():
			return *new(V), false, ctx.Err()
		}
	}
	f := &flight[V]{done: make(chan struct{})}
	c.m[key] = f
	c.mu.Unlock()

	if err := c.pool.acquire(ctx); err != nil {
		f.err = err
		c.forget(key)
		close(f.done)
		return *new(V), false, err
	}
	func() {
		defer func() {
			if v := recover(); v != nil {
				f.err = &PanicError{Value: v, Stack: debug.Stack()}
			}
			c.pool.release()
			if f.err != nil {
				c.forget(key)
			}
			close(f.done)
		}()
		// attempt handles the timeout/retry/backoff envelope (including
		// its own panic conversion and run-time accounting); the recover
		// above is belt-and-braces for the envelope itself.
		f.err = c.pool.attempt(ctx, opts, func(ctx context.Context) error {
			val, err := fn(ctx)
			if err == nil {
				f.val = val
			}
			return err
		})
	}()
	return f.val, true, f.err
}

// forget removes a failed flight so the next Do retries it.
func (c *Cache[V]) forget(key string) {
	c.mu.Lock()
	delete(c.m, key)
	c.mu.Unlock()
}
