// Package exec is the concurrent experiment engine shared by the paper
// harness and the CLI tools. It provides three pieces:
//
//   - Pool: a bounded worker pool (default size GOMAXPROCS) that caps how
//     many simulations run at once, however many goroutines submit work;
//   - Cache: a singleflight-deduplicated, mutex-guarded memoization table,
//     so concurrent requests for the same key execute the computation
//     exactly once and everyone shares the result;
//   - Pool.ForEach: a deterministic fan-out helper that runs an indexed
//     job set over the pool and cancels the remainder on first error.
//
// The simulations themselves are embarrassingly parallel (every sim.Run
// builds its own memory image, caches, and seeded streams), so the engine
// only has to bound concurrency and deduplicate shared runs — it never
// needs to synchronize inside a simulation.
package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Pool bounds the number of jobs executing concurrently. The zero Pool is
// not usable; construct with NewPool.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool running at most n jobs at once; n <= 0 selects
// runtime.GOMAXPROCS(0), i.e. one job per available CPU.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Size reports the worker count.
func (p *Pool) Size() int { return cap(p.sem) }

// acquire blocks until a worker slot frees up or ctx is cancelled.
func (p *Pool) acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *Pool) release() { <-p.sem }

// Run executes fn on the pool, blocking until a slot is free. It returns
// ctx's error without running fn if the context is cancelled first.
func (p *Pool) Run(ctx context.Context, fn func() error) error {
	if err := p.acquire(ctx); err != nil {
		return err
	}
	defer p.release()
	return fn()
}

// ForEach runs fn(ctx, i) for every i in [0, n) on the pool. The first
// failure cancels the context handed to the remaining jobs (jobs already
// executing run to completion — simulations are not interruptible — but
// queued jobs abort before starting). The returned error is deterministic
// regardless of completion order: the lowest-index real failure, falling
// back to the lowest-index cancellation.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if err := p.acquire(ctx); err != nil {
			errs[i] = err
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer p.release()
			if err := fn(ctx, i); err != nil {
				errs[i] = err
				cancel()
			}
		}(i)
	}
	wg.Wait()
	return FirstError(errs)
}

// FirstError returns the lowest-index non-cancellation error in errs,
// falling back to the lowest-index cancellation, or nil. It is the
// deterministic error-selection rule used throughout the engine: whatever
// order parallel jobs finish in, the reported error is the one the serial
// loop would have hit first.
func FirstError(errs []error) error {
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if fallback == nil {
			fallback = err
		}
	}
	return fallback
}

// flight is one in-progress or completed computation.
type flight[V any] struct {
	done chan struct{} // closed when val/err are final
	val  V
	err  error
}

// Cache memoizes computations by string key. Concurrent Do calls for the
// same key collapse into a single execution (singleflight): one caller
// becomes the leader and runs the function on the pool; the rest block
// until the leader finishes and then share its result. Successful results
// are cached forever; failures are forgotten so a later call may retry.
type Cache[V any] struct {
	pool *Pool
	mu   sync.Mutex
	m    map[string]*flight[V]
}

// NewCache returns an empty cache executing its computations on pool.
func NewCache[V any](pool *Pool) *Cache[V] {
	return &Cache[V]{pool: pool, m: make(map[string]*flight[V])}
}

// Cached returns the stored value for key without computing anything.
func (c *Cache[V]) Cached(key string) (V, bool) {
	c.mu.Lock()
	f, ok := c.m[key]
	c.mu.Unlock()
	if !ok {
		return *new(V), false
	}
	select {
	case <-f.done:
		if f.err != nil {
			return *new(V), false
		}
		return f.val, true
	default:
		return *new(V), false
	}
}

// Do returns the value for key, computing it with fn at most once across
// all concurrent callers. ran reports whether this call executed fn (false
// for cache hits and for waiters that joined an in-flight computation).
// The leader holds a pool slot while fn runs; waiters hold none, so a
// thousand goroutines asking for the same key cost one worker.
func (c *Cache[V]) Do(ctx context.Context, key string, fn func() (V, error)) (v V, ran bool, err error) {
	c.mu.Lock()
	if f, ok := c.m[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, false, f.err
		case <-ctx.Done():
			return *new(V), false, ctx.Err()
		}
	}
	f := &flight[V]{done: make(chan struct{})}
	c.m[key] = f
	c.mu.Unlock()

	if err := c.pool.acquire(ctx); err != nil {
		f.err = err
		c.forget(key)
		close(f.done)
		return *new(V), false, err
	}
	f.val, f.err = fn()
	c.pool.release()
	if f.err != nil {
		c.forget(key)
	}
	close(f.done)
	return f.val, true, f.err
}

// forget removes a failed flight so the next Do retries it.
func (c *Cache[V]) forget(key string) {
	c.mu.Lock()
	delete(c.m, key)
	c.mu.Unlock()
}
