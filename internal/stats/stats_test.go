package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedSpeedup(t *testing.T) {
	if got := WeightedSpeedup([]float64{2, 2}, []float64{1, 1}); got != 2 {
		t.Errorf("uniform doubling = %v, want 2", got)
	}
	if got := WeightedSpeedup([]float64{2, 1}, []float64{1, 1}); got != 1.5 {
		t.Errorf("mixed = %v, want 1.5", got)
	}
	if got := WeightedSpeedup([]float64{1}, []float64{1, 1}); !math.IsNaN(got) {
		t.Error("length mismatch should be NaN")
	}
	if got := WeightedSpeedup(nil, nil); !math.IsNaN(got) {
		t.Error("empty should be NaN")
	}
	if got := WeightedSpeedup([]float64{1}, []float64{0}); !math.IsNaN(got) {
		t.Error("zero baseline should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{1, 1, 1}); got != 1 {
		t.Errorf("geomean(ones) = %v", got)
	}
	if !math.IsNaN(GeoMean(nil)) || !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("degenerate inputs should be NaN")
	}
}

func TestGeoMeanBounds(t *testing.T) {
	// Property: min <= geomean <= max for positive inputs.
	f := func(a, b, c uint16) bool {
		vs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := GeoMean(vs)
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Error("Ratio broken")
	}
}
