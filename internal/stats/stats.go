// Package stats provides the aggregate-performance math the paper's
// methodology uses: weighted speedup across cores and geometric means
// across workloads.
package stats

import "math"

// WeightedSpeedup returns (1/n) Σ IPCᵢ(scheme) / IPCᵢ(baseline): the
// paper's aggregate metric, normalized so 1.0 means parity.
func WeightedSpeedup(scheme, baseline []float64) float64 {
	if len(scheme) != len(baseline) || len(scheme) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range scheme {
		if baseline[i] == 0 {
			return math.NaN()
		}
		sum += scheme[i] / baseline[i]
	}
	return sum / float64(len(scheme))
}

// GeoMean returns the geometric mean of positive values (the paper's
// cross-workload average).
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	logSum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return math.NaN()
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vs)))
}

// Ratio returns a/b, or 0 when b is 0 (normalized-bandwidth plots).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
