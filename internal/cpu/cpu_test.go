package cpu

import (
	"testing"

	"ptmc/internal/workload"
)

// testStream builds a small deterministic workload stream.
func testStream(memFrac float64) *workload.Stream {
	w := &workload.Workload{
		Name: "cpu-test", Suite: "test",
		FootprintBytes: 1 << 20,
		MemFrac:        memFrac, WriteFrac: 0.2,
		SeqProb: 0.5, SeqRun: 8,
		HotFrac: 0.1, HotProb: 0.5,
		Mix: workload.ValueMix{{Kind: workload.KindZero, Weight: 1}},
	}
	return w.NewStream(1)
}

func TestRetiresAtFetchWidthWhenMemoryIsInstant(t *testing.T) {
	var accesses int
	access := func(core int, vaddr uint64, write bool, now int64, done func(int64)) {
		accesses++
		done(now + 1)
	}
	c := New(0, DefaultConfig(), testStream(0.3), access)
	c.SetLimit(10_000)
	var now int64
	for !c.Done() {
		now++
		c.Cycle(now)
		if now > 100_000 {
			t.Fatal("core did not finish")
		}
	}
	// 4-wide with 1-cycle memory: IPC must approach the width.
	ipc := float64(10_000) / float64(c.FinishedAt())
	if ipc < 3.0 {
		t.Errorf("IPC = %.2f, want near 4 with instant memory", ipc)
	}
	if accesses == 0 {
		t.Error("no memory accesses issued")
	}
}

func TestSlowMemoryThrottlesIPC(t *testing.T) {
	run := func(lat int64) int64 {
		access := func(core int, vaddr uint64, write bool, now int64, done func(int64)) {
			done(now + lat)
		}
		c := New(0, DefaultConfig(), testStream(0.3), access)
		c.SetLimit(5_000)
		var now int64
		for !c.Done() {
			now++
			c.Cycle(now)
			if now > 10_000_000 {
				t.Fatal("stuck")
			}
		}
		return c.FinishedAt()
	}
	fast, slow := run(10), run(500)
	if slow <= fast {
		t.Errorf("500-cycle memory (%d cycles) should be slower than 10-cycle (%d)", slow, fast)
	}
}

func TestROBLimitsMLP(t *testing.T) {
	// With a huge memory latency, the number of overlapping outstanding
	// loads is bounded by the ROB (memory-level parallelism window).
	outstanding, maxOutstanding := 0, 0
	var pending []func(int64)
	access := func(core int, vaddr uint64, write bool, now int64, done func(int64)) {
		if write {
			done(now + 1)
			return
		}
		outstanding++
		if outstanding > maxOutstanding {
			maxOutstanding = outstanding
		}
		pending = append(pending, func(c int64) {
			outstanding--
			done(c)
		})
	}
	cfg := Config{ROB: 32, FetchWidth: 4, RetireWidth: 4}
	c := New(0, cfg, testStream(0.9), access) // memory-heavy
	c.SetLimit(1_000)
	var now int64
	for !c.Done() && now < 1_000_000 {
		now++
		c.Cycle(now)
		if now%200 == 0 { // periodically complete everything outstanding
			for _, f := range pending {
				f(now)
			}
			pending = nil
		}
	}
	if maxOutstanding == 0 || maxOutstanding > cfg.ROB {
		t.Errorf("max outstanding loads = %d, want in (0, %d]", maxOutstanding, cfg.ROB)
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	// Never complete any store; loads complete instantly. The core must
	// still retire (stores drain through the store buffer).
	access := func(core int, vaddr uint64, write bool, now int64, done func(int64)) {
		if !write {
			done(now + 1)
		}
	}
	w := &workload.Workload{
		Name: "stores", Suite: "test",
		FootprintBytes: 1 << 20,
		MemFrac:        0.5, WriteFrac: 1.0, // all stores
		SeqProb: 0.5, SeqRun: 8, HotFrac: 0.1, HotProb: 0.5,
		Mix: workload.ValueMix{{Kind: workload.KindZero, Weight: 1}},
	}
	c := New(0, DefaultConfig(), w.NewStream(2), access)
	c.SetLimit(5_000)
	var now int64
	for !c.Done() {
		now++
		c.Cycle(now)
		if now > 1_000_000 {
			t.Fatal("stores blocked retirement")
		}
	}
}

func TestResetWindow(t *testing.T) {
	access := func(core int, vaddr uint64, write bool, now int64, done func(int64)) {
		done(now + 1)
	}
	c := New(0, DefaultConfig(), testStream(0.3), access)
	c.SetLimit(1_000)
	var now int64
	for !c.Done() {
		now++
		c.Cycle(now)
	}
	warmupEnd := c.FinishedAt()
	c.ResetWindow(1_000)
	if c.Done() || c.Retired() != 0 {
		t.Fatal("reset window should clear progress")
	}
	for !c.Done() {
		now++
		c.Cycle(now)
	}
	if c.FinishedAt() <= warmupEnd {
		t.Error("second window must finish after the first")
	}
	if c.Stream() == nil {
		t.Error("stream accessor broken")
	}
}
