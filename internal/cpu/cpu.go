// Package cpu models the out-of-order cores at USIMM's fidelity: a
// reorder-buffer window, N-wide fetch and in-order retire, immediate
// completion for non-memory instructions, and memory instructions that
// complete when the hierarchy answers. Memory-level parallelism — multiple
// misses in flight per core — emerges from the ROB window, which is what
// makes the model bandwidth-sensitive.
package cpu

import "ptmc/internal/workload"

// MemAccess is the hierarchy hook: the core calls it for each memory
// instruction; done must fire at the CPU cycle the load would complete.
// Stores retire without waiting (store-buffer semantics) but still call
// done for bookkeeping.
type MemAccess func(core int, vaddr uint64, write bool, now int64, done func(completeAt int64))

// Config sizes a core (Table I: 4-wide OoO, USIMM's 192-entry ROB).
type Config struct {
	ROB         int
	FetchWidth  int
	RetireWidth int
}

// DefaultConfig returns the paper's core configuration.
func DefaultConfig() Config {
	return Config{ROB: 192, FetchWidth: 4, RetireWidth: 4}
}

const notDone = int64(1<<62 - 1)

// NeverWake is NextWake's "no self-scheduled event" sentinel: the core can
// only progress when an outstanding memory completion fires.
const NeverWake = notDone

// noopDone is the shared completion callback for stores (retirement does
// not wait on them).
func noopDone(int64) {}

// Core is one simulated core fed by a workload stream.
type Core struct {
	id     int
	cfg    Config
	stream workload.Source
	access MemAccess

	rob   []int64 // completion cycle per in-flight instruction
	head  int
	tail  int
	count int

	gapLeft int         // non-memory instructions pending before nextOp
	nextOp  workload.Op // memory op waiting to enter the ROB
	haveOp  bool        // nextOp holds a fetched-but-unentered memory op

	// doneFns holds one completion callback per ROB slot, built once at
	// construction. Loads used to allocate a fresh closure per access (and
	// nextOp a fresh Op per stream advance), which made the fetch path the
	// simulator's largest allocation site; a slot's callback is identical
	// across all its occupants, so both are hoisted here.
	doneFns []func(completeAt int64)

	retired  int64
	limit    int64
	finished int64 // cycle the limit-th instruction retired (-1 until then)
}

// New builds a core.
func New(id int, cfg Config, stream workload.Source, access MemAccess) *Core {
	c := &Core{
		id:       id,
		cfg:      cfg,
		stream:   stream,
		access:   access,
		rob:      make([]int64, cfg.ROB),
		finished: -1,
	}
	c.doneFns = make([]func(int64), cfg.ROB)
	for i := range c.doneFns {
		idx := i
		c.doneFns[i] = func(completeAt int64) { c.rob[idx] = completeAt }
	}
	return c
}

// SetLimit sets the retirement target; the core stops fetching once
// reached. Call before running.
func (c *Core) SetLimit(n int64) { c.limit = n }

// Retired returns the number of retired instructions.
func (c *Core) Retired() int64 { return c.retired }

// FinishedAt returns the cycle the core hit its limit, or -1.
func (c *Core) FinishedAt() int64 { return c.finished }

// Done reports whether the core has retired its limit.
func (c *Core) Done() bool { return c.finished >= 0 }

// ResetWindow restarts retirement counting (end of warmup): retired
// instructions so far are forgotten, the limit applies afresh.
func (c *Core) ResetWindow(limit int64) {
	c.retired = 0
	c.limit = limit
	c.finished = -1
}

// Cycle advances the core by one CPU cycle.
func (c *Core) Cycle(now int64) {
	// Retire in order.
	for n := 0; n < c.cfg.RetireWidth && c.count > 0; n++ {
		if c.rob[c.head] > now {
			break
		}
		c.head = (c.head + 1) % len(c.rob)
		c.count--
		c.retired++
		if c.finished < 0 && c.retired >= c.limit {
			c.finished = now
		}
	}
	if c.finished >= 0 {
		return // target reached: stop fetching, let the window drain
	}
	// Fetch up to width.
	for n := 0; n < c.cfg.FetchWidth && c.count < len(c.rob); n++ {
		if c.gapLeft == 0 && !c.haveOp {
			op := c.stream.Next()
			c.gapLeft = op.Gap
			c.nextOp = op
			c.haveOp = true
		}
		slot := c.tail
		c.tail = (c.tail + 1) % len(c.rob)
		c.count++
		if c.gapLeft > 0 {
			c.gapLeft--
			c.rob[slot] = now + 1 // non-memory op
			continue
		}
		op := c.nextOp
		c.haveOp = false
		if op.Write {
			// Stores retire from the store buffer immediately; the
			// hierarchy still sees the access.
			c.rob[slot] = now + 1
			c.access(c.id, op.VAddr, true, now, noopDone)
			continue
		}
		c.rob[slot] = notDone
		c.access(c.id, op.VAddr, false, now, c.doneFns[slot])
	}
}

// Stream exposes the core's workload source (data synthesis callbacks).
func (c *Core) Stream() workload.Source { return c.stream }

// NextWake returns the earliest CPU cycle > now at which Cycle can change
// the core's state, or NeverWake if only an external event (a memory
// completion updating the ROB) can unblock it. The epoch engine uses this
// to skip cycles no core can use.
//
// The cases mirror Cycle exactly:
//   - finished core, empty ROB: fully drained, nothing ever happens again;
//   - fetching core with ROB space: fetch proceeds next cycle;
//   - otherwise progress waits on the ROB head: an unresolved load blocks
//     until its completion callback (external), a resolved entry retires
//     the cycle after its completion time. The head governs even for a
//     finished, draining core — those retires move the window across the
//     warmup/measure boundary and must not be skipped.
func (c *Core) NextWake(now int64) int64 {
	if c.finished >= 0 && c.count == 0 {
		return NeverWake
	}
	if c.finished < 0 && c.count < len(c.rob) {
		return now + 1
	}
	h := c.rob[c.head]
	if h == notDone {
		return NeverWake
	}
	if h <= now {
		return now + 1
	}
	return h
}
