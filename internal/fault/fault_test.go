package fault

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"ptmc/internal/core"
	"ptmc/internal/mem"
)

func testTarget(seed int64) (Target, *mem.Store, *core.MarkerGen) {
	img := mem.NewStore()
	g := core.NewMarkerGen(seed)
	for a := mem.LineAddr(0); a < 64; a++ {
		line := make([]byte, mem.LineSize)
		for i := range line {
			line[i] = byte(a)
		}
		img.Write(a, line)
	}
	return Target{Img: img, Markers: g, LIT: core.NewLIT(core.LITReKey), LLP: core.NewLLP(64)}, img, g
}

// TestInjectorDeterminism: the same seed must replay the identical
// injection sequence — the property that makes a campaign seed a
// reproducer.
func TestInjectorDeterminism(t *testing.T) {
	runCampaign := func() []Injection {
		tg, img, _ := testTarget(7)
		in := NewInjector(99, tg)
		cand := img.TouchedLines()
		for i := 0; i < 50; i++ {
			in.Inject(Kind(i%int(numKinds)), cand)
		}
		return in.Applied
	}
	a, b := runCampaign(), runCampaign()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different injection sequences")
	}
	if len(a) != 50 {
		t.Fatalf("applied %d injections, want 50", len(a))
	}
}

// TestEveryKindMutatesState: each kind must observably change the image or
// the attacked structure.
func TestEveryKindMutatesState(t *testing.T) {
	for _, k := range Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			tg, img, g := testTarget(3)
			lit := tg.LIT.(*core.LIT)
			in := NewInjector(5, tg)
			before := map[mem.LineAddr][]byte{}
			for _, a := range img.TouchedLines() {
				before[a] = append([]byte(nil), img.Read(a)...)
			}
			inj, ok := in.Inject(k, img.TouchedLines())
			if !ok {
				t.Fatalf("inject %v failed", k)
			}
			switch k {
			case KindBogusLIT:
				if inverted, _ := lit.Contains(inj.Addr); !inverted {
					t.Error("LIT entry not planted")
				}
			case KindLLPPoison:
				// State change is in the predictor; nothing to assert on the
				// image. Verified by the injection being applied.
			default:
				if bytes.Equal(before[inj.Addr], img.Read(inj.Addr)) {
					t.Errorf("%v left the image unchanged at %d", k, inj.Addr)
				}
			}
			switch k {
			case KindTombstone:
				if g.Classify(inj.Addr, img.Read(inj.Addr)) != core.ClassInvalid {
					t.Error("tombstone does not classify as invalid")
				}
			case KindUndecodable:
				if g.Classify(inj.Addr, img.Read(inj.Addr)) != core.ClassComp4 {
					t.Error("forged unit does not classify as 4:1")
				}
			}
		})
	}
}

// TestCollidingLine: synthesized adversarial data must actually collide
// with the line's markers, and keep colliding across addresses.
func TestCollidingLine(t *testing.T) {
	g := core.NewMarkerGen(42)
	rng := rand.New(rand.NewSource(1))
	for a := mem.LineAddr(0); a < 256; a++ {
		data := CollidingLine(g, a, rng)
		if !g.CollidesWithMarkers(a, data) {
			t.Fatalf("line %d: synthesized data does not collide", a)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
}
