// Package fault is the deterministic fault-injection engine that attacks
// the PTMC soundness claim from the outside. It mutates the raw DRAM image
// (and, for state attacks, the controller's LIT and LLP) the way a hostile
// environment would — bit flips in markers and payloads, forged compressed
// units, Marker-IL tombstones planted over live data, bogus inversion-table
// entries, poisoned location predictions, and adversarial marker-colliding
// write data — while the campaign driver (internal/sim) checks that every
// injected fault is either detected by the controller's typed-error /
// degradation machinery or proven harmless by VerifyImage.
//
// Every choice the injector makes is drawn from one seeded RNG, so a
// campaign replays exactly from (seed, trial count): a failure report's
// seed is a reproducer.
package fault

import (
	"fmt"
	"math/rand"

	"ptmc/internal/cache"
	"ptmc/internal/mem"
)

// Kind enumerates the injectable faults and attacks.
type Kind int

const (
	// KindMarkerFlip flips one bit inside the 4-byte inline marker tail of
	// a touched image location — the classification metadata itself.
	KindMarkerFlip Kind = iota
	// KindPayloadFlip flips one bit inside the 60-byte payload of a
	// touched image location.
	KindPayloadFlip
	// KindUndecodable overwrites a group base with a forged compressed
	// unit: a valid 4:1 marker over garbage that will not decode.
	KindUndecodable
	// KindMisplacedUnit forges a compressed-unit marker at a location that
	// is not the unit's home (classification must reject it).
	KindMisplacedUnit
	// KindTombstone plants the line's own Marker-IL over a live location,
	// making its data unreachable — the probe for silent data loss.
	KindTombstone
	// KindBogusLIT inserts an inversion-table entry for a line whose image
	// is not inverted (stale LIT state).
	KindBogusLIT
	// KindLLPPoison trains the Line Location Predictor with a wrong level
	// for a line, forcing mispredictions (must cost bandwidth, never
	// correctness).
	KindLLPPoison
	numKinds
)

// Kinds lists every injectable fault kind.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

var kindNames = [...]string{
	KindMarkerFlip:    "marker-flip",
	KindPayloadFlip:   "payload-flip",
	KindUndecodable:   "undecodable",
	KindMisplacedUnit: "misplaced-unit",
	KindTombstone:     "tombstone",
	KindBogusLIT:      "bogus-lit",
	KindLLPPoison:     "llp-poison",
}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind resolves a kind name ("marker-flip", ...).
func ParseKind(name string) (Kind, error) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q", name)
}

// MarkerOracle exposes the per-line marker values the image-level faults
// need to forge classifiable state. *core.MarkerGen satisfies it — the
// injector plays an adversary with full knowledge of the current keys.
type MarkerOracle interface {
	Marker2(a mem.LineAddr) uint32
	Marker4(a mem.LineAddr) uint32
	MarkerIL(a mem.LineAddr) [mem.LineSize]byte
}

// LITSink is the injector's hook into the Line Inversion Table.
// *core.LIT satisfies it.
type LITSink interface {
	Insert(a mem.LineAddr) bool
}

// LLPSink is the injector's hook into the Line Location Predictor.
// *core.LLP satisfies it.
type LLPSink interface {
	Record(a mem.LineAddr, actual cache.Level, counted, correct bool)
}

// Target is everything an Injector may attack. Img and Markers are
// required; LIT and LLP may be nil, which disables the corresponding
// kinds.
type Target struct {
	Img     *mem.Store
	Markers MarkerOracle
	LIT     LITSink
	LLP     LLPSink
}

// Injection records one applied fault — enough to label a campaign trial
// and to reason about what detection it should trigger.
type Injection struct {
	Kind Kind
	Addr mem.LineAddr // attacked line/location
	Bit  int          // flipped bit index (flip kinds only)
}

func (i Injection) String() string {
	switch i.Kind {
	case KindMarkerFlip, KindPayloadFlip:
		return fmt.Sprintf("%v@%d bit %d", i.Kind, i.Addr, i.Bit)
	default:
		return fmt.Sprintf("%v@%d", i.Kind, i.Addr)
	}
}

// Injector applies seeded faults to a Target. Not goroutine-safe; one
// injector drives one campaign.
type Injector struct {
	rng *rand.Rand
	t   Target

	// Applied is the log of every injection, in order.
	Applied []Injection
}

// NewInjector builds an injector over t driven by a deterministic RNG.
func NewInjector(seed int64, t Target) *Injector {
	if t.Img == nil || t.Markers == nil {
		panic("fault: Target needs Img and Markers")
	}
	return &Injector{rng: rand.New(rand.NewSource(seed)), t: t}
}

// Rand exposes the injector's RNG so the campaign driver can draw traffic
// decisions from the same replayable stream.
func (in *Injector) Rand() *rand.Rand { return in.rng }

// pick selects a random element of candidates.
func (in *Injector) pick(candidates []mem.LineAddr) mem.LineAddr {
	return candidates[in.rng.Intn(len(candidates))]
}

// Inject applies one fault of the given kind to a location drawn from
// candidates (typically the image's touched lines). It reports false when
// the kind cannot be applied (no candidates, or the target lacks the
// required hook).
func (in *Injector) Inject(kind Kind, candidates []mem.LineAddr) (Injection, bool) {
	if len(candidates) == 0 {
		return Injection{}, false
	}
	inj := Injection{Kind: kind}
	switch kind {
	case KindMarkerFlip:
		inj.Addr = in.pick(candidates)
		inj.Bit = (mem.LineSize-MarkerTailBytes)*8 + in.rng.Intn(MarkerTailBytes*8)
		in.flipBit(inj.Addr, inj.Bit)
	case KindPayloadFlip:
		inj.Addr = in.pick(candidates)
		inj.Bit = in.rng.Intn((mem.LineSize - MarkerTailBytes) * 8)
		in.flipBit(inj.Addr, inj.Bit)
	case KindUndecodable:
		inj.Addr = in.pick(candidates) &^ 3 // group base: unit at its home
		in.forgeUnit(inj.Addr, inj.Addr)
	case KindMisplacedUnit:
		// Forge a unit's marker at a non-home location: take a line whose
		// group index is non-zero and seal a "4:1 unit" there.
		inj.Addr = in.pick(candidates) | 1
		in.forgeUnit(inj.Addr, inj.Addr)
	case KindTombstone:
		inj.Addr = in.pick(candidates)
		il := in.t.Markers.MarkerIL(inj.Addr)
		in.t.Img.Write(inj.Addr, il[:])
	case KindBogusLIT:
		if in.t.LIT == nil {
			return Injection{}, false
		}
		inj.Addr = in.pick(candidates)
		in.t.LIT.Insert(inj.Addr)
	case KindLLPPoison:
		if in.t.LLP == nil {
			return Injection{}, false
		}
		inj.Addr = in.pick(candidates)
		// Train the predictor with a level chosen to mismatch the line's
		// current location as often as possible.
		in.t.LLP.Record(inj.Addr, cache.Level(1+in.rng.Intn(2)), false, false)
	default:
		return Injection{}, false
	}
	in.Applied = append(in.Applied, inj)
	return inj, true
}

// MarkerTailBytes mirrors core.MarkerBytes without importing core (the
// fault package sits below the controller layer).
const MarkerTailBytes = 4

// flipBit flips one bit of the image at line a.
func (in *Injector) flipBit(a mem.LineAddr, bit int) {
	line := make([]byte, mem.LineSize)
	copy(line, in.t.Img.Read(a))
	line[bit/8] ^= 1 << (bit % 8)
	in.t.Img.Write(a, line)
}

// forgeUnit writes garbage sealed with markerAddr's 4:1 marker at loc. The
// payload is drawn so it is overwhelmingly unlikely to decode as a valid
// 4-line group; even when it accidentally does, the campaign still
// classifies the outcome (the decoded values cannot all match the
// architectural store).
func (in *Injector) forgeUnit(loc, markerAddr mem.LineAddr) {
	line := make([]byte, mem.LineSize)
	in.rng.Read(line)
	m4 := in.t.Markers.Marker4(markerAddr)
	line[60] = byte(m4)
	line[61] = byte(m4 >> 8)
	line[62] = byte(m4 >> 16)
	line[63] = byte(m4 >> 24)
	in.t.Img.Write(loc, line)
}

// CollidingLine synthesizes adversarial write data for line a: random
// payload whose 4-byte tail equals one of a's compression markers, so the
// controller must invert it and consume a LIT entry. Hammering distinct
// lines with colliding data is the paper's engineered-collision
// denial-of-service attack; the defense under test is re-keying.
func CollidingLine(m MarkerOracle, a mem.LineAddr, rng *rand.Rand) []byte {
	line := make([]byte, mem.LineSize)
	rng.Read(line)
	marker := m.Marker2(a)
	if rng.Intn(2) == 0 {
		marker = m.Marker4(a)
	}
	line[60] = byte(marker)
	line[61] = byte(marker >> 8)
	line[62] = byte(marker >> 16)
	line[63] = byte(marker >> 24)
	return line
}
