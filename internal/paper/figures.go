package paper

import (
	"context"
	"fmt"

	"ptmc/internal/compress"
	"ptmc/internal/core"
	"ptmc/internal/sim"
	"ptmc/internal/stats"
	"ptmc/internal/workload"
)

// Figure4 reproduces the bandwidth-breakdown bars for table-based TMC:
// data traffic, additional (compression-induced) writes, and metadata
// accesses, normalized to the uncompressed baseline. The paper's claim:
// metadata alone can exceed 50% extra bandwidth on graph workloads.
func (r *Runner) Figure4() error {
	r.header("Figure 4: bandwidth of Table-TMC, normalized to uncompressed")
	fmt.Fprintf(r.Out, "%-14s %8s %8s %8s %8s\n", "workload", "data", "extraWr", "metadata", "total")
	wls := append(append([]string{}, r.Opts.spec()...), r.Opts.graph()...)
	if err := r.Prefetch(jobsFor(wls, sim.SchemeUncompressed, sim.SchemeTableTMC)...); err != nil {
		return err
	}
	for _, wl := range wls {
		base, err := r.Result(wl, sim.SchemeUncompressed, "", nil)
		if err != nil {
			return err
		}
		tt, err := r.Result(wl, sim.SchemeTableTMC, "", nil)
		if err != nil {
			return err
		}
		norm := float64(base.Mem.Total())
		data := float64(tt.Mem.DemandReads+tt.Mem.DirtyWrites) / norm
		extra := float64(tt.Mem.CleanCompIntoW) / norm
		meta := float64(tt.Mem.MetadataReads+tt.Mem.MetadataWrites) / norm
		fmt.Fprintf(r.Out, "%-14s %8.3f %8.3f %8.3f %8.3f\n",
			wl, data, extra, meta, data+extra+meta)
	}
	return nil
}

// Figure5 compares ideal TMC (no metadata) against table-based TMC.
// The paper's claim: ideal gains ~12% while the table-based design loses
// up to 49% on graph workloads.
func (r *Runner) Figure5() error {
	r.header("Figure 5: speedup of Ideal TMC vs TMC-with-metadata")
	fmt.Fprintf(r.Out, "%-14s %10s %10s\n", "workload", "ideal", "table-tmc")
	wls := append(append([]string{}, r.Opts.spec()...), r.Opts.graph()...)
	if err := r.Prefetch(jobsFor(wls, sim.SchemeUncompressed, sim.SchemeIdeal, sim.SchemeTableTMC)...); err != nil {
		return err
	}
	var ideals, tables []float64
	for _, wl := range wls {
		si, err := r.speedup(wl, sim.SchemeIdeal)
		if err != nil {
			return err
		}
		st, err := r.speedup(wl, sim.SchemeTableTMC)
		if err != nil {
			return err
		}
		ideals = append(ideals, si)
		tables = append(tables, st)
		fmt.Fprintf(r.Out, "%-14s %10.3f %10.3f\n", wl, si, st)
	}
	fmt.Fprintf(r.Out, "%-14s %10.3f %10.3f\n", "GEOMEAN",
		stats.GeoMean(ideals), stats.GeoMean(tables))
	return nil
}

// Figure6 measures, offline, the probability that a pair of adjacent lines
// compresses to 64 bytes and to 60 bytes. The paper's claim: reserving 4
// bytes for the marker costs little compressibility (38% -> 36% on
// average).
func (r *Runner) Figure6() error {
	r.header("Figure 6: fraction of adjacent pairs compressing to 64B / 60B")
	fmt.Fprintf(r.Out, "%-14s %10s %10s\n", "workload", "to-64B", "to-60B")
	alg := compress.Hybrid{}
	wls := append(append([]string{}, r.Opts.spec()...), r.Opts.graph()...)
	// The offline pair scan is CPU-bound with no shared state, so each
	// workload's row computes in parallel; rows print in workload order
	// afterwards so the report bytes match a serial run.
	v64s, v60s := make([]float64, len(wls)), make([]float64, len(wls))
	err := r.pool.ForEach(context.Background(), len(wls), func(ctx context.Context, i int) error {
		w, err := workload.Lookup(wls[i])
		if err != nil {
			return err
		}
		s := w.NewStream(r.Opts.Seed)
		const pairs = 4000
		fit64, fit60 := 0, 0
		l0, l1 := make([]byte, 64), make([]byte, 64)
		pair := [][]byte{l0, l1}
		var buf []byte
		var ok bool
		for p := 0; p < pairs; p++ {
			vline := uint64(p) * 2
			s.FillLine(vline, l0)
			s.FillLine(vline+1, l1)
			if buf, ok = compress.AppendCompressGroup(alg, buf[:0], pair, 64); ok {
				fit64++
			}
			if buf, ok = compress.AppendCompressGroup(alg, buf[:0], pair, 60); ok {
				fit60++
			}
		}
		v64s[i] = float64(fit64) / pairs
		v60s[i] = float64(fit60) / pairs
		return nil
	})
	if err != nil {
		return err
	}
	for i, wl := range wls {
		fmt.Fprintf(r.Out, "%-14s %9.1f%% %9.1f%%\n", wl, 100*v64s[i], 100*v60s[i])
	}
	a64, a60 := 0.0, 0.0
	for i := range v64s {
		a64 += v64s[i]
		a60 += v60s[i]
	}
	fmt.Fprintf(r.Out, "%-14s %9.1f%% %9.1f%%\n", "AVERAGE",
		100*a64/float64(len(v64s)), 100*a60/float64(len(v60s)))
	return nil
}

// Figure9 compares the metadata-cache hit rate of the table-based design
// with the LLP's location-prediction accuracy. The paper's claim: a 128 B
// LLP reaches ~98%, beating a 32 KB metadata cache.
func (r *Runner) Figure9() error {
	r.header("Figure 9: metadata-cache hit rate vs LLP accuracy")
	fmt.Fprintf(r.Out, "%-14s %10s %10s\n", "workload", "mcache", "LLP")
	wls := append(append([]string{}, r.Opts.spec()...), r.Opts.graph()...)
	if err := r.Prefetch(jobsFor(wls, sim.SchemeTableTMC, sim.SchemePTMC)...); err != nil {
		return err
	}
	var mc, llp []float64
	for _, wl := range wls {
		tt, err := r.Result(wl, sim.SchemeTableTMC, "", nil)
		if err != nil {
			return err
		}
		pt, err := r.Result(wl, sim.SchemePTMC, "", nil)
		if err != nil {
			return err
		}
		mc = append(mc, tt.MCacheHitRate)
		llp = append(llp, pt.LLPAccuracy)
		fmt.Fprintf(r.Out, "%-14s %9.1f%% %9.1f%%\n",
			wl, 100*tt.MCacheHitRate, 100*pt.LLPAccuracy)
	}
	am, al := 0.0, 0.0
	for i := range mc {
		am += mc[i]
		al += llp[i]
	}
	fmt.Fprintf(r.Out, "%-14s %9.1f%% %9.1f%%\n", "AVERAGE",
		100*am/float64(len(mc)), 100*al/float64(len(llp)))
	return nil
}

// Figure12 compares table-based TMC with static PTMC per workload. The
// paper's claim: eliminating the metadata lookup helps everywhere, but
// static PTMC still hurts graph workloads.
func (r *Runner) Figure12() error {
	r.header("Figure 12: speedup of Table-TMC vs PTMC (inline metadata + LLP)")
	fmt.Fprintf(r.Out, "%-14s %10s %10s\n", "workload", "table-tmc", "ptmc")
	wls := r.figure12Set()
	if err := r.Prefetch(jobsFor(wls, sim.SchemeUncompressed, sim.SchemeTableTMC, sim.SchemePTMC)...); err != nil {
		return err
	}
	var ts, ps []float64
	for _, wl := range wls {
		st, err := r.speedup(wl, sim.SchemeTableTMC)
		if err != nil {
			return err
		}
		sp, err := r.speedup(wl, sim.SchemePTMC)
		if err != nil {
			return err
		}
		ts = append(ts, st)
		ps = append(ps, sp)
		fmt.Fprintf(r.Out, "%-14s %10.3f %10.3f\n", wl, st, sp)
	}
	fmt.Fprintf(r.Out, "%-14s %10.3f %10.3f\n", "GEOMEAN", stats.GeoMean(ts), stats.GeoMean(ps))
	return nil
}

func (r *Runner) figure12Set() []string {
	wls := append(append([]string{}, r.Opts.spec()...), r.Opts.graph()...)
	return append(wls, r.Opts.mixes()...)
}

// Figure14 reproduces PTMC's bandwidth breakdown: data, clean-evict +
// invalidate maintenance, and LLP-mispredict re-reads, normalized to the
// uncompressed baseline. The paper's claim: for graph workloads the
// maintenance term dominates — the motivation for Dynamic-PTMC.
func (r *Runner) Figure14() error {
	r.header("Figure 14: bandwidth of PTMC, normalized to uncompressed")
	fmt.Fprintf(r.Out, "%-14s %8s %10s %10s %8s\n", "workload", "data", "clean+inv", "mispredict", "total")
	wls := append(append([]string{}, r.Opts.spec()...), r.Opts.graph()...)
	if err := r.Prefetch(jobsFor(wls, sim.SchemeUncompressed, sim.SchemePTMC)...); err != nil {
		return err
	}
	for _, wl := range wls {
		base, err := r.Result(wl, sim.SchemeUncompressed, "", nil)
		if err != nil {
			return err
		}
		pt, err := r.Result(wl, sim.SchemePTMC, "", nil)
		if err != nil {
			return err
		}
		norm := float64(base.Mem.Total())
		data := float64(pt.Mem.DemandReads+pt.Mem.DirtyWrites) / norm
		maint := float64(pt.Mem.CleanCompIntoW+pt.Mem.Invalidates) / norm
		mis := float64(pt.Mem.MispredictReads) / norm
		fmt.Fprintf(r.Out, "%-14s %8.3f %10.3f %10.3f %8.3f\n",
			wl, data, maint, mis, data+maint+mis)
	}
	return nil
}

// Figure15 is the headline comparison: Table-TMC, static PTMC,
// Dynamic-PTMC, and the ideal upper bound. The paper's claims: Dynamic-PTMC
// never loses (worst case within 1%), gains up to ~74%, and lands near
// two-thirds of ideal.
func (r *Runner) Figure15() error {
	r.header("Figure 15: speedup of TMC, Static-PTMC, Dynamic-PTMC, Ideal")
	fmt.Fprintf(r.Out, "%-14s %10s %10s %12s %10s\n",
		"workload", "table-tmc", "ptmc", "dynamic-ptmc", "ideal")
	wls := r.figure12Set()
	per := map[string][]float64{}
	schemes := []string{sim.SchemeTableTMC, sim.SchemePTMC, sim.SchemeDynamicPTMC, sim.SchemeIdeal}
	if err := r.Prefetch(jobsFor(wls, append([]string{sim.SchemeUncompressed}, schemes...)...)...); err != nil {
		return err
	}
	for _, wl := range wls {
		row := make([]float64, len(schemes))
		for i, sch := range schemes {
			s, err := r.speedup(wl, sch)
			if err != nil {
				return err
			}
			row[i] = s
			per[sch] = append(per[sch], s)
		}
		fmt.Fprintf(r.Out, "%-14s %10.3f %10.3f %12.3f %10.3f  %s\n",
			wl, row[0], row[1], row[2], row[3], bar(row[2]))
	}
	fmt.Fprintf(r.Out, "%-14s %10.3f %10.3f %12.3f %10.3f\n", "GEOMEAN",
		stats.GeoMean(per[schemes[0]]), stats.GeoMean(per[schemes[1]]),
		stats.GeoMean(per[schemes[2]]), stats.GeoMean(per[schemes[3]]))
	return nil
}

// Figure17 runs Dynamic-PTMC across the workload population and prints the
// sorted speedup curve. The paper's claim: no workload degrades; the curve
// is flat at 1.0 on the left and rises to ~1.7 on the right.
func (r *Runner) Figure17() error {
	r.header("Figure 17: Dynamic-PTMC speedup across workloads, sorted")
	if err := r.Prefetch(jobsFor(r.Opts.all(), sim.SchemeUncompressed, sim.SchemeDynamicPTMC)...); err != nil {
		return err
	}
	var vs []float64
	for _, wl := range r.Opts.all() {
		s, err := r.speedup(wl, sim.SchemeDynamicPTMC)
		if err != nil {
			return err
		}
		vs = append(vs, s)
	}
	sorted := sortedCopy(vs)
	for i, v := range sorted {
		fmt.Fprintf(r.Out, "%3d %7.3f  %s\n", i+1, v, bar(v))
	}
	fmt.Fprintf(r.Out, "min=%.3f geomean=%.3f max=%.3f\n",
		sorted[0], stats.GeoMean(sorted), sorted[len(sorted)-1])
	return nil
}

// Figure18 reports Dynamic-PTMC's power, energy and EDP normalized to the
// uncompressed baseline. The paper's claim: ~5% energy and ~10% EDP
// improvement from doing fewer DRAM requests in less time.
func (r *Runner) Figure18() error {
	r.header("Figure 18: Dynamic-PTMC speedup / power / energy / EDP (normalized)")
	fmt.Fprintf(r.Out, "%-14s %8s %8s %8s %8s\n", "workload", "speedup", "power", "energy", "EDP")
	var sp, pw, en, ed []float64
	wls := r.figure12Set()
	if err := r.Prefetch(jobsFor(wls, sim.SchemeUncompressed, sim.SchemeDynamicPTMC)...); err != nil {
		return err
	}
	for _, wl := range wls {
		base, err := r.Result(wl, sim.SchemeUncompressed, "", nil)
		if err != nil {
			return err
		}
		dyn, err := r.Result(wl, sim.SchemeDynamicPTMC, "", nil)
		if err != nil {
			return err
		}
		s := dyn.WeightedSpeedupOver(base)
		p := stats.Ratio(dyn.Energy.AvgWatts, base.Energy.AvgWatts)
		e := stats.Ratio(dyn.Energy.TotalJ, base.Energy.TotalJ)
		d := stats.Ratio(dyn.Energy.EDP, base.Energy.EDP)
		sp, pw, en, ed = append(sp, s), append(pw, p), append(en, e), append(ed, d)
		fmt.Fprintf(r.Out, "%-14s %8.3f %8.3f %8.3f %8.3f\n", wl, s, p, e, d)
	}
	fmt.Fprintf(r.Out, "%-14s %8.3f %8.3f %8.3f %8.3f\n", "GEOMEAN",
		stats.GeoMean(sp), stats.GeoMean(pw), stats.GeoMean(en), stats.GeoMean(ed))
	return nil
}

// LLPAblation sweeps the Last Compressibility Table size (DESIGN.md §7):
// accuracy and speedup vs entries.
func (r *Runner) LLPAblation(sizes []int) error {
	r.header("Ablation: LLP size sweep")
	fmt.Fprintf(r.Out, "%8s %10s %10s\n", "entries", "accuracy", "speedup")
	wl := r.Opts.spec()[0]
	jobs := []Job{{Workload: wl, Scheme: sim.SchemeUncompressed}}
	for _, n := range sizes {
		n := n
		jobs = append(jobs, Job{Workload: wl, Scheme: sim.SchemePTMC,
			Variant: fmt.Sprintf("llp%d", n),
			Mutate:  func(c *sim.Config) { c.LLPEntries = n }})
	}
	if err := r.Prefetch(jobs...); err != nil {
		return err
	}
	base, err := r.Result(wl, sim.SchemeUncompressed, "", nil)
	if err != nil {
		return err
	}
	for _, n := range sizes {
		n := n
		res, err := r.Result(wl, sim.SchemePTMC, fmt.Sprintf("llp%d", n),
			func(c *sim.Config) { c.LLPEntries = n })
		if err != nil {
			return err
		}
		fmt.Fprintf(r.Out, "%8d %9.1f%% %10.3f\n",
			n, 100*res.LLPAccuracy, res.WeightedSpeedupOver(base))
	}
	return nil
}

// MarkerWidthNote prints the collision math behind the 4-byte marker choice
// (§IV-C footnote): expected colliding lines resident in memory.
func (r *Runner) MarkerWidthNote(memGB int) {
	r.header("Marker width: expected resident collisions")
	lines := float64(uint64(memGB) << 30 / 64)
	for _, bytes := range []int{4, 5} {
		p := 1.0
		for i := 0; i < bytes; i++ {
			p /= 256
		}
		fmt.Fprintf(r.Out, "%dB marker: %.3g expected colliding lines in %d GB\n",
			bytes, lines*p, memGB)
	}
	_ = core.MarkerBytes
}

// RelatedWork compares the prior TMC implementations the paper discusses
// (§VII): MemZip-style variable-burst compression (non-commodity DIMMs,
// no co-location) and the table-based co-location design, against PTMC.
func (r *Runner) RelatedWork() error {
	r.header("Related work: MemZip vs Table-TMC vs Dynamic-PTMC")
	fmt.Fprintf(r.Out, "%-14s %8s %10s %12s\n", "workload", "memzip", "table-tmc", "dynamic-ptmc")
	wls := append(append([]string{}, r.Opts.spec()...), r.Opts.graph()...)
	if err := r.Prefetch(jobsFor(wls, sim.SchemeUncompressed, sim.SchemeMemZip,
		sim.SchemeTableTMC, sim.SchemeDynamicPTMC)...); err != nil {
		return err
	}
	var mz, tt, dp []float64
	for _, wl := range wls {
		a, err := r.speedup(wl, sim.SchemeMemZip)
		if err != nil {
			return err
		}
		b, err := r.speedup(wl, sim.SchemeTableTMC)
		if err != nil {
			return err
		}
		c, err := r.speedup(wl, sim.SchemeDynamicPTMC)
		if err != nil {
			return err
		}
		mz, tt, dp = append(mz, a), append(tt, b), append(dp, c)
		fmt.Fprintf(r.Out, "%-14s %8.3f %10.3f %12.3f\n", wl, a, b, c)
	}
	fmt.Fprintf(r.Out, "%-14s %8.3f %10.3f %12.3f\n", "GEOMEAN",
		stats.GeoMean(mz), stats.GeoMean(tt), stats.GeoMean(dp))
	return nil
}
