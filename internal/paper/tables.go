package paper

import (
	"fmt"

	"ptmc/internal/core"
	"ptmc/internal/sim"
	"ptmc/internal/stats"
)

// TableI prints the simulated system configuration.
func (r *Runner) TableI() {
	r.header("Table I: system configuration")
	cfg := sim.Default()
	fmt.Fprintf(r.Out, "Processors        %d cores; %.1f GHz, %d-wide OoO, %d-entry ROB\n",
		cfg.Cores, cfg.CPUFreqGHz, cfg.Core.FetchWidth, cfg.Core.ROB)
	fmt.Fprintf(r.Out, "L1 / L2 (private) %d KB %d-way / %d KB %d-way\n",
		cfg.L1Bytes>>10, cfg.L1Assoc, cfg.L2Bytes>>10, cfg.L2Assoc)
	fmt.Fprintf(r.Out, "Last-Level Cache  %d MB, %d-way\n", cfg.L3Bytes>>20, cfg.L3Assoc)
	fmt.Fprintf(r.Out, "Compression       FPC + BDI hybrid, %d-cycle decompression\n", 5)
	fmt.Fprintf(r.Out, "Main Memory       %d GB\n", cfg.MemBytes>>30)
	fmt.Fprintf(r.Out, "Bus Frequency     800 MHz (DDR 1.6 GT/s), %d channels, %d ranks, %d banks\n",
		cfg.DRAM.Channels, cfg.DRAM.RanksPerChannel, cfg.DRAM.BanksPerRank)
	fmt.Fprintf(r.Out, "tCAS-tRCD-tRP-tRAS %d-%d-%d-%d bus cycles\n",
		cfg.DRAM.TCAS, cfg.DRAM.TRCD, cfg.DRAM.TRP, cfg.DRAM.TRAS)
}

// TableII measures each workload's L3 MPKI and footprint under the
// uncompressed baseline (the paper's workload-characteristics table).
func (r *Runner) TableII() error {
	r.header("Table II: workload characteristics (measured)")
	fmt.Fprintf(r.Out, "%-10s %-14s %8s %12s %12s\n",
		"suite", "workload", "L3 MPKI", "decl.footpr", "touched")
	wls := append(append([]string{}, r.Opts.spec()...), r.Opts.graph()...)
	if err := r.Prefetch(jobsFor(wls, sim.SchemeUncompressed)...); err != nil {
		return err
	}
	for _, wl := range wls {
		res, err := r.Result(wl, sim.SchemeUncompressed, "", nil)
		if err != nil {
			return err
		}
		w, _ := lookupWorkload(wl)
		fmt.Fprintf(r.Out, "%-10s %-14s %8.1f %9d MB %9d MB\n",
			w.Suite, wl, res.MPKI, w.FootprintBytes>>20, res.FootprintBytes>>20)
	}
	return nil
}

// TableIII reports the storage overhead of PTMC's structures; total must be
// under 300 bytes.
func (r *Runner) TableIII() {
	r.header("Table III: storage overhead of PTMC structures")
	lit := core.NewLIT(core.LITReKey).StorageBytes()
	llp := core.NewLLP(core.LLPEntries).StorageBytes()
	dyn := core.NewDynamic(8192, 8, 0.01, true).StorageBytes()
	rows := []struct {
		name  string
		bytes int
	}{
		{"Marker for 2-to-1", 4},
		{"Marker for 4-to-1", 4},
		{"Marker for Invalid Line", 64},
		{"Line Inversion Table (LIT)", lit},
		{"Line Location Predictor (LLP)", llp},
		{"Dynamic-PTMC counters", dyn},
	}
	total := 0
	for _, row := range rows {
		fmt.Fprintf(r.Out, "%-32s %4d bytes\n", row.name, row.bytes)
		total += row.bytes
	}
	fmt.Fprintf(r.Out, "%-32s %4d bytes (paper: < 300)\n", "Total", total)
}

// TableIV sweeps the channel count: average Dynamic-PTMC speedup with 1, 2
// and 4 channels. The paper's claim: the benefit persists across channel
// counts (it is a latency/bandwidth-free-prefetch effect, not a queueing
// artifact).
func (r *Runner) TableIV() error {
	r.header("Table IV: sensitivity to number of memory channels")
	fmt.Fprintf(r.Out, "%10s %12s\n", "channels", "avg speedup")
	var jobs []Job
	for _, ch := range []int{1, 2, 4} {
		ch := ch
		variant := fmt.Sprintf("ch%d", ch)
		mutate := func(c *sim.Config) { c.DRAM.Channels = ch }
		for _, wl := range r.Opts.spec() {
			jobs = append(jobs,
				Job{Workload: wl, Scheme: sim.SchemeUncompressed, Variant: variant, Mutate: mutate},
				Job{Workload: wl, Scheme: sim.SchemeDynamicPTMC, Variant: variant, Mutate: mutate})
		}
	}
	if err := r.Prefetch(jobs...); err != nil {
		return err
	}
	for _, ch := range []int{1, 2, 4} {
		ch := ch
		var vs []float64
		for _, wl := range r.Opts.spec() {
			variant := fmt.Sprintf("ch%d", ch)
			mutate := func(c *sim.Config) { c.DRAM.Channels = ch }
			base, err := r.Result(wl, sim.SchemeUncompressed, variant, mutate)
			if err != nil {
				return err
			}
			dyn, err := r.Result(wl, sim.SchemeDynamicPTMC, variant, mutate)
			if err != nil {
				return err
			}
			vs = append(vs, dyn.WeightedSpeedupOver(base))
		}
		fmt.Fprintf(r.Out, "%10d %11.1f%%\n", ch, 100*(stats.GeoMean(vs)-1))
	}
	return nil
}

// TableV reports the L3 hit rate of the baseline and Dynamic-PTMC per
// suite. The paper's claim: the freely installed neighbor lines raise the
// L3 hit rate (17.3% -> 23.9% on SPEC).
func (r *Runner) TableV() error {
	r.header("Table V: effect of PTMC on L3 hit rate")
	// Under this model's high memory-level parallelism, most of the
	// free-fetch benefit is consumed *before* lines could produce L3 hits:
	// a neighbor's demand coalesces onto the in-flight group burst. The
	// free-served column reports that fraction — the modern-MLP
	// equivalent of the paper's L3-hit-rate delta.
	fmt.Fprintf(r.Out, "%-8s %10s %14s %12s\n", "suite", "baseline", "dynamic-ptmc", "free-served")
	suites := []struct {
		name string
		wls  []string
	}{
		{"SPEC", r.Opts.spec()},
		{"GAP", r.Opts.graph()},
		{"MIX", r.Opts.mixes()},
	}
	var jobs []Job
	for _, s := range suites {
		jobs = append(jobs, jobsFor(s.wls, sim.SchemeUncompressed, sim.SchemeDynamicPTMC)...)
	}
	if err := r.Prefetch(jobs...); err != nil {
		return err
	}
	for _, s := range suites {
		if len(s.wls) == 0 {
			continue
		}
		var b, d, free float64
		for _, wl := range s.wls {
			base, err := r.Result(wl, sim.SchemeUncompressed, "", nil)
			if err != nil {
				return err
			}
			dyn, err := r.Result(wl, sim.SchemeDynamicPTMC, "", nil)
			if err != nil {
				return err
			}
			b += base.L3.HitRate()
			d += dyn.L3.HitRate()
			served := float64(dyn.Mem.CoalescedReads)
			free += served / (served + float64(dyn.Mem.DemandReads))
		}
		n := float64(len(s.wls))
		fmt.Fprintf(r.Out, "%-8s %9.1f%% %13.1f%% %11.1f%%\n",
			s.name, 100*b/n, 100*d/n, 100*free/n)
	}
	return nil
}

// TableVI compares next-line prefetching against Dynamic-PTMC per suite.
// The paper's claim: prefetching pays full bandwidth for its speculation
// and loses where PTMC's bandwidth-free installs win.
func (r *Runner) TableVI() error {
	r.header("Table VI: next-line prefetch vs Dynamic-PTMC (avg speedup)")
	fmt.Fprintf(r.Out, "%-8s %12s %14s\n", "suite", "next-line", "dynamic-ptmc")
	suites := []struct {
		name string
		wls  []string
	}{
		{"SPEC", r.Opts.spec()},
		{"GAP", r.Opts.graph()},
		{"MIX", r.Opts.mixes()},
	}
	var jobs []Job
	for _, s := range suites {
		jobs = append(jobs, jobsFor(s.wls,
			sim.SchemeUncompressed, sim.SchemeNextLine, sim.SchemeDynamicPTMC)...)
	}
	if err := r.Prefetch(jobs...); err != nil {
		return err
	}
	for _, s := range suites {
		if len(s.wls) == 0 {
			continue
		}
		nl, err := r.geoMeanSpeedup(s.wls, sim.SchemeNextLine)
		if err != nil {
			return err
		}
		dp, err := r.geoMeanSpeedup(s.wls, sim.SchemeDynamicPTMC)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.Out, "%-8s %+11.1f%% %+13.1f%%\n", s.name, 100*(nl-1), 100*(dp-1))
	}
	return nil
}
