package paper

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOptions keeps the smoke tests fast: 2 cores, one workload per suite,
// a very short horizon.
func tinyOptions() Options {
	return Options{
		Cores:   2,
		Warmup:  15_000,
		Measure: 40_000,
		Seed:    1,
		Spec:    []string{"libquantum06", "mcf06"},
		Graph:   []string{"pr-twitter"},
		Mixes:   []string{},
		All:     []string{"libquantum06", "pr-twitter"},
		L3MB:    1,
		Silent:  true,
	}
}

// tinyRunner shares one cached runner across the smoke tests in this file.
func tinyRunner(t *testing.T) (*Runner, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	return NewRunner(tinyOptions(), &buf), &buf
}

func TestTablesSmoke(t *testing.T) {
	r, buf := tinyRunner(t)
	r.TableI()
	if !strings.Contains(buf.String(), "Last-Level Cache") {
		t.Error("Table I missing content")
	}
	if err := r.TableII(); err != nil {
		t.Fatal(err)
	}
	r.TableIII()
	if !strings.Contains(buf.String(), "276 bytes") {
		t.Error("Table III total should be 276 bytes")
	}
	if err := r.TableV(); err != nil {
		t.Fatal(err)
	}
	if err := r.TableVI(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Errorf("NaN leaked into a table:\n%s", buf.String())
	}
}

func TestFiguresSmoke(t *testing.T) {
	r, buf := tinyRunner(t)
	for name, f := range map[string]func() error{
		"fig4":    r.Figure4,
		"fig5":    r.Figure5,
		"fig6":    r.Figure6,
		"fig9":    r.Figure9,
		"fig12":   r.Figure12,
		"fig14":   r.Figure14,
		"fig15":   r.Figure15,
		"fig17":   r.Figure17,
		"fig18":   r.Figure18,
		"related": r.RelatedWork,
	} {
		if err := f(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Figure 4", "Figure 15", "GEOMEAN", "to-60B"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Error("NaN leaked into a figure")
	}
}

func TestAblationsSmoke(t *testing.T) {
	r, buf := tinyRunner(t)
	if err := r.LLPAblation([]int{64, 512}); err != nil {
		t.Fatal(err)
	}
	r.MarkerWidthNote(16)
	if !strings.Contains(buf.String(), "4B marker") {
		t.Error("marker note missing")
	}
}

func TestResultCacheReuses(t *testing.T) {
	r, _ := tinyRunner(t)
	a, err := r.Result("libquantum06", "uncompressed", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Result("libquantum06", "uncompressed", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache should return the identical result object")
	}
}

func TestOptionsDefaultsExpand(t *testing.T) {
	o := Full()
	if len(o.spec()) != 21 {
		t.Errorf("full SPEC set = %d", len(o.spec()))
	}
	if len(o.graph()) != 16 {
		t.Errorf("full GAP set = %d", len(o.graph()))
	}
	if len(o.mixes()) != 6 {
		t.Errorf("full mix set = %d", len(o.mixes()))
	}
	if len(o.all()) != 64 {
		t.Errorf("full population = %d", len(o.all()))
	}
}
