package paper

import (
	"bytes"
	"testing"
)

// TestPaperbenchArtifactShardIdentity renders the same paperbench
// experiment at shard counts 1, 2, and 8 and requires the emitted artifact
// to be byte-identical: the epoch engine must not change a single formatted
// digit of any report. Figure 12 is used because it spans three schemes
// (uncompressed baseline, Table-TMC, PTMC) through the full Runner path —
// config construction, the dedup cache, speedup aggregation, and table
// rendering.
func TestPaperbenchArtifactShardIdentity(t *testing.T) {
	render := func(shards int) string {
		opts := Options{
			Cores:   8,
			Warmup:  10_000,
			Measure: 10_000,
			Seed:    1,
			Spec:    []string{},
			Graph:   []string{},
			Mixes:   []string{"mix1"},
			L3MB:    8,
			Silent:  true,
			Shards:  shards,
		}
		var buf bytes.Buffer
		r := NewRunner(opts, &buf)
		if err := r.Figure12(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return buf.String()
	}

	ref := render(1)
	if ref == "" {
		t.Fatal("empty artifact")
	}
	for _, shards := range []int{2, 8} {
		if got := render(shards); got != ref {
			t.Errorf("artifact at shards=%d differs from serial:\n%s\nvs\n%s", shards, got, ref)
		}
	}
}
