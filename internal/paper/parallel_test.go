package paper

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"

	"ptmc/internal/sim"
)

// TestResultConcurrent is the -race regression for the Runner cache: eight
// goroutines hammer Result with overlapping keys; the singleflight cache
// must hand every caller the same *sim.Result with no data race and run
// each simulation exactly once.
func TestResultConcurrent(t *testing.T) {
	r, _ := tinyRunner(t)
	keys := []struct{ wl, scheme string }{
		{"libquantum06", sim.SchemeUncompressed},
		{"libquantum06", sim.SchemeTableTMC},
		{"pr-twitter", sim.SchemeUncompressed},
	}
	const goroutines = 8
	got := make([][]*sim.Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, k := range keys {
				res, err := r.Result(k.wl, k.scheme, "", nil)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				got[g] = append(got[g], res)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range keys {
			if len(got[g]) <= i || len(got[0]) <= i {
				continue // an earlier error already failed the test
			}
			if got[g][i] != got[0][i] {
				t.Errorf("goroutine %d key %d: distinct *Result pointers — cache deduplication broke", g, i)
			}
		}
	}
}

// render runs one artifact at a given worker count and returns the bytes.
func render(t *testing.T, parallel int, artifact func(r *Runner) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	r := NewParallelRunner(tinyOptions(), &buf, parallel)
	if err := artifact(r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelDeterminism is the byte-identity guarantee: the same figure
// rendered with 1 worker and 8 workers must produce identical bytes, and a
// CompareParallel sweep must produce deeply equal Result stats.
func TestParallelDeterminism(t *testing.T) {
	for _, artifact := range []struct {
		name string
		run  func(r *Runner) error
	}{
		{"Figure4", func(r *Runner) error { return r.Figure4() }},
		{"Figure6", func(r *Runner) error { return r.Figure6() }},
	} {
		serial := render(t, 1, artifact.run)
		wide := render(t, 8, artifact.run)
		if !bytes.Equal(serial, wide) {
			t.Errorf("%s: -parallel 1 and -parallel 8 render different bytes:\n--- serial ---\n%s\n--- parallel ---\n%s",
				artifact.name, serial, wide)
		}
	}

	cfg := sim.Default()
	cfg.Workload = "libquantum06"
	cfg.Cores = 2
	cfg.WarmupInstr = 15_000
	cfg.MeasureInstr = 40_000
	cfg.Seed = 1
	cfg.L3Bytes = 1 << 20
	schemes := []string{sim.SchemeUncompressed, sim.SchemeTableTMC, sim.SchemePTMC}
	serial, err := sim.CompareParallel(context.Background(), 1, cfg, schemes...)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := sim.CompareParallel(context.Background(), 8, cfg, schemes...)
	if err != nil {
		t.Fatal(err)
	}
	for _, sch := range schemes {
		if !reflect.DeepEqual(serial[sch], wide[sch]) {
			t.Errorf("CompareParallel %s: stats differ between 1 and 8 workers\nserial: %+v\nwide:   %+v",
				sch, serial[sch], wide[sch])
		}
	}
}

// TestPrefetchProgressOrder checks the non-Silent path: progress lines
// print in submission order even when completions race.
func TestPrefetchProgressOrder(t *testing.T) {
	opts := tinyOptions()
	opts.Silent = false
	run := func(parallel int) []byte {
		var buf bytes.Buffer
		r := NewParallelRunner(opts, &buf, parallel)
		if err := r.Prefetch(jobsFor([]string{"libquantum06", "pr-twitter"},
			sim.SchemeUncompressed, sim.SchemeTableTMC)...); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	wide := run(8)
	if !bytes.Equal(serial, wide) {
		t.Errorf("progress lines differ between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, wide)
	}
}
