package paper

import (
	"strings"
	"testing"
)

func TestBarRendering(t *testing.T) {
	if got := bar(1.0); got != "|" {
		t.Errorf("bar(1.0) = %q", got)
	}
	if got := bar(1.10); !strings.HasPrefix(got, "|") || strings.Count(got, "#") != 4 {
		t.Errorf("bar(1.10) = %q, want 4 cells right of baseline", got)
	}
	if got := bar(0.95); !strings.HasSuffix(got, "|") || strings.Count(got, "-") != 2 {
		t.Errorf("bar(0.95) = %q, want 2 cells left of baseline", got)
	}
	// Saturation.
	if got := bar(10.0); strings.Count(got, "#") != 40 {
		t.Errorf("bar(10.0) = %q, want saturated", got)
	}
	if got := bar(0.01); strings.Count(got, "-") != 20 {
		t.Errorf("bar(0.01) = %q, want saturated", got)
	}
}
