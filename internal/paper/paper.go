// Package paper implements the reproduction of every table and figure in
// the evaluation of "Enabling Transparent Memory-Compression for Commodity
// Memory Systems" (HPCA 2019). Each experiment builds on the simulator in
// internal/sim and prints the same rows/series the paper reports; shapes
// (who wins, rough factors, crossovers) are the reproduction target, not
// absolute numbers — see EXPERIMENTS.md.
//
// The Runner caches simulation results by (workload, scheme, variant), so
// experiments that share runs (most share the uncompressed baseline) pay
// for them once per process.
package paper

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"ptmc/internal/exec"
	"ptmc/internal/sim"
	"ptmc/internal/stats"
	"ptmc/internal/workload"
)

// Options scopes an experiment run.
type Options struct {
	Cores   int
	Warmup  int64
	Measure int64
	Seed    int64

	// Workload subsets (names). A nil slice selects the full paper set;
	// an empty non-nil slice selects none.
	Spec   []string // memory-intensive SPEC set (Figures 4-15)
	Graph  []string // GAP set
	Mixes  []string // multiprogrammed mixes
	All    []string // Figure 17 population (defaults to every workload+mix)
	L3MB   int      // LLC size in MB (Table I: 8)
	Silent bool     // suppress per-run progress lines

	// Shards selects the epoch execution engine for every simulation in
	// the run (sim.Config.Shards): 0 or 1 = the serial reference loop,
	// a power of two >= 2 = the sharded engine. Purely a performance
	// knob — reports are byte-identical at any value.
	Shards int

	// EventDriven runs every simulation on the discrete-event engine
	// (sim.Config.EventDriven). Like Shards, purely a performance knob:
	// reports are byte-identical either way.
	EventDriven bool
}

// Quick returns a laptop-scale option set: representative workloads and a
// short horizon. The shapes of every figure survive; error bars shrink with
// -insts in cmd/paperbench.
func Quick() Options {
	return Options{
		Cores:   8,
		Warmup:  700_000,
		Measure: 350_000,
		Seed:    1,
		Spec: []string{"libquantum06", "lbm06", "mcf06", "soplex06",
			"lbm17", "xz17"},
		Graph: []string{"pr-twitter", "bfs-web", "cc-sk"},
		Mixes: []string{"mix1", "mix3"},
		All: []string{"libquantum06", "lbm06", "mcf06", "soplex06", "sphinx306",
			"leela17", "xz17", "pr-twitter", "bfs-web", "mix1"},
		L3MB: 8,
	}
}

// Full returns the complete paper workload population (slow: intended for
// cmd/paperbench -full).
func Full() Options {
	o := Quick()
	o.Warmup = 1_000_000
	o.Measure = 1_000_000
	o.Spec = nil
	o.Graph = nil
	o.Mixes = nil
	o.All = nil
	return o
}

func (o *Options) spec() []string {
	if o.Spec != nil {
		return o.Spec
	}
	var out []string
	for _, w := range workload.HighMPKI() {
		out = append(out, w.Name)
	}
	return out
}

func (o *Options) graph() []string {
	if o.Graph != nil {
		return o.Graph
	}
	var out []string
	for _, w := range workload.Graph() {
		out = append(out, w.Name)
	}
	return out
}

func (o *Options) mixes() []string {
	if o.Mixes != nil {
		return o.Mixes
	}
	var out []string
	for _, m := range workload.Mixes() {
		out = append(out, m.Name)
	}
	return out
}

func (o *Options) all() []string {
	if o.All != nil {
		return o.All
	}
	return workload.Names()
}

// Runner executes experiments against a shared, goroutine-safe result
// cache. Simulations fan out over a bounded worker pool (see Prefetch);
// concurrent requests for the same (workload, scheme, variant) key are
// singleflight-deduplicated so each simulation runs exactly once per
// process, however many artifacts or goroutines ask for it.
type Runner struct {
	Opts  Options
	Out   io.Writer
	pool  *exec.Pool
	cache *exec.Cache[*sim.Result]
	outMu sync.Mutex // serializes progress lines from concurrent callers
}

// NewRunner builds a Runner writing human-readable reports to out, running
// up to GOMAXPROCS simulations concurrently.
func NewRunner(opts Options, out io.Writer) *Runner {
	return NewParallelRunner(opts, out, 0)
}

// NewParallelRunner bounds concurrent simulations to parallel workers
// (<= 0 selects runtime.GOMAXPROCS(0)). Report bytes are identical at any
// worker count: artifacts submit their full job set up front via Prefetch
// and then format exclusively from the cache in submission order.
func NewParallelRunner(opts Options, out io.Writer, parallel int) *Runner {
	pool := exec.NewPool(parallel)
	return &Runner{Opts: opts, Out: out, pool: pool, cache: exec.NewCache[*sim.Result](pool)}
}

// Parallelism reports the worker-pool size.
func (r *Runner) Parallelism() int { return r.pool.Size() }

// Pool exposes the runner's worker pool; its queue-wait and run-time
// histograms summarize how the simulation fan-out scheduled after a run
// (cmd/paperbench -poolstats).
func (r *Runner) Pool() *exec.Pool { return r.pool }

// Job names one simulation: the (workload, scheme, variant) cache key plus
// the config mutation the variant implies. Mutate may be nil.
type Job struct {
	Workload string
	Scheme   string
	Variant  string
	Mutate   func(*sim.Config)
}

func (j Job) key() string { return j.Workload + "|" + j.Scheme + "|" + j.Variant }

// jobsFor builds the cross product of workloads × schemes (no variants),
// in deterministic workload-major order.
func jobsFor(wls []string, schemes ...string) []Job {
	jobs := make([]Job, 0, len(wls)*len(schemes))
	for _, wl := range wls {
		for _, sch := range schemes {
			jobs = append(jobs, Job{Workload: wl, Scheme: sch})
		}
	}
	return jobs
}

// config builds the base simulation config for a workload/scheme pair.
func (r *Runner) config(wl, scheme string) sim.Config {
	cfg := sim.Default()
	cfg.Workload = wl
	cfg.Scheme = scheme
	cfg.Cores = r.Opts.Cores
	cfg.WarmupInstr = r.Opts.Warmup
	cfg.MeasureInstr = r.Opts.Measure
	cfg.Seed = r.Opts.Seed
	cfg.Shards = r.Opts.Shards
	cfg.EventDriven = r.Opts.EventDriven
	if r.Opts.L3MB > 0 {
		cfg.L3Bytes = r.Opts.L3MB << 20
	}
	return cfg
}

// run executes (or recalls) one job through the deduplicated cache. ran
// reports whether this call performed the simulation.
func (r *Runner) run(ctx context.Context, j Job) (res *sim.Result, ran bool, err error) {
	return r.cache.Do(ctx, j.key(), func() (*sim.Result, error) {
		cfg := r.config(j.Workload, j.Scheme)
		if j.Mutate != nil {
			j.Mutate(&cfg)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s/%s%s: %w", j.Workload, j.Scheme, j.Variant, err)
		}
		if res.Mem.IntegrityErrs > 0 {
			return nil, fmt.Errorf("%s/%s%s: %d integrity errors",
				j.Workload, j.Scheme, j.Variant, res.Mem.IntegrityErrs)
		}
		return res, nil
	})
}

// printRan emits one progress line (under the output lock: Result may be
// called from many goroutines).
func (r *Runner) printRan(res *sim.Result) {
	if r.Opts.Silent {
		return
	}
	r.outMu.Lock()
	fmt.Fprintf(r.Out, "    [ran] %v\n", res)
	r.outMu.Unlock()
}

// Result runs (or recalls) one simulation. variant distinguishes modified
// configs (e.g. channel sweeps); mutate may adjust the config before the
// run. Result is goroutine-safe and deduplicates concurrent calls for the
// same key.
func (r *Runner) Result(wl, scheme, variant string, mutate func(*sim.Config)) (*sim.Result, error) {
	res, ran, err := r.run(context.Background(), Job{wl, scheme, variant, mutate})
	if err != nil {
		return nil, err
	}
	if ran {
		r.printRan(res)
	}
	return res, nil
}

// Prefetch fans jobs out over the worker pool and blocks until every job
// has completed or one has failed (failure cancels jobs still waiting for
// a worker; running simulations finish and populate the cache). Duplicate
// keys collapse. Progress lines print in submission order after the batch
// settles — never in completion order — so the rendered bytes are
// identical whether the pool has 1 worker or 64. The returned error is
// the earliest-submitted failure among the jobs that ran; when several
// jobs fail close together, which of them reached a worker first (and is
// therefore reported) can vary with the worker count.
func (r *Runner) Prefetch(jobs ...Job) error {
	uniq := make([]Job, 0, len(jobs))
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if !seen[j.key()] {
			seen[j.key()] = true
			uniq = append(uniq, j)
		}
	}

	type outcome struct {
		res *sim.Result
		ran bool
		err error
	}
	outs := make([]outcome, len(uniq))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i, j := range uniq {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			res, ran, err := r.run(ctx, j)
			outs[i] = outcome{res, ran, err}
			if err != nil {
				cancel()
			}
		}(i, j)
	}
	wg.Wait()

	errs := make([]error, len(outs))
	for i, o := range outs {
		errs[i] = o.err
		if o.err == nil && o.ran {
			r.printRan(o.res)
		}
	}
	return exec.FirstError(errs)
}

// speedup returns the weighted speedup of scheme over the uncompressed
// baseline for one workload.
func (r *Runner) speedup(wl, scheme string) (float64, error) {
	base, err := r.Result(wl, sim.SchemeUncompressed, "", nil)
	if err != nil {
		return 0, err
	}
	res, err := r.Result(wl, scheme, "", nil)
	if err != nil {
		return 0, err
	}
	return res.WeightedSpeedupOver(base), nil
}

// geoMeanSpeedup averages a scheme's speedup over a workload list.
func (r *Runner) geoMeanSpeedup(wls []string, scheme string) (float64, error) {
	var vs []float64
	for _, wl := range wls {
		s, err := r.speedup(wl, scheme)
		if err != nil {
			return 0, err
		}
		vs = append(vs, s)
	}
	return stats.GeoMean(vs), nil
}

// header prints an experiment banner.
func (r *Runner) header(title string) {
	fmt.Fprintf(r.Out, "\n=== %s ===\n", title)
}

// bar renders an ASCII bar for a speedup value: "|" marks 1.0 (baseline);
// each cell is 2.5% of speedup. Values below 1.0 grow to the left.
func bar(v float64) string {
	const cell = 0.025
	n := int((v - 1.0) / cell)
	switch {
	case n >= 0:
		if n > 40 {
			n = 40
		}
		return "|" + strings.Repeat("#", n)
	default:
		if n < -20 {
			n = -20
		}
		return strings.Repeat("-", -n) + "|"
	}
}

// sortedCopy returns vs sorted ascending (Figure 17's S-curve).
func sortedCopy(vs []float64) []float64 {
	out := append([]float64(nil), vs...)
	sort.Float64s(out)
	return out
}

// lookupWorkload resolves a workload name (mixes resolve to a synthetic
// description labeled "mix").
func lookupWorkload(name string) (*workload.Workload, error) {
	if w, err := workload.Lookup(name); err == nil {
		return w, nil
	}
	if _, err := workload.LookupMix(name); err == nil {
		return &workload.Workload{Name: name, Suite: "mix"}, nil
	}
	return nil, fmt.Errorf("paper: unknown workload %q", name)
}
