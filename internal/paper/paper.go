// Package paper implements the reproduction of every table and figure in
// the evaluation of "Enabling Transparent Memory-Compression for Commodity
// Memory Systems" (HPCA 2019). Each experiment builds on the simulator in
// internal/sim and prints the same rows/series the paper reports; shapes
// (who wins, rough factors, crossovers) are the reproduction target, not
// absolute numbers — see EXPERIMENTS.md.
//
// The Runner caches simulation results by (workload, scheme, variant), so
// experiments that share runs (most share the uncompressed baseline) pay
// for them once per process.
package paper

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ptmc/internal/sim"
	"ptmc/internal/stats"
	"ptmc/internal/workload"
)

// Options scopes an experiment run.
type Options struct {
	Cores   int
	Warmup  int64
	Measure int64
	Seed    int64

	// Workload subsets (names). A nil slice selects the full paper set;
	// an empty non-nil slice selects none.
	Spec   []string // memory-intensive SPEC set (Figures 4-15)
	Graph  []string // GAP set
	Mixes  []string // multiprogrammed mixes
	All    []string // Figure 17 population (defaults to every workload+mix)
	L3MB   int      // LLC size in MB (Table I: 8)
	Silent bool     // suppress per-run progress lines
}

// Quick returns a laptop-scale option set: representative workloads and a
// short horizon. The shapes of every figure survive; error bars shrink with
// -insts in cmd/paperbench.
func Quick() Options {
	return Options{
		Cores:   8,
		Warmup:  700_000,
		Measure: 350_000,
		Seed:    1,
		Spec: []string{"libquantum06", "lbm06", "mcf06", "soplex06",
			"lbm17", "xz17"},
		Graph: []string{"pr-twitter", "bfs-web", "cc-sk"},
		Mixes: []string{"mix1", "mix3"},
		All: []string{"libquantum06", "lbm06", "mcf06", "soplex06", "sphinx306",
			"leela17", "xz17", "pr-twitter", "bfs-web", "mix1"},
		L3MB: 8,
	}
}

// Full returns the complete paper workload population (slow: intended for
// cmd/paperbench -full).
func Full() Options {
	o := Quick()
	o.Warmup = 1_000_000
	o.Measure = 1_000_000
	o.Spec = nil
	o.Graph = nil
	o.Mixes = nil
	o.All = nil
	return o
}

func (o *Options) spec() []string {
	if o.Spec != nil {
		return o.Spec
	}
	var out []string
	for _, w := range workload.HighMPKI() {
		out = append(out, w.Name)
	}
	return out
}

func (o *Options) graph() []string {
	if o.Graph != nil {
		return o.Graph
	}
	var out []string
	for _, w := range workload.Graph() {
		out = append(out, w.Name)
	}
	return out
}

func (o *Options) mixes() []string {
	if o.Mixes != nil {
		return o.Mixes
	}
	var out []string
	for _, m := range workload.Mixes() {
		out = append(out, m.Name)
	}
	return out
}

func (o *Options) all() []string {
	if o.All != nil {
		return o.All
	}
	return workload.Names()
}

// Runner executes experiments against a result cache.
type Runner struct {
	Opts  Options
	Out   io.Writer
	cache map[string]*sim.Result
}

// NewRunner builds a Runner writing human-readable reports to out.
func NewRunner(opts Options, out io.Writer) *Runner {
	return &Runner{Opts: opts, Out: out, cache: make(map[string]*sim.Result)}
}

// config builds the base simulation config for a workload/scheme pair.
func (r *Runner) config(wl, scheme string) sim.Config {
	cfg := sim.Default()
	cfg.Workload = wl
	cfg.Scheme = scheme
	cfg.Cores = r.Opts.Cores
	cfg.WarmupInstr = r.Opts.Warmup
	cfg.MeasureInstr = r.Opts.Measure
	cfg.Seed = r.Opts.Seed
	if r.Opts.L3MB > 0 {
		cfg.L3Bytes = r.Opts.L3MB << 20
	}
	return cfg
}

// Result runs (or recalls) one simulation. variant distinguishes modified
// configs (e.g. channel sweeps); mutate may adjust the config before the
// run.
func (r *Runner) Result(wl, scheme, variant string, mutate func(*sim.Config)) (*sim.Result, error) {
	key := wl + "|" + scheme + "|" + variant
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	cfg := r.config(wl, scheme)
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s/%s%s: %w", wl, scheme, variant, err)
	}
	if res.Mem.IntegrityErrs > 0 {
		return nil, fmt.Errorf("%s/%s%s: %d integrity errors", wl, scheme, variant, res.Mem.IntegrityErrs)
	}
	if !r.Opts.Silent {
		fmt.Fprintf(r.Out, "    [ran] %v\n", res)
	}
	r.cache[key] = res
	return res, nil
}

// speedup returns the weighted speedup of scheme over the uncompressed
// baseline for one workload.
func (r *Runner) speedup(wl, scheme string) (float64, error) {
	base, err := r.Result(wl, sim.SchemeUncompressed, "", nil)
	if err != nil {
		return 0, err
	}
	res, err := r.Result(wl, scheme, "", nil)
	if err != nil {
		return 0, err
	}
	return res.WeightedSpeedupOver(base), nil
}

// geoMeanSpeedup averages a scheme's speedup over a workload list.
func (r *Runner) geoMeanSpeedup(wls []string, scheme string) (float64, error) {
	var vs []float64
	for _, wl := range wls {
		s, err := r.speedup(wl, scheme)
		if err != nil {
			return 0, err
		}
		vs = append(vs, s)
	}
	return stats.GeoMean(vs), nil
}

// header prints an experiment banner.
func (r *Runner) header(title string) {
	fmt.Fprintf(r.Out, "\n=== %s ===\n", title)
}

// bar renders an ASCII bar for a speedup value: "|" marks 1.0 (baseline);
// each cell is 2.5% of speedup. Values below 1.0 grow to the left.
func bar(v float64) string {
	const cell = 0.025
	n := int((v - 1.0) / cell)
	switch {
	case n >= 0:
		if n > 40 {
			n = 40
		}
		return "|" + strings.Repeat("#", n)
	default:
		if n < -20 {
			n = -20
		}
		return strings.Repeat("-", -n) + "|"
	}
}

// sortedCopy returns vs sorted ascending (Figure 17's S-curve).
func sortedCopy(vs []float64) []float64 {
	out := append([]float64(nil), vs...)
	sort.Float64s(out)
	return out
}

// lookupWorkload resolves a workload name (mixes resolve to a synthetic
// description labeled "mix").
func lookupWorkload(name string) (*workload.Workload, error) {
	if w, err := workload.Lookup(name); err == nil {
		return w, nil
	}
	if _, err := workload.LookupMix(name); err == nil {
		return &workload.Workload{Name: name, Suite: "mix"}, nil
	}
	return nil, fmt.Errorf("paper: unknown workload %q", name)
}
