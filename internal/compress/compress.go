// Package compress implements the per-line compression algorithms used by
// PTMC: Frequent-Pattern Compression (FPC), Base-Delta-Immediate (BDI), and
// the FPC+BDI hybrid the paper evaluates (compress with both, keep the
// smaller encoding).
//
// All encodings produced by this package are self-delimiting: the first byte
// identifies the algorithm/mode, and a decoder can recover both the original
// 64-byte line and the number of encoded bytes consumed. This property is
// what lets PTMC concatenate 2 or 4 compressed lines into a single 64-byte
// memory location without any per-line length metadata.
//
// Reported sizes are honest: they include the header byte and any
// algorithm-specific metadata (BDI base, FPC prefix bits), matching the
// paper's methodology ("information about the compression algorithm used and
// the compression-specific metadata ... are counted towards determining the
// size of the compressed line").
package compress

import (
	"errors"
	"fmt"
)

// LineSize is the cache-line size in bytes. The whole design is built
// around 64-byte lines (paper §I: "retaining support for 64-byte linesize").
const LineSize = 64

// Header bytes identifying the encoding of a compressed stream.
const (
	hdrFPC  = 0x00 // FPC bitstream follows
	hdrBDI  = 0x10 // hdrBDI | mode: BDI payload follows
	hdrRaw  = 0xFF // 64 raw bytes follow (incompressible)
	bdiMask = 0x0F
)

// Errors returned by decoders.
var (
	ErrTruncated = errors.New("compress: truncated stream")
	ErrBadHeader = errors.New("compress: unknown encoding header")
	ErrBadLine   = errors.New("compress: line must be 64 bytes")
)

// Algorithm is a per-line compressor. Implementations must round-trip any
// 64-byte input and report honest encoded sizes.
type Algorithm interface {
	// Name identifies the algorithm ("fpc", "bdi", "hybrid").
	Name() string
	// Compress encodes a 64-byte line. The result is self-delimiting and
	// may be longer than LineSize for incompressible data (the caller
	// compares len(enc) against its budget).
	Compress(line []byte) []byte
	// Decompress decodes one line from the front of enc, returning the
	// 64-byte line and the number of bytes consumed.
	Decompress(enc []byte) (line []byte, consumed int, err error)
}

// CompressedSize returns the encoded size in bytes of line under alg.
func CompressedSize(alg Algorithm, line []byte) int {
	return len(alg.Compress(line))
}

// rawEncode wraps an incompressible line: 1 header byte + 64 raw bytes.
func rawEncode(line []byte) []byte {
	out := make([]byte, 1+LineSize)
	out[0] = hdrRaw
	copy(out[1:], line)
	return out
}

func rawDecode(enc []byte) ([]byte, int, error) {
	if len(enc) < 1+LineSize {
		return nil, 0, ErrTruncated
	}
	line := make([]byte, LineSize)
	copy(line, enc[1:1+LineSize])
	return line, 1 + LineSize, nil
}

func checkLine(line []byte) error {
	if len(line) != LineSize {
		return fmt.Errorf("%w (got %d)", ErrBadLine, len(line))
	}
	return nil
}
