// Package compress implements the per-line compression algorithms used by
// PTMC: Frequent-Pattern Compression (FPC), Base-Delta-Immediate (BDI), and
// the FPC+BDI hybrid the paper evaluates (compress with both, keep the
// smaller encoding).
//
// All encodings produced by this package are self-delimiting: the first byte
// identifies the algorithm/mode, and a decoder can recover both the original
// 64-byte line and the number of encoded bytes consumed. This property is
// what lets PTMC concatenate 2 or 4 compressed lines into a single 64-byte
// memory location without any per-line length metadata.
//
// Reported sizes are honest: they include the header byte and any
// algorithm-specific metadata (BDI base, FPC prefix bits), matching the
// paper's methodology ("information about the compression algorithm used and
// the compression-specific metadata ... are counted towards determining the
// size of the compressed line").
package compress

import (
	"errors"
	"fmt"
)

// LineSize is the cache-line size in bytes. The whole design is built
// around 64-byte lines (paper §I: "retaining support for 64-byte linesize").
const LineSize = 64

// Header bytes identifying the encoding of a compressed stream.
const (
	hdrFPC  = 0x00 // FPC bitstream follows
	hdrBDI  = 0x10 // hdrBDI | mode: BDI payload follows
	hdrRaw  = 0xFF // 64 raw bytes follow (incompressible)
	bdiMask = 0x0F
)

// Errors returned by decoders.
var (
	ErrTruncated = errors.New("compress: truncated stream")
	ErrBadHeader = errors.New("compress: unknown encoding header")
	ErrBadLine   = errors.New("compress: line must be 64 bytes")
)

// Algorithm is a per-line compressor. Implementations must round-trip any
// 64-byte input and report honest encoded sizes.
//
// The Append/Into forms are the allocation-free hot path used by the
// memory-controller writeback and fill loops: AppendCompress writes into
// caller-provided capacity and DecompressInto decodes into a
// caller-provided 64-byte buffer, so steady-state (de)compression does no
// heap allocation. Compress and Decompress are thin allocating wrappers
// kept for convenience and for offline analyses.
type Algorithm interface {
	// Name identifies the algorithm ("fpc", "bdi", "hybrid").
	Name() string
	// Compress encodes a 64-byte line. The result is self-delimiting and
	// may be longer than LineSize for incompressible data (the caller
	// compares len(enc) against its budget).
	Compress(line []byte) []byte
	// Decompress decodes one line from the front of enc, returning the
	// 64-byte line and the number of bytes consumed.
	Decompress(enc []byte) (line []byte, consumed int, err error)
	// AppendCompress appends the encoding of line to dst and returns the
	// extended slice. It allocates only when dst lacks capacity.
	AppendCompress(dst, line []byte) []byte
	// DecompressInto decodes one line from the front of enc into dst,
	// which must be LineSize bytes, returning the bytes consumed.
	DecompressInto(dst, enc []byte) (consumed int, err error)
}

// CompressedSize returns the encoded size in bytes of line under alg.
func CompressedSize(alg Algorithm, line []byte) int {
	return len(alg.Compress(line))
}

// rawEncode wraps an incompressible line: 1 header byte + 64 raw bytes.
func rawEncode(line []byte) []byte {
	return rawAppend(make([]byte, 0, 1+LineSize), line)
}

// rawAppend is the allocation-free form of rawEncode.
func rawAppend(dst, line []byte) []byte {
	dst = append(dst, hdrRaw)
	return append(dst, line...)
}

func rawDecode(enc []byte) ([]byte, int, error) {
	line := make([]byte, LineSize)
	n, err := rawDecodeInto(line, enc)
	if err != nil {
		return nil, 0, err
	}
	return line, n, nil
}

// rawDecodeInto copies the 64 raw bytes following the header into dst.
func rawDecodeInto(dst, enc []byte) (int, error) {
	if len(enc) < 1+LineSize {
		return 0, ErrTruncated
	}
	copy(dst, enc[1:1+LineSize])
	return 1 + LineSize, nil
}

func checkDst(dst []byte) error {
	if len(dst) != LineSize {
		return fmt.Errorf("%w (DecompressInto dst is %d bytes)", ErrBadLine, len(dst))
	}
	return nil
}

func checkLine(line []byte) error {
	if len(line) != LineSize {
		return fmt.Errorf("%w (got %d)", ErrBadLine, len(line))
	}
	return nil
}
