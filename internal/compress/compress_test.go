package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

var algorithms = []Algorithm{FPC{}, BDI{}, Hybrid{}}

// roundTrip compresses and decompresses a line, checking identity and that
// the decoder consumed exactly the encoded length.
func roundTrip(t *testing.T, alg Algorithm, line []byte) {
	t.Helper()
	enc := alg.Compress(line)
	dec, consumed, err := alg.Decompress(enc)
	if err != nil {
		t.Fatalf("%s: decompress: %v", alg.Name(), err)
	}
	if consumed != len(enc) {
		t.Fatalf("%s: consumed %d, encoded %d", alg.Name(), consumed, len(enc))
	}
	if !bytes.Equal(dec, line) {
		t.Fatalf("%s: round trip mismatch\n in: %x\nout: %x", alg.Name(), line, dec)
	}
}

func TestRoundTripZeros(t *testing.T) {
	line := make([]byte, LineSize)
	for _, alg := range algorithms {
		roundTrip(t, alg, line)
	}
}

func TestZeroLineSizes(t *testing.T) {
	line := make([]byte, LineSize)
	if n := len((BDI{}).Compress(line)); n != 1 {
		t.Errorf("BDI zero line = %d bytes, want 1", n)
	}
	// FPC: two zero runs of 8 words = 2*(3+3) bits = 12 bits -> 2 bytes + header.
	if n := len((FPC{}).Compress(line)); n != 3 {
		t.Errorf("FPC zero line = %d bytes, want 3", n)
	}
	if n := len((Hybrid{}).Compress(line)); n != 1 {
		t.Errorf("Hybrid zero line = %d bytes, want 1 (BDI wins)", n)
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		line := make([]byte, LineSize)
		rng.Read(line)
		for _, alg := range algorithms {
			roundTrip(t, alg, line)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	for _, alg := range algorithms {
		alg := alg
		f := func(a [LineSize]byte) bool {
			enc := alg.Compress(a[:])
			dec, consumed, err := alg.Decompress(enc)
			return err == nil && consumed == len(enc) && bytes.Equal(dec, a[:])
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}

// TestRoundTripStructured exercises the value shapes the workload
// generators emit (the shapes FPC/BDI were designed for).
func TestRoundTripStructured(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gens := map[string]func() []byte{
		"small-ints": func() []byte {
			line := make([]byte, LineSize)
			for i := 0; i < 16; i++ {
				binary.LittleEndian.PutUint32(line[i*4:], uint32(rng.Intn(256))-128)
			}
			return line
		},
		"pointers": func() []byte {
			line := make([]byte, LineSize)
			base := uint64(0x7F5A_0000_0000) | uint64(rng.Intn(1<<20))<<12
			for i := 0; i < 8; i++ {
				binary.LittleEndian.PutUint64(line[i*8:], base+uint64(rng.Intn(4096)))
			}
			return line
		},
		"base-delta16": func() []byte {
			line := make([]byte, LineSize)
			base := rng.Uint64()
			for i := 0; i < 8; i++ {
				binary.LittleEndian.PutUint64(line[i*8:], base+uint64(rng.Intn(65536))-32768)
			}
			return line
		},
		"sparse-zero": func() []byte {
			line := make([]byte, LineSize)
			for i := 0; i < 4; i++ {
				line[rng.Intn(LineSize)] = byte(rng.Intn(256))
			}
			return line
		},
		"float-ish": func() []byte {
			line := make([]byte, LineSize)
			for i := 0; i < 8; i++ {
				binary.LittleEndian.PutUint64(line[i*8:], rng.Uint64()|0x3FF0_0000_0000_0000)
			}
			return line
		},
	}
	for name, gen := range gens {
		for i := 0; i < 200; i++ {
			line := gen()
			for _, alg := range algorithms {
				roundTrip(t, alg, line)
			}
			_ = name
		}
	}
}

func TestFPCPatterns(t *testing.T) {
	cases := []struct {
		name  string
		words [16]uint32
		// maxBytes is an upper bound on the encoding (header included).
		maxBytes int
	}{
		{"all-zero", [16]uint32{}, 3},
		{"sign4", fill16(0xFFFFFFF9), 1 + (16*7+7)/8},   // -7 each: 7 bits/word
		{"sign8", fill16(0xFFFFFF85), 1 + (16*11+7)/8},  // -123
		{"sign16", fill16(0x00001234), 1 + (16*19+7)/8}, // 0x1234
		{"highpad", fill16(0xABCD0000), 1 + (16*19+7)/8},
		{"twohalf", fill16(0xFF80007F), 1 + (16*19+7)/8},
		{"repbyte", fill16(0xABABABAB), 1 + (16*11+7)/8},
		{"uncomp", fill16(0xDEADBEEF), 1 + (16*35+7)/8},
	}
	for _, tc := range cases {
		line := make([]byte, LineSize)
		for i, w := range tc.words {
			binary.LittleEndian.PutUint32(line[i*4:], w)
		}
		enc := (FPC{}).Compress(line)
		if len(enc) > tc.maxBytes {
			t.Errorf("%s: encoded %d bytes, want <= %d", tc.name, len(enc), tc.maxBytes)
		}
		roundTrip(t, FPC{}, line)
	}
}

func fill16(v uint32) (a [16]uint32) {
	for i := range a {
		a[i] = v
	}
	return
}

func TestBDIModes(t *testing.T) {
	line := make([]byte, LineSize)
	// Repeated 8-byte value.
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], 0xDEADBEEF_CAFEF00D)
	}
	enc := (BDI{}).Compress(line)
	if len(enc) != 9 {
		t.Errorf("rep8: %d bytes, want 9", len(enc))
	}
	roundTrip(t, BDI{}, line)

	// Base-8 delta-1: large base, tiny deltas.
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], 0x1122334455667788+uint64(i))
	}
	enc = (BDI{}).Compress(line)
	if want := bdiEncodedLen(bdiB8D1); len(enc) != want {
		t.Errorf("b8d1: %d bytes, want %d", len(enc), want)
	}
	roundTrip(t, BDI{}, line)

	// Mixed zero-base and big-base (immediate path).
	for i := 0; i < 8; i++ {
		v := uint64(0x7F00_0000_1000_0000) + uint64(i*8)
		if i%2 == 0 {
			v = uint64(i) // near zero -> immediate
		}
		binary.LittleEndian.PutUint64(line[i*8:], v)
	}
	roundTrip(t, BDI{}, line)
	enc = (BDI{}).Compress(line)
	if len(enc) > LineSize {
		t.Errorf("mixed immediate: %d bytes, want <= 64", len(enc))
	}
}

func TestBDINegativeDeltas(t *testing.T) {
	line := make([]byte, LineSize)
	base := uint64(0x8000_0000_0000_0000)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], base-uint64(i*3))
	}
	roundTrip(t, BDI{}, line)
}

func TestHybridPicksSmaller(t *testing.T) {
	// A line of tiny 4-byte ints: FPC should beat BDI's b4d1 (22 bytes).
	line := make([]byte, LineSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], uint32(i%3))
	}
	f := len((FPC{}).Compress(line))
	b := len((BDI{}).Compress(line))
	h := len((Hybrid{}).Compress(line))
	if h != min(f, b) {
		t.Errorf("hybrid=%d, fpc=%d, bdi=%d: hybrid should match min", h, f, b)
	}
}

func TestIncompressibleFallsBackToRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	line := make([]byte, LineSize)
	rng.Read(line)
	enc := (Hybrid{}).Compress(line)
	if len(enc) != 1+LineSize {
		t.Errorf("random line: %d bytes, want %d (raw)", len(enc), 1+LineSize)
	}
	roundTrip(t, Hybrid{}, line)
}

func TestDecompressErrors(t *testing.T) {
	for _, alg := range algorithms {
		if _, _, err := alg.Decompress(nil); err == nil {
			t.Errorf("%s: nil input should error", alg.Name())
		}
		if _, _, err := alg.Decompress([]byte{0xEE}); err == nil {
			t.Errorf("%s: bad header should error", alg.Name())
		}
	}
	// Truncated raw stream.
	if _, _, err := (Hybrid{}).Decompress([]byte{0xFF, 1, 2}); err == nil {
		t.Error("truncated raw should error")
	}
	// Truncated BDI rep8.
	if _, _, err := (BDI{}).Decompress([]byte{hdrBDI | bdiRep8, 1}); err == nil {
		t.Error("truncated rep8 should error")
	}
	// Truncated FPC stream.
	zeros := make([]byte, LineSize)
	enc := (FPC{}).Compress(zeros)
	if _, _, err := (FPC{}).Decompress(enc[:1]); err == nil {
		t.Error("truncated FPC should error")
	}
}

func TestCompressGroup(t *testing.T) {
	alg := Hybrid{}
	mk := func(seed int64) []byte {
		line := make([]byte, LineSize)
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], uint32(seed))
		}
		return line
	}
	lines := [][]byte{mk(1), mk(2), mk(3), mk(4)}
	blob, ok := CompressGroup(alg, lines, 60)
	if !ok {
		t.Fatal("four compressible lines should fit in 60 bytes")
	}
	got, err := DecompressGroup(alg, blob, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lines {
		if !bytes.Equal(got[i], lines[i]) {
			t.Errorf("line %d mismatch", i)
		}
	}

	// Incompressible pair must not fit.
	rng := rand.New(rand.NewSource(5))
	r1 := make([]byte, LineSize)
	r2 := make([]byte, LineSize)
	rng.Read(r1)
	rng.Read(r2)
	if _, ok := CompressGroup(alg, [][]byte{r1, r2}, 60); ok {
		t.Error("two random lines should not fit in 60 bytes")
	}
}

func TestCompressedSizeHelper(t *testing.T) {
	line := make([]byte, LineSize)
	if got := CompressedSize(Hybrid{}, line); got != 1 {
		t.Errorf("CompressedSize zero line = %d, want 1", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
