package compress

import "encoding/binary"

// FPC implements Frequent-Pattern Compression (Alameldeen & Wood): each
// 32-bit word of the line is encoded with a 3-bit prefix selecting one of
// eight patterns. Zero words additionally run-length encode (up to 8 zeros
// per prefix).
//
// Prefix table (payload bits in parentheses):
//
//	000 zero run, run length 1-8 (3)
//	001 4-bit sign-extended (4)
//	010 8-bit sign-extended (8)
//	011 16-bit sign-extended (16)
//	100 16-bit padded with zeros: low half zero (16)
//	101 two halfwords, each a sign-extended byte (16)
//	110 word of four repeated bytes (8)
//	111 uncompressed word (32)
type FPC struct{}

// Name implements Algorithm.
func (FPC) Name() string { return "fpc" }

const (
	fpcZeroRun  = 0
	fpcSign4    = 1
	fpcSign8    = 2
	fpcSign16   = 3
	fpcHighPad  = 4
	fpcTwoHalf  = 5
	fpcRepByte  = 6
	fpcUncomp   = 7
	fpcNumWords = LineSize / 4
)

// Compress implements Algorithm. The result is hdrFPC followed by the FPC
// bitstream; if the bitstream would not fit a 64-byte budget the caller
// simply observes len > 64 and falls back (the hybrid does this).
func (f FPC) Compress(line []byte) []byte {
	return f.AppendCompress(nil, line)
}

// AppendCompress implements Algorithm, encoding into dst's spare capacity.
func (f FPC) AppendCompress(dst, line []byte) []byte {
	if err := checkLine(line); err != nil {
		panic(err)
	}
	w := bitWriter{buf: append(dst, hdrFPC)}
	i := 0
	for i < fpcNumWords {
		v := binary.LittleEndian.Uint32(line[i*4:])
		if v == 0 {
			run := 1
			for i+run < fpcNumWords && run < 8 &&
				binary.LittleEndian.Uint32(line[(i+run)*4:]) == 0 {
				run++
			}
			w.writeBits(fpcZeroRun, 3)
			w.writeBits(uint32(run-1), 3)
			i += run
			continue
		}
		switch {
		case fitsSigned(v, 4):
			w.writeBits(fpcSign4, 3)
			w.writeBits(v&0xF, 4)
		case fitsSigned(v, 8):
			w.writeBits(fpcSign8, 3)
			w.writeBits(v&0xFF, 8)
		case fitsSigned(v, 16):
			w.writeBits(fpcSign16, 3)
			w.writeBits(v&0xFFFF, 16)
		case v&0xFFFF == 0:
			w.writeBits(fpcHighPad, 3)
			w.writeBits(v>>16, 16)
		case isTwoHalfwords(v):
			w.writeBits(fpcTwoHalf, 3)
			w.writeBits((v>>16&0xFF)<<8|v&0xFF, 16)
		case isRepeatedBytes(v):
			w.writeBits(fpcRepByte, 3)
			w.writeBits(v&0xFF, 8)
		default:
			w.writeBits(fpcUncomp, 3)
			w.writeBits(v, 32)
		}
		i++
	}
	return w.bytes()
}

// Decompress implements Algorithm.
func (f FPC) Decompress(enc []byte) ([]byte, int, error) {
	line := make([]byte, LineSize)
	n, err := f.DecompressInto(line, enc)
	if err != nil {
		return nil, 0, err
	}
	return line, n, nil
}

// DecompressInto implements Algorithm, decoding into the 64-byte dst.
func (f FPC) DecompressInto(dst, enc []byte) (int, error) {
	if err := checkDst(dst); err != nil {
		return 0, err
	}
	if len(enc) == 0 {
		return 0, ErrTruncated
	}
	if enc[0] == hdrRaw {
		return rawDecodeInto(dst, enc)
	}
	if enc[0] != hdrFPC {
		return 0, ErrBadHeader
	}
	clear(dst) // zero-run prefixes skip their words
	r := bitReader{buf: enc[1:]}
	i := 0
	for i < fpcNumWords {
		prefix, ok := r.readBits(3)
		if !ok {
			return 0, ErrTruncated
		}
		var v uint32
		switch prefix {
		case fpcZeroRun:
			runM1, ok := r.readBits(3)
			if !ok {
				return 0, ErrTruncated
			}
			run := int(runM1) + 1
			if i+run > fpcNumWords {
				return 0, ErrTruncated
			}
			i += run // words already zero
			continue
		case fpcSign4:
			p, ok := r.readBits(4)
			if !ok {
				return 0, ErrTruncated
			}
			v = signExtend(p, 4)
		case fpcSign8:
			p, ok := r.readBits(8)
			if !ok {
				return 0, ErrTruncated
			}
			v = signExtend(p, 8)
		case fpcSign16:
			p, ok := r.readBits(16)
			if !ok {
				return 0, ErrTruncated
			}
			v = signExtend(p, 16)
		case fpcHighPad:
			p, ok := r.readBits(16)
			if !ok {
				return 0, ErrTruncated
			}
			v = p << 16
		case fpcTwoHalf:
			p, ok := r.readBits(16)
			if !ok {
				return 0, ErrTruncated
			}
			hi := signExtend(p>>8, 8)
			lo := signExtend(p&0xFF, 8)
			v = hi<<16 | lo&0xFFFF
		case fpcRepByte:
			p, ok := r.readBits(8)
			if !ok {
				return 0, ErrTruncated
			}
			v = p | p<<8 | p<<16 | p<<24
		case fpcUncomp:
			p, ok := r.readBits(32)
			if !ok {
				return 0, ErrTruncated
			}
			v = p
		}
		binary.LittleEndian.PutUint32(dst[i*4:], v)
		i++
	}
	return 1 + r.bytesConsumed(), nil
}

// isTwoHalfwords reports whether each 16-bit half of v sign-extends from a
// byte (pattern 101).
func isTwoHalfwords(v uint32) bool {
	return halfFromByte(v>>16) && halfFromByte(v&0xFFFF)
}

// halfFromByte reports whether the 16-bit value h equals the sign extension
// of its own low byte (e.g. 0xFF80 extends from 0x80, 0x007F from 0x7F).
func halfFromByte(h uint32) bool {
	return h == signExtend(h&0xFF, 8)&0xFFFF
}

// isRepeatedBytes reports whether v consists of one byte repeated 4 times.
func isRepeatedBytes(v uint32) bool {
	b := v & 0xFF
	return v == b|b<<8|b<<16|b<<24
}
