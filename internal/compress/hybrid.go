package compress

// Hybrid is the FPC+BDI compressor used by the paper ("we use a hybrid of
// FPC and BDI algorithms and compress with the one that gives better
// compression"). The 1-byte header of each encoding identifies which
// algorithm produced it, so decompression needs no side information.
type Hybrid struct {
	fpc FPC
	bdi BDI
}

// Name implements Algorithm.
func (Hybrid) Name() string { return "hybrid" }

// Compress implements Algorithm: both algorithms run and the smaller
// encoding wins; incompressible lines fall back to the 65-byte raw form.
func (h Hybrid) Compress(line []byte) []byte {
	f := h.fpc.Compress(line)
	b := h.bdi.Compress(line)
	best := f
	if len(b) < len(best) {
		best = b
	}
	if len(best) > 1+LineSize {
		return rawEncode(line)
	}
	return best
}

// Decompress implements Algorithm, dispatching on the header byte.
func (h Hybrid) Decompress(enc []byte) ([]byte, int, error) {
	if len(enc) == 0 {
		return nil, 0, ErrTruncated
	}
	switch {
	case enc[0] == hdrRaw:
		return rawDecode(enc)
	case enc[0] == hdrFPC:
		return h.fpc.Decompress(enc)
	case enc[0]&0xF0 == hdrBDI:
		return h.bdi.Decompress(enc)
	default:
		return nil, 0, ErrBadHeader
	}
}

// CompressGroup concatenates the hybrid encodings of 2 or 4 adjacent lines
// and reports whether they fit within budget bytes (PTMC uses a 60-byte
// budget: 64 minus the 4-byte marker). On success the returned blob is the
// concatenation of self-delimiting per-line encodings, in order.
func CompressGroup(alg Algorithm, lines [][]byte, budget int) ([]byte, bool) {
	var blob []byte
	for _, l := range lines {
		enc := alg.Compress(l)
		blob = append(blob, enc...)
		if len(blob) > budget {
			return nil, false
		}
	}
	return blob, true
}

// DecompressGroup decodes n concatenated per-line encodings from blob.
func DecompressGroup(alg Algorithm, blob []byte, n int) ([][]byte, error) {
	lines := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		line, consumed, err := alg.Decompress(blob)
		if err != nil {
			return nil, err
		}
		lines = append(lines, line)
		blob = blob[consumed:]
	}
	return lines, nil
}
