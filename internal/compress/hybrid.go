package compress

// Hybrid is the FPC+BDI compressor used by the paper ("we use a hybrid of
// FPC and BDI algorithms and compress with the one that gives better
// compression"). The 1-byte header of each encoding identifies which
// algorithm produced it, so decompression needs no side information.
type Hybrid struct {
	fpc FPC
	bdi BDI
}

// Name implements Algorithm.
func (Hybrid) Name() string { return "hybrid" }

// Compress implements Algorithm: both algorithms run and the smaller
// encoding wins; incompressible lines fall back to the 65-byte raw form.
func (h Hybrid) Compress(line []byte) []byte {
	return h.AppendCompress(nil, line)
}

// AppendCompress implements Algorithm. Both candidate encodings are
// written into dst's spare capacity back to back, then the loser is
// discarded in place, so picking the winner costs no allocation.
func (h Hybrid) AppendCompress(dst, line []byte) []byte {
	start := len(dst)
	dst = h.fpc.AppendCompress(dst, line)
	fpcEnd := len(dst)
	dst = h.bdi.AppendCompress(dst, line)
	if bdiLen := len(dst) - fpcEnd; bdiLen < fpcEnd-start {
		copy(dst[start:], dst[fpcEnd:])
		dst = dst[:start+bdiLen]
	} else {
		dst = dst[:fpcEnd]
	}
	if len(dst)-start > 1+LineSize {
		return rawAppend(dst[:start], line)
	}
	return dst
}

// Decompress implements Algorithm, dispatching on the header byte.
func (h Hybrid) Decompress(enc []byte) ([]byte, int, error) {
	line := make([]byte, LineSize)
	n, err := h.DecompressInto(line, enc)
	if err != nil {
		return nil, 0, err
	}
	return line, n, nil
}

// DecompressInto implements Algorithm, dispatching on the header byte.
func (h Hybrid) DecompressInto(dst, enc []byte) (int, error) {
	if err := checkDst(dst); err != nil {
		return 0, err
	}
	if len(enc) == 0 {
		return 0, ErrTruncated
	}
	switch {
	case enc[0] == hdrRaw:
		return rawDecodeInto(dst, enc)
	case enc[0] == hdrFPC:
		return h.fpc.DecompressInto(dst, enc)
	case enc[0]&0xF0 == hdrBDI:
		return h.bdi.DecompressInto(dst, enc)
	default:
		return 0, ErrBadHeader
	}
}

// CompressGroup concatenates the hybrid encodings of 2 or 4 adjacent lines
// and reports whether they fit within budget bytes (PTMC uses a 60-byte
// budget: 64 minus the 4-byte marker). On success the returned blob is the
// concatenation of self-delimiting per-line encodings, in order.
func CompressGroup(alg Algorithm, lines [][]byte, budget int) ([]byte, bool) {
	return AppendCompressGroup(alg, nil, lines, budget)
}

// AppendCompressGroup is the allocation-free form of CompressGroup: the
// blob is appended to dst's spare capacity and returned as the extension
// of dst. When the group does not fit the budget, dst is rolled back to
// its original length and returned with ok=false.
func AppendCompressGroup(alg Algorithm, dst []byte, lines [][]byte, budget int) ([]byte, bool) {
	start := len(dst)
	for _, l := range lines {
		dst = alg.AppendCompress(dst, l)
		if len(dst)-start > budget {
			return dst[:start], false
		}
	}
	return dst, true
}

// DecompressGroup decodes n concatenated per-line encodings from blob.
func DecompressGroup(alg Algorithm, blob []byte, n int) ([][]byte, error) {
	lines := make([][]byte, n)
	for i := range lines {
		lines[i] = make([]byte, LineSize)
	}
	if err := DecompressGroupInto(alg, lines, blob, n); err != nil {
		return nil, err
	}
	return lines, nil
}

// DecompressGroupInto decodes n concatenated per-line encodings from blob
// into the caller-provided 64-byte buffers dst[0..n-1].
func DecompressGroupInto(alg Algorithm, dst [][]byte, blob []byte, n int) error {
	for i := 0; i < n; i++ {
		consumed, err := alg.DecompressInto(dst[i], blob)
		if err != nil {
			return err
		}
		blob = blob[consumed:]
	}
	return nil
}
