package compress

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%60) + 1
		vals := make([]uint32, count)
		widths := make([]uint, count)
		var w bitWriter
		for i := range vals {
			widths[i] = uint(rng.Intn(32)) + 1
			vals[i] = rng.Uint32() & uint32(uint64(1)<<widths[i]-1)
			w.writeBits(vals[i], widths[i])
		}
		r := bitReader{buf: w.bytes()}
		for i := range vals {
			got, ok := r.readBits(widths[i])
			if !ok || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitWriterExactBitCount(t *testing.T) {
	var w bitWriter
	w.writeBits(0x5, 3)
	w.writeBits(0x1FF, 9)
	if w.bits() != 12 {
		t.Errorf("bits = %d, want 12", w.bits())
	}
	if got := len(w.bytes()); got != 2 {
		t.Errorf("bytes = %d, want 2 (12 bits rounds to 2)", got)
	}
}

func TestBitWriterMSBFirstLayout(t *testing.T) {
	var w bitWriter
	w.writeBits(0b101, 3)
	w.writeBits(0b00001, 5)
	b := w.bytes()
	if b[0] != 0b10100001 {
		t.Errorf("packed byte = %08b, want 10100001", b[0])
	}
}

func TestBitReaderUnderflow(t *testing.T) {
	r := bitReader{buf: []byte{0xFF}}
	if _, ok := r.readBits(8); !ok {
		t.Fatal("8 bits should be available")
	}
	if _, ok := r.readBits(1); ok {
		t.Error("9th bit should underflow")
	}
}

func TestBitReader32BitValues(t *testing.T) {
	var w bitWriter
	w.writeBits(0xDEADBEEF, 32)
	w.writeBits(0xFFFFFFFF, 32)
	r := bitReader{buf: w.bytes()}
	if v, ok := r.readBits(32); !ok || v != 0xDEADBEEF {
		t.Errorf("read %08x", v)
	}
	if v, ok := r.readBits(32); !ok || v != 0xFFFFFFFF {
		t.Errorf("read %08x", v)
	}
	if r.bytesConsumed() != 8 {
		t.Errorf("consumed %d bytes, want 8", r.bytesConsumed())
	}
}

func TestSignExtendAndFits(t *testing.T) {
	cases := []struct {
		v    uint32
		n    uint
		want uint32
		fits bool
	}{
		{0x7, 4, 0x7, true},
		{0x8, 4, 0xFFFFFFF8, false}, // 0x8 as 4-bit = -8 != +8
		{0xFFFFFFF8, 4, 0xFFFFFFF8, true},
		{0xFF, 8, 0xFFFFFFFF, false},
		{0xFFFFFFFF, 8, 0xFFFFFFFF, true},
		{0x7FFF, 16, 0x7FFF, true},
	}
	for _, tc := range cases {
		if got := signExtend(tc.v&(1<<tc.n-1), tc.n); got != tc.want {
			t.Errorf("signExtend(%#x, %d) = %#x, want %#x", tc.v, tc.n, got, tc.want)
		}
		if got := fitsSigned(tc.v, tc.n); got != tc.fits {
			t.Errorf("fitsSigned(%#x, %d) = %v, want %v", tc.v, tc.n, got, tc.fits)
		}
	}
}

// TestFPCWordTable decodes each FPC pattern class individually.
func TestFPCWordTable(t *testing.T) {
	words := map[string]uint32{
		"zero":         0x00000000,
		"sign4-pos":    0x00000007,
		"sign4-neg":    0xFFFFFFF9,
		"sign8":        0x0000007F,
		"sign8-neg":    0xFFFFFF80,
		"sign16":       0x00007FFF,
		"sign16-neg":   0xFFFF8000,
		"highpad":      0x12340000,
		"twohalf":      0x007F0080 | 0xFF000000&0, // 0x007F and 0x0080? adjust below
		"repbyte":      0x42424242,
		"uncompressed": 0x12345678,
	}
	words["twohalf"] = 0xFF80007F // halves 0xFF80 (-128) and 0x007F (+127)
	for name, w := range words {
		line := make([]byte, LineSize)
		for i := 0; i < 16; i++ {
			line[i*4] = byte(w)
			line[i*4+1] = byte(w >> 8)
			line[i*4+2] = byte(w >> 16)
			line[i*4+3] = byte(w >> 24)
		}
		roundTrip(t, FPC{}, line)
		_ = name
	}
}

// TestFPCZeroRunBoundaries: runs of 1..16 zeros round-trip and the encoder
// splits runs longer than 8.
func TestFPCZeroRunBoundaries(t *testing.T) {
	for zeros := 1; zeros <= 16; zeros++ {
		line := make([]byte, LineSize)
		for i := zeros; i < 16; i++ {
			line[i*4] = 0xAB // non-zero filler words
			line[i*4+3] = 0xCD
		}
		roundTrip(t, FPC{}, line)
	}
}

// TestBDIModeBoundaries hits each base-delta mode's exact delta limits.
func TestBDIModeBoundaries(t *testing.T) {
	put64 := func(line []byte, i int, v uint64) {
		for b := 0; b < 8; b++ {
			line[i*8+b] = byte(v >> (8 * b))
		}
	}
	cases := []struct {
		name   string
		deltas []int64
	}{
		{"d1-max", []int64{0, 127, -128, 1, -1, 100, -100, 64}},
		{"d2-max", []int64{0, 32767, -32768, 1000, -1000, 200, -200, 5}},
		{"d4-max", []int64{0, 2147483647, -2147483648, 1 << 20, -(1 << 20), 7, -7, 0}},
	}
	base := uint64(0x0123_4567_89AB_CDEF)
	for _, tc := range cases {
		line := make([]byte, LineSize)
		for i, d := range tc.deltas {
			put64(line, i, base+uint64(d))
		}
		enc := (BDI{}).Compress(line)
		if len(enc) > LineSize {
			t.Errorf("%s: did not compress (%d bytes)", tc.name, len(enc))
		}
		roundTrip(t, BDI{}, line)
	}
}

func TestBDIElementWidths(t *testing.T) {
	// 2-byte elements with 1-byte deltas (b2d1).
	line := make([]byte, LineSize)
	for i := 0; i < 32; i++ {
		v := uint16(0x4000 + i)
		line[i*2] = byte(v)
		line[i*2+1] = byte(v >> 8)
	}
	roundTrip(t, BDI{}, line)
	if n := len((BDI{}).Compress(line)); n > LineSize {
		t.Errorf("b2d1-compressible line encoded to %d bytes", n)
	}

	// 4-byte elements with small spread (b4d1/b4d2).
	for i := 0; i < 16; i++ {
		v := uint32(0xABCD0000 + uint32(i*3))
		line[i*4] = byte(v)
		line[i*4+1] = byte(v >> 8)
		line[i*4+2] = byte(v >> 16)
		line[i*4+3] = byte(v >> 24)
	}
	roundTrip(t, BDI{}, line)
}

func TestGroupDecodeErrors(t *testing.T) {
	alg := Hybrid{}
	if _, err := DecompressGroup(alg, []byte{0xEE}, 2); err == nil {
		t.Error("bad group blob should error")
	}
	if _, err := DecompressGroup(alg, nil, 1); err == nil {
		t.Error("empty group blob should error")
	}
}
