package compress

// bitWriter packs values MSB-first into a byte slice. FPC encodings are
// bit-granular (3-bit prefixes plus 3- to 32-bit payloads), so the writer
// must be exact: the reported compressed size is ceil(bits/8). Bits are
// staged in a 64-bit accumulator and emitted a byte at a time.
type bitWriter struct {
	buf  []byte
	acc  uint64 // pending bits, most recent in the low positions
	nacc uint   // number of valid pending bits (< 8 between calls)
	nbit uint   // total bits written
}

// writeBits appends the low n bits of v, MSB-first. n must be <= 32.
func (w *bitWriter) writeBits(v uint32, n uint) {
	w.acc = w.acc<<n | uint64(v)&(1<<n-1)
	w.nacc += n
	w.nbit += n
	for w.nacc >= 8 {
		w.nacc -= 8
		w.buf = append(w.buf, byte(w.acc>>w.nacc))
	}
}

// bytes returns the packed buffer, flushing any partial final byte
// (zero-padded on the right). The writer must not be used afterwards.
func (w *bitWriter) bytes() []byte {
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.nacc)))
		w.nacc = 0
	}
	return w.buf
}

// bits returns the exact number of bits written.
func (w *bitWriter) bits() uint { return w.nbit }

// bitReader consumes values MSB-first from a byte slice.
type bitReader struct {
	buf  []byte
	acc  uint64
	nacc uint
	pos  int  // next byte to load
	nbit uint // total bits consumed
}

// readBits reads n bits (n <= 32) MSB-first. ok is false on underflow.
func (r *bitReader) readBits(n uint) (v uint32, ok bool) {
	for r.nacc < n {
		if r.pos >= len(r.buf) {
			return 0, false
		}
		r.acc = r.acc<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.nacc += 8
	}
	r.nacc -= n
	r.nbit += n
	mask := uint32(uint64(1)<<n - 1)
	return uint32(r.acc>>r.nacc) & mask, true
}

// bytesConsumed reports how many whole bytes the reader has touched.
func (r *bitReader) bytesConsumed() int { return int((r.nbit + 7) / 8) }

// signExtend interprets the low n bits of v as a two's-complement signed
// value and widens it to 32 bits.
func signExtend(v uint32, n uint) uint32 {
	shift := 32 - n
	return uint32(int32(v<<shift) >> shift)
}

// fitsSigned reports whether the 32-bit word v is representable as an n-bit
// two's-complement value.
func fitsSigned(v uint32, n uint) bool {
	return signExtend(v&(1<<n-1), n) == v
}
