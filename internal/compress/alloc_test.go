package compress

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
)

// allocLines covers every encoder path: all-zero (BDI zeros), repeated
// 8-byte pattern (BDI rep8), small-delta integers (BDI base-delta), FPC
// word patterns, and incompressible noise (raw fallback).
func allocLines() [][]byte {
	zero := make([]byte, LineSize)

	rep := make([]byte, LineSize)
	for i := range rep {
		rep[i] = byte(0xA0 + i%8)
	}

	delta := make([]byte, LineSize)
	for i := 0; i < LineSize/8; i++ {
		binary.LittleEndian.PutUint64(delta[i*8:], 0x1000_0000+uint64(i)*24)
	}

	fpc := make([]byte, LineSize)
	for i := 0; i < LineSize/4; i++ {
		binary.LittleEndian.PutUint32(fpc[i*4:], uint32(int32(-3+i%7)))
	}

	noise := make([]byte, LineSize)
	s := uint64(0x9E3779B97F4A7C15)
	for i := range noise {
		s = s*6364136223846793005 + 1442695040888963407
		noise[i] = byte(s >> 56)
	}

	return [][]byte{zero, rep, delta, fpc, noise}
}

// TestZeroAllocHotPath pins the writeback/fill hot path at zero heap
// allocations per line: AppendCompress into a warm buffer and
// DecompressInto a caller buffer must not allocate for any algorithm on
// any line class.
func TestZeroAllocHotPath(t *testing.T) {
	algs := []Algorithm{FPC{}, BDI{}, Hybrid{}}
	lines := allocLines()
	for _, alg := range algs {
		for li, line := range lines {
			line := line
			// Warm buffer sized by one throwaway encode.
			buf := alg.AppendCompress(nil, line)
			out := make([]byte, LineSize)

			name := fmt.Sprintf("%s/line%d", alg.Name(), li)
			if n := testing.AllocsPerRun(200, func() {
				buf = alg.AppendCompress(buf[:0], line)
			}); n != 0 {
				t.Errorf("%s: AppendCompress allocates %.1f/op, want 0", name, n)
			}

			enc := alg.AppendCompress(nil, line)
			if n := testing.AllocsPerRun(200, func() {
				if _, err := alg.DecompressInto(out, enc); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Errorf("%s: DecompressInto allocates %.1f/op, want 0", name, n)
			}
			if !bytes.Equal(out, line) {
				t.Errorf("%s: round-trip mismatch", name)
			}
		}
	}
}

// TestZeroAllocGroupPath pins the group writeback path: compressing a
// 2-line or 4-line group into a warm arena and decoding it back into
// caller buffers allocates nothing.
func TestZeroAllocGroupPath(t *testing.T) {
	alg := Hybrid{}
	lines := allocLines()
	groups := [][][]byte{
		{lines[0], lines[2]},
		{lines[0], lines[1], lines[2], lines[3]},
	}
	for gi, group := range groups {
		group := group
		budget := LineSize
		blob, ok := CompressGroup(alg, group, budget)
		if !ok {
			t.Fatalf("group %d does not fit %dB", gi, budget)
		}
		buf := make([]byte, 0, 2*LineSize)
		if n := testing.AllocsPerRun(200, func() {
			if _, ok := AppendCompressGroup(alg, buf[:0], group, budget); !ok {
				t.Fatal("group stopped fitting")
			}
		}); n != 0 {
			t.Errorf("group %d: AppendCompressGroup allocates %.1f/op, want 0", gi, n)
		}

		dst := make([][]byte, len(group))
		for i := range dst {
			dst[i] = make([]byte, LineSize)
		}
		if n := testing.AllocsPerRun(200, func() {
			if err := DecompressGroupInto(alg, dst, blob, len(group)); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("group %d: DecompressGroupInto allocates %.1f/op, want 0", gi, n)
		}
		for i := range dst {
			if !bytes.Equal(dst[i], group[i]) {
				t.Errorf("group %d line %d: round-trip mismatch", gi, i)
			}
		}
	}
}
