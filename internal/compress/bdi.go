package compress

import "encoding/binary"

// BDI implements Base-Delta-Immediate compression (Pekhimenko et al.): the
// line is viewed as an array of k-byte elements; each element is stored as a
// small delta from either a single per-line base or from an implicit zero
// base ("immediate"). A per-element bitmask selects which base applies.
//
// Supported modes and their encoded payload sizes (excluding the 1-byte
// header, which is always counted):
//
//	zeros    line is all zero                      0 bytes
//	rep8     one 8-byte value repeated             8 bytes
//	b8d1     8B elems, 1B deltas:  8+1+8  = 17
//	b8d2     8B elems, 2B deltas:  8+1+16 = 25
//	b8d4     8B elems, 4B deltas:  8+1+32 = 41
//	b4d1     4B elems, 1B deltas:  4+2+16 = 22
//	b4d2     4B elems, 2B deltas:  4+2+32 = 38
//	b2d1     2B elems, 1B deltas:  2+4+32 = 38
type BDI struct{}

// Name implements Algorithm.
func (BDI) Name() string { return "bdi" }

// BDI mode numbers (stored in the low nibble of the header byte).
const (
	bdiZeros = iota
	bdiRep8
	bdiB8D1
	bdiB8D2
	bdiB8D4
	bdiB4D1
	bdiB4D2
	bdiB2D1
	bdiNumModes
)

// bdiMode describes one base-delta geometry.
type bdiModeSpec struct {
	elemSize  int // bytes per element
	deltaSize int // bytes per delta
}

var bdiModes = [bdiNumModes]bdiModeSpec{
	bdiB8D1: {8, 1},
	bdiB8D2: {8, 2},
	bdiB8D4: {8, 4},
	bdiB4D1: {4, 1},
	bdiB4D2: {4, 2},
	bdiB2D1: {2, 1},
}

// tryOrder lists base-delta modes from smallest encoding to largest so the
// compressor picks the tightest fit first.
var bdiTryOrder = []int{bdiB8D1, bdiB4D1, bdiB8D2, bdiB2D1, bdiB4D2, bdiB8D4}

// Compress implements Algorithm.
func (b BDI) Compress(line []byte) []byte {
	return b.AppendCompress(nil, line)
}

// AppendCompress implements Algorithm, encoding into dst's spare capacity.
func (b BDI) AppendCompress(dst, line []byte) []byte {
	if err := checkLine(line); err != nil {
		panic(err)
	}
	if isAllZero(line) {
		return append(dst, hdrBDI|bdiZeros)
	}
	if v, ok := repeated8(line); ok {
		var rep [8]byte
		binary.LittleEndian.PutUint64(rep[:], v)
		dst = append(dst, hdrBDI|bdiRep8)
		return append(dst, rep[:]...)
	}
	for _, mode := range bdiTryOrder {
		if out, ok := bdiAppend(dst, line, mode); ok {
			return out
		}
	}
	return rawAppend(dst, line)
}

// Decompress implements Algorithm.
func (b BDI) Decompress(enc []byte) ([]byte, int, error) {
	line := make([]byte, LineSize)
	n, err := b.DecompressInto(line, enc)
	if err != nil {
		return nil, 0, err
	}
	return line, n, nil
}

// DecompressInto implements Algorithm, decoding into the 64-byte dst.
func (b BDI) DecompressInto(dst, enc []byte) (int, error) {
	if err := checkDst(dst); err != nil {
		return 0, err
	}
	if len(enc) == 0 {
		return 0, ErrTruncated
	}
	h := enc[0]
	if h == hdrRaw {
		return rawDecodeInto(dst, enc)
	}
	if h&0xF0 != hdrBDI {
		return 0, ErrBadHeader
	}
	mode := int(h & bdiMask)
	switch mode {
	case bdiZeros:
		clear(dst)
		return 1, nil
	case bdiRep8:
		if len(enc) < 9 {
			return 0, ErrTruncated
		}
		for i := 0; i < LineSize; i += 8 {
			copy(dst[i:], enc[1:9])
		}
		return 9, nil
	case bdiB8D1, bdiB8D2, bdiB8D4, bdiB4D1, bdiB4D2, bdiB2D1:
		return bdiDecodeInto(dst, enc, mode)
	default:
		return 0, ErrBadHeader
	}
}

// bdiEncodedLen returns the total encoded length (incl. header) of a
// base-delta mode.
func bdiEncodedLen(mode int) int {
	spec := bdiModes[mode]
	n := LineSize / spec.elemSize
	return 1 + spec.elemSize + (n+7)/8 + n*spec.deltaSize
}

// bdiMaxElems is the largest element count of any mode (b2d1: 32 2-byte
// elements), sizing the encoder's stack-resident scratch arrays.
const bdiMaxElems = LineSize / 2

// zeroBytes backs allocation-free zero-fill appends.
var zeroBytes [1 + LineSize]byte

// bdiAppend attempts to encode line under the given base-delta mode,
// appending to dst. The base is the first element not representable as a
// signed delta from zero; every element must then fit either |e| (zero
// base) or |e-base| as a signed deltaSize-byte value. On failure dst is
// returned unchanged.
func bdiAppend(dst, line []byte, mode int) ([]byte, bool) {
	spec := bdiModes[mode]
	n := LineSize / spec.elemSize
	deltaBits := uint(spec.deltaSize * 8)

	var elems [bdiMaxElems]uint64
	for i := 0; i < n; i++ {
		elems[i] = loadElem(line[i*spec.elemSize:], spec.elemSize)
	}

	var base uint64
	haveBase := false
	var useBase [bdiMaxElems]bool
	for i := 0; i < n; i++ {
		e := elems[i]
		if fitsSigned64(e, deltaBits, spec.elemSize) {
			continue // zero-base immediate
		}
		if !haveBase {
			base, haveBase = e, true
		}
		d := e - base
		if !fitsSigned64(d, deltaBits, spec.elemSize) {
			return dst, false
		}
		useBase[i] = true
	}

	total := bdiEncodedLen(mode)
	start := len(dst)
	dst = append(dst, zeroBytes[:total]...)
	out := dst[start:]
	out[0] = hdrBDI | byte(mode)
	pos := 1
	storeElem(out[pos:], base, spec.elemSize)
	pos += spec.elemSize
	maskBytes := (n + 7) / 8
	for i := 0; i < n; i++ {
		if useBase[i] {
			out[pos+i/8] |= 1 << (i % 8)
		}
	}
	pos += maskBytes
	for i := 0; i < n; i++ {
		d := elems[i]
		if useBase[i] {
			d = elems[i] - base
		}
		storeElem(out[pos:], d, spec.deltaSize)
		pos += spec.deltaSize
	}
	return dst, true
}

// bdiDecodeInto reverses bdiAppend, writing the line into dst.
func bdiDecodeInto(dst, enc []byte, mode int) (int, error) {
	spec := bdiModes[mode]
	n := LineSize / spec.elemSize
	total := bdiEncodedLen(mode)
	if len(enc) < total {
		return 0, ErrTruncated
	}
	pos := 1
	base := loadElem(enc[pos:], spec.elemSize)
	pos += spec.elemSize
	maskBytes := (n + 7) / 8
	mask := enc[pos : pos+maskBytes]
	pos += maskBytes

	deltaBits := uint(spec.deltaSize * 8)
	for i := 0; i < n; i++ {
		d := signExtend64(loadElem(enc[pos:], spec.deltaSize), deltaBits)
		pos += spec.deltaSize
		e := d
		if mask[i/8]&(1<<(i%8)) != 0 {
			e = base + d
		}
		storeElem(dst[i*spec.elemSize:], e, spec.elemSize)
	}
	return total, nil
}

// loadElem reads a little-endian unsigned value of size 1, 2, 4, or 8 bytes.
func loadElem(b []byte, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

// storeElem writes the low `size` bytes of v little-endian.
func storeElem(b []byte, v uint64, size int) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}

// signExtend64 interprets the low n bits of v as two's complement.
func signExtend64(v uint64, n uint) uint64 {
	shift := 64 - n
	return uint64(int64(v<<shift) >> shift)
}

// fitsSigned64 reports whether v — itself a value of elemSize bytes —
// is representable as a signed n-bit delta. Values are first sign-extended
// from their element width so that e.g. the 4-byte element 0xFFFFFFFF is the
// delta -1, not 2^32-1.
func fitsSigned64(v uint64, n uint, elemSize int) bool {
	w := signExtend64(v, uint(elemSize*8))
	return signExtend64(w, n) == w
}

// isAllZero reports whether every byte of line is zero.
func isAllZero(line []byte) bool {
	for _, b := range line {
		if b != 0 {
			return false
		}
	}
	return true
}

// repeated8 reports whether the line is a single 8-byte value repeated.
func repeated8(line []byte) (uint64, bool) {
	v := binary.LittleEndian.Uint64(line)
	for i := 8; i < LineSize; i += 8 {
		if binary.LittleEndian.Uint64(line[i:]) != v {
			return 0, false
		}
	}
	return v, true
}
