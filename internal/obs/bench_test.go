package obs

import "testing"

// The disabled (nil) instrumentation must cost nothing but the branch:
// the root bench_test.go guards the integrated hot paths; these pin the
// package primitives directly.

func BenchmarkNilTracerEmit(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(KindDRAMRead, int64(i), 0, 0, uint64(i), 0)
	}
	if testing.AllocsPerRun(100, func() {
		tr.Emit(KindFill, 1, 0, 0, 64, 0)
	}) != 0 {
		b.Fatal("nil tracer Emit allocates")
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
	if testing.AllocsPerRun(100, func() { h.Observe(7) }) != 0 {
		b.Fatal("nil histogram Observe allocates")
	}
}

func BenchmarkNilRegistrySnapshot(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Snapshot(int64(i))
	}
	if testing.AllocsPerRun(100, func() { r.Snapshot(1) }) != 0 {
		b.Fatal("nil registry Snapshot allocates")
	}
}

func BenchmarkEnabledTracerEmit(b *testing.B) {
	tr := NewTracer(b.N + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(KindDRAMRead, int64(i), 0, 0, uint64(i), 0)
	}
}

func BenchmarkRegistrySnapshot16Series(b *testing.B) {
	reg := NewRegistry()
	var v uint64
	for i := 0; i < 16; i++ {
		reg.Counter("s", nil, func() uint64 { return v })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v++
		reg.Snapshot(int64(i))
	}
}
