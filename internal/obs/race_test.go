package obs

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRegistryConcurrentScrape is the serving-path contract: a registry
// whose read closures are atomic can be scraped (WriteText), snapshotted,
// and exported concurrently with hot-path counter updates without a data
// race (run under -race) and without skewing any series — counters must
// never appear to run backwards across snapshots, and a scrape must see
// every registered series exactly once.
func TestRegistryConcurrentScrape(t *testing.T) {
	const (
		writers  = 4
		nSeries  = 8
		opsPerG  = 20_000
		nScrapes = 200
		histObs  = 20_000
	)
	var counters [nSeries]atomic.Uint64
	var depth atomic.Uint64
	hist := NewHistogram("scrape.hist_ns")

	r := NewRegistry()
	for i := 0; i < nSeries; i++ {
		i := i
		r.Counter("scrape.counter", map[string]string{"i": string(rune('a' + i))},
			counters[i].Load)
	}
	r.Gauge("scrape.depth", nil, depth.Load)
	r.Counter("scrape.hist_count", nil, hist.Count)

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for op := 0; op < opsPerG; op++ {
				counters[(g+op)%nSeries].Add(1)
				depth.Store(uint64(op & 31))
				if op < histObs {
					hist.Observe(int64(op))
				}
			}
		}(g)
	}
	// One more writer keeps registering series while scrapes run: a
	// service wires new subsystems up after it has started serving.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.Gauge("scrape.late", map[string]string{"n": string(rune('A' + i%26))},
				func() uint64 { return 1 })
		}
	}()

	var buf bytes.Buffer
	for i := 0; i < nScrapes; i++ {
		buf.Reset()
		if err := r.WriteText(&buf); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		if n := strings.Count(buf.String(), "scrape.counter{"); n != nSeries {
			t.Fatalf("scrape %d: saw %d scrape.counter series, want %d", i, n, nSeries)
		}
		r.Snapshot(int64(i))
	}
	wg.Wait()

	// Final scrape sees the settled totals exactly.
	var total uint64
	for i := range counters {
		total += counters[i].Load()
	}
	if want := uint64(writers * opsPerG); total != want {
		t.Fatalf("counters sum to %d, want %d", total, want)
	}

	// Counters must be monotonic across the recorded snapshots: a scrape
	// that raced an update may miss the newest increment, but it can never
	// observe a series running backwards.
	d := r.Export()
	if d == nil || len(d.Snapshots) != nScrapes {
		t.Fatalf("export: got %v snapshots, want %d", len(d.Snapshots), nScrapes)
	}
	for si, s := range d.Series {
		if s.Gauge {
			continue
		}
		var prev uint64
		for _, row := range d.Snapshots {
			if si >= len(row.Values) {
				continue // series registered after this snapshot was taken
			}
			if row.Values[si] < prev {
				t.Fatalf("series %s%s ran backwards: %d after %d",
					s.Name, labelKey(s.Labels), row.Values[si], prev)
			}
			prev = row.Values[si]
		}
	}
}
