package obs

import "testing"

// TestDisabledObservabilityZeroAlloc is the shipping-default guard: with
// observability disabled (nil instruments — what every simulation runs with
// unless -metrics/-trace is passed), the hot-path entry points must not
// allocate at all. The Benchmark variants in bench_test.go measure the
// same paths; this test makes the invariant part of the plain `go test`
// tier so a regression cannot land unnoticed.
func TestDisabledObservabilityZeroAlloc(t *testing.T) {
	var tr *Tracer
	if n := testing.AllocsPerRun(200, func() {
		tr.Emit(KindFill, 1, 0, 0, 64, 0)
	}); n != 0 {
		t.Errorf("nil Tracer.Emit allocates %.1f/op, want 0", n)
	}

	var h *Histogram
	if n := testing.AllocsPerRun(200, func() { h.Observe(7) }); n != 0 {
		t.Errorf("nil Histogram.Observe allocates %.1f/op, want 0", n)
	}

	var r *Registry
	if n := testing.AllocsPerRun(200, func() { r.Snapshot(1) }); n != 0 {
		t.Errorf("nil Registry.Snapshot allocates %.1f/op, want 0", n)
	}
}
