package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// A series is one named, labeled metric backed by a read closure over the
// owning subsystem's stats field. Counters export per-window deltas in
// addition to cumulative values; gauges export the sampled value as-is.
type series struct {
	name    string
	labels  map[string]string
	read    func() uint64
	isGauge bool
}

// Registry holds the named series for one run and takes periodic snapshots
// of all of them on the simulator's cycle clock. A nil *Registry is the
// disabled registry: every method is a no-op, Snapshot allocates nothing.
//
// Each Simulator owns its own registry (per-run isolation is what keeps
// CompareParallel output byte-identical at any -parallel level), and the
// cycle loop is its only writer. The registry's own bookkeeping is
// nevertheless mutex-guarded, so a long-running service can serve scrapes
// (WriteText, Export) concurrently with registration and snapshots — what
// ptmcd's /metrics endpoint does. The mutex protects the registry's
// slices, not the sampled values: concurrent scraping is race-free only
// when the read closures themselves are safe (the service registers
// closures over sync/atomic counters; a simulation's closures read plain
// stats fields and remain single-goroutine as before). The lock is
// uncontended in a simulation — one Snapshot every MetricsInterval cycles
// — so the hot loop's cost is unchanged.
type Registry struct {
	mu        sync.Mutex
	series    []series
	snapshots []SnapshotRow
	buf       []uint64 // flat backing store, one len(series) stripe per snapshot
}

// SnapshotRow is the registry's state at one instant: every series' value,
// in registration order.
type SnapshotRow struct {
	Cycle  int64
	Values []uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// Counter registers a monotonically-nondecreasing series. The read closure
// is called at every snapshot; it must be cheap and must not allocate.
// Labels are copied. No-op on a nil registry.
func (r *Registry) Counter(name string, labels map[string]string, read func() uint64) {
	r.register(name, labels, read, false)
}

// Gauge registers a point-in-time series (queue depth, counter value).
func (r *Registry) Gauge(name string, labels map[string]string, read func() uint64) {
	r.register(name, labels, read, true)
}

func (r *Registry) register(name string, labels map[string]string, read func() uint64, gauge bool) {
	if r == nil || read == nil {
		return
	}
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	r.mu.Lock()
	r.series = append(r.series, series{name: name, labels: cp, read: read, isGauge: gauge})
	r.mu.Unlock()
}

// Snapshot samples every series at the given cycle. Amortised allocation:
// the backing store grows geometrically, so steady-state snapshots are a
// loop of closure calls plus slice bookkeeping.
func (r *Registry) Snapshot(cycle int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.series) == 0 {
		return
	}
	n := len(r.series)
	start := len(r.buf)
	if cap(r.buf)-start < n {
		grown := make([]uint64, start, 2*(start+n))
		copy(grown, r.buf)
		// Re-point prior rows at the new store so old backing memory frees.
		// Rows keep their own lengths: series registered between snapshots
		// make earlier rows shorter than n.
		off := 0
		for i := range r.snapshots {
			m := len(r.snapshots[i].Values)
			r.snapshots[i].Values = grown[off : off+m : off+m]
			off += m
		}
		r.buf = grown
	}
	r.buf = r.buf[:start+n]
	row := r.buf[start : start+n : start+n]
	for i := range r.series {
		row[i] = r.series[i].read()
	}
	r.snapshots = append(r.snapshots, SnapshotRow{Cycle: cycle, Values: row})
}

// Reset drops recorded snapshots (end of warmup); series stay registered.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.snapshots = r.snapshots[:0]
	r.buf = r.buf[:0]
	r.mu.Unlock()
}

// SeriesDesc describes one registered series in an export.
type SeriesDesc struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Gauge  bool              `json:"gauge,omitempty"`
}

// MetricsDump is a pure-data export of a registry: the series descriptors
// plus every snapshot row. It is what sim.Result carries (keeping Result
// free of live closures) and what WriteJSON serialises.
type MetricsDump struct {
	Series    []SeriesDesc
	Snapshots []SnapshotRow
}

// Export copies the registry's current state into a MetricsDump. A nil
// registry (or one with no snapshots) exports nil.
func (r *Registry) Export() *MetricsDump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.snapshots) == 0 {
		return nil
	}
	d := &MetricsDump{
		Series:    make([]SeriesDesc, len(r.series)),
		Snapshots: make([]SnapshotRow, len(r.snapshots)),
	}
	for i, s := range r.series {
		d.Series[i] = SeriesDesc{Name: s.name, Labels: s.labels, Gauge: s.isGauge}
	}
	for i, row := range r.snapshots {
		d.Snapshots[i] = SnapshotRow{
			Cycle:  row.Cycle,
			Values: append([]uint64(nil), row.Values...),
		}
	}
	return d
}

// WriteText renders every registered series' current value as one
// `name{labels} value` line (labels sorted, series in registration
// order) — a plain-text exposition for scrape endpoints. Unlike Snapshot
// it stores nothing, so a service scraped forever holds constant memory.
// Safe for concurrent use with the other Registry methods provided the
// read closures are themselves concurrency-safe (e.g. sync/atomic
// counters); a nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, s := range r.series {
		if _, err := fmt.Fprintf(bw, "%s%s %d\n", s.name, labelKey(s.labels), s.read()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// labelKey renders labels deterministically ({k=v,k=v} sorted by key).
func labelKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// WriteJSON serialises the dump: a "series" array of descriptors and a
// "windows" array with, per snapshot, the cycle, every cumulative value,
// and — for counters — the delta over the previous window. Output is
// deterministic (series in registration order, labels sorted).
func (d *MetricsDump) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if d == nil || len(d.Snapshots) == 0 {
		if _, err := bw.WriteString("{\"series\":[],\"windows\":[]}\n"); err != nil {
			return err
		}
		return bw.Flush()
	}
	if _, err := bw.WriteString("{\n \"series\": [\n"); err != nil {
		return err
	}
	for i, s := range d.Series {
		sep := ","
		if i == len(d.Series)-1 {
			sep = ""
		}
		kind := "counter"
		if s.Gauge {
			kind = "gauge"
		}
		if _, err := fmt.Fprintf(bw, "  {\"name\":%q,\"labels\":%q,\"kind\":%q}%s\n",
			s.Name, labelKey(s.Labels), kind, sep); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(" ],\n \"windows\": [\n"); err != nil {
		return err
	}
	for i, row := range d.Snapshots {
		sep := ","
		if i == len(d.Snapshots)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(bw, "  {\"cycle\":%d,\"values\":[", row.Cycle); err != nil {
			return err
		}
		for j, v := range row.Values {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d", v); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("],\"deltas\":["); err != nil {
			return err
		}
		for j, v := range row.Values {
			var delta uint64
			if d.Series[j].Gauge {
				delta = v // gauges have no meaningful delta; re-export the value
			} else if i == 0 || j >= len(d.Snapshots[i-1].Values) {
				// First window, or a series registered after the previous
				// snapshot: the whole value is this window's delta.
				delta = v
			} else {
				prev := d.Snapshots[i-1].Values[j]
				if v >= prev {
					delta = v - prev
				}
			}
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d", delta); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "]}%s\n", sep); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(" ]\n}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
