package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

func TestNilInstrumentationIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(KindFill, 1, 0, 0, 0x40, 4)
	tr.Reset()
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer Events = %v, want nil", got)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("nil tracer Dropped != 0")
	}

	var reg *Registry
	reg.Counter("x", nil, func() uint64 { return 1 })
	reg.Gauge("y", nil, func() uint64 { return 2 })
	reg.Snapshot(100)
	reg.Reset()
	if d := reg.Export(); d != nil {
		t.Fatalf("nil registry Export = %v, want nil", d)
	}

	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram not zero-valued")
	}
	if _, err := h.WriteTo(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil histogram WriteTo: %v", err)
	}
}

func TestTracerRecordsAndBounds(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Emit(KindDRAMRead, int64(i), 0, i, uint64(i*64), 0)
	}
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("len(events) = %d, want 3 (capacity)", len(ev))
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	for i, e := range ev {
		if e.TS != int64(i) || e.Kind != KindDRAMRead || e.Core != int32(i) {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Dropped() != 0 {
		t.Fatalf("reset did not clear tracer")
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		name := k.String()
		if strings.Contains(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		back, err := ParseKind(name)
		if err != nil || back != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", name, back, err, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatalf("ParseKind(bogus) succeeded")
	}
}

func TestWriteChromeTraceParses(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(KindDRAMRead, 10, 0, 1, 0x1000, 0)
	tr.Emit(KindJob, 20, 5, 2, 0, 7)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed) != 2 {
		t.Fatalf("parsed %d events, want 2", len(parsed))
	}
	if parsed[0]["ph"] != "i" || parsed[0]["name"] != "dram-read" {
		t.Fatalf("instant event mis-rendered: %v", parsed[0])
	}
	if parsed[1]["ph"] != "X" || parsed[1]["dur"] != float64(5) {
		t.Fatalf("complete event mis-rendered: %v", parsed[1])
	}
}

func TestWriteJSONLParsesPerLine(t *testing.T) {
	events := []Event{
		{TS: 1, Kind: KindFill, Core: 0, Addr: 64, Arg: 4},
		{TS: 2, Kind: KindEvict, Core: 3, Addr: 128},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, ln)
		}
	}
	var m map[string]any
	_ = json.Unmarshal([]byte(lines[0]), &m)
	if m["kind"] != "fill" || m["arg"] != float64(4) {
		t.Fatalf("line 0 = %v", m)
	}
}

func TestRegistrySnapshotsAndDeltas(t *testing.T) {
	var ctr uint64
	var gauge uint64
	reg := NewRegistry()
	reg.Counter("reads", map[string]string{"scheme": "ptmc"}, func() uint64 { return ctr })
	reg.Gauge("queue", nil, func() uint64 { return gauge })

	ctr, gauge = 5, 2
	reg.Snapshot(1000)
	ctr, gauge = 12, 1
	reg.Snapshot(2000)

	d := reg.Export()
	if d == nil || len(d.Snapshots) != 2 || len(d.Series) != 2 {
		t.Fatalf("export = %+v", d)
	}
	if d.Snapshots[0].Cycle != 1000 || d.Snapshots[1].Values[0] != 12 {
		t.Fatalf("snapshot rows wrong: %+v", d.Snapshots)
	}

	// Export must be a copy: later snapshots may not mutate it.
	ctr = 100
	reg.Snapshot(3000)
	if d.Snapshots[1].Values[0] != 12 {
		t.Fatalf("export aliased live registry storage")
	}

	var buf bytes.Buffer
	if err := reg.Export().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var parsed struct {
		Series []struct {
			Name   string `json:"name"`
			Labels string `json:"labels"`
			Kind   string `json:"kind"`
		} `json:"series"`
		Windows []struct {
			Cycle  int64    `json:"cycle"`
			Values []uint64 `json:"values"`
			Deltas []uint64 `json:"deltas"`
		} `json:"windows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(parsed.Windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(parsed.Windows))
	}
	if parsed.Series[0].Labels != "{scheme=ptmc}" || parsed.Series[0].Kind != "counter" {
		t.Fatalf("series 0 = %+v", parsed.Series[0])
	}
	if parsed.Series[1].Kind != "gauge" {
		t.Fatalf("series 1 = %+v", parsed.Series[1])
	}
	// Window 0 delta = value; window 1 delta = 12-5 = 7; gauge delta = value.
	if parsed.Windows[0].Deltas[0] != 5 || parsed.Windows[1].Deltas[0] != 7 {
		t.Fatalf("counter deltas = %v %v", parsed.Windows[0].Deltas, parsed.Windows[1].Deltas)
	}
	if parsed.Windows[1].Deltas[1] != 1 {
		t.Fatalf("gauge delta = %d, want re-exported value 1", parsed.Windows[1].Deltas[1])
	}
}

func TestRegistryResetKeepsSeries(t *testing.T) {
	var v uint64
	reg := NewRegistry()
	reg.Counter("c", nil, func() uint64 { return v })
	v = 3
	reg.Snapshot(1)
	reg.Reset()
	if d := reg.Export(); d != nil {
		t.Fatalf("export after reset = %+v, want nil", d)
	}
	v = 9
	reg.Snapshot(2)
	d := reg.Export()
	if len(d.Snapshots) != 1 || d.Snapshots[0].Values[0] != 9 {
		t.Fatalf("series lost across reset: %+v", d)
	}
}

func TestEmptyDumpWritesValidJSON(t *testing.T) {
	var buf bytes.Buffer
	var d *MetricsDump
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON(nil): %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("empty dump is not JSON: %v", err)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram("wait")
	for _, v := range []int64{0, 1, 1, 3, 100, 1000, -5} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 1105 {
		t.Fatalf("sum = %d, want 1105", h.Sum())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d, want 1000", h.Max())
	}
	if q := h.Quantile(0.5); q > 3 {
		t.Fatalf("p50 bound = %d, want <= 3", q)
	}
	if q := h.Quantile(1.0); q < 1000 {
		t.Fatalf("p100 bound = %d, want >= 1000", q)
	}
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if !strings.Contains(buf.String(), "wait: n=7") {
		t.Fatalf("summary missing: %s", buf.String())
	}
}

func TestStartPprofServes(t *testing.T) {
	addr, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartPprof: %v", err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", addr))
	if err != nil {
		t.Fatalf("GET pprof: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}
}
