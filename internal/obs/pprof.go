package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// StartPprof serves the standard net/http/pprof endpoints on addr (e.g.
// "localhost:6060") in a background goroutine and returns the bound
// address, so callers may pass ":0" for an ephemeral port. The listener
// lives for the life of the process — profiling is a whole-run concern for
// these CLIs, so there is nothing to tear down.
func StartPprof(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	go func() {
		_ = http.Serve(ln, mux) // exits when the process does
	}()
	return ln.Addr().String(), nil
}
