package obs

import (
	"fmt"
	"io"
	"math/bits"
	"strings"
	"sync/atomic"
)

// histBuckets is enough log2 buckets to cover int64 nanoseconds: bucket i
// holds observations v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i).
const histBuckets = 64

// Histogram is a lock-free log2-bucketed histogram for latency-style
// values (the experiment engine's queue-wait and run-time accounting).
// A nil *Histogram is the disabled histogram: Observe is a branch and a
// return. All methods are safe for concurrent use.
type Histogram struct {
	name    string
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// NewHistogram builds a named histogram.
func NewHistogram(name string) *Histogram { return &Histogram{name: name} }

// Name returns the histogram's name ("" on nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one value. Negative values clamp to zero. Safe (and
// allocation-free) on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if uint64(v) <= cur || h.max.CompareAndSwap(cur, uint64(v)) {
			break
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the running total of observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max reports the largest observed value.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// top edge of the bucket holding the q-th observation. Exact enough for
// "p99 queue wait" reporting without storing samples.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return h.max.Load()
}

// String renders a one-line summary: name, count, mean, p50/p99, max.
func (h *Histogram) String() string {
	if h == nil {
		return "<nil histogram>"
	}
	n := h.count.Load()
	if n == 0 {
		return fmt.Sprintf("%s: empty", h.name)
	}
	return fmt.Sprintf("%s: n=%d mean=%d p50<=%d p99<=%d max=%d",
		h.name, n, h.sum.Load()/n, h.Quantile(0.50), h.Quantile(0.99), h.max.Load())
}

// WriteTo writes the non-empty buckets as "bucket_upper count" lines plus
// the summary line; used by the CLIs' -metrics output for pool histograms.
func (h *Histogram) WriteTo(w io.Writer) (int64, error) {
	if h == nil {
		return 0, nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", h.String())
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		var hi uint64
		if i > 0 {
			hi = 1<<uint(i) - 1
		}
		fmt.Fprintf(&b, "  <=%d: %d\n", hi, c)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
