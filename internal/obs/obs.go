// Package obs is the repo's zero-dependency observability layer: a typed
// metrics registry that turns the per-scheme Stats structs into named,
// labeled time series (counter deltas per cycle window, not just end-of-run
// totals), an event tracer that emits Chrome-trace-format JSON (and a
// compact JSONL stream) for DRAM requests, fills, evictions, re-keys,
// scrubs, and dynamic-policy flips, log-bucketed histograms for the
// experiment engine's queue-wait/run-time accounting, and a pprof helper
// for the CLIs.
//
// Everything in this package is nil-tolerant: a nil *Tracer, *Registry, or
// *Histogram is the disabled instrumentation, and every method on one is a
// no-op that allocates nothing. Hot paths (the memory controller's issue
// and fill loops, the simulator's cycle loop) call straight through the nil
// check, so a run without -metrics/-trace pays one predictable branch per
// event and zero allocations — bench_test.go at the repo root guards this.
//
// The paper's entire evaluation is event accounting (Figure 4/14 bandwidth
// stacks, Figure 9 LLP accuracy, Figure 16 cost/benefit events); this
// package is what makes those events observable over time — Dynamic-PTMC
// enable/disable flapping, LLP accuracy drift, DRAM queue occupancy —
// instead of only as end-of-run sums.
package obs
