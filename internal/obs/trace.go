package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Kind classifies a trace event. The enum is the event's "category" in the
// exported trace; String names are stable (scripts/smoke.sh greps them).
type Kind uint8

// Event kinds.
const (
	KindDRAMRead   Kind = iota // one DRAM read burst issued
	KindDRAMWrite              // one DRAM write burst issued
	KindFill                   // a demand fill completed (arg = compression level)
	KindEvict                  // an LLC eviction entered the controller
	KindReKey                  // a LIT-overflow marker re-key
	KindScrub                  // a RAS-style scrub of one compression group
	KindPolicyFlip             // a Dynamic-PTMC counter crossed its threshold (arg: 1=enable 0=disable)
	KindJob                    // one experiment-engine job span (ts/dur in wall µs)
	numKinds
)

var kindNames = [...]string{
	KindDRAMRead:   "dram-read",
	KindDRAMWrite:  "dram-write",
	KindFill:       "fill",
	KindEvict:      "evict",
	KindReKey:      "rekey",
	KindScrub:      "scrub",
	KindPolicyFlip: "policy-flip",
	KindJob:        "job",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Kinds lists every event kind (validators, tests).
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParseKind resolves a kind name ("dram-read", "fill", ...).
func ParseKind(name string) (Kind, error) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", name)
}

// Event is one traced occurrence. TS is in CPU cycles for simulation events
// and wall-clock microseconds for KindJob spans; Dur is zero for
// instantaneous events. The struct is fixed-size so recording an event is a
// slice append — no per-event allocation.
type Event struct {
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	Kind Kind   `json:"-"`
	Core int32  `json:"core"`
	Addr uint64 `json:"addr"`
	Arg  int64  `json:"arg"`
}

// DefaultTraceCapacity bounds a tracer's buffer when the caller does not
// choose one: 1M events ≈ 40 MB, far beyond a quickstart horizon.
const DefaultTraceCapacity = 1 << 20

// Tracer records events into a bounded in-memory buffer. A nil *Tracer is
// the disabled tracer: Emit on it is a branch and a return, nothing more.
// The tracer is goroutine-safe (the experiment engine emits job spans from
// worker goroutines); simulation hot paths are single-goroutine and pay an
// uncontended lock only when tracing is enabled.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	cap     int
	dropped uint64
}

// NewTracer builds a tracer holding at most capacity events (<= 0 selects
// DefaultTraceCapacity). Events past capacity are counted, not stored.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity}
}

// Emit records one event. Safe (and free) on a nil tracer.
func (t *Tracer) Emit(k Kind, ts, dur int64, core int, addr uint64, arg int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.events) >= t.cap {
		t.dropped++
	} else {
		t.events = append(t.events, Event{TS: ts, Dur: dur, Kind: k, Core: int32(core), Addr: addr, Arg: arg})
	}
	t.mu.Unlock()
}

// Reset drops every recorded event (end of warmup).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.dropped = 0
	t.mu.Unlock()
}

// Events returns a copy of the recorded events in emission order. A nil
// tracer returns nil.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Dropped reports events lost to the capacity bound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// CountByKind tallies recorded events per kind.
func CountByKind(events []Event) map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}

// WriteChromeTrace writes events as a Chrome-trace-format JSON array,
// openable in chrome://tracing or Perfetto. Simulation timestamps are CPU
// cycles rendered as microseconds (the viewer's time unit); relative
// spacing is what matters. Events with a duration render as complete ("X")
// slices, instantaneous ones as instant ("i") marks. The pid groups a run
// (always 0 here), the tid is the core (or worker) the event belongs to.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, e := range events {
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		var err error
		if e.Dur > 0 {
			_, err = fmt.Fprintf(bw,
				`{"name":%q,"cat":%q,"ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d,"args":{"addr":%d,"arg":%d}}%s`+"\n",
				e.Kind, e.Kind, e.TS, e.Dur, e.Core, e.Addr, e.Arg, sep)
		} else {
			_, err = fmt.Fprintf(bw,
				`{"name":%q,"cat":%q,"ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"addr":%d,"arg":%d}}%s`+"\n",
				e.Kind, e.Kind, e.TS, e.Core, e.Addr, e.Arg, sep)
		}
		if err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteJSONL writes events as a compact JSONL stream: one self-contained
// JSON object per line, cheap to grep and to stream-parse.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := fmt.Fprintf(bw,
			`{"ts":%d,"dur":%d,"kind":%q,"core":%d,"addr":%d,"arg":%d}`+"\n",
			e.TS, e.Dur, e.Kind, e.Core, e.Addr, e.Arg); err != nil {
			return err
		}
	}
	return bw.Flush()
}
