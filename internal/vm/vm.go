// Package vm models the virtual memory system the paper assumes: per-core
// page tables with first-touch physical allocation, so that the memory
// accesses of different cores never map to the same physical page (§III-A).
// No other OS support exists — PTMC is OS-transparent by design.
package vm

import (
	"fmt"

	"ptmc/internal/mem"
)

// Page geometry: 4 KB pages of 64 lines.
const (
	PageShift = 12
	PageLines = 1 << (PageShift - 6)
)

// System is the address-translation layer. Physical pages are handed out
// first-touch in a seeded pseudo-random (but deterministic) order so that
// DRAM bank/row mappings see realistic scatter.
type System struct {
	totalPages    uint64 // physical pages available to data
	reservedPages uint64 // carved out at the top (metadata table region)
	nextIdx       uint64
	mult          uint64 // odd multiplier => bijection over power-of-two space
	xor           uint64
	tables        []map[uint64]uint64 // per-core vpage -> ppage
	allocated     uint64
}

// New creates a VM for a physical memory of memBytes (must make the page
// count a power of two, e.g. 16 GB), cores page tables, and a deterministic
// seed. reservedBytes are carved from the top of physical memory and never
// allocated (the table-based baseline keeps its metadata there).
func New(memBytes uint64, cores int, seed int64, reservedBytes uint64) (*System, error) {
	pages := memBytes >> PageShift
	if pages == 0 || pages&(pages-1) != 0 {
		return nil, fmt.Errorf("vm: page count %d must be a power of two", pages)
	}
	reserved := (reservedBytes + (1 << PageShift) - 1) >> PageShift
	if reserved >= pages {
		return nil, fmt.Errorf("vm: reservation %d pages exceeds memory %d", reserved, pages)
	}
	s := &System{
		totalPages:    pages,
		reservedPages: reserved,
		mult:          uint64(seed)*2 + 2654435761, // always odd
		xor:           uint64(seed) * 0x9E3779B97F4A7C15,
		tables:        make([]map[uint64]uint64, cores),
	}
	for i := range s.tables {
		s.tables[i] = make(map[uint64]uint64)
	}
	return s, nil
}

// permute maps allocation index i to a physical page, a bijection over the
// power-of-two page space; pages landing in the reserved region are skipped
// by the caller.
func (s *System) permute(i uint64) uint64 {
	return (i*s.mult ^ s.xor) & (s.totalPages - 1)
}

// Translate maps (core, virtual byte address) to a physical line address,
// allocating a physical page on first touch. allocated reports whether this
// call performed the first-touch allocation (the caller initializes the
// page's contents then).
func (s *System) Translate(core int, vaddr uint64) (addr mem.LineAddr, allocated bool, err error) {
	vpage := vaddr >> PageShift
	tbl := s.tables[core]
	ppage, ok := tbl[vpage]
	if !ok {
		limit := s.totalPages - s.reservedPages
		if s.allocated >= limit {
			return 0, false, fmt.Errorf("vm: out of physical memory (%d pages)", limit)
		}
		for {
			ppage = s.permute(s.nextIdx)
			s.nextIdx++
			if ppage < limit {
				break
			}
		}
		s.allocated++
		tbl[vpage] = ppage
		allocated = true
	}
	lineInPage := (vaddr >> 6) & (PageLines - 1)
	return mem.LineAddr(ppage<<(PageShift-6) | lineInPage), allocated, nil
}

// AllocatedPages returns the number of physical pages handed out.
func (s *System) AllocatedPages() uint64 { return s.allocated }

// FootprintBytes returns the allocated physical footprint.
func (s *System) FootprintBytes() uint64 { return s.allocated << PageShift }

// ReservedBase returns the first line address of the reserved region.
func (s *System) ReservedBase() mem.LineAddr {
	return mem.LineAddr((s.totalPages - s.reservedPages) << (PageShift - 6))
}

// TotalLines returns the number of physical lines in memory.
func (s *System) TotalLines() uint64 { return s.totalPages << (PageShift - 6) }
