package vm

import (
	"testing"

	"ptmc/internal/mem"
)

func TestPageCountValidation(t *testing.T) {
	if _, err := New(3<<30, 1, 0, 0); err == nil {
		t.Error("3 GB (non power-of-two pages) should be rejected")
	}
	if _, err := New(1<<20, 1, 0, 2<<20); err == nil {
		t.Error("reservation larger than memory should be rejected")
	}
	if _, err := New(16<<30, 8, 42, 0); err != nil {
		t.Errorf("16 GB should validate: %v", err)
	}
}

func TestSameLineSameTranslation(t *testing.T) {
	s, _ := New(1<<24, 1, 1, 0)
	a1, _, err := s.Translate(0, 0x1234)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, _ := s.Translate(0, 0x1234)
	if a1 != a2 {
		t.Error("repeat translation must be stable")
	}
	// Same line, different byte offset.
	a3, _, _ := s.Translate(0, 0x1234+1)
	if a1 != a3 {
		t.Error("offsets within a line must map to the same line")
	}
}

func TestIntraPageLinesStayAdjacent(t *testing.T) {
	// PTMC group geometry depends on virtual adjacency within a page
	// surviving translation.
	s, _ := New(1<<24, 1, 7, 0)
	base := uint64(0x40000) // page-aligned
	a0, _, _ := s.Translate(0, base)
	for i := uint64(1); i < PageLines; i++ {
		ai, _, _ := s.Translate(0, base+i*64)
		if ai != a0+mem.LineAddr(i) {
			t.Fatalf("line %d not adjacent: %d vs %d", i, ai, a0)
		}
	}
}

func TestCoresGetDistinctPages(t *testing.T) {
	s, _ := New(1<<24, 8, 3, 0)
	seen := map[mem.LineAddr]int{}
	for core := 0; core < 8; core++ {
		a, _, err := s.Translate(core, 0x8000)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[a]; dup {
			t.Errorf("cores %d and %d share physical line %d", prev, core, a)
		}
		seen[a] = core
	}
	if s.AllocatedPages() != 8 {
		t.Errorf("allocated = %d, want 8", s.AllocatedPages())
	}
}

func TestDistinctVPagesDistinctPPages(t *testing.T) {
	s, _ := New(1<<26, 1, 9, 0)
	seen := map[mem.LineAddr]bool{}
	for v := uint64(0); v < 1000; v++ {
		a, _, err := s.Translate(0, v<<PageShift)
		if err != nil {
			t.Fatal(err)
		}
		page := a >> (PageShift - 6)
		if seen[page] {
			t.Fatalf("physical page %d allocated twice", page)
		}
		seen[page] = true
	}
}

func TestOutOfMemory(t *testing.T) {
	s, _ := New(1<<16, 1, 0, 0) // 16 pages
	for v := uint64(0); v < 16; v++ {
		if _, _, err := s.Translate(0, v<<PageShift); err != nil {
			t.Fatalf("page %d: %v", v, err)
		}
	}
	if _, _, err := s.Translate(0, 16<<PageShift); err == nil {
		t.Error("17th page should fail on 16-page memory")
	}
}

func TestReservedRegionNeverAllocated(t *testing.T) {
	s, _ := New(1<<20, 1, 5, 64<<10) // 256 pages, 16 reserved
	limit := s.ReservedBase()
	for v := uint64(0); v < 240; v++ {
		a, _, err := s.Translate(0, v<<PageShift)
		if err != nil {
			t.Fatal(err)
		}
		if a >= limit {
			t.Fatalf("data page allocated inside reserved region: %d >= %d", a, limit)
		}
	}
	if _, _, err := s.Translate(0, 240<<PageShift); err == nil {
		t.Error("allocation beyond data region should fail")
	}
}

func TestDeterminismAcrossInstances(t *testing.T) {
	s1, _ := New(1<<24, 2, 11, 0)
	s2, _ := New(1<<24, 2, 11, 0)
	for v := uint64(0); v < 100; v++ {
		a1, _, _ := s1.Translate(int(v%2), v<<PageShift)
		a2, _, _ := s2.Translate(int(v%2), v<<PageShift)
		if a1 != a2 {
			t.Fatal("same seed must give same translations")
		}
	}
	s3, _ := New(1<<24, 2, 12, 0)
	diff := false
	for v := uint64(0); v < 100; v++ {
		a1, _, _ := s1.Translate(int(v%2), v<<PageShift)
		a3, _, _ := s3.Translate(int(v%2), v<<PageShift)
		if a1 != a3 {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should permute pages differently")
	}
}

func TestFootprintAndTotals(t *testing.T) {
	s, _ := New(1<<24, 1, 0, 0)
	s.Translate(0, 0)
	s.Translate(0, 1<<PageShift)
	if s.FootprintBytes() != 2<<PageShift {
		t.Errorf("footprint = %d", s.FootprintBytes())
	}
	if s.TotalLines() != (1<<24)/64 {
		t.Errorf("total lines = %d", s.TotalLines())
	}
}
