package memctrl

import (
	"testing"

	"ptmc/internal/cache"
	"ptmc/internal/dram"
	"ptmc/internal/mem"
)

func newMemZipRig(t *testing.T) *rig {
	return newRig(t, 64*64, func(d *dram.DRAM, img, arch *mem.Store, llc LLC) Controller {
		z, err := NewMemZip(d, img, arch, llc, 1<<30, 32<<10)
		if err != nil {
			t.Fatal(err)
		}
		return z
	})
}

func TestMemZipRoundTrip(t *testing.T) {
	r := newMemZipRig(t)
	val := compressibleLine(3)
	r.write(0, 100, val)
	r.evict(100)
	wantLine(t, r.read(0, 100), val, "memzip readback")
	if r.ctrl.Stats().IntegrityErrs != 0 {
		t.Error("integrity errors")
	}
}

func TestMemZipReducedBurstSavesBusTime(t *testing.T) {
	// A compressible line must occupy the bus for less time than an
	// incompressible one.
	busyFor := func(val []byte) uint64 {
		r := newMemZipRig(t)
		r.write(0, 100, val)
		r.evict(100)
		before := r.d.Stats.BusBusy
		r.read(0, 100)
		return r.d.Stats.BusBusy - before
	}
	comp := busyFor(compressibleLine(1))
	incomp := busyFor(incompressibleLine(1))
	if comp >= incomp {
		t.Errorf("compressible burst (%d) should be shorter than incompressible (%d)", comp, incomp)
	}
}

func TestMemZipPaysMetadata(t *testing.T) {
	r := newMemZipRig(t)
	r.read(0, 4096) // cold: metadata read precedes data
	if r.ctrl.Stats().MetadataReads != 1 {
		t.Errorf("metadata reads = %d, want 1", r.ctrl.Stats().MetadataReads)
	}
	r.read(0, 4097)
	r.evict(4097)
	r.read(0, 4097) // same metadata line: cached
	if r.ctrl.Stats().MetadataReads != 1 {
		t.Errorf("warm metadata reads = %d, want 1", r.ctrl.Stats().MetadataReads)
	}
}

// TestMemZipBeatChangeChargesMetadata is the regression test for the
// burst-length aliasing bug: the stored value used to be squeezed through
// the metadata table's 2-bit level encoding as newBeats&3, collapsing
// beats {4,8}→0 and {5,1}→1. The dedicated beat store must round-trip the
// full 1-8 range, and a 4→8-beat transition — invisible modulo 4 — must
// still charge a metadata-cache access on eviction while an unchanged
// burst length charges none.
func TestMemZipBeatChangeChargesMetadata(t *testing.T) {
	r := newMemZipRig(t)
	z := r.ctrl.(*MemZip)
	a := mem.LineAddr(100)

	r.write(0, a, pairOnlyLine(1)) // ~25-byte encoding: a mid-range burst
	r.evict(a)
	if got := z.StoredBeats(a); got != 4 {
		t.Fatalf("mid-range line stored %d beats, want 4 (pick a value that encodes to 25-32 bytes)", got)
	}

	r.write(0, a, incompressibleLine(9)) // full-burst value
	lk := z.Meta().Lookups
	r.evict(a)
	if got := z.StoredBeats(a); got != 8 {
		t.Fatalf("incompressible line stored %d beats, want 8", got)
	}
	if z.Meta().Lookups != lk+1 {
		t.Errorf("4→8-beat eviction made %d metadata accesses, want 1 (aliasing bug: 4 and 8 both truncate to 0)",
			z.Meta().Lookups-lk)
	}

	r.write(0, a, incompressibleLine(10)) // different value, same 8-beat burst
	lk = z.Meta().Lookups
	r.evict(a)
	if z.Meta().Lookups != lk {
		t.Errorf("unchanged-burst eviction made %d metadata accesses, want 0", z.Meta().Lookups-lk)
	}
	if r.ctrl.Stats().IntegrityErrs != 0 {
		t.Error("integrity errors")
	}
}

// TestMemZipStoredBeatsFullRange drives one line through every reachable
// burst length and asserts the store reports exactly what the compressor
// produced — no 2-bit truncation anywhere in the pipeline.
func TestMemZipStoredBeatsFullRange(t *testing.T) {
	r := newMemZipRig(t)
	z := r.ctrl.(*MemZip)
	a := mem.LineAddr(200)
	seen := map[int]bool{}
	vals := [][]byte{
		compressibleLine(1), // tiny encoding
		pairOnlyLine(2),     // mid-range
		incompressibleLine(3),
	}
	for i, val := range vals {
		r.write(0, a, val)
		r.evict(a)
		got := z.StoredBeats(a)
		if got < 1 || got > 8 {
			t.Fatalf("value %d stored %d beats, outside [1,8]", i, got)
		}
		seen[got] = true
		wantLine(t, r.read(0, a), val, "readback after beat change")
	}
	if len(seen) < 3 {
		t.Fatalf("test values collapsed onto %d distinct burst lengths, want 3: %v", len(seen), seen)
	}
}

// TestMemZipEvictZeroAlloc pins the eviction hot path at zero heap
// allocations per dirty writeback in steady state (unchanged burst
// length): the beat store is an array write behind one map read, the
// compression scratch is the warm arena, and the DRAM request comes from
// the model's pool. The beats map this store replaced allocated on every
// insert.
func TestMemZipEvictZeroAlloc(t *testing.T) {
	r := newMemZipRig(t)
	z := r.ctrl.(*MemZip)
	a := mem.LineAddr(300)
	r.write(0, a, incompressibleLine(7))
	r.evict(a)
	ev := func() {
		z.Evict(0, cache.Entry{Tag: a, Dirty: true, Valid: true}, r.now)
		r.drain()
	}
	for i := 0; i < 8; i++ {
		ev() // warm: request pool, write-queue capacity, scratch arena
	}
	if n := testing.AllocsPerRun(100, ev); n != 0 {
		t.Errorf("memzip steady-state eviction allocates %.1f/op, want 0", n)
	}
}

func TestMemZipNoColocationEffects(t *testing.T) {
	r := newMemZipRig(t)
	r.write(0, 200, compressibleLine(1))
	r.write(0, 201, compressibleLine(2))
	r.evict(200)
	st := r.ctrl.Stats()
	if st.Groups2 != 0 || st.Groups4 != 0 || st.Invalidates != 0 || st.FreeInstalls != 0 {
		t.Errorf("memzip must not co-locate: %+v", st)
	}
	if _, in := r.llc.Probe(201); !in {
		t.Error("no ganged eviction in memzip")
	}
}
