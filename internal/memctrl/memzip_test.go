package memctrl

import (
	"testing"

	"ptmc/internal/dram"
	"ptmc/internal/mem"
)

func newMemZipRig(t *testing.T) *rig {
	return newRig(t, 64*64, func(d *dram.DRAM, img, arch *mem.Store, llc LLC) Controller {
		z, err := NewMemZip(d, img, arch, llc, 1<<30, 32<<10)
		if err != nil {
			t.Fatal(err)
		}
		return z
	})
}

func TestMemZipRoundTrip(t *testing.T) {
	r := newMemZipRig(t)
	val := compressibleLine(3)
	r.write(0, 100, val)
	r.evict(100)
	wantLine(t, r.read(0, 100), val, "memzip readback")
	if r.ctrl.Stats().IntegrityErrs != 0 {
		t.Error("integrity errors")
	}
}

func TestMemZipReducedBurstSavesBusTime(t *testing.T) {
	// A compressible line must occupy the bus for less time than an
	// incompressible one.
	busyFor := func(val []byte) uint64 {
		r := newMemZipRig(t)
		r.write(0, 100, val)
		r.evict(100)
		before := r.d.Stats.BusBusy
		r.read(0, 100)
		return r.d.Stats.BusBusy - before
	}
	comp := busyFor(compressibleLine(1))
	incomp := busyFor(incompressibleLine(1))
	if comp >= incomp {
		t.Errorf("compressible burst (%d) should be shorter than incompressible (%d)", comp, incomp)
	}
}

func TestMemZipPaysMetadata(t *testing.T) {
	r := newMemZipRig(t)
	r.read(0, 4096) // cold: metadata read precedes data
	if r.ctrl.Stats().MetadataReads != 1 {
		t.Errorf("metadata reads = %d, want 1", r.ctrl.Stats().MetadataReads)
	}
	r.read(0, 4097)
	r.evict(4097)
	r.read(0, 4097) // same metadata line: cached
	if r.ctrl.Stats().MetadataReads != 1 {
		t.Errorf("warm metadata reads = %d, want 1", r.ctrl.Stats().MetadataReads)
	}
}

func TestMemZipNoColocationEffects(t *testing.T) {
	r := newMemZipRig(t)
	r.write(0, 200, compressibleLine(1))
	r.write(0, 201, compressibleLine(2))
	r.evict(200)
	st := r.ctrl.Stats()
	if st.Groups2 != 0 || st.Groups4 != 0 || st.Invalidates != 0 || st.FreeInstalls != 0 {
		t.Errorf("memzip must not co-locate: %+v", st)
	}
	if _, in := r.llc.Probe(201); !in {
		t.Error("no ganged eviction in memzip")
	}
}
