package memctrl

import (
	"ptmc/internal/compress"
	"ptmc/internal/core"
	"ptmc/internal/mem"
)

// VerifySink defers the decode-and-compare integrity check of compressed
// fills so the epoch engine can batch it onto shard workers. The serial
// fill path decodes every compressed unit inline and compares each
// installed member against the architectural store; with a sink attached,
// PTMC performs the identical installs, stats, LLP training, and timing,
// but records the unit — the compressed blob and a snapshot of the masked
// members' architectural values, both captured at completion time, before
// any later eviction or store can rewrite them — and the engine drains the
// batch at epoch boundaries, partitioned by the channel-interleave shard
// key so drains parallelize without sharing state.
//
// The one observable difference from the inline check is fault response
// timing: an undecodable unit is detected at drain rather than at fill, so
// the fallback fill the serial path would synthesize does not happen.
// Healthy runs never decode-fail (a tested invariant), and the fault
// campaigns construct their own serial controllers, so the sink is only
// attached where the two behaviors coincide.
type VerifySink struct {
	alg     compress.Algorithm
	entries []verifyEntry
}

type verifyEntry struct {
	home mem.LineAddr
	n    uint8 // unit members (2 or 4)
	mask uint8 // bit i set => member i was installed and must verify
	blob [core.CompressedBudget]byte
	arch [4][mem.LineSize]byte // architectural snapshots of masked members
}

// VerifyCounts is one shard's drain result, merged into Stats by the
// caller. Both counters are commutative sums, so merge order cannot affect
// the final report.
type VerifyCounts struct {
	IntegrityErrs    uint64
	UndecodableUnits uint64
}

// NewVerifySink builds a sink decoding with alg (the controller's own
// compression algorithm).
func NewVerifySink(alg compress.Algorithm) *VerifySink {
	return &VerifySink{alg: alg}
}

// add records one compressed fill for deferred verification of the unit's
// n members starting at line first. Called from the fill path
// (single-goroutine), so plain appends suffice; entry memory is reused
// across Reset cycles. Snapshots read through ReadNoAlloc with the entry's
// own buffer as scratch, so verifying a member of a lazily-initialized,
// never-stored page does not materialize the page (the self-copy when the
// value is synthesized directly into the buffer is a no-op).
func (s *VerifySink) add(home, first mem.LineAddr, n int, mask uint8, blob []byte, arch *mem.Store) {
	s.entries = append(s.entries, verifyEntry{})
	e := &s.entries[len(s.entries)-1]
	e.home, e.n, e.mask = home, uint8(n), mask
	copy(e.blob[:], blob)
	for i := 0; i < n; i++ {
		if mask&(1<<uint(i)) != 0 {
			copy(e.arch[i][:], arch.ReadNoAlloc(first+mem.LineAddr(i), e.arch[i][:]))
		}
	}
}

// Pending returns the number of recorded, not-yet-drained units.
func (s *VerifySink) Pending() int { return len(s.entries) }

// DrainShard verifies every recorded unit owned by shard (of shards total,
// keyed on the unit's home address) and returns the counts. It only reads
// the entry slice, so distinct shards drain concurrently; the caller resets
// the sink after all shards finish.
func (s *VerifySink) DrainShard(shard, shards int) VerifyCounts {
	var counts VerifyCounts
	var bufs [4][compress.LineSize]byte
	var refs [4][]byte
	for i := range s.entries {
		e := &s.entries[i]
		if mem.ShardOf(e.home, shards) != shard {
			continue
		}
		n := int(e.n)
		for j := 0; j < n; j++ {
			refs[j] = bufs[j][:]
		}
		if err := compress.DecompressGroupInto(s.alg, refs[:n], e.blob[:], n); err != nil {
			counts.UndecodableUnits++
			continue
		}
		for j := 0; j < n; j++ {
			if e.mask&(1<<uint(j)) == 0 {
				continue
			}
			got, want := refs[j], e.arch[j][:]
			for k := range got {
				if got[k] != want[k] {
					counts.IntegrityErrs++
					break
				}
			}
		}
	}
	return counts
}

// Reset discards drained entries, keeping capacity for the next epoch.
func (s *VerifySink) Reset() { s.entries = s.entries[:0] }
