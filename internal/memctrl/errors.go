package memctrl

import (
	"errors"
	"fmt"

	"ptmc/internal/mem"
)

// The typed error taxonomy for memory-image soundness violations and
// controller degradation events. Every error VerifyImage reports wraps one
// of these sentinels, so callers (the fault campaign, tests) classify
// failures with errors.Is instead of string matching.
var (
	// ErrLITFull: the on-chip Line Inversion Table overflowed and re-keying
	// could not resolve the collision; the entry was spilled to the
	// memory-backed table (degraded but sound operation).
	ErrLITFull = errors.New("memctrl: line inversion table full")

	// ErrMarkerCollision: a line's data collided with its markers beyond
	// what inversion + re-keying could absorb.
	ErrMarkerCollision = errors.New("memctrl: persistent marker collision")

	// ErrUndecodable: a location classified as a compressed unit but its
	// payload did not decode.
	ErrUndecodable = errors.New("memctrl: undecodable compressed unit")

	// ErrUnitMisplaced: a compressed unit's marker appears at a location
	// that is not the unit's home.
	ErrUnitMisplaced = errors.New("memctrl: compressed unit not at its home")

	// ErrDoubleCovered: two locations both claim to serve the same line.
	ErrDoubleCovered = errors.New("memctrl: line served by two locations")

	// ErrStaleLIT: the LIT tracks a line whose stored image is not
	// actually inverted.
	ErrStaleLIT = errors.New("memctrl: LIT entry for non-inverted line")

	// ErrValueMismatch: a line decoded from the image differs from its
	// architectural value.
	ErrValueMismatch = errors.New("memctrl: decoded value differs from architectural")

	// ErrUncovered: an architecturally live line has no serving location
	// in the image (e.g. a tombstone planted over live data).
	ErrUncovered = errors.New("memctrl: line has no serving location in the image")
)

// VerifyError is the concrete error VerifyImage returns: the violated
// invariant (one of the sentinels above, reachable via errors.Is), the
// line it concerns, the location that serves (or fails to serve) it, and
// a human-readable detail.
type VerifyError struct {
	Line   mem.LineAddr // the affected cache line
	Loc    mem.LineAddr // the image location implicated
	Cause  error        // sentinel from the taxonomy above
	Detail string       // extra context ("2:1 unit", wrapped decode error, ...)
}

func (e *VerifyError) Error() string {
	msg := fmt.Sprintf("line %d (loc %d): %v", e.Line, e.Loc, e.Cause)
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

func (e *VerifyError) Unwrap() error { return e.Cause }

// verifyErr builds a VerifyError.
func verifyErr(line, loc mem.LineAddr, cause error, format string, args ...any) *VerifyError {
	return &VerifyError{Line: line, Loc: loc, Cause: cause, Detail: fmt.Sprintf(format, args...)}
}
