package memctrl

import "ptmc/internal/mem"

// beatPage holds the stored burst length (1-8 beats; 0 = never recorded,
// reads as a full 8-beat line) of every line in one allocation page.
type beatPage [mem.SlabLines]uint8

// beatStore maps each touched line to its stored burst length. It replaces
// the per-line map MemZip used to carry: array-backed pages mean the
// steady-state write path (dirty evictions re-recording a line's length) is
// one map read plus one byte store — no allocation — and the epoch engine's
// first-touch fan-out can record disjoint lines of a page from several
// shards at once without locks, because the page is pre-created serially
// (MemZip.BeginPageInit) and each line's slot is its own fixed-offset byte.
type beatStore struct {
	pages map[mem.LineAddr]*beatPage
}

func newBeatStore() beatStore {
	return beatStore{pages: make(map[mem.LineAddr]*beatPage)}
}

// page returns (creating if needed) the page holding line a. Creation
// mutates the map and is not concurrency-safe; parallel writers must have
// the page pre-created on the coordinating goroutine.
func (s *beatStore) page(a mem.LineAddr) *beatPage {
	base := a &^ mem.LineAddr(mem.SlabLines-1)
	p, ok := s.pages[base]
	if !ok {
		p = new(beatPage)
		s.pages[base] = p
	}
	return p
}

// set records line a's stored burst length (1-8 beats).
func (s *beatStore) set(a mem.LineAddr, beats int) {
	s.page(a)[int(a)&(mem.SlabLines-1)] = uint8(beats)
}

// get returns line a's stored burst length, defaulting to a full 8-beat
// burst for lines never recorded.
func (s *beatStore) get(a mem.LineAddr) int {
	p, ok := s.pages[a&^mem.LineAddr(mem.SlabLines-1)]
	if !ok {
		return 8
	}
	if b := p[int(a)&(mem.SlabLines-1)]; b != 0 {
		return int(b)
	}
	return 8
}
