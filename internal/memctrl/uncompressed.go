package memctrl

import (
	"ptmc/internal/cache"
	"ptmc/internal/dram"
	"ptmc/internal/mem"
)

// Uncompressed is the baseline memory system: every line lives at its own
// location; reads fetch one line, dirty evictions write one line, clean
// evictions are free.
type Uncompressed struct {
	base
}

// NewUncompressed builds the baseline controller.
func NewUncompressed(d *dram.DRAM, img, arch *mem.Store, llc LLC) *Uncompressed {
	return &Uncompressed{base: newBase("uncompressed", d, img, arch, llc)}
}

// InitLine implements Controller: memory holds the raw value.
func (u *Uncompressed) InitLine(a mem.LineAddr) {
	u.img.Write(a, u.arch.Read(a))
}

// InitLineReady implements ShardIniter: the baseline image is the raw
// value, so whatever was synthesized in place is already correct.
// NextLinePrefetch inherits it.
func (u *Uncompressed) InitLineReady(a mem.LineAddr, data []byte) bool {
	return true
}

// Read implements Controller.
func (u *Uncompressed) Read(core int, a mem.LineAddr, now int64, done Done) {
	u.issue(a, false, kDemandRead, now, func(c int64) {
		u.st.FillsUncompressed++
		u.checkIntegrity(a, u.img.Read(a))
		u.install(core, a, false, false, cache.Uncompressed, c)
		done(c)
	})
}

// Evict implements Controller.
func (u *Uncompressed) Evict(core int, e cache.Entry, now int64) {
	if !e.Dirty {
		return
	}
	u.img.Write(e.Tag, u.arch.Read(e.Tag))
	u.issue(e.Tag, true, kDirtyWrite, now, nil)
}

// NextLinePrefetch is the Table VI comparison: the uncompressed baseline
// plus a next-line prefetcher into L3. Unlike PTMC's free installs, each
// prefetch costs a full DRAM read.
type NextLinePrefetch struct {
	Uncompressed
}

// NewNextLinePrefetch builds the prefetching controller.
func NewNextLinePrefetch(d *dram.DRAM, img, arch *mem.Store, llc LLC) *NextLinePrefetch {
	p := &NextLinePrefetch{}
	p.base = newBase("nextline", d, img, arch, llc)
	return p
}

// Read implements Controller: demand fetch plus a next-line prefetch.
func (p *NextLinePrefetch) Read(core int, a mem.LineAddr, now int64, done Done) {
	p.Uncompressed.Read(core, a, now, done)
	next := a + 1
	if _, in := p.llc.Probe(next); in {
		return
	}
	// The prefetch target may be untouched memory; architecturally that
	// reads as zeros, which is fine — install the tag either way.
	p.issue(next, false, kPrefetchRead, now, func(c int64) {
		if _, in := p.llc.Probe(next); in {
			return // demand fill beat us
		}
		p.install(core, next, false, true, cache.Uncompressed, c)
	})
}
