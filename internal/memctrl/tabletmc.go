package memctrl

import (
	"ptmc/internal/cache"
	"ptmc/internal/core"
	"ptmc/internal/dram"
	"ptmc/internal/mem"
	"ptmc/internal/metadata"
)

// TableTMC is the conventional transparent-compression design PTMC is
// measured against (Figures 4, 5, 12): the same co-location scheme, but
// line status lives in a memory-resident metadata table with a 32 KB
// on-chip metadata cache. Every fill needs the CSI first — a metadata-cache
// miss serializes a DRAM metadata read in front of the data read, and dirty
// metadata evictions cost DRAM writes. Because metadata is authoritative,
// no markers or Marker-IL tombstones are needed, and the full 64-byte
// budget is available to compressed data.
type TableTMC struct {
	base
	meta *metadata.Table
}

// NewTableTMC builds the baseline; metaBase is the reserved region where
// the metadata table lives (from vm.System.ReservedBase), mcacheBytes is
// the on-chip metadata cache size (32 KB in the paper).
func NewTableTMC(d *dram.DRAM, img, arch *mem.Store, llc LLC,
	metaBase mem.LineAddr, mcacheBytes int) (*TableTMC, error) {
	mt, err := metadata.New(metaBase, mcacheBytes)
	if err != nil {
		return nil, err
	}
	return &TableTMC{base: newBase("table-tmc", d, img, arch, llc), meta: mt}, nil
}

// Meta exposes the metadata table (Figure 9's hit-rate curve).
func (t *TableTMC) Meta() *metadata.Table { return t.meta }

// InitLine implements Controller: lines start uncompressed; cold CSI
// already reads as Uncompressed, so only the image needs writing.
func (t *TableTMC) InitLine(a mem.LineAddr) {
	t.img.Write(a, t.arch.Read(a))
}

// InitLineReady implements ShardIniter: a first-touch table-TMC line lives
// uncompressed at its own address and the cold CSI table already reads as
// Uncompressed, so the raw bytes the engine synthesized in place are a
// complete initial image — InitLine's only work is the image write the
// engine has already performed, and no metadata state moves. Always true.
func (t *TableTMC) InitLineReady(a mem.LineAddr, data []byte) bool { return true }

// chargeMeta issues the DRAM traffic of one metadata-cache transaction and
// calls then once the required metadata (if any) has arrived.
func (t *TableTMC) chargeMeta(tr metadata.Traffic, now int64, then Done) {
	if tr.NeedWrite {
		t.issue(tr.WriteAddr, true, kMetadataWrite, now, nil)
	}
	if tr.NeedRead {
		t.issue(tr.ReadAddr, false, kMetadataRead, now, then)
		return
	}
	if then != nil {
		then(now)
	}
}

// Read implements Controller: metadata lookup first (possibly a serialized
// DRAM access), then the data access at the location the CSI names.
func (t *TableTMC) Read(core_ int, a mem.LineAddr, now int64, done Done) {
	level, tr := t.meta.Lookup(a)
	t.chargeMeta(tr, now, func(c int64) {
		home := core.HomeFor(a, level)
		t.issue(home, false, kDemandRead, c, func(c2 int64) {
			t.fill(core_, a, home, level, c2, done)
		})
	})
}

// fill decodes the unit at home and installs its members.
func (t *TableTMC) fill(core_ int, a, home mem.LineAddr, level cache.Level, now int64, done Done) {
	first, n := core.MembersSpan(home, level)
	if level == cache.Uncompressed {
		t.st.FillsUncompressed++
		t.checkIntegrity(a, t.img.Read(a))
		t.install(core_, a, false, false, cache.Uncompressed, now)
		done(now)
		return
	}
	lines, err := t.decodeGroup(t.img.Read(home), n)
	if err != nil {
		// Undecodable unit: a detected fault, not silent corruption. Count
		// the degradation and serve the architectural value as an
		// uncompressed fill — the PTMC taxonomy — so demand fills still sum
		// across the compressed/uncompressed categories under injection and
		// IntegrityErrs stays reserved for wrong *decoded* values.
		t.st.UndecodableUnits++
		t.st.FillsUncompressed++
		t.checkIntegrity(a, t.arch.Read(a))
		t.install(core_, a, false, false, cache.Uncompressed, now)
		done(now)
		return
	}
	t.st.FillsCompressed++
	c := now + t.decompLat
	for i := 0; i < n; i++ {
		m := first + mem.LineAddr(i)
		if _, in := t.llc.Probe(m); in {
			continue
		}
		t.checkIntegrity(m, lines[i])
		if m == a {
			t.install(core_, m, false, false, level, c)
		} else {
			t.st.FreeInstalls++
			t.install(core_, m, false, true, level, c)
		}
	}
	done(c)
}

// Evict implements Controller: the same ganged-eviction compression path as
// PTMC, but stale locations need no tombstones (metadata is authoritative)
// and every CSI change costs metadata-cache traffic.
func (t *TableTMC) Evict(core_ int, e cache.Entry, now int64) {
	units, _ := t.planEviction(e, true, mem.LineSize)
	for _, u := range units {
		changedLevel := false
		for _, m := range u.members {
			if m.oldLevel != u.level {
				changedLevel = true
			}
		}
		if u.unchanged {
			continue
		}
		k := kDirtyWrite
		if !u.anyDirty {
			k = kCleanCompWrite
		}
		switch u.level {
		case cache.Comp4, cache.Comp2:
			if u.level == cache.Comp4 {
				t.st.Groups4++
			} else {
				t.st.Groups2++
			}
			var img [mem.LineSize]byte
			copy(img[:], u.blob)
			t.img.Write(u.home, img[:])
		default:
			t.st.SinglesWrit++
			t.img.Write(u.home, t.archLineSlot(u.home, 0))
		}
		t.issue(u.home, true, k, now, nil)
		if changedLevel {
			for _, m := range u.members {
				tr := t.meta.Update(m.addr, u.level)
				t.chargeMeta(tr, now, nil)
			}
		}
	}
}

// OnDemandHit counts useful free prefetches (parity with PTMC reporting).
func (t *TableTMC) OnDemandHit(core_ int, a mem.LineAddr) {
	t.st.UsefulFreePf++
}
