package memctrl

import (
	"testing"

	"ptmc/internal/cache"
	"ptmc/internal/dram"
	"ptmc/internal/mem"
	"ptmc/internal/obs"
)

// benchRig builds a PTMC controller with a small LLC, primed so that
// steady-state read misses of the benchmark footprint exercise the full
// decode path (markers, LLP, decompression) without first-touch setup.
type benchRig struct {
	llc  *testLLC
	ctrl *PTMC
	now  int64
}

func newBenchRig(b testing.TB, lines int) *benchRig {
	b.Helper()
	d, err := dram.New(dram.DDR4())
	if err != nil {
		b.Fatal(err)
	}
	c, err := cache.New(cache.Config{SizeBytes: 64 * 64, Assoc: 4})
	if err != nil {
		b.Fatal(err)
	}
	llc := &testLLC{c: c}
	img, arch := mem.NewStore(), mem.NewStore()
	p := NewPTMC(d, img, arch, llc, 1)
	llc.ctrl = p
	r := &benchRig{llc: llc, ctrl: p}

	// Prime: initialize and write back every line compressed, then empty
	// the LLC so each benchmark read is a miss against compressed memory.
	done := func(int64) {}
	for i := 0; i < lines; i++ {
		a := mem.LineAddr(i)
		arch.Write(a, compressibleLine(byte(i)))
		p.InitLine(a)
		p.Read(0, a, r.now, done)
		r.drain(b)
		if e, ok := llc.Probe(a); ok {
			e.Dirty = true
		}
	}
	r.flush(b)
	return r
}

func (r *benchRig) drain(b testing.TB) {
	for i := 0; r.ctrl.Pending() > 0; i++ {
		r.now += 4
		r.ctrl.Tick(r.now)
		if i > 1_000_000 {
			b.Fatal("controller did not drain")
		}
	}
}

func (r *benchRig) flush(b testing.TB) {
	for {
		var victim cache.Entry
		found := false
		r.llc.c.ForEachValid(func(e *cache.Entry) {
			if !found {
				victim, found = *e, true
			}
		})
		if !found {
			return
		}
		r.llc.Drop(victim.Tag)
		r.ctrl.Evict(int(victim.Core), victim, r.now)
		r.drain(b)
	}
}

// BenchmarkPTMCReadMiss measures the controller's steady-state read-miss
// hot path — Read, queue, DRAM burst, decode, fill — with instrumentation
// disabled (the shipping default) and with a tracer attached. Run with
// -benchmem: the "tracer=off" case is the allocation budget the rest of
// the repo holds the hot path to (see TestDisabledTracerReadPathAllocs).
func BenchmarkPTMCReadMiss(b *testing.B) {
	const lines = 64
	for _, traced := range []struct {
		name string
		tr   *obs.Tracer
	}{
		{"tracer=off", nil},
		{"tracer=on", obs.NewTracer(1 << 10)},
	} {
		b.Run(traced.name, func(b *testing.B) {
			r := newBenchRig(b, lines)
			r.ctrl.SetTracer(traced.tr)
			done := func(int64) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := mem.LineAddr(i % lines)
				r.ctrl.Read(0, a, r.now, done)
				r.drain(b)
				r.llc.Drop(a) // clean drop: next iteration misses again
				traced.tr.Reset()
			}
		})
	}
}

// TestDisabledTracerReadPathAllocs pins the read-miss hot path's
// allocation budget: with instrumentation disabled (nil tracer, the
// shipping default) a steady-state miss may allocate only the async
// completion closures the callback design requires (the probe bookkeeping,
// candidate lists, and eviction planning are allocation-free; see
// alloc_test.go) — and attaching a tracer must not add a single allocation
// on top, because Emit appends into a pre-sized buffer.
func TestDisabledTracerReadPathAllocs(t *testing.T) {
	const lines = 64
	measure := func(tr *obs.Tracer) float64 {
		r := newBenchRig(t, lines)
		r.ctrl.SetTracer(tr)
		done := func(int64) {}
		i := 0
		// Warm the steady state (fill buffers recycle, maps settle).
		for ; i < 4*lines; i++ {
			a := mem.LineAddr(i % lines)
			r.ctrl.Read(0, a, r.now, done)
			r.drain(t)
			r.llc.Drop(a)
			tr.Reset()
		}
		return testing.AllocsPerRun(2*lines, func() {
			a := mem.LineAddr(i % lines)
			i++
			r.ctrl.Read(0, a, r.now, done)
			r.drain(t)
			r.llc.Drop(a)
			tr.Reset()
		})
	}
	off := measure(nil)
	on := measure(obs.NewTracer(1 << 10))
	if off > 4 {
		t.Errorf("disabled-instrumentation read miss: %.1f allocs/op, budget 4 (completion closures only)", off)
	}
	if on > off {
		t.Errorf("attaching a tracer added allocations: %.1f allocs/op vs %.1f disabled", on, off)
	}
}
