package memctrl

import (
	"testing"

	"ptmc/internal/cache"
	"ptmc/internal/dram"
	"ptmc/internal/mem"
)

// planRig builds a bare base (no controller) around a small LLC for direct
// planner tests.
func planRig(t *testing.T) (*base, *testLLC) {
	t.Helper()
	d, err := dram.New(dram.DDR4())
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(cache.Config{SizeBytes: 64 * 64, Assoc: 4})
	if err != nil {
		t.Fatal(err)
	}
	llc := &testLLC{c: c}
	b := newBase("test", d, mem.NewStore(), mem.NewStore(), llc)
	return &b, llc
}

// setArch stores a value in the architectural store.
func setArch(b *base, a mem.LineAddr, val []byte) { b.arch.Write(a, val) }

func TestPlanQuadFromFourResidents(t *testing.T) {
	b, llc := planRig(t)
	for i := 0; i < 4; i++ {
		setArch(b, mem.LineAddr(100+i), compressibleLine(byte(i)))
		llc.c.Install(mem.LineAddr(100+i), cache.Entry{Dirty: i == 0})
	}
	evicted, _ := llc.c.Invalidate(100)
	units, evictees := b.planEviction(evicted, true, 60)
	if len(units) != 1 || units[0].level != cache.Comp4 || units[0].home != 100 {
		t.Fatalf("units = %+v", units)
	}
	if !units[0].anyDirty || units[0].unchanged {
		t.Error("dirty member must force a write")
	}
	if len(evictees) != 4 {
		t.Errorf("evictees = %d, want 4 (ganged)", len(evictees))
	}
	for i := 1; i < 4; i++ {
		if _, in := llc.c.Probe(mem.LineAddr(100 + i)); in {
			t.Errorf("member %d not gang-dropped", i)
		}
	}
	// Invalidates: locations 101..103 held valid data before.
	stale := b.staleLocations(units, evictees)
	if len(stale) != 3 {
		t.Errorf("stale locations = %v, want 3", stale)
	}
}

func TestPlanPairWhenQuadDoesNotFit(t *testing.T) {
	b, llc := planRig(t)
	setArch(b, 200, compressibleLine(1))
	setArch(b, 201, compressibleLine(2))
	setArch(b, 202, incompressibleLine(1))
	setArch(b, 203, incompressibleLine(2))
	for i := 0; i < 4; i++ {
		llc.c.Install(mem.LineAddr(200+i), cache.Entry{Dirty: true})
	}
	evicted, _ := llc.c.Invalidate(200)
	units, _ := b.planEviction(evicted, true, 60)
	// Pair (200,201) compresses; 202, 203 stay in the LLC untouched —
	// they are not part of 200's old (uncompressed) unit.
	if len(units) != 1 || units[0].level != cache.Comp2 {
		t.Fatalf("units = %+v", units)
	}
	if _, in := llc.c.Probe(202); !in {
		t.Error("unrelated pair must not be gang-dropped")
	}
	if _, in := llc.c.Probe(201); in {
		t.Error("pair partner must be pulled out of the LLC")
	}
}

func TestPlanSinglesWhenNotCompressing(t *testing.T) {
	b, llc := planRig(t)
	setArch(b, 300, compressibleLine(1))
	setArch(b, 301, compressibleLine(2))
	llc.c.Install(300, cache.Entry{Dirty: true})
	llc.c.Install(301, cache.Entry{Dirty: true})
	evicted, _ := llc.c.Invalidate(300)
	units, _ := b.planEviction(evicted, false, 60)
	// Compression disabled: 300 goes back alone; 301 stays resident (it
	// was not part of 300's old unit).
	if len(units) != 1 || units[0].level != cache.Uncompressed || units[0].home != 300 {
		t.Fatalf("units = %+v", units)
	}
	if _, in := llc.c.Probe(301); !in {
		t.Error("disabled compression must not gang-drop the neighbor")
	}
}

func TestPlanDisabledCleanCompressedUnitIsLeftAlone(t *testing.T) {
	// Dynamic-PTMC disabled: clean eviction of an intact 2:1 pair writes
	// nothing (stop compressing != decompress).
	b, llc := planRig(t)
	setArch(b, 400, compressibleLine(1))
	setArch(b, 401, compressibleLine(2))
	llc.c.Install(400, cache.Entry{Level: cache.Comp2})
	llc.c.Install(401, cache.Entry{Level: cache.Comp2})
	evicted, _ := llc.c.Invalidate(400)
	units, evictees := b.planEviction(evicted, false, 60)
	if len(units) != 1 || !units[0].unchanged {
		t.Fatalf("units = %+v, want one unchanged unit", units)
	}
	if len(b.staleLocations(units, evictees)) != 0 {
		t.Error("unchanged unit must not create tombstones")
	}
	if _, in := llc.c.Probe(401); in {
		t.Error("ganged eviction still applies to the old unit")
	}
}

func TestPlanDisabledDirtyMaintainsFittingUnit(t *testing.T) {
	// Disabled + dirty, but the new data still fits: the unit is
	// re-sealed in place — one write, no tombstones, no breakup.
	b, llc := planRig(t)
	setArch(b, 404, compressibleLine(1))
	setArch(b, 405, compressibleLine(2))
	llc.c.Install(404, cache.Entry{Level: cache.Comp2, Dirty: true})
	llc.c.Install(405, cache.Entry{Level: cache.Comp2})
	evicted, _ := llc.c.Invalidate(404)
	units, evictees := b.planEviction(evicted, false, 60)
	if len(units) != 1 || units[0].level != cache.Comp2 || !units[0].anyDirty {
		t.Fatalf("units = %+v, want one re-sealed pair", units)
	}
	if units[0].blob == nil {
		t.Error("re-sealed unit needs its payload")
	}
	if n := len(b.staleLocations(units, evictees)); n != 0 {
		t.Errorf("stale locations = %d, want 0", n)
	}
}

func TestPlanDisabledDirtyBreaksWhenUnfit(t *testing.T) {
	// Disabled + dirty + no longer fits: the unit must break into
	// singles.
	b, llc := planRig(t)
	setArch(b, 404, incompressibleLine(1)) // dirtied incompressible
	setArch(b, 405, compressibleLine(2))
	llc.c.Install(404, cache.Entry{Level: cache.Comp2, Dirty: true})
	llc.c.Install(405, cache.Entry{Level: cache.Comp2})
	evicted, _ := llc.c.Invalidate(404)
	units, evictees := b.planEviction(evicted, false, 60)
	if len(units) != 2 {
		t.Fatalf("units = %+v, want two singles", units)
	}
	for _, u := range units {
		if u.level != cache.Uncompressed {
			t.Errorf("unit level = %v, want uncompressed", u.level)
		}
	}
	if n := len(b.staleLocations(units, evictees)); n != 0 {
		t.Errorf("stale locations = %d, want 0", n)
	}
}

func TestPlanGhostMemberPreserved(t *testing.T) {
	// A member of the old compressed unit is not in the LLC (ghost): the
	// rewrite must still give it a home.
	b, llc := planRig(t)
	setArch(b, 500, compressibleLine(1))
	setArch(b, 501, incompressibleLine(7)) // pair became incompressible
	llc.c.Install(500, cache.Entry{Level: cache.Comp2, Dirty: true})
	// 501 NOT installed: ghost.
	evicted, _ := llc.c.Invalidate(500)
	units, _ := b.planEviction(evicted, true, 60)
	homes := map[mem.LineAddr]bool{}
	for _, u := range units {
		homes[u.home] = true
	}
	if !homes[500] || !homes[501] {
		t.Fatalf("ghost member lost its home: units=%+v", units)
	}
}

func TestPlanUnchangedCleanPairSkipsWrite(t *testing.T) {
	b, llc := planRig(t)
	setArch(b, 600, compressibleLine(1))
	setArch(b, 601, compressibleLine(2))
	llc.c.Install(600, cache.Entry{Level: cache.Comp2})
	llc.c.Install(601, cache.Entry{Level: cache.Comp2})
	evicted, _ := llc.c.Invalidate(600)
	units, _ := b.planEviction(evicted, true, 60)
	if len(units) != 1 || !units[0].unchanged {
		t.Fatalf("clean re-eviction of same-level pair should be unchanged: %+v", units)
	}
}

func TestPlanOpportunisticQuadPullsOtherPair(t *testing.T) {
	// Pair (700,701) compressed in memory; (702,703) resident
	// uncompressed. Evicting 700 should form a 4:1 quad, pulling all.
	b, llc := planRig(t)
	for i := 0; i < 4; i++ {
		setArch(b, mem.LineAddr(700+i), compressibleLine(byte(i)))
	}
	llc.c.Install(700, cache.Entry{Level: cache.Comp2, Dirty: true})
	llc.c.Install(701, cache.Entry{Level: cache.Comp2})
	llc.c.Install(702, cache.Entry{})
	llc.c.Install(703, cache.Entry{})
	evicted, _ := llc.c.Invalidate(700)
	units, evictees := b.planEviction(evicted, true, 60)
	if len(units) != 1 || units[0].level != cache.Comp4 {
		t.Fatalf("units = %+v, want one quad", units)
	}
	if len(evictees) != 4 {
		t.Errorf("evictees = %d, want 4", len(evictees))
	}
	// 702's own location held valid data and is not a home now.
	stale := b.staleLocations(units, evictees)
	want := map[mem.LineAddr]bool{702: true, 703: true}
	for _, s := range stale {
		if !want[s] {
			t.Errorf("unexpected tombstone at %d", s)
		}
		delete(want, s)
	}
	if len(want) != 0 {
		t.Errorf("missing tombstones: %v", want)
	}
}

func TestCoalescedReadsShareOneBurst(t *testing.T) {
	r := newUncompressedRig(t)
	r.ctrl.InitLine(40)
	r.arch.Write(40, compressibleLine(1))
	r.ctrl.InitLine(40)

	b := &r.ctrl.(*Uncompressed).base
	done := 0
	for i := 0; i < 3; i++ {
		b.issue(40, false, kDemandRead, r.now, func(int64) { done++ })
	}
	r.drain()
	if done != 3 {
		t.Fatalf("completions = %d, want 3", done)
	}
	if b.st.DemandReads != 1 {
		t.Errorf("DRAM bursts = %d, want 1 (coalesced)", b.st.DemandReads)
	}
	if b.st.CoalescedReads != 2 {
		t.Errorf("coalesced = %d, want 2", b.st.CoalescedReads)
	}
}

func TestWritesDoNotCoalesce(t *testing.T) {
	r := newUncompressedRig(t)
	b := &r.ctrl.(*Uncompressed).base
	b.issue(41, true, kDirtyWrite, r.now, nil)
	b.issue(41, true, kDirtyWrite, r.now, nil)
	r.drain()
	if b.st.DirtyWrites != 2 {
		t.Errorf("writes = %d, want 2 (no write coalescing)", b.st.DirtyWrites)
	}
}
