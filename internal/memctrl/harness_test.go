package memctrl

import (
	"bytes"
	"testing"

	"ptmc/internal/cache"
	"ptmc/internal/dram"
	"ptmc/internal/mem"
)

// testLLC adapts a real cache.Cache to the LLC interface and routes victims
// back into the controller, exactly as the simulator does.
type testLLC struct {
	c    *cache.Cache
	ctrl Controller
	now  int64
}

func (l *testLLC) Probe(a mem.LineAddr) (*cache.Entry, bool) { return l.c.Probe(a) }
func (l *testLLC) SetIndex(a mem.LineAddr) int               { return l.c.SetIndex(a) }
func (l *testLLC) NumSets() int                              { return l.c.NumSets() }
func (l *testLLC) Drop(a mem.LineAddr) (cache.Entry, bool)   { return l.c.Invalidate(a) }

func (l *testLLC) InstallFill(core int, a mem.LineAddr, e cache.Entry, now int64) {
	victim, _ := l.c.Install(a, e)
	if victim.Valid {
		l.ctrl.Evict(int(victim.Core), victim, now)
	}
}

// rig bundles a controller with its environment.
type rig struct {
	t    *testing.T
	d    *dram.DRAM
	img  *mem.Store
	arch *mem.Store
	llc  *testLLC
	ctrl Controller
	now  int64
}

// newRig builds a rig. build receives (dram, img, arch, llc) and returns
// the controller under test. llcBytes sizes the testing LLC.
func newRig(t *testing.T, llcBytes int,
	build func(d *dram.DRAM, img, arch *mem.Store, llc LLC) Controller) *rig {
	t.Helper()
	d, err := dram.New(dram.DDR4())
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(cache.Config{SizeBytes: llcBytes, Assoc: 4})
	if err != nil {
		t.Fatal(err)
	}
	llc := &testLLC{c: c}
	r := &rig{t: t, d: d, img: mem.NewStore(), arch: mem.NewStore(), llc: llc}
	r.ctrl = build(d, r.img, r.arch, llc)
	llc.ctrl = r.ctrl
	return r
}

// drain ticks until the controller has no outstanding work.
func (r *rig) drain() {
	for i := 0; r.ctrl.Pending() > 0; i++ {
		r.now += 4
		r.ctrl.Tick(r.now)
		if i > 1_000_000 {
			r.t.Fatal("controller did not drain")
		}
	}
}

// write models a CPU store: sets the architectural value, ensures the line
// is resident (reading it if needed), and marks it dirty.
func (r *rig) write(core int, a mem.LineAddr, val []byte) {
	// Write-allocate: fetch the old value first, then store over it.
	if _, ok := r.llc.Probe(a); !ok {
		r.read(core, a)
	}
	r.arch.Write(a, val)
	e, ok := r.llc.Probe(a)
	if !ok {
		r.t.Fatal("line absent after fill")
	}
	e.Dirty = true
}

// read models a demand load through the LLC, returning the value the CPU
// observes.
func (r *rig) read(core int, a mem.LineAddr) []byte {
	if !r.arch.Touched(a) {
		// First touch: architectural zeros, image initialized.
		r.arch.Write(a, make([]byte, mem.LineSize))
		r.ctrl.InitLine(a)
	}
	if _, ok := r.llc.Probe(a); ok {
		return r.arch.Read(a)
	}
	doneAt := int64(-1)
	r.ctrl.Read(core, a, r.now, func(c int64) { doneAt = c })
	r.drain()
	if doneAt < 0 {
		r.t.Fatal("read never completed")
	}
	return r.arch.Read(a)
}

// evict forces a specific line out of the LLC through the controller.
func (r *rig) evict(a mem.LineAddr) {
	if e, ok := r.llc.Drop(a); ok {
		r.ctrl.Evict(int(e.Core), e, r.now)
		r.drain()
	}
}

// flushAll evicts every resident line.
func (r *rig) flushAll() {
	for {
		var victim cache.Entry
		found := false
		r.llc.c.ForEachValid(func(e *cache.Entry) {
			if !found {
				victim, found = *e, true
			}
		})
		if !found {
			return
		}
		r.llc.Drop(victim.Tag)
		r.ctrl.Evict(int(victim.Core), victim, r.now)
		r.drain()
	}
}

// compressibleLine returns a 64-byte line that compresses very well.
func compressibleLine(tag byte) []byte {
	l := make([]byte, mem.LineSize)
	for i := 0; i < mem.LineSize; i += 4 {
		l[i] = tag
	}
	return l
}

// incompressibleLine returns a line that will not compress.
func incompressibleLine(seed uint64) []byte {
	l := make([]byte, mem.LineSize)
	h := seed
	for i := range l {
		h = h*6364136223846793005 + 1442695040888963407
		l[i] = byte(h >> 33)
	}
	return l
}

func wantLine(t *testing.T, got, want []byte, msg string) {
	t.Helper()
	if !bytes.Equal(got, want) {
		t.Fatalf("%s:\n got %x\nwant %x", msg, got[:16], want[:16])
	}
}
