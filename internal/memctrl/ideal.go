package memctrl

import (
	"ptmc/internal/dram"
	"ptmc/internal/mem"
)

// NewIdealTMC builds the paper's idealized compressed memory (Figures 5
// and 15): the PTMC datapath with an oracle for line location (no LLP, no
// mispredict re-reads, no metadata accesses) and free maintenance (clean
// compressed writebacks and Marker-IL invalidates update the memory image
// without consuming DRAM bandwidth). It is the upper bound a real TMC
// design approaches: all of compression's bandwidth benefit, none of its
// overheads.
func NewIdealTMC(d *dram.DRAM, img, arch *mem.Store, llc LLC) *PTMC {
	return NewPTMC(d, img, arch, llc, 0, withOracle())
}
