package memctrl

import (
	"errors"
	"testing"

	"ptmc/internal/cache"
	"ptmc/internal/core"
	"ptmc/internal/dram"
	"ptmc/internal/mem"
)

// TestVerifyImageViolationTaxonomy plants one specific corruption per
// taxonomy sentinel into an otherwise healthy image and asserts VerifyImage
// reports exactly that typed error. Every branch of the verifier is pinned
// here: a refactor that silently drops a check fails the matching row.
func TestVerifyImageViolationTaxonomy(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, r *rig, p *PTMC)
		want    error
	}{
		{
			name: "unit-not-at-home",
			want: ErrUnitMisplaced,
			corrupt: func(t *testing.T, r *rig, p *PTMC) {
				// A 4:1 marker sealed at a location whose group base it is not.
				sealed := p.Markers().SealCompressed(101, make([]byte, 8), true)
				r.img.Write(101, sealed[:])
			},
		},
		{
			name: "undecodable-unit",
			want: ErrUndecodable,
			corrupt: func(t *testing.T, r *rig, p *PTMC) {
				// A valid 4:1 marker over garbage that cannot decode.
				blob := make([]byte, core.CompressedBudget)
				for i := range blob {
					blob[i] = 0xFF
				}
				sealed := p.Markers().SealCompressed(100, blob, true)
				r.img.Write(100, sealed[:])
			},
		},
		{
			name: "double-covered-line",
			want: ErrDoubleCovered,
			corrupt: func(t *testing.T, r *rig, p *PTMC) {
				// 301 is covered by the pair at 300; planting plain data at
				// 301 makes two locations serve it.
				r.write(0, 300, compressibleLine(1))
				r.write(0, 301, compressibleLine(2))
				r.evict(300)
				if _, hit := r.llc.Probe(301); hit {
					r.llc.Drop(301)
				}
				r.img.Write(301, r.arch.Read(301))
			},
		},
		{
			name: "stale-lit-entry",
			want: ErrStaleLIT,
			corrupt: func(t *testing.T, r *rig, p *PTMC) {
				// LIT claims 400 is inverted; its image is plain data.
				r.write(0, 400, incompressibleLine(4))
				r.evict(400)
				p.LIT().Insert(400)
			},
		},
		{
			name: "tombstone-over-live-data",
			want: ErrUncovered,
			corrupt: func(t *testing.T, r *rig, p *PTMC) {
				// 500 is live (non-zero architectural value, not resident)
				// but its only image location becomes a tombstone: the value
				// is unreachable.
				r.write(0, 500, incompressibleLine(5))
				r.evict(500)
				il := p.Markers().MarkerIL(500)
				r.img.Write(500, il[:])
			},
		},
		{
			name: "value-mismatch",
			want: ErrValueMismatch,
			corrupt: func(t *testing.T, r *rig, p *PTMC) {
				// Flip a payload byte of an uncompressed single: the class
				// is unchanged but the decoded value is wrong.
				r.write(0, 600, incompressibleLine(6))
				r.evict(600)
				data := append([]byte(nil), r.img.Read(600)...)
				data[10] ^= 0x01
				r.img.Write(600, data)
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := newPTMCRig(t)
			p := r.ctrl.(*PTMC)
			// Healthy background state so the verifier has real work.
			r.write(0, 100, compressibleLine(10))
			r.write(0, 102, incompressibleLine(11))
			r.evict(100)
			r.evict(102)
			if _, err := p.VerifyImage(r.llcResident); err != nil {
				t.Fatalf("rig unhealthy before corruption: %v", err)
			}

			tc.corrupt(t, r, p)

			_, err := p.VerifyImage(r.llcResident)
			if err == nil {
				t.Fatalf("verifier missed the %s corruption", tc.name)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(err, %v)", err, tc.want)
			}
			var verr *VerifyError
			if !errors.As(err, &verr) {
				t.Fatalf("error %v is not a *VerifyError", err)
			}
			if verr.Cause != tc.want {
				t.Errorf("VerifyError.Cause = %v, want %v", verr.Cause, tc.want)
			}

			// Scrub must repair every image-level corruption (the stale LIT
			// entry is cleared by the scrub's own LIT maintenance).
			p.Scrub(verr.Loc)
			if tc.name == "double-covered-line" || tc.name == "unit-not-at-home" {
				// These planted state in a second group too.
				p.Scrub(300)
				p.Scrub(100)
			}
			if _, err := p.VerifyImage(r.llcResident); err != nil {
				t.Errorf("Scrub did not repair %s: %v", tc.name, err)
			}
		})
	}
}

// TestTableTMCUndecodableFillTaxonomy plants an undecodable compressed
// unit in a table-TMC image and reads through it. The decode failure is a
// detected fault the controller survives, so it must follow the PTMC
// degradation taxonomy: count UndecodableUnits (not IntegrityErrs, which
// is reserved for wrong decoded values) and serve the architectural value
// as an uncompressed fill, keeping demand fills summable across the
// compressed/uncompressed categories. An earlier version bumped
// IntegrityErrs and installed at the compressed level without counting the
// fill anywhere.
func TestTableTMCUndecodableFillTaxonomy(t *testing.T) {
	r := newRig(t, 64*64, func(d *dram.DRAM, img, arch *mem.Store, llc LLC) Controller {
		c, err := NewTableTMC(d, img, arch, llc, 1<<30, 32<<10)
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
	tt := r.ctrl.(*TableTMC)

	// Realize a 2:1 pair at 300 so the CSI names a compressed home.
	r.write(0, 300, compressibleLine(1))
	r.write(0, 301, compressibleLine(2))
	r.evict(300)
	if tt.Meta().Peek(301) != cache.Comp2 {
		t.Fatal("rig did not realize a 2:1 pair")
	}
	for _, a := range []mem.LineAddr{300, 301} {
		if _, in := r.llc.Probe(a); in {
			r.llc.Drop(a)
		}
	}

	// Corrupt the unit's payload so it cannot decode.
	garbage := make([]byte, mem.LineSize)
	for i := range garbage {
		garbage[i] = 0xFF
	}
	r.img.Write(300, garbage)

	st := r.ctrl.Stats()
	fillsBefore := st.FillsCompressed + st.FillsUncompressed
	uncompBefore := st.FillsUncompressed
	got := r.read(0, 301)
	wantLine(t, got, compressibleLine(2), "architectural fallback value")

	if st.UndecodableUnits != 1 {
		t.Errorf("UndecodableUnits = %d, want 1", st.UndecodableUnits)
	}
	if st.IntegrityErrs != 0 {
		t.Errorf("IntegrityErrs = %d, want 0 (a detected decode failure is a degradation, not silent corruption)",
			st.IntegrityErrs)
	}
	if st.FillsUncompressed != uncompBefore+1 {
		t.Errorf("FillsUncompressed = %d, want %d: the fallback fill must be counted", st.FillsUncompressed, uncompBefore+1)
	}
	if sum := st.FillsCompressed + st.FillsUncompressed; sum != fillsBefore+1 {
		t.Errorf("fills no longer sum across categories: %d before, %d after one demand fill", fillsBefore, sum)
	}
	if e, in := r.llc.Probe(301); !in {
		t.Error("fallback fill not installed")
	} else if e.Level != cache.Uncompressed {
		t.Errorf("fallback installed at level %v, want Uncompressed", e.Level)
	}
	if st.Degradations() != 1 {
		t.Errorf("Degradations() = %d, want 1", st.Degradations())
	}
}

// TestVerifyErrorUnwrap pins the error plumbing itself.
func TestVerifyErrorUnwrap(t *testing.T) {
	e := verifyErr(7, 4, ErrUndecodable, "level %d", 2)
	if !errors.Is(e, ErrUndecodable) {
		t.Error("verifyErr result does not unwrap to its sentinel")
	}
	if e.Line != 7 || e.Loc != 4 {
		t.Errorf("Line/Loc = %d/%d, want 7/4", e.Line, e.Loc)
	}
	if e.Error() == "" || e.Detail == "" {
		t.Error("empty rendering")
	}
}
