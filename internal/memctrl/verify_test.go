package memctrl

import (
	"math/rand"
	"testing"

	"ptmc/internal/mem"
)

// llcResident reports residency in the testing LLC.
func (r *rig) llcResident(a mem.LineAddr) bool {
	_, in := r.llc.Probe(a)
	return in
}

func TestVerifyImageCleanSystem(t *testing.T) {
	r := newPTMCRig(t)
	p := r.ctrl.(*PTMC)
	r.write(0, 100, compressibleLine(1))
	r.write(0, 101, compressibleLine(2))
	r.evict(100)
	r.write(0, 104, incompressibleLine(1))
	r.evict(104)
	n, err := p.VerifyImage(r.llcResident)
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Errorf("verified %d lines, want >= 3", n)
	}
}

func TestVerifyImageDetectsCorruption(t *testing.T) {
	r := newPTMCRig(t)
	p := r.ctrl.(*PTMC)
	r.write(0, 200, compressibleLine(1))
	r.write(0, 201, compressibleLine(2))
	r.evict(200)
	// Corrupt the architectural store so decode mismatches.
	r.arch.Write(201, incompressibleLine(9))
	if _, err := p.VerifyImage(r.llcResident); err == nil {
		t.Error("verifier should detect the value mismatch")
	}
}

func TestVerifyImageDetectsAmbiguity(t *testing.T) {
	r := newPTMCRig(t)
	p := r.ctrl.(*PTMC)
	r.write(0, 300, compressibleLine(1))
	r.write(0, 301, compressibleLine(2))
	r.evict(300) // 2:1 at 300, tombstone at 301
	// Plant stale-looking uncompressed data at 301 (no tombstone): 301 is
	// now served both by the pair at 300 and by itself.
	r.img.Write(301, r.arch.Read(301))
	if _, err := p.VerifyImage(r.llcResident); err == nil {
		t.Error("verifier should detect double-served line")
	}
}

func TestVerifyImageDetectsBogusLITEntry(t *testing.T) {
	r := newPTMCRig(t)
	p := r.ctrl.(*PTMC)
	r.write(0, 400, compressibleLine(3))
	r.evict(400)
	p.LIT().Insert(400) // 400's image is not inverted
	if _, err := p.VerifyImage(r.llcResident); err == nil {
		t.Error("verifier should reject a LIT entry for a non-inverted line")
	}
}

// TestVerifyImageUnderRandomTraffic runs randomized traffic through PTMC
// (static and dynamic) and verifies the whole memory image at checkpoints
// and at the end — the §IV-C soundness argument as an executable sweep.
func TestVerifyImageUnderRandomTraffic(t *testing.T) {
	for _, dyn := range []bool{false, true} {
		name := "static"
		opts := []PTMCOption{}
		if dyn {
			name = "dynamic"
			opts = append(opts, WithDynamic(2, 0.05, true))
		}
		t.Run(name, func(t *testing.T) {
			r := newPTMCRig(t, opts...)
			p := r.ctrl.(*PTMC)
			rng := rand.New(rand.NewSource(11))
			for op := 0; op < 3000; op++ {
				a := mem.LineAddr(rng.Intn(512))
				switch rng.Intn(4) {
				case 0, 1:
					if rng.Intn(2) == 0 {
						r.write(int(a)%2, a, compressibleLine(byte(rng.Intn(250))))
					} else {
						r.write(int(a)%2, a, incompressibleLine(rng.Uint64()))
					}
				case 2:
					r.read(int(a)%2, a)
				case 3:
					r.evict(a)
				}
				if op%500 == 499 {
					if _, err := p.VerifyImage(r.llcResident); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			r.flushAll()
			n, err := p.VerifyImage(nil) // nothing resident: verify all
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Error("nothing verified")
			}
			if p.Stats().IntegrityErrs != 0 {
				t.Error("integrity errors")
			}
		})
	}
}
