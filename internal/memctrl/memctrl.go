// Package memctrl implements the memory-controller schemes the paper
// evaluates, from the uncompressed baseline to Dynamic-PTMC:
//
//	Uncompressed      — baseline everything is normalized to
//	NextLinePrefetch  — Table VI's comparison point
//	IdealTMC          — PTMC with oracle location and free maintenance
//	TableTMC          — TMC with a memory-resident metadata table + cache
//	MemZip            — variable-burst TMC on non-commodity DIMMs (§VII)
//	PTMC              — inline markers + LLP (static, always compress)
//	DynamicPTMC       — PTMC + set-sampled cost/benefit gating
//
// Every scheme moves real bytes: the DRAM image (compressed blobs, markers,
// inverted lines, Marker-IL tombstones) is materialized in a sparse store
// and decoded on every fill, so correctness is checked, not assumed.
package memctrl

import (
	"fmt"

	"ptmc/internal/cache"
	"ptmc/internal/compress"
	"ptmc/internal/dram"
	"ptmc/internal/mem"
	"ptmc/internal/obs"
)

// DecompressCycles is the default decompression latency added to fills of
// compressed data (Table I methodology: 5 cycles). Override per controller
// with SetDecompressCycles for sensitivity studies.
const DecompressCycles = 5

// Done is a completion callback carrying the CPU cycle of completion.
type Done func(now int64)

// LLC is the controller's view of the shared L3: the controller installs
// fills (and free prefetches) and is called back on evictions.
type LLC interface {
	// Probe checks residency without touching LRU.
	Probe(a mem.LineAddr) (*cache.Entry, bool)
	// InstallFill inserts a filled line; the LLC owner routes any victim
	// back into Controller.Evict.
	InstallFill(core int, a mem.LineAddr, e cache.Entry, now int64)
	// Drop removes a line without writeback processing (ganged eviction:
	// the controller handles the data itself).
	Drop(a mem.LineAddr) (cache.Entry, bool)
	// SetIndex exposes set mapping for Dynamic-PTMC sampling.
	SetIndex(a mem.LineAddr) int
	// NumSets sizes the sampling machinery.
	NumSets() int
}

// Stats is the per-scheme bandwidth/event accounting. DRAM burst counts by
// category feed Figures 4 and 14 directly.
type Stats struct {
	// Reads (DRAM bursts).
	DemandReads     uint64 // data reads for demand fills
	MispredictReads uint64 // LLP wrong-location re-reads (PTMC cost)
	MetadataReads   uint64 // metadata-table fetches (TableTMC cost)
	PrefetchReads   uint64 // next-line prefetcher traffic

	// Writes (DRAM bursts).
	DirtyWrites    uint64 // writebacks that an uncompressed design also pays
	CleanCompIntoW uint64 // compressed writebacks of clean data (TMC cost)
	Invalidates    uint64 // Marker-IL tombstone writes (PTMC cost)
	MetadataWrites uint64 // dirty metadata evictions (TableTMC cost)

	// Compression outcomes.
	Groups4        uint64 // 4:1 units written
	Groups2        uint64 // 2:1 units written
	SinglesWrit    uint64 // uncompressed lines written
	FreeInstalls   uint64 // neighbor lines installed without a DRAM access
	UsefulFreePf   uint64 // free installs that saw a demand hit
	Inversions     uint64 // marker collisions handled by inversion
	ReKeys         uint64 // LIT-overflow re-key events
	CoalescedReads uint64 // reads served by an already-in-flight burst
	IntegrityErrs  uint64 // decoded value != architectural value (must stay 0)

	// Fills by source.
	FillsCompressed   uint64
	FillsUncompressed uint64

	// Graceful-degradation events. Each one is a fault the controller
	// detected and survived by falling back to uncompressed semantics;
	// all stay 0 in a healthy run and are the fault campaign's primary
	// detection signal (alongside IntegrityErrs).
	UndecodableUnits uint64 // compressed unit failed to decode on fill; fallback served
	FallbackReads    uint64 // every candidate location exhausted; architectural fallback served
	LITSpills        uint64 // marker collision survived re-keying; entry spilled to the memory-backed LIT
}

// Degradations returns the total graceful-degradation events (detected,
// survived faults).
func (s *Stats) Degradations() uint64 {
	return s.UndecodableUnits + s.FallbackReads + s.LITSpills
}

// TotalReads returns all DRAM read bursts the scheme generated.
func (s *Stats) TotalReads() uint64 {
	return s.DemandReads + s.MispredictReads + s.MetadataReads + s.PrefetchReads
}

// TotalWrites returns all DRAM write bursts the scheme generated.
func (s *Stats) TotalWrites() uint64 {
	return s.DirtyWrites + s.CleanCompIntoW + s.Invalidates + s.MetadataWrites
}

// Total returns all DRAM bursts.
func (s *Stats) Total() uint64 { return s.TotalReads() + s.TotalWrites() }

// Controller is a memory-controller scheme.
type Controller interface {
	// Name identifies the scheme ("ptmc", "uncompressed", ...).
	Name() string
	// Read fetches line a for core; the controller installs the fill (and
	// any freely obtained neighbors) into the LLC and then calls done.
	Read(core int, a mem.LineAddr, now int64, done Done)
	// Evict handles an LLC eviction (dirty or clean) of entry e.
	Evict(core int, e cache.Entry, now int64)
	// InitLine establishes a line's initial uncompressed memory image
	// (first touch, before the measured window).
	InitLine(a mem.LineAddr)
	// Tick advances the controller and its DRAM by one bus cycle.
	Tick(now int64)
	// Pending reports outstanding work (drain loops).
	Pending() int
	// Stats exposes scheme accounting.
	Stats() *Stats
	// DRAM exposes the timing model (energy accounting, bus stats).
	DRAM() *dram.DRAM
}

// ShardIniter is the optional Controller extension the epoch engine uses
// for parallel first-touch page initialization. The engine synthesizes a
// line's architectural value directly into its DRAM-image storage (obtained
// via mem.Slab) and then asks InitLineReady whether those bytes are a valid
// initial image as-is. The call runs concurrently across shards, so it must
// touch no shared mutable controller state — read-only, or writes confined
// to per-shard/per-line slots arranged through ShardPageIniter. It returns
// false when the line needs the full serial InitLine path (e.g. a PTMC
// marker collision requiring LIT maintenance); the caller must then re-run
// those lines serially, in ascending address order, after the parallel
// pass. Every built-in scheme implements it: uncompressed and the PTMC
// family since the engine landed, table-tmc (raw in-place image, cold CSI
// already correct) and memzip (burst lengths recorded via ShardPageIniter
// slots) since the engine was widened to the comparator schemes.
type ShardIniter interface {
	InitLineReady(a mem.LineAddr, data []byte) bool
}

// ShardPageIniter extends ShardIniter for controllers whose first-touch
// initialization must record derived per-line state (e.g. MemZip's stored
// burst lengths). The engine calls SetupShardInit once per run, before any
// fan-out, with the shard count — the controller sizes per-shard scratch
// here — and BeginPageInit serially before each page's fan-out, the one
// place map-backed storage may grow. InitLineReady may then write the
// line's own pre-created slot without locks: the fan-out partitions lines
// by mem.ShardOf, so per-shard scratch indexed by ShardOf(a, shards) is
// never shared either.
type ShardPageIniter interface {
	ShardIniter
	SetupShardInit(shards int)
	BeginPageInit(pageBase mem.LineAddr)
}

// kind tags a DRAM request for stats accounting.
type kind int

const (
	kDemandRead kind = iota
	kMispredictRead
	kMetadataRead
	kPrefetchRead
	kDirtyWrite
	kCleanCompWrite
	kInvalidateWrite
	kMetadataWrite
)

// base carries the plumbing every scheme shares: the DRAM model with a
// retry queue for backpressure, the DRAM image and architectural stores,
// the LLC hook, the compressor, and stats.
type base struct {
	name string
	d    *dram.DRAM
	img  *mem.Store // what DRAM actually holds
	arch *mem.Store // last value written per line (ground truth)
	llc  LLC
	alg  compress.Algorithm
	st   Stats

	retry       []*dram.Request
	outstanding int // issued-but-not-completed reads + queued work

	decompLat int64 // decompression latency in CPU cycles

	// scr is the controller's compression scratch arena; see type scratch.
	scr scratch

	// inflightReads coalesces concurrent reads of the same DRAM location:
	// one burst serves every waiter. This is what turns a compressed
	// group into real bandwidth savings even when all of its members miss
	// within one ROB window — their fills share a single access to the
	// group's home.
	inflightReads map[mem.LineAddr][]Done

	// freeDones recycles issue's per-request completion contexts. The
	// completion wrapper needs (addr, write, done) at fire time; closing
	// over them allocated once per DRAM burst, which made issue one of
	// the simulator's hottest allocation sites. Pool size is bounded by
	// the peak number of concurrently outstanding requests.
	freeDones []*issueDone

	// tr receives DRAM-request and fill events; nil (the default) is the
	// disabled tracer and costs one branch per event.
	tr *obs.Tracer
}

// issueDone is issue's pooled completion context: the state its OnComplete
// wrapper needs, plus fn, the method value handed to the DRAM request —
// built once per context so steady-state issue allocates nothing.
type issueDone struct {
	b     *base
	a     mem.LineAddr
	write bool
	done  Done
	fn    Done
}

// complete is the pooled equivalent of issue's old per-request closure:
// same bookkeeping, same callback order. The context is recycled before
// the callbacks run (its fields are copied out first), so a done that
// issues further requests can reuse it immediately.
func (x *issueDone) complete(c int64) {
	b, a, write, done := x.b, x.a, x.write, x.done
	x.done = nil
	b.freeDones = append(b.freeDones, x)
	b.outstanding--
	if done != nil {
		done(c)
	}
	if !write {
		waiters := b.inflightReads[a]
		delete(b.inflightReads, a)
		for _, w := range waiters {
			b.outstanding--
			if w != nil {
				w(c)
			}
		}
	}
}

// acquireDone checks a context out of the pool (or mints one).
func (b *base) acquireDone(a mem.LineAddr, write bool, done Done) *issueDone {
	var x *issueDone
	if n := len(b.freeDones); n > 0 {
		x = b.freeDones[n-1]
		b.freeDones = b.freeDones[:n-1]
	} else {
		x = &issueDone{b: b}
		x.fn = x.complete
	}
	x.a, x.write, x.done = a, write, done
	return x
}

func newBase(name string, d *dram.DRAM, img, arch *mem.Store, llc LLC) base {
	return base{
		name: name, d: d, img: img, arch: arch, llc: llc,
		alg:           compress.Hybrid{},
		decompLat:     DecompressCycles,
		inflightReads: make(map[mem.LineAddr][]Done),
	}
}

func (b *base) Name() string { return b.name }

// SetDecompressCycles overrides the decompression latency (ablations).
func (b *base) SetDecompressCycles(n int64) { b.decompLat = n }

// SetTracer attaches (or, with nil, detaches) an event tracer.
func (b *base) SetTracer(t *obs.Tracer) { b.tr = t }
func (b *base) Stats() *Stats           { return &b.st }
func (b *base) DRAM() *dram.DRAM        { return b.d }
func (b *base) Pending() int            { return b.outstanding + len(b.retry) + b.d.QueueDepth() }
func (b *base) account(k kind)          { b.accountN(k, 1) }
func (b *base) accountN(k kind, n uint64) {
	switch k {
	case kDemandRead:
		b.st.DemandReads += n
	case kMispredictRead:
		b.st.MispredictReads += n
	case kMetadataRead:
		b.st.MetadataReads += n
	case kPrefetchRead:
		b.st.PrefetchReads += n
	case kDirtyWrite:
		b.st.DirtyWrites += n
	case kCleanCompWrite:
		b.st.CleanCompIntoW += n
	case kInvalidateWrite:
		b.st.Invalidates += n
	case kMetadataWrite:
		b.st.MetadataWrites += n
	}
}

// issue sends one DRAM request, retrying through the backpressure queue.
// done (reads only) fires at burst completion. Reads to a location that
// already has a burst in flight coalesce onto it for free; issue reports
// that, because a coalesced *demand* read is exactly the bandwidth benefit
// of co-located compression (the Dynamic-PTMC "+1" event).
func (b *base) issue(a mem.LineAddr, write bool, k kind, now int64, done Done) (coalesced bool) {
	if !write {
		if waiters, in := b.inflightReads[a]; in {
			b.st.CoalescedReads++
			b.outstanding++
			b.inflightReads[a] = append(waiters, done)
			return true
		}
		b.inflightReads[a] = nil
	}
	b.account(k)
	if b.tr != nil {
		ek := obs.KindDRAMRead
		if write {
			ek = obs.KindDRAMWrite
		}
		b.tr.Emit(ek, now, 0, 0, uint64(a), int64(k))
	}
	req := b.d.AcquireRequest()
	req.Addr, req.Write = a, write
	if done != nil || !write {
		b.outstanding++
		req.OnComplete = b.acquireDone(a, write, done).fn
	}
	if !b.d.Enqueue(req, now) {
		b.retry = append(b.retry, req)
	}
	return false
}

// NextEventCycle returns the earliest CPU cycle at which ticking the
// controller can change state, for the epoch engine's cycle skipping: the
// DRAM model's aggregated per-channel wake. A retry backlog adds no
// earlier event, so it no longer forces the bus-ratio quantum it once did:
// a rejected request only re-admits after its full target queue loses an
// entry, which happens exclusively at an issue inside a scheduled DRAM
// wake — and an issue always reschedules that channel for the very next
// bus cycle, where the tick's drain (which runs before d.Tick) admits the
// request at exactly the cycle the serial per-tick drain would have.
func (b *base) NextEventCycle(now int64) int64 {
	return b.d.NextEventCycle()
}

// SkippedTicks credits the controller's per-tick bookkeeping for n bus
// cycles the epoch engine proved eventless and skipped: the DRAM idle
// accounting, plus — while a retry backlog exists — the one failed
// re-enqueue attempt per tick the serial loop's drain would have counted.
// Those attempts provably fail (no channel issues inside a skipped span,
// so the full target queue stays full), which is why skipping them is
// sound; crediting RetriesFull keeps the stats byte-identical anyway.
func (b *base) SkippedTicks(n int64) {
	if n <= 0 {
		return
	}
	if len(b.retry) > 0 {
		b.d.Stats.RetriesFull += uint64(n)
	}
	b.d.SkippedTicks(n)
}

// Tick drains the retry queue and advances DRAM.
func (b *base) Tick(now int64) {
	for len(b.retry) > 0 {
		if !b.d.Enqueue(b.retry[0], now) {
			break
		}
		b.retry = b.retry[1:]
	}
	b.d.Tick(now)
}

// scratch is the per-controller compression arena. The simulator drives
// each controller from a single goroutine and every blob or decoded line
// is consumed (sealed + written to the image, or installed in the LLC)
// before the next eviction or fill reuses the arena, so the hot
// compress/decompress paths run with zero heap allocations:
//
//   - groupBuf backs every CompressGroup encoding of one eviction; it is
//     reset (length, not capacity) at the start of each planEviction and
//     grows once to the eviction's worst case, after which writebacks
//     allocate nothing;
//   - lineBuf/lineRefs receive group decodes on the fill path
//     (DecompressGroupInto), replacing four make([]byte, 64) per
//     compressed fill.
type scratch struct {
	groupBuf []byte
	lineBuf  [4][compress.LineSize]byte
	lineRefs [4][]byte
	lines    [4][]byte // gathers input line refs for CompressGroup
	// archBufs backs archLineSlot: up to one architectural line per group
	// slot may be synthesized into scratch by the arch store's lazy fill
	// (mem.Store.ReadNoAlloc) and must stay valid while the whole group is
	// gathered for compression.
	archBufs [4][mem.LineSize]byte
	// Eviction-planning arenas. planEviction's unit list, per-unit member
	// lists, and evictee list are backed here: a plan never exceeds four
	// units (one per group slot) nor four members in total, because every
	// line it touches lies within the evictee's 4-line group. Valid until
	// the next planEviction call; callers consume them within Evict.
	evUnits    [4]storeUnit
	evMembers  [4][4]evictee
	evEvictees [4]evictee
	staleBuf   [4]mem.LineAddr
}

// decodeGroup decompresses an n-member unit into the scratch line buffers.
// The returned slices alias the arena and are valid until the next
// decodeGroup call on this controller.
func (b *base) decodeGroup(blob []byte, n int) ([][]byte, error) {
	for i := 0; i < n; i++ {
		b.scr.lineRefs[i] = b.scr.lineBuf[i][:]
	}
	if err := compress.DecompressGroupInto(b.alg, b.scr.lineRefs[:n], blob, n); err != nil {
		return nil, err
	}
	return b.scr.lineRefs[:n], nil
}

// compressGroup encodes lines into the arena within budget; the returned
// blob aliases the arena and stays valid for the rest of this eviction
// (the arena is only reset by the next planEviction).
func (b *base) compressGroup(lines [][]byte, budget int) ([]byte, bool) {
	start := len(b.scr.groupBuf)
	grown, fits := compress.AppendCompressGroup(b.alg, b.scr.groupBuf, lines, budget)
	b.scr.groupBuf = grown
	if !fits {
		return nil, false
	}
	return grown[start:], true
}

// archLine returns the architectural (ground-truth) value of a line.
func (b *base) archLine(a mem.LineAddr) []byte { return b.arch.Read(a) }

// archLineSlot is archLine for inspection paths (integrity checks, group
// gathers): it goes through mem.Store.ReadNoAlloc with per-slot scratch, so
// a line of a lazily-initialized, never-stored architectural page is
// synthesized into scratch instead of forcing the page to allocate, and up
// to four lines of one compression group can be held simultaneously. slot
// must be the line's position in the group being gathered (0-3).
func (b *base) archLineSlot(a mem.LineAddr, slot int) []byte {
	return b.arch.ReadNoAlloc(a, b.scr.archBufs[slot][:])
}

// checkIntegrity compares a decoded fill against the architectural value;
// mismatches indicate a broken memory image and are counted (tests assert
// zero).
func (b *base) checkIntegrity(a mem.LineAddr, got []byte) {
	want := b.arch.ReadNoAlloc(a, b.scr.archBufs[0][:])
	for i := range got {
		if got[i] != want[i] {
			b.st.IntegrityErrs++
			return
		}
	}
}

// install puts a fill into the LLC.
func (b *base) install(core int, a mem.LineAddr, dirty, prefetch bool, level cache.Level, now int64) {
	if b.tr != nil {
		b.tr.Emit(obs.KindFill, now, 0, core, uint64(a), int64(level))
	}
	b.llc.InstallFill(core, a, cache.Entry{
		Dirty:    dirty,
		Prefetch: prefetch,
		Level:    level,
		Core:     uint8(core),
	}, now)
}

var _ = fmt.Sprintf // keep fmt for debug builds
