package memctrl

import (
	"fmt"
	"testing"

	"ptmc/internal/cache"
	"ptmc/internal/core"
	"ptmc/internal/mem"
)

// layoutKind enumerates the memory layouts a 4-line group can be in.
type layoutKind int

const (
	layoutSingles  layoutKind = iota // four uncompressed lines
	layoutPairLo                     // (0,1) 2:1, (2,3) uncompressed
	layoutPairHi                     // (0,1) uncompressed, (2,3) 2:1
	layoutBothPair                   // both pairs 2:1
	layoutQuad                       // 4:1
)

func (k layoutKind) String() string {
	return [...]string{"singles", "pair-lo", "pair-hi", "both-pairs", "quad"}[k]
}

// buildLayout establishes the given memory layout for the group at base by
// driving real writes and evictions.
func buildLayout(t *testing.T, r *rig, base mem.LineAddr, k layoutKind) {
	t.Helper()
	comp := func(i int) []byte { return compressibleLine(byte(16 + i)) }
	inc := func(i int) []byte { return incompressibleLine(uint64(base) + uint64(i)) }

	vals := make([][]byte, 4)
	switch k {
	case layoutSingles:
		for i := range vals {
			vals[i] = inc(i)
		}
	case layoutPairLo:
		vals[0], vals[1], vals[2], vals[3] = comp(0), comp(1), inc(2), inc(3)
	case layoutPairHi:
		vals[0], vals[1], vals[2], vals[3] = inc(0), inc(1), comp(2), comp(3)
	case layoutBothPair:
		// Compressible in pairs but the four together exceed 60 bytes:
		// two half-random lines per pair would not pair; use values where
		// each pair fits but the quad does not.
		vals[0], vals[1] = pairOnlyLine(0), pairOnlyLine(1)
		vals[2], vals[3] = pairOnlyLine(2), pairOnlyLine(3)
	case layoutQuad:
		for i := range vals {
			vals[i] = comp(i)
		}
	}
	// Install values then evict pair-by-pair (or the quad) to realize the
	// layout in memory.
	for i, v := range vals {
		r.write(0, base+mem.LineAddr(i), v)
	}
	switch k {
	case layoutQuad, layoutBothPair:
		r.evict(base) // ganged/opportunistic handles the rest
		r.evict(base + 2)
	default:
		r.evict(base)
		r.evict(base + 1)
		r.evict(base + 2)
		r.evict(base + 3)
	}
}

// pairOnlyLine compresses to ~25 bytes: two fit in 60, four do not.
func pairOnlyLine(tag byte) []byte {
	l := make([]byte, mem.LineSize)
	for i := 0; i < mem.LineSize; i += 8 {
		l[i] = tag
		l[i+1] = byte(i)
		l[i+2] = 0xA0 | tag
	}
	return l
}

// TestReadPathMatrix reads every line of every layout under every LLP
// prior, checking value correctness and that mispredict re-reads stay
// within the candidate bound (<= 2 extra accesses).
func TestReadPathMatrix(t *testing.T) {
	layouts := []layoutKind{layoutSingles, layoutPairLo, layoutPairHi, layoutBothPair, layoutQuad}
	priors := []cache.Level{cache.Uncompressed, cache.Comp2, cache.Comp4}
	for _, layout := range layouts {
		for _, prior := range priors {
			name := fmt.Sprintf("%v/prior-%v", layout, prior)
			t.Run(name, func(t *testing.T) {
				r := newPTMCRig(t)
				p := r.ctrl.(*PTMC)
				base := mem.LineAddr(640) // page-aligned group
				buildLayout(t, r, base, layout)

				for i := 0; i < 4; i++ {
					a := base + mem.LineAddr(i)
					// Force the LLP prior for this page.
					p.LLP().Record(a, prior, false, false)
					// Drop any LLC copies so the read goes to memory.
					for j := 0; j < 4; j++ {
						r.llc.Drop(base + mem.LineAddr(j))
					}
					before := p.Stats().MispredictReads
					got := r.read(0, a)
					wantLine(t, got, r.arch.Read(a), name)
					extra := p.Stats().MispredictReads - before
					if extra > 2 {
						t.Errorf("line %d: %d extra accesses, candidate bound is 2", a, extra)
					}
				}
				if p.Stats().IntegrityErrs != 0 {
					t.Fatalf("integrity errors in %s", name)
				}
				if _, err := p.VerifyImage(r.llcResident); err != nil {
					t.Fatalf("image unsound after %s: %v", name, err)
				}
			})
		}
	}
}

// TestReadPathStaleTombstone: predicted-uncompressed read of a relocated
// line must bounce off the Marker-IL tombstone and find the compressed
// home (§IV-C "Efficiently Invalidating Stale Copies").
func TestReadPathStaleTombstone(t *testing.T) {
	r := newPTMCRig(t)
	p := r.ctrl.(*PTMC)
	r.write(0, 644, compressibleLine(1))
	r.write(0, 645, compressibleLine(2))
	r.evict(644) // pair at 644, tombstone at 645
	// Force prediction "uncompressed" for the page.
	p.LLP().Record(645, cache.Uncompressed, false, false)
	before := p.Stats().MispredictReads
	got := r.read(0, 645)
	wantLine(t, got, compressibleLine(2), "via tombstone")
	if p.Stats().MispredictReads != before+1 {
		t.Errorf("expected exactly one bounce, got %d", p.Stats().MispredictReads-before)
	}
}

// TestGroupBaseNeedsNoPrediction: index-0 lines are found in one access
// regardless of how wrong the page's LLP entry is.
func TestGroupBaseNeedsNoPrediction(t *testing.T) {
	r := newPTMCRig(t)
	p := r.ctrl.(*PTMC)
	r.write(0, 648, incompressibleLine(5))
	r.evict(648)
	p.LLP().Record(648, cache.Comp4, false, false) // poison the prior
	before := p.Stats().MispredictReads
	got := r.read(0, 648)
	wantLine(t, got, incompressibleLine(5), "group base")
	if p.Stats().MispredictReads != before {
		t.Error("index-0 line must never need a second access")
	}
}

// TestLLPTrainsOnOutcome: after one mispredicted read, the next read of a
// same-page line predicts the new level correctly.
func TestLLPTrainsOnOutcome(t *testing.T) {
	r := newPTMCRig(t)
	p := r.ctrl.(*PTMC)
	// Realize a quad in one page.
	for i := 0; i < 4; i++ {
		r.write(0, mem.LineAddr(704+i), compressibleLine(byte(i)))
	}
	r.evict(704)
	// Poison the prior; first read of a non-base line mispredicts but
	// trains the page entry.
	p.LLP().Record(705, cache.Uncompressed, false, false)
	r.read(0, 705)
	if p.LLP().Predict(706) != cache.Comp4 {
		t.Error("LLP should have learned the page's 4:1 status")
	}
}

var _ = core.GroupBase // keep import if geometry helpers get trimmed
