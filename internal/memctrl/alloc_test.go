package memctrl

import (
	"testing"

	"ptmc/internal/cache"
	"ptmc/internal/mem"
)

// TestEvictionPlanZeroAlloc pins the writeback planner at zero heap
// allocations per eviction: the eviction set, the unit list, per-unit
// member lists, the evictee list, and the stale-location list all live in
// fixed arrays or the controller's scratch arena (every address a plan
// touches lies within the evictee's 4-line group), and the architectural
// gathers go through archLineSlot's scratch buffers. This is the guard for
// the group.go/scratch design — a map or make() reintroduced anywhere in
// planEviction or staleLocations fails it.
func TestEvictionPlanZeroAlloc(t *testing.T) {
	b, llc := planRig(t)
	for i := 0; i < 4; i++ {
		setArch(b, mem.LineAddr(100+i), compressibleLine(byte(i)))
	}
	install := func() {
		for i := 0; i < 4; i++ {
			llc.c.Install(mem.LineAddr(100+i), cache.Entry{Dirty: true})
		}
	}
	plan := func() {
		evicted, ok := llc.c.Invalidate(100)
		if !ok {
			t.Fatal("victim not resident")
		}
		units, evictees := b.planEviction(evicted, true, 60)
		if len(units) == 0 || len(evictees) == 0 {
			t.Fatal("empty plan")
		}
		b.staleLocations(units, evictees)
	}
	// Warm: settles the LLC set metadata and the compression arena.
	for i := 0; i < 8; i++ {
		install()
		plan()
	}
	if n := testing.AllocsPerRun(100, func() {
		install()
		plan()
	}); n != 0 {
		t.Errorf("planEviction steady state allocates %.1f/op, want 0", n)
	}
}

// TestEvictionPlanSinglesZeroAlloc covers the breakup path (incompressible
// group → one single per set member), which exercises the per-unit member
// arenas rather than the 4:1 fast path.
func TestEvictionPlanSinglesZeroAlloc(t *testing.T) {
	b, llc := planRig(t)
	for i := 0; i < 4; i++ {
		setArch(b, mem.LineAddr(200+i), incompressibleLine(uint64(i+1)))
	}
	install := func() {
		for i := 0; i < 4; i++ {
			llc.c.Install(mem.LineAddr(200+i), cache.Entry{Dirty: true})
		}
	}
	plan := func() {
		evicted, ok := llc.c.Invalidate(200)
		if !ok {
			t.Fatal("victim not resident")
		}
		units, evictees := b.planEviction(evicted, true, 60)
		if len(units) != 1 || units[0].level != cache.Uncompressed {
			t.Fatalf("want a single-line breakup, got %+v", units)
		}
		b.staleLocations(units, evictees)
	}
	for i := 0; i < 8; i++ {
		install()
		plan()
	}
	if n := testing.AllocsPerRun(100, func() {
		install()
		plan()
	}); n != 0 {
		t.Errorf("singles planEviction steady state allocates %.1f/op, want 0", n)
	}
}

// TestGroupCodecArenaZeroAlloc pins the controller-level compression hot
// path (compressGroup into the arena, decodeGroup into the line buffers) at
// zero allocations per group once the arena is warm.
func TestGroupCodecArenaZeroAlloc(t *testing.T) {
	b, _ := planRig(t)
	lines := b.scr.lines[:0]
	var bufs [4][mem.LineSize]byte
	for i := range bufs {
		copy(bufs[i][:], compressibleLine(byte(i)))
		lines = append(lines, bufs[i][:])
	}
	blob, fits := b.compressGroup(lines, 60)
	if !fits {
		t.Fatal("test lines must compress 4:1")
	}
	enc := append([]byte(nil), blob...)
	if n := testing.AllocsPerRun(200, func() {
		b.scr.groupBuf = b.scr.groupBuf[:0]
		if _, ok := b.compressGroup(lines, 60); !ok {
			t.Fatal("group stopped fitting")
		}
	}); n != 0 {
		t.Errorf("compressGroup allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := b.decodeGroup(enc, 4); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("decodeGroup allocates %.1f/op, want 0", n)
	}
}
