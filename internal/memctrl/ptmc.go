package memctrl

import (
	"ptmc/internal/cache"
	"ptmc/internal/core"
	"ptmc/internal/dram"
	"ptmc/internal/mem"
	"ptmc/internal/obs"
)

// PTMC is the paper's controller: inline-metadata markers instead of a
// metadata table, a Line Location Predictor instead of metadata lookups,
// and (optionally) Dynamic-PTMC set-sampled cost/benefit gating. The
// controller keeps no per-line state: everything it knows about memory
// layout comes from the markers in the lines it reads and the 2-bit
// compression tags in the LLC.
type PTMC struct {
	base
	markers    *core.MarkerGen
	llp        *core.LLP
	lit        *core.LIT
	dyn        *core.Dynamic // nil => static PTMC (always compress)
	rekeyDepth int

	// sink, when set, defers compressed-fill integrity verification to
	// epoch-boundary batch drains (see VerifySink). nil = inline checks.
	sink *VerifySink

	// oracle mode (Ideal-TMC): line locations are known for free and
	// compression maintenance consumes no DRAM bandwidth.
	oracle bool
}

// PTMCOption configures optional behavior.
type PTMCOption func(*PTMC)

// WithDynamic enables Dynamic-PTMC with the given sampling fraction and
// per-core counters.
func WithDynamic(cores int, sampleFrac float64, perCore bool) PTMCOption {
	return func(p *PTMC) {
		p.dyn = core.NewDynamic(p.llc.NumSets(), cores, sampleFrac, perCore)
	}
}

// WithLITMode selects the LIT overflow strategy.
func WithLITMode(mode core.LITMode) PTMCOption {
	return func(p *PTMC) { p.lit = core.NewLIT(mode) }
}

// WithLLPEntries sizes the Last Compressibility Table (ablations).
func WithLLPEntries(n int) PTMCOption {
	return func(p *PTMC) { p.llp = core.NewLLP(n) }
}

// withOracle turns the controller into the Ideal-TMC upper bound.
func withOracle() PTMCOption {
	return func(p *PTMC) {
		p.oracle = true
		p.name = "ideal-tmc"
	}
}

// NewPTMC builds a static-PTMC controller; add WithDynamic for the full
// Dynamic-PTMC design.
func NewPTMC(d *dram.DRAM, img, arch *mem.Store, llc LLC, seed int64, opts ...PTMCOption) *PTMC {
	p := &PTMC{
		base:    newBase("ptmc", d, img, arch, llc),
		markers: core.NewMarkerGen(seed),
		llp:     core.NewLLP(core.LLPEntries),
		lit:     core.NewLIT(core.LITReKey),
	}
	for _, o := range opts {
		o(p)
	}
	if p.dyn != nil {
		p.name = "dynamic-ptmc"
	}
	if p.oracle {
		p.name = "ideal-tmc"
	}
	return p
}

// LLP exposes the predictor (Figure 9 accuracy reporting).
func (p *PTMC) LLP() *core.LLP { return p.llp }

// LIT exposes the inversion table (diagnostics and tests).
func (p *PTMC) LIT() *core.LIT { return p.lit }

// Markers exposes the marker generator (tests, re-key experiments).
func (p *PTMC) Markers() *core.MarkerGen { return p.markers }

// Dynamic exposes the Dynamic-PTMC policy (nil for static PTMC).
func (p *PTMC) Dynamic() *core.Dynamic { return p.dyn }

// SetVerifySink attaches (or, with nil, detaches) a deferred-verification
// sink. Timing, installs, and every non-integrity stat are identical with
// and without a sink; only where the decode-and-compare work runs moves.
func (p *PTMC) SetVerifySink(s *VerifySink) { p.sink = s }

// AttachVerifySink builds a sink over the controller's own compression
// algorithm, attaches it, and returns it for the caller to drain.
func (p *PTMC) AttachVerifySink() *VerifySink {
	s := NewVerifySink(p.alg)
	p.sink = s
	return s
}

// InitLineReady implements ShardIniter: the common first-touch case — no
// marker collision — keeps the raw value already synthesized into the
// line's image storage, touching nothing shared. The collision check itself
// is read-only (marker generation state is immutable between re-keys, and
// re-keys cannot happen mid-epoch). Collisions return false for serial
// handling: they need LIT insertion and possibly a re-key, which mutate
// controller state. A collision-free line needs no lit.Remove, unlike
// writeRaw, because first touch means the address was never inverted
// (internal/vm never reuses a physical page).
func (p *PTMC) InitLineReady(a mem.LineAddr, data []byte) bool {
	return !p.markers.CollidesWithMarkers(a, data)
}

// sampled reports whether a line belongs to a sampled (always-compress)
// region. Sampling is keyed on the LLC set of the group base and decided
// per page-aligned run of sets, so every event of one compression group
// (eviction decision, free-fetch benefit, mispredict, invalidate) is
// observed by the same sample — and a sampled page is sampled in full,
// which keeps its page-granular LLP entry self-consistent even when
// compression is globally disabled (see core.Dynamic).
func (p *PTMC) sampled(a mem.LineAddr) bool {
	return p.dyn != nil && p.dyn.Sampled(p.llc.SetIndex(core.GroupBase(a)))
}

// OnDemandHit is called by the LLC owner when a demand access hits a line
// whose prefetch bit is set: the free prefetch proved useful. Sampled sets
// feed the benefit counter (Figure 16, event 1).
func (p *PTMC) OnDemandHit(core_ int, a mem.LineAddr) {
	p.st.UsefulFreePf++
	if p.sampled(a) {
		p.dyn.Benefit(core_)
	}
}

// InitLine implements Controller: first-touch lines enter memory
// uncompressed (with marker-collision handling but no bandwidth cost —
// the data predates the measured window).
func (p *PTMC) InitLine(a mem.LineAddr) {
	p.writeRaw(a, p.arch.Read(a), 0, false, kDirtyWrite)
}

// writeRaw stores an uncompressed line at its own location, inverting on
// marker collision and maintaining the LIT (§IV-C). When charge is true the
// DRAM write is issued and accounted under k.
//
// Collisions the on-chip LIT cannot absorb trigger a re-key; if a
// collision persists across re-keys (possible only under fault injection
// or a broken marker hash), the controller degrades gracefully instead of
// failing: the entry spills to the memory-backed LIT (the paper's Option-1
// fallback) and the line is stored inverted, which stays sound — the
// spilled entry keeps every later read and verification correct.
func (p *PTMC) writeRaw(a mem.LineAddr, data []byte, now int64, charge bool, k kind) {
	for attempt := 0; ; attempt++ {
		if !p.markers.CollidesWithMarkers(a, data) {
			p.img.Write(a, data)
			p.lit.Remove(a)
			break
		}
		if !p.lit.Insert(a) {
			// Tracked: store the complement so no resident line carries a
			// marker it shouldn't.
			p.st.Inversions++
			p.img.Write(a, core.Invert(data))
			break
		}
		// LIT overflow: re-key (re-encoding all of memory under fresh
		// markers), then retry this write under the new generation.
		if attempt >= 3 || !p.reKey(now, charge) {
			p.st.LITSpills++
			p.st.Inversions++
			p.img.Write(a, core.Invert(data))
			p.lit.ForceInsert(a)
			break
		}
	}
	if charge {
		p.issue(a, true, k, now, nil)
	}
}

// writeInvalid tombstones a stale location with its per-line Marker-IL.
func (p *PTMC) writeInvalid(a mem.LineAddr, now int64, charge bool) {
	il := p.markers.MarkerIL(a)
	p.img.Write(a, il[:])
	p.lit.Remove(a)
	if charge {
		p.issue(a, true, kInvalidateWrite, now, nil)
	}
}

// reKey handles LIT overflow (Option-2): regenerate marker keys and
// re-encode every resident line under the new markers. The latency is not
// modeled (the paper argues overflows are ~once per 10 million years); the
// event is counted and the re-encode is functional. It reports false —
// declining to re-key — when re-keys are already nested four deep: >16
// fresh-key collisions per pass, four passes in a row, means the marker
// hash is broken, not unlucky, and the caller must degrade to the
// memory-backed LIT instead of recursing forever.
func (p *PTMC) reKey(now int64, charge bool) bool {
	if p.rekeyDepth >= 4 {
		return false
	}
	p.rekeyDepth++
	defer func() { p.rekeyDepth-- }()

	p.st.ReKeys++
	if p.tr != nil {
		p.tr.Emit(obs.KindReKey, now, 0, 0, 0, int64(p.rekeyDepth))
	}
	old := *p.markers // snapshot of the outgoing generation
	wasInverted := map[mem.LineAddr]bool{}
	for _, a := range p.lit.Addresses() {
		wasInverted[a] = true
	}
	p.markers.ReKey()
	p.lit.Clear()
	for _, a := range p.img.TouchedLines() {
		data := p.img.Read(a)
		switch old.Classify(a, data) {
		case core.ClassComp2:
			resealed := p.markers.SealCompressed(a, data[:core.CompressedBudget], false)
			p.img.Write(a, resealed[:])
		case core.ClassComp4:
			resealed := p.markers.SealCompressed(a, data[:core.CompressedBudget], true)
			p.img.Write(a, resealed[:])
		case core.ClassInvalid:
			p.writeInvalid(a, now, false)
		case core.ClassInvComp2, core.ClassInvComp4, core.ClassInvIL:
			raw := data
			if wasInverted[a] {
				raw = core.Invert(data)
			}
			p.writeRaw(a, raw, now, false, kDirtyWrite)
		default:
			// Plain data may collide with the *new* markers; writeRaw
			// re-applies inversion handling under the new generation.
			p.writeRaw(a, data, now, false, kDirtyWrite)
		}
	}
	return true
}

// Scrub repairs the memory image of a's 4-line compression group from the
// architectural store: every member is rewritten uncompressed at its own
// location (with full marker-collision handling) and any LLC-resident
// member's compression tag is reset to Uncompressed so later evictions see
// a layout consistent with memory. It models a RAS-style scrub engine —
// the recovery action run after a detected corruption — so its DRAM
// traffic is not charged. Compressed units homed inside the group are
// overwritten, which is sound: a unit's members never span groups.
func (p *PTMC) Scrub(a mem.LineAddr) {
	if p.tr != nil {
		p.tr.Emit(obs.KindScrub, 0, 0, 0, uint64(core.GroupBase(a)), 0)
	}
	gb := core.GroupBase(a)
	for i := 0; i < core.GroupLines; i++ {
		m := gb + mem.LineAddr(i)
		p.writeRaw(m, p.arch.Read(m), 0, false, kDirtyWrite)
		if e, in := p.llc.Probe(m); in {
			e.Level = cache.Uncompressed
		}
	}
}

// Read implements Controller: predict the line's location with the LLP,
// fetch, confirm with the inline marker, and fall back through the
// remaining candidate locations on a misprediction.
func (p *PTMC) Read(core_ int, a mem.LineAddr, now int64, done Done) {
	if p.oracle {
		p.tryRead(core_, a, p.oracleHome(a), false, 0, now, done)
		return
	}
	predicted := cache.Uncompressed
	counted := false
	if core.NeedsPrediction(a) {
		predicted = p.llp.Predict(a)
		counted = true
	}
	first := core.HomeFor(a, predicted)
	p.tryRead(core_, a, first, counted, 0, now, done)
}

// oracleHome peeks at the memory image (free in Ideal-TMC) to find the
// location that actually covers line a.
func (p *PTMC) oracleHome(a mem.LineAddr) mem.LineAddr {
	var homes [3]mem.LineAddr
	for _, cand := range core.AppendCandidateHomes(homes[:0], a) {
		switch p.markers.Classify(cand, p.img.Read(cand)) {
		case core.ClassComp2:
			if core.Covers(cand, cache.Comp2, a) {
				return cand
			}
		case core.ClassComp4:
			if core.Covers(cand, cache.Comp4, a) {
				return cand
			}
		default:
			if cand == a {
				return cand
			}
		}
	}
	return a
}

// tryRead probes one candidate home. tried is the set of homes already
// probed, as a bitmask indexed by group position (every candidate home lies
// within a's 4-line group, so three candidates fit in one byte and the read
// path carries no per-read map). The first probe is the demand access, later
// ones are mispredict costs.
func (p *PTMC) tryRead(core_ int, a, home mem.LineAddr, counted bool,
	tried uint8, now int64, done Done) {

	k := kDemandRead
	if tried != 0 {
		k = kMispredictRead
		if p.sampled(a) {
			p.dyn.Cost(core_)
		}
	}
	firstTry := tried == 0
	tried |= 1 << uint(core.GroupIndex(home))

	var coalesced bool
	coalesced = p.issue(home, false, k, now, func(c int64) {
		data := p.img.Read(home)
		class := p.markers.Classify(home, data)
		switch class {
		case core.ClassComp2, core.ClassComp4:
			level := cache.Comp2
			if class == core.ClassComp4 {
				level = cache.Comp4
			}
			if core.Covers(home, level, a) {
				if coalesced && firstTry {
					if e, in := p.llc.Probe(a); in {
						// This demand was served by a burst already in
						// flight for a co-located neighbor: the primary
						// fill installed the whole unit, so this is a
						// coalesced completion — the free-fetch benefit,
						// observed directly. Consume the prefetch bit so
						// one free fetch feeds the utility counter exactly
						// once (a later demand hit must not recount it via
						// OnDemandHit), and leave the fill counters to the
						// primary that did the work. The unit's decode did
						// reveal where this line lives, so the predictor
						// still trains — uncounted, because no prediction
						// was exercised by a separate DRAM access.
						p.st.UsefulFreePf++
						if p.sampled(a) {
							p.dyn.Benefit(core_)
						}
						p.llp.Record(a, level, false, false)
						e.Prefetch = false
						done(c + p.decompLat)
						return
					}
					// Coalesced but the primary did not install the demand
					// line (its own probe of this home missed): this fill
					// is real work, accounted normally below.
				}
				p.fillCompressed(core_, a, home, level, data, counted, firstTry, c, done)
				return
			}
		case core.ClassInvComp2, core.ClassInvComp4, core.ClassInvIL:
			inverted, extra := p.lit.Contains(home)
			if extra {
				// Memory-mapped LIT: the inversion bit costs a read.
				p.issue(home, false, kMetadataRead, c, nil)
			}
			if home == a {
				val := data
				if inverted {
					val = core.Invert(data)
				}
				p.fillUncompressed(core_, a, val, counted, firstTry, c, done)
				return
			}
		case core.ClassUncompressed:
			if home == a {
				p.fillUncompressed(core_, a, data, counted, firstTry, c, done)
				return
			}
		case core.ClassInvalid:
			// Stale location: the line lives elsewhere.
		}
		p.retryRead(core_, a, counted, tried, c, done)
	})
}

// retryRead falls through the remaining candidate locations.
func (p *PTMC) retryRead(core_ int, a mem.LineAddr, counted bool,
	tried uint8, now int64, done Done) {
	var homes [3]mem.LineAddr
	for _, cand := range core.AppendCandidateHomes(homes[:0], a) {
		if tried&(1<<uint(core.GroupIndex(cand))) == 0 {
			p.tryRead(core_, a, cand, counted, tried, now, done)
			return
		}
	}
	// All candidates exhausted: the memory image is corrupt. Degrade
	// gracefully — count the detection and serve the architectural value
	// uncompressed so the system keeps running.
	p.st.FallbackReads++
	p.fillUncompressed(core_, a, p.arch.Read(a), counted, false, now, done)
}

// fillCompressed decodes a compressed unit, installs every member (the
// free-prefetch benefit), trains the LLP, and completes the demand.
func (p *PTMC) fillCompressed(core_ int, a, home mem.LineAddr, level cache.Level,
	data []byte, counted, firstTry bool, now int64, done Done) {

	first, n := core.MembersSpan(home, level)
	if p.sink != nil {
		// Deferred verification: identical installs, stats, training, and
		// timing; the decode-and-compare moves to the sink's batch drain.
		p.st.FillsCompressed++
		p.llp.Record(a, level, counted, firstTry)
		c := now + p.decompLat
		var mask uint8
		for i := 0; i < n; i++ {
			m := first + mem.LineAddr(i)
			if _, in := p.llc.Probe(m); in {
				continue // LLC copy may be newer; never overwrite it
			}
			mask |= 1 << uint(i)
			if m == a {
				p.install(core_, m, false, false, level, c)
			} else {
				p.st.FreeInstalls++
				p.install(core_, m, false, true, level, c)
			}
		}
		p.sink.add(home, first, n, mask, data[:core.CompressedBudget], p.arch)
		done(c)
		return
	}
	lines, err := p.decodeGroup(data[:core.CompressedBudget], n)
	if err != nil {
		// Undecodable unit: a detected fault (ErrUndecodable class). Fall
		// back to an uncompressed fill of the architectural value.
		p.st.UndecodableUnits++
		p.fillUncompressed(core_, a, p.arch.Read(a), counted, false, now, done)
		return
	}
	p.st.FillsCompressed++
	p.llp.Record(a, level, counted, firstTry)
	c := now + p.decompLat
	for i := 0; i < n; i++ {
		m := first + mem.LineAddr(i)
		if _, in := p.llc.Probe(m); in {
			continue // LLC copy may be newer; never overwrite it
		}
		p.checkIntegrity(m, lines[i])
		if m == a {
			p.install(core_, m, false, false, level, c)
		} else {
			p.st.FreeInstalls++
			p.install(core_, m, false, true, level, c)
		}
	}
	done(c)
}

// fillUncompressed installs a plain line and trains the LLP.
func (p *PTMC) fillUncompressed(core_ int, a mem.LineAddr, data []byte,
	counted, firstTry bool, now int64, done Done) {
	p.st.FillsUncompressed++
	p.llp.Record(a, cache.Uncompressed, counted, firstTry)
	p.checkIntegrity(a, data)
	p.install(core_, a, false, false, cache.Uncompressed, now)
	done(now)
}

// Evict implements Controller: the PTMC writeback path — gang eviction,
// opportunistic (re)compression within the 60-byte budget, Marker-IL
// tombstones for locations that go stale, and LIT maintenance.
func (p *PTMC) Evict(core_ int, e cache.Entry, now int64) {
	if p.tr != nil {
		p.tr.Emit(obs.KindEvict, now, 0, int(e.Core), uint64(e.Tag), int64(e.Level))
	}
	compressing := true
	if p.dyn != nil {
		compressing = p.dyn.ShouldCompress(int(e.Core), p.llc.SetIndex(core.GroupBase(e.Tag)))
	}
	sampled := p.sampled(e.Tag)

	units, evictees := p.planEviction(e, compressing, core.CompressedBudget)

	for _, u := range units {
		if u.unchanged {
			continue
		}
		k := kDirtyWrite
		charge := true
		if !u.anyDirty {
			k = kCleanCompWrite
			if p.oracle {
				charge = false // ideal: maintenance is free
			}
			if sampled {
				p.dyn.Cost(int(e.Core))
			}
		}
		switch u.level {
		case cache.Comp4:
			p.st.Groups4++
			sealed := p.markers.SealCompressed(u.home, u.blob, true)
			p.img.Write(u.home, sealed[:])
			p.lit.Remove(u.home)
			if charge {
				p.issue(u.home, true, k, now, nil)
			}
		case cache.Comp2:
			p.st.Groups2++
			sealed := p.markers.SealCompressed(u.home, u.blob, false)
			p.img.Write(u.home, sealed[:])
			p.lit.Remove(u.home)
			if charge {
				p.issue(u.home, true, k, now, nil)
			}
		default:
			p.st.SinglesWrit++
			p.writeRaw(u.home, p.archLineSlot(u.home, 0), now, charge, k)
		}
	}

	for _, loc := range p.staleLocations(units, evictees) {
		p.writeInvalid(loc, now, !p.oracle)
		if sampled {
			p.dyn.Cost(int(e.Core))
		}
	}
}
