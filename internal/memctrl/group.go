package memctrl

import (
	"ptmc/internal/cache"
	"ptmc/internal/core"
	"ptmc/internal/mem"
)

// evictee is one line leaving the LLC (or a memory-resident "ghost" member
// of a broken compressed unit that must be preserved across the rewrite).
type evictee struct {
	addr     mem.LineAddr
	dirty    bool
	oldLevel cache.Level
	ghost    bool
}

// storeUnit is one 64-byte location to (re)write: a 4:1 quad, a 2:1 pair,
// or an uncompressed single.
type storeUnit struct {
	home     mem.LineAddr
	level    cache.Level
	members  []evictee
	blob     []byte // compressed payload (nil for singles)
	anyDirty bool
	// unchanged: same layout as before eviction and no dirty member —
	// the memory image is already correct and no write is needed.
	unchanged bool
}

// planEviction implements the paper's writeback path (§IV-C "Handling
// Updates", "Ganged Eviction" and footnote 3): gang-evict the evictee's old
// compressed unit, opportunistically pull LLC-resident neighbors to form
// the largest unit that compresses within budget (when compressing is
// true), and emit the storage units to write. Returned evictees include
// every line whose memory state this eviction touches.
//
// Every address the plan touches — the old unit's members, pulled
// neighbors, unit homes — lies within the evictee's 4-line group, so the
// working set is indexed by group position (core.GroupIndex) in fixed
// arrays, and the returned slices are backed by the controller's scratch
// arena (valid until the next planEviction). This runs on every LLC
// writeback; it must not allocate.
func (b *base) planEviction(e cache.Entry, compressing bool, budget int) ([]storeUnit, []evictee) {
	// Reset the compression arena: blobs of the previous eviction have been
	// sealed and written by now, so their bytes can be reclaimed.
	b.scr.groupBuf = b.scr.groupBuf[:0]

	x := evictee{addr: e.Tag, dirty: e.Dirty, oldLevel: e.Level}
	gb := core.GroupBase(x.addr)

	// The eviction set, indexed by position within x's group.
	var set [core.GroupLines]evictee
	var inSet [core.GroupLines]bool
	set[core.GroupIndex(x.addr)], inSet[core.GroupIndex(x.addr)] = x, true

	// Gang eviction: the old unit leaves the LLC together.
	oldHome := core.HomeFor(x.addr, x.oldLevel)
	oldFirst, oldN := core.MembersSpan(oldHome, x.oldLevel)
	for j := 0; j < oldN; j++ {
		m := oldFirst + mem.LineAddr(j)
		if m == x.addr {
			continue
		}
		gi := core.GroupIndex(m)
		if old, ok := b.llc.Drop(m); ok {
			set[gi], inSet[gi] = evictee{addr: m, dirty: old.Dirty, oldLevel: old.Level}, true
		} else {
			// Memory-resident member of the broken unit: preserved via
			// its architectural value (clean by definition).
			set[gi], inSet[gi] = evictee{addr: m, oldLevel: x.oldLevel, ghost: true}, true
		}
	}

	// collectEvictees gathers the eviction set in group (address) order.
	collectEvictees := func() []evictee {
		evictees := b.scr.evEvictees[:0]
		for gi := 0; gi < core.GroupLines; gi++ {
			if inSet[gi] {
				evictees = append(evictees, set[gi])
			}
		}
		return evictees
	}

	units := b.scr.evUnits[:0]

	// Compression disabled (Dynamic-PTMC): stop *actively compressing*,
	// do not actively decompress (§V-A: "simply deciding to stop actively
	// compressing lines"). A clean eviction of an intact compressed unit
	// leaves the memory image exactly as it is (zero writes); a dirty
	// eviction re-seals the existing unit in place when the new data still
	// fits (one write, no tombstones) and only breaks it into singles when
	// it no longer does.
	if !compressing && x.oldLevel != cache.Uncompressed {
		anyDirty := false
		for gi := range set {
			anyDirty = anyDirty || (inSet[gi] && set[gi].dirty)
		}
		u := storeUnit{home: oldHome, level: x.oldLevel, anyDirty: anyDirty, unchanged: !anyDirty}
		members := b.scr.evMembers[0][:0]
		lines := b.scr.lines[:0]
		for j := 0; j < oldN; j++ {
			m := oldFirst + mem.LineAddr(j)
			members = append(members, set[core.GroupIndex(m)])
			lines = append(lines, b.archLineSlot(m, j))
		}
		u.members = members
		fits := true
		if anyDirty {
			u.blob, fits = b.compressGroup(lines, budget)
		}
		if fits {
			units = append(units, u)
			return units, collectEvictees()
		}
		// No longer fits: fall through to the singles breakup below.
	}

	// available reports whether line m can join a new unit without a
	// read-modify-write: it is in our eviction set or resident in the LLC.
	available := func(m mem.LineAddr) (evictee, bool) {
		if gi := core.GroupIndex(m); inSet[gi] {
			return set[gi], true
		}
		if compressing {
			if old, ok := b.llc.Probe(m); ok && old.Valid {
				return evictee{addr: m, dirty: old.Dirty, oldLevel: old.Level}, true
			}
		}
		return evictee{}, false
	}

	// pull moves an LLC-resident neighbor into the eviction set (it joins
	// a new compressed unit, so it must leave the LLC — ganged eviction).
	pull := func(ev evictee) evictee {
		gi := core.GroupIndex(ev.addr)
		if inSet[gi] {
			return set[gi]
		}
		if old, ok := b.llc.Drop(ev.addr); ok {
			ev.dirty, ev.oldLevel = old.Dirty, old.Level
		}
		set[gi], inSet[gi] = ev, true
		return ev
	}

	var assigned [core.GroupLines]bool

	// Try 4:1 across the whole group.
	if compressing {
		var evs [core.GroupLines]evictee
		lines := b.scr.lines[:0]
		ok := true
		for i := 0; i < core.GroupLines; i++ {
			m := gb + mem.LineAddr(i)
			ev, avail := available(m)
			if !avail {
				ok = false
				break
			}
			evs[i] = ev
			lines = append(lines, b.archLineSlot(m, i))
		}
		if ok {
			if blob, fits := b.compressGroup(lines, budget); fits {
				u := storeUnit{home: gb, level: cache.Comp4, blob: blob}
				members := b.scr.evMembers[len(units)][:0]
				for i := range evs {
					evs[i] = pull(evs[i])
					members = append(members, evs[i])
					u.anyDirty = u.anyDirty || evs[i].dirty
					assigned[i] = true
				}
				u.members = members
				units = append(units, u)
			}
		}
	}

	// Try 2:1 per pair for anything still unassigned in our set.
	for pi := 0; pi < 2; pi++ {
		i0, i1 := 2*pi, 2*pi+1
		pb := gb + mem.LineAddr(i0)
		if assigned[i0] && assigned[i1] {
			continue
		}
		if !inSet[i0] && !inSet[i1] {
			continue // pair untouched by this eviction
		}
		if compressing {
			ev0, a0 := available(pb)
			ev1, a1 := available(pb + 1)
			if a0 && a1 {
				lines := append(b.scr.lines[:0], b.archLineSlot(pb, 0), b.archLineSlot(pb+1, 1))
				blob, fits := b.compressGroup(lines, budget)
				if fits {
					ev0, ev1 = pull(ev0), pull(ev1)
					members := append(b.scr.evMembers[len(units)][:0], ev0, ev1)
					units = append(units, storeUnit{
						home: pb, level: cache.Comp2, blob: blob,
						members:  members,
						anyDirty: ev0.dirty || ev1.dirty,
					})
					assigned[i0], assigned[i1] = true, true
					continue
				}
			}
		}
	}

	// Singles for everything left in the set.
	for gi := 0; gi < core.GroupLines; gi++ {
		if !inSet[gi] || assigned[gi] {
			continue
		}
		members := append(b.scr.evMembers[len(units)][:0], set[gi])
		units = append(units, storeUnit{
			home: gb + mem.LineAddr(gi), level: cache.Uncompressed,
			members:  members,
			anyDirty: set[gi].dirty,
		})
		assigned[gi] = true
	}

	// Mark units whose memory image is already correct.
	for i := range units {
		u := &units[i]
		if u.anyDirty {
			continue
		}
		same := true
		for _, m := range u.members {
			if m.oldLevel != u.level {
				same = false
				break
			}
		}
		u.unchanged = same
	}

	return units, collectEvictees()
}

// staleLocations returns the member locations that held valid data before
// this eviction but are not a home afterwards — the locations PTMC must
// tombstone with Marker-IL (§IV-C "Efficiently Invalidating Stale Copies").
// All homes and evictee addresses lie within one 4-line group, so the
// lookup set is a fixed array indexed by group position and the result is
// backed by the controller's scratch arena (valid until the next call).
func (b *base) staleLocations(units []storeUnit, evictees []evictee) []mem.LineAddr {
	var newHome [core.GroupLines]bool
	for _, u := range units {
		newHome[core.GroupIndex(u.home)] = true
	}
	out := b.scr.staleBuf[:0]
	for _, ev := range evictees {
		ownWasValid := core.HomeFor(ev.addr, ev.oldLevel) == ev.addr
		if ownWasValid && !newHome[core.GroupIndex(ev.addr)] {
			out = append(out, ev.addr)
		}
	}
	return out
}
