package memctrl

import (
	"ptmc/internal/cache"
	"ptmc/internal/core"
	"ptmc/internal/mem"
)

// evictee is one line leaving the LLC (or a memory-resident "ghost" member
// of a broken compressed unit that must be preserved across the rewrite).
type evictee struct {
	addr     mem.LineAddr
	dirty    bool
	oldLevel cache.Level
	ghost    bool
}

// storeUnit is one 64-byte location to (re)write: a 4:1 quad, a 2:1 pair,
// or an uncompressed single.
type storeUnit struct {
	home     mem.LineAddr
	level    cache.Level
	members  []evictee
	blob     []byte // compressed payload (nil for singles)
	anyDirty bool
	// unchanged: same layout as before eviction and no dirty member —
	// the memory image is already correct and no write is needed.
	unchanged bool
}

// planEviction implements the paper's writeback path (§IV-C "Handling
// Updates", "Ganged Eviction" and footnote 3): gang-evict the evictee's old
// compressed unit, opportunistically pull LLC-resident neighbors to form
// the largest unit that compresses within budget (when compressing is
// true), and emit the storage units to write. Returned evictees include
// every line whose memory state this eviction touches.
func (b *base) planEviction(e cache.Entry, compressing bool, budget int) ([]storeUnit, []evictee) {
	// Reset the compression arena: blobs of the previous eviction have been
	// sealed and written by now, so their bytes can be reclaimed.
	b.scr.groupBuf = b.scr.groupBuf[:0]

	x := evictee{addr: e.Tag, dirty: e.Dirty, oldLevel: e.Level}

	// Gang eviction: the old unit leaves the LLC together.
	set := map[mem.LineAddr]evictee{x.addr: x}
	oldHome := core.HomeFor(x.addr, x.oldLevel)
	for _, m := range core.MembersAt(oldHome, x.oldLevel) {
		if m == x.addr {
			continue
		}
		if old, ok := b.llc.Drop(m); ok {
			set[m] = evictee{addr: m, dirty: old.Dirty, oldLevel: old.Level}
		} else {
			// Memory-resident member of the broken unit: preserved via
			// its architectural value (clean by definition).
			set[m] = evictee{addr: m, oldLevel: x.oldLevel, ghost: true}
		}
	}

	group := core.MembersAt(core.GroupBase(x.addr), cache.Comp4)

	// Compression disabled (Dynamic-PTMC): stop *actively compressing*,
	// do not actively decompress (§V-A: "simply deciding to stop actively
	// compressing lines"). A clean eviction of an intact compressed unit
	// leaves the memory image exactly as it is (zero writes); a dirty
	// eviction re-seals the existing unit in place when the new data still
	// fits (one write, no tombstones) and only breaks it into singles when
	// it no longer does.
	if !compressing && x.oldLevel != cache.Uncompressed {
		anyDirty := false
		for _, ev := range set {
			anyDirty = anyDirty || ev.dirty
		}
		u := storeUnit{home: oldHome, level: x.oldLevel, anyDirty: anyDirty, unchanged: !anyDirty}
		members := core.MembersAt(oldHome, x.oldLevel)
		lines := b.scr.lines[:0]
		for _, m := range members {
			u.members = append(u.members, set[m])
			lines = append(lines, b.archLine(m))
		}
		fits := true
		if anyDirty {
			u.blob, fits = b.compressGroup(lines, budget)
		}
		if fits {
			evictees := make([]evictee, 0, len(set))
			for _, m := range group {
				if ev, ok := set[m]; ok {
					evictees = append(evictees, ev)
				}
			}
			return []storeUnit{u}, evictees
		}
		// No longer fits: fall through to the singles breakup below.
	}

	// available reports whether line m can join a new unit without a
	// read-modify-write: it is in our eviction set or resident in the LLC.
	available := func(m mem.LineAddr) (evictee, bool) {
		if ev, ok := set[m]; ok {
			return ev, true
		}
		if compressing {
			if old, ok := b.llc.Probe(m); ok && old.Valid {
				return evictee{addr: m, dirty: old.Dirty, oldLevel: old.Level}, true
			}
		}
		return evictee{}, false
	}

	// pull moves an LLC-resident neighbor into the eviction set (it joins
	// a new compressed unit, so it must leave the LLC — ganged eviction).
	pull := func(ev evictee) evictee {
		if _, ok := set[ev.addr]; ok {
			return set[ev.addr]
		}
		if old, ok := b.llc.Drop(ev.addr); ok {
			ev.dirty, ev.oldLevel = old.Dirty, old.Level
		}
		set[ev.addr] = ev
		return ev
	}

	assigned := map[mem.LineAddr]bool{}
	var units []storeUnit

	// Try 4:1 across the whole group.
	if compressing {
		var evs [4]evictee
		lines := b.scr.lines[:0]
		ok := true
		for i, m := range group {
			ev, avail := available(m)
			if !avail {
				ok = false
				break
			}
			evs[i] = ev
			lines = append(lines, b.archLine(m))
		}
		if ok {
			if blob, fits := b.compressGroup(lines, budget); fits {
				u := storeUnit{home: group[0], level: cache.Comp4, blob: blob}
				for i := range evs {
					evs[i] = pull(evs[i])
					u.members = append(u.members, evs[i])
					u.anyDirty = u.anyDirty || evs[i].dirty
					assigned[evs[i].addr] = true
				}
				units = append(units, u)
			}
		}
	}

	// Try 2:1 per pair for anything still unassigned in our set.
	for _, pb := range []mem.LineAddr{group[0], group[2]} {
		p0, p1 := pb, pb+1
		if assigned[p0] && assigned[p1] {
			continue
		}
		_, in0 := set[p0]
		_, in1 := set[p1]
		if !in0 && !in1 {
			continue // pair untouched by this eviction
		}
		if compressing {
			ev0, a0 := available(p0)
			ev1, a1 := available(p1)
			if a0 && a1 {
				lines := append(b.scr.lines[:0], b.archLine(p0), b.archLine(p1))
				blob, fits := b.compressGroup(lines, budget)
				if fits {
					ev0, ev1 = pull(ev0), pull(ev1)
					units = append(units, storeUnit{
						home: pb, level: cache.Comp2, blob: blob,
						members:  []evictee{ev0, ev1},
						anyDirty: ev0.dirty || ev1.dirty,
					})
					assigned[p0], assigned[p1] = true, true
					continue
				}
			}
		}
	}

	// Singles for everything left in the set.
	for _, m := range group {
		ev, in := set[m]
		if !in || assigned[m] {
			continue
		}
		units = append(units, storeUnit{
			home: m, level: cache.Uncompressed,
			members:  []evictee{ev},
			anyDirty: ev.dirty,
		})
		assigned[m] = true
	}

	// Mark units whose memory image is already correct.
	for i := range units {
		u := &units[i]
		if u.anyDirty {
			continue
		}
		same := true
		for _, m := range u.members {
			if m.oldLevel != u.level {
				same = false
				break
			}
		}
		u.unchanged = same
	}

	evictees := make([]evictee, 0, len(set))
	for _, m := range group {
		if ev, ok := set[m]; ok {
			evictees = append(evictees, ev)
		}
	}
	return units, evictees
}

// staleLocations returns the member locations that held valid data before
// this eviction but are not a home afterwards — the locations PTMC must
// tombstone with Marker-IL (§IV-C "Efficiently Invalidating Stale Copies").
func staleLocations(units []storeUnit, evictees []evictee) []mem.LineAddr {
	newHome := map[mem.LineAddr]bool{}
	for _, u := range units {
		newHome[u.home] = true
	}
	var out []mem.LineAddr
	for _, ev := range evictees {
		ownWasValid := core.HomeFor(ev.addr, ev.oldLevel) == ev.addr
		if ownWasValid && !newHome[ev.addr] {
			out = append(out, ev.addr)
		}
	}
	return out
}
