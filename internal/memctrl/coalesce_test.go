package memctrl

import (
	"testing"

	"ptmc/internal/cache"
	"ptmc/internal/mem"
)

// TestCoalescedReadCountsBenefitOnce drives two same-group demand misses in
// one window: the second coalesces onto the first's in-flight burst. The
// free fetch must feed the utility counter exactly once — the waiter both
// counts the benefit and consumes the prefetch bit, so the LLC owner's
// later OnDemandHit contract cannot recount it — and the one physical burst
// must produce exactly one compressed fill and one predictor record.
func TestCoalescedReadCountsBenefitOnce(t *testing.T) {
	// SampleFrac 1 samples every set, so benefit events always count.
	r := newPTMCRig(t, WithDynamic(1, 1.0, false))
	p := r.ctrl.(*PTMC)
	dyn := p.Dynamic()

	base := mem.LineAddr(640)
	buildLayout(t, r, base, layoutQuad)
	for j := 0; j < 4; j++ {
		r.llc.Drop(base + mem.LineAddr(j))
	}

	// Train the page's LLP entry so the non-base line predicts the quad
	// home and both reads target the same DRAM location.
	y := base + 1
	p.LLP().Record(y, cache.Comp4, false, false)

	st := p.Stats()
	beforeUseful := st.UsefulFreePf
	beforeFills := st.FillsCompressed
	beforeCoalesced := st.CoalescedReads
	beforePred := p.LLP().Predictions
	beforeBenefits := dyn.Counters()[0].Benefits

	done1, done2 := int64(-1), int64(-1)
	r.ctrl.Read(0, base, r.now, func(c int64) { done1 = c })
	r.ctrl.Read(0, y, r.now, func(c int64) { done2 = c })
	r.drain()

	if done1 < 0 || done2 < 0 {
		t.Fatalf("reads did not complete: done1=%d done2=%d", done1, done2)
	}
	if got := st.CoalescedReads - beforeCoalesced; got != 1 {
		t.Fatalf("CoalescedReads delta = %d, want 1 (second read must coalesce)", got)
	}

	// S2: one burst, one fill, one predictor record (the primary's).
	if got := st.FillsCompressed - beforeFills; got != 1 {
		t.Errorf("FillsCompressed delta = %d, want 1 (waiter must not re-count the fill)", got)
	}
	if got := p.LLP().Predictions - beforePred; got != 0 {
		t.Errorf("LLP Predictions delta = %d, want 0 (waiter must not re-record)", got)
	}

	// S1: the waiter consumed the benefit, so its line's prefetch bit must
	// be clear...
	e, in := r.llc.Probe(y)
	if !in {
		t.Fatal("coalesced demand line not resident after drain")
	}
	if e.Prefetch {
		t.Error("prefetch bit still set on the coalesced demand line (benefit would double-count)")
	}
	// ...and replaying the LLC owner's demand-hit contract must not add a
	// second benefit for the same free fetch.
	if e.Prefetch {
		p.OnDemandHit(0, y)
	}
	if got := st.UsefulFreePf - beforeUseful; got != 1 {
		t.Errorf("UsefulFreePf delta = %d, want exactly 1 benefit event", got)
	}
	if got := dyn.Counters()[0].Benefits - beforeBenefits; got != 1 {
		t.Errorf("utility-counter Benefits delta = %d, want exactly 1", got)
	}

	// Untouched members keep their prefetch bits: their benefit is still
	// pending and a demand hit on them should count normally.
	for j := 2; j < 4; j++ {
		if e, in := r.llc.Probe(base + mem.LineAddr(j)); !in || !e.Prefetch {
			t.Errorf("member +%d lost its pending free-prefetch bit (in=%v)", j, in)
		}
	}
	wantLine(t, r.arch.Read(y), compressibleLine(17), "coalesced read value")
}

// TestCoalescedWaiterStillFillsWhenNotInstalled: coalescing alone must not
// suppress a real fill. When the read already in flight for the shared
// location does not install the waiter's line (here: a metadata-style read
// with no fill callback), the waiter's fill is real work and keeps normal
// accounting.
func TestCoalescedWaiterStillFillsWhenNotInstalled(t *testing.T) {
	r := newPTMCRig(t)
	p := r.ctrl.(*PTMC)

	base := mem.LineAddr(640)
	buildLayout(t, r, base, layoutQuad)
	for j := 0; j < 4; j++ {
		r.llc.Drop(base + mem.LineAddr(j))
	}

	beforeFills := p.Stats().FillsCompressed
	beforeUseful := p.Stats().UsefulFreePf
	p.issue(base, false, kMetadataRead, r.now, func(c int64) {})
	done := int64(-1)
	p.LLP().Record(base+1, cache.Comp4, false, false)
	r.ctrl.Read(0, base+1, r.now, func(c int64) { done = c })
	r.drain()

	if done < 0 {
		t.Fatal("coalesced read did not complete")
	}
	if got := p.Stats().FillsCompressed - beforeFills; got != 1 {
		t.Errorf("FillsCompressed delta = %d, want 1 (waiter's fill is real work)", got)
	}
	if got := p.Stats().UsefulFreePf - beforeUseful; got != 0 {
		t.Errorf("UsefulFreePf delta = %d, want 0 (no primary fill, no free fetch)", got)
	}
	if _, in := r.llc.Probe(base + 1); !in {
		t.Error("demand line not installed by the waiter's own fill")
	}
	wantLine(t, r.arch.Read(base+1), compressibleLine(17), "waiter-filled value")
}
