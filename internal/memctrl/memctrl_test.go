package memctrl

import (
	"math/rand"
	"testing"

	"ptmc/internal/cache"
	"ptmc/internal/core"
	"ptmc/internal/dram"
	"ptmc/internal/mem"
)

func newUncompressedRig(t *testing.T) *rig {
	return newRig(t, 64*64, func(d *dram.DRAM, img, arch *mem.Store, llc LLC) Controller {
		return NewUncompressed(d, img, arch, llc)
	})
}

func newPTMCRig(t *testing.T, opts ...PTMCOption) *rig {
	return newRig(t, 64*64, func(d *dram.DRAM, img, arch *mem.Store, llc LLC) Controller {
		return NewPTMC(d, img, arch, llc, 42, opts...)
	})
}

func TestUncompressedRoundTrip(t *testing.T) {
	r := newUncompressedRig(t)
	val := compressibleLine(7)
	r.write(0, 100, val)
	r.evict(100)
	got := r.read(0, 100)
	wantLine(t, got, val, "read after writeback")
	st := r.ctrl.Stats()
	if st.DirtyWrites != 1 || st.DemandReads == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.IntegrityErrs != 0 {
		t.Errorf("integrity errors = %d", st.IntegrityErrs)
	}
	wantLine(t, r.img.Read(100), val, "DRAM image after writeback")
}

func TestUncompressedCleanEvictFree(t *testing.T) {
	r := newUncompressedRig(t)
	r.read(0, 5)
	r.evict(5)
	if got := r.ctrl.Stats().TotalWrites(); got != 0 {
		t.Errorf("clean evict cost %d writes, want 0", got)
	}
}

func TestPTMCPairCompression(t *testing.T) {
	r := newPTMCRig(t)
	// Two adjacent compressible lines, both dirty.
	r.write(0, 200, compressibleLine(1))
	r.write(0, 201, compressibleLine(2))
	r.evict(200) // ganged eviction takes 201 too

	st := r.ctrl.Stats()
	if st.Groups2 != 1 {
		t.Fatalf("Groups2 = %d, want 1", st.Groups2)
	}
	if st.Invalidates != 1 {
		t.Errorf("Invalidates = %d, want 1 (201's old location)", st.Invalidates)
	}
	if _, in := r.llc.Probe(201); in {
		t.Error("ganged eviction should have removed 201")
	}

	// The image at 200 is a sealed 2:1 unit; 201 is a tombstone.
	p := r.ctrl.(*PTMC)
	if got := p.Markers().Classify(200, r.img.Read(200)); got != core.ClassComp2 {
		t.Errorf("image class at 200 = %v, want 2:1", got)
	}
	if got := p.Markers().Classify(201, r.img.Read(201)); got != core.ClassInvalid {
		t.Errorf("image class at 201 = %v, want invalid", got)
	}

	// Reading either line streams out both.
	wantLine(t, r.read(0, 200), compressibleLine(1), "line 200")
	if _, in := r.llc.Probe(201); !in {
		t.Error("201 should have been installed for free")
	}
	if st.FreeInstalls == 0 || st.FillsCompressed == 0 {
		t.Errorf("stats = %+v", st)
	}
	wantLine(t, r.read(0, 201), compressibleLine(2), "line 201")
	if st.IntegrityErrs != 0 {
		t.Errorf("integrity errors = %d", st.IntegrityErrs)
	}
}

func TestPTMCQuadCompression(t *testing.T) {
	r := newPTMCRig(t)
	for i := 0; i < 4; i++ {
		r.write(0, mem.LineAddr(400+i), compressibleLine(byte(i)))
	}
	r.evict(401) // any member triggers the whole group

	st := r.ctrl.Stats()
	if st.Groups4 != 1 {
		t.Fatalf("Groups4 = %d, want 1 (stats %+v)", st.Groups4, st)
	}
	// Locations 401..403 become tombstones; 400 holds the quad.
	if st.Invalidates != 3 {
		t.Errorf("Invalidates = %d, want 3", st.Invalidates)
	}
	// One read brings back all four.
	wantLine(t, r.read(0, 403), compressibleLine(3), "line 403")
	for i := 0; i < 4; i++ {
		if _, in := r.llc.Probe(mem.LineAddr(400 + i)); !in {
			t.Errorf("member %d not resident after one fill", i)
		}
	}
	if st.FreeInstalls < 3 {
		t.Errorf("FreeInstalls = %d, want >= 3", st.FreeInstalls)
	}
	if st.IntegrityErrs != 0 {
		t.Errorf("integrity errors = %d", st.IntegrityErrs)
	}
}

func TestPTMCIncompressibleStaysSingle(t *testing.T) {
	r := newPTMCRig(t)
	r.write(0, 300, incompressibleLine(1))
	r.write(0, 301, incompressibleLine(2))
	r.evict(300)
	st := r.ctrl.Stats()
	if st.Groups2 != 0 || st.Groups4 != 0 {
		t.Error("incompressible pair must not form a unit")
	}
	wantLine(t, r.read(0, 300), incompressibleLine(1), "line 300")
}

func TestPTMCUpdateBreaksGroup(t *testing.T) {
	// §IV-C "Handling Updates to Compressed Lines": a compressed pair is
	// re-fetched, one member becomes incompressible, and the writeback
	// must relocate the partner back to its own location.
	r := newPTMCRig(t)
	r.write(0, 200, compressibleLine(1))
	r.write(0, 201, compressibleLine(2))
	r.evict(200)
	r.read(0, 200) // fills both with level tags Comp2

	// Dirty 201 with incompressible data.
	r.write(0, 201, incompressibleLine(9))
	r.evict(201) // gang-evicts 200 as well

	p := r.ctrl.(*PTMC)
	if got := p.Markers().Classify(200, r.img.Read(200)); got != core.ClassUncompressed {
		t.Errorf("200 image class = %v, want uncompressed", got)
	}
	if got := p.Markers().Classify(201, r.img.Read(201)); got != core.ClassUncompressed {
		t.Errorf("201 image class = %v, want uncompressed", got)
	}
	wantLine(t, r.read(0, 200), compressibleLine(1), "relocated partner")
	wantLine(t, r.read(0, 201), incompressibleLine(9), "updated line")
	if r.ctrl.Stats().IntegrityErrs != 0 {
		t.Error("integrity errors")
	}
}

func TestPTMCLLPMispredictRecovers(t *testing.T) {
	r := newPTMCRig(t)
	// Train the page toward 2:1 by compressing a pair...
	r.write(0, 200, compressibleLine(1))
	r.write(0, 201, compressibleLine(2))
	r.evict(200)
	// ...then place an uncompressed line in the same page.
	r.write(0, 210, incompressibleLine(3))
	r.evict(210)
	before := r.ctrl.Stats().MispredictReads
	// 211 is untouched memory; 210's eviction trained nothing about 211's
	// location, but the LLP predicts per page. Read 201 after re-breaking
	// the pair to force a wrong location.
	r.write(0, 201, incompressibleLine(4))
	r.evict(201)
	// Page LCT now says "uncompressed"; make it say compressed again via
	// a fresh pair elsewhere in the page, then read 201 (now single).
	r.write(0, 204, compressibleLine(5))
	r.write(0, 205, compressibleLine(6))
	r.evict(204)
	got := r.read(0, 201)
	wantLine(t, got, incompressibleLine(4), "mispredicted line value")
	if r.ctrl.Stats().MispredictReads == before {
		t.Error("expected at least one mispredict re-read")
	}
	if r.ctrl.Stats().IntegrityErrs != 0 {
		t.Error("integrity errors")
	}
}

func TestPTMCMarkerCollisionInversion(t *testing.T) {
	r := newPTMCRig(t)
	p := r.ctrl.(*PTMC)
	// Engineer a line whose tail equals its own 2:1 marker.
	val := incompressibleLine(5)
	m := p.Markers().Marker2(500)
	val[60] = byte(m)
	val[61] = byte(m >> 8)
	val[62] = byte(m >> 16)
	val[63] = byte(m >> 24)

	r.write(0, 500, val)
	r.evict(500)
	if p.Stats().Inversions != 1 {
		t.Fatalf("Inversions = %d, want 1", p.Stats().Inversions)
	}
	if inv, _ := p.LIT().Contains(500); !inv {
		t.Fatal("LIT should track the inverted line")
	}
	wantLine(t, r.read(0, 500), val, "inverted line reads back original")

	// Overwrite with non-colliding data: LIT entry must clear.
	r.write(0, 500, compressibleLine(9))
	r.evict(500)
	if inv, _ := p.LIT().Contains(500); inv {
		t.Error("LIT entry should clear once the collision is gone")
	}
	if p.Stats().IntegrityErrs != 0 {
		t.Error("integrity errors")
	}
}

func TestPTMCLITOverflowReKeys(t *testing.T) {
	r := newPTMCRig(t)
	p := r.ctrl.(*PTMC)
	// Adversary: craft 17 colliding lines (knows the key — worst case).
	for i := 0; i <= core.LITEntries; i++ {
		a := mem.LineAddr(1000 + i*4) // distinct groups, no compression
		val := incompressibleLine(uint64(i))
		m := p.Markers().Marker2(a)
		// The marker generation may change mid-loop (re-key); recompute.
		m = p.Markers().Marker2(a)
		val[60], val[61], val[62], val[63] = byte(m), byte(m>>8), byte(m>>16), byte(m>>24)
		r.write(0, a, val)
		r.evict(a)
	}
	if p.Stats().ReKeys == 0 {
		t.Fatal("LIT overflow should have re-keyed")
	}
	// After re-keying, every line must still read back correctly.
	for i := 0; i <= core.LITEntries; i++ {
		a := mem.LineAddr(1000 + i*4)
		got := r.read(0, a)
		wantLine(t, got, r.arch.Read(a), "post-rekey line")
	}
	if p.Stats().IntegrityErrs != 0 {
		t.Error("integrity errors after re-key")
	}
}

func TestPTMCMemoryMappedLIT(t *testing.T) {
	r := newPTMCRig(t, WithLITMode(core.LITMemoryMapped))
	p := r.ctrl.(*PTMC)
	for i := 0; i <= core.LITEntries+3; i++ {
		a := mem.LineAddr(2000 + i*4)
		val := incompressibleLine(uint64(i))
		m := p.Markers().Marker2(a)
		val[60], val[61], val[62], val[63] = byte(m), byte(m>>8), byte(m>>16), byte(m>>24)
		r.write(0, a, val)
		r.evict(a)
	}
	if p.Stats().ReKeys != 0 {
		t.Error("memory-mapped LIT must not re-key")
	}
	if p.LIT().Overflows == 0 {
		t.Error("expected LIT overflows into the memory-mapped region")
	}
	for i := 0; i <= core.LITEntries+3; i++ {
		a := mem.LineAddr(2000 + i*4)
		wantLine(t, r.read(0, a), r.arch.Read(a), "spilled inverted line")
	}
}

func TestPTMCCleanEvictionCompressesAndCosts(t *testing.T) {
	// Clean lines are compressed on eviction — the inherent cost of
	// compression (§V): bandwidth spent now for bandwidth saved later.
	r := newPTMCRig(t)
	r.write(0, 240, compressibleLine(1))
	r.write(0, 241, compressibleLine(2))
	r.evict(240)   // pair written (dirty)
	r.read(0, 240) // refill both, clean, tags Comp2
	r.evict(240)   // clean ganged eviction: image unchanged
	st := r.ctrl.Stats()
	if st.CleanCompIntoW != 0 {
		t.Errorf("unchanged clean unit rewrote memory (%d writes)", st.CleanCompIntoW)
	}

	// Now a clean eviction that *changes* layout: fill two fresh
	// uncompressed-resident lines, evict clean -> compression write.
	r.write(0, 260, compressibleLine(3))
	r.evict(260)
	r.write(0, 261, compressibleLine(4))
	r.evict(261) // 260 not resident: single
	r.read(0, 260)
	r.read(0, 261) // both resident now, clean, tags Uncompressed
	r.evict(260)   // clean eviction forms a pair: costs a write + invalidate
	if st.CleanCompIntoW == 0 {
		t.Error("clean compression should cost a write")
	}
	wantLine(t, r.read(0, 261), compressibleLine(4), "after clean compression")
}

func TestDynamicPTMCDisablesUnderCosts(t *testing.T) {
	r := newPTMCRig(t, WithDynamic(1, 0.02, false))
	p := r.ctrl.(*PTMC)
	dyn := p.Dynamic()
	if dyn == nil {
		t.Fatal("dynamic policy missing")
	}
	// Drive costs through the sampled sets until compression disables.
	ctr := dyn.Counters()[0]
	for ctr.Enabled() {
		dyn.Cost(0)
	}
	// Non-sampled evictions must now write singles even when compressible.
	var a mem.LineAddr
	for probe := mem.LineAddr(0); ; probe += 4 {
		if !dyn.Sampled(r.llc.SetIndex(probe)) && !dyn.Sampled(r.llc.SetIndex(probe+1)) {
			a = probe
			break
		}
	}
	r.write(0, a, compressibleLine(1))
	r.write(0, a+1, compressibleLine(2))
	r.evict(a)
	if got := p.Stats().Groups2; got != 0 {
		t.Errorf("disabled dynamic still compressed (%d pairs)", got)
	}
	wantLine(t, r.read(0, a), compressibleLine(1), "uncompressed path")
}

func TestDynamicPTMCSampledSetsAlwaysCompress(t *testing.T) {
	r := newPTMCRig(t, WithDynamic(1, 0.02, false))
	p := r.ctrl.(*PTMC)
	dyn := p.Dynamic()
	for dyn.Counters()[0].Enabled() {
		dyn.Cost(0)
	}
	// Find a pair living in sampled sets.
	var a mem.LineAddr = ^mem.LineAddr(0)
	for probe := mem.LineAddr(0); probe < 4096; probe += 4 {
		if dyn.Sampled(r.llc.SetIndex(probe)) {
			a = probe
			break
		}
	}
	if a == ^mem.LineAddr(0) {
		t.Skip("no sampled pair base in range")
	}
	r.write(0, a, compressibleLine(1))
	r.write(0, a+1, compressibleLine(2))
	r.evict(a)
	if p.Stats().Groups2 == 0 {
		t.Error("sampled set should compress even when globally disabled")
	}
}

func TestNextLinePrefetchTraffic(t *testing.T) {
	r := newRig(t, 64*64, func(d *dram.DRAM, img, arch *mem.Store, llc LLC) Controller {
		return NewNextLinePrefetch(d, img, arch, llc)
	})
	r.read(0, 100)
	r.drain()
	st := r.ctrl.Stats()
	if st.PrefetchReads != 1 {
		t.Errorf("PrefetchReads = %d, want 1", st.PrefetchReads)
	}
	if _, in := r.llc.Probe(101); !in {
		t.Error("next line should be resident")
	}
}

func TestIdealTMCOneAccessPerGroup(t *testing.T) {
	r := newRig(t, 64*64, func(d *dram.DRAM, img, arch *mem.Store, llc LLC) Controller {
		return NewIdealTMC(d, img, arch, llc)
	})
	for i := 0; i < 4; i++ {
		r.write(0, mem.LineAddr(400+i), compressibleLine(byte(i)))
	}
	r.evict(401) // ganged eviction compresses the quad
	st := r.ctrl.Stats()
	base := st.DemandReads
	wantLine(t, r.read(0, 402), compressibleLine(2), "ideal fill")
	if st.DemandReads != base+1 {
		t.Errorf("ideal read cost %d accesses, want 1", st.DemandReads-base)
	}
	for i := 0; i < 4; i++ {
		if _, in := r.llc.Probe(mem.LineAddr(400 + i)); !in {
			t.Errorf("member %d missing after one ideal access", i)
		}
	}
	// The image holds a 4:1 quad and three tombstones, yet none of that
	// maintenance consumed DRAM bandwidth (charged categories stay zero).
	if st.CleanCompIntoW != 0 || st.Invalidates != 0 ||
		st.MetadataReads != 0 || st.MispredictReads != 0 {
		t.Errorf("ideal must have zero overhead: %+v", st)
	}
	// Clean re-eviction of the quad must also be free.
	writes := r.d.Stats.Writes
	r.evict(402)
	if r.d.Stats.Writes != writes {
		t.Errorf("clean ideal eviction wrote DRAM (%d -> %d)", writes, r.d.Stats.Writes)
	}
}

func TestTableTMCMetadataTraffic(t *testing.T) {
	r := newRig(t, 64*64, func(d *dram.DRAM, img, arch *mem.Store, llc LLC) Controller {
		c, err := NewTableTMC(d, img, arch, llc, 1<<30, 32<<10)
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
	r.read(0, 100)
	st := r.ctrl.Stats()
	if st.MetadataReads != 1 {
		t.Errorf("cold fill metadata reads = %d, want 1", st.MetadataReads)
	}
	r.read(0, 101) // same metadata line: cached
	if st.MetadataReads != 1 {
		t.Errorf("warm fill metadata reads = %d, want 1", st.MetadataReads)
	}

	// Compress a pair and read it back through CSI.
	r.write(0, 200, compressibleLine(1))
	r.write(0, 201, compressibleLine(2))
	r.evict(200)
	tt := r.ctrl.(*TableTMC)
	if tt.Meta().Peek(200) != cache.Comp2 || tt.Meta().Peek(201) != cache.Comp2 {
		t.Error("CSI should record the 2:1 pair")
	}
	if st.Invalidates != 0 {
		t.Error("table-based design needs no Marker-IL tombstones")
	}
	wantLine(t, r.read(0, 201), compressibleLine(2), "CSI-directed fill")
	if _, in := r.llc.Probe(200); !in {
		t.Error("pair partner should install for free")
	}
	if st.IntegrityErrs != 0 {
		t.Error("integrity errors")
	}
}

// TestImageSoundnessProperty is the repo's central invariant (DESIGN.md
// §6): after an arbitrary interleaving of writes, evictions, and reads, a
// cold read of every touched line returns the architectural value, for
// every scheme.
func TestImageSoundnessProperty(t *testing.T) {
	schemes := map[string]func(t *testing.T) *rig{
		"uncompressed": func(t *testing.T) *rig { return newUncompressedRig(t) },
		"ptmc":         func(t *testing.T) *rig { return newPTMCRig(t) },
		"dynamic-ptmc": func(t *testing.T) *rig {
			return newPTMCRig(t, WithDynamic(2, 0.05, true))
		},
		"table-tmc": func(t *testing.T) *rig {
			return newRig(t, 64*64, func(d *dram.DRAM, img, arch *mem.Store, llc LLC) Controller {
				c, err := NewTableTMC(d, img, arch, llc, 1<<30, 32<<10)
				if err != nil {
					t.Fatal(err)
				}
				return c
			})
		},
		"ideal": func(t *testing.T) *rig {
			return newRig(t, 64*64, func(d *dram.DRAM, img, arch *mem.Store, llc LLC) Controller {
				return NewIdealTMC(d, img, arch, llc)
			})
		},
	}
	for name, mk := range schemes {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				r := mk(t)
				rng := rand.New(rand.NewSource(seed))
				touched := map[mem.LineAddr]bool{}
				for op := 0; op < 1200; op++ {
					a := mem.LineAddr(rng.Intn(256))
					switch rng.Intn(4) {
					case 0, 1: // store with varied compressibility
						var val []byte
						if rng.Intn(2) == 0 {
							val = compressibleLine(byte(rng.Intn(250)))
						} else {
							val = incompressibleLine(rng.Uint64())
						}
						r.write(int(a)%2, a, val)
						touched[a] = true
					case 2: // load
						got := r.read(int(a)%2, a)
						wantLine(t, got, r.arch.Read(a), "load value")
						touched[a] = true
					case 3: // force eviction
						r.evict(a)
					}
				}
				r.flushAll()
				for a := range touched {
					got := r.read(0, a)
					wantLine(t, got, r.arch.Read(a), "cold readback")
				}
				if errs := r.ctrl.Stats().IntegrityErrs; errs != 0 {
					t.Fatalf("seed %d: %d integrity errors", seed, errs)
				}
			}
		})
	}
}
