package memctrl

import (
	"ptmc/internal/cache"
	"ptmc/internal/dram"
	"ptmc/internal/mem"
	"ptmc/internal/metadata"
)

// MemZip models the prior TMC design the paper positions itself against
// (§I, §VII: Shafiee et al., HPCA 2014): every line stays at its own
// location, but it is stored compressed within one chip and streamed out
// with a reduced burst length proportional to its compressed size. This
// requires non-commodity DIMM organization and variable-burst bus
// protocols — the deployment obstacle PTMC removes — and it still needs
// per-line metadata (the burst length) before the read can be issued,
// which this model serves through the same memory-backed metadata table +
// cache as TableTMC.
//
// Bandwidth benefit: burst beats = ceil(compressedBytes/8) instead of 8.
// No co-location, so there is no free-prefetch effect and no invalidates.
type MemZip struct {
	base
	meta *metadata.Table
	// beats is the functional truth of the metadata table's contents: each
	// line's stored burst length, 1-8. The value does not fit the table's
	// 2-bit CSI encoding, so it lives here and metadata-cache traffic is
	// charged through meta.Touch. Array-backed pages keep the eviction hot
	// path allocation-free and let the epoch engine's first-touch fan-out
	// record disjoint lines without locks (see beatStore).
	beats beatStore
	// initScr is per-shard compression scratch for the engine's parallel
	// first-touch init; indexed by mem.ShardOf, the same key the fan-out
	// partitions lines by, so no two shards share a buffer.
	initScr [][]byte
}

// NewMemZip builds the comparator; metaBase/mcacheBytes configure the
// burst-length metadata path.
func NewMemZip(d *dram.DRAM, img, arch *mem.Store, llc LLC,
	metaBase mem.LineAddr, mcacheBytes int) (*MemZip, error) {
	mt, err := metadata.New(metaBase, mcacheBytes)
	if err != nil {
		return nil, err
	}
	return &MemZip{
		base:  newBase("memzip", d, img, arch, llc),
		meta:  mt,
		beats: newBeatStore(),
	}, nil
}

// Meta exposes the metadata table (hit-rate reporting).
func (z *MemZip) Meta() *metadata.Table { return z.meta }

// StoredBeats returns the burst length currently recorded for a line
// (verification and tests; 8 for lines never stored).
func (z *MemZip) StoredBeats(a mem.LineAddr) int { return z.beats.get(a) }

// beatsOfLen converts a compressed encoding's byte length to a burst
// length in 8-byte bus beats, clamped to [1, 8].
func beatsOfLen(encLen int) int {
	beats := (encLen + 7) / 8
	if beats > 8 {
		beats = 8
	}
	if beats < 1 {
		beats = 1
	}
	return beats
}

// lineBeats compresses a line's current value into its burst length. The
// encoding lands in the scratch arena (only its length matters here), so
// the per-writeback compression allocates nothing.
func (z *MemZip) lineBeats(a mem.LineAddr) int {
	enc := z.alg.AppendCompress(z.scr.groupBuf[:0], z.arch.Read(a))
	z.scr.groupBuf = enc[:0]
	return beatsOfLen(len(enc))
}

// InitLine implements Controller: first-touch lines enter memory in
// compressed form (MemZip compresses in place; there is no relocation, so
// no prefetch-pollution concern).
func (z *MemZip) InitLine(a mem.LineAddr) {
	z.img.Write(a, z.arch.Read(a))
	z.beats.set(a, z.lineBeats(a))
}

// SetupShardInit implements ShardPageIniter: size the per-shard
// compression scratch the concurrent InitLineReady calls encode into.
func (z *MemZip) SetupShardInit(shards int) {
	z.initScr = make([][]byte, shards)
}

// BeginPageInit implements ShardPageIniter: pre-create the page's beat
// slots on the coordinating goroutine, so the fan-out's set calls only
// write disjoint bytes of an existing array.
func (z *MemZip) BeginPageInit(pageBase mem.LineAddr) {
	z.beats.page(pageBase)
}

// InitLineReady implements ShardIniter. A first-touch MemZip line is
// stored compressed in place, but the bytes at its location are the raw
// value either way — the reduced burst is a bus-protocol effect, not a
// layout change — so the image the engine synthesized is already correct;
// all that must be recorded is the line's burst length. That write is
// race-free under the fan-out: the slot is this line's own byte of a page
// BeginPageInit created, and the compression scratch is per-shard.
func (z *MemZip) InitLineReady(a mem.LineAddr, data []byte) bool {
	sh := mem.ShardOf(a, len(z.initScr))
	enc := z.alg.AppendCompress(z.initScr[sh][:0], data)
	z.initScr[sh] = enc[:0]
	z.beats.set(a, beatsOfLen(len(enc)))
	return true
}

// issueBeats sends a reduced-burst DRAM request.
func (z *MemZip) issueBeats(a mem.LineAddr, write bool, beats int, k kind, now int64, done Done) {
	// Reuse base.issue's coalescing/retry plumbing by constructing the
	// request here; accounting matches full bursts (each is one request).
	z.account(k)
	req := z.d.AcquireRequest()
	req.Addr, req.Write, req.Beats = a, write, beats
	if done != nil || !write {
		z.outstanding++
		req.OnComplete = func(c int64) {
			z.outstanding--
			if done != nil {
				done(c)
			}
		}
	}
	if !z.d.Enqueue(req, now) {
		z.retry = append(z.retry, req)
	}
}

// Read implements Controller: metadata lookup (burst length) first, then a
// reduced burst for the data.
func (z *MemZip) Read(core_ int, a mem.LineAddr, now int64, done Done) {
	tr := z.meta.Touch(a, false)
	proceed := func(c int64) {
		beats := z.beats.get(a)
		z.issueBeats(a, false, beats, kDemandRead, c, func(c2 int64) {
			if beats < 8 {
				c2 += z.decompLat
				z.st.FillsCompressed++
			} else {
				z.st.FillsUncompressed++
			}
			z.checkIntegrity(a, z.img.Read(a))
			z.install(core_, a, false, false, cache.Uncompressed, c2)
			done(c2)
		})
	}
	if tr.NeedWrite {
		z.issue(tr.WriteAddr, true, kMetadataWrite, now, nil)
	}
	if tr.NeedRead {
		z.issue(tr.ReadAddr, false, kMetadataRead, now, proceed)
		return
	}
	proceed(now)
}

// Evict implements Controller: dirty lines re-compress in place; a burst
// length change costs a metadata update. The full 1-8 beat value goes to
// the beat store; the metadata cache is touched dirty for the CSI-line
// traffic. (An earlier version squeezed the length through the table's
// 2-bit level encoding as newBeats&3, aliasing beats {4,8}→0 and {5,1}→1
// in the stored state; the dedicated store keeps every transition exact.)
func (z *MemZip) Evict(core_ int, e cache.Entry, now int64) {
	if !e.Dirty {
		return
	}
	z.img.Write(e.Tag, z.arch.Read(e.Tag))
	newBeats := z.lineBeats(e.Tag)
	old := z.beats.get(e.Tag)
	z.beats.set(e.Tag, newBeats)
	z.issueBeats(e.Tag, true, newBeats, kDirtyWrite, now, nil)
	if newBeats != old {
		tr := z.meta.Touch(e.Tag, true)
		if tr.NeedWrite {
			z.issue(tr.WriteAddr, true, kMetadataWrite, now, nil)
		}
		if tr.NeedRead {
			z.issue(tr.ReadAddr, false, kMetadataRead, now, nil)
		}
	}
}
