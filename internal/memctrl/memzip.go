package memctrl

import (
	"ptmc/internal/cache"
	"ptmc/internal/dram"
	"ptmc/internal/mem"
	"ptmc/internal/metadata"
)

// MemZip models the prior TMC design the paper positions itself against
// (§I, §VII: Shafiee et al., HPCA 2014): every line stays at its own
// location, but it is stored compressed within one chip and streamed out
// with a reduced burst length proportional to its compressed size. This
// requires non-commodity DIMM organization and variable-burst bus
// protocols — the deployment obstacle PTMC removes — and it still needs
// per-line metadata (the burst length) before the read can be issued,
// which this model serves through the same memory-backed metadata table +
// cache as TableTMC.
//
// Bandwidth benefit: burst beats = ceil(compressedBytes/8) instead of 8.
// No co-location, so there is no free-prefetch effect and no invalidates.
type MemZip struct {
	base
	meta *metadata.Table
	// beats caches each line's stored burst length (the functional truth
	// of the metadata table's contents).
	beats map[mem.LineAddr]int
}

// NewMemZip builds the comparator; metaBase/mcacheBytes configure the
// burst-length metadata path.
func NewMemZip(d *dram.DRAM, img, arch *mem.Store, llc LLC,
	metaBase mem.LineAddr, mcacheBytes int) (*MemZip, error) {
	mt, err := metadata.New(metaBase, mcacheBytes)
	if err != nil {
		return nil, err
	}
	return &MemZip{
		base:  newBase("memzip", d, img, arch, llc),
		meta:  mt,
		beats: make(map[mem.LineAddr]int),
	}, nil
}

// Meta exposes the metadata table (hit-rate reporting).
func (z *MemZip) Meta() *metadata.Table { return z.meta }

// lineBeats compresses a line's current value into its burst length. The
// encoding lands in the scratch arena (only its length matters here), so
// the per-writeback compression allocates nothing.
func (z *MemZip) lineBeats(a mem.LineAddr) int {
	enc := z.alg.AppendCompress(z.scr.groupBuf[:0], z.arch.Read(a))
	z.scr.groupBuf = enc[:0]
	beats := (len(enc) + 7) / 8
	if beats > 8 {
		beats = 8
	}
	if beats < 1 {
		beats = 1
	}
	return beats
}

// InitLine implements Controller: first-touch lines enter memory in
// compressed form (MemZip compresses in place; there is no relocation, so
// no prefetch-pollution concern).
func (z *MemZip) InitLine(a mem.LineAddr) {
	z.img.Write(a, z.arch.Read(a))
	z.beats[a] = z.lineBeats(a)
}

// issueBeats sends a reduced-burst DRAM request.
func (z *MemZip) issueBeats(a mem.LineAddr, write bool, beats int, k kind, now int64, done Done) {
	// Reuse base.issue's coalescing/retry plumbing by constructing the
	// request here; accounting matches full bursts (each is one request).
	z.account(k)
	req := &dram.Request{Addr: a, Write: write, Beats: beats}
	if done != nil || !write {
		z.outstanding++
		req.OnComplete = func(c int64) {
			z.outstanding--
			if done != nil {
				done(c)
			}
		}
	}
	if !z.d.Enqueue(req, now) {
		z.retry = append(z.retry, req)
	}
}

// Read implements Controller: metadata lookup (burst length) first, then a
// reduced burst for the data.
func (z *MemZip) Read(core_ int, a mem.LineAddr, now int64, done Done) {
	_, tr := z.meta.Lookup(a)
	proceed := func(c int64) {
		beats, ok := z.beats[a]
		if !ok {
			beats = 8
		}
		z.issueBeats(a, false, beats, kDemandRead, c, func(c2 int64) {
			if beats < 8 {
				c2 += z.decompLat
				z.st.FillsCompressed++
			} else {
				z.st.FillsUncompressed++
			}
			z.checkIntegrity(a, z.img.Read(a))
			z.install(core_, a, false, false, cache.Uncompressed, c2)
			done(c2)
		})
	}
	if tr.NeedWrite {
		z.issue(tr.WriteAddr, true, kMetadataWrite, now, nil)
	}
	if tr.NeedRead {
		z.issue(tr.ReadAddr, false, kMetadataRead, now, proceed)
		return
	}
	proceed(now)
}

// Evict implements Controller: dirty lines re-compress in place; the burst
// length changes cost a metadata update.
func (z *MemZip) Evict(core_ int, e cache.Entry, now int64) {
	if !e.Dirty {
		return
	}
	z.img.Write(e.Tag, z.arch.Read(e.Tag))
	newBeats := z.lineBeats(e.Tag)
	old := z.beats[e.Tag]
	z.beats[e.Tag] = newBeats
	z.issueBeats(e.Tag, true, newBeats, kDirtyWrite, now, nil)
	if newBeats != old {
		tr := z.meta.Update(e.Tag, cache.Level(newBeats&3))
		if tr.NeedWrite {
			z.issue(tr.WriteAddr, true, kMetadataWrite, now, nil)
		}
		if tr.NeedRead {
			z.issue(tr.ReadAddr, false, kMetadataRead, now, nil)
		}
	}
}
