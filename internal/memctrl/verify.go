package memctrl

import (
	"bytes"
	"fmt"

	"ptmc/internal/cache"
	"ptmc/internal/compress"
	"ptmc/internal/core"
	"ptmc/internal/mem"
)

// VerifyImage scans every touched line of the DRAM image and checks the
// paper's soundness invariant end to end: classifying a location by its
// inline markers (plus the LIT) yields an interpretation under which every
// line whose authoritative copy is in memory decodes to its architectural
// value, and no location is interpretable two ways.
//
// inLLC reports lines whose authoritative copy is (possibly dirty) in the
// cache hierarchy — memory is allowed to be stale for exactly those.
// VerifyImage returns the number of lines whose authoritative copy was
// verified in memory, or an error naming the first violation.
func (p *PTMC) VerifyImage(inLLC func(a mem.LineAddr) bool) (int, error) {
	covered := map[mem.LineAddr]mem.LineAddr{} // line -> home that serves it
	verified := 0

	for _, loc := range p.img.TouchedLines() {
		data := p.img.Read(loc)
		class := p.markers.Classify(loc, data)
		switch class {
		case core.ClassComp2, core.ClassComp4:
			level := cache.Comp2
			if class == core.ClassComp4 {
				level = cache.Comp4
			}
			if core.HomeFor(loc, level) != loc {
				return verified, fmt.Errorf("line %d: %v unit not at its home", loc, level)
			}
			members := core.MembersAt(loc, level)
			lines, err := compress.DecompressGroup(p.alg, data[:core.CompressedBudget], len(members))
			if err != nil {
				return verified, fmt.Errorf("line %d: undecodable %v unit: %w", loc, level, err)
			}
			for i, m := range members {
				if prev, dup := covered[m]; dup {
					return verified, fmt.Errorf("line %d served by both %d and %d", m, prev, loc)
				}
				covered[m] = loc
				if inLLC != nil && inLLC(m) {
					continue // LLC copy is authoritative; memory may be stale
				}
				if !bytes.Equal(lines[i], p.arch.Read(m)) {
					return verified, fmt.Errorf("line %d: decoded value differs from architectural", m)
				}
				verified++
			}
		case core.ClassInvalid:
			// Tombstone: must not be anyone's authoritative home.
		case core.ClassInvComp2, core.ClassInvComp4, core.ClassInvIL:
			inverted, _ := p.lit.Contains(loc)
			val := data
			if inverted {
				val = core.Invert(data)
			}
			if prev, dup := covered[loc]; dup {
				return verified, fmt.Errorf("line %d served by both %d and itself", loc, prev)
			}
			covered[loc] = loc
			if inLLC != nil && inLLC(loc) {
				continue
			}
			if !bytes.Equal(val, p.arch.Read(loc)) {
				return verified, fmt.Errorf("line %d: (inverted=%v) value differs from architectural", loc, inverted)
			}
			verified++
		default: // uncompressed
			if prev, dup := covered[loc]; dup {
				return verified, fmt.Errorf("line %d served by both %d and itself", loc, prev)
			}
			covered[loc] = loc
			if inLLC != nil && inLLC(loc) {
				continue
			}
			if !bytes.Equal(data, p.arch.Read(loc)) {
				return verified, fmt.Errorf("line %d: uncompressed value differs from architectural", loc)
			}
			verified++
		}
	}

	// Every LIT entry must point at a location that is actually stored
	// inverted (classifies as a complement pattern).
	for _, a := range p.lit.Addresses() {
		if !p.markers.Classify(a, p.img.Read(a)).NeedsLIT() {
			return verified, fmt.Errorf("LIT tracks line %d whose image is not inverted", a)
		}
	}
	return verified, nil
}
