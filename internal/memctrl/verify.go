package memctrl

import (
	"bytes"

	"ptmc/internal/cache"
	"ptmc/internal/compress"
	"ptmc/internal/core"
	"ptmc/internal/mem"
)

// VerifyImage scans every touched line of the DRAM image and checks the
// paper's soundness invariant end to end: classifying a location by its
// inline markers (plus the LIT) yields an interpretation under which every
// line whose authoritative copy is in memory decodes to its architectural
// value, no location is interpretable two ways, and every architecturally
// live line is served by some location (or by the LLC).
//
// inLLC reports lines whose authoritative copy is (possibly dirty) in the
// cache hierarchy — memory is allowed to be stale (or uncovered) for
// exactly those. VerifyImage returns the number of lines whose
// authoritative copy was verified in memory, or a *VerifyError naming the
// first violation; the error wraps one of the taxonomy sentinels
// (ErrUnitMisplaced, ErrUndecodable, ErrDoubleCovered, ErrValueMismatch,
// ErrStaleLIT, ErrUncovered) for errors.Is classification.
func (p *PTMC) VerifyImage(inLLC func(a mem.LineAddr) bool) (int, error) {
	covered := map[mem.LineAddr]mem.LineAddr{} // line -> home that serves it
	verified := 0

	for _, loc := range p.img.TouchedLines() {
		data := p.img.Read(loc)
		class := p.markers.Classify(loc, data)
		switch class {
		case core.ClassComp2, core.ClassComp4:
			level := cache.Comp2
			if class == core.ClassComp4 {
				level = cache.Comp4
			}
			if core.HomeFor(loc, level) != loc {
				return verified, verifyErr(loc, loc, ErrUnitMisplaced, "%v unit", level)
			}
			members := core.MembersAt(loc, level)
			lines, err := compress.DecompressGroup(p.alg, data[:core.CompressedBudget], len(members))
			if err != nil {
				return verified, verifyErr(loc, loc, ErrUndecodable, "%v unit: %v", level, err)
			}
			for i, m := range members {
				if prev, dup := covered[m]; dup {
					return verified, verifyErr(m, loc, ErrDoubleCovered, "also served by %d", prev)
				}
				covered[m] = loc
				if inLLC != nil && inLLC(m) {
					continue // LLC copy is authoritative; memory may be stale
				}
				if !bytes.Equal(lines[i], p.arch.Read(m)) {
					return verified, verifyErr(m, loc, ErrValueMismatch, "%v member %d", level, i)
				}
				verified++
			}
		case core.ClassInvalid:
			// Tombstone: must not be anyone's authoritative home.
		case core.ClassInvComp2, core.ClassInvComp4, core.ClassInvIL:
			inverted, _ := p.lit.Contains(loc)
			val := data
			if inverted {
				val = core.Invert(data)
			}
			if prev, dup := covered[loc]; dup {
				return verified, verifyErr(loc, loc, ErrDoubleCovered, "also served by %d", prev)
			}
			covered[loc] = loc
			if inLLC != nil && inLLC(loc) {
				continue
			}
			if !bytes.Equal(val, p.arch.Read(loc)) {
				return verified, verifyErr(loc, loc, ErrValueMismatch, "inverted=%v", inverted)
			}
			verified++
		default: // uncompressed
			if prev, dup := covered[loc]; dup {
				return verified, verifyErr(loc, loc, ErrDoubleCovered, "also served by %d", prev)
			}
			covered[loc] = loc
			if inLLC != nil && inLLC(loc) {
				continue
			}
			if !bytes.Equal(data, p.arch.Read(loc)) {
				return verified, verifyErr(loc, loc, ErrValueMismatch, "uncompressed")
			}
			verified++
		}
	}

	// Every LIT entry must point at a location that is actually stored
	// inverted (classifies as a complement pattern).
	for _, a := range p.lit.Addresses() {
		if !p.markers.Classify(a, p.img.Read(a)).NeedsLIT() {
			return verified, verifyErr(a, a, ErrStaleLIT, "image class is %d", p.markers.Classify(a, p.img.Read(a)))
		}
	}

	// Completeness: every architecturally live line must be served by some
	// image location or be resident in the LLC. This is what catches a
	// tombstone planted over live data — the scan above sees a perfectly
	// well-formed Marker-IL and moves on; only the coverage map knows the
	// line's value is now unreachable.
	for _, m := range p.arch.TouchedLines() {
		if _, ok := covered[m]; ok {
			continue
		}
		if inLLC != nil && inLLC(m) {
			continue
		}
		if p.img.Touched(m) {
			return verified, verifyErr(m, m, ErrUncovered, "image location is a tombstone or foreign unit")
		}
		// The image never materialized this line's page: sound only if the
		// architectural value is still the zero line both stores imply.
		if !bytes.Equal(p.arch.Read(m), make([]byte, mem.LineSize)) {
			return verified, verifyErr(m, m, ErrUncovered, "architectural page never materialized in the image")
		}
	}
	return verified, nil
}
