# Tier-1 verification plus the race detector and the paperbench smoke.
#
#   make check       vet + build + race-enabled tests (the pre-commit gate)
#   make lint        go vet plus staticcheck when installed, else a gofmt -l
#                    formatting gate (no new tool dependencies)
#   make smoke       regenerate the quick paperbench report and diff against
#                    the committed paperbench_quick.txt (slow: full quick
#                    set), then run a short fault-injection campaign, the
#                    crash-safe daemon recovery stage, and the chaos campaign
#   make fuzz-smoke  ~10s of native fuzzing per fuzz target
#   make trace-smoke instrumented quickstart run; obscheck validates the
#                    -metrics and -trace artifacts it produces
#   make bench       compression + artifact micro-benchmarks with allocation
#                    counts (AppendCompress/DecompressInto must show 0 allocs/op;
#                    nil-instrumentation obs paths must show 0 allocs/op)
#   make bench-trend regenerate the current PR's BENCH_PR<n>.json (benchtrend's
#                    -out/-pr defaults track the latest PR): mix1 and the
#                    low-MLP microworkload end-to-end on the serial, sharded,
#                    and event engines plus core micro-benchmarks (slow: ~24
#                    full simulations), then validate the whole trajectory
#   make ci          everything

GO ?= go
FUZZTIME ?= 10s

.PHONY: check lint vet build test smoke fuzz-smoke trace-smoke bench bench-trend ptmcd ci

check: vet build test

vet:
	$(GO) vet ./...

# lint prefers staticcheck when the host has it; otherwise it degrades to
# the formatting gate every Go install ships with. Either way it is a
# hard failure, wired into the smoke pipeline.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "lint: staticcheck ./..."; staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; gofmt -l gate"; \
		out="$$(gofmt -l .)"; \
		if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi; \
	fi

# ptmcd builds the crash-safe simulation daemon (see README "Running the
# service").
ptmcd:
	$(GO) build -o bin/ptmcd ./cmd/ptmcd

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

smoke:
	./scripts/smoke.sh

fuzz-smoke:
	$(GO) test ./internal/core/ -run FuzzMarkerClassify -fuzz FuzzMarkerClassify -fuzztime $(FUZZTIME)

trace-smoke:
	out=$$(mktemp -d) && \
	$(GO) run ./cmd/ptmcsim -workload lbm06 -scheme dynamic-ptmc \
		-insts 60000 -warmup 60000 \
		-metrics "$$out/m.json" -trace "$$out/t.trace" > /dev/null && \
	$(GO) run ./cmd/obscheck -trace "$$out/t.trace" -metrics "$$out/m.json"; \
	st=$$?; rm -rf "$$out"; exit $$st

bench:
	$(GO) test -run xxx -bench 'AppendCompress|DecompressInto' -benchmem .
	$(GO) test -run xxx -bench 'BenchmarkNil' -benchmem ./internal/obs/
	$(GO) test -run xxx -bench 'BenchmarkPTMCReadMiss' -benchmem ./internal/memctrl/

bench-trend:
	$(GO) run ./cmd/benchtrend
	$(GO) run ./cmd/benchtrend -check 'BENCH_*.json'

ci: check smoke
