package ptmc

import (
	"bytes"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload = "sphinx306"
	cfg.Scheme = SchemeDynamicPTMC
	cfg.Cores = 2
	cfg.L3Bytes = 1 << 20
	cfg.WarmupInstr = 10_000
	cfg.MeasureInstr = 30_000
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() <= 0 || r.Mem.IntegrityErrs != 0 {
		t.Fatalf("bad result: %v", r)
	}
}

func TestPublicCompare(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload = "leela17"
	cfg.Cores = 2
	cfg.L3Bytes = 1 << 20
	cfg.WarmupInstr = 5_000
	cfg.MeasureInstr = 20_000
	rs, err := Compare(cfg, SchemeUncompressed, SchemePTMC)
	if err != nil {
		t.Fatal(err)
	}
	ws := rs[SchemePTMC].WeightedSpeedupOver(rs[SchemeUncompressed])
	if ws <= 0 {
		t.Fatalf("weighted speedup = %v", ws)
	}
}

func TestCatalogs(t *testing.T) {
	if len(Schemes()) != 7 {
		t.Errorf("schemes = %d, want 7", len(Schemes()))
	}
	if len(Workloads()) != 64 {
		t.Errorf("workloads = %d, want 64", len(Workloads()))
	}
	w, err := LookupWorkload("mcf06")
	if err != nil || w.Suite != "spec06" {
		t.Errorf("LookupWorkload: %v %v", w, err)
	}
}

func TestPublicCompressors(t *testing.T) {
	line := make([]byte, 64)
	for i := range line {
		line[i] = byte(i % 4)
	}
	for _, c := range []Compressor{NewHybridCompressor(), NewFPCCompressor(), NewBDICompressor()} {
		enc := c.Compress(line)
		dec, n, err := c.Decompress(enc)
		if err != nil || n != len(enc) || !bytes.Equal(dec, line) {
			t.Errorf("%s: round trip failed", c.Name())
		}
	}
}
