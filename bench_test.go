package ptmc

// One benchmark per table and figure of the paper (DESIGN.md §3 maps each
// to its experiment). Benchmarks run the experiment at a reduced,
// laptop-scale horizon and report the headline quantity of each artifact
// via b.ReportMetric; `cmd/paperbench` runs the same experiments at full
// scale with complete per-workload rows.
//
//	go test -bench=. -benchmem
//
// All benchmarks share one result cache, so the suite pays for each
// (workload, scheme) simulation once.

import (
	"io"
	"sync"
	"testing"

	"ptmc/internal/paper"
	"ptmc/internal/sim"
	"ptmc/internal/stats"
)

// benchOptions is the reduced horizon used by the benchmark suite.
func benchOptions() paper.Options {
	return paper.Options{
		Cores:   4,
		Warmup:  400_000,
		Measure: 150_000,
		Seed:    1,
		Spec:    []string{"libquantum06", "lbm06", "mcf06"},
		Graph:   []string{"pr-twitter", "bfs-web"},
		Mixes:   []string{},
		All:     []string{"libquantum06", "lbm06", "mcf06", "pr-twitter", "leela17"},
		L3MB:    4,
		Silent:  true,
	}
}

var (
	benchRunnerOnce sync.Once
	benchRunner     *paper.Runner
)

// runner returns the shared, result-caching experiment runner.
func runner() *paper.Runner {
	benchRunnerOnce.Do(func() {
		benchRunner = paper.NewRunner(benchOptions(), io.Discard)
	})
	return benchRunner
}

// speedup fetches the cached weighted speedup of scheme over baseline.
func speedup(b *testing.B, wl, scheme string) float64 {
	b.Helper()
	base, err := runner().Result(wl, sim.SchemeUncompressed, "", nil)
	if err != nil {
		b.Fatal(err)
	}
	res, err := runner().Result(wl, scheme, "", nil)
	if err != nil {
		b.Fatal(err)
	}
	return res.WeightedSpeedupOver(base)
}

func BenchmarkTableI_Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := paper.NewRunner(benchOptions(), io.Discard)
		r.TableI()
	}
}

func BenchmarkTableII_WorkloadCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().Result("mcf06", sim.SchemeUncompressed, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MPKI, "mcf-mpki")
	}
}

func BenchmarkFigure4_MetadataBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := runner().Result("pr-twitter", sim.SchemeUncompressed, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		tt, err := runner().Result("pr-twitter", sim.SchemeTableTMC, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		meta := float64(tt.Mem.MetadataReads+tt.Mem.MetadataWrites) / float64(base.Mem.Total())
		b.ReportMetric(meta, "graph-metadata-bw")
	}
}

func BenchmarkFigure5_IdealVsTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(speedup(b, "libquantum06", sim.SchemeIdeal), "ideal-speedup")
		b.ReportMetric(speedup(b, "pr-twitter", sim.SchemeTableTMC), "table-graph-speedup")
	}
}

func BenchmarkFigure6_PairCompressibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := paper.NewRunner(benchOptions(), io.Discard)
		if err := r.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9_LLPAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pt, err := runner().Result("lbm06", sim.SchemePTMC, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		tt, err := runner().Result("lbm06", sim.SchemeTableTMC, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*pt.LLPAccuracy, "llp-pct")
		b.ReportMetric(100*tt.MCacheHitRate, "mcache-pct")
	}
}

func BenchmarkFigure12_PTMCvsTMC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(speedup(b, "lbm06", sim.SchemePTMC), "ptmc-spec")
		b.ReportMetric(speedup(b, "lbm06", sim.SchemeTableTMC), "tmc-spec")
	}
}

func BenchmarkFigure14_PTMCBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := runner().Result("pr-twitter", sim.SchemeUncompressed, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		pt, err := runner().Result("pr-twitter", sim.SchemePTMC, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		maint := float64(pt.Mem.CleanCompIntoW+pt.Mem.Invalidates) / float64(base.Mem.Total())
		b.ReportMetric(maint, "graph-maint-bw")
	}
}

func BenchmarkFigure15_Dynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var specs, graphs []float64
		for _, wl := range benchOptions().Spec {
			specs = append(specs, speedup(b, wl, sim.SchemeDynamicPTMC))
		}
		for _, wl := range benchOptions().Graph {
			graphs = append(graphs, speedup(b, wl, sim.SchemeDynamicPTMC))
		}
		b.ReportMetric(stats.GeoMean(specs), "dyn-spec-speedup")
		b.ReportMetric(stats.GeoMean(graphs), "dyn-graph-speedup")
	}
}

func BenchmarkTableIII_StorageOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := paper.NewRunner(benchOptions(), io.Discard)
		r.TableIII()
	}
}

func BenchmarkFigure17_AllWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var worst, best = 10.0, 0.0
		for _, wl := range benchOptions().All {
			s := speedup(b, wl, sim.SchemeDynamicPTMC)
			if s < worst {
				worst = s
			}
			if s > best {
				best = s
			}
		}
		b.ReportMetric(worst, "worst-speedup")
		b.ReportMetric(best, "best-speedup")
	}
}

func BenchmarkFigure18_Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := runner().Result("lbm06", sim.SchemeUncompressed, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		dyn, err := runner().Result("lbm06", sim.SchemeDynamicPTMC, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dyn.Energy.TotalJ/base.Energy.TotalJ, "energy-ratio")
		b.ReportMetric(dyn.Energy.EDP/base.Energy.EDP, "edp-ratio")
	}
}

func BenchmarkTableIV_Channels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ch := range []int{1, 2, 4} {
			ch := ch
			variant := "ch" + string(rune('0'+ch))
			mutate := func(c *sim.Config) { c.DRAM.Channels = ch }
			base, err := runner().Result("lbm06", sim.SchemeUncompressed, variant, mutate)
			if err != nil {
				b.Fatal(err)
			}
			dyn, err := runner().Result("lbm06", sim.SchemeDynamicPTMC, variant, mutate)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(dyn.WeightedSpeedupOver(base), "speedup-ch"+string(rune('0'+ch)))
		}
	}
}

func BenchmarkTableV_L3HitRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := runner().Result("libquantum06", sim.SchemeUncompressed, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		dyn, err := runner().Result("libquantum06", sim.SchemeDynamicPTMC, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*base.L3.HitRate(), "l3hit-base-pct")
		b.ReportMetric(100*dyn.L3.HitRate(), "l3hit-dyn-pct")
	}
}

func BenchmarkTableVI_Prefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(speedup(b, "pr-twitter", sim.SchemeNextLine), "nextline-graph")
		b.ReportMetric(speedup(b, "pr-twitter", sim.SchemeDynamicPTMC), "dyn-graph")
	}
}

// ---- substrate micro-benchmarks ----

func BenchmarkHybridCompress(b *testing.B) {
	line := make([]byte, 64)
	for i := 0; i < 16; i++ {
		line[i*4] = byte(i)
	}
	alg := NewHybridCompressor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Compress(line)
	}
}

func BenchmarkHybridDecompress(b *testing.B) {
	line := make([]byte, 64)
	for i := 0; i < 16; i++ {
		line[i*4] = byte(i)
	}
	alg := NewHybridCompressor()
	enc := alg.Compress(line)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := alg.Decompress(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLine returns a compressible 64-byte line (FPC-friendly words).
func benchLine() []byte {
	line := make([]byte, 64)
	for i := 0; i < 16; i++ {
		line[i*4] = byte(i)
	}
	return line
}

// BenchmarkAppendCompress measures the zero-allocation writeback hot path
// (run with -benchmem: allocs/op must be 0).
func BenchmarkAppendCompress(b *testing.B) {
	line := benchLine()
	for _, alg := range []Compressor{NewFPCCompressor(), NewBDICompressor(), NewHybridCompressor()} {
		alg := alg
		b.Run(alg.Name(), func(b *testing.B) {
			buf := alg.AppendCompress(nil, line)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = alg.AppendCompress(buf[:0], line)
			}
		})
	}
}

// BenchmarkDecompressInto measures the zero-allocation fill hot path.
func BenchmarkDecompressInto(b *testing.B) {
	line := benchLine()
	for _, alg := range []Compressor{NewFPCCompressor(), NewBDICompressor(), NewHybridCompressor()} {
		alg := alg
		b.Run(alg.Name(), func(b *testing.B) {
			enc := alg.AppendCompress(nil, line)
			out := make([]byte, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := alg.DecompressInto(out, enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4Parallel measures end-to-end artifact wall-clock at 1 vs
// 4 workers (a fresh runner per iteration, so nothing is cached between
// iterations). The /4 case should run ≥2x faster than /1 on a 4-core
// machine; the rendered bytes are identical either way.
func BenchmarkFigure4Parallel(b *testing.B) {
	opts := benchOptions()
	opts.Warmup = 60_000
	opts.Measure = 30_000
	opts.Cores = 2
	opts.L3MB = 1
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(string(rune('0'+workers)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := paper.NewParallelRunner(opts, io.Discard, workers)
				if err := r.Figure4(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	// Instructions simulated per wall-second, the simulator's own speed.
	cfg := DefaultConfig()
	cfg.Workload = "leela17"
	cfg.Scheme = SchemeDynamicPTMC
	cfg.Cores = 2
	cfg.L3Bytes = 1 << 20
	cfg.WarmupInstr = 10_000
	cfg.MeasureInstr = 100_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.MeasureInstr*int64(cfg.Cores)*int64(b.N))/b.Elapsed().Seconds(), "instr/s")
}
